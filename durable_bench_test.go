package adaptivelink

// Durability benchmarks — the BENCH_store.json points (`make
// bench-store`). Two claims are measured, each as a pair:
//
//   - Cold start: Open on a snapshotted directory (load = sequential
//     read + slice reconstruction, then one probe) versus the path it
//     replaces — re-parsing the reference CSV and rebuilding the index
//     through the bulk builder. BenchmarkStoreColdStartOpen vs
//     BenchmarkStoreColdStartReindexCSV; the ratio is the restart
//     speedup scripts/bench_store.sh asserts on.
//   - Ingest: BulkLoad of N rows straight into a snapshot versus the
//     same N rows as N single Upserts through the write-ahead log.
//     BenchmarkStoreBulkLoad vs BenchmarkStoreUpsertSingles, both
//     reporting rows/s. SyncNone keeps fsync out of the comparison: the
//     bulk path must win on build work alone.

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"path/filepath"
	"strconv"
	"testing"
)

// storeBenchRows sizes the cold-start pair; storeBenchIngestRows the
// bulk-vs-singles pair (single upserts pay per-batch maintenance, so
// the pair uses a size where one iteration stays in tens of ms).
const (
	storeBenchRows       = 10000
	storeBenchIngestRows = 2000
)

func storeBenchTuples(n int) []Tuple {
	keys := benchKeys(n)
	ts := make([]Tuple, n)
	for i, k := range keys {
		// Disambiguate: benchKeys may repeat a generated name, and the
		// resident store is keyed (newest wins); a suffix keeps the
		// indexed size equal to n on every path being compared.
		ts[i] = Tuple{ID: i + 1, Key: k + " " + strconv.Itoa(i), Attrs: []string{"attr " + strconv.Itoa(i%97)}}
	}
	return ts
}

func storeBenchCSV(tuples []Tuple) []byte {
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	w.Write([]string{"location", "attr"})
	for _, t := range tuples {
		w.Write([]string{t.Key, t.Attrs[0]})
	}
	w.Flush()
	return buf.Bytes()
}

// BenchmarkStoreColdStartOpen is restart time-to-first-probe: open the
// stored index (snapshot load, empty log) and answer one probe.
func BenchmarkStoreColdStartOpen(b *testing.B) {
	tuples := storeBenchTuples(storeBenchRows)
	dir := b.TempDir()
	ix, err := BulkLoad(FromTuples(tuples), IndexOptions{Storage: StorageOptions{Dir: dir}})
	if err != nil {
		b.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		b.Fatal(err)
	}
	probe := tuples[storeBenchRows/2].Key
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix, err := Open(dir, IndexOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if ms := ix.Probe(probe); len(ms) == 0 {
			b.Fatal("cold index missed a stored key")
		}
		ix.Close()
	}
	b.ReportMetric(float64(storeBenchRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkStoreColdStartReindexCSV is the restart path a snapshot
// replaces: parse the reference CSV, rebuild the index from scratch
// (through the bulk builder — the fastest rebuild available), answer
// one probe.
func BenchmarkStoreColdStartReindexCSV(b *testing.B) {
	tuples := storeBenchTuples(storeBenchRows)
	raw := storeBenchCSV(tuples)
	probe := tuples[storeBenchRows/2].Key
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loaded, _, err := LoadRelationCSV(bytes.NewReader(raw), "bench.csv", "location")
		if err != nil {
			b.Fatal(err)
		}
		ix, err := BulkLoad(FromTuples(loaded), IndexOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if ms := ix.Probe(probe); len(ms) == 0 {
			b.Fatal("rebuilt index missed a stored key")
		}
	}
	b.ReportMetric(float64(storeBenchRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkStoreBulkLoad ingests N rows through the bulk path and
// persists them by writing the snapshot directly.
func BenchmarkStoreBulkLoad(b *testing.B) {
	tuples := storeBenchTuples(storeBenchIngestRows)
	root := b.TempDir()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dir := filepath.Join(root, fmt.Sprintf("bulk%d", i))
		ix, err := BulkLoad(FromTuples(tuples), IndexOptions{
			Storage: StorageOptions{Dir: dir, WALSync: SyncNone},
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := ix.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(storeBenchIngestRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkStoreUpsertSingles ingests the same N rows as N acknowledged
// single-tuple Upserts through the write-ahead log.
func BenchmarkStoreUpsertSingles(b *testing.B) {
	tuples := storeBenchTuples(storeBenchIngestRows)
	root := b.TempDir()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dir := filepath.Join(root, fmt.Sprintf("single%d", i))
		ix, err := Open(dir, IndexOptions{Storage: StorageOptions{WALSync: SyncNone}})
		if err != nil {
			b.Fatal(err)
		}
		for _, t := range tuples {
			if _, _, err := ix.Upsert(t); err != nil {
				b.Fatal(err)
			}
		}
		if err := ix.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(storeBenchIngestRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}
