package adaptivelink

import (
	"slices"
	"strings"
	"testing"
)

// The profile pipeline is applied on both sides of the index: keys that
// differ only in case, accents or Unicode composition form link exactly
// once a profile is configured, and not at all under the default
// verbatim profile.
func TestIndexProfileNormalizesBothSides(t *testing.T) {
	ref := []Tuple{
		{Key: "José Müller-Straße 7"},
		{Key: "Ødegård Allé 12"},
	}
	// NFD spelling, different case, ß upper-cased, hyphen retained.
	probe := "JOSÉ MÜLLER-STRASSE 7" // NFD: combining acute and diaeresis

	plain, err := NewIndex(FromTuples(ref), IndexOptions{})
	if err != nil {
		t.Fatalf("NewIndex: %v", err)
	}
	if ms := plain.Probe(probe); len(ms) != 0 {
		for _, m := range ms {
			if m.Exact {
				t.Fatalf("verbatim index exact-matched %q to %q", probe, m.Ref.Key)
			}
		}
	}

	latin, err := NewIndex(FromTuples(ref), IndexOptions{Profile: "latin"})
	if err != nil {
		t.Fatalf("NewIndex(latin): %v", err)
	}
	ms := latin.Probe(probe)
	if len(ms) != 1 || !ms[0].Exact || ms[0].Ref.ID != 0 {
		t.Fatalf("latin profile Probe(%q) = %+v, want one exact match of ID 0", probe, ms)
	}
	// Batch and session paths normalise identically.
	for i, res := range latin.ProbeBatch("ØDEGÅRD ALLE 12", "nowhere at all") {
		if i == 0 && (len(res) != 1 || !res[0].Exact || res[0].Ref.ID != 1) {
			t.Fatalf("ProbeBatch[0] = %+v, want exact match of ID 1", res)
		}
		if i == 1 && len(res) != 0 {
			t.Fatalf("ProbeBatch[1] = %+v, want no match", res)
		}
	}
	sess, err := latin.NewSession(SessionOptions{})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if ms := sess.Probe("jose müller-straße 7"); len(ms) != 1 || !ms[0].Exact {
		t.Fatalf("session Probe = %+v, want one exact match", ms)
	}
}

// Upserts pass through the same pipeline, so a key upserted in one
// representation replaces a key indexed in another.
func TestIndexProfileUpsertKeyed(t *testing.T) {
	ix, err := NewIndex(FromTuples([]Tuple{{Key: "Артём Проспект"}}), IndexOptions{Profile: "cyrillic"})
	if err != nil {
		t.Fatalf("NewIndex: %v", err)
	}
	// ё folds to Е under the cyrillic profile: same normalised key, so
	// this updates in place, and the payload proves the update landed.
	ins, upd, err := ix.Upsert(Tuple{Key: "АРТЕМ ПРОСПЕКТ", Attrs: []string{"updated"}})
	if err != nil || ins != 0 || upd != 1 {
		t.Fatalf("Upsert = %d inserted, %d updated, %v; want 0/1/nil", ins, upd, err)
	}
	ms := ix.Probe("артём проспект")
	if len(ms) != 1 || len(ms[0].Ref.Attrs) != 1 || ms[0].Ref.Attrs[0] != "updated" {
		t.Fatalf("Probe = %+v, want the updated tuple", ms)
	}
}

func TestIndexProfileUnknownRejected(t *testing.T) {
	if _, err := NewIndex(FromTuples(nil), IndexOptions{Profile: "klingon"}); err == nil {
		t.Fatal("NewIndex accepted unknown profile")
	} else if !strings.Contains(err.Error(), "klingon") {
		t.Fatalf("error %q does not name the bad profile", err)
	}
	if _, err := BulkLoad(FromTuples(nil), IndexOptions{Profile: "klingon"}); err == nil {
		t.Fatal("BulkLoad accepted unknown profile")
	}
}

func TestProfilesRegistry(t *testing.T) {
	ps := Profiles()
	for _, want := range []string{"", "latin", "cyrillic", "greek", "cjk", "standard"} {
		if !slices.Contains(ps, want) {
			t.Errorf("Profiles() = %v, missing %q", ps, want)
		}
	}
}

// Durable round trip: the profile is part of the compatibility tuple.
// Reopening with zero options adopts it, keys logged through the WAL
// are already normalised when replayed, and naming a different profile
// is refused.
func TestDurableProfileRoundTrip(t *testing.T) {
	dir := t.TempDir() + "/idx"
	ix, err := BulkLoad(FromTuples([]Tuple{{Key: "Μαρία Οδός"}}), IndexOptions{
		Profile: "greek",
		Storage: StorageOptions{Dir: dir},
	})
	if err != nil {
		t.Fatalf("BulkLoad: %v", err)
	}
	// An upsert in a different representation travels the WAL normalised.
	if _, _, err := ix.Upsert(Tuple{Key: "Νίκος Πλατεία"}); err != nil {
		t.Fatalf("Upsert: %v", err)
	}
	if err := ix.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	re, err := Open(dir, IndexOptions{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer re.Close()
	if got := re.Options().Profile; got != "greek" {
		t.Fatalf("reopened profile %q, want greek", got)
	}
	for _, probe := range []string{"ΜΑΡΙΑ ΟΔΟΣ", "μαρία οδός"} {
		ms := re.Probe(probe)
		if len(ms) != 1 || !ms[0].Exact || ms[0].Ref.ID != 0 {
			t.Fatalf("Probe(%q) after reopen = %+v, want exact match of ID 0", probe, ms)
		}
	}
	if ms := re.Probe("νικοσ πλατεια"); len(ms) != 1 || !ms[0].Exact {
		t.Fatalf("WAL-replayed tuple not probeable: %+v", ms)
	}

	if _, err := Open(dir, IndexOptions{Profile: "latin"}); err == nil {
		t.Fatal("Open accepted a conflicting profile")
	} else if !strings.Contains(err.Error(), "profile") {
		t.Fatalf("mismatch error %q does not mention the profile", err)
	}
}
