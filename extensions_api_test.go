package adaptivelink

import "testing"

func TestCostBudgetOption(t *testing.T) {
	td, err := GenerateTestData(13, 800, 800, PatternUniform, 0.10, false)
	if err != nil {
		t.Fatal(err)
	}
	free, err := New(td.ParentSource(), td.ChildSource(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	freeMs, err := free.All()
	if err != nil {
		t.Fatal(err)
	}
	capped, err := New(td.ParentSource(), td.ChildSource(), Options{CostBudget: 5000})
	if err != nil {
		t.Fatal(err)
	}
	cappedMs, err := capped.All()
	if err != nil {
		t.Fatal(err)
	}
	if capped.Stats().ModelledCost >= free.Stats().ModelledCost {
		t.Errorf("budgeted cost %v not below unconstrained %v",
			capped.Stats().ModelledCost, free.Stats().ModelledCost)
	}
	if len(cappedMs) > len(freeMs) {
		t.Errorf("budgeted run found more matches (%d) than unconstrained (%d)",
			len(cappedMs), len(freeMs))
	}
	exact, err := New(td.ParentSource(), td.ChildSource(), Options{Strategy: ExactOnly})
	if err != nil {
		t.Fatal(err)
	}
	exactMs, err := exact.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(cappedMs) < len(exactMs) {
		t.Errorf("budgeted run below the exact floor: %d < %d", len(cappedMs), len(exactMs))
	}
}

func TestBudgetMonotoneProgression(t *testing.T) {
	td, err := GenerateTestData(29, 900, 900, PatternUniform, 0.10, false)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1
	for _, budget := range []float64{3000, 20000, 130000} {
		j, err := New(td.ParentSource(), td.ChildSource(), Options{CostBudget: budget})
		if err != nil {
			t.Fatal(err)
		}
		ms, err := j.All()
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) < prev {
			t.Errorf("budget %v found %d matches, fewer than a smaller budget's %d",
				budget, len(ms), prev)
		}
		prev = len(ms)
	}
}

func TestFutilityOption(t *testing.T) {
	td, err := GenerateTestData(31, 600, 600, PatternUniform, 0, false) // clean data
	if err != nil {
		t.Fatal(err)
	}
	// A deliberately wrong (halved) parent size makes the monitor see a
	// phantom deficit; futility must pull the engine back to exact.
	j, err := New(td.ParentSource(), td.ChildSource(), Options{
		ParentSize: 300,
		FutilityK:  3,
		DeltaAdapt: 20, W: 20,
		TraceActivations: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.All(); err != nil {
		t.Fatal(err)
	}
	if got := j.State(); got != "lex/rex" {
		t.Errorf("final state %q, want lex/rex after futility revert", got)
	}
	st := j.Stats()
	if st.Switches == 0 {
		t.Skip("phantom deficit never triggered a switch at this scale")
	}
	// The engine must not have spent the whole run approximate.
	if st.StepsInState["lex/rex"] < st.Steps/2 {
		t.Errorf("only %d of %d steps exact despite futility rule",
			st.StepsInState["lex/rex"], st.Steps)
	}
}
