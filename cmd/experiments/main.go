// Command experiments regenerates every table and figure of the paper's
// evaluation section (§4): the perturbation-pattern maps (Fig. 5), the
// gain/cost/efficiency comparison across the eight test cases (Fig. 6),
// the per-state step and cost breakdowns (Figs. 7–8), the per-operation
// cost micro-measurements (Table 1) and the parameter-tuning sweep
// (§4.2).
//
// Usage:
//
//	experiments -all                      # everything at paper scale
//	experiments -fig6 -parents 2000      # one figure at reduced scale
//	experiments -tuning -case few-high/child-only
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"adaptivelink/internal/datagen"
	"adaptivelink/internal/exp"
	"adaptivelink/internal/join"
)

func main() {
	var (
		parents  = flag.Int("parents", datagen.DefaultParentSize, "parent table size |R|")
		children = flag.Int("children", datagen.DefaultParentSize, "child table size |S|")
		seed     = flag.Int64("seed", 1, "dataset seed")
		all      = flag.Bool("all", false, "run everything")
		fig5     = flag.Bool("fig5", false, "render the perturbation patterns")
		fig6     = flag.Bool("fig6", false, "gain/cost/efficiency across the 8 test cases")
		fig7     = flag.Bool("fig7", false, "per-state step breakdown")
		fig8     = flag.Bool("fig8", false, "per-state cost breakdown")
		table1   = flag.Bool("table1", false, "per-operation cost measurements")
		tuning   = flag.Bool("tuning", false, "parameter sweep (§4.2)")
		offline  = flag.Bool("offline", false, "offline (blocking/SNM) vs online comparison")
		caseID   = flag.String("case", "few-high/child-only", "test case for -tuning and -offline")
		topK     = flag.Int("top", 10, "tuning configurations to print")
		csvPath  = flag.String("csv", "", "also write the fig6/7/8 result table as CSV to this path")
		parallel = flag.Int("parallel", 1, "shards for the adaptive runs (1 = the paper's sequential engine)")
		window   = flag.Int("window", 0, "sliding-window retention per side (0 = retain everything); composes with -parallel")
		budget   = flag.Float64("budget", 0, "cost budget in all-exact-step units (0 = unlimited); composes with -parallel")
	)
	flag.Parse()
	if *all {
		*fig5, *fig6, *fig7, *fig8, *table1, *tuning, *offline = true, true, true, true, true, true, true
	}
	if !(*fig5 || *fig6 || *fig7 || *fig8 || *table1 || *tuning || *offline) {
		fmt.Fprintln(os.Stderr, "experiments: select at least one of -all -fig5 -fig6 -fig7 -fig8 -table1 -tuning -offline")
		flag.Usage()
		os.Exit(2)
	}

	rc := exp.DefaultRunConfig()
	rc.Parallelism = *parallel
	rc.Join.RetainWindow = *window
	rc.CostBudget = *budget

	if *fig5 {
		fmt.Println(exp.Fig5Maps(*children, 72))
	}
	if *table1 {
		rows, err := exp.MeasureTable1(min(*parents, 20000), *seed, join.Defaults())
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.Table1Text(rows))
	}

	var results []*exp.Result
	if *fig6 || *fig7 || *fig8 {
		cases := exp.PaperTestCases(*seed, *parents, *children)
		fmt.Fprintf(os.Stderr, "running %d test cases at |R|=%d |S|=%d ...\n",
			len(cases), *parents, *children)
		start := time.Now()
		var err error
		results, err = exp.RunAll(cases, rc)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "done in %v\n\n", time.Since(start).Round(time.Millisecond))
	}
	if *fig6 {
		fmt.Println(exp.Fig6Table(results))
	}
	if *fig7 {
		fmt.Println(exp.Fig7Table(results))
	}
	if *fig8 {
		fmt.Println(exp.Fig8Table(results))
	}
	if results != nil {
		fmt.Println(exp.SummaryChecks(results, rc.Weights))
		if *csvPath != "" {
			f, err := os.Create(*csvPath)
			if err != nil {
				fail(err)
			}
			if err := exp.WriteResultsCSV(f, results); err != nil {
				f.Close()
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
		}
	}

	if *offline {
		tc := findCase(exp.PaperTestCases(*seed, *parents, *children), *caseID)
		fmt.Fprintf(os.Stderr, "comparing offline and online methods on %s ...\n", tc.ID)
		cmp, err := exp.CompareOfflineOnline(*tc, rc)
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.OfflineTable(cmp))
	}

	if *tuning {
		target := findCase(exp.PaperTestCases(*seed, *parents, *children), *caseID)
		grid := exp.DefaultGrid()
		fmt.Fprintf(os.Stderr, "sweeping %d configurations on %s ...\n", grid.Size(), target.ID)
		points, err := exp.TuneSweep(*target, rc, grid)
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.TuningTable(points, *topK))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// findCase resolves a -case flag or exits with the available IDs.
func findCase(cases []exp.TestCase, id string) *exp.TestCase {
	for i := range cases {
		if cases[i].ID == id {
			return &cases[i]
		}
	}
	fmt.Fprintf(os.Stderr, "experiments: unknown case %q; available:\n", id)
	for _, c := range cases {
		fmt.Fprintf(os.Stderr, "  %s\n", c.ID)
	}
	os.Exit(2)
	return nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
	os.Exit(1)
}
