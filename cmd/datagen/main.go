// Command datagen synthesises the paper's evaluation datasets (§4.1): a
// parent table of unique location strings and a child table of accident
// records referencing them, with 1-character variants injected following
// one of the Fig. 5 perturbation patterns.
//
// Usage:
//
//	datagen -parent-out locations.csv -child-out accidents.csv \
//	        -parents 8082 -children 8082 -pattern few-high -rate 0.10 -both
package main

import (
	"os"

	"adaptivelink/internal/cli"
)

func main() {
	os.Exit(cli.RunDatagen(os.Args[1:], os.Stdout, os.Stderr))
}
