// Command linkbench is a closed-loop load generator for adaptivelinkd:
// it creates a benchmark index from generated test data, fires link
// requests from concurrent clients, and reports throughput and latency
// percentiles, optionally appending the measurement to
// BENCH_service.json. A non-zero exit means at least one request failed.
//
// Usage:
//
//	linkbench -addr http://127.0.0.1:8080 -n 1000 -c 64 -batch 4 \
//	          -strategy adaptive -out BENCH_service.json
package main

import (
	"os"

	"adaptivelink/internal/cli"
)

func main() {
	os.Exit(cli.RunLinkBench(os.Args[1:], os.Stdout, os.Stderr))
}
