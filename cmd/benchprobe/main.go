// Command benchprobe appends probe-path microbenchmark results to the
// BENCH_probe.json trajectory, with the same host-label + regress-pct
// gating discipline as linkbench/BENCH_service.json. It parses `go test
// -bench` output from stdin or -in:
//
//	go test ./internal/join -run=NONE -bench BenchmarkResident -benchtime=2s |
//	    benchprobe -out BENCH_probe.json -host laptop -regress-pct 20
//
// scripts/bench_probe.sh (make bench-probe) is the canonical driver.
package main

import (
	"os"

	"adaptivelink/internal/cli"
)

func main() {
	os.Exit(cli.RunBenchProbe(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}
