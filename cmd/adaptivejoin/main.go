// Command adaptivejoin joins two CSV files on a string column using the
// adaptive record-linkage engine (or one of the pure baselines) and
// writes the matched pairs as CSV to stdout, with execution statistics
// on stderr.
//
// Usage:
//
//	adaptivejoin -left locations.csv -right accidents.csv \
//	             -left-key location -right-key location \
//	             -strategy adaptive -theta 0.75
package main

import (
	"os"

	"adaptivelink/internal/cli"
)

func main() {
	os.Exit(cli.RunAdaptiveJoin(os.Args[1:], os.Stdout, os.Stderr))
}
