// Command weights reproduces the cost-weight calibration of §4.3 on this
// host: it measures the per-step wall-clock cost of the engine pinned in
// each of the four states and the cost of switching into each state at
// the scan midpoint, then normalises everything by the lex/rex step
// cost. The output places the measured weights next to the paper's.
//
// Usage:
//
//	weights -parents 4000 -children 4000 -reps 3
package main

import (
	"flag"
	"fmt"
	"os"

	"adaptivelink/internal/exp"
)

func main() {
	var (
		parents  = flag.Int("parents", 4000, "parent table size")
		children = flag.Int("children", 4000, "child table size")
		seed     = flag.Int64("seed", 1, "dataset seed")
		reps     = flag.Int("reps", 3, "measurement repetitions to average")
	)
	flag.Parse()

	fmt.Fprintf(os.Stderr, "calibrating on |R|=%d |S|=%d, %d repetition(s) ...\n",
		*parents, *children, *reps)
	m, err := exp.MeasureWeights(*parents, *children, *seed, *reps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "weights: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(exp.WeightsText(m))
}
