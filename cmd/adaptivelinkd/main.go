// Command adaptivelinkd serves the resident linkage service over
// HTTP/JSON: named reference indexes built once (exact + q-gram hash
// structures), probed by many concurrent clients with per-session
// adaptive exact→approximate escalation, incremental upserts applied at
// quiescent points, bounded-pool admission control, per-request
// deadlines, Prometheus-style /metrics, and graceful drain on SIGTERM.
//
// Usage:
//
//	adaptivelinkd -addr 127.0.0.1:8080 \
//	              -preload atlas=locations.csv -preload-key location
//
// Endpoints: POST/GET /v1/indexes, GET /v1/indexes/{name},
// POST /v1/indexes/{name}/upsert, DELETE /v1/indexes/{name},
// POST /v1/link, GET /v1/stats, GET /metrics, GET /healthz.
package main

import (
	"os"

	"adaptivelink/internal/cli"
)

func main() {
	os.Exit(cli.RunAdaptiveLinkd(os.Args[1:], os.Stdout, os.Stderr))
}
