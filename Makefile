# Local dev and CI run the same targets: `make check` is exactly what
# .github/workflows/ci.yml executes.

GO ?= go

.PHONY: all build vet fmt test race bench check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails when any file needs gofmt.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark: a smoke test that the bench harness
# still compiles and runs, not a measurement.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# `race` runs the whole suite, so plain `test` would be redundant here.
check: build vet fmt race bench
