# Local dev and CI run the same targets: `make check` is exactly what
# .github/workflows/ci.yml executes.

GO ?= go

# Coverage ratchet: fail when total statement coverage drops below this.
# Raise it (never lower it) when a PR lifts coverage.
COVER_MIN ?= 86.5

.PHONY: all build vet fmt test race bench cover serve-smoke obs-smoke cluster-smoke chaos fuzz bench-service bench-probe bench-store alloc check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails when any file needs gofmt.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark: a smoke test that the bench harness
# still compiles and runs, not a measurement.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Total statement coverage with a ratchet threshold: CI fails when a
# change drops coverage below COVER_MIN. Runs under -race so one pass
# of the suite yields both guarantees.
cover:
	$(GO) test -race -coverprofile=coverage.out -covermode=atomic ./...
	@$(GO) tool cover -func=coverage.out | awk -v min=$(COVER_MIN) '\
		/^total:/ { sub(/%/, "", $$3); \
			if ($$3 + 0 < min + 0) { printf "FAIL: coverage %.1f%% below ratchet %.1f%%\n", $$3, min; exit 1 } \
			else { printf "coverage %.1f%% (ratchet %.1f%%)\n", $$3, min } }'

# End-to-end service smoke: start adaptivelinkd, drive it with
# linkbench (100 requests from 64 concurrent clients, all must be 2xx),
# SIGTERM and assert a clean drain — then restart the daemon against a
# data dir and assert the reloaded index answers identically.
serve-smoke:
	./scripts/serve_smoke.sh

# End-to-end observability smoke: request-id minting/echo, explain
# decision traces reconciling with session stats, forced per-request
# traces, the slowlog, /v1/version, the telemetry series in /metrics,
# pprof on the debug listener, the linkbench server-p99 crosscheck,
# and finally `make alloc` with tracing compiled in to prove the probe
# hot path stayed allocation-free.
obs-smoke:
	./scripts/obs_smoke.sh

# End-to-end cluster smoke: three node daemons (one group with two
# replicas) behind a quorum-1 router, linkbench driven through the
# router, a replica SIGKILLed mid-run (failover must keep every request
# 2xx and /v1/cluster must report the corpse unhealthy), writes landing
# while it is dead, the replica revived blank at its recorded address
# (hinted handoff + anti-entropy resync must converge the group's
# content digests), a whole group killed (routed batches must fail
# whole with node_unavailable, never answer partially), and clean
# SIGTERM drains for the survivors.
cluster-smoke:
	./scripts/cluster_smoke.sh

# Scripted fault suite under the race detector: crash-consistency
# sweeps and WAL poisoning in the store, snapshot/restore repair paths,
# quorum writes with hinted handoff, circuit breakers, anti-entropy
# resync, and the transport-level chaos schedules (replica killed /
# black-holed under write+probe load, revival, digest convergence).
chaos:
	$(GO) test -race -count=1 \
		-run 'Crash|Torn|Poison|Orphan|Digest|Resync|Restore|Import|Quorum|Hint|Breaker|Repair|Chaos|Heal|Prefer' \
		. ./internal/store ./internal/fault ./internal/cluster ./internal/service

# Short fuzz passes, one invariant each: torn reads (concurrent upserts
# racing probes must never expose a half-applied payload), snapshot
# decoding (arbitrary bytes never panic or build a broken index),
# write-ahead-log replay (recovery always stops at an intact record
# boundary) and decomposition parity (the byte-packed, rune-packed and
# string-fallback gram paths agree with the Grams oracle on arbitrary
# Unicode). `go test -fuzz=<name> ./internal/...` digs deeper.
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/join -run=NONE -fuzz=FuzzUpsertProbe -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/store -run=NONE -fuzz=FuzzSnapshotDecode -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/store -run=NONE -fuzz=FuzzWALReplay -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/qgram -run=NONE -fuzz=FuzzDecomposeParity -fuzztime=$(FUZZTIME)

# Service benchmark trajectory: linkbench in exact+adaptive ×
# single+batch modes against a live adaptivelinkd, appending labelled
# points to BENCH_service.json; exact runs fail on a >20% probes/s
# regression vs the previous matching point (SKIP_BENCH_DIFF=1 for
# known-noisy hosts). See scripts/bench_service.sh for the knobs.
bench-service:
	./scripts/bench_service.sh

# Probe-path microbenchmark trajectory: resident Probe/ProbeBatch plus
# the gram-extraction / candidate-generation / verification kernels,
# appended to BENCH_probe.json with the same host-label + regress-pct
# gating as bench-service. See scripts/bench_probe.sh for the knobs.
bench-probe:
	./scripts/bench_probe.sh

# Durability benchmark trajectory: cold-start time-to-first-probe
# (snapshot Open vs reindex-from-CSV) and ingest throughput (BulkLoad
# vs single logged Upserts), appended to BENCH_store.json. Also asserts
# the headline claims: cold start >=5x faster than reindexing, bulk
# load beats single upserts. See scripts/bench_store.sh for the knobs.
bench-store:
	./scripts/bench_store.sh

# Allocation-regression pins for the probe hot path (exact resident
# probe = 0 allocs/op, approximate probe within its documented budget).
# Run without -race: the race runtime perturbs allocation counts. The
# join-level pins carry a !race build tag and the kernel-level
# AllocsPerRun assertions in hashidx/qgram skip themselves under -race
# (their correctness halves still run everywhere, `cover` included);
# this target is where every allocation count is actually enforced.
alloc:
	$(GO) test . ./internal/join ./internal/hashidx ./internal/qgram -run 'Alloc|ZeroAlloc|NoAlloc|ShortCircuit' -count=1

# `cover` runs the whole suite under -race, so the `race` and `test`
# targets would be redundant here.
check: build vet fmt cover alloc bench fuzz chaos serve-smoke obs-smoke cluster-smoke
