package adaptivelink

import (
	"strings"
	"testing"
)

// TestDigestExportRestoreRoundTrip pins the repair surface: a restored
// replica reports the source's digest, keeps answering probes, and an
// imported blank replica adopts the stored configuration.
func TestDigestExportRestoreRoundTrip(t *testing.T) {
	data, err := GenerateTestData(7, 120, 40, PatternFewHigh, 0.1, true)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewIndex(FromTuples(data.Parent), IndexOptions{Shards: 2, Profile: "latin"})
	if err != nil {
		t.Fatal(err)
	}
	d1, err := src.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d1.Tuples == 0 || d1.Combined == "" || len(d1.Shards) != 2 || d1.WALRecords != 0 {
		t.Fatalf("digest shape: %+v", d1)
	}

	blob, err := src.ExportSnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}

	// A diverged replica converges to the source's digest after restore.
	stale, err := NewIndex(FromTuples(data.Parent[:50]), IndexOptions{Shards: 4, Profile: "latin"})
	if err != nil {
		t.Fatal(err)
	}
	if ds, _ := stale.Digest(); ds.Combined == d1.Combined {
		t.Fatal("stale replica already matches; fixture is degenerate")
	}
	if err := stale.RestoreSnapshot(blob); err != nil {
		t.Fatalf("restore onto in-memory replica (shard adoption): %v", err)
	}
	d2, err := stale.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d2.Combined != d1.Combined {
		t.Fatalf("restored digest %s != source %s", d2.Combined, d1.Combined)
	}
	key := data.Parent[3].Key
	if got, want := len(stale.Probe(key)), len(src.Probe(key)); got != want || got == 0 {
		t.Fatalf("restored probe %q: %d matches, source %d", key, got, want)
	}

	// A blank replacement bootstraps via ImportSnapshot, adopting config.
	imp, err := ImportSnapshot(blob, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if imp.Options().Profile != "latin" || imp.Options().Shards != 2 {
		t.Fatalf("imported options %+v did not adopt stored config", imp.Options())
	}
	if d3, _ := imp.Digest(); d3.Combined != d1.Combined {
		t.Fatalf("imported digest %s != source %s", d3.Combined, d1.Combined)
	}

	// Mismatched matching configuration is refused, named in the error.
	if err := stale.RestoreSnapshot(blob[:len(blob)-1]); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
	other, err := NewIndex(FromTuples(nil), IndexOptions{Q: 4, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.RestoreSnapshot(blob); err == nil || !strings.Contains(err.Error(), "q 4 vs 3") {
		t.Fatalf("q-mismatch restore = %v, want a q mismatch error", err)
	}
	if _, err := ImportSnapshot(blob, IndexOptions{Q: 4}); err == nil {
		t.Fatal("q-mismatch import accepted")
	}
}

// TestRestoreSnapshotDurable pins the durable restore path: the
// restored state is checkpointed (WAL reset) and survives a reopen.
func TestRestoreSnapshotDurable(t *testing.T) {
	data, err := GenerateTestData(11, 80, 10, PatternFewHigh, 0.1, true)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewIndex(FromTuples(data.Parent), IndexOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := src.ExportSnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := src.Digest()

	dir := t.TempDir()
	dst, err := Open(dir, IndexOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := dst.Upsert(data.Parent[0]); err != nil {
		t.Fatal(err)
	}
	if err := dst.RestoreSnapshot(blob); err != nil {
		t.Fatalf("durable restore: %v", err)
	}
	if got, _ := dst.Digest(); got.Combined != want.Combined {
		t.Fatalf("restored digest %s != source %s", got.Combined, want.Combined)
	}
	if dst.WALRecords() != 0 {
		t.Fatalf("restore left %d WAL records; checkpoint should have reset the log", dst.WALRecords())
	}
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got, _ := re.Digest(); got.Combined != want.Combined {
		t.Fatalf("reopened digest %s != restored %s", got.Combined, want.Combined)
	}
}
