package adaptivelink

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"adaptivelink/internal/join"
	"adaptivelink/internal/relation"
	"adaptivelink/internal/stream"
)

// parityData builds a parent/child pair for probe-parity runs. Parent
// keys are deduplicated defensively: the resident index upserts by key
// (a duplicate updates instead of inserting), while the batch engine
// stores duplicates twice, and the parity statement quantifies over
// identical reference contents.
func parityData(t *testing.T) (parent, probes []Tuple) {
	t.Helper()
	data, err := GenerateTestData(7, 300, 900, PatternUniform, 0.15, true)
	if err != nil {
		t.Fatalf("GenerateTestData: %v", err)
	}
	seen := make(map[string]bool)
	for _, p := range data.Parent {
		if seen[p.Key] {
			continue
		}
		seen[p.Key] = true
		parent = append(parent, p)
	}
	return parent, data.Child
}

func relationOf(name string, ts []Tuple) *relation.Relation {
	rel := relation.New(name, relation.NewSchema("key"))
	for _, t := range ts {
		rel.Append(t.Key, t.Attrs...)
	}
	return rel
}

// batchMatchSet drains a sequential engine pinned to the given Fig. 4
// state over a build-then-probe scan: the reference (left) side streams
// first, so every result pair is found by a probe-side tuple probing the
// fully built reference index — the same matching the resident Index
// performs — and the state's probe-side mode alone determines the set.
func batchMatchSet(t *testing.T, state join.State, parent, probes []Tuple) map[string]int {
	t.Helper()
	cfg := join.Defaults()
	cfg.Initial = state
	e, err := join.New(cfg,
		stream.FromRelation(relationOf("parent", parent)),
		stream.FromRelation(relationOf("child", probes)),
		stream.Sequential{First: stream.Left})
	if err != nil {
		t.Fatalf("join.New: %v", err)
	}
	if err := e.Open(); err != nil {
		t.Fatalf("Open: %v", err)
	}
	set := make(map[string]int)
	for {
		m, ok, err := e.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			break
		}
		set[fmt.Sprintf("%s|%s|%.9f|%v", m.LeftKey, m.RightKey, m.Similarity, m.Exact)]++
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return set
}

// probeMatchSet shuffles the probe stream, splits it over P concurrent
// sessions of the given strategy on one shared Index, and returns the
// combined match multiset. batch > 1 probes through Session.ProbeBatch
// in chunks of that size; batch <= 1 probes one key at a time.
func probeMatchSet(t *testing.T, ix *Index, strategy Strategy, probes []Tuple, par, batch int, seed int64) map[string]int {
	t.Helper()
	shuffled := append([]Tuple(nil), probes...)
	rand.New(rand.NewSource(seed)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	sets := make([]map[string]int, par)
	var wg sync.WaitGroup
	for p := 0; p < par; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sess, err := ix.NewSession(SessionOptions{Strategy: strategy})
			if err != nil {
				t.Errorf("NewSession: %v", err)
				return
			}
			var mine []string
			for i := p; i < len(shuffled); i += par {
				mine = append(mine, shuffled[i].Key)
			}
			set := make(map[string]int)
			record := func(key string, ms []ProbeMatch) {
				for _, m := range ms {
					set[fmt.Sprintf("%s|%s|%.9f|%v", m.Ref.Key, key, m.Similarity, m.Exact)]++
				}
			}
			if batch <= 1 {
				for _, key := range mine {
					record(key, sess.Probe(key))
				}
			} else {
				for lo := 0; lo < len(mine); lo += batch {
					hi := lo + batch
					if hi > len(mine) {
						hi = len(mine)
					}
					for j, ms := range sess.ProbeBatch(mine[lo:hi]) {
						record(mine[lo+j], ms)
					}
				}
			}
			sets[p] = set
		}(p)
	}
	wg.Wait()
	merged := make(map[string]int)
	for _, set := range sets {
		for k, n := range set {
			merged[k] += n
		}
	}
	return merged
}

func diffMultisets(t *testing.T, label string, want, got map[string]int) {
	t.Helper()
	for k, n := range want {
		if got[k] != n {
			t.Errorf("%s: match %q count %d, want %d", label, k, got[k], n)
		}
	}
	for k, n := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: unexpected match %q (count %d)", label, k, n)
		}
	}
}

// TestProbeParityWithBatchStates is the probe-many parity contract: for
// each of the four Fig. 4 processor states, the multiset of matches
// returned by P concurrent probe sessions over a shuffled probe stream
// is identical to the sequential batch engine's full result in that
// state. The probe operator mirrors the state's probe-side mode; the
// reference-side mode cannot contribute matches under a build-then-probe
// scan, which is what the resident index materialises.
func TestProbeParityWithBatchStates(t *testing.T) {
	parent, probes := parityData(t)
	for _, shards := range []int{1, 4} {
		shards := shards
		ix, err := NewIndex(FromTuples(parent), IndexOptions{Shards: shards})
		if err != nil {
			t.Fatalf("NewIndex: %v", err)
		}
		for si, state := range join.AllStates {
			state := state
			t.Run(fmt.Sprintf("shards=%d/%s", shards, state.Short()), func(t *testing.T) {
				want := batchMatchSet(t, state, parent, probes)
				if len(want) == 0 {
					t.Fatal("batch produced no matches; degenerate fixture")
				}
				strategy := ExactOnly
				if state.Right == join.Approx {
					strategy = ApproximateOnly
				}
				for _, par := range []int{1, 4} {
					for _, batch := range []int{1, 32} {
						got := probeMatchSet(t, ix, strategy, probes, par, batch, int64(100*si+10*par+batch))
						diffMultisets(t, fmt.Sprintf("%v shards=%d P=%d batch=%d", state, shards, par, batch), want, got)
					}
				}
			})
		}
	}
}

// TestProbeParityNonLatinScripts runs the same four-state parity
// contract over non-Latin reference tables: Cyrillic, Greek, CJK and
// Latin-with-diacritics keys all decompose through the rune-packed gram
// path in the resident index, and every state's probe multiset must
// still equal the sequential batch engine's result — the end-to-end
// differential lock on the Unicode fast path.
func TestProbeParityNonLatinScripts(t *testing.T) {
	for _, script := range []Script{ScriptLatinDiacritic, ScriptCyrillic, ScriptGreek, ScriptCJK} {
		script := script
		t.Run(string(script), func(t *testing.T) {
			data, err := GenerateTestDataScript(13, 150, 450, PatternUniform, script, 0.15, true)
			if err != nil {
				t.Fatalf("GenerateTestDataScript: %v", err)
			}
			var parent []Tuple
			seen := make(map[string]bool)
			for _, p := range data.Parent {
				if seen[p.Key] {
					continue
				}
				seen[p.Key] = true
				parent = append(parent, p)
			}
			probes := data.Child
			ix, err := NewIndex(FromTuples(parent), IndexOptions{Shards: 4})
			if err != nil {
				t.Fatalf("NewIndex: %v", err)
			}
			for si, state := range join.AllStates {
				want := batchMatchSet(t, state, parent, probes)
				if len(want) == 0 {
					t.Fatalf("%v: batch produced no matches; degenerate fixture", state)
				}
				strategy := ExactOnly
				if state.Right == join.Approx {
					strategy = ApproximateOnly
				}
				got := probeMatchSet(t, ix, strategy, probes, 2, 16, int64(1000+si))
				diffMultisets(t, fmt.Sprintf("%s/%v", script, state), want, got)
			}
		})
	}
}

// TestProbeAdaptiveBracketedByBaselines: concurrent adaptive sessions
// land between the two fixed baselines — at least every exact match, at
// most the approximate ceiling — for any interleaving.
func TestProbeAdaptiveBracketedByBaselines(t *testing.T) {
	parent, probes := parityData(t)
	ix, err := NewIndex(FromTuples(parent), IndexOptions{})
	if err != nil {
		t.Fatalf("NewIndex: %v", err)
	}
	exact := batchMatchSet(t, join.LexRex, parent, probes)
	ceiling := batchMatchSet(t, join.LapRap, parent, probes)
	got := probeMatchSet(t, ix, Adaptive, probes, 4, 16, 11)
	for k, n := range exact {
		if got[k] < n {
			t.Errorf("adaptive lost exact match %q: %d < %d", k, got[k], n)
		}
	}
	for k, n := range got {
		if ceiling[k] < n {
			t.Errorf("adaptive exceeded approximate ceiling at %q: %d > %d", k, n, ceiling[k])
		}
	}
	if sum(got) <= sum(exact) {
		t.Errorf("adaptive recovered nothing: %d matches vs exact baseline %d on a 15%% perturbed stream", sum(got), sum(exact))
	}
}

func sum(set map[string]int) int {
	n := 0
	for _, c := range set {
		n += c
	}
	return n
}
