package adaptivelink

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"adaptivelink/internal/join"
)

// newIndexOn wraps an already-built resident implementation, so the
// public session machinery can run over the retained single-shard
// reference implementation.
func newIndexOn(res join.Resident, opts IndexOptions) *Index {
	ix := &Index{opts: opts}
	ix.setResident(res)
	return ix
}

func batchFixture(t *testing.T) (parent, probes []Tuple) {
	t.Helper()
	data, err := GenerateTestData(19, 250, 800, PatternFewHigh, 0.15, true)
	if err != nil {
		t.Fatalf("GenerateTestData: %v", err)
	}
	return data.Parent, data.Child
}

func renderProbeMatches(ms []ProbeMatch) string {
	out := ""
	for _, m := range ms {
		out += fmt.Sprintf("(%d %s %q %.9f %v)", m.Ref.ID, m.Ref.Key, m.Ref.Attrs, m.Similarity, m.Exact)
	}
	return out
}

// TestSessionProbeBatchMatchesSequential pins Session.ProbeBatch to its
// contract: identical matches, statistics and control-loop trajectory
// to probing the same keys one at a time — for every strategy, across
// several batch splits, on a sharded index.
func TestSessionProbeBatchMatchesSequential(t *testing.T) {
	parent, probes := batchFixture(t)
	ix, err := NewIndex(FromTuples(parent), IndexOptions{Shards: 4})
	if err != nil {
		t.Fatalf("NewIndex: %v", err)
	}
	keys := make([]string, len(probes))
	for i, p := range probes {
		keys[i] = p.Key
	}
	strategies := []struct {
		name string
		opts SessionOptions
	}{
		{"adaptive", SessionOptions{Strategy: Adaptive}},
		{"adaptive-futility", SessionOptions{Strategy: Adaptive, FutilityK: 3}},
		{"adaptive-budget", SessionOptions{Strategy: Adaptive, CostBudget: 5000}},
		{"exact", SessionOptions{Strategy: ExactOnly}},
		{"approx", SessionOptions{Strategy: ApproximateOnly}},
	}
	for _, st := range strategies {
		st := st
		t.Run(st.name, func(t *testing.T) {
			seq, err := ix.NewSession(st.opts)
			if err != nil {
				t.Fatalf("NewSession: %v", err)
			}
			want := make([]string, len(keys))
			for i, k := range keys {
				want[i] = renderProbeMatches(seq.Probe(k))
			}
			for _, chunk := range []int{1, 7, 64, len(keys)} {
				bat, err := ix.NewSession(st.opts)
				if err != nil {
					t.Fatalf("NewSession: %v", err)
				}
				got := make([]string, 0, len(keys))
				for i := 0; i < len(keys); i += chunk {
					end := i + chunk
					if end > len(keys) {
						end = len(keys)
					}
					for _, ms := range bat.ProbeBatch(keys[i:end]) {
						got = append(got, renderProbeMatches(ms))
					}
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("chunk %d, key %d (%q): batch %s, sequential %s", chunk, i, keys[i], got[i], want[i])
					}
				}
				if !reflect.DeepEqual(bat.Stats(), seq.Stats()) {
					t.Fatalf("chunk %d: stats diverged\n batch %+v\n seq   %+v", chunk, bat.Stats(), seq.Stats())
				}
				if bat.State() != seq.State() {
					t.Fatalf("chunk %d: state %q vs %q", chunk, bat.State(), seq.State())
				}
			}
		})
	}
}

// TestIndexProbeBatchMatchesProbe pins the sessionless batch probe to
// the sessionless single probe's exact-then-escalate policy.
func TestIndexProbeBatchMatchesProbe(t *testing.T) {
	parent, probes := batchFixture(t)
	ix, err := NewIndex(FromTuples(parent), IndexOptions{Shards: 2})
	if err != nil {
		t.Fatalf("NewIndex: %v", err)
	}
	keys := make([]string, 0, len(probes)+1)
	for _, p := range probes[:200] {
		keys = append(keys, p.Key)
	}
	keys = append(keys, "definitely absent key")
	got := ix.ProbeBatch(keys...)
	if len(got) != len(keys) {
		t.Fatalf("%d results for %d keys", len(got), len(keys))
	}
	for i, k := range keys {
		if want := ix.Probe(k); renderProbeMatches(got[i]) != renderProbeMatches(want) {
			t.Errorf("key %q: batch %s, single %s", k, renderProbeMatches(got[i]), renderProbeMatches(want))
		}
	}
	if out := ix.ProbeBatch(); len(out) != 0 {
		t.Fatalf("empty batch returned %v", out)
	}
}

// TestFacadeShardedMatchesSingleShardReference is the facade slice of
// the differential harness: public sessions over sharded indexes
// (N ∈ {1, 2, 4}) and over the retained single-shard reference
// implementation are driven with one seeded stream of interleaved
// single probes, batch probes and upserts, asserting identical matches
// AND identical per-session statistics at every step, for the adaptive
// strategy and both pinned ones.
func TestFacadeShardedMatchesSingleShardReference(t *testing.T) {
	parent, probes := batchFixture(t)
	for _, strategy := range []Strategy{Adaptive, ExactOnly, ApproximateOnly} {
		strategy := strategy
		t.Run(fmt.Sprintf("strategy=%d", int(strategy)), func(t *testing.T) {
			refJoin, err := join.NewRefIndex(join.Defaults())
			if err != nil {
				t.Fatalf("NewRefIndex: %v", err)
			}
			refIx := newIndexOn(refJoin, IndexOptions{Q: 3, Theta: join.DefaultTheta, Shards: 1})
			indexes := []*Index{refIx}
			for _, n := range []int{1, 2, 4} {
				ix, err := NewIndex(FromTuples(nil), IndexOptions{Shards: n})
				if err != nil {
					t.Fatalf("NewIndex: %v", err)
				}
				indexes = append(indexes, ix)
			}
			sessions := make([]*Session, len(indexes))
			for i, ix := range indexes {
				s, err := ix.NewSession(SessionOptions{Strategy: strategy, FutilityK: 4})
				if err != nil {
					t.Fatalf("NewSession: %v", err)
				}
				sessions[i] = s
			}
			// Seed all stores identically, then interleave.
			for _, ix := range indexes {
				ix.Upsert(parent[:100]...)
			}
			rng := rand.New(rand.NewSource(99))
			nextParent := 100
			for step := 0; step < 250; step++ {
				switch rng.Intn(6) {
				case 0: // upsert a slice of fresh parents (plus a payload refresh)
					hi := nextParent + rng.Intn(5)
					if hi > len(parent) {
						hi = len(parent)
					}
					batch := append([]Tuple(nil), parent[nextParent:hi]...)
					batch = append(batch, Tuple{ID: 9000 + step, Key: parent[rng.Intn(100)].Key,
						Attrs: []string{fmt.Sprintf("refreshed-%d", step)}})
					nextParent = hi
					var wantIns, wantUpd int
					for i, ix := range indexes {
						ins, upd, err := ix.Upsert(batch...)
						if err != nil {
							t.Fatal(err)
						}
						if i == 0 {
							wantIns, wantUpd = ins, upd
							continue
						}
						if ins != wantIns || upd != wantUpd {
							t.Fatalf("step %d: index %d upsert %d/%d, reference %d/%d", step, i, ins, upd, wantIns, wantUpd)
						}
					}
				case 1, 2: // batch probe
					lo := rng.Intn(len(probes) - 20)
					n := 1 + rng.Intn(20)
					keys := make([]string, n)
					for j := 0; j < n; j++ {
						keys[j] = probes[lo+j].Key
					}
					var want []string
					for i, s := range sessions {
						out := s.ProbeBatch(keys)
						rendered := make([]string, len(out))
						for j, ms := range out {
							rendered[j] = renderProbeMatches(ms)
						}
						if i == 0 {
							want = rendered
							continue
						}
						if !reflect.DeepEqual(rendered, want) {
							t.Fatalf("step %d: index %d batch diverged\n got  %v\n want %v", step, i, rendered, want)
						}
					}
				default: // single probe
					key := probes[rng.Intn(len(probes))].Key
					var want string
					for i, s := range sessions {
						got := renderProbeMatches(s.Probe(key))
						if i == 0 {
							want = got
							continue
						}
						if got != want {
							t.Fatalf("step %d: index %d probe %q = %s, reference %s", step, i, key, got, want)
						}
					}
				}
				// Per-session statistics must agree at every step.
				want := sessions[0].Stats()
				for i, s := range sessions[1:] {
					if got := s.Stats(); !reflect.DeepEqual(got, want) {
						t.Fatalf("step %d: index %d stats diverged\n got  %+v\n want %+v", step, i+1, got, want)
					}
				}
			}
			if st := sessions[0].Stats(); st.Probes == 0 || st.Matches == 0 {
				t.Fatalf("degenerate differential run: %+v", st)
			}
		})
	}
}

// TestIndexOptionsShardsValidation pins the Shards option's edges.
func TestIndexOptionsShardsValidation(t *testing.T) {
	if _, err := NewIndex(FromTuples(nil), IndexOptions{Shards: -2}); err == nil {
		t.Fatal("negative shard count accepted")
	}
	ix, err := NewIndex(FromTuples(nil), IndexOptions{})
	if err != nil {
		t.Fatalf("NewIndex: %v", err)
	}
	if ix.Options().Shards < 1 {
		t.Fatalf("defaulted Shards = %d, want >= 1", ix.Options().Shards)
	}
	ix, err = NewIndex(FromTuples(nil), IndexOptions{Shards: 3})
	if err != nil {
		t.Fatalf("NewIndex: %v", err)
	}
	if ix.Options().Shards != 3 {
		t.Fatalf("explicit Shards = %d, want 3", ix.Options().Shards)
	}
}
