package adaptivelink

import (
	"fmt"
	"strings"
	"testing"
)

func newTestIndex(t *testing.T, keys ...string) *Index {
	t.Helper()
	ts := make([]Tuple, len(keys))
	for i, k := range keys {
		ts[i] = Tuple{ID: i, Key: k, Attrs: []string{fmt.Sprintf("attr%d", i)}}
	}
	ix, err := NewIndex(FromTuples(ts), IndexOptions{})
	if err != nil {
		t.Fatalf("NewIndex: %v", err)
	}
	return ix
}

func TestNewIndexValidation(t *testing.T) {
	if _, err := NewIndex(nil, IndexOptions{}); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, err := NewIndex(FromKeys("a"), IndexOptions{Theta: 2}); err == nil {
		t.Fatal("invalid theta accepted")
	}
	if _, err := NewIndex(&errSource{}, IndexOptions{}); err == nil || !strings.Contains(err.Error(), "reading reference") {
		t.Fatal("source error not surfaced")
	}
	ix, err := NewIndex(FromKeys(), IndexOptions{Q: 2, Theta: 0.5, Measure: Dice})
	if err != nil || ix.Len() != 0 {
		t.Fatalf("empty index: %v, len %d", err, ix.Len())
	}
	if got := ix.Options(); got.Q != 2 || got.Measure != Dice {
		t.Fatalf("Options = %+v", got)
	}
}

type errSource struct{}

func (e *errSource) Next() (Tuple, bool, error) { return Tuple{}, false, fmt.Errorf("boom") }

func TestIndexProbeOneShotEscalatesOnMiss(t *testing.T) {
	ix := newTestIndex(t, "via monte bianco nord 12", "lago di como est")
	// Exact hit: no escalation, the variant neighbour is not reported.
	ms := ix.Probe("via monte bianco nord 12")
	if len(ms) != 1 || !ms[0].Exact || ms[0].Ref.Attrs[0] != "attr0" {
		t.Fatalf("exact one-shot = %+v", ms)
	}
	// Exact miss: escalates to one approximate probe.
	ms = ix.Probe("via monte bianca nord 12")
	if len(ms) != 1 || ms[0].Exact || ms[0].Ref.Key != "via monte bianco nord 12" {
		t.Fatalf("escalated one-shot = %+v", ms)
	}
	// Total miss: empty.
	if ms := ix.Probe("xyzzy"); ms != nil {
		t.Fatalf("total miss = %+v", ms)
	}
}

func TestIndexUpsertSemantics(t *testing.T) {
	ix := newTestIndex(t, "via monte bianco nord 12")
	ins, upd, err := ix.Upsert(
		Tuple{ID: 7, Key: "via monte bianco nord 12", Attrs: []string{"fresh"}},
		Tuple{ID: 8, Key: "corso nuovo sud 3", Attrs: []string{"born"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if ins != 1 || upd != 1 || ix.Len() != 2 {
		t.Fatalf("Upsert = %d/%d, len %d", ins, upd, ix.Len())
	}
	ms := ix.Probe("via monte bianco nord 12")
	if len(ms) != 1 || ms[0].Ref.Attrs[0] != "fresh" {
		t.Fatalf("payload not replaced: %+v", ms)
	}
	if ins, upd, err := ix.Upsert(); ins != 0 || upd != 0 || err != nil {
		t.Fatalf("empty upsert = %d/%d (%v)", ins, upd, err)
	}
}

func TestSessionValidation(t *testing.T) {
	ix := newTestIndex(t, "a key of some length")
	if _, err := ix.NewSession(SessionOptions{Strategy: Strategy(9)}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if _, err := ix.NewSession(SessionOptions{CostBudget: -1}); err == nil {
		t.Fatal("negative budget accepted (adaptive)")
	}
	if _, err := ix.NewSession(SessionOptions{Strategy: ExactOnly, CostBudget: -1}); err == nil {
		t.Fatal("negative budget accepted (fixed)")
	}
	if _, err := ix.NewSession(SessionOptions{W: -1}); err == nil {
		t.Fatal("invalid W accepted")
	}
	// Every knob set at once constructs fine.
	sess, err := ix.NewSession(SessionOptions{
		W: 50, DeltaAdapt: 2, ThetaOut: 0.01, ThetaCurPert: 0.05,
		ThetaPastPert: 5, FutilityK: 4, CostBudget: 100, TraceActivations: true,
	})
	if err != nil {
		t.Fatalf("fully configured session rejected: %v", err)
	}
	sess.Probe("a key of some length")
}

func TestSessionAdaptiveEscalationEndToEnd(t *testing.T) {
	ix := newTestIndex(t, "via monte bianco nord 12", "lago di como est", "valle verde ovest 9")
	sess, err := ix.NewSession(SessionOptions{TraceActivations: true})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	// Clean probes stay exact and cheap.
	for i := 0; i < 5; i++ {
		if ms := sess.Probe("lago di como est"); len(ms) != 1 || !ms[0].Exact {
			t.Fatalf("clean probe = %+v", ms)
		}
	}
	if st := sess.Stats(); st.State != "lex/rex" || st.Escalations != 0 {
		t.Fatalf("clean session stats = %+v", st)
	}
	// A variant probe misses exactly, fires σ (p = 1), and the session
	// escalates that same probe: the caller still gets the variant match.
	ms := sess.Probe("via monte bianca nord 12")
	if len(ms) != 1 || ms[0].Exact || ms[0].Ref.Key != "via monte bianco nord 12" {
		t.Fatalf("escalated probe = %+v", ms)
	}
	st := sess.Stats()
	if st.Escalations != 1 || st.Switches == 0 || st.ApproxMatches != 1 {
		t.Fatalf("post-escalation stats = %+v", st)
	}
	if st.Hits != st.Probes {
		t.Fatalf("escalation did not recover the hit: %+v", st)
	}
	if st.ModelledCost <= float64(st.Probes) {
		t.Fatalf("ModelledCost %v not above all-exact baseline %d", st.ModelledCost, st.Probes)
	}
	if len(sess.Activations()) == 0 {
		t.Fatal("no activations recorded with TraceActivations")
	}
	// A clean stretch reverts to exact probing.
	for i := 0; i < 120; i++ {
		sess.Probe("lago di como est")
	}
	if st := sess.Stats(); st.State != "lex/rex" {
		t.Fatalf("session did not revert: %+v", st)
	}
}

func TestSessionFixedStrategies(t *testing.T) {
	ix := newTestIndex(t, "via monte bianco nord 12")
	ex, err := ix.NewSession(SessionOptions{Strategy: ExactOnly})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if ms := ex.Probe("via monte bianca nord 12"); ms != nil {
		t.Fatalf("exact-only probe found %+v", ms)
	}
	if st := ex.Stats(); st.State != "lex/rex" || st.Switches != 0 || st.ModelledCost != 1 {
		t.Fatalf("exact-only stats = %+v", st)
	}
	if ex.Activations() != nil {
		t.Fatal("fixed session has activations")
	}
	ap, err := ix.NewSession(SessionOptions{Strategy: ApproximateOnly})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if ms := ap.Probe("via monte bianca nord 12"); len(ms) != 1 {
		t.Fatalf("approx-only probe = %+v", ms)
	}
	st := ap.Stats()
	if st.State != "lap/rap" || st.ApproxMatches != 1 || st.ModelledCost <= 1 {
		t.Fatalf("approx-only stats = %+v", st)
	}
}

func TestSessionCostBudgetPinsExact(t *testing.T) {
	ix := newTestIndex(t, "via monte bianco nord 12")
	sess, err := ix.NewSession(SessionOptions{CostBudget: 2})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	sess.Probe("via monte bianco nord 12")
	sess.Probe("via monte bianco nord 12")
	// Budget exhausted: the variant miss may not escalate.
	if ms := sess.Probe("via monte bianca nord 12"); ms != nil {
		t.Fatalf("over-budget session escalated: %+v", ms)
	}
	if st := sess.Stats(); st.Escalations != 0 || st.State != "lex/rex" {
		t.Fatalf("over-budget stats = %+v", st)
	}
}
