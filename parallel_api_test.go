package adaptivelink

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// goldenData returns a fixed-seed perturbed dataset; every test using
// the same arguments sees byte-identical tuples.
func goldenData(t testing.TB, seed int64, size int) *TestData {
	t.Helper()
	td, err := GenerateTestData(seed, size, size, PatternFewHigh, 0.10, true)
	if err != nil {
		t.Fatal(err)
	}
	return td
}

func matchSet(t testing.TB, td *TestData, opts Options) []string {
	t.Helper()
	j, err := New(td.ParentSource(), td.ChildSource(), opts)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := j.All()
	if err != nil {
		t.Fatal(err)
	}
	sigs := make([]string, len(ms))
	for i, m := range ms {
		sigs[i] = fmt.Sprintf("%d|%d|%.9f|%v", m.Left.ID, m.Right.ID, m.Similarity, m.Exact)
	}
	sort.Strings(sigs)
	return sigs
}

func assertSameSet(t *testing.T, want, got []string, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d matches, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: match sets diverge at %d: %s vs %s", label, i, got[i], want[i])
		}
	}
}

// TestParallelParityFixedStrategies is the public-API golden parity
// test: for fixed seeds, a 4-way parallel join returns exactly the same
// match set (order-insensitive) as the sequential engine under both
// fixed strategies.
func TestParallelParityFixedStrategies(t *testing.T) {
	td := goldenData(t, 99, 400)
	for _, strat := range []Strategy{ExactOnly, ApproximateOnly} {
		seq := matchSet(t, td, Options{Strategy: strat, Parallelism: 1})
		par := matchSet(t, td, Options{Strategy: strat, Parallelism: 4})
		assertSameSet(t, seq, par, strat.String())
		if len(seq) == 0 {
			t.Fatalf("%v: golden dataset produced no matches", strat)
		}
	}
}

// TestParallelAdaptive exercises the sharded control loop end to end
// through the facade: the aggregate deficit test must recover variant
// matches beyond the exact baseline, and the trace must be observable.
func TestParallelAdaptive(t *testing.T) {
	td := goldenData(t, 7, 600)
	exact := matchSet(t, td, Options{Strategy: ExactOnly, Parallelism: 1})
	approx := matchSet(t, td, Options{Strategy: ApproximateOnly, Parallelism: 1})

	j, err := New(td.ParentSource(), td.ChildSource(), Options{
		Strategy:         Adaptive,
		Parallelism:      4,
		TraceActivations: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := j.Parallelism(); got != 4 {
		t.Fatalf("Parallelism() = %d, want 4", got)
	}
	ms, err := j.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) <= len(exact) {
		t.Errorf("parallel adaptive found %d matches, exact baseline %d — no gain", len(ms), len(exact))
	}
	if len(ms) > len(approx) {
		t.Errorf("parallel adaptive found %d matches, above the approximate ceiling %d", len(ms), len(approx))
	}

	st := j.Stats()
	if st.Parallelism != 4 {
		t.Errorf("Stats.Parallelism = %d, want 4", st.Parallelism)
	}
	if st.Matches != len(ms) {
		t.Errorf("Stats.Matches = %d, stream delivered %d", st.Matches, len(ms))
	}
	if st.LeftRead != 600 || st.RightRead != 600 {
		t.Errorf("read counts (%d,%d), want (600,600)", st.LeftRead, st.RightRead)
	}
	if st.Steps != 1200 {
		t.Errorf("Steps = %d, want 1200 (each input tuple once)", st.Steps)
	}
	if st.ShardSteps < st.Steps {
		t.Errorf("ShardSteps = %d < Steps = %d", st.ShardSteps, st.Steps)
	}
	if st.Switches == 0 {
		t.Error("no shard switches despite 10% variants")
	}
	if len(j.Activations()) == 0 {
		t.Error("no activations traced")
	}
	if s := j.State(); s == "" {
		t.Error("empty state name")
	}
}

// TestParallelDefaults pins the Parallelism option semantics: 0
// resolves to GOMAXPROCS and the formerly sequential-only features —
// RetainWindow and CostBudget — now keep the requested shard count.
func TestParallelDefaults(t *testing.T) {
	td := goldenData(t, 11, 60)
	j, err := New(td.ParentSource(), td.ChildSource(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if j.Parallelism() < 1 {
		t.Errorf("default parallelism %d < 1", j.Parallelism())
	}
	j.Close()

	for name, opts := range map[string]Options{
		"retain-window": {Parallelism: 4, RetainWindow: 50, Strategy: ExactOnly},
		"cost-budget":   {Parallelism: 4, CostBudget: 1000},
		"both":          {Parallelism: 4, RetainWindow: 50, CostBudget: 1000},
	} {
		j, err := New(td.ParentSource(), td.ChildSource(), opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if j.Parallelism() != 4 {
			t.Errorf("%s: parallelism %d, want the requested 4 (no sequential fallback)", name, j.Parallelism())
		}
		if _, err := j.All(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestOptionsValidation pins the descriptive rejection of nonsense
// option values that previously misbehaved silently or opaquely.
func TestOptionsValidation(t *testing.T) {
	td := goldenData(t, 11, 40)
	for name, tc := range map[string]struct {
		opts Options
		want string
	}{
		"negative-parallelism": {Options{Parallelism: -1}, "negative parallelism"},
		"negative-window":      {Options{RetainWindow: -5}, "negative retain window"},
		"negative-budget":      {Options{CostBudget: -0.5}, "negative cost budget"},
	} {
		_, err := New(td.ParentSource(), td.ChildSource(), tc.opts)
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.want)
		}
	}
}

// parityOptions enumerates the windowed, budgeted and windowed+budgeted
// configurations of the public parity harness. Budgets only bind under
// the adaptive strategy; windows apply everywhere.
func parityOptions() map[string]Options {
	return map[string]Options{
		"windowed-exact":    {Strategy: ExactOnly, RetainWindow: 80},
		"windowed-approx":   {Strategy: ApproximateOnly, RetainWindow: 80},
		"windowed-adaptive": {Strategy: Adaptive, RetainWindow: 120},
		"budgeted-tight":    {Strategy: Adaptive, CostBudget: 500},
		"budgeted-mid":      {Strategy: Adaptive, CostBudget: 8_000},
		"budgeted-loose":    {Strategy: Adaptive, CostBudget: 1e9},
		"windowed+budgeted": {Strategy: Adaptive, RetainWindow: 120, CostBudget: 8_000},
	}
}

// TestParallelWindowBudgetParity is the public-API golden parity test
// for the two formerly sequential-only safety valves: windowed,
// budgeted and windowed+budgeted joins at P∈{2,4} must return exactly
// the sequential engine's match set. For the budgeted adaptive runs
// this also exercises decision parity: the aggregate controller's
// window replay and logical spend counter must fire the same switches
// (including the budget pin) at the same consistent cuts the sequential
// controller activates at.
func TestParallelWindowBudgetParity(t *testing.T) {
	td := goldenData(t, 99, 400)
	for name, opts := range parityOptions() {
		t.Run(name, func(t *testing.T) {
			opts.Parallelism = 1
			seq := matchSet(t, td, opts)
			for _, p := range []int{2, 4} {
				opts.Parallelism = p
				par := matchSet(t, td, opts)
				assertSameSet(t, seq, par, fmt.Sprintf("%s/P=%d", name, p))
			}
			if len(seq) == 0 {
				t.Fatalf("%s: golden dataset produced no matches", name)
			}
		})
	}
}

// TestParallelWindowBudgetParityRandom is the randomized property: any
// seed, any window, any budget, P vs sequential — identical match sets.
// Run under -race by CI.
func TestParallelWindowBudgetParityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 5; trial++ {
		seed := rng.Int63()
		size := 150 + rng.Intn(250)
		td := goldenData(t, seed, size)
		opts := Options{Strategy: Adaptive}
		if rng.Intn(2) == 0 {
			opts.RetainWindow = 20 + rng.Intn(2*size)
		}
		if opts.RetainWindow == 0 || rng.Intn(2) == 0 {
			opts.CostBudget = 200 + 400*rng.Float64()*float64(size)
		}
		p := 2 + rng.Intn(3)
		name := fmt.Sprintf("trial%d/seed=%d/size=%d/w=%d/b=%.0f/P=%d",
			trial, seed, size, opts.RetainWindow, opts.CostBudget, p)
		t.Run(name, func(t *testing.T) {
			opts.Parallelism = 1
			seq := matchSet(t, td, opts)
			opts.Parallelism = p
			par := matchSet(t, td, opts)
			assertSameSet(t, seq, par, name)
		})
	}
}

// TestParallelBudgetStats checks the budget surface of Stats: the
// parallel spend counter tracks the logical scan (not replicated shard
// work) and a tight budget actually pins the run.
func TestParallelBudgetStats(t *testing.T) {
	td := goldenData(t, 7, 600)
	j, err := New(td.ParentSource(), td.ChildSource(), Options{
		Strategy:         Adaptive,
		Parallelism:      4,
		CostBudget:       600,
		TraceActivations: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.All(); err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if st.BudgetSpend <= 0 {
		t.Errorf("BudgetSpend = %v, want > 0", st.BudgetSpend)
	}
	if st.BudgetSpend > st.ModelledCost {
		t.Errorf("logical spend %v exceeds the replicated modelled cost %v", st.BudgetSpend, st.ModelledCost)
	}
	if got := j.State(); got != "lex/rex" {
		t.Errorf("state after exhausting a tight budget = %s, want lex/rex", got)
	}
}

// TestParallelStrategiesMatchSequential runs every strategy at P=3 and
// P=1 over the same golden data and demands full match-set equality —
// including the adaptive strategy: the aggregate controller's window
// replay gives it the sequential controller's decisions
// activation-for-activation, so even switch placement is identical.
func TestParallelStrategiesMatchSequential(t *testing.T) {
	td := goldenData(t, 21, 300)
	for _, strat := range []Strategy{ExactOnly, ApproximateOnly, Adaptive} {
		seq := matchSet(t, td, Options{Strategy: strat, Parallelism: 1})
		par := matchSet(t, td, Options{Strategy: strat, Parallelism: 3})
		assertSameSet(t, seq, par, strat.String())
	}
}
