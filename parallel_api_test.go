package adaptivelink

import (
	"fmt"
	"sort"
	"testing"
)

// goldenData returns a fixed-seed perturbed dataset; every test using
// the same arguments sees byte-identical tuples.
func goldenData(t testing.TB, seed int64, size int) *TestData {
	t.Helper()
	td, err := GenerateTestData(seed, size, size, PatternFewHigh, 0.10, true)
	if err != nil {
		t.Fatal(err)
	}
	return td
}

func matchSet(t testing.TB, td *TestData, opts Options) []string {
	t.Helper()
	j, err := New(td.ParentSource(), td.ChildSource(), opts)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := j.All()
	if err != nil {
		t.Fatal(err)
	}
	sigs := make([]string, len(ms))
	for i, m := range ms {
		sigs[i] = fmt.Sprintf("%d|%d|%.9f|%v", m.Left.ID, m.Right.ID, m.Similarity, m.Exact)
	}
	sort.Strings(sigs)
	return sigs
}

func assertSameSet(t *testing.T, want, got []string, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d matches, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: match sets diverge at %d: %s vs %s", label, i, got[i], want[i])
		}
	}
}

// TestParallelParityFixedStrategies is the public-API golden parity
// test: for fixed seeds, a 4-way parallel join returns exactly the same
// match set (order-insensitive) as the sequential engine under both
// fixed strategies.
func TestParallelParityFixedStrategies(t *testing.T) {
	td := goldenData(t, 99, 400)
	for _, strat := range []Strategy{ExactOnly, ApproximateOnly} {
		seq := matchSet(t, td, Options{Strategy: strat, Parallelism: 1})
		par := matchSet(t, td, Options{Strategy: strat, Parallelism: 4})
		assertSameSet(t, seq, par, strat.String())
		if len(seq) == 0 {
			t.Fatalf("%v: golden dataset produced no matches", strat)
		}
	}
}

// TestParallelAdaptive exercises the sharded control loop end to end
// through the facade: the aggregate deficit test must recover variant
// matches beyond the exact baseline, and the trace must be observable.
func TestParallelAdaptive(t *testing.T) {
	td := goldenData(t, 7, 600)
	exact := matchSet(t, td, Options{Strategy: ExactOnly, Parallelism: 1})
	approx := matchSet(t, td, Options{Strategy: ApproximateOnly, Parallelism: 1})

	j, err := New(td.ParentSource(), td.ChildSource(), Options{
		Strategy:         Adaptive,
		Parallelism:      4,
		TraceActivations: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := j.Parallelism(); got != 4 {
		t.Fatalf("Parallelism() = %d, want 4", got)
	}
	ms, err := j.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) <= len(exact) {
		t.Errorf("parallel adaptive found %d matches, exact baseline %d — no gain", len(ms), len(exact))
	}
	if len(ms) > len(approx) {
		t.Errorf("parallel adaptive found %d matches, above the approximate ceiling %d", len(ms), len(approx))
	}

	st := j.Stats()
	if st.Parallelism != 4 {
		t.Errorf("Stats.Parallelism = %d, want 4", st.Parallelism)
	}
	if st.Matches != len(ms) {
		t.Errorf("Stats.Matches = %d, stream delivered %d", st.Matches, len(ms))
	}
	if st.LeftRead != 600 || st.RightRead != 600 {
		t.Errorf("read counts (%d,%d), want (600,600)", st.LeftRead, st.RightRead)
	}
	if st.Steps != 1200 {
		t.Errorf("Steps = %d, want 1200 (each input tuple once)", st.Steps)
	}
	if st.ShardSteps < st.Steps {
		t.Errorf("ShardSteps = %d < Steps = %d", st.ShardSteps, st.Steps)
	}
	if st.Switches == 0 {
		t.Error("no shard switches despite 10% variants")
	}
	if len(j.Activations()) == 0 {
		t.Error("no activations traced")
	}
	if s := j.State(); s == "" {
		t.Error("empty state name")
	}
}

// TestParallelDefaultsAndFallbacks pins the Parallelism option
// semantics: 0 resolves to GOMAXPROCS, negatives are rejected, and the
// sequential-only features force the legacy path.
func TestParallelDefaultsAndFallbacks(t *testing.T) {
	td := goldenData(t, 11, 60)
	if _, err := New(td.ParentSource(), td.ChildSource(), Options{Parallelism: -1}); err == nil {
		t.Error("negative parallelism accepted")
	}
	j, err := New(td.ParentSource(), td.ChildSource(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if j.Parallelism() < 1 {
		t.Errorf("default parallelism %d < 1", j.Parallelism())
	}
	j.Close()

	for name, opts := range map[string]Options{
		"retain-window": {Parallelism: 4, RetainWindow: 50, Strategy: ExactOnly},
		"cost-budget":   {Parallelism: 4, CostBudget: 1000},
	} {
		j, err := New(td.ParentSource(), td.ChildSource(), opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if j.Parallelism() != 1 {
			t.Errorf("%s: parallelism %d, want sequential fallback 1", name, j.Parallelism())
		}
		if _, err := j.All(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestParallelStrategiesMatchSequentialCounts runs every strategy at
// P=3 and P=1 over the same golden data and compares result sizes — a
// cheap smoke across the full strategy surface (the adaptive count is
// checked against bounds, not equality: switch timing differs).
func TestParallelStrategiesMatchSequentialCounts(t *testing.T) {
	td := goldenData(t, 21, 300)
	exactN := len(matchSet(t, td, Options{Strategy: ExactOnly, Parallelism: 1}))
	approxN := len(matchSet(t, td, Options{Strategy: ApproximateOnly, Parallelism: 1}))
	if n := len(matchSet(t, td, Options{Strategy: ExactOnly, Parallelism: 3})); n != exactN {
		t.Errorf("exact P=3: %d matches, want %d", n, exactN)
	}
	if n := len(matchSet(t, td, Options{Strategy: ApproximateOnly, Parallelism: 3})); n != approxN {
		t.Errorf("approximate P=3: %d matches, want %d", n, approxN)
	}
	n := len(matchSet(t, td, Options{Strategy: Adaptive, Parallelism: 3}))
	if n < exactN || n > approxN {
		t.Errorf("adaptive P=3: %d matches outside [%d, %d]", n, exactN, approxN)
	}
}
