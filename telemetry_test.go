package adaptivelink

import (
	"path/filepath"
	"testing"
)

func TestTelemetryAccessors(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ix")
	ix, err := Open(dir, IndexOptions{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, _, err := ix.Upsert(Tuple{ID: 1, Key: "VIA MONTE ROSA 7"}, Tuple{ID: 2, Key: "PIAZZA DUOMO 1"}); err != nil {
		t.Fatalf("Upsert: %v", err)
	}

	es := ix.EngineStats()
	if es.Upserts != 1 {
		t.Fatalf("EngineStats.Upserts = %d, want 1", es.Upserts)
	}
	if es.SnapshotSwaps == 0 {
		t.Fatalf("EngineStats.SnapshotSwaps = 0 after an upsert")
	}
	if es.ScratchGets == 0 || es.ScratchMisses > es.ScratchGets {
		t.Fatalf("scratch counters inconsistent: gets=%d misses=%d", es.ScratchGets, es.ScratchMisses)
	}

	st, ok := ix.StorageStats()
	if !ok {
		t.Fatalf("StorageStats not ok for a durable index")
	}
	if st.WALAppends != 1 {
		t.Fatalf("WALAppends = %d, want 1", st.WALAppends)
	}
	if st.WALAppendSeconds <= 0 {
		t.Fatalf("WALAppendSeconds = %v, want > 0", st.WALAppendSeconds)
	}
	if err := ix.Save(""); err != nil {
		t.Fatalf("Save: %v", err)
	}
	st, _ = ix.StorageStats()
	if st.Checkpoints != 1 || st.CheckpointSeconds <= 0 {
		t.Fatalf("checkpoint stats = %+v, want 1 checkpoint with time", st)
	}

	// Fresh open on a directory with a snapshot: recovery reported.
	if err := ix.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	ix2, err := Open(dir, IndexOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer ix2.Close()
	ri := ix2.RecoveryInfo()
	if !ri.Recovered || ri.SnapshotTuples != 2 || ri.WALBatchesReplayed != 0 || ri.TornTailTruncated {
		t.Fatalf("RecoveryInfo = %+v, want recovered snapshot of 2", ri)
	}
}

func TestTelemetryInMemory(t *testing.T) {
	ix, err := NewIndex(FromTuples([]Tuple{{ID: 1, Key: "VIA ROMA 1"}}), IndexOptions{})
	if err != nil {
		t.Fatalf("NewIndex: %v", err)
	}
	if ri := ix.RecoveryInfo(); ri.Recovered {
		t.Fatalf("in-memory RecoveryInfo = %+v, want zero", ri)
	}
	if _, ok := ix.StorageStats(); ok {
		t.Fatalf("in-memory StorageStats ok = true, want false")
	}
}
