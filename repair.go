package adaptivelink

import (
	"bytes"
	"fmt"
	"io"

	"adaptivelink/internal/join"
	"adaptivelink/internal/store"
)

// IndexDigest is a cheap content fingerprint for replica comparison:
// CRC-32C digests over the index's canonical snapshot encoding — the
// same export a checkpoint writes, computed straight from the resident
// representation without re-hashing a single gram — plus the WAL
// position. Two replicas that applied the same upsert stream report the
// same Combined digest, so anti-entropy can detect divergence by
// exchanging a few dozen bytes instead of snapshots.
type IndexDigest struct {
	// Combined folds the tuple-store digest and every shard digest into
	// one hex word — the value replicas compare.
	Combined string `json:"combined"`
	// Store is the tuple-store section's digest; Shards the per-shard
	// section digests, for narrowing a divergence to a shard.
	Store  string   `json:"store"`
	Shards []string `json:"shards"`
	// Tuples is the resident tuple count the digest covers.
	Tuples int `json:"tuples"`
	// WALRecords is the number of upsert batches logged since the last
	// checkpoint (0 for in-memory indexes) — the replica's log position,
	// read atomically with the digest.
	WALRecords int64 `json:"wal_records"`
}

// snapshotExporter gates the repair surface to residents that can
// export their state (the local sharded engine; remote residents
// cannot).
func (ix *Index) snapshotExporter() (*join.ShardedRefIndex, error) {
	sr, ok := ix.resident().(*join.ShardedRefIndex)
	if !ok {
		return nil, fmt.Errorf("adaptivelink: index backend %T does not snapshot", ix.resident())
	}
	return sr, nil
}

// Digest fingerprints the index's current content. On a durable index
// the digest and WAL position are read under the write lock, so the
// pair is a consistent point: a replica reporting the same Combined
// digest and record count holds byte-identical state.
func (ix *Index) Digest() (IndexDigest, error) {
	sr, err := ix.snapshotExporter()
	if err != nil {
		return IndexDigest{}, err
	}
	var walRecords int64
	if ix.dir != nil {
		ix.mu.Lock()
		defer ix.mu.Unlock()
		walRecords = ix.dir.WALRecords()
	}
	v, err := sr.ExportSnapshot()
	if err != nil {
		return IndexDigest{}, err
	}
	d := store.DigestView(v)
	return IndexDigest{
		Combined:   d.Combined,
		Store:      d.Store,
		Shards:     d.Shards,
		Tuples:     d.Tuples,
		WALRecords: walRecords,
	}, nil
}

// ExportSnapshotTo streams the index's state in the snapshot format —
// the same bytes a checkpoint writes — without touching the index's own
// storage. This is the sending half of a replica resync; the receiver
// applies it with RestoreSnapshot.
func (ix *Index) ExportSnapshotTo(w io.Writer) error {
	sr, err := ix.snapshotExporter()
	if err != nil {
		return err
	}
	v, err := sr.ExportSnapshot()
	if err != nil {
		return err
	}
	return store.WriteSnapshot(w, v)
}

// ExportSnapshotBytes is ExportSnapshotTo into memory.
func (ix *Index) ExportSnapshotBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := ix.ExportSnapshotTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RestoreSnapshot replaces the index's entire content with the given
// snapshot (as produced by ExportSnapshotTo on a healthy replica) —
// the receiving half of a replica resync. The snapshot must carry the
// index's own matching configuration: Q, θsim, measure and
// normalization profile always have to match, and a durable index's
// shard count too (its stored artifacts are bound to it); an in-memory
// index adopts the incoming shard layout, since resharding a resident
// engine is free at replacement time.
//
// The swap is atomic with respect to probes: in-flight probes finish
// against the old content, later probes see the new one, and on a
// durable index the restored state is checkpointed before the swap —
// so an acknowledged restore survives a crash and the WAL never mixes
// pre- and post-restore batches. A failed restore leaves the index
// unchanged.
func (ix *Index) RestoreSnapshot(data []byte) error {
	v, err := store.DecodeSnapshot(data)
	if err != nil {
		return fmt.Errorf("adaptivelink: restoring snapshot: %w", err)
	}
	incoming := store.MetaOf(v)
	want := ix.opts.meta()
	if ix.dir == nil {
		// In-memory replicas adopt the snapshot's shard layout.
		want.Shards = incoming.Shards
	}
	if err := want.Check(incoming); err != nil {
		return fmt.Errorf("adaptivelink: restoring snapshot: %w", err)
	}
	ri, err := join.NewShardedRefIndexFromSnapshot(v)
	if err != nil {
		return fmt.Errorf("adaptivelink: restoring snapshot: %w", err)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.closed {
		return ErrIndexClosed
	}
	if ix.dir != nil {
		// Persist first: if the checkpoint fails the resident engine is
		// untouched and memory still equals disk.
		if err := ix.dir.Checkpoint(ri); err != nil {
			return fmt.Errorf("adaptivelink: persisting restored snapshot: %w", err)
		}
	}
	ix.setResident(ri)
	return nil
}

// ImportSnapshot builds a fresh in-memory index from exported snapshot
// bytes — how a blank replacement replica bootstraps before catching up
// through normal upserts. Options left zero adopt the snapshot's stored
// configuration; options set explicitly must match it. Storage must be
// zero (Save the imported index afterwards to make it durable).
func ImportSnapshot(data []byte, opts IndexOptions) (*Index, error) {
	if opts.Storage.Dir != "" {
		return nil, fmt.Errorf("adaptivelink: ImportSnapshot builds in-memory indexes; Save to %q afterwards to persist", opts.Storage.Dir)
	}
	v, err := store.DecodeSnapshot(data)
	if err != nil {
		return nil, fmt.Errorf("adaptivelink: importing snapshot: %w", err)
	}
	m := store.MetaOf(v)
	if opts.Q == 0 {
		opts.Q = m.Q
	}
	if opts.Theta == 0 {
		opts.Theta = m.Theta
	}
	if opts.Measure == 0 {
		opts.Measure = Measure(m.Measure)
	}
	if opts.Shards == 0 {
		opts.Shards = m.Shards
	}
	if opts.Profile == "" {
		opts.Profile = m.Profile
	}
	opts, err = opts.resolved()
	if err != nil {
		return nil, err
	}
	if err := opts.meta().Check(m); err != nil {
		return nil, fmt.Errorf("adaptivelink: importing snapshot: %w", err)
	}
	ri, err := join.NewShardedRefIndexFromSnapshot(v)
	if err != nil {
		return nil, fmt.Errorf("adaptivelink: importing snapshot: %w", err)
	}
	return newIndex(ri, opts), nil
}
