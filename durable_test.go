package adaptivelink

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// durableTuples is a deterministic reference with near-duplicate keys,
// so exact and approximate probes both have work to do.
func durableTuples(n int) []Tuple {
	rng := rand.New(rand.NewSource(7))
	streets := []string{"via monte bianco", "corso sempione", "piazza duomo", "viale certosa"}
	out := make([]Tuple, 0, n+n/5)
	for i := 0; i < n; i++ {
		out = append(out, Tuple{
			ID:    i,
			Key:   fmt.Sprintf("%s %d", streets[rng.Intn(len(streets))], i),
			Attrs: []string{fmt.Sprintf("attr-%d", i)},
		})
	}
	for i := 0; i < n/5; i++ {
		src := out[rng.Intn(n)].Key
		b := []byte(src)
		b[rng.Intn(len(b))] = 'z'
		out = append(out, Tuple{ID: 5000 + i, Key: string(b), Attrs: []string{"variant"}})
	}
	return out
}

func renderPublic(ms []ProbeMatch) string {
	var b strings.Builder
	for _, m := range ms {
		fmt.Fprintf(&b, "%d:%q:%v:%.9f:%v;", m.Ref.ID, m.Ref.Key, m.Ref.Attrs, m.Similarity, m.Exact)
	}
	return b.String()
}

// assertIndexEqual holds two indexes to identical probe behaviour over
// every stored key (one-shot escalating probe plus a pure batch pass).
func assertIndexEqual(t *testing.T, want, got *Index, keys []string) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), want.Len())
	}
	wb, gb := want.ProbeBatch(keys...), got.ProbeBatch(keys...)
	for i, k := range keys {
		if w, g := renderPublic(want.Probe(k)), renderPublic(got.Probe(k)); w != g {
			t.Fatalf("Probe(%q) = %s, want %s", k, g, w)
		}
		if w, g := renderPublic(wb[i]), renderPublic(gb[i]); w != g {
			t.Fatalf("ProbeBatch(%q) = %s, want %s", k, g, w)
		}
	}
}

func keysOf(ts []Tuple) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Key
	}
	return out
}

// TestOpenRestartRoundTrip is the facade-level restart contract: open,
// ingest, restart, and the reloaded index answers byte-identically —
// first from pure WAL replay, then from snapshot + WAL, then from a
// pure snapshot after a checkpoint.
func TestOpenRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tuples := durableTuples(80)
	keys := keysOf(tuples)
	mem := newTestIndexFrom(t, nil)

	ix, err := Open(dir, IndexOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Durable() {
		t.Fatal("Open returned a non-durable index")
	}
	upsertBoth := func(batch []Tuple) {
		t.Helper()
		if _, _, err := ix.Upsert(batch...); err != nil {
			t.Fatal(err)
		}
		if _, _, err := mem.Upsert(batch...); err != nil {
			t.Fatal(err)
		}
	}
	restart := func() {
		t.Helper()
		if err := ix.Close(); err != nil {
			t.Fatal(err)
		}
		// Zero options: the stored configuration wins.
		ix, err = Open(dir, IndexOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got := ix.Options().Shards; got != 2 {
			t.Fatalf("reopened with %d shards, stored 2", got)
		}
		assertIndexEqual(t, mem, ix, keys)
	}

	upsertBoth(tuples[:50])
	if ix.WALRecords() != 1 {
		t.Fatalf("WALRecords = %d, want 1", ix.WALRecords())
	}
	restart() // pure WAL replay

	if err := ix.Save(""); err != nil { // checkpoint in place
		t.Fatal(err)
	}
	if ix.WALRecords() != 0 {
		t.Fatalf("WALRecords after checkpoint = %d", ix.WALRecords())
	}
	if ix.LastSnapshot().IsZero() {
		t.Fatal("LastSnapshot zero after checkpoint")
	}
	upsertBoth(tuples[50:]) // variants + payload refreshes past the snapshot
	upsertBoth([]Tuple{{ID: 9001, Key: tuples[0].Key, Attrs: []string{"refreshed"}}})
	restart() // snapshot + WAL replay

	// SnapshotOnClose: the next reopen replays nothing.
	ix.opts.Storage.SnapshotOnClose = true
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	ix, err = Open(dir, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ix.WALRecords() != 0 {
		t.Fatalf("WALRecords after snapshot-on-close reopen = %d", ix.WALRecords())
	}
	assertIndexEqual(t, mem, ix, keys)
	ix.Close()
}

func newTestIndexFrom(t *testing.T, ts []Tuple) *Index {
	t.Helper()
	ix, err := NewIndex(FromTuples(ts), IndexOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// TestOpenConfigContract pins the compatibility contract: unset fields
// adopt the stored configuration, set-and-different fields are
// descriptive errors.
func TestOpenConfigContract(t *testing.T) {
	dir := t.TempDir()
	ix, err := Open(dir, IndexOptions{Q: 2, Theta: 0.8, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	ix.Upsert(durableTuples(10)...)
	ix.Close()

	for _, c := range []struct {
		name string
		opts IndexOptions
	}{
		{"q", IndexOptions{Q: 4}},
		{"theta", IndexOptions{Theta: 0.6}},
		{"shards", IndexOptions{Shards: 8}},
		{"measure", IndexOptions{Measure: Dice}},
	} {
		if _, err := Open(dir, c.opts); err == nil || !strings.Contains(err.Error(), "mismatch") {
			t.Fatalf("%s mismatch: err = %v, want configuration mismatch", c.name, err)
		}
	}
	// Matching explicit options are fine.
	ix, err = Open(dir, IndexOptions{Q: 2, Theta: 0.8, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	got := ix.Options()
	if got.Q != 2 || got.Theta != 0.8 || got.Shards != 3 {
		t.Fatalf("resolved options = %+v", got)
	}
	ix.Close()

	if _, err := Open("", IndexOptions{}); err == nil {
		t.Fatal("Open(\"\") accepted")
	}
	if _, err := Open(dir, IndexOptions{Storage: StorageOptions{Dir: "elsewhere"}}); err == nil {
		t.Fatal("conflicting Storage.Dir accepted")
	}
	if _, err := NewIndex(FromTuples(nil), IndexOptions{Storage: StorageOptions{Dir: dir}}); err == nil || !strings.Contains(err.Error(), "Open") {
		t.Fatalf("NewIndex with Storage.Dir: err = %v, want a pointer to Open", err)
	}
}

// TestBulkLoadDurable: BulkLoad persists by writing the snapshot
// directly, refuses occupied directories, and the reloaded index equals
// an in-memory build over the same source.
func TestBulkLoadDurable(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "idx")
	tuples := durableTuples(120)
	mem, err := NewIndex(FromTuples(tuples), IndexOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	bulk, err := BulkLoad(FromTuples(tuples), IndexOptions{Shards: 2, Storage: StorageOptions{Dir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	if !bulk.Durable() || bulk.WALRecords() != 0 {
		t.Fatalf("bulk index durable=%v wal=%d, want durable with an empty log", bulk.Durable(), bulk.WALRecords())
	}
	assertIndexEqual(t, mem, bulk, keysOf(tuples))
	// The bulk-loaded index keeps logging like any durable index.
	extra := Tuple{ID: 8888, Key: "piazza nuova 1", Attrs: []string{"late"}}
	if _, _, err := bulk.Upsert(extra); err != nil {
		t.Fatal(err)
	}
	mem.Upsert(extra)
	bulk.Close()

	if _, err := BulkLoad(FromTuples(tuples), IndexOptions{Storage: StorageOptions{Dir: dir}}); err == nil {
		t.Fatal("BulkLoad into an occupied directory accepted")
	}
	re, err := Open(dir, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertIndexEqual(t, mem, re, append(keysOf(tuples), extra.Key))
	re.Close()

	// In-memory BulkLoad: just the fast constructor.
	fast, err := BulkLoad(FromTuples(tuples), IndexOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Durable() {
		t.Fatal("in-memory BulkLoad claims durability")
	}
	mem2, _ := NewIndex(FromTuples(tuples), IndexOptions{Shards: 2})
	assertIndexEqual(t, mem2, fast, keysOf(tuples))
}

// TestSaveExportsInMemoryIndex: Save(dir) turns an in-memory index into
// an openable directory without re-homing the index.
func TestSaveExportsInMemoryIndex(t *testing.T) {
	tuples := durableTuples(40)
	mem, err := NewIndex(FromTuples(tuples), IndexOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Save(""); err == nil {
		t.Fatal("Save(\"\") on an in-memory index accepted")
	}
	dir := filepath.Join(t.TempDir(), "export")
	if err := mem.Save(dir); err != nil {
		t.Fatal(err)
	}
	if mem.Durable() {
		t.Fatal("Save re-homed the in-memory index")
	}
	if err := mem.Save(dir); err == nil {
		t.Fatal("Save over an existing index directory accepted")
	}
	re, err := Open(dir, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertIndexEqual(t, mem, re, keysOf(tuples))
	re.Close()
}

// TestClosedIndexWrites: writes after Close fail with ErrIndexClosed;
// probes keep working; double Close is a no-op.
func TestClosedIndexWrites(t *testing.T) {
	dir := t.TempDir()
	ix, err := Open(dir, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tuples := durableTuples(10)
	if _, _, err := ix.Upsert(tuples...); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.Upsert(tuples[0]); !errors.Is(err, ErrIndexClosed) {
		t.Fatalf("Upsert after Close: %v, want ErrIndexClosed", err)
	}
	if err := ix.Save(""); !errors.Is(err, ErrIndexClosed) {
		t.Fatalf("Save after Close: %v, want ErrIndexClosed", err)
	}
	if got := ix.Probe(tuples[0].Key); len(got) != 1 {
		t.Fatalf("probe after Close = %+v", got)
	}
}

// TestSyncNonePolicy: a SyncNone index still round-trips through a
// clean Close (the policy only changes crash guarantees, not shutdown).
func TestSyncNonePolicy(t *testing.T) {
	dir := t.TempDir()
	ix, err := Open(dir, IndexOptions{Storage: StorageOptions{WALSync: SyncNone}})
	if err != nil {
		t.Fatal(err)
	}
	tuples := durableTuples(20)
	if _, _, err := ix.Upsert(tuples...); err != nil {
		t.Fatal(err)
	}
	ix.Close()
	re, err := Open(dir, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != ix.Len() {
		t.Fatalf("reloaded Len = %d, want %d", re.Len(), ix.Len())
	}
	re.Close()
}

// TestSaveOwnDirCheckpoints: Save(path) naming the index's own
// directory — even through a relative or unnormalised spelling — is a
// checkpoint in place, not an export-refused-as-occupied.
func TestSaveOwnDirCheckpoints(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "home")
	ix, err := Open(dir, IndexOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if _, _, err := ix.Upsert(durableTuples(10)...); err != nil {
		t.Fatal(err)
	}
	if ix.WALRecords() != 1 {
		t.Fatalf("WALRecords = %d, want 1", ix.WALRecords())
	}
	unnormalised := filepath.Join(dir, "..", filepath.Base(dir))
	if err := ix.Save(unnormalised); err != nil {
		t.Fatalf("Save(own dir) = %v, want in-place checkpoint", err)
	}
	if ix.WALRecords() != 0 {
		t.Fatalf("WALRecords after checkpoint = %d, want 0", ix.WALRecords())
	}
}

// TestIsIndexDir: stored indexes are recognised without loading them,
// empty or absent directories are simply false, and unreadable
// artifacts are an error.
func TestIsIndexDir(t *testing.T) {
	if ok, err := IsIndexDir(filepath.Join(t.TempDir(), "absent")); ok || err != nil {
		t.Fatalf("IsIndexDir(absent) = %v, %v", ok, err)
	}
	dir := filepath.Join(t.TempDir(), "ix")
	ix, err := Open(dir, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix.Close()
	if ok, err := IsIndexDir(dir); !ok || err != nil {
		t.Fatalf("IsIndexDir(stored) = %v, %v, want true", ok, err)
	}
	bad := t.TempDir()
	if err := os.WriteFile(filepath.Join(bad, "index.snap"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := IsIndexDir(bad); err == nil {
		t.Fatal("IsIndexDir over a corrupt artifact succeeded")
	}
}
