package adaptivelink

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"adaptivelink/internal/adaptive"
	"adaptivelink/internal/join"
	"adaptivelink/internal/metrics"
	"adaptivelink/internal/normalize"
	"adaptivelink/internal/relation"
	"adaptivelink/internal/simfn"
	"adaptivelink/internal/store"
)

// IndexOptions configures a resident Index. The zero value selects the
// paper's matching defaults (q = 3, Jaccard, calibrated θsim) and one
// shard per hardware thread.
type IndexOptions struct {
	// Q is the q-gram width (default 3).
	Q int
	// Theta is the similarity threshold θsim (default 0.75).
	Theta float64
	// Measure is the similarity coefficient (default Jaccard).
	Measure Measure
	// Shards is the number of independent index shards (default
	// GOMAXPROCS). Probes are lock-free at any shard count; more shards
	// spread batch work across cores at the price of replicating
	// references into every shard their prefix-filter signature hashes
	// to (~min(5, Shards)× for the paper's configuration). The match
	// contract is shard-count-independent.
	Shards int
	// Profile names the normalization pipeline applied to every join
	// key on its way into the index — upserts and probes alike — so
	// that keys differing only in case, accents, Unicode composition
	// form or width still link. "" (the default) indexes keys verbatim.
	// See Profiles for the registry ("latin", "cyrillic", "greek",
	// "cjk", "standard"). The profile is part of a durable index's
	// compatibility tuple: a stored index refuses to open under a
	// different profile than the one that built its keys.
	Profile string
	// Storage configures durability. The zero value is a purely
	// in-memory index; see Open and BulkLoad for the durable
	// constructors.
	Storage StorageOptions
}

// Profiles lists the normalization profile names accepted by
// IndexOptions.Profile, sorted; the empty name (index keys verbatim) is
// included.
func Profiles() []string { return normalize.Profiles() }

// SessionOptions configures a probe Session. The zero value selects an
// adaptive session with the paper's thresholds, except that DeltaAdapt
// defaults to 1: a resident-mode switch has no index catch-up to pay
// for, so the control loop can afford to assess after every probe and
// escalate the very probe that exposed a deficit.
type SessionOptions struct {
	// Strategy selects per-session matching: Adaptive (default) starts
	// exact and lets the deficit assessor escalate, ExactOnly and
	// ApproximateOnly pin the probe operator.
	Strategy Strategy

	// W is the perturbation sliding-window size in probes (default 100).
	W int
	// DeltaAdapt is the number of probes between control-loop
	// activations (default 1).
	DeltaAdapt int
	// ThetaOut is the outlier significance level (default 0.05).
	ThetaOut float64
	// ThetaCurPert is the maximum windowed approximate-match rate for
	// the probe stream to count as unperturbed (default 0.02).
	ThetaCurPert float64
	// ThetaPastPert is the maximum number of past perturbed assessments
	// for the probe stream to count as historically clean (default 3).
	ThetaPastPert int

	// FutilityK, when positive, reverts to exact probing after K
	// consecutive assessments in the approximate state that produced no
	// new approximate matches. Recommended for open-world probe streams:
	// under the resident parent-child model a probe key with no
	// reference counterpart at all leaves a permanent deficit, and the
	// futility rule is what stops it pinning the session to approximate
	// probing forever. 0 disables it.
	FutilityK int
	// CostBudget, when positive, pins the session to exact probing once
	// its modelled cost (all-exact-step units under the paper's weight
	// model) reaches the budget. 0 disables it.
	CostBudget float64
	// TraceActivations records every control-loop activation for
	// inspection via Session.Activations.
	TraceActivations bool
	// Explain records a per-key decision trace — mode, hit, escalation,
	// the control-loop events the probe triggered, and the modelled
	// spend after it — retrievable via Session.Decisions. Explain mode
	// allocates per probe (the no-explain path stays allocation-free on
	// exact hits); leave it off for production traffic and flip it on to
	// diagnose a stream.
	Explain bool
}

// ProbeMatch is one probe result: a matched reference tuple with its
// similarity evidence.
type ProbeMatch struct {
	// Ref is the matched reference tuple.
	Ref Tuple
	// Similarity is 1 for key-equal matches, otherwise the verified
	// similarity under the index's measure.
	Similarity float64
	// Exact reports key equality.
	Exact bool
}

// Index is the resident, index-once/probe-many engine mode: the
// reference table is materialised into both the exact hash table and the
// q-gram inverted index up front — sharded by the same co-partitioning
// as the parallel streaming executor — and then probed many times by
// independent clients.
//
// An Index is safe for concurrent use and its probe path is lock-free:
// each shard publishes an immutable snapshot through an atomic pointer,
// a probe reads the snapshots of the shards its key routes to, and
// Upsert builds replacement snapshots off-path and swaps them in
// (RCU-style), so probes never wait on maintenance and maintenance
// never waits on probes. Consistency model: a probe sees a
// point-in-time state of each shard it reads, upserts are atomic per
// key (a probe observes a key's old payload or its new one, never a
// mix), and a cross-shard batch is per-shard-consistent. Sessions are
// per-client state and are NOT safe for concurrent use — give each
// goroutine its own.
type Index struct {
	// res holds the resident engine behind an atomic pointer so a full
	// snapshot restore (anti-entropy resync) can swap the whole backend
	// while probes stay lock-free; everyday reads go through resident().
	res  atomic.Pointer[join.Resident]
	opts IndexOptions
	// norm is the resolved Profile pipeline; every key entering the
	// index — by upsert or by probe — passes through it, so the engine
	// below only ever sees normalised keys (and durable artifacts store
	// them that way).
	norm *normalize.Normalizer

	// mu serializes the write side of a durable index so the WAL's
	// record order equals the apply order (replay depends on it: the
	// store is keyed, newest wins). Probes never take it.
	mu     sync.Mutex
	dir    *store.Dir // nil for an in-memory index
	closed bool
	// rec records what Open reconstructed (nil unless the index came
	// from Open); see RecoveryInfo.
	rec *store.Recovery
}

// resident loads the current engine. One atomic load; the interface
// value is copied out of the pointee, so probe paths stay
// allocation-free.
func (ix *Index) resident() join.Resident { return *ix.res.Load() }

// setResident publishes a replacement engine. Writers hold ix.mu when
// the swap must be ordered against the WAL (RestoreSnapshot does);
// construction stores before the index escapes.
func (ix *Index) setResident(r join.Resident) { ix.res.Store(&r) }

// newIndex wires an Index around a resident engine.
func newIndex(r join.Resident, opts IndexOptions) *Index {
	ix := &Index{opts: opts, norm: opts.normalizer()}
	ix.setResident(r)
	return ix
}

// NewIndex drains the reference source and builds a resident index over
// it. Unlike the streaming join, both hash structures are built and kept
// up to date, trading the lazy-maintenance saving of §2.3 for free
// operator switches on the probe path.
//
// The Index is a KEYED store: one resident record per join key, newest
// wins. That is the upsert contract — and it applies to the initial
// load too, so a reference source containing several tuples with the
// same join key keeps only the last one. This matches the paper's
// parent-table model (unique location strings) and is what makes
// incremental maintenance well-defined; it differs from the batch join,
// which stores duplicate-keyed tuples separately and reports a match
// per duplicate. The probe-vs-batch parity guarantee therefore
// quantifies over key-unique references. If your reference legitimately
// carries several records per key, disambiguate the key (e.g. append a
// discriminator column) before indexing.
func NewIndex(ref Source, opts IndexOptions) (*Index, error) {
	if ref == nil {
		return nil, fmt.Errorf("adaptivelink: nil reference source")
	}
	if opts.Storage.Dir != "" {
		return nil, fmt.Errorf("adaptivelink: NewIndex builds in-memory indexes; use Open (or BulkLoad) for Storage.Dir %q", opts.Storage.Dir)
	}
	opts, err := opts.resolved()
	if err != nil {
		return nil, err
	}
	ri, err := join.NewShardedRefIndex(opts.config(), opts.Shards)
	if err != nil {
		return nil, fmt.Errorf("adaptivelink: %w", err)
	}
	ix := newIndex(ri, opts)
	batch, err := drainSource(ref)
	if err != nil {
		return nil, err
	}
	if _, _, err := ix.Upsert(batch...); err != nil {
		return nil, err
	}
	return ix, nil
}

// resolved applies the option defaults and validates what cannot be
// defaulted.
func (opts IndexOptions) resolved() (IndexOptions, error) {
	if opts.Q == 0 {
		opts.Q = 3
	}
	if opts.Theta == 0 {
		opts.Theta = join.DefaultTheta
	}
	if opts.Shards < 0 {
		return opts, fmt.Errorf("adaptivelink: negative shard count %d", opts.Shards)
	}
	if opts.Shards == 0 {
		opts.Shards = runtime.GOMAXPROCS(0)
	}
	if _, err := normalize.ProfileNamed(opts.Profile); err != nil {
		return opts, fmt.Errorf("adaptivelink: %w", err)
	}
	return opts, nil
}

// normalizer resolves the profile pipeline of validated options.
func (opts IndexOptions) normalizer() *normalize.Normalizer {
	n, err := normalize.ProfileNamed(opts.Profile)
	if err != nil {
		// resolved() vets the name first; reaching here is a programming
		// error, not a configuration one.
		panic(err)
	}
	return n
}

// normKey applies the index's normalization profile to one join key.
func (ix *Index) normKey(key string) string {
	if ix.opts.Profile == "" {
		return key
	}
	return ix.norm.Apply(key)
}

// normKeys applies the profile to a batch of keys, returning the input
// slice untouched under the verbatim profile.
func (ix *Index) normKeys(keys []string) []string {
	if ix.opts.Profile == "" {
		return keys
	}
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = ix.norm.Apply(k)
	}
	return out
}

// config expands resolved options to the engine configuration.
func (opts IndexOptions) config() join.Config {
	return join.Config{
		Q:       opts.Q,
		Theta:   opts.Theta,
		Measure: simfn.TokenMeasure(opts.Measure),
		Initial: join.LexRex,
		Profile: opts.Profile,
	}
}

// meta is the compatibility tuple durable artifacts are bound to.
func (opts IndexOptions) meta() store.Meta {
	return store.Meta{Q: opts.Q, Theta: opts.Theta, Measure: simfn.TokenMeasure(opts.Measure), Shards: opts.Shards, Profile: opts.Profile}
}

func drainSource(ref Source) ([]Tuple, error) {
	var batch []Tuple
	for {
		t, ok, err := ref.Next()
		if err != nil {
			return nil, fmt.Errorf("adaptivelink: reading reference: %w", err)
		}
		if !ok {
			return batch, nil
		}
		batch = append(batch, t)
	}
}

// Len returns the number of resident reference tuples.
func (ix *Index) Len() int { return ix.resident().Len() }

// Options returns the index's matching configuration.
func (ix *Index) Options() IndexOptions { return ix.opts }

// Upsert applies reference maintenance at a quiescent point: tuples
// whose join key is already resident replace the stored payload, tuples
// with new keys are appended and indexed. It returns the inserted and
// updated counts. Safe to call concurrently with probes; in-flight
// probes complete against the previous version and later probes see the
// whole batch.
//
// On a durable index the batch is appended to the write-ahead log
// first — under SyncAlways it is on stable storage before Upsert
// returns, so an acknowledged upsert survives a crash — and only then
// applied. A non-nil error means the batch was NOT applied (the index
// is unchanged); in-memory indexes never return one.
func (ix *Index) Upsert(tuples ...Tuple) (inserted, updated int, err error) {
	if len(tuples) == 0 {
		return 0, 0, nil
	}
	rts := make([]relation.Tuple, len(tuples))
	for i, t := range tuples {
		// Normalise before logging: WAL frames and snapshots hold keys
		// in their indexed form, so recovery never re-normalises.
		rts[i] = relation.Tuple{ID: t.ID, Key: ix.normKey(t.Key), Attrs: t.Attrs}
	}
	if ix.dir == nil {
		// A remote resident can fail a write (a cluster node down); honor
		// its error-aware contract when it has one.
		if fu, ok := ix.resident().(fallibleUpserter); ok {
			return fu.UpsertChecked(rts)
		}
		inserted, updated = ix.resident().Upsert(rts)
		return inserted, updated, nil
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.closed {
		return 0, 0, ErrIndexClosed
	}
	if err := ix.dir.Append(rts); err != nil {
		return 0, 0, fmt.Errorf("adaptivelink: logging upsert: %w", err)
	}
	inserted, updated = ix.resident().Upsert(rts)
	return inserted, updated, nil
}

// Probe is the sessionless one-shot probe: it matches the key exactly
// and, only when no exact match exists, escalates to one approximate
// probe. This is the completeness-first convenience for callers without
// session state; it is safe for concurrent use. Clients with a probe
// stream should prefer NewSession, whose deficit-driven loop skips the
// escalation entirely while the stream is behaving and prices it
// statistically when it is not.
func (ix *Index) Probe(key string) []ProbeMatch {
	key = ix.normKey(key)
	res := ix.resident().ProbeExact(key)
	if len(res) == 0 {
		res = ix.resident().ProbeApprox(key)
	}
	return publicMatches(res)
}

// ProbeBatch is the sessionless batch probe: every key is matched
// exactly in one amortised pass, and only the keys with no exact match
// are then matched approximately in a second pass — the batch shape of
// Probe's exact-then-escalate policy. Results are returned per key in
// request order. Safe for concurrent use.
func (ix *Index) ProbeBatch(keys ...string) [][]ProbeMatch {
	results := make([][]ProbeMatch, len(keys))
	if len(keys) == 0 {
		return results
	}
	keys = ix.normKeys(keys)
	var missIdx []int
	var missKeys []string
	for i, rm := range ix.resident().ProbeBatch(join.Exact, keys) {
		if len(rm) == 0 {
			missIdx = append(missIdx, i)
			missKeys = append(missKeys, keys[i])
			continue
		}
		results[i] = publicMatches(rm)
	}
	if len(missKeys) > 0 {
		for j, rm := range ix.resident().ProbeBatch(join.Approx, missKeys) {
			results[missIdx[j]] = publicMatches(rm)
		}
	}
	return results
}

// SessionStats summarises a session's execution.
type SessionStats struct {
	// Probes is the number of probes run; Hits how many found at least
	// one match (the observed result size the deficit test consumes).
	Probes int
	Hits   int
	// Matches counts result pairs; Exact + Approx = Matches.
	Matches       int
	ExactMatches  int
	ApproxMatches int
	// Escalations counts probes that missed under exact matching, fired
	// the deficit predicate and were re-run approximately.
	Escalations int
	// Switches counts enacted operator switches (0 for fixed strategies).
	Switches int
	// State is the session's processor state name; the probe-side mode
	// (the suffix) is what matching consults.
	State string
	// ModelledCost is the session's cost in all-exact-step units under
	// the paper's weight model: exact probes cost w_EE, approximate
	// probes w_EA, switches the target state's transition weight.
	ModelledCost float64
}

// Session is a per-client probe stream over a shared Index, carrying the
// Monitor–Assess–Respond statistics that batch runs keep per run: the
// deficit test, the perturbation window and the escalation history are
// all scoped to this session, so one misbehaving client escalates only
// itself. Not safe for concurrent use.
type Session struct {
	ix       *Index
	strategy Strategy
	loop     *adaptive.ProbeLoop
	stats    SessionStats
	// explain, when non-nil, collects per-key decision traces; see
	// explain.go. Its presence routes Probe/ProbeBatch through the
	// explain path, keeping the default path allocation-free.
	explain *explainState
}

// NewSession opens a probe session on the index.
func (ix *Index) NewSession(opts SessionOptions) (*Session, error) {
	s := &Session{ix: ix, strategy: opts.Strategy}
	switch opts.Strategy {
	case ExactOnly, ApproximateOnly:
		if opts.CostBudget < 0 {
			return nil, fmt.Errorf("adaptivelink: negative cost budget %v", opts.CostBudget)
		}
		if opts.Explain {
			s.explain = &explainState{}
		}
		return s, nil
	case Adaptive:
	default:
		return nil, fmt.Errorf("adaptivelink: unknown strategy %d", int(opts.Strategy))
	}
	p := adaptive.DefaultProbeParams()
	if opts.W != 0 {
		p.W = opts.W
	}
	if opts.DeltaAdapt != 0 {
		p.DeltaAdapt = opts.DeltaAdapt
	}
	if opts.ThetaOut != 0 {
		p.ThetaOut = opts.ThetaOut
	}
	if opts.ThetaCurPert != 0 {
		p.ThetaCurPert = opts.ThetaCurPert
	}
	if opts.ThetaPastPert != 0 {
		p.ThetaPastPert = opts.ThetaPastPert
	}
	if opts.FutilityK != 0 {
		p.FutilityK = opts.FutilityK
	}
	loop, err := adaptive.NewProbeLoop(p)
	if err != nil {
		return nil, fmt.Errorf("adaptivelink: %w", err)
	}
	if opts.TraceActivations {
		loop.EnableTrace()
	}
	if opts.CostBudget < 0 {
		return nil, fmt.Errorf("adaptivelink: negative cost budget %v", opts.CostBudget)
	}
	if opts.CostBudget > 0 {
		if err := loop.EnableCostBudget(metrics.PaperWeights(), opts.CostBudget); err != nil {
			return nil, fmt.Errorf("adaptivelink: %w", err)
		}
	}
	s.loop = loop
	if opts.Explain {
		s.explain = &explainState{}
		// The sink buffers each activation's event; probeExplain drains
		// the buffer into the decision record of the probe that
		// triggered it.
		loop.SetDecisionSink(func(e adaptive.DecisionEvent) {
			s.explain.pending = append(s.explain.pending, e)
		})
	}
	return s, nil
}

// Probe matches one key against the reference under the session's
// current operator. Adaptive sessions probe exactly while the stream
// behaves; when the deficit assessor fires, the session switches to
// approximate probing — re-running the very probe whose miss fired the
// predicate, so its variant matches are not lost — and reverts to exact
// once the perturbation window drains.
func (s *Session) Probe(key string) []ProbeMatch {
	if s.explain != nil {
		return s.probeExplain(key)
	}
	key = s.ix.normKey(key)
	var res []join.RefMatch
	switch s.strategy {
	case ExactOnly:
		res = s.ix.resident().ProbeExact(key)
	case ApproximateOnly:
		res = s.ix.resident().ProbeApprox(key)
	default:
		res = s.ix.resident().Probe(s.loop.Mode(), key)
		if s.loop.NoteProbe(s.ix.Len(), len(res) > 0, countApprox(res)) {
			res = s.ix.resident().ProbeApprox(key)
			s.loop.NoteEscalation(len(res) > 0, countApprox(res))
			s.stats.Escalations++
		}
	}
	s.note(res)
	return publicMatches(res)
}

// approxSpeculate caps how many keys an adaptive batch probes ahead
// while the session is in the approximate state; see ProbeBatch.
const approxSpeculate = 1

// ProbeBatch probes a batch of keys as this session, one result slice
// per key in request order. It is semantically identical to calling
// Probe on each key — same matches, same statistics, same control-loop
// trajectory — but amortises routing and snapshot loads per shard-group
// and, on multi-core hosts, fans the shard groups out concurrently.
//
// Adaptive sessions run the batch in sub-batches probed under the
// current operator, feeding the outcomes to the control loop in probe
// order; if the loop switches operators mid-batch (including the
// per-probe escalation of a miss that fired σ), results computed under
// the stale operator are discarded and the remainder is re-probed under
// the new one, exactly as if those keys had not been probed yet.
func (s *Session) ProbeBatch(keys []string) [][]ProbeMatch {
	results := make([][]ProbeMatch, len(keys))
	if len(keys) == 0 {
		return results
	}
	if s.explain != nil {
		// Explain mode records per-key decisions, which are inherently
		// per-probe; batching would only amortise index work the
		// diagnostic session does not care about. Probe normalises, so
		// the raw keys pass through.
		for i, key := range keys {
			results[i] = s.probeExplain(key)
		}
		return results
	}
	keys = s.ix.normKeys(keys)
	if s.loop == nil {
		mode := join.Exact
		if s.strategy == ApproximateOnly {
			mode = join.Approx
		}
		for i, rm := range s.ix.resident().ProbeBatch(mode, keys) {
			s.note(rm)
			results[i] = publicMatches(rm)
		}
		return results
	}
	for i := 0; i < len(keys); {
		mode := s.loop.Mode()
		sub := keys[i:]
		// Results computed past a mid-batch operator switch are thrown
		// away. Wasted exact probes are cheap (w_EE = 1), so the exact
		// path speculates on the whole remainder; approximate probes
		// cost ~50× and reverts are frequent right after an escalation,
		// so the approximate path speculates only a few keys ahead.
		// Chunking is split-invariant, hence invisible in results and
		// statistics (pinned by TestSessionProbeBatchMatchesSequential).
		if mode == join.Approx && len(sub) > approxSpeculate {
			sub = sub[:approxSpeculate]
		}
		rms := s.ix.resident().ProbeBatch(mode, sub)
		outs := make([]adaptive.BatchOutcome, len(rms))
		for j, rm := range rms {
			outs[j] = adaptive.BatchOutcome{Hit: len(rm) > 0, ApproxMatches: countApprox(rm)}
		}
		consumed, escalate := s.loop.NoteBatch(s.ix.Len(), outs)
		for j := 0; j < consumed; j++ {
			rm := rms[j]
			if escalate && j == consumed-1 {
				rm = s.ix.resident().ProbeApprox(keys[i+j])
				s.loop.NoteEscalation(len(rm) > 0, countApprox(rm))
				s.stats.Escalations++
			}
			s.note(rm)
			results[i+j] = publicMatches(rm)
		}
		i += consumed
	}
	return results
}

// note folds one probe's final (possibly escalated) result into the
// session counters.
func (s *Session) note(res []join.RefMatch) {
	s.stats.Probes++
	if len(res) > 0 {
		s.stats.Hits++
	}
	for _, m := range res {
		s.stats.Matches++
		if m.Exact {
			s.stats.ExactMatches++
		} else {
			s.stats.ApproxMatches++
		}
	}
}

// State returns the session's processor state name. Fixed strategies
// report the state their probe operator corresponds to.
func (s *Session) State() string {
	switch s.strategy {
	case ExactOnly:
		return join.LexRex.String()
	case ApproximateOnly:
		return join.LapRap.String()
	default:
		return s.loop.State().String()
	}
}

// Stats returns a snapshot of the session's counters.
func (s *Session) Stats() SessionStats {
	out := s.stats
	out.State = s.State()
	if s.loop != nil {
		out.Switches = s.loop.Switches()
		out.ModelledCost = s.loop.Spend()
	} else {
		w := metrics.PaperWeights()
		st := join.LexRex
		if s.strategy == ApproximateOnly {
			st = join.LapRap
		}
		out.ModelledCost = metrics.PureCost(out.Probes, st, w)
	}
	return out
}

// Activations returns the session's recorded control-loop trace (nil
// unless SessionOptions.TraceActivations was set on an adaptive session).
func (s *Session) Activations() []Activation {
	if s.loop == nil {
		return nil
	}
	acts := s.loop.Activations()
	if acts == nil {
		return nil
	}
	out := make([]Activation, len(acts))
	for i, a := range acts {
		out[i] = Activation{
			Step:     a.Observation.Step,
			Observed: a.Observation.Observed,
			Expected: a.Assessment.P * float64(a.Observation.ChildSeen),
			Tail:     a.Assessment.Tail,
			Sigma:    a.Assessment.Sigma,
			From:     a.From.String(),
			To:       a.To.String(),
			Reason:   adaptive.DecisionReason(a.From, a.To, a.Assessment.Sigma, a.Forced),
		}
	}
	return out
}

func countApprox(ms []join.RefMatch) int {
	n := 0
	for _, m := range ms {
		if !m.Exact {
			n++
		}
	}
	return n
}

func publicMatches(ms []join.RefMatch) []ProbeMatch {
	if len(ms) == 0 {
		return nil
	}
	out := make([]ProbeMatch, len(ms))
	for i, m := range ms {
		out[i] = ProbeMatch{
			Ref:        Tuple{ID: m.Tuple.ID, Key: m.Tuple.Key, Attrs: m.Tuple.Attrs},
			Similarity: m.Similarity,
			Exact:      m.Exact,
		}
	}
	return out
}
