module adaptivelink

go 1.24
