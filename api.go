package adaptivelink

import (
	"fmt"
	"runtime"

	"adaptivelink/internal/adaptive"
	"adaptivelink/internal/join"
	"adaptivelink/internal/metrics"
	"adaptivelink/internal/pjoin"
	"adaptivelink/internal/simfn"
	"adaptivelink/internal/stream"
)

// Side identifies a join input.
type Side int

const (
	// Left is the left input, conventionally the parent (referenced)
	// table.
	Left Side = iota
	// Right is the right input, conventionally the child (referencing)
	// table.
	Right
)

// String returns "left" or "right".
func (s Side) String() string { return stream.Side(s).String() }

// Measure selects the token similarity coefficient used by approximate
// matching.
type Measure int

const (
	// Jaccard is |A∩B|/|A∪B| over q-gram sets (the paper's measure).
	Jaccard Measure = iota
	// Dice is 2|A∩B|/(|A|+|B|).
	Dice
	// Cosine is |A∩B|/√(|A|·|B|).
	Cosine
	// Overlap is |A∩B|/min(|A|,|B|).
	Overlap
)

// String names the measure.
func (m Measure) String() string { return simfn.TokenMeasure(m).String() }

// Strategy selects how the join matches tuples.
type Strategy int

const (
	// Adaptive starts exact and lets the MAR control loop switch
	// operators as variant evidence accumulates (the paper's hybrid
	// algorithm; default).
	Adaptive Strategy = iota
	// ExactOnly runs the pure symmetric hash join SHJoin — the fast,
	// possibly incomplete baseline.
	ExactOnly
	// ApproximateOnly runs the pure symmetric set hash join SSHJoin —
	// the complete, expensive baseline.
	ApproximateOnly
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Adaptive:
		return "adaptive"
	case ExactOnly:
		return "exact"
	case ApproximateOnly:
		return "approximate"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Options configures a Join. The zero value selects the paper's
// defaults for everything except ParentSize, which adaptive joins
// require when the parent source cannot estimate its own cardinality.
type Options struct {
	// Q is the q-gram width (default 3).
	Q int
	// Theta is the similarity threshold θsim in (0,1] above which an
	// approximate pair is reported (default 0.75, calibrated so
	// one-character variants of realistic join keys qualify).
	Theta float64
	// Measure is the similarity coefficient (default Jaccard).
	Measure Measure
	// Strategy selects adaptive, exact-only or approximate-only
	// execution (default Adaptive).
	Strategy Strategy
	// ParentSide says which input is the parent table of the expected
	// parent–child relationship (default Left).
	ParentSide Side
	// ParentSize is the expected parent cardinality |R|, which the
	// statistical monitor needs. 0 means "ask the parent source"; an
	// adaptive join fails to construct if neither is available, unless
	// CalibratedEstimator is set.
	ParentSize int
	// CalibratedEstimator replaces the parent–child result-size model
	// (which needs |R|) with a self-calibrating one: the match rate
	// observed over the first calibration activations becomes the
	// baseline, and deficits are measured against it. Use it when the
	// parent cardinality is unknown, e.g. for open-ended feeds.
	CalibratedEstimator bool
	// RetainWindow, when positive, gives the join sliding-window
	// stream semantics: a new tuple is matched only against the most
	// recent RetainWindow tuples of the opposite side, and older
	// tuples' payloads are released. 0 retains everything.
	RetainWindow int

	// W is the perturbation sliding-window size in steps (default 100).
	W int
	// DeltaAdapt is the number of steps between control-loop
	// activations (default 100).
	DeltaAdapt int
	// ThetaOut is the outlier significance level (default 0.05).
	ThetaOut float64
	// ThetaCurPert is the maximum windowed approximate-match rate for a
	// side to count as unperturbed (default 0.02).
	ThetaCurPert float64
	// ThetaPastPert is the maximum number of past perturbed assessments
	// for a side to count as historically clean (default 3).
	ThetaPastPert int

	// FutilityK, when positive, reverts to exact matching after K
	// consecutive assessments in an approximate state that produced no
	// new approximate matches — the assessor extension the paper
	// sketches in §3.5 for wrong result-size estimates. 0 disables it
	// (the paper's behaviour).
	FutilityK int
	// CostBudget, when positive, pins the join to exact matching once
	// its modelled execution cost (measured in all-exact steps under
	// the paper's weight model) reaches the budget: completeness stops
	// improving but cost stays predictable. 0 disables it.
	CostBudget float64

	// TraceActivations records every control-loop activation for
	// inspection via Activations.
	TraceActivations bool

	// Parallelism is the number of hash partitions (shards) the join
	// executes concurrently. 0 (default) uses runtime.GOMAXPROCS(0);
	// 1 selects the exact sequential engine (the legacy path). With
	// P > 1 both inputs are co-partitioned — q-gram-prefix routing
	// keeps approximate matches shard-local — P engines run on their
	// own goroutines, and the match streams are merged with
	// deduplication; for fixed strategies the result set is identical
	// to the sequential engine's. Adaptive joins aggregate per-shard
	// observations into one deficit test and broadcast switches to all
	// shards at their quiescent points (see doc.go, Concurrency).
	//
	// RetainWindow and CostBudget compose with any Parallelism: the
	// splitter stamps every tuple with its global arrival sequence
	// number, so each shard applies the exact sequential window filter
	// at probe time and evicts index entries on consistent cuts, and
	// the aggregate controller enforces the budget against a global
	// spend counter on the same logical step clock as the sequential
	// engine. Both features produce match sets identical to the
	// sequential engine's (delivery order aside); see doc.go.
	Parallelism int
}

// withDefaults fills unset fields with the paper's settings.
func (o Options) withDefaults() Options {
	if o.Q == 0 {
		o.Q = 3
	}
	if o.Theta == 0 {
		o.Theta = join.DefaultTheta
	}
	def := adaptive.DefaultParams()
	if o.W == 0 {
		o.W = def.W
	}
	if o.DeltaAdapt == 0 {
		o.DeltaAdapt = def.DeltaAdapt
	}
	if o.ThetaOut == 0 {
		o.ThetaOut = def.ThetaOut
	}
	if o.ThetaCurPert == 0 {
		o.ThetaCurPert = def.ThetaCurPert
	}
	if o.ThetaPastPert == 0 {
		o.ThetaPastPert = def.ThetaPastPert
	}
	return o
}

// Match is one joined pair.
type Match struct {
	// Left and Right are the matched tuples.
	Left  Tuple
	Right Tuple
	// Similarity is 1 for key-equal pairs, otherwise the verified
	// similarity of the two keys under the configured measure.
	Similarity float64
	// Exact reports key equality.
	Exact bool
	// Step is the engine step at which the pair was found. On a
	// parallel join it is the computing shard's local step counter.
	Step int
}

// Join is the public join operator: an iterator over matches.
type Join struct {
	// Sequential path (Parallelism == 1).
	engine *join.Engine
	ctl    *adaptive.Controller
	// Partition-parallel path (Parallelism > 1).
	pexec *pjoin.Executor
	sctl  *adaptive.ShardedController
	par   int
	opts  Options
}

// New constructs a join over the two sources. For adaptive joins the
// parent cardinality must be known: set Options.ParentSize or supply a
// parent source with a size estimate (FromTuples, FromKeys and CSV
// sources with a size hint all provide one).
func New(left, right Source, opts Options) (*Join, error) {
	if left == nil || right == nil {
		return nil, fmt.Errorf("adaptivelink: nil source")
	}
	if opts.RetainWindow < 0 {
		return nil, fmt.Errorf("adaptivelink: negative retain window %d (0 retains everything, positive keeps the most recent tuples per side)", opts.RetainWindow)
	}
	if opts.CostBudget < 0 {
		return nil, fmt.Errorf("adaptivelink: negative cost budget %v (0 disables the budget, positive pins to exact matching once the modelled spend reaches it)", opts.CostBudget)
	}
	opts = opts.withDefaults()

	cfg := join.Config{
		Q:            opts.Q,
		Theta:        opts.Theta,
		Measure:      simfn.TokenMeasure(opts.Measure),
		Initial:      join.LexRex,
		RetainWindow: opts.RetainWindow,
	}
	switch opts.Strategy {
	case Adaptive, ExactOnly:
		cfg.Initial = join.LexRex
	case ApproximateOnly:
		cfg.Initial = join.LapRap
	default:
		return nil, fmt.Errorf("adaptivelink: unknown strategy %d", int(opts.Strategy))
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("adaptivelink: %w", err)
	}

	par := opts.Parallelism
	if par < 0 {
		return nil, fmt.Errorf("adaptivelink: negative parallelism %d (0 uses one shard per CPU, 1 the sequential engine)", par)
	}
	if par == 0 {
		par = runtime.GOMAXPROCS(0)
	}

	ls, rs := adaptSource(left), adaptSource(right)

	// Resolve the adaptive control-loop inputs once for both paths.
	var params adaptive.Params
	var parentSide stream.Side
	var parentSize int
	if opts.Strategy == Adaptive {
		parentSide = stream.Side(opts.ParentSide)
		parentSrc := ls
		if parentSide == stream.Right {
			parentSrc = rs
		}
		parentSize = opts.ParentSize
		if parentSize == 0 {
			parentSize = stream.EstimateSize(parentSrc, 0)
		}
		if parentSize <= 0 && !opts.CalibratedEstimator {
			return nil, fmt.Errorf("adaptivelink: adaptive strategy needs the parent cardinality: set Options.ParentSize, use a sized source, or set CalibratedEstimator")
		}
		params = adaptive.Params{
			W:             opts.W,
			DeltaAdapt:    opts.DeltaAdapt,
			ThetaOut:      opts.ThetaOut,
			ThetaCurPert:  opts.ThetaCurPert,
			ThetaPastPert: opts.ThetaPastPert,
			FutilityK:     opts.FutilityK,
		}
		if opts.CalibratedEstimator {
			params.Estimator = adaptive.EstimatorCalibrated
			params.CalibrationActivations = adaptive.DefaultParams().CalibrationActivations
		}
	}

	if par > 1 {
		pcfg := pjoin.Config{Join: cfg, Shards: par}
		if opts.Strategy == ExactOnly {
			// No shard can ever probe approximately: hash-by-key
			// partitioning is lossless and replication-free.
			pcfg.Router = pjoin.NewKeyRouter(par)
		}
		j := &Join{par: par, opts: opts}
		if opts.Strategy == Adaptive {
			sctl, err := adaptive.NewSharded(par, parentSide, parentSize, params)
			if err != nil {
				return nil, fmt.Errorf("adaptivelink: %w", err)
			}
			if opts.TraceActivations {
				sctl.EnableTrace()
			}
			if opts.CostBudget > 0 {
				if err := sctl.EnableCostBudget(metrics.PaperWeights(), opts.CostBudget); err != nil {
					return nil, fmt.Errorf("adaptivelink: %w", err)
				}
			}
			j.sctl = sctl
			pcfg.Controller = sctl
		}
		exec, err := pjoin.New(pcfg, ls, rs)
		if err != nil {
			return nil, fmt.Errorf("adaptivelink: %w", err)
		}
		j.pexec = exec
		return j, nil
	}

	engine, err := join.New(cfg, ls, rs, nil)
	if err != nil {
		return nil, fmt.Errorf("adaptivelink: %w", err)
	}
	j := &Join{engine: engine, par: 1, opts: opts}

	if opts.Strategy == Adaptive {
		var copts []adaptive.Option
		if opts.TraceActivations {
			copts = append(copts, adaptive.WithTrace())
		}
		if opts.CostBudget > 0 {
			copts = append(copts, adaptive.WithCostBudget(metrics.PaperWeights(), opts.CostBudget))
		}
		ctl, err := adaptive.Attach(engine, parentSide, parentSize, params, copts...)
		if err != nil {
			return nil, fmt.Errorf("adaptivelink: %w", err)
		}
		j.ctl = ctl
	}
	return j, nil
}

// Parallelism returns the number of shards the join executes on (1 for
// the sequential engine).
func (j *Join) Parallelism() int { return j.par }

// Open prepares the join for iteration. On a parallel join it starts
// the splitter, shard and merger goroutines.
func (j *Join) Open() error {
	if j.pexec != nil {
		return j.pexec.Open()
	}
	return j.engine.Open()
}

// Next returns the next match, with ok=false once both inputs are
// exhausted and every match has been delivered. On a parallel join the
// match *set* is deterministic but the delivery order is not.
func (j *Join) Next() (m Match, ok bool, err error) {
	if j.pexec != nil {
		pm, ok, err := j.pexec.Next()
		if err != nil || !ok {
			return Match{}, ok, err
		}
		return Match{
			Left:       Tuple{ID: pm.Left.ID, Key: pm.Left.Key, Attrs: pm.Left.Attrs},
			Right:      Tuple{ID: pm.Right.ID, Key: pm.Right.Key, Attrs: pm.Right.Attrs},
			Similarity: pm.Similarity,
			Exact:      pm.Exact,
			Step:       pm.Step,
		}, true, nil
	}
	im, ok, err := j.engine.Next()
	if err != nil || !ok {
		return Match{}, ok, err
	}
	return j.publicMatch(im), true, nil
}

// Close releases the join's resources. On a parallel join it cancels
// and reaps every goroutine.
func (j *Join) Close() error {
	if j.pexec != nil {
		return j.pexec.Close()
	}
	return j.engine.Close()
}

// All opens (if needed), drains and closes the join, returning every
// match.
func (j *Join) All() ([]Match, error) {
	if err := j.Open(); err != nil {
		return nil, err
	}
	var out []Match
	for {
		m, ok, err := j.Next()
		if err != nil {
			j.Close()
			return out, err
		}
		if !ok {
			break
		}
		out = append(out, m)
	}
	return out, j.Close()
}

// State returns the current processor state name ("lex/rex", "lap/rex",
// "lex/rap" or "lap/rap"). On a parallel adaptive join it is the
// broadcast target state, which every shard converges to at its next
// quiescent point.
func (j *Join) State() string {
	if j.pexec != nil {
		if j.sctl != nil {
			return j.sctl.State().String()
		}
		switch j.opts.Strategy {
		case ApproximateOnly:
			return join.LapRap.String()
		default:
			return join.LexRex.String()
		}
	}
	return j.engine.State().String()
}

func (j *Join) publicMatch(im join.Match) Match {
	lt := j.engine.StoredTuple(stream.Left, im.LeftRef)
	rt := j.engine.StoredTuple(stream.Right, im.RightRef)
	return Match{
		Left:       Tuple{ID: lt.ID, Key: lt.Key, Attrs: lt.Attrs},
		Right:      Tuple{ID: rt.ID, Key: rt.Key, Attrs: rt.Attrs},
		Similarity: im.Similarity,
		Exact:      im.Exact,
		Step:       im.Step,
	}
}
