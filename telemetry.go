package adaptivelink

// Public telemetry accessors for the observability layer: what Open
// recovered, what durability costs, and how the lock-free engine's
// maintenance side is behaving. The service exports these as Prometheus
// series; embedders can read them directly.

import "adaptivelink/internal/join"

// RecoveryInfo reports what Open reconstructed from an index directory.
type RecoveryInfo struct {
	// Recovered is false for indexes not built by Open (in-memory or
	// bulk-loaded); the remaining fields are then zero.
	Recovered bool
	// SnapshotTuples is the size of the loaded checkpoint (0 if the
	// directory had none).
	SnapshotTuples int
	// WALBatchesReplayed is the number of acknowledged upsert batches
	// replayed on top of the snapshot.
	WALBatchesReplayed int64
	// TornTailTruncated reports that the log ended in a partial,
	// unacknowledged frame (a crash mid-write) that was discarded and
	// truncated away.
	TornTailTruncated bool
}

// RecoveryInfo reports what Open reconstructed when this index was
// opened. Indexes that did not come from Open return the zero value.
func (ix *Index) RecoveryInfo() RecoveryInfo {
	if ix.rec == nil {
		return RecoveryInfo{}
	}
	return RecoveryInfo{
		Recovered:          true,
		SnapshotTuples:     ix.rec.SnapshotTuples,
		WALBatchesReplayed: ix.rec.WALRecords,
		TornTailTruncated:  ix.rec.TornTail,
	}
}

// StorageStats is a durable index's cumulative durability telemetry.
type StorageStats struct {
	// WALAppends counts acknowledged log appends since open;
	// WALAppendSeconds their total wall time and WALFsyncSeconds the
	// fsync share of it (0 under SyncNone). The mean acknowledged-append
	// latency — the durability tax an upsert pays — is
	// WALAppendSeconds/WALAppends.
	WALAppends       int64
	WALAppendSeconds float64
	WALFsyncSeconds  float64
	// Checkpoints counts snapshot checkpoints since open;
	// CheckpointSeconds their total wall time.
	Checkpoints       int64
	CheckpointSeconds float64
}

// StorageStats returns the index's durability telemetry; ok is false
// for in-memory indexes (the stats are then zero).
func (ix *Index) StorageStats() (st StorageStats, ok bool) {
	if ix.dir == nil {
		return StorageStats{}, false
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ds := ix.dir.Stats()
	return StorageStats{
		WALAppends:        ds.WAL.Appends,
		WALAppendSeconds:  float64(ds.WAL.AppendNanos) / 1e9,
		WALFsyncSeconds:   float64(ds.WAL.FsyncNanos) / 1e9,
		Checkpoints:       ds.Checkpoints,
		CheckpointSeconds: float64(ds.CheckpointNanos) / 1e9,
	}, true
}

// EngineStats is the resident engine's maintenance telemetry: the RCU
// write side (snapshot swaps, copy-on-write clone time) and the probe
// scratch pool's hit rate.
type EngineStats struct {
	// Upserts counts maintenance batches applied (bulk load counts as
	// one); SnapshotSwaps per-shard snapshot publications — one per
	// touched shard per batch.
	Upserts       uint64
	SnapshotSwaps uint64
	// CloneSeconds is the cumulative time spent cloning shard snapshots
	// for copy-on-write upserts — the write-side price of lock-free
	// probes.
	CloneSeconds float64
	// ScratchGets counts scratch-pool checkouts on the approximate
	// probe, batch and upsert paths; ScratchMisses how many had to
	// allocate fresh (typically after a GC cycle emptied the pool).
	// 1 - ScratchMisses/ScratchGets is the pool hit rate.
	ScratchGets   uint64
	ScratchMisses uint64
}

// EngineStats returns the resident engine's maintenance telemetry.
// Reading it is lock-free and safe concurrently with probes and
// upserts.
func (ix *Index) EngineStats() EngineStats {
	sr, ok := ix.resident().(*join.ShardedRefIndex)
	if !ok {
		return EngineStats{}
	}
	ms := sr.MaintStats()
	return EngineStats{
		Upserts:       ms.Upserts,
		SnapshotSwaps: ms.SnapshotSwaps,
		CloneSeconds:  float64(ms.CloneNanos) / 1e9,
		ScratchGets:   ms.ScratchGets,
		ScratchMisses: ms.ScratchNews,
	}
}
