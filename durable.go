package adaptivelink

import (
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"adaptivelink/internal/join"
	"adaptivelink/internal/relation"
	"adaptivelink/internal/store"
)

// SyncPolicy says when a durable index's write-ahead log reaches stable
// storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs the log on every Upsert: an acknowledged upsert
	// survives an immediate crash. The default, and the right choice
	// unless ingest throughput matters more than the last few batches.
	SyncAlways SyncPolicy = iota
	// SyncNone leaves flushing to the operating system: much faster
	// ingest, and a crash may lose the most recent acknowledged upserts
	// (recovery still stops cleanly at the log's intact prefix — the
	// index reloads consistent, just slightly stale).
	SyncNone
)

func (p SyncPolicy) store() store.SyncPolicy {
	if p == SyncNone {
		return store.SyncNone
	}
	return store.SyncAlways
}

// StorageOptions is the durability section of IndexOptions.
type StorageOptions struct {
	// Dir is the index directory (one index per directory: a binary
	// snapshot plus an upsert log). Empty means in-memory. Constructors
	// taking an explicit directory argument (Open, with Dir also
	// accepted for symmetry) require the two to agree when both are set.
	Dir string
	// WALSync is the log's fsync policy (default SyncAlways).
	WALSync SyncPolicy
	// SnapshotOnClose checkpoints the index during Close, so the next
	// Open is a pure snapshot load with no log to replay.
	SnapshotOnClose bool
}

// ErrIndexClosed is returned by writes against a closed durable index.
var ErrIndexClosed = errors.New("adaptivelink: index is closed")

// Open opens (creating if needed) the durable index stored in dir and
// recovers its state: the snapshot is loaded in its final in-memory
// form — no key is re-decomposed, no gram re-hashed — and the upsert
// log's acknowledged batches are replayed on top, so the index answers
// exactly as it did before the restart.
//
// Configuration resolution: fields of opts left zero adopt the stored
// configuration (the common case — reopen whatever is there); fields
// set explicitly must match it, and a mismatch (or a snapshot written
// by an incompatible format version) is a descriptive error, never a
// silent reinterpretation. An empty directory is created with opts
// resolved against the package defaults.
func Open(dir string, opts IndexOptions) (*Index, error) {
	if dir == "" {
		return nil, fmt.Errorf("adaptivelink: Open requires a directory")
	}
	if opts.Storage.Dir != "" && opts.Storage.Dir != dir {
		return nil, fmt.Errorf("adaptivelink: Open(%q) conflicts with Storage.Dir %q", dir, opts.Storage.Dir)
	}
	opts.Storage.Dir = dir
	stored, err := store.PeekMeta(dir)
	if err != nil {
		return nil, err
	}
	if stored != nil {
		// Stored configuration wins for unset fields; set fields are
		// checked against it below via store.Open's meta gate.
		if opts.Q == 0 {
			opts.Q = stored.Q
		}
		if opts.Theta == 0 {
			opts.Theta = stored.Theta
		}
		if opts.Measure == 0 {
			opts.Measure = Measure(stored.Measure)
		}
		if opts.Shards == 0 {
			opts.Shards = stored.Shards
		}
		if opts.Profile == "" {
			// Like the other fields, "" adopts whatever normalization
			// the stored keys were built with; naming a different
			// profile explicitly is rejected by the meta gate below.
			opts.Profile = stored.Profile
		}
	}
	opts, err = opts.resolved()
	if err != nil {
		return nil, err
	}
	d, ri, rec, err := store.Open(dir, opts.meta(), opts.Storage.WALSync.store())
	if err != nil {
		return nil, fmt.Errorf("adaptivelink: opening %s: %w", dir, err)
	}
	ix := newIndex(ri, opts)
	ix.dir, ix.rec = d, rec
	return ix, nil
}

// BulkLoad builds a resident index from the reference source through
// the bulk path: decompose and route every key first, then build each
// shard's structures densely in parallel — far faster than feeding the
// same rows through Upsert one batch at a time, and identical in
// outcome. With Storage.Dir set the built index is persisted by writing
// its snapshot directly (the initial rows never touch the log) into a
// directory that must not already hold an index; the returned index is
// then durable, logging subsequent Upserts. With an empty Storage.Dir
// it is the fast constructor for a purely in-memory index.
func BulkLoad(ref Source, opts IndexOptions) (*Index, error) {
	if ref == nil {
		return nil, fmt.Errorf("adaptivelink: nil reference source")
	}
	opts, err := opts.resolved()
	if err != nil {
		return nil, err
	}
	batch, err := drainSource(ref)
	if err != nil {
		return nil, err
	}
	norm := opts.normalizer()
	rts := make([]relation.Tuple, len(batch))
	for i, t := range batch {
		rts[i] = relation.Tuple{ID: t.ID, Key: norm.Apply(t.Key), Attrs: t.Attrs}
	}
	ri, err := join.BuildShardedRefIndex(opts.config(), opts.Shards, rts)
	if err != nil {
		return nil, fmt.Errorf("adaptivelink: %w", err)
	}
	ix := newIndex(ri, opts)
	if opts.Storage.Dir != "" {
		d, err := store.Create(opts.Storage.Dir, ri, opts.Storage.WALSync.store())
		if err != nil {
			return nil, fmt.Errorf("adaptivelink: persisting bulk load: %w", err)
		}
		ix.dir = d
	}
	return ix, nil
}

// Save writes a snapshot of the index's current state.
//
// With an empty dir it checkpoints a durable index in place: the
// snapshot replaces the previous one atomically and the upsert log,
// now subsumed, is reset — after which a restart is a pure snapshot
// load. With a non-empty dir it exports the state as a fresh index
// directory (usable by Open later), which must not already hold one;
// this is how an in-memory index becomes durable after the fact.
func (ix *Index) Save(dir string) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.closed {
		return ErrIndexClosed
	}
	sr, ok := ix.resident().(*join.ShardedRefIndex)
	if !ok {
		return fmt.Errorf("adaptivelink: index backend %T does not snapshot", ix.resident())
	}
	if dir == "" || (ix.dir != nil && sameDir(dir, ix.dir.Path())) {
		if ix.dir == nil {
			return fmt.Errorf("adaptivelink: Save(\"\") checkpoints a durable index; this index is in-memory — pass a directory")
		}
		return ix.dir.Checkpoint(sr)
	}
	d, err := store.Create(dir, sr, ix.opts.Storage.WALSync.store())
	if err != nil {
		return err
	}
	// Save exports; it does not re-home the index. The new directory is
	// a finished artifact for a later Open.
	return d.Close()
}

func sameDir(a, b string) bool {
	ca, err1 := filepath.Abs(a)
	cb, err2 := filepath.Abs(b)
	return err1 == nil && err2 == nil && ca == cb
}

// Close releases a durable index's storage, checkpointing first when
// Storage.SnapshotOnClose is set. The in-memory state remains probeable
// (probes are lock-free and touch no files), but writes fail with
// ErrIndexClosed. Closing an in-memory index — or closing twice — is a
// no-op.
func (ix *Index) Close() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.closed || ix.dir == nil {
		ix.closed = true
		return nil
	}
	ix.closed = true
	var err error
	if ix.opts.Storage.SnapshotOnClose {
		if sr, ok := ix.resident().(*join.ShardedRefIndex); ok {
			err = ix.dir.Checkpoint(sr)
		}
	}
	if cerr := ix.dir.Close(); err == nil {
		err = cerr
	}
	return err
}

// Durable reports whether the index is backed by storage.
func (ix *Index) Durable() bool { return ix.dir != nil }

// IsIndexDir reports whether dir holds a stored index (a snapshot or an
// upsert log), without loading it. Absent or empty directories are
// simply false; unreadable artifacts are an error.
func IsIndexDir(dir string) (bool, error) {
	m, err := store.PeekMeta(dir)
	return m != nil, err
}

// WALRecords is the number of upsert batches logged since the last
// checkpoint (0 for in-memory indexes).
func (ix *Index) WALRecords() int64 {
	if ix.dir == nil {
		return 0
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.dir.WALRecords()
}

// LastSnapshot is when the index's current snapshot was written (zero
// for in-memory indexes and durable ones that have never checkpointed).
func (ix *Index) LastSnapshot() time.Time {
	if ix.dir == nil {
		return time.Time{}
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.dir.LastSnapshot()
}
