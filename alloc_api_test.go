//go:build !race

package adaptivelink

// Allocation-regression pins for the public session probe path, run by
// `make alloc`. The observability layer (PR 8) must keep the no-explain
// path exactly as lean as before it existed: the decision sink is nil
// and the explain dispatch is a single pointer test, so these pins hold
// with tracing enabled at default sampling in the service above.
// Excluded under -race, whose instrumentation perturbs counts.

import (
	"fmt"
	"testing"
)

func allocAPIIndex(t testing.TB) (*Index, string, string) {
	t.Helper()
	ts := make([]Tuple, 64)
	for i := range ts {
		ts[i] = Tuple{ID: i, Key: fmt.Sprintf("VIA MONTE ROSA %d NORD %d", i, i%7)}
	}
	ix, err := NewIndex(FromTuples(ts), IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return ix, "VIA MONTE ROSA 7 NORD 0", "PIAZZA INESISTENTE 99 XQ"
}

// A no-explain exact-only probe that misses touches no result slice and
// is pinned allocation-free end to end through the public API.
func TestAllocSessionExactMissZero(t *testing.T) {
	ix, _, miss := allocAPIIndex(t)
	sess, err := ix.NewSession(SessionOptions{Strategy: ExactOnly})
	if err != nil {
		t.Fatal(err)
	}
	sess.Probe(miss) // warm
	if avg := testing.AllocsPerRun(200, func() { sess.Probe(miss) }); avg != 0 {
		t.Errorf("exact-only miss: %.2f allocs/op, want 0", avg)
	}
}

// sessionHitAllocBudget is the documented budget of a no-explain probe
// that hits: the two allocations materialising the public result (the
// engine match slice and its ProbeMatch conversion). The probe and
// control-loop work itself stays allocation-free.
const sessionHitAllocBudget = 2.0

func TestAllocSessionProbeBudget(t *testing.T) {
	ix, hit, _ := allocAPIIndex(t)
	for name, opts := range map[string]SessionOptions{
		"exact-only": {Strategy: ExactOnly},
		"adaptive":   {},
	} {
		sess, err := ix.NewSession(opts)
		if err != nil {
			t.Fatal(err)
		}
		sess.Probe(hit) // warm
		if avg := testing.AllocsPerRun(200, func() { sess.Probe(hit) }); avg > sessionHitAllocBudget {
			t.Errorf("%s hit: %.2f allocs/op, budget %v", name, avg, sessionHitAllocBudget)
		}
	}
}
