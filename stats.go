package adaptivelink

import (
	"adaptivelink/internal/adaptive"
	"adaptivelink/internal/join"
	"adaptivelink/internal/metrics"
)

// Stats summarises a join execution.
type Stats struct {
	// Steps is the number of input tuples fully processed.
	Steps int
	// LeftRead/RightRead count tuples consumed per input.
	LeftRead  int
	RightRead int
	// Matches is the number of result pairs; Exact + Approx = Matches.
	Matches       int
	ExactMatches  int
	ApproxMatches int
	// Switches counts operator switches; CatchUpTuples the tuples
	// re-indexed by switch-time catch-ups.
	Switches      int
	CatchUpTuples int
	// StepsInState maps state name ("lex/rex", ...) to steps spent there.
	StepsInState map[string]int
	// TransitionsInto maps state name to the number of switches into it.
	TransitionsInto map[string]int
	// ModelledCost is the execution cost under the paper's normalised
	// weight model (one all-exact step = 1). On a parallel join it
	// models the total work across shards, including replication.
	ModelledCost float64

	// TuplesEvicted counts sliding-window evictions (payload releases,
	// exclusion from future probes). On a parallel join a tuple
	// replicated to several shards counts once per replica, mirroring
	// the replicated index work its eviction frees. 0 unless
	// RetainWindow is set.
	TuplesEvicted int
	// IndexEntriesDropped counts index entries (exact refs plus q-gram
	// postings) physically removed by window compaction; on a parallel
	// join every shard drops its replicas at the same consistent cut.
	IndexEntriesDropped int
	// BudgetSpend is the modelled spend counter a CostBudget is
	// enforced against, in all-exact-step units. On the sequential path
	// it equals ModelledCost; on a parallel adaptive join it is the
	// aggregated sequential-equivalent spend as of the last barrier —
	// the logical scan's cost, excluding replication overhead. 0 for
	// parallel fixed-strategy joins (no controller, no spend clock).
	BudgetSpend float64

	// Parallelism is the shard count the join ran on (1 = sequential).
	Parallelism int
	// ShardSteps sums the per-shard engine step counters on a parallel
	// join; it exceeds Steps by the replication overhead. 0 on the
	// sequential path.
	ShardSteps int
	// DuplicatesSuppressed counts result pairs found by more than one
	// shard and removed by the parallel merger. 0 on the sequential
	// path.
	DuplicatesSuppressed int
}

// Stats returns a snapshot of the join's counters. For a parallel join
// the snapshot is fully consistent once the join is exhausted or
// closed; Steps counts each input tuple once, while ShardSteps and the
// per-state accounting sum the shard engines (and so include
// replicated work).
func (j *Join) Stats() Stats {
	var st join.Stats
	out := Stats{Parallelism: j.par}
	if j.pexec != nil {
		ps := j.pexec.Stats()
		st = join.Stats{
			Steps:               ps.Read[0] + ps.Read[1],
			Read:                ps.Read,
			Matches:             ps.Matches,
			ExactMatches:        ps.ExactMatches,
			ApproxMatches:       ps.ApproxMatches,
			StepsInState:        ps.StepsInState,
			TransitionsInto:     ps.TransitionsInto,
			Switches:            ps.Switches,
			CatchUpTuples:       ps.CatchUpTuples,
			Evicted:             ps.Evicted,
			IndexEntriesDropped: ps.IndexEntriesDropped,
		}
		out.ShardSteps = ps.ShardSteps
		out.DuplicatesSuppressed = ps.Duplicates
		if j.sctl != nil {
			out.BudgetSpend = j.sctl.Spend()
		}
	} else {
		st = j.engine.Stats()
	}
	out.Steps = st.Steps
	out.LeftRead = st.Read[0]
	out.RightRead = st.Read[1]
	out.Matches = st.Matches
	out.ExactMatches = st.ExactMatches
	out.ApproxMatches = st.ApproxMatches
	out.Switches = st.Switches
	out.CatchUpTuples = st.CatchUpTuples
	out.TuplesEvicted = st.Evicted[0] + st.Evicted[1]
	out.IndexEntriesDropped = st.IndexEntriesDropped
	out.StepsInState = make(map[string]int, 4)
	out.TransitionsInto = make(map[string]int, 4)
	for _, s := range join.AllStates {
		out.StepsInState[s.String()] = st.StepsInState[s.Index()]
		out.TransitionsInto[s.String()] = st.TransitionsInto[s.Index()]
	}
	out.ModelledCost = metrics.Cost(st, metrics.PaperWeights()).Total
	if j.pexec == nil {
		// One engine: the spend the budget is enforced against IS the
		// modelled cost.
		out.BudgetSpend = out.ModelledCost
	}
	return out
}

// Activation is one recorded control-loop firing (TraceActivations).
type Activation struct {
	// Step is the engine step at which the loop activated.
	Step int
	// Observed is the result size at activation; Expected the model's
	// expected result size at that step (p̂ · child tuples seen) — what
	// Observed is deficit-tested against; Tail its binomial tail
	// probability under the no-variants model.
	Observed int
	Expected float64
	Tail     float64
	// Sigma reports whether the deficit was significant.
	Sigma bool
	// From and To are the state names before and after responding; equal
	// strings mean no switch.
	From string
	To   string
	// Reason labels the respond outcome: "steady", "deficit",
	// "deficit-held", "window-clear", or the forced overrides "budget" /
	// "futility".
	Reason string
	// CaughtUp is the number of tuples the switch re-indexed.
	CaughtUp int
}

// Activations returns the recorded control-loop trace. It is nil unless
// Options.TraceActivations was set and the strategy is Adaptive. On a
// parallel join the trace holds the aggregate (sharded) controller's
// activations; CaughtUp is always 0 there, catch-up being accounted per
// shard in Stats.CatchUpTuples instead.
func (j *Join) Activations() []Activation {
	var acts []adaptive.Activation
	switch {
	case j.ctl != nil:
		acts = j.ctl.Activations()
	case j.sctl != nil:
		acts = j.sctl.Activations()
	default:
		return nil
	}
	if acts == nil {
		return nil
	}
	out := make([]Activation, len(acts))
	for i, a := range acts {
		out[i] = Activation{
			Step:     a.Observation.Step,
			Observed: a.Observation.Observed,
			Expected: a.Assessment.P * float64(a.Observation.ChildSeen),
			Tail:     a.Assessment.Tail,
			Sigma:    a.Assessment.Sigma,
			From:     a.From.String(),
			To:       a.To.String(),
			Reason:   adaptive.DecisionReason(a.From, a.To, a.Assessment.Sigma, a.Forced),
			CaughtUp: a.CaughtUp,
		}
	}
	return out
}
