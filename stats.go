package adaptivelink

import (
	"adaptivelink/internal/join"
	"adaptivelink/internal/metrics"
)

// Stats summarises a join execution.
type Stats struct {
	// Steps is the number of input tuples fully processed.
	Steps int
	// LeftRead/RightRead count tuples consumed per input.
	LeftRead  int
	RightRead int
	// Matches is the number of result pairs; Exact + Approx = Matches.
	Matches       int
	ExactMatches  int
	ApproxMatches int
	// Switches counts operator switches; CatchUpTuples the tuples
	// re-indexed by switch-time catch-ups.
	Switches      int
	CatchUpTuples int
	// StepsInState maps state name ("lex/rex", ...) to steps spent there.
	StepsInState map[string]int
	// TransitionsInto maps state name to the number of switches into it.
	TransitionsInto map[string]int
	// ModelledCost is the execution cost under the paper's normalised
	// weight model (one all-exact step = 1).
	ModelledCost float64
}

// Stats returns a snapshot of the join's counters.
func (j *Join) Stats() Stats {
	st := j.engine.Stats()
	out := Stats{
		Steps:           st.Steps,
		LeftRead:        st.Read[0],
		RightRead:       st.Read[1],
		Matches:         st.Matches,
		ExactMatches:    st.ExactMatches,
		ApproxMatches:   st.ApproxMatches,
		Switches:        st.Switches,
		CatchUpTuples:   st.CatchUpTuples,
		StepsInState:    make(map[string]int, 4),
		TransitionsInto: make(map[string]int, 4),
	}
	for _, s := range join.AllStates {
		out.StepsInState[s.String()] = st.StepsInState[s.Index()]
		out.TransitionsInto[s.String()] = st.TransitionsInto[s.Index()]
	}
	out.ModelledCost = metrics.Cost(st, metrics.PaperWeights()).Total
	return out
}

// Activation is one recorded control-loop firing (TraceActivations).
type Activation struct {
	// Step is the engine step at which the loop activated.
	Step int
	// Observed is the result size at activation; Tail its binomial tail
	// probability under the no-variants model.
	Observed int
	Tail     float64
	// Sigma reports whether the deficit was significant.
	Sigma bool
	// From and To are the state names before and after responding; equal
	// strings mean no switch.
	From string
	To   string
	// CaughtUp is the number of tuples the switch re-indexed.
	CaughtUp int
}

// Activations returns the recorded control-loop trace. It is nil unless
// Options.TraceActivations was set and the strategy is Adaptive.
func (j *Join) Activations() []Activation {
	if j.ctl == nil {
		return nil
	}
	acts := j.ctl.Activations()
	if acts == nil {
		return nil
	}
	out := make([]Activation, len(acts))
	for i, a := range acts {
		out[i] = Activation{
			Step:     a.Observation.Step,
			Observed: a.Observation.Observed,
			Tail:     a.Assessment.Tail,
			Sigma:    a.Assessment.Sigma,
			From:     a.From.String(),
			To:       a.To.String(),
			CaughtUp: a.CaughtUp,
		}
	}
	return out
}
