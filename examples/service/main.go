// Service: the resident index-once/probe-many mode, both as a library
// (NewIndex / Session.Probe) and over the adaptivelinkd wire protocol.
// The reference table is indexed once; many independent clients then
// probe it, each with its own adaptive session — a misbehaving client
// escalates only itself. For the demo the HTTP server runs in-process
// on a loopback listener; in production you would run cmd/adaptivelinkd
// and point real clients at it.
//
// Run with:
//
//	go run ./examples/service
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"adaptivelink"
	"adaptivelink/internal/service"
)

func main() {
	// --- Library form: index once, probe many. ---
	ref := []adaptivelink.Tuple{
		{ID: 0, Key: "via monte bianco nord 12", Attrs: []string{"Aosta"}},
		{ID: 1, Key: "lago di como est", Attrs: []string{"Como"}},
		{ID: 2, Key: "valle verde ovest 9", Attrs: []string{"Torino"}},
	}
	ix, err := adaptivelink.NewIndex(adaptivelink.FromTuples(ref), adaptivelink.IndexOptions{})
	if err != nil {
		log.Fatal(err)
	}
	sess, err := ix.NewSession(adaptivelink.SessionOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, key := range []string{
		"lago di como est",         // clean: exact hash lookup, cost 1
		"via monte bianca nord 12", // typo: deficit fires, probe escalates
		"lago di como est",         // clean again: session reverts to exact
	} {
		for _, m := range sess.Probe(key) {
			fmt.Printf("  %-28q -> %q (sim %.3f, exact %v)\n", key, m.Ref.Key, m.Similarity, m.Exact)
		}
	}
	st := sess.Stats()
	fmt.Printf("library session: %d probes, %d escalations, state %s, modelled cost %.1f\n\n",
		st.Probes, st.Escalations, st.State, st.ModelledCost)

	// Batch probing: one ProbeBatch call routes the whole batch, loads
	// each shard snapshot once and (on multi-core hosts) fans shard
	// groups out concurrently — with exactly the statistics a loop of
	// single probes would produce.
	batchSess, err := ix.NewSession(adaptivelink.SessionOptions{})
	if err != nil {
		log.Fatal(err)
	}
	batch := []string{"valle verde ovest 9", "via monte bianca nord 12", "no such street 1"}
	for i, ms := range batchSess.ProbeBatch(batch) {
		fmt.Printf("  batch[%d] %-28q -> %d match(es)\n", i, batch[i], len(ms))
	}
	bst := batchSess.Stats()
	fmt.Printf("batch session: %d probes in one call, %d hits, %d escalations\n\n",
		bst.Probes, bst.Hits, bst.Escalations)

	// --- Wire form: the same flow over adaptivelinkd's HTTP API. ---
	svc := service.New(service.Config{})
	defer svc.Close()
	srv := httptest.NewServer(service.NewHandler(svc))
	defer srv.Close()

	post := func(path string, payload any) []byte {
		raw, _ := json.Marshal(payload)
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		if resp.StatusCode >= 300 {
			log.Fatalf("%s: %d %s", path, resp.StatusCode, buf.String())
		}
		return buf.Bytes()
	}

	post("/v1/indexes", service.CreateIndexRequest{
		Name: "atlas",
		Tuples: []service.TupleDTO{
			{ID: 0, Key: "via monte bianco nord 12", Attrs: []string{"Aosta"}},
			{ID: 1, Key: "lago di como est", Attrs: []string{"Como"}},
		},
	})
	post("/v1/indexes/atlas/upsert", service.UpsertRequest{
		Tuples: []service.TupleDTO{{ID: 2, Key: "valle verde ovest 9", Attrs: []string{"Torino"}}},
	})

	// A keys batch is one session server-side: the whole batch runs
	// through Session.ProbeBatch inside a single worker slot.
	var lr service.LinkResponseDTO
	if err := json.Unmarshal(post("/v1/link", service.LinkRequestDTO{
		Index: "atlas",
		Keys:  []string{"valle verde ovest 9", "via monte bianca nord 12"},
	}), &lr); err != nil {
		log.Fatal(err)
	}
	for _, r := range lr.Results {
		for _, m := range r.Matches {
			fmt.Printf("  /v1/link %-28q -> %q (sim %.3f, exact %v)\n", r.Key, m.RefKey, m.Similarity, m.Exact)
		}
	}
	fmt.Printf("service session: %d probes, %d escalations, state %s\n\n",
		lr.Session.Probes, lr.Session.Escalations, lr.Session.State)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	fmt.Println("a few /metrics series:")
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "adaptivelink_probes_total") ||
			strings.HasPrefix(line, "adaptivelink_escalations_total") ||
			strings.HasPrefix(line, "adaptivelink_modelled_cost_total") {
			fmt.Println("  " + line)
		}
	}
}
