// Tuning: explore the time-completeness trade-off surface (§4.2). The
// MAR thresholds control how eagerly the engine goes approximate; this
// example sweeps the activation period δadapt and the outlier threshold
// θout over one dataset and prints how completeness and modelled cost
// move, reproducing the kind of exploration the paper used to pick its
// settings.
//
// Run with:
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"

	"adaptivelink"
)

func main() {
	data, err := adaptivelink.GenerateTestData(
		5, 2000, 2000, adaptivelink.PatternManyHigh, 0.10, false)
	if err != nil {
		log.Fatal(err)
	}

	// Baselines bracket the achievable range.
	exactN := runCount(data, adaptivelink.Options{Strategy: adaptivelink.ExactOnly})
	approxN := runCount(data, adaptivelink.Options{Strategy: adaptivelink.ApproximateOnly})
	fmt.Printf("exact join matches %d; approximate join matches %d (gap %d)\n\n",
		exactN, approxN, approxN-exactN)

	fmt.Printf("%8s %8s %10s %12s %14s\n", "δadapt", "θout", "matches", "gain%", "modelled cost")
	for _, da := range []int{25, 50, 100, 200, 400} {
		for _, thetaOut := range []float64{0.01, 0.05, 0.20} {
			j, err := adaptivelink.New(data.ParentSource(), data.ChildSource(), adaptivelink.Options{
				DeltaAdapt: da,
				ThetaOut:   thetaOut,
			})
			if err != nil {
				log.Fatal(err)
			}
			ms, err := j.All()
			if err != nil {
				log.Fatal(err)
			}
			st := j.Stats()
			gain := 0.0
			if approxN > exactN {
				gain = 100 * float64(len(ms)-exactN) / float64(approxN-exactN)
			}
			fmt.Printf("%8d %8.2f %10d %11.1f%% %14.0f\n",
				da, thetaOut, len(ms), gain, st.ModelledCost)
		}
	}
	fmt.Println("\nreading the table: small δadapt and strict θout react faster (more gain,")
	fmt.Println("more cost); large δadapt or lax θout can miss short bursts entirely.")
}

func runCount(data *adaptivelink.TestData, opts adaptivelink.Options) int {
	j, err := adaptivelink.New(data.ParentSource(), data.ChildSource(), opts)
	if err != nil {
		log.Fatal(err)
	}
	ms, err := j.All()
	if err != nil {
		log.Fatal(err)
	}
	return len(ms)
}
