// Accidents mashup: the paper's motivating scenario (§1). An
// organisation overlays nationwide car-accident records on a map by
// joining them against a reference street atlas. Some accident locations
// are misspelled, so a purely exact join loses accidents; a full
// similarity join is slow. This example runs all three strategies over
// the same data and prints the completeness/cost trade-off.
//
// Run with:
//
//	go run ./examples/accidents
package main

import (
	"fmt"
	"log"
	"time"

	"adaptivelink"
)

func main() {
	// Synthesise the mashup inputs: 3000 atlas entries, 3000 accidents
	// with 10% misspelled locations arriving in a few dense bursts (the
	// "batches collated from different sources" pattern).
	data, err := adaptivelink.GenerateTestData(
		42, 3000, 3000, adaptivelink.PatternFewHigh, 0.10, false)
	if err != nil {
		log.Fatal(err)
	}
	nVariants := 0
	for _, v := range data.ChildVariant {
		if v {
			nVariants++
		}
	}
	fmt.Printf("atlas: %d streets; accidents: %d records, %d with misspelled locations\n\n",
		len(data.Parent), len(data.Child), nVariants)

	type outcome struct {
		name     string
		matched  int
		elapsed  time.Duration
		switches int
	}
	var results []outcome

	for _, strat := range []struct {
		name string
		s    adaptivelink.Strategy
	}{
		{"exact only (SHJoin)", adaptivelink.ExactOnly},
		{"approximate only (SSHJoin)", adaptivelink.ApproximateOnly},
		{"adaptive (hybrid MAR)", adaptivelink.Adaptive},
	} {
		j, err := adaptivelink.New(data.ParentSource(), data.ChildSource(), adaptivelink.Options{
			Strategy: strat.s,
		})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		ms, err := j.All()
		if err != nil {
			log.Fatal(err)
		}
		st := j.Stats()
		results = append(results, outcome{strat.name, len(ms), time.Since(start), st.Switches})
	}

	fmt.Printf("%-28s %10s %12s %10s\n", "strategy", "matched", "wall time", "switches")
	for _, r := range results {
		fmt.Printf("%-28s %10d %12v %10d\n", r.name, r.matched, r.elapsed.Round(time.Millisecond), r.switches)
	}

	exact, approx, adaptive := results[0], results[1], results[2]
	gap := approx.matched - exact.matched
	if gap > 0 {
		recovered := adaptive.matched - exact.matched
		fmt.Printf("\nthe exact join loses %d accidents from the map; the adaptive join recovers %d of them (%.0f%%)\n",
			gap, recovered, 100*float64(recovered)/float64(gap))
	}
	if approx.elapsed > 0 {
		fmt.Printf("adaptive wall time is %.0f%% of the all-approximate join's\n",
			100*float64(adaptive.elapsed)/float64(approx.elapsed))
	}
}
