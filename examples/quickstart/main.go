// Quickstart: join an accident feed against a reference atlas and watch
// the adaptive engine notice misspelled keys and recover them.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"adaptivelink"
)

func main() {
	// A reference table of locations (the "parent" side).
	atlasRows := []adaptivelink.Tuple{
		{Key: "TAA BZ SANTA CRISTINA VALGARDENA", Attrs: []string{"46.55", "11.72"}},
		{Key: "LIG GE GENOVA CORNIGLIANO PONENTE", Attrs: []string{"44.41", "8.88"}},
		{Key: "LOM MI MILANO NAVIGLI DARSENA SUD", Attrs: []string{"45.45", "9.17"}},
		{Key: "VEN VE VENEZIA MESTRE CENTRO NORD", Attrs: []string{"45.49", "12.24"}},
		{Key: "PIE TO TORINO MIRAFIORI BORGATA", Attrs: []string{"45.03", "7.61"}},
		{Key: "TOS FI FIRENZE RIFREDI CAREGGI", Attrs: []string{"43.80", "11.25"}},
		{Key: "CAM NA NAPOLI VOMERO ARENELLA", Attrs: []string{"40.85", "14.22"}},
		{Key: "SIC PA PALERMO MONDELLO VALDESI", Attrs: []string{"38.20", "13.32"}},
	}

	// A feed of 48 accident records that reference the atlas. A batch in
	// the middle was keyed by a sloppier source: one character wrong in
	// every location (positions 20-27).
	var accidents []adaptivelink.Tuple
	misspell := func(s string) string { return s[:len(s)-1] + "x" }
	for i := 0; i < 48; i++ {
		key := atlasRows[i%len(atlasRows)].Key
		if i >= 20 && i < 28 {
			key = misspell(key)
		}
		accidents = append(accidents, adaptivelink.Tuple{
			Key:   key,
			Attrs: []string{fmt.Sprintf("A%03d", i)},
		})
	}

	j, err := adaptivelink.New(
		adaptivelink.FromTuples(atlasRows),
		adaptivelink.FromTuples(accidents),
		adaptivelink.Options{
			ParentSide: adaptivelink.Left, // the atlas is the parent table
			// Assess frequently: this input is tiny. Real workloads keep
			// the defaults (every 100 steps).
			DeltaAdapt: 4, W: 8,
			TraceActivations: true,
		})
	if err != nil {
		log.Fatal(err)
	}

	matches, err := j.All()
	if err != nil {
		log.Fatal(err)
	}

	recovered := 0
	for _, m := range matches {
		if !m.Exact {
			recovered++
			fmt.Printf("recovered misspelling: %s %q -> %q (sim %.3f)\n",
				m.Right.Attrs[0], m.Right.Key, m.Left.Key, m.Similarity)
		}
	}

	st := j.Stats()
	fmt.Printf("\n%d of %d accidents matched (%d exact, %d recovered), %d operator switches\n",
		st.Matches, len(accidents), st.ExactMatches, st.ApproxMatches, st.Switches)
	fmt.Println("\nwhat the control loop saw:")
	for _, a := range j.Activations() {
		if a.From == a.To && !a.Sigma {
			continue
		}
		fmt.Printf("  step %2d: observed=%2d matches (tail p=%.3f) %s -> %s\n",
			a.Step, a.Observed, a.Tail, a.From, a.To)
	}
}
