// Streaming: join a live feed against a reference table. The feed
// arrives on a channel (as from a message queue); matches stream out as
// tuples arrive — the engine is pipelined, so nothing waits for input
// exhaustion — and the control-loop trace shows the operator switching
// when a burst of misspelled keys flows past.
//
// Run with:
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math/rand"

	"adaptivelink"
)

func main() {
	// Reference table: generate 600 unique location keys and a feed of
	// 600 events referencing them, with a variant burst in the middle
	// third of the feed.
	data, err := adaptivelink.GenerateTestData(
		7, 600, 600, adaptivelink.PatternFewHigh, 0.12, false)
	if err != nil {
		log.Fatal(err)
	}

	feed := make(chan adaptivelink.Tuple, 64)
	go func() {
		defer close(feed)
		rng := rand.New(rand.NewSource(99))
		for _, t := range data.Child {
			// A real feed would block on the network here.
			_ = rng
			feed <- t
		}
	}()

	feedSrc, err := adaptivelink.FromChannel(feed, len(data.Child))
	if err != nil {
		log.Fatal(err)
	}
	j, err := adaptivelink.New(
		data.ParentSource(),
		feedSrc,
		adaptivelink.Options{
			ParentSide:       adaptivelink.Left,
			DeltaAdapt:       25,
			W:                25,
			TraceActivations: true,
		},
	)
	if err != nil {
		log.Fatal(err)
	}

	if err := j.Open(); err != nil {
		log.Fatal(err)
	}
	var total, approx int
	for {
		m, ok, err := j.Next()
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			break
		}
		total++
		if !m.Exact {
			approx++
			if approx <= 5 {
				fmt.Printf("recovered variant at step %4d: %q ~ %q (sim %.3f)\n",
					m.Step, m.Right.Key, m.Left.Key, m.Similarity)
			}
		}
	}
	if err := j.Close(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nstreamed %d matches (%d recovered variants)\n\n", total, approx)
	fmt.Println("control-loop activity (σ = significant result-size deficit):")
	for _, a := range j.Activations() {
		if a.From == a.To && !a.Sigma {
			continue // quiet period
		}
		mark := " "
		if a.Sigma {
			mark = "σ"
		}
		fmt.Printf("  step %4d %s observed=%4d tail=%.4f  %s -> %s\n",
			a.Step, mark, a.Observed, a.Tail, a.From, a.To)
	}
}
