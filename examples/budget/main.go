// Budget: progressive linkage under a cost budget. The paper's
// conclusions (§4.4) suggest the algorithm "may be tuned, possibly
// under user control, for a target gain ... while keeping the marginal
// cost over the exact join baseline within a predictable limit"; the
// CostBudget option implements exactly that knob. This example runs the
// same workload under increasing budgets and shows completeness rising
// monotonically toward the all-approximate ceiling while cost stays
// capped.
//
// Run with:
//
//	go run ./examples/budget
package main

import (
	"fmt"
	"log"

	"adaptivelink"
)

func main() {
	data, err := adaptivelink.GenerateTestData(
		21, 2000, 2000, adaptivelink.PatternUniform, 0.10, false)
	if err != nil {
		log.Fatal(err)
	}

	exactN := count(data, adaptivelink.Options{Strategy: adaptivelink.ExactOnly})
	approxN := count(data, adaptivelink.Options{Strategy: adaptivelink.ApproximateOnly})
	fmt.Printf("exact join: %d matches   approximate join: %d matches (ceiling)\n\n", exactN, approxN)

	// The all-exact run costs 4000 units (one per step); the all-
	// approximate run ~280,800 (70.2 per step). Budgets in between buy
	// increasing completeness.
	fmt.Printf("%12s %10s %10s %14s\n", "budget", "matches", "gain%", "modelled cost")
	for _, budget := range []float64{10_000, 30_000, 60_000, 120_000, 240_000} {
		j, err := adaptivelink.New(data.ParentSource(), data.ChildSource(), adaptivelink.Options{
			CostBudget: budget,
		})
		if err != nil {
			log.Fatal(err)
		}
		ms, err := j.All()
		if err != nil {
			log.Fatal(err)
		}
		st := j.Stats()
		gain := 100 * float64(len(ms)-exactN) / float64(approxN-exactN)
		fmt.Printf("%12.0f %10d %9.1f%% %14.0f\n", budget, len(ms), gain, st.ModelledCost)
	}
	fmt.Println("\neach budget caps how long the engine may run approximate operators;")
	fmt.Println("once spent, matching continues exactly — fast but frozen completeness.")
}

func count(data *adaptivelink.TestData, opts adaptivelink.Options) int {
	j, err := adaptivelink.New(data.ParentSource(), data.ChildSource(), opts)
	if err != nil {
		log.Fatal(err)
	}
	ms, err := j.All()
	if err != nil {
		log.Fatal(err)
	}
	return len(ms)
}
