#!/usr/bin/env bash
# bench-service: measure the resident linkage service in the four
# canonical configurations — exact+adaptive × single+batch probes — and
# append labelled points to the BENCH_service.json trajectory. Exact
# runs are gated against the previous matching point: a >REGRESS_PCT%
# drop in probes/s fails the script (linkbench -regress-pct).
#
# Env knobs:
#   OUT          trajectory file                 (default BENCH_service.json)
#   NOTE         note prefix recorded per point  (default "bench-service")
#   N            requests per configuration      (default 5000)
#   C            concurrent clients              (default 32)
#   PARENT       generated reference size        (default 2000)
#   SHARDS       index shard count               (default 0 = server default)
#   REGRESS_PCT  exact-path regression gate      (default 20)
#   HOST_LABEL   host-class label recorded per point (default ""); the
#                gate only compares points with the same label, so give
#                each distinct host class (laptop, CI runner, bench box)
#                its own label to avoid cross-host comparisons
#   BASE_REF     when set (e.g. origin/main), first bench a server
#                built from that git ref — same host, same run — so the
#                exact-path gate compares the current tree against the
#                base revision instead of whatever happens to be in the
#                trajectory file; the base points are recorded with
#                note "$NOTE base $BASE_REF"
#   SKIP_BENCH_DIFF=1  disable the gate (known-noisy hosts / CI label)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${OUT:-BENCH_service.json}
NOTE=${NOTE:-bench-service}
N=${N:-5000}
C=${C:-32}
PARENT=${PARENT:-2000}
SHARDS=${SHARDS:-0}
REGRESS_PCT=${REGRESS_PCT:-20}
HOST_LABEL=${HOST_LABEL:-}

tmp=$(mktemp -d)
pid=""
worktree=""
cleanup() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    if [ -n "$worktree" ]; then
        git worktree remove --force "$worktree" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/linkbench" ./cmd/linkbench

# start_server <binary>: launches it on an ephemeral port and sets $addr.
start_server() {
    rm -f "$tmp/addr"
    "$1" -addr 127.0.0.1:0 -addr-file "$tmp/addr" >"$tmp/server.log" 2>&1 &
    pid=$!
    for _ in $(seq 100); do
        [ -s "$tmp/addr" ] && break
        sleep 0.1
    done
    if [ ! -s "$tmp/addr" ]; then
        echo "bench-service: server did not start" >&2
        cat "$tmp/server.log" >&2
        exit 1
    fi
    addr=$(cat "$tmp/addr")
}

stop_server() {
    kill -TERM "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
    pid=""
}

# bench <strategy> <batch> <note> [gate flags...]: one linkbench leg.
bench() {
    strategy=$1 batch=$2 note=$3
    shift 3
    "$tmp/linkbench" -addr "http://$addr" -n "$N" -c "$C" -batch "$batch" \
        -parent "$PARENT" -variant-rate 0.1 -shards "$SHARDS" \
        -index "bench-$strategy-$batch" -strategy "$strategy" \
        -host "$HOST_LABEL" -out "$OUT" -note "$note" "$@"
}

# With BASE_REF set, record same-host baseline points for the gated
# (exact) legs from a server built at that revision. The current tree's
# linkbench drives both servers, so flag drift between revisions cannot
# skew the client side.
if [ -n "${BASE_REF:-}" ]; then
    worktree=$(mktemp -d)
    rm -rf "$worktree"
    git worktree add --force --detach "$worktree" "$BASE_REF" >/dev/null
    (cd "$worktree" && go build -o "$tmp/adaptivelinkd-base" ./cmd/adaptivelinkd)
    start_server "$tmp/adaptivelinkd-base"
    for batch in 1 16; do
        bench exact "$batch" "$NOTE base $BASE_REF exact batch=$batch"
    done
    stop_server
fi

go build -o "$tmp/adaptivelinkd" ./cmd/adaptivelinkd
start_server "$tmp/adaptivelinkd"
rc=0
for strategy in exact adaptive; do
    for batch in 1 16; do
        if [ "$strategy" = exact ] && [ "${SKIP_BENCH_DIFF:-0}" != 1 ]; then
            bench "$strategy" "$batch" "$NOTE $strategy batch=$batch" \
                -regress-pct "$REGRESS_PCT" || rc=1
        else
            bench "$strategy" "$batch" "$NOTE $strategy batch=$batch" || rc=1
        fi
    done
done
stop_server

if [ "$rc" -ne 0 ]; then
    echo "bench-service: FAILED (regression or request errors; see above)" >&2
fi
exit $rc
