#!/usr/bin/env bash
# obs-smoke: end-to-end check of the observability surface.
#
#   1. build adaptivelinkd and linkbench
#   2. start the daemon with a debug listener, a tiny slow threshold
#      and every-request sampling
#   3. assert X-Request-ID minting + echo on /v1/link
#   4. assert an explain link returns reconciling decision traces
#   5. assert /v1/debug/slowlog retains traces and /v1/debug/requests/{id}
#      serves a forced trace by id
#   6. assert /v1/version and the build_info + latency series in /metrics
#   7. assert the pprof endpoints on the debug listener answer 200
#   8. drive linkbench with the server-p99 crosscheck enabled
#   9. SIGTERM, assert a clean drain, and re-run `make alloc` to prove
#      the tracing layer left the probe hot path allocation-free
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

fail() {
    echo "obs-smoke: $*" >&2
    [ -f "$tmp/server.log" ] && cat "$tmp/server.log" >&2
    exit 1
}

go build -o "$tmp/adaptivelinkd" ./cmd/adaptivelinkd
go build -o "$tmp/linkbench" ./cmd/linkbench

"$tmp/adaptivelinkd" -addr 127.0.0.1:0 -addr-file "$tmp/addr" \
    -debug-addr 127.0.0.1:0 -debug-addr-file "$tmp/debug-addr" \
    -trace-sample 1 -slow-threshold 1ms -slowlog-cap 64 \
    >"$tmp/server.log" 2>&1 &
pid=$!
for _ in $(seq 100); do
    [ -s "$tmp/addr" ] && [ -s "$tmp/debug-addr" ] && break
    sleep 0.1
done
[ -s "$tmp/addr" ] || fail "server did not start"
[ -s "$tmp/debug-addr" ] || fail "debug listener did not start"
addr=$(cat "$tmp/addr")
debug=$(cat "$tmp/debug-addr")

# --- index + request-id echo ----------------------------------------
curl -sS -o /dev/null -w '%{http_code}' -X POST "http://$addr/v1/indexes" \
    -d '{"name":"obs","tuples":[{"id":1,"key":"via monte rosa 7 nord"},{"id":2,"key":"lago di garda sud 3"},{"id":3,"key":"valle verde ovest 9"}]}' \
    | grep -qx 201 || fail "index create failed"

echoed=$(curl -sS -o /dev/null -D - -X POST "http://$addr/v1/link" \
    -H 'X-Request-ID: obs-smoke-42' \
    -d '{"index":"obs","key":"via monte rosa 7 nord"}' \
    | tr -d '\r' | awk -F': ' 'tolower($1)=="x-request-id"{print $2}')
[ "$echoed" = "obs-smoke-42" ] || fail "X-Request-ID not echoed (got '$echoed')"

minted=$(curl -sS -o /dev/null -D - -X POST "http://$addr/v1/link" \
    -d '{"index":"obs","key":"lago di garda sud 3"}' \
    | tr -d '\r' | awk -F': ' 'tolower($1)=="x-request-id"{print $2}')
[ -n "$minted" ] || fail "no X-Request-ID minted"
echo "obs-smoke: request ids OK (echoed obs-smoke-42, minted $minted)"

# --- explain decisions reconcile ------------------------------------
explain=$(curl -sS -X POST "http://$addr/v1/link" \
    -d '{"index":"obs","keys":["via monte rosa 7 nord","via monte rosa 7 nors","no such key at all"],"explain":true}')
decisions=$(echo "$explain" | jq '.decisions | length')
[ "$decisions" = 3 ] || fail "explain returned $decisions decisions, want 3"
hits_d=$(echo "$explain" | jq '[.decisions[] | select(.hit)] | length')
hits_s=$(echo "$explain" | jq '.session.Hits')
[ "$hits_d" = "$hits_s" ] || fail "decision hits $hits_d != session hits $hits_s"
spend=$(echo "$explain" | jq '.decisions[-1].spend_after')
cost=$(echo "$explain" | jq '.session.ModelledCost')
[ "$spend" = "$cost" ] || fail "final spend_after $spend != modelled_cost $cost"
echo "obs-smoke: explain OK (3 decisions, hits and spend reconcile)"

# --- forced trace by id + slowlog -----------------------------------
curl -sS -o /dev/null -X POST "http://$addr/v1/link" \
    -H 'X-Request-ID: obs-smoke-traced' -H 'X-Debug-Trace: 1' \
    -d '{"index":"obs","key":"valle verde ovest 9"}'
trace=$(curl -sS "http://$addr/v1/debug/requests/obs-smoke-traced")
echo "$trace" | jq -e '.request_id == "obs-smoke-traced" and .sampled == true and (.spans | length) > 0' >/dev/null \
    || fail "forced trace not retrievable: $trace"

# Everything above beat a 1ms threshold or not — issue one definitely
# slow request via a large batch to make the slowlog deterministic.
bigkeys=$(jq -cn '[range(200) | "padding key \(.) for slow request"]')
curl -sS -o /dev/null -X POST "http://$addr/v1/link" \
    -d "{\"index\":\"obs\",\"keys\":$bigkeys}"
slowlog=$(curl -sS "http://$addr/v1/debug/slowlog")
echo "$slowlog" | jq -e '.slow_seen >= 1 and (.traces | length) >= 1 and .threshold_ms == 1' >/dev/null \
    || fail "slowlog not capturing: $slowlog"
echo "obs-smoke: traces OK (by-id fetch + slowlog retention)"

# --- version + metrics ----------------------------------------------
curl -sS "http://$addr/v1/version" | jq -e '.go_version | length > 0' >/dev/null \
    || fail "/v1/version malformed"
metrics=$(curl -sS "http://$addr/metrics")
for series in adaptivelink_build_info adaptivelink_uptime_seconds \
    adaptivelink_goroutines adaptivelink_link_latency_seconds_bucket \
    adaptivelink_link_queue_wait_seconds_count adaptivelink_slow_requests_total \
    adaptivelink_engine_upserts_total adaptivelink_engine_scratch_gets_total; do
    echo "$metrics" | grep -q "$series" || fail "/metrics missing $series"
done
echo "obs-smoke: version + metrics OK"

# --- pprof on the debug listener ------------------------------------
for ep in "debug/pprof/" "debug/pprof/heap" "debug/pprof/goroutine" "debug/pprof/cmdline"; do
    code=$(curl -sS -o /dev/null -w '%{http_code}' "http://$debug/$ep")
    [ "$code" = 200 ] || fail "pprof $ep returned $code"
done
echo "obs-smoke: pprof OK"

# --- linkbench with the server-p99 crosscheck -----------------------
"$tmp/linkbench" -addr "http://$addr" -index obs -create=false -n 60 -c 8 -batch 2 \
    -parent 200 -p99-drift-pct 400 \
    || fail "linkbench with p99 crosscheck failed"
echo "obs-smoke: linkbench p99 crosscheck OK"

# --- clean drain, then prove the hot path stayed allocation-free ----
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
[ "$rc" -eq 0 ] || fail "server exited $rc (unclean drain)"
grep -q "drained, bye" "$tmp/server.log" || fail "drain banner missing"

make alloc >/dev/null || fail "alloc pins regressed with observability built in"
echo "obs-smoke: OK (tracing on, probe hot path still allocation-free)"
