#!/usr/bin/env bash
# bench-probe: measure the probe-path microbenchmarks — resident
# Probe/ProbeBatch in exact+approx shapes plus the gram-extraction,
# candidate-generation and verification kernels — and append labelled
# points to the BENCH_probe.json trajectory. Like bench_service.sh, the
# gate compares each benchmark against the previous point with the same
# bench name and host label BEFORE writing: a >REGRESS_PCT% ns/op
# growth (or an allocs/op growth beyond one) fails the script and the
# regressing point is never recorded as the next baseline.
#
# Env knobs:
#   OUT          trajectory file               (default BENCH_probe.json)
#   NOTE         note recorded per point       (default "bench-probe")
#   BENCHTIME    go test -benchtime            (default 2s)
#   REGRESS_PCT  ns/op regression gate         (default 20)
#   HOST_LABEL   host-class label recorded per point (default ""); the
#                gate only compares points with the same label
#   BASE_REF     when set (e.g. origin/main), first run the resident
#                probe benchmarks against that git ref — same host,
#                same run — so the gate compares the current tree
#                against the base revision instead of whatever happens
#                to be in the trajectory file. The benchmark source
#                (internal/join/probe_bench_test.go) is copied into the
#                base worktree: it deliberately uses only the
#                long-stable Resident API precisely so it compiles
#                against older revisions. Base points are recorded with
#                note "$NOTE base $BASE_REF".
#   SKIP_BENCH_DIFF=1  disable the gate (known-noisy hosts / CI label)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${OUT:-BENCH_probe.json}
NOTE=${NOTE:-bench-probe}
BENCHTIME=${BENCHTIME:-2s}
REGRESS_PCT=${REGRESS_PCT:-20}
HOST_LABEL=${HOST_LABEL:-}

if [ "${SKIP_BENCH_DIFF:-0}" = "1" ]; then
    REGRESS_PCT=0
    BASE_REF="" # no gate, no point burning a base-revision bench run
fi

tmp=$(mktemp -d)
worktree=""
cleanup() {
    if [ -n "$worktree" ]; then
        git worktree remove --force "$worktree" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/benchprobe" ./cmd/benchprobe

if [ -n "${BASE_REF:-}" ]; then
    worktree="$tmp/base"
    echo "bench-probe: benching base revision $BASE_REF for the gate baseline"
    git worktree add --force --detach "$worktree" "$BASE_REF"
    cp internal/join/probe_bench_test.go "$worktree/internal/join/"
    (cd "$worktree" && go test ./internal/join -run=NONE -bench 'BenchmarkResident' \
        -benchtime "$BENCHTIME") | tee "$tmp/base.txt"
    "$tmp/benchprobe" -in "$tmp/base.txt" -out "$OUT" \
        -note "$NOTE base $BASE_REF" -host "$HOST_LABEL"
fi

echo "bench-probe: resident probe paths (internal/join)"
go test ./internal/join -run=NONE -bench 'BenchmarkResident' \
    -benchtime "$BENCHTIME" | tee "$tmp/join.txt"
echo "bench-probe: kernels (qgram decompose/dict, hashidx count filter)"
go test ./internal/qgram ./internal/hashidx -run=NONE \
    -bench 'BenchmarkGramsStrings|BenchmarkDecomposePacked|BenchmarkDictAppendIDs|BenchmarkVerifyIntersectSortedIDs|BenchmarkProbeKeyCandidates' \
    -benchtime "$BENCHTIME" | tee "$tmp/kernels.txt"

cat "$tmp/join.txt" "$tmp/kernels.txt" | "$tmp/benchprobe" \
    -out "$OUT" -note "$NOTE" -host "$HOST_LABEL" -regress-pct "$REGRESS_PCT"
