#!/usr/bin/env bash
# bench-store: measure the durability paths — cold-start
# time-to-first-probe (snapshot Open vs reindex-from-CSV) and ingest
# throughput (BulkLoad vs N single logged Upserts) — and append
# labelled points to the BENCH_store.json trajectory. Reuses the
# benchprobe appender, so the gate works like bench-probe's: each
# benchmark is compared against the previous point with the same bench
# name and host label BEFORE writing, and a regressing run is never
# recorded as the next baseline.
#
# Beyond the trajectory gate, this script asserts the two claims the
# durable store exists for, from the freshly measured numbers:
#
#   - ColdStartOpen must be at least MIN_SPEEDUP (default 5) times
#     faster than ColdStartReindexCSV
#   - BulkLoad must beat UpsertSingles
#
# Env knobs:
#   OUT          trajectory file               (default BENCH_store.json)
#   NOTE         note recorded per point       (default "bench-store")
#   BENCHTIME    go test -benchtime            (default 5x)
#   REGRESS_PCT  ns/op regression gate         (default 25)
#   MIN_SPEEDUP  cold-start ratio floor        (default 5)
#   HOST_LABEL   host-class label recorded per point (default ""); the
#                gate only compares points with the same label
#   SKIP_BENCH_DIFF=1  disable the trajectory gate (known-noisy hosts);
#                the two claim assertions above still run
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${OUT:-BENCH_store.json}
NOTE=${NOTE:-bench-store}
BENCHTIME=${BENCHTIME:-5x}
REGRESS_PCT=${REGRESS_PCT:-25}
MIN_SPEEDUP=${MIN_SPEEDUP:-5}
HOST_LABEL=${HOST_LABEL:-}

if [ "${SKIP_BENCH_DIFF:-0}" = "1" ]; then
    REGRESS_PCT=0
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/benchprobe" ./cmd/benchprobe

echo "bench-store: durability paths (cold start, bulk load)"
go test . -run=NONE -bench 'BenchmarkStore' -benchtime "$BENCHTIME" \
    | tee "$tmp/store.txt"

# Claim assertions on this run's numbers (ns/op of the four benches).
awk -v min="$MIN_SPEEDUP" '
    /^BenchmarkStoreColdStartOpen/       { open = $3 }
    /^BenchmarkStoreColdStartReindexCSV/ { reindex = $3 }
    /^BenchmarkStoreBulkLoad/            { bulk = $3 }
    /^BenchmarkStoreUpsertSingles/       { singles = $3 }
    END {
        if (!open || !reindex || !bulk || !singles) {
            print "bench-store: FAIL: missing benchmark lines"; exit 1
        }
        ratio = reindex / open
        printf "bench-store: cold start %.1fx faster than reindex-from-CSV (floor %sx)\n", ratio, min
        if (ratio < min + 0) { print "bench-store: FAIL: cold-start speedup below floor"; exit 1 }
        printf "bench-store: bulk load %.1fx faster than single upserts\n", singles / bulk
        if (bulk + 0 >= singles + 0) { print "bench-store: FAIL: bulk load does not beat single upserts"; exit 1 }
    }' "$tmp/store.txt"

"$tmp/benchprobe" -in "$tmp/store.txt" -out "$OUT" \
    -note "$NOTE" -host "$HOST_LABEL" -regress-pct "$REGRESS_PCT"
