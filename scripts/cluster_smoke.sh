#!/usr/bin/env bash
# cluster-smoke: end-to-end check of the sharded serving mode. Boots
# three stock node daemons (group A = two replicas, group B = one), a
# router fronting them, and asserts:
#
#   1. linkbench through the router completes with every request 2xx
#   2. /v1/cluster reports the routing table with all replicas healthy
#   3. killing one replica of group A MID-RUN is absorbed: the bench in
#      flight still ends with zero failed requests (reads fail over,
#      linkbench retries transient dials; writes meet the quorum of 1),
#      and /v1/cluster flips the dead replica to unhealthy
#   4. self-healing: writes keep landing while the replica is dead
#      (hinted handoff), the replica revives BLANK at its recorded
#      address, and hint replay + anti-entropy resync converge the
#      group until /v1/cluster reports matching content digests with
#      no pending hints or resync debt
#   5. killing group B entirely makes routed batches fail WHOLE with
#      the node_unavailable envelope (502) — never silent partials
#   6. the router and the surviving node both drain cleanly on SIGTERM
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pids=()
cleanup() {
    for p in "${pids[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/adaptivelinkd" ./cmd/adaptivelinkd
go build -o "$tmp/linkbench" ./cmd/linkbench

# start_daemon <name> [extra flags...]: launch one daemon on an
# ephemeral port; records its pid in $pids and address in $tmp/<name>.addr.
start_daemon() {
    local name=$1
    shift
    "$tmp/adaptivelinkd" -addr 127.0.0.1:0 -addr-file "$tmp/$name.addr" "$@" \
        >"$tmp/$name.log" 2>&1 &
    pids+=($!)
    eval "${name}_pid=$!"
    for _ in $(seq 100); do
        [ -s "$tmp/$name.addr" ] && break
        sleep 0.1
    done
    [ -s "$tmp/$name.addr" ] || {
        echo "cluster-smoke: $name did not start" >&2
        cat "$tmp/$name.log" >&2
        exit 1
    }
    eval "${name}_addr=\$(cat "$tmp/$name.addr")"
}

# stop_daemon <name> <pid>: SIGTERM + assert the clean-drain banner.
stop_daemon() {
    local name=$1 p=$2
    kill -TERM "$p"
    local rc=0
    wait "$p" || rc=$?
    if [ "$rc" -ne 0 ] || ! grep -q "drained, bye" "$tmp/$name.log"; then
        echo "cluster-smoke: $name exited $rc without a clean drain" >&2
        cat "$tmp/$name.log" >&2
        exit 1
    fi
}

start_daemon a1
start_daemon a2
start_daemon b1
# Quorum 1: a write succeeds once any replica of each owning group
# acknowledged; the rest converge via hinted handoff — so a dead
# replica never blocks writes. Probe/repair intervals are shortened so
# the smoke observes convergence quickly.
start_daemon router -cluster "http://$a1_addr,http://$a2_addr;http://$b1_addr" -cluster-shards 4 \
    -cluster-write-quorum 1 -cluster-probe-interval 500ms -cluster-repair-interval 1s

# 1. Load through the router: linkbench creates the routed index and
#    fails the run if any request is non-2xx.
"$tmp/linkbench" -addr "http://$router_addr" -n 100 -c 32 -batch 4 -parent 400

# 2. The routing table, fully healthy.
curl -sS "http://$router_addr/v1/cluster" >"$tmp/cluster1.json"
jq -e '.role == "router"
    and (.groups | length) == 2
    and ([.groups[].replicas[] | select(.healthy)] | length) == 3
    and (.indexes == ["bench"])' "$tmp/cluster1.json" >/dev/null || {
    echo "cluster-smoke: unexpected /v1/cluster before failure:" >&2
    cat "$tmp/cluster1.json" >&2
    exit 1
}

# 3. Kill a replica while a bench is in flight: failover + linkbench's
#    transient-dial retries must absorb it — zero failed requests.
"$tmp/linkbench" -addr "http://$router_addr" -n 2000 -c 16 -batch 4 -parent 400 \
    >"$tmp/bench_failover.log" 2>&1 &
bench_pid=$!
sleep 0.3
kill -9 "$a2_pid"
wait "$a2_pid" 2>/dev/null || true
if ! wait "$bench_pid"; then
    echo "cluster-smoke: bench failed across the replica kill" >&2
    cat "$tmp/bench_failover.log" >&2
    exit 1
fi
curl -sS "http://$router_addr/v1/cluster" >"$tmp/cluster2.json"
jq -e --arg dead "http://$a2_addr" \
    '[.groups[].replicas[] | select(.addr == $dead and (.healthy | not))] | length == 1' \
    "$tmp/cluster2.json" >/dev/null || {
    echo "cluster-smoke: killed replica still reported healthy:" >&2
    cat "$tmp/cluster2.json" >&2
    exit 1
}

# 4. Self-healing: writes land through the router while a2 stays dead
#    — quorum 1 is met by a1, and a2's copies queue as hints. Then a2
#    revives BLANK (in-memory daemon, nothing survives the SIGKILL) at
#    its recorded address; hint replay fails semantically on the blank
#    node (no index), escalates to a full resync, and anti-entropy
#    bootstraps the index from a1's snapshot stream. /v1/cluster must
#    converge to matching digests with no hints or resync debt left.
for i in $(seq 1 8); do
    code=$(curl -sS -o /dev/null -w '%{http_code}' -X POST "http://$router_addr/v1/indexes/bench/upsert" \
        -d "{\"tuples\":[{\"key\":\"smoke chaos street nord $i\"}]}")
    [ "$code" = 200 ] || {
        echo "cluster-smoke: quorum-1 upsert $i with a dead replica answered $code, want 200" >&2
        exit 1
    }
done
start_daemon a2r -addr "$a2_addr"
converged=
for _ in $(seq 150); do
    curl -sS "http://$router_addr/v1/cluster" >"$tmp/cluster3.json"
    if jq -e --arg n1 "http://$a1_addr" --arg n2 "http://$a2_addr" '
        [.groups[] | select(any(.replicas[]; .addr == $n2))][0] as $g
        | ($g.replicas | map(select(.addr == $n1 or .addr == $n2))) as $reps
        | ($reps | length) == 2
          and all($reps[]; .healthy and ((.hints_pending // 0) == 0) and (((.needs_resync // []) | length) == 0))
          and ($reps[0].digests.bench != null)
          and ($reps[0].digests.bench == $reps[1].digests.bench)
    ' "$tmp/cluster3.json" >/dev/null; then
        converged=1
        break
    fi
    sleep 0.2
done
[ -n "$converged" ] || {
    echo "cluster-smoke: revived replica never converged:" >&2
    cat "$tmp/cluster3.json" >&2
    cat "$tmp/a2r.log" >&2
    exit 1
}
# The keys written during the outage answer through the router.
code=$(curl -sS -o "$tmp/healed.json" -w '%{http_code}' -X POST "http://$router_addr/v1/link" \
    -d '{"index":"bench","keys":["smoke chaos street nord 3"],"strategy":"exact"}')
[ "$code" = 200 ] || {
    echo "cluster-smoke: post-heal link answered $code" >&2
    cat "$tmp/healed.json" >&2
    exit 1
}
jq -e '.results[0].matches | length >= 1' "$tmp/healed.json" >/dev/null || {
    echo "cluster-smoke: outage-era key lost after healing:" >&2
    cat "$tmp/healed.json" >&2
    exit 1
}

# 5. Kill group B outright: routed batches must fail whole with the
#    node_unavailable envelope, not succeed partially.
kill -9 "$b1_pid"
wait "$b1_pid" 2>/dev/null || true
# Eight varied keys: their union of signature shards covers every group.
probe_keys='"corso lago maggiore nord 1","via monte bianco sud 2","piazza valle verde est 3","viale porta nuova ovest 4","strada colle alto nord 5","largo ponte vecchio sud 6","borgo santa lucia est 7","canale grande ribera ovest 8"'
code=$(curl -sS -o "$tmp/unavail.json" -w '%{http_code}' -X POST "http://$router_addr/v1/link" \
    -d "{\"index\":\"bench\",\"keys\":[$probe_keys],\"strategy\":\"approximate\"}")
[ "$code" = 502 ] || {
    echo "cluster-smoke: link with a dead group answered $code, want 502" >&2
    cat "$tmp/unavail.json" >&2
    exit 1
}
jq -e '.error.code == "node_unavailable"' "$tmp/unavail.json" >/dev/null || {
    echo "cluster-smoke: wrong envelope for a dead group:" >&2
    cat "$tmp/unavail.json" >&2
    exit 1
}

# 6. Clean drains for the router and the surviving replicas.
stop_daemon router "$router_pid"
stop_daemon a1 "$a1_pid"
stop_daemon a2r "$a2r_pid"
echo "cluster-smoke: OK (routed load, replica failover mid-run, hinted handoff + resync convergence after revival, whole-batch failure on group loss, clean drains)"
