#!/usr/bin/env bash
# serve-smoke: end-to-end check that adaptivelinkd serves concurrent
# /v1/link traffic and drains cleanly on SIGTERM.
#
#   1. build adaptivelinkd and linkbench
#   2. start the server on an ephemeral port
#   3. fire 100 requests from 64 concurrent clients (must all be 2xx)
#   4. SIGTERM the server and assert a clean (exit 0) drain
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/adaptivelinkd" ./cmd/adaptivelinkd
go build -o "$tmp/linkbench" ./cmd/linkbench

"$tmp/adaptivelinkd" -addr 127.0.0.1:0 -addr-file "$tmp/addr" \
    >"$tmp/server.log" 2>&1 &
pid=$!

for _ in $(seq 100); do
    [ -s "$tmp/addr" ] && break
    sleep 0.1
done
if [ ! -s "$tmp/addr" ]; then
    echo "serve-smoke: server did not start" >&2
    cat "$tmp/server.log" >&2
    exit 1
fi
addr=$(cat "$tmp/addr")

"$tmp/linkbench" -addr "http://$addr" -n 100 -c 64 -batch 4 -parent 500

kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
if [ "$rc" -ne 0 ]; then
    echo "serve-smoke: server exited $rc (unclean drain)" >&2
    cat "$tmp/server.log" >&2
    exit 1
fi
grep -q "drained, bye" "$tmp/server.log" || {
    echo "serve-smoke: drain banner missing" >&2
    cat "$tmp/server.log" >&2
    exit 1
}
echo "serve-smoke: OK (100 requests, 64 clients, clean drain)"
