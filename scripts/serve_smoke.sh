#!/usr/bin/env bash
# serve-smoke: end-to-end check that adaptivelinkd serves concurrent
# /v1/link traffic, drains cleanly on SIGTERM, and — with a data dir —
# comes back from a restart answering exactly as before.
#
# Phase 1 (in-memory):
#   1. build adaptivelinkd and linkbench
#   2. start the server on an ephemeral port
#   3. fire 100 requests from 64 concurrent clients (must all be 2xx)
#   4. SIGTERM the server and assert a clean (exit 0) drain
#
# Phase 2 (durable restart):
#   5. start the server with -data-dir, create a durable index through
#      linkbench, log one upsert past the bulk-loaded snapshot
#   6. record /v1/link answers for a fixed probe set
#   7. SIGTERM (clean drain), start a NEW server process on the same
#      data dir, assert it reloaded the index and answers the same
#      probe set byte-for-byte identically
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/adaptivelinkd" ./cmd/adaptivelinkd
go build -o "$tmp/linkbench" ./cmd/linkbench

# start_server <log> <addr-file> [extra flags...]: launches the daemon
# and waits for its bound address; sets $pid and $addr.
start_server() {
    local log=$1 addrfile=$2
    shift 2
    "$tmp/adaptivelinkd" -addr 127.0.0.1:0 -addr-file "$addrfile" "$@" \
        >"$log" 2>&1 &
    pid=$!
    for _ in $(seq 100); do
        [ -s "$addrfile" ] && break
        sleep 0.1
    done
    if [ ! -s "$addrfile" ]; then
        echo "serve-smoke: server did not start" >&2
        cat "$log" >&2
        exit 1
    fi
    addr=$(cat "$addrfile")
}

# stop_server <log>: SIGTERM + assert a clean drain.
stop_server() {
    local log=$1
    kill -TERM "$pid"
    local rc=0
    wait "$pid" || rc=$?
    pid=""
    if [ "$rc" -ne 0 ]; then
        echo "serve-smoke: server exited $rc (unclean drain)" >&2
        cat "$log" >&2
        exit 1
    fi
    grep -q "drained, bye" "$log" || {
        echo "serve-smoke: drain banner missing" >&2
        cat "$log" >&2
        exit 1
    }
}

# --- Phase 1: in-memory load + clean drain --------------------------
start_server "$tmp/server.log" "$tmp/addr"
"$tmp/linkbench" -addr "http://$addr" -n 100 -c 64 -batch 4 -parent 500
stop_server "$tmp/server.log"
echo "serve-smoke: OK (100 requests, 64 clients, clean drain)"

# --- Phase 2: durable restart answers identically -------------------
mkdir -p "$tmp/data"
start_server "$tmp/restart1.log" "$tmp/addr1" -data-dir "$tmp/data"
"$tmp/linkbench" -addr "http://$addr" -n 40 -c 16 -batch 4 -parent 500

# One logged upsert past the snapshot, so the restart exercises
# write-ahead-log replay as well as the snapshot load.
curl -sS -o /dev/null -w '%{http_code}' -X POST "http://$addr/v1/indexes/bench/upsert" \
    -d '{"tuples":[{"id":9001,"key":"smoke restart sentinel","attrs":["logged"]}]}' \
    | grep -qx 200 || { echo "serve-smoke: upsert failed" >&2; exit 1; }

# Probe set: the logged key (exact hit), a typo of it (approximate
# path over the whole index), and a miss. Answers are deterministic,
# so a faithful restart reproduces them byte-for-byte.
probe_all() {
    local base=$1 out=$2
    : >"$out"
    for key in "smoke restart sentinel" "smoke restart sentinal" "no such key anywhere"; do
        curl -sS -X POST "$base/v1/link" \
            -d "{\"index\":\"bench\",\"key\":\"$key\"}" >>"$out"
        printf '\n' >>"$out"
    done
    # created_at is the in-process registration time, wal_records /
    # last_snapshot move with checkpoints; everything else must survive.
    curl -sS "$base/v1/indexes/bench" \
        | jq -S 'del(.created_at, .wal_records, .last_snapshot)' >>"$out"
}
probe_all "http://$addr" "$tmp/before.json"

stop_server "$tmp/restart1.log"
start_server "$tmp/restart2.log" "$tmp/addr2" -data-dir "$tmp/data"

grep -q 'msg="reloaded index".*index=bench' "$tmp/restart2.log" || {
    echo "serve-smoke: restarted server did not reload the stored index" >&2
    cat "$tmp/restart2.log" >&2
    exit 1
}

probe_all "http://$addr" "$tmp/after.json"
if ! diff -u "$tmp/before.json" "$tmp/after.json"; then
    echo "serve-smoke: answers diverged across restart" >&2
    exit 1
fi
stop_server "$tmp/restart2.log"
echo "serve-smoke: OK (restart reloaded the index, answers identical)"
