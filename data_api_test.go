package adaptivelink

import (
	"strings"
	"testing"
)

func TestFromChannelSizeHintValidation(t *testing.T) {
	if _, err := FromChannel(nil, 5); err == nil || !strings.Contains(err.Error(), "nil channel") {
		t.Errorf("nil channel: %v", err)
	}
	ch := make(chan Tuple)
	close(ch)
	if _, err := FromChannel(ch, 0); err == nil || !strings.Contains(err.Error(), "size hint 0") {
		t.Errorf("zero hint: %v", err)
	}
	if _, err := FromChannel(ch, -7); err == nil || !strings.Contains(err.Error(), "-7") {
		t.Errorf("negative hint: %v", err)
	}
	// -1 (unknown) and positive hints are valid.
	ch2 := make(chan Tuple)
	close(ch2)
	src, err := FromChannel(ch2, -1)
	if err != nil {
		t.Fatalf("-1 hint rejected: %v", err)
	}
	if _, ok, err := src.Next(); ok || err != nil {
		t.Fatalf("closed feed: ok=%v err=%v", ok, err)
	}
	ch3 := make(chan Tuple, 1)
	ch3 <- Tuple{Key: "k"}
	close(ch3)
	src, err = FromChannel(ch3, 1)
	if err != nil {
		t.Fatalf("positive hint rejected: %v", err)
	}
	if sized, ok := src.(interface{ EstimatedSize() int }); !ok || sized.EstimatedSize() != 1 {
		t.Fatal("positive hint lost")
	}
}

func TestLoadRelationCSVErrorPaths(t *testing.T) {
	cases := []struct {
		name      string
		input     string
		keyColumn string
		nilReader bool
		wantErr   []string
	}{
		{
			name: "nil reader", nilReader: true, keyColumn: "location",
			wantErr: []string{"refs.csv", "nil reader"},
		},
		{
			name: "empty key column", input: "location\nx\n", keyColumn: "",
			wantErr: []string{"refs.csv", "empty key column name"},
		},
		{
			name: "missing key column", input: "date,place\n2008-01-01,x\n", keyColumn: "location",
			wantErr: []string{"refs.csv", `key column "location" not found`, "place"},
		},
		{
			name: "ragged row", input: "location,extra\na,1\nb\n", keyColumn: "location",
			wantErr: []string{"refs.csv", "line 3", "got 1 fields, want 2"},
		},
		{
			name: "malformed quoting", input: "location\n\"broken\nnope", keyColumn: "location",
			wantErr: []string{"refs.csv"},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var rd *strings.Reader
			if !c.nilReader {
				rd = strings.NewReader(c.input)
			}
			var err error
			if c.nilReader {
				_, _, err = LoadRelationCSV(nil, "refs.csv", c.keyColumn)
			} else {
				_, _, err = LoadRelationCSV(rd, "refs.csv", c.keyColumn)
			}
			if err == nil {
				t.Fatal("no error")
			}
			for _, want := range c.wantErr {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q missing %q", err, want)
				}
			}
		})
	}
}

func TestLoadRelationCSVRoundTrip(t *testing.T) {
	in := "date,location\n2008-01-01,monte rosa vetta\n2008-01-02,porto cervo marina\n"
	tuples, factory, err := LoadRelationCSV(strings.NewReader(in), "accidents", "location")
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 2 || tuples[0].Key != "monte rosa vetta" || tuples[1].Attrs[0] != "2008-01-02" {
		t.Fatalf("tuples = %+v", tuples)
	}
	// The factory yields fresh, sized sources over the same data.
	for i := 0; i < 2; i++ {
		src := factory()
		if sized, ok := src.(interface{ EstimatedSize() int }); !ok || sized.EstimatedSize() != 2 {
			t.Fatal("factory source not sized")
		}
		n := 0
		for {
			_, ok, err := src.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			n++
		}
		if n != 2 {
			t.Fatalf("factory pass %d yielded %d tuples", i, n)
		}
	}
}
