package adaptivelink

import "testing"

func TestNormalizeKey(t *testing.T) {
	if got := NormalizeKey("  Forlì -  Cesena  "); got != "FORLI CESENA" {
		t.Errorf("NormalizeKey = %q", got)
	}
}

func TestNormalizeSource(t *testing.T) {
	src := NormalizeSource(FromTuples([]Tuple{
		{Key: " via  Garibaldi ", Attrs: []string{"payload, untouched"}},
	}))
	tup, ok, err := src.Next()
	if err != nil || !ok {
		t.Fatalf("Next: ok=%v err=%v", ok, err)
	}
	if tup.Key != "VIA GARIBALDI" {
		t.Errorf("key = %q", tup.Key)
	}
	if tup.Attrs[0] != "payload, untouched" {
		t.Errorf("payload changed: %q", tup.Attrs[0])
	}
	// Size estimate passes through, so adaptive joins still work.
	sized, ok := src.(interface{ EstimatedSize() int })
	if !ok || sized.EstimatedSize() != 1 {
		t.Error("size estimate lost through NormalizeSource")
	}
}

func TestNormalizeSourceInJoin(t *testing.T) {
	// Formatting differences disappear; only the genuine typo remains,
	// to be caught by the approximate path.
	left := NormalizeSource(FromKeys("Monte Rosa   Vetta Alta", "Porto Cervo, Marina Blu"))
	right := NormalizeSource(FromKeys("MONTE ROSA VETTA ALTA", "porto cervo marina blu"))
	j, err := New(left, right, Options{Strategy: ExactOnly})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := j.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Errorf("normalised exact join found %d matches, want 2", len(ms))
	}
}
