package adaptivelink

import (
	"math"
	"testing"
)

// reconcile asserts the explain-mode contract: the per-key decision
// traces agree exactly with the session's own statistics — every probe
// has a decision, hits/escalations/matches sum to the session counters,
// the events' transitions count the session's switches, and the final
// spend equals ModelledCost to the bit.
func reconcile(t *testing.T, sess *Session, label string) {
	t.Helper()
	st := sess.Stats()
	ds := sess.Decisions()
	if len(ds) != st.Probes {
		t.Fatalf("%s: %d decisions for %d probes", label, len(ds), st.Probes)
	}
	var hits, matches, escalations, switches int
	for _, d := range ds {
		if d.Hit {
			hits++
		}
		matches += d.Matches
		if d.Escalated {
			escalations++
		}
		for _, e := range d.Events {
			if e.From != e.To {
				switches++
			}
		}
	}
	if hits != st.Hits {
		t.Errorf("%s: decision hits %d != session hits %d", label, hits, st.Hits)
	}
	if matches != st.Matches {
		t.Errorf("%s: decision matches %d != session matches %d", label, matches, st.Matches)
	}
	if escalations != st.Escalations {
		t.Errorf("%s: decision escalations %d != session escalations %d", label, escalations, st.Escalations)
	}
	if switches != st.Switches {
		t.Errorf("%s: decision transitions %d != session switches %d", label, switches, st.Switches)
	}
	if n := len(ds); n > 0 {
		if got, want := ds[n-1].SpendAfter, st.ModelledCost; got != want {
			t.Errorf("%s: final spend %v != ModelledCost %v", label, got, want)
		}
	}
	// SpendAfter is monotonic: probes only ever add cost.
	for i := 1; i < len(ds); i++ {
		if ds[i].SpendAfter < ds[i-1].SpendAfter {
			t.Errorf("%s: spend regressed at key %d: %v -> %v", label, i, ds[i-1].SpendAfter, ds[i].SpendAfter)
		}
	}
	// Event self-consistency: events carry the probe's step clock and
	// internally consistent reasons.
	for i, d := range ds {
		for _, e := range d.Events {
			if e.From == e.To && (e.Reason == "deficit" || e.Reason == "window-clear") {
				t.Errorf("%s: key %d: stationary event labelled %q", label, i, e.Reason)
			}
			if e.From != e.To && (e.Reason == "steady" || e.Reason == "deficit-held") {
				t.Errorf("%s: key %d: transition labelled %q", label, i, e.Reason)
			}
		}
	}
}

// TestExplainReconcilesAcrossStates drives explain-mode sessions
// through every Fig. 4 state a resident session can report — lex/rex
// (clean exact probing), lex/rap (probe-side escalation and the window
// drain back), lap/rap (a fixed all-approximate session) — plus the
// forced decisions (budget pin, futility revert), and pins the
// reconciliation contract in each.
func TestExplainReconcilesAcrossStates(t *testing.T) {
	statesSeen := map[string]bool{}

	t.Run("adaptive round trip", func(t *testing.T) {
		ix := newTestIndex(t, "via monte bianco nord 12", "lago di como est", "valle verde ovest 9")
		sess, err := ix.NewSession(SessionOptions{Explain: true})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			sess.Probe("lago di como est")
		}
		// Variant: exact miss fires σ, the session escalates this very
		// probe into lex/rap and recovers the match.
		sess.Probe("via monte bianca nord 12")
		// Clean stretch: the perturbation window drains, the session
		// reverts to lex/rex.
		for i := 0; i < 120; i++ {
			sess.Probe("lago di como est")
		}
		reconcile(t, sess, "adaptive")

		ds := sess.Decisions()
		esc := ds[5]
		if !esc.Escalated || !esc.Hit || esc.Mode != "ex" {
			t.Fatalf("escalated key decision = %+v", esc)
		}
		var deficit, clear bool
		for _, d := range ds {
			statesSeen[d.Mode] = true
			for _, e := range d.Events {
				statesSeen[e.From] = true
				statesSeen[e.To] = true
				if e.Reason == "deficit" {
					deficit = true
					if !e.Sigma {
						t.Error("deficit event without sigma")
					}
					if e.Tail > 0.05 {
						t.Errorf("deficit event tail %v above θout", e.Tail)
					}
				}
				if e.Reason == "window-clear" {
					clear = true
				}
			}
		}
		if !deficit || !clear {
			t.Fatalf("round trip missing reasons: deficit=%v window-clear=%v", deficit, clear)
		}
		// The resident model's expectation is p=1: expected hits = probes.
		for _, d := range ds {
			for _, e := range d.Events {
				if math.Abs(e.ExpectedHits-float64(e.Probe)) > 1e-9 {
					t.Fatalf("expected hits %v at probe %d under p=1", e.ExpectedHits, e.Probe)
				}
			}
		}
	})

	t.Run("futility", func(t *testing.T) {
		ix := newTestIndex(t, "via monte bianco nord 12")
		sess, err := ix.NewSession(SessionOptions{Explain: true, FutilityK: 3})
		if err != nil {
			t.Fatal(err)
		}
		// A key with no counterpart at all: permanent deficit, fruitless
		// approximate probing, futility revert.
		for i := 0; i < 15; i++ {
			sess.Probe("xyzzy plugh 404")
		}
		reconcile(t, sess, "futility")
		var futility bool
		for _, d := range sess.Decisions() {
			for _, e := range d.Events {
				statesSeen[e.From], statesSeen[e.To] = true, true
				if e.Reason == "futility" {
					futility = true
				}
			}
		}
		if !futility {
			t.Fatal("futility revert not visible in the decision trace")
		}
	})

	t.Run("budget", func(t *testing.T) {
		ix := newTestIndex(t, "via monte bianco nord 12")
		sess, err := ix.NewSession(SessionOptions{Explain: true, CostBudget: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			sess.Probe("xyzzy plugh 404")
		}
		reconcile(t, sess, "budget")
		var budget bool
		for _, d := range sess.Decisions() {
			if d.Escalated {
				t.Error("budget-pinned session escalated")
			}
			for _, e := range d.Events {
				if e.Reason == "budget" {
					budget = true
				}
			}
		}
		if !budget {
			t.Fatal("budget pin not visible in the decision trace")
		}
	})

	t.Run("fixed exact", func(t *testing.T) {
		ix := newTestIndex(t, "via monte bianco nord 12", "lago di como est")
		sess, err := ix.NewSession(SessionOptions{Strategy: ExactOnly, Explain: true})
		if err != nil {
			t.Fatal(err)
		}
		sess.Probe("lago di como est")
		sess.Probe("via monte bianca nord 12") // miss: fixed sessions never escalate
		reconcile(t, sess, "exact-only")
		for _, d := range sess.Decisions() {
			statesSeen[d.Mode] = true
			if d.Mode != "ex" || d.Escalated || len(d.Events) != 0 {
				t.Fatalf("exact-only decision = %+v", d)
			}
		}
	})

	t.Run("fixed approx", func(t *testing.T) {
		ix := newTestIndex(t, "via monte bianco nord 12", "lago di como est")
		sess, err := ix.NewSession(SessionOptions{Strategy: ApproximateOnly, Explain: true})
		if err != nil {
			t.Fatal(err)
		}
		sess.Probe("via monte bianca nord 12")
		sess.Probe("lago di como est")
		reconcile(t, sess, "approx-only")
		for _, d := range sess.Decisions() {
			statesSeen[d.Mode] = true
			if d.Mode != "ap" {
				t.Fatalf("approx-only decision mode = %q", d.Mode)
			}
		}
	})

	// Between the adaptive trajectory and the fixed strategies the traces
	// covered both probe operators and the session-reachable Fig. 4
	// states (the resident reference never runs an operator of its own,
	// so the intermediate single-side states exist only in the batch
	// engine — covered by Join's Activations).
	for _, want := range []string{"ex", "ap", "lex/rex", "lap/rap"} {
		if !statesSeen[want] {
			t.Errorf("no decision trace touched %q (saw %v)", want, statesSeen)
		}
	}
}

// TestExplainBatchMatchesSequential: ProbeBatch under explain produces
// the same matches, statistics and decisions as probing key by key.
func TestExplainBatchMatchesSequential(t *testing.T) {
	keys := []string{
		"lago di como est", "via monte bianco nord 12", "via monte bianca nord 12",
		"xyzzy plugh 404", "valle verde ovest 9", "lago di como est",
	}
	mk := func() *Session {
		ix := newTestIndex(t, "via monte bianco nord 12", "lago di como est", "valle verde ovest 9")
		sess, err := ix.NewSession(SessionOptions{Explain: true, FutilityK: 3})
		if err != nil {
			t.Fatal(err)
		}
		return sess
	}
	one := mk()
	var seq [][]ProbeMatch
	for _, k := range keys {
		seq = append(seq, one.Probe(k))
	}
	batch := mk()
	got := batch.ProbeBatch(keys)
	if len(got) != len(seq) {
		t.Fatalf("batch returned %d result sets, want %d", len(got), len(seq))
	}
	for i := range seq {
		if len(got[i]) != len(seq[i]) {
			t.Fatalf("key %d: batch %d matches, sequential %d", i, len(got[i]), len(seq[i]))
		}
	}
	if a, b := one.Stats(), batch.Stats(); a != b {
		t.Fatalf("stats diverge: sequential %+v, batch %+v", a, b)
	}
	da, db := one.Decisions(), batch.Decisions()
	if len(da) != len(db) {
		t.Fatalf("decision counts diverge: %d vs %d", len(da), len(db))
	}
	for i := range da {
		if da[i].Key != db[i].Key || da[i].Hit != db[i].Hit || da[i].Escalated != db[i].Escalated ||
			da[i].Matches != db[i].Matches || da[i].SpendAfter != db[i].SpendAfter {
			t.Errorf("decision %d diverges: %+v vs %+v", i, da[i], db[i])
		}
	}
	reconcile(t, batch, "batch")
}

func TestExplainDisabledReturnsNil(t *testing.T) {
	ix := newTestIndex(t, "via monte bianco nord 12")
	sess, err := ix.NewSession(SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sess.Probe("via monte bianco nord 12")
	if sess.Decisions() != nil {
		t.Fatal("Decisions non-nil without Explain")
	}
}
