// Package adaptivelink performs record linkage at query time with an
// adaptive trade-off between result completeness and execution cost,
// implementing Lengu, Missier, Fernandes, Guerrini and Mesiti,
// "Time-completeness trade-offs in record linkage using Adaptive Query
// Processing" (EDBT 2009).
//
// # Problem
//
// When two independently maintained tables are joined on a string
// attribute (a mashup joining an accidents feed against a street atlas,
// two merged customer databases, ...), some values are variants of each
// other — near-duplicates at small edit distance — and an exact join
// silently drops them. A similarity join recovers them but costs orders
// of magnitude more per tuple. Classic record-linkage pipelines resolve
// this offline; in on-the-fly integration the tables are only available
// at query time.
//
// # Approach
//
// adaptivelink runs a single pipelined symmetric hash join whose two
// sides can each be matched exactly (hash lookup on the join key) or
// approximately (q-gram similarity above a threshold). A
// Monitor–Assess–Respond control loop watches the observed result size:
// under a parent–child join expectation the result size after n child
// tuples is binomially distributed, so a statistically significant
// deficit is evidence of variants. The loop then switches the affected
// side(s) to approximate matching — safely, at operator quiescent
// points, with lazy index catch-up — and switches back once recent
// matches show variants have stopped.
//
// # Usage
//
//	left := adaptivelink.FromKeys("alpha centauri b", "beta pictoris c")
//	right := adaptivelink.FromKeys("alpha centauri b", "beta pictoris d")
//	j, err := adaptivelink.New(left, right, adaptivelink.Options{ParentSize: 2})
//	if err != nil { ... }
//	matches, err := j.All()
//
// See the examples directory for streaming inputs, the accidents-mashup
// scenario and parameter tuning, and EXPERIMENTS.md for the full
// reproduction of the paper's evaluation.
package adaptivelink
