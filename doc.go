// Package adaptivelink performs record linkage at query time with an
// adaptive trade-off between result completeness and execution cost,
// implementing Lengu, Missier, Fernandes, Guerrini and Mesiti,
// "Time-completeness trade-offs in record linkage using Adaptive Query
// Processing" (EDBT 2009).
//
// # Problem
//
// When two independently maintained tables are joined on a string
// attribute (a mashup joining an accidents feed against a street atlas,
// two merged customer databases, ...), some values are variants of each
// other — near-duplicates at small edit distance — and an exact join
// silently drops them. A similarity join recovers them but costs orders
// of magnitude more per tuple. Classic record-linkage pipelines resolve
// this offline; in on-the-fly integration the tables are only available
// at query time.
//
// # Approach
//
// adaptivelink runs a single pipelined symmetric hash join whose two
// sides can each be matched exactly (hash lookup on the join key) or
// approximately (q-gram similarity above a threshold). A
// Monitor–Assess–Respond control loop watches the observed result size:
// under a parent–child join expectation the result size after n child
// tuples is binomially distributed, so a statistically significant
// deficit is evidence of variants. The loop then switches the affected
// side(s) to approximate matching — safely, at operator quiescent
// points, with lazy index catch-up — and switches back once recent
// matches show variants have stopped.
//
// # Concurrency
//
// Options.Parallelism shards the join across P concurrent engines
// (default runtime.GOMAXPROCS(0); 1 selects the exact sequential
// engine). A single splitter goroutine reads both inputs in the
// canonical alternating order and hash-partitions them so that every
// pair of keys that can match — by equality or by q-gram similarity at
// the configured threshold — lands in at least one common shard: keys
// are routed to the shards owning the q-grams of their prefix-filter
// signature (for exact-only joins, plain hash-by-key suffices and is
// replication-free). Each shard runs an independent switchable engine
// on its own goroutine; a merger fans the match streams into one,
// deduplicating pairs that replication placed in several shards. For
// the fixed strategies the resulting match set is identical to the
// sequential engine's.
//
// Adaptive parallel joins keep one aggregate Monitor–Assess–Respond
// loop over all shards (the same binomial deficit statistics, over
// summed counts). Every δadapt dispatched tuples the splitter emits a
// barrier mark behind the tuples sent so far; when every shard has
// echoed it — and therefore holds no work from before the barrier —
// the loop assesses a consistent cut and broadcasts any mode switch,
// which each shard applies at its own quiescent point before touching
// the next interval's tuples. Per-shard switching thus preserves the
// sequential engine's quiescent-point guarantee: no shard ever changes
// operators mid-probe, and switch-time index catch-up runs per shard
// exactly as in §2.3. Each merged match carries its probing tuple's
// global dispatch position, so the controller replays the perturbation
// windows at the exact steps a sequential controller would have
// recorded them: observations, assessments and switch decisions are
// identical activation-for-activation, for any W and δadapt.
//
// RetainWindow and CostBudget — the safety valves that bound memory and
// cost on unbounded or hostile inputs — compose with any Parallelism:
//
//   - Sliding-window eviction follows the global arrival order, not
//     shard-local arrival: the splitter stamps every tuple with its
//     per-side arrival sequence number and the opposite side's progress,
//     and each shard translates those stamps into the exact window floor
//     a sequential engine would apply at that probe. The match set is
//     therefore identical to the sequential windowed engine's at every
//     shard count. Physical reclamation piggybacks on punctuation: at
//     each barrier mark (or, without a controller, at eviction-only
//     marks the splitter emits every RetainWindow dispatches) every
//     shard drops the index entries behind its floor, so a replicated
//     q-gram posting is evicted everywhere at the same consistent cut
//     and index memory stays bounded at ~2·RetainWindow entries per
//     side per shard.
//
//   - The cost budget is enforced against one global spend counter kept
//     on the logical step clock: at each barrier the interval's
//     dispatches accrue at the broadcast state's step weight and each
//     broadcast switch accrues its transition weight, which equals the
//     sequential engine's own modelled cost at the same step (the
//     barrier rendezvous pins every interval to a single state). The
//     budget therefore pins the join to exact matching at the same
//     activation a sequential run would, and budgeted parallel match
//     sets are golden-identical to sequential ones. The spend prices
//     the logical scan, not the replicated shard work; Stats reports
//     both (BudgetSpend vs ModelledCost).
//
// # Serving
//
// Besides the one-shot batch join (New → All), the engine has a
// resident index-once/probe-many mode for serving linkage as a query
// service. NewIndex materialises the reference table into BOTH hash
// structures of Fig. 3 up front — forfeiting the lazy-maintenance
// saving of §2.3 in exchange for operator switches that cost nothing,
// since there is never an index to catch up:
//
//	ix, err := adaptivelink.NewIndex(refSource, adaptivelink.IndexOptions{})
//	sess, err := ix.NewSession(adaptivelink.SessionOptions{})
//	matches := sess.Probe("via monte bianca nord 12")
//
// Adaptivity applies per session, not per run: each Session carries its
// own Monitor–Assess–Respond statistics (deficit test, perturbation
// window, escalation history), so one misbehaving probe stream
// escalates only itself. The observation model specialises cleanly —
// the reference is fully resident, so the per-trial match probability
// p(n) of §3.2 is exactly 1 and any persistent shortfall of hits is
// significant evidence of variants. Because switches are free,
// SessionOptions.DeltaAdapt defaults to 1: the loop may assess after
// every probe, and the very probe whose miss fires σ is re-run
// approximately (escalation), so its variant matches are not lost.
// Clean stretches drain the window and revert the session to exact
// probing. Index.Probe is the sessionless one-shot convenience
// (exact, then one approximate probe on a miss).
//
// An Index is safe for concurrent use and its probe path is lock-free.
// The reference is sharded by the same prefix-filter co-partitioning as
// the parallel streaming executor (IndexOptions.Shards, default one per
// hardware thread); each shard publishes an immutable snapshot through
// an atomic pointer, and Upsert builds replacement snapshots off-path
// and swaps them in, RCU-style. The consistency model is per-shard
// snapshot isolation: a probe sees a point-in-time state of every shard
// it reads, upserts are atomic per key (a probe observes the old
// payload or the new one, never a mix), and a cross-shard batch is
// per-shard-consistent rather than globally serialised. ProbeBatch (on
// Index and Session) probes a whole batch with routing and snapshot
// loads amortised per shard-group — semantically identical, match for
// match and statistic for statistic, to a loop of single probes. The
// index is a keyed store — one resident record per join key, newest
// wins, on load and upsert alike (see NewIndex). For each of the four
// Fig. 4 states, the multiset of matches produced by concurrent pinned
// sessions over any shuffling of a probe stream against a key-unique
// reference is identical to the sequential batch engine's result in
// that state (probe_parity_test.go).
//
// cmd/adaptivelinkd serves this mode over HTTP/JSON — named indexes,
// single and batch /v1/link probes, incremental upserts, bounded
// worker-pool admission control, per-request deadlines, a
// Prometheus-style /metrics endpoint priced by the paper's cost model,
// and graceful drain on SIGTERM. Every non-2xx response carries the
// unified v1 error envelope {"error":{"code":...,"message":...}} with
// a closed code set (see internal/service). cmd/linkbench load-tests
// it and records throughput/latency points into BENCH_service.json.
//
// # Cluster
//
// The serving mode also scales across processes: adaptivelinkd
// -cluster turns a daemon into a router fanning /v1/link out over a
// fleet of stock node daemons. The nodes are unmodified — every
// distributed concern lives in the router (internal/cluster), which
// owns the cluster map, the normalization profile and the global key
// sequence, and replays the facade Session (NewRemoteIndex wraps any
// join.Resident, including the router's remote view) so the adaptive
// control loop runs one layer above the network.
//
// The shard→node contract extends the in-process co-partitioning: M
// logical shards are assigned to node groups in contiguous ranges
// (shardmap.NodeRanges), keys map to shards by their prefix-filter
// signature, and any tuple matching a probe at or above the threshold
// shares a signature shard with it — so an exact probe needs only the
// key's home group and an approximate probe the union of its signature
// groups, and that union is the complete answer. The routed response
// is byte-identical to a single process serving the same request
// stream: matches, session statistics and error envelopes alike,
// locked down by a differential harness over 1-, 2- and 3-group
// clusters with replicas.
//
// Consistency is per-node snapshot isolation, the single-process model
// per shard group: writes are attempted on every replica of each
// owning group and are acknowledged — and globally sequenced — once
// the group's write quorum applied them (Config.WriteQuorum, default
// majority); reads hit one replica per group, round-robin, preferring
// replicas with no repair debt and failing over within the group on
// transport errors and draining envelopes. A group with no answering
// replica — or below quorum — fails the whole batch with the
// node_unavailable envelope naming the group and its shard range
// (never a silent partial result), a node-side timeout surfaces as the
// standard deadline envelope, and GET /v1/cluster reports the routing
// table with per-replica health and repair state.
//
// Replicas that missed a quorum write converge through three
// escalating repair paths. Hinted handoff queues each missed copy
// router-side, per replica, in original sequence order, and a drainer
// replays the queue with jittered exponential backoff once the replica
// answers; new writes to a lagging replica queue behind its pending
// hints so replay order is preserved. A replica gone past the bounded
// hint horizon (Config.HintCapacity) has its queue cleared and the
// affected indexes marked needs_resync; anti-entropy then streams a
// full snapshot from a healthy replica (the index export/resync
// endpoints), which also bootstraps a blank replacement node. On
// Config.RepairInterval (or Client.Repair on demand) the router
// compares per-index content digests within each group, elects the
// reference copy by modal digest, and resyncs divergent replicas —
// catching corruption the hint path cannot see. A per-replica
// closed/open/half-open circuit breaker, fed passively by live traffic
// and optionally by an active /healthz prober (Config.ProbeInterval),
// short-circuits writes to the hint queue and demotes reads while a
// replica is down. internal/fault provides the deterministic harness
// the chaos suite (make chaos) scripts these failures with: a
// rule-driven http.RoundTripper that fails, black-holes or delays
// matching requests, and a simulated filesystem that injects
// crash-at-byte, torn-write and fsync failures under the store.
//
// # Durability
//
// A resident index can outlive its process. Open(dir, opts) opens —
// creating if needed — the durable index stored in a directory, Save
// checkpoints or exports it, Close releases it, and BulkLoad with
// StorageOptions.Dir set builds-and-persists in one step:
//
//	ix, err := adaptivelink.Open("/var/lib/atlas", adaptivelink.IndexOptions{})
//	ix.Upsert(tuples...)   // logged, then applied
//	ix.Save("")            // checkpoint in place
//	ix.Close()
//
// An index directory holds two artifacts. The snapshot (index.snap) is
// a versioned, CRC-32C-checksummed binary serialisation of the sharded
// index in the exact representation the engine probes — dense gram-id
// dictionaries, postings and signatures — so loading is a sequential
// read plus slice reconstruction: no key is re-decomposed and no gram
// re-hashed, which is what makes cold start several times faster than
// rebuilding from the source CSV (BENCH_store.json, make bench-store).
// The write-ahead log (upserts.wal) records every acknowledged Upsert
// batch in CRC-framed records before it is applied; on Open the
// snapshot loads first and the log replays on top, so the reopened
// index answers exactly as the crashed one did. Recovery truncates a
// torn final record (a crash mid-append) at the last intact boundary,
// and rejects — never silently repairs — corrupt artifacts: a
// truncated or bit-flipped snapshot, a damaged log record, or a
// configuration mismatch between opts and the stored index each fail
// Open with a descriptive error, and no partial index is ever
// returned.
//
// StorageOptions.WALSync selects the fsync policy: SyncAlways (the
// default) makes every acknowledged Upsert crash-durable at the price
// of one fsync per batch; SyncNone leaves flushing to the OS — much
// faster ingest, bounded staleness after a crash, never an
// inconsistent index. Save("") checkpoints in place (snapshot
// replaced atomically via rename, log reset); SnapshotOnClose does the
// same during Close, making the next Open a pure snapshot load.
// NewIndex remains the purely ephemeral constructor.
//
// adaptivelinkd gains the same durability end to end: -data-dir makes
// created indexes durable (one subdirectory per index, bulk-loaded
// straight into a snapshot), boot reloads every stored index before
// serving, POST /v1/indexes/{name}/snapshot checkpoints over the wire,
// and index info reports durable/wal_records/last_snapshot.
//
// # Observability
//
// The library explains its adaptive decisions and exposes its runtime
// telemetry. SessionOptions.Explain makes a session record one
// KeyDecision per probed key — the mode it ran in, whether it hit, how
// many matches it produced, whether it escalated, and the
// DecisionPoint events (observed vs expected hits, the σ tail, the
// state transition and its reason, the modelled spend after the probe)
// behind every controller activation. Session.Decisions returns the
// trace; with Explain unset the probe path records nothing and keeps
// its zero-allocation pin. The same traces ride the HTTP API ("explain"
// on /v1/link, "decisions" in the response) and print under
// adaptivejoin -explain.
//
// Index exposes its operational counters without touching the probe
// path: RecoveryInfo reports what Open replayed (snapshot tuples, WAL
// batches, whether a torn tail was truncated), StorageStats totals WAL
// appends and fsync/append/checkpoint latencies, and EngineStats
// counts upserts, snapshot swaps, clone time and scratch-pool traffic.
// internal/obs adds an allocation-conscious request tracer used by the
// service: sampled requests record span timings (queue wait, session
// construction, per-chunk probes, merge) into lock-free ring buffers,
// slow requests are always retained coarsely, and unsampled requests
// cost two atomic loads. adaptivelinkd surfaces all of it — structured
// key=value or JSON logs (-log-json) via log/slog, X-Request-ID
// minting/propagation, X-Debug-Trace forced sampling,
// GET /v1/debug/slowlog and /v1/debug/requests/{id},
// GET /v1/version, runtime and per-index series on /metrics, and a
// separate -debug-addr listener serving net/http/pprof. make obs-smoke
// exercises the whole surface end to end.
//
// # Performance
//
// The q-gram hot path of both engines is dictionary-encoded: each
// index interns grams into dense uint32 ids (internal/qgram.Dict),
// posting lists are a slice-indexed table keyed by gram id, and every
// indexed tuple stores its sorted gram-id signature once, so
// verification is integer arithmetic over precomputed sizes and
// overlaps — no re-extraction, no re-hashing, no per-probe maps.
// Probe keys are decomposed by packed fast paths that never
// materialise gram strings: ASCII keys pack gram bytes into uint64s,
// non-ASCII keys within the Basic Multilingual Plane pack code points
// at 21 bits each (astral-plane input falls back to an equivalent
// string path), candidate counting runs on epoch-stamped arrays reused
// across probes, and the resident indexes recycle all per-probe
// scratch through a sync.Pool. With caller-owned result buffers the
// exact resident probe performs zero allocations per operation and the
// approximate probe at most one (two for non-ASCII keys); allocation
// regression tests pin all budgets.
//
// The encoding composes with the RCU snapshot discipline above: the
// dictionary is part of each published shard snapshot, Upsert clones
// it copy-on-write together with the postings, and interning is
// append-only (ids are never renumbered), so a probe always reads a
// consistent dict/postings pair and the match contract is bit-for-bit
// unchanged. BENCH_probe.json records the per-probe trajectory (make
// bench-probe); BENCH_service.json the service-level one.
//
// # Unicode and normalization
//
// Join keys are UTF-8 throughout, and non-Latin keys run the same
// packed hot path as ASCII ones. The gram extractor's decomposition
// has three tiers: ASCII grams pack their bytes into a uint64; grams
// whose code points all lie in the Basic Multilingual Plane (which is
// every natural-language script — Latin with diacritics, Cyrillic,
// Greek, CJK, ...) pack up to three code points at 21 bits each, a
// packing whose numeric order still equals the gram's UTF-8 bytewise
// order, so routing, sorting and prefix filtering are oblivious to the
// scheme; only astral-plane runes (emoji, historic scripts) and gram
// widths the packings cannot hold fall back to gram strings, with
// identical results (FuzzDecomposeParity holds the three tiers
// differentially equal). Case folding inside the extractor uses the
// simple, rune-count-preserving mapping so gram positions are stable.
//
// Matching Unicode spellings of the same name — "José" in NFC vs NFD,
// "STRASSE" vs "Straße", е vs ё — is the job of normalization
// profiles, applied by the Index facade before any key reaches the
// engine. IndexOptions.Profile names a pipeline from a fixed registry
// (Profiles lists it): "" indexes keys verbatim (the default and the
// historical behaviour), "standard" is the legacy fold/upper/strip
// pipeline, and "latin", "cyrillic", "greek" and "cjk" are per-script
// pipelines composing NFC canonicalisation, accent folding, full case
// folding (ß→SS, final sigma), combining-mark stripping and width
// folding as appropriate. Keys are normalised once on Upsert — before
// the WAL logs them, so durable artifacts hold keys in indexed form
// and recovery never re-normalises — and on every probe entry point.
// The profile is part of the durable compatibility tuple: snapshot and
// WAL headers record it, reopening with zero options adopts it, and
// opening under a different profile is a descriptive error, never a
// silent re-interpretation. Profile names are forever-stable for the
// same reason. The HTTP service exposes the option as the "profile"
// field of index creation.
//
// The normalize package also fixes two classic linkage bugs: Soundex
// treats intra-name punctuation as transparent (O'BRIEN codes like
// OBRIEN, not O165) and accent folding accepts decomposed (NFD) input
// and covers the ø/æ/œ/ł/đ/ð/þ gaps of the historical accent map.
//
// # Usage
//
//	left := adaptivelink.FromKeys("alpha centauri b", "beta pictoris c")
//	right := adaptivelink.FromKeys("alpha centauri b", "beta pictoris d")
//	j, err := adaptivelink.New(left, right, adaptivelink.Options{ParentSize: 2})
//	if err != nil { ... }
//	matches, err := j.All()
//
// See the examples directory for streaming inputs, the accidents-mashup
// scenario, parameter tuning and the serving mode (examples/service),
// and EXPERIMENTS.md for the full reproduction of the paper's
// evaluation.
package adaptivelink
