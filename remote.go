package adaptivelink

import (
	"fmt"

	"adaptivelink/internal/join"
	"adaptivelink/internal/relation"
)

// fallibleUpserter is the optional error-aware write contract a
// Resident may provide. join.Resident's Upsert cannot fail — local
// engines apply in memory — but a remote resident (the cluster fan-out
// client) can lose a node mid-write. When the resident implements this
// interface the facade routes writes through it, so Index.Upsert's
// error return is honest for remote indexes too.
type fallibleUpserter interface {
	UpsertChecked(tuples []relation.Tuple) (inserted, updated int, err error)
}

// NewRemoteIndex wraps an externally provided Resident — typically a
// cluster fan-out client — in the standard Index facade: the same
// normalization, probe, session and statistics machinery runs over it,
// which is what keeps a routed cluster byte-identical to a single
// process (the router re-uses this exact code path rather than
// re-implementing it). The facade owns normalization: the resident only
// ever sees normalised keys, exactly as a local engine would.
//
// The options must describe the matching configuration the resident
// was built for; Storage must be zero (durability lives on the remote
// nodes, behind the resident).
func NewRemoteIndex(res join.Resident, opts IndexOptions) (*Index, error) {
	if res == nil {
		return nil, fmt.Errorf("adaptivelink: nil resident")
	}
	if opts.Storage.Dir != "" {
		return nil, fmt.Errorf("adaptivelink: a remote index has no local storage; Storage.Dir %q must be empty", opts.Storage.Dir)
	}
	opts, err := opts.resolved()
	if err != nil {
		return nil, err
	}
	return newIndex(res, opts), nil
}

// WithResident returns a shallow view of the index running over a
// different Resident under the same options and normalization pipeline.
// The router uses it to bind a request-scoped resident (carrying the
// request's context and transport-error state) while sharing the
// managed index's configuration. The view is in-memory only — it never
// touches the original's storage — and is as safe for concurrent use as
// its resident.
func (ix *Index) WithResident(res join.Resident) *Index {
	view := &Index{opts: ix.opts, norm: ix.norm}
	view.setResident(res)
	return view
}
