package stream

import (
	"encoding/csv"
	"strings"
	"testing"
	"testing/quick"

	"adaptivelink/internal/relation"
)

func drain(t *testing.T, s Source) []relation.Tuple {
	t.Helper()
	var out []relation.Tuple
	for {
		tu, ok, err := s.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			break
		}
		out = append(out, tu)
	}
	return out
}

func TestSideOtherAndString(t *testing.T) {
	if Left.Other() != Right || Right.Other() != Left {
		t.Error("Other() wrong")
	}
	if Left.String() != "left" || Right.String() != "right" {
		t.Error("String() wrong")
	}
	if Side(7).String() != "Side(7)" {
		t.Errorf("unknown side String() = %q", Side(7).String())
	}
}

func TestSliceSource(t *testing.T) {
	rel := relation.FromKeys("r", "a", "b", "c")
	s := FromRelation(rel)
	if s.EstimatedSize() != 3 {
		t.Errorf("EstimatedSize = %d", s.EstimatedSize())
	}
	got := drain(t, s)
	if len(got) != 3 || got[0].Key != "a" || got[2].Key != "c" {
		t.Errorf("drained %v", got)
	}
	// Exhausted source stays exhausted.
	if _, ok, _ := s.Next(); ok {
		t.Error("Next after exhaustion returned ok")
	}
	s.Reset()
	if got := drain(t, s); len(got) != 3 {
		t.Errorf("after Reset drained %d", len(got))
	}
}

func TestChanSource(t *testing.T) {
	ch := make(chan relation.Tuple, 2)
	ch <- relation.Tuple{ID: 0, Key: "x"}
	ch <- relation.Tuple{ID: 1, Key: "y"}
	close(ch)
	s := FromChannel(ch, 2)
	if s.EstimatedSize() != 2 {
		t.Errorf("EstimatedSize = %d", s.EstimatedSize())
	}
	got := drain(t, s)
	if len(got) != 2 || got[1].Key != "y" {
		t.Errorf("drained %v", got)
	}
}

func TestCSVSource(t *testing.T) {
	in := "date,location\n2008,ROME\n2009,MILAN\n"
	src, err := FromCSV(csv.NewReader(strings.NewReader(in)), "location", -1)
	if err != nil {
		t.Fatalf("FromCSV: %v", err)
	}
	got := drain(t, src)
	if len(got) != 2 {
		t.Fatalf("drained %d tuples", len(got))
	}
	if got[0].Key != "ROME" || got[0].Attrs[0] != "2008" || got[0].ID != 0 {
		t.Errorf("tuple 0 = %v", got[0])
	}
	if got[1].Key != "MILAN" || got[1].ID != 1 {
		t.Errorf("tuple 1 = %v", got[1])
	}
	if src.EstimatedSize() != -1 {
		t.Errorf("EstimatedSize = %d, want -1", src.EstimatedSize())
	}
}

func TestCSVSourceMissingKey(t *testing.T) {
	_, err := FromCSV(csv.NewReader(strings.NewReader("a,b\n1,2\n")), "location", -1)
	if err == nil {
		t.Fatal("expected error for missing key column")
	}
}

func TestCSVSourceMalformedRow(t *testing.T) {
	in := "a,b\n1,2\n\"unterminated\n"
	src, err := FromCSV(csv.NewReader(strings.NewReader(in)), "a", -1)
	if err != nil {
		t.Fatalf("FromCSV: %v", err)
	}
	if _, ok, err := src.Next(); !ok || err != nil {
		t.Fatalf("first row: ok=%v err=%v", ok, err)
	}
	if _, ok, err := src.Next(); ok || err == nil {
		t.Fatalf("malformed row: ok=%v err=%v, want error", ok, err)
	}
	// After an error the source is done.
	if _, ok, _ := src.Next(); ok {
		t.Error("source yielded tuples after error")
	}
}

func TestEstimateSize(t *testing.T) {
	rel := relation.FromKeys("r", "a")
	if got := EstimateSize(FromRelation(rel), 99); got != 1 {
		t.Errorf("EstimateSize(slice) = %d", got)
	}
	ch := make(chan relation.Tuple)
	close(ch)
	if got := EstimateSize(FromChannel(ch, -1), 99); got != 99 {
		t.Errorf("EstimateSize(unknown) = %d, want fallback 99", got)
	}
}

func TestRoundRobinAlternates(t *testing.T) {
	rr := NewRoundRobin(Left)
	want := []Side{Left, Right, Left, Right}
	for i, w := range want {
		if got := rr.Pick(false, false); got != w {
			t.Errorf("pick %d = %v, want %v", i, got, w)
		}
	}
}

func TestRoundRobinFallsBackWhenExhausted(t *testing.T) {
	rr := NewRoundRobin(Left)
	if got := rr.Pick(true, false); got != Right {
		t.Errorf("left exhausted but picked %v", got)
	}
	if got := rr.Pick(true, false); got != Right {
		t.Errorf("left exhausted but picked %v", got)
	}
}

func TestRoundRobinStartRight(t *testing.T) {
	rr := NewRoundRobin(Right)
	if got := rr.Pick(false, false); got != Right {
		t.Errorf("first pick = %v, want right", got)
	}
}

func TestSequential(t *testing.T) {
	s := Sequential{First: Left}
	if got := s.Pick(false, false); got != Left {
		t.Errorf("pick = %v", got)
	}
	if got := s.Pick(true, false); got != Right {
		t.Errorf("pick after left done = %v", got)
	}
}

func TestRandomInterleaveDeterministicAndValid(t *testing.T) {
	a := NewRandomInterleave(42, 0.5)
	b := NewRandomInterleave(42, 0.5)
	counts := map[Side]int{}
	for i := 0; i < 1000; i++ {
		sa, sb := a.Pick(false, false), b.Pick(false, false)
		if sa != sb {
			t.Fatal("same seed diverged")
		}
		counts[sa]++
	}
	if counts[Left] < 400 || counts[Left] > 600 {
		t.Errorf("unbalanced picks: %v", counts)
	}
}

func TestRandomInterleaveExtremeBias(t *testing.T) {
	r := NewRandomInterleave(1, 1.0)
	for i := 0; i < 100; i++ {
		if r.Pick(false, false) != Left {
			t.Fatal("leftProb=1 picked right")
		}
	}
}

func TestRandomInterleaveBadProbPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewRandomInterleave(1, 1.5)
}

func TestPickBothExhaustedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewRoundRobin(Left).Pick(true, true)
}

// Property: interleavers never return an exhausted side.
func TestInterleaverNeverPicksExhaustedProperty(t *testing.T) {
	f := func(seed int64, picks []bool) bool {
		rr := NewRoundRobin(Left)
		ri := NewRandomInterleave(seed, 0.3)
		for _, leftDone := range picks {
			// one side done, the other not
			if rr.Pick(leftDone, !leftDone) == Left == leftDone {
				return false
			}
			if ri.Pick(leftDone, !leftDone) == Left == leftDone {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
