// Package stream provides the pull-based tuple sources consumed by the
// symmetric join operators, together with the interleaving policies that
// decide which input to read from at each step of a symmetric scan.
//
// The paper targets scenarios where the joining tables are effectively
// data streams: advance access is impossible, tuples arrive one at a
// time, and pipelined operators must produce results before the inputs
// are exhausted. A Source abstracts over in-memory relations, channels
// (live feeds) and CSV readers. Sources optionally expose a cardinality
// estimate; the adaptive monitor needs the parent table's expected size
// |R| to compute the match probability p(n) = seen/|R| of §3.2.
package stream

import (
	"errors"
	"fmt"
	"io"
	"math/rand"

	"adaptivelink/internal/relation"
)

// Side identifies one of the two join inputs.
type Side int

const (
	// Left is the left join input (conventionally the parent table R).
	Left Side = iota
	// Right is the right join input (conventionally the child table S).
	Right
)

// Other returns the opposite side.
func (s Side) Other() Side {
	if s == Left {
		return Right
	}
	return Left
}

// String returns "left" or "right".
func (s Side) String() string {
	switch s {
	case Left:
		return "left"
	case Right:
		return "right"
	default:
		return fmt.Sprintf("Side(%d)", int(s))
	}
}

// Source yields tuples one at a time.
type Source interface {
	// Next returns the next tuple. ok is false once the source is
	// exhausted, after which further calls must keep returning ok=false.
	Next() (t relation.Tuple, ok bool, err error)
}

// Sized is implemented by sources that know (or can estimate) how many
// tuples they will yield in total.
type Sized interface {
	// EstimatedSize returns the expected total number of tuples.
	EstimatedSize() int
}

// SliceSource streams an in-memory relation in order.
type SliceSource struct {
	rel *relation.Relation
	pos int
}

// FromRelation wraps a relation as a Source.
func FromRelation(rel *relation.Relation) *SliceSource {
	return &SliceSource{rel: rel}
}

// Next implements Source.
func (s *SliceSource) Next() (relation.Tuple, bool, error) {
	if s.pos >= s.rel.Len() {
		return relation.Tuple{}, false, nil
	}
	t := s.rel.At(s.pos)
	s.pos++
	return t, true, nil
}

// EstimatedSize implements Sized exactly.
func (s *SliceSource) EstimatedSize() int { return s.rel.Len() }

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.pos = 0 }

// ChanSource streams tuples from a channel, e.g. a live feed. The
// channel owner closes it to signal exhaustion. An estimated size may be
// supplied when the feed's cardinality is known out of band.
type ChanSource struct {
	ch   <-chan relation.Tuple
	size int
}

// FromChannel wraps a channel as a Source; estimatedSize < 0 means
// unknown.
func FromChannel(ch <-chan relation.Tuple, estimatedSize int) *ChanSource {
	return &ChanSource{ch: ch, size: estimatedSize}
}

// Next implements Source, blocking until a tuple arrives or the channel
// closes.
func (c *ChanSource) Next() (relation.Tuple, bool, error) {
	t, ok := <-c.ch
	return t, ok, nil
}

// EstimatedSize implements Sized; negative means unknown.
func (c *ChanSource) EstimatedSize() int { return c.size }

// CSVSource streams tuples from CSV without materialising the relation.
type CSVSource struct {
	rd     recordReader
	keyCol int
	nAttrs int
	next   int // next tuple ID
	size   int
	done   bool
}

type recordReader interface {
	Read() ([]string, error)
}

// FromCSV builds a streaming source over a CSV reader whose first row is
// a header containing keyName. estimatedSize < 0 means unknown.
func FromCSV(r recordReader, keyName string, estimatedSize int) (*CSVSource, error) {
	header, err := r.Read()
	if err != nil {
		return nil, fmt.Errorf("read header: %w", err)
	}
	keyCol := -1
	for i, h := range header {
		if h == keyName {
			keyCol = i
			break
		}
	}
	if keyCol < 0 {
		return nil, fmt.Errorf("key column %q not found in header %v", keyName, header)
	}
	return &CSVSource{rd: r, keyCol: keyCol, nAttrs: len(header) - 1, size: estimatedSize}, nil
}

// Next implements Source.
func (c *CSVSource) Next() (relation.Tuple, bool, error) {
	if c.done {
		return relation.Tuple{}, false, nil
	}
	rec, err := c.rd.Read()
	if errors.Is(err, io.EOF) {
		c.done = true
		return relation.Tuple{}, false, nil
	}
	if err != nil {
		c.done = true
		return relation.Tuple{}, false, err
	}
	attrs := make([]string, 0, c.nAttrs)
	var key string
	for i, v := range rec {
		if i == c.keyCol {
			key = v
		} else {
			attrs = append(attrs, v)
		}
	}
	t := relation.Tuple{ID: c.next, Key: key, Attrs: attrs}
	c.next++
	return t, true, nil
}

// EstimatedSize implements Sized; negative means unknown.
func (c *CSVSource) EstimatedSize() int { return c.size }

// EstimateSize returns the source's size estimate, or fallback when the
// source does not implement Sized or reports unknown.
func EstimateSize(s Source, fallback int) int {
	if sized, ok := s.(Sized); ok {
		if n := sized.EstimatedSize(); n >= 0 {
			return n
		}
	}
	return fallback
}

// Interleaver decides which input the symmetric scan reads next. Pick is
// called with the exhaustion state of both sides and must return a
// non-exhausted side; when both are exhausted the scan has ended and
// Pick is not called.
type Interleaver interface {
	Pick(leftDone, rightDone bool) Side
}

// RoundRobin alternates strictly between sides, starting from Start,
// falling back to whichever side remains once the other is exhausted.
// This is the canonical symmetric scan assumed by the paper's result-size
// model.
type RoundRobin struct {
	Start Side
	last  Side
	first bool
}

// NewRoundRobin returns an alternating interleaver starting on start.
func NewRoundRobin(start Side) *RoundRobin {
	return &RoundRobin{Start: start, first: true}
}

// Pick implements Interleaver.
func (r *RoundRobin) Pick(leftDone, rightDone bool) Side {
	var want Side
	if r.first {
		want = r.Start
		r.first = false
	} else {
		want = r.last.Other()
	}
	got := resolve(want, leftDone, rightDone)
	r.last = got
	return got
}

// RandomInterleave reads from a random side with a configurable bias; a
// leftProb of 0.5 models two feeds with equal arrival rates. The rng is
// owned by the interleaver so runs are reproducible from a seed.
type RandomInterleave struct {
	rng      *rand.Rand
	leftProb float64
}

// NewRandomInterleave builds a random interleaver. leftProb must be in
// [0, 1].
func NewRandomInterleave(seed int64, leftProb float64) *RandomInterleave {
	if leftProb < 0 || leftProb > 1 {
		panic(fmt.Sprintf("stream: leftProb %v outside [0,1]", leftProb))
	}
	return &RandomInterleave{rng: rand.New(rand.NewSource(seed)), leftProb: leftProb}
}

// Pick implements Interleaver.
func (r *RandomInterleave) Pick(leftDone, rightDone bool) Side {
	var want Side
	if r.rng.Float64() < r.leftProb {
		want = Left
	} else {
		want = Right
	}
	return resolve(want, leftDone, rightDone)
}

// Sequential exhausts First entirely before reading the other side —
// the classic build-then-probe order, useful as a degenerate baseline
// and in tests.
type Sequential struct {
	First Side
}

// Pick implements Interleaver.
func (s Sequential) Pick(leftDone, rightDone bool) Side {
	return resolve(s.First, leftDone, rightDone)
}

// resolve returns want unless that side is exhausted, in which case it
// returns the other side; it panics if both are exhausted, which means
// the caller violated the Interleaver contract.
func resolve(want Side, leftDone, rightDone bool) Side {
	if leftDone && rightDone {
		panic("stream: Pick called with both sides exhausted")
	}
	if want == Left && leftDone {
		return Right
	}
	if want == Right && rightDone {
		return Left
	}
	return want
}
