// Package relation provides the tuple and relation model used throughout
// the adaptive linkage engine.
//
// The engine joins two inputs (conventionally called the parent table R
// and the child table S) on a single string attribute. Tuples therefore
// carry a join key plus an arbitrary payload of named attributes. A
// Relation is an ordered, in-memory collection of tuples with a Schema;
// it supports CSV round-trips so that the command-line tools can operate
// on files, and it can be viewed as a stream by the stream package.
package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Tuple is a single record. The engine joins on Key; Attrs holds the
// remaining attribute values positionally, interpreted via the owning
// relation's Schema. ID is unique within its relation and is assigned at
// append time; it is stable across streaming and is used to identify
// tuples in join results.
type Tuple struct {
	ID    int
	Key   string
	Attrs []string
}

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	attrs := make([]string, len(t.Attrs))
	copy(attrs, t.Attrs)
	return Tuple{ID: t.ID, Key: t.Key, Attrs: attrs}
}

// String renders the tuple compactly for diagnostics.
func (t Tuple) String() string {
	if len(t.Attrs) == 0 {
		return fmt.Sprintf("#%d[%s]", t.ID, t.Key)
	}
	return fmt.Sprintf("#%d[%s|%s]", t.ID, t.Key, strings.Join(t.Attrs, ","))
}

// Schema names the columns of a relation. The join key column is named
// explicitly; attribute columns are positional.
type Schema struct {
	// KeyName is the name of the join-key column.
	KeyName string
	// AttrNames are the names of the payload columns, in Tuple.Attrs order.
	AttrNames []string
}

// NewSchema builds a schema from a key column name and payload names.
func NewSchema(keyName string, attrNames ...string) Schema {
	return Schema{KeyName: keyName, AttrNames: append([]string(nil), attrNames...)}
}

// Columns returns all column names, key first.
func (s Schema) Columns() []string {
	cols := make([]string, 0, 1+len(s.AttrNames))
	cols = append(cols, s.KeyName)
	cols = append(cols, s.AttrNames...)
	return cols
}

// AttrIndex returns the position of the named payload attribute, or -1.
func (s Schema) AttrIndex(name string) int {
	for i, n := range s.AttrNames {
		if n == name {
			return i
		}
	}
	return -1
}

// Equal reports whether two schemas have identical column names.
func (s Schema) Equal(o Schema) bool {
	if s.KeyName != o.KeyName || len(s.AttrNames) != len(o.AttrNames) {
		return false
	}
	for i := range s.AttrNames {
		if s.AttrNames[i] != o.AttrNames[i] {
			return false
		}
	}
	return true
}

// Relation is an ordered in-memory table.
type Relation struct {
	Name   string
	Schema Schema
	tuples []Tuple
}

// New creates an empty relation with the given name and schema.
func New(name string, schema Schema) *Relation {
	return &Relation{Name: name, Schema: schema}
}

// Append adds a tuple built from a key and payload values, assigning the
// next sequential ID. It returns the assigned ID.
func (r *Relation) Append(key string, attrs ...string) int {
	id := len(r.tuples)
	r.tuples = append(r.tuples, Tuple{ID: id, Key: key, Attrs: append([]string(nil), attrs...)})
	return id
}

// AppendTuple adds a pre-built tuple, overwriting its ID with the next
// sequential ID, and returns the assigned ID.
func (r *Relation) AppendTuple(t Tuple) int {
	id := len(r.tuples)
	t.ID = id
	r.tuples = append(r.tuples, t)
	return id
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// At returns the tuple at position i (which equals its ID).
func (r *Relation) At(i int) Tuple { return r.tuples[i] }

// Tuples returns the underlying tuple slice. Callers must not mutate it.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Keys returns the join keys of all tuples, in order.
func (r *Relation) Keys() []string {
	keys := make([]string, len(r.tuples))
	for i, t := range r.tuples {
		keys[i] = t.Key
	}
	return keys
}

// KeySet returns the set of distinct join keys.
func (r *Relation) KeySet() map[string]struct{} {
	set := make(map[string]struct{}, len(r.tuples))
	for _, t := range r.tuples {
		set[t.Key] = struct{}{}
	}
	return set
}

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	c := New(r.Name, r.Schema)
	c.tuples = make([]Tuple, len(r.tuples))
	for i, t := range r.tuples {
		c.tuples[i] = t.Clone()
	}
	return c
}

// SortByKey sorts tuples lexicographically by join key, reassigning IDs
// to match the new order. Useful for deterministic golden tests.
func (r *Relation) SortByKey() {
	sort.SliceStable(r.tuples, func(i, j int) bool { return r.tuples[i].Key < r.tuples[j].Key })
	for i := range r.tuples {
		r.tuples[i].ID = i
	}
}

// WriteCSV emits the relation as CSV with a header row (key column first).
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Schema.Columns()); err != nil {
		return fmt.Errorf("write header: %w", err)
	}
	row := make([]string, 1+len(r.Schema.AttrNames))
	for _, t := range r.tuples {
		row = row[:0]
		row = append(row, t.Key)
		row = append(row, t.Attrs...)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("write tuple %d: %w", t.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the relation to the named file.
func (r *Relation) SaveCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadCSV parses a relation from CSV. The first row is the header; the
// column named keyName becomes the join key (it may appear at any
// position), and all remaining columns become payload attributes in
// header order.
func ReadCSV(name string, rd io.Reader, keyName string) (*Relation, error) {
	cr := csv.NewReader(rd)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("read header: %w", err)
	}
	keyCol := -1
	attrNames := make([]string, 0, len(header)-1)
	for i, h := range header {
		if h == keyName && keyCol < 0 {
			keyCol = i
		} else {
			attrNames = append(attrNames, h)
		}
	}
	if keyCol < 0 {
		return nil, fmt.Errorf("key column %q not found in header %v", keyName, header)
	}
	rel := New(name, NewSchema(keyName, attrNames...))
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("line %d: got %d fields, want %d", line, len(rec), len(header))
		}
		attrs := make([]string, 0, len(rec)-1)
		for i, v := range rec {
			if i == keyCol {
				continue
			}
			attrs = append(attrs, v)
		}
		rel.Append(rec[keyCol], attrs...)
	}
	return rel, nil
}

// LoadCSV reads a relation from the named file.
func LoadCSV(name, path, keyName string) (*Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(name, f, keyName)
}

// FromKeys builds a relation with no payload columns from a key list.
// Convenient for tests.
func FromKeys(name string, keys ...string) *Relation {
	rel := New(name, NewSchema("key"))
	for _, k := range keys {
		rel.Append(k)
	}
	return rel
}
