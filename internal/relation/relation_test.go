package relation

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestSchemaColumns(t *testing.T) {
	s := NewSchema("location", "date", "severity")
	got := s.Columns()
	want := []string{"location", "date", "severity"}
	if len(got) != len(want) {
		t.Fatalf("Columns() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Columns()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestSchemaAttrIndex(t *testing.T) {
	s := NewSchema("k", "a", "b", "c")
	cases := []struct {
		name string
		want int
	}{{"a", 0}, {"b", 1}, {"c", 2}, {"k", -1}, {"missing", -1}}
	for _, c := range cases {
		if got := s.AttrIndex(c.name); got != c.want {
			t.Errorf("AttrIndex(%q) = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestSchemaEqual(t *testing.T) {
	a := NewSchema("k", "x", "y")
	if !a.Equal(NewSchema("k", "x", "y")) {
		t.Error("identical schemas reported unequal")
	}
	if a.Equal(NewSchema("k2", "x", "y")) {
		t.Error("different key names reported equal")
	}
	if a.Equal(NewSchema("k", "x")) {
		t.Error("different attr counts reported equal")
	}
	if a.Equal(NewSchema("k", "x", "z")) {
		t.Error("different attr names reported equal")
	}
}

func TestAppendAssignsSequentialIDs(t *testing.T) {
	r := New("r", NewSchema("k", "v"))
	for i := 0; i < 10; i++ {
		id := r.Append("key", "val")
		if id != i {
			t.Fatalf("Append #%d returned id %d", i, id)
		}
	}
	if r.Len() != 10 {
		t.Fatalf("Len() = %d, want 10", r.Len())
	}
	for i := 0; i < 10; i++ {
		if r.At(i).ID != i {
			t.Errorf("At(%d).ID = %d", i, r.At(i).ID)
		}
	}
}

func TestAppendTupleOverwritesID(t *testing.T) {
	r := New("r", NewSchema("k"))
	id := r.AppendTuple(Tuple{ID: 999, Key: "a"})
	if id != 0 || r.At(0).ID != 0 {
		t.Errorf("AppendTuple kept stale ID: returned %d, stored %d", id, r.At(0).ID)
	}
}

func TestTupleClone(t *testing.T) {
	orig := Tuple{ID: 3, Key: "k", Attrs: []string{"a", "b"}}
	c := orig.Clone()
	c.Attrs[0] = "mutated"
	if orig.Attrs[0] != "a" {
		t.Error("Clone shares Attrs backing array")
	}
}

func TestTupleString(t *testing.T) {
	if got := (Tuple{ID: 1, Key: "x"}).String(); got != "#1[x]" {
		t.Errorf("String() = %q", got)
	}
	if got := (Tuple{ID: 2, Key: "x", Attrs: []string{"a", "b"}}).String(); got != "#2[x|a,b]" {
		t.Errorf("String() = %q", got)
	}
}

func TestRelationClone(t *testing.T) {
	r := New("r", NewSchema("k", "v"))
	r.Append("a", "1")
	c := r.Clone()
	c.Tuples()[0].Attrs[0] = "mutated"
	if r.At(0).Attrs[0] != "1" {
		t.Error("Clone shares tuple payloads")
	}
}

func TestKeysAndKeySet(t *testing.T) {
	r := FromKeys("r", "a", "b", "a")
	keys := r.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "b" || keys[2] != "a" {
		t.Errorf("Keys() = %v", keys)
	}
	set := r.KeySet()
	if len(set) != 2 {
		t.Errorf("KeySet() has %d entries, want 2", len(set))
	}
}

func TestSortByKeyReassignsIDs(t *testing.T) {
	r := FromKeys("r", "c", "a", "b")
	r.SortByKey()
	want := []string{"a", "b", "c"}
	for i, k := range want {
		if r.At(i).Key != k || r.At(i).ID != i {
			t.Errorf("after sort At(%d) = %v, want key %q id %d", i, r.At(i), k, i)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := New("accidents", NewSchema("location", "date", "severity"))
	r.Append("TAA BZ BOLZANO", "2008-01-02", "minor")
	r.Append("LIG GE GENOVA", "2008-03-04", "major")
	r.Append("has,comma", "with \"quotes\"", "x")

	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV("accidents", strings.NewReader(buf.String()), "location")
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if back.Len() != r.Len() {
		t.Fatalf("round trip lost tuples: %d vs %d", back.Len(), r.Len())
	}
	for i := 0; i < r.Len(); i++ {
		a, b := r.At(i), back.At(i)
		if a.Key != b.Key {
			t.Errorf("tuple %d key %q != %q", i, a.Key, b.Key)
		}
		for j := range a.Attrs {
			if a.Attrs[j] != b.Attrs[j] {
				t.Errorf("tuple %d attr %d %q != %q", i, j, a.Attrs[j], b.Attrs[j])
			}
		}
	}
	if !back.Schema.Equal(r.Schema) {
		t.Errorf("schema changed: %v vs %v", back.Schema, r.Schema)
	}
}

func TestReadCSVKeyNotFirstColumn(t *testing.T) {
	in := "date,location\n2008,ROME\n"
	r, err := ReadCSV("r", strings.NewReader(in), "location")
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if r.At(0).Key != "ROME" || r.At(0).Attrs[0] != "2008" {
		t.Errorf("got %v", r.At(0))
	}
}

func TestReadCSVMissingKeyColumn(t *testing.T) {
	_, err := ReadCSV("r", strings.NewReader("a,b\n1,2\n"), "location")
	if err == nil {
		t.Fatal("expected error for missing key column")
	}
}

func TestReadCSVRaggedRow(t *testing.T) {
	_, err := ReadCSV("r", strings.NewReader("a,b\n1\n"), "a")
	if err == nil {
		t.Fatal("expected error for ragged row")
	}
}

func TestSaveLoadCSVFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rel.csv")
	r := FromKeys("r", "x", "y")
	if err := r.SaveCSV(path); err != nil {
		t.Fatalf("SaveCSV: %v", err)
	}
	back, err := LoadCSV("r", path, "key")
	if err != nil {
		t.Fatalf("LoadCSV: %v", err)
	}
	if back.Len() != 2 || back.At(1).Key != "y" {
		t.Errorf("LoadCSV got %v", back.Tuples())
	}
}

// Property: CSV round-trips preserve arbitrary key strings.
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(keys []string) bool {
		r := New("r", NewSchema("k"))
		for _, k := range keys {
			// csv cannot represent lone \r cleanly across writers/readers,
			// and a record whose only field is empty serialises to a blank
			// line that csv.Reader skips. Join keys are non-empty
			// single-line values, so constrain inputs accordingly.
			k = strings.ReplaceAll(k, "\r", "")
			if k == "" {
				continue
			}
			r.Append(k)
		}
		var buf bytes.Buffer
		if err := r.WriteCSV(&buf); err != nil {
			return false
		}
		back, err := ReadCSV("r", bytes.NewReader(buf.Bytes()), "k")
		if err != nil || back.Len() != r.Len() {
			return false
		}
		for i := 0; i < r.Len(); i++ {
			if back.At(i).Key != r.At(i).Key {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
