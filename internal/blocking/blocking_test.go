package blocking

import (
	"reflect"
	"testing"

	"adaptivelink/internal/datagen"
	"adaptivelink/internal/join"
	"adaptivelink/internal/relation"
)

func testData(t *testing.T, n int) (*relation.Relation, *relation.Relation, []join.Pair) {
	t.Helper()
	spec := datagen.Defaults(datagen.Uniform, false)
	spec.ParentSize, spec.ChildSize = n, n
	spec.Seed = 77
	ds, err := datagen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := join.NestedLoopApprox(join.Defaults(), ds.Parent, ds.Child)
	if err != nil {
		t.Fatal(err)
	}
	return ds.Parent, ds.Child, oracle
}

func TestPrefixBlocker(t *testing.T) {
	kf := PrefixBlocker(3)
	if got := kf("ABCDEF"); len(got) != 1 || got[0] != "ABC" {
		t.Errorf("got %v", got)
	}
	if got := kf("AB"); len(got) != 1 || got[0] != "AB" {
		t.Errorf("short key got %v", got)
	}
	if got := kf(""); got != nil {
		t.Errorf("empty key got %v", got)
	}
}

func TestPrefixBlockerPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	PrefixBlocker(0)
}

func TestTokenBlockerDedups(t *testing.T) {
	kf := TokenBlocker()
	got := kf("A B A C")
	if !reflect.DeepEqual(got, []string{"A", "B", "C"}) {
		t.Errorf("got %v", got)
	}
}

func TestSoundexBlocker(t *testing.T) {
	kf := SoundexBlocker()
	a, b := kf("ROBERT SMITH"), kf("RUPERT SMYTH")
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("codes %v %v", a, b)
	}
	if a[0] != b[0] {
		t.Errorf("ROBERT/RUPERT codes differ: %v vs %v", a[0], b[0])
	}
	if got := kf("123 !!"); got != nil {
		t.Errorf("non-letter tokens got %v", got)
	}
}

func TestBlocksPartition(t *testing.T) {
	rel := relation.FromKeys("r", "AAA X", "AAB Y", "ZZZ X")
	blocks := Blocks(rel, PrefixBlocker(2))
	if !reflect.DeepEqual(blocks["AA"], []int{0, 1}) {
		t.Errorf("AA block %v", blocks["AA"])
	}
	if !reflect.DeepEqual(blocks["ZZ"], []int{2}) {
		t.Errorf("ZZ block %v", blocks["ZZ"])
	}
}

func TestLinkValidation(t *testing.T) {
	l := relation.FromKeys("l", "a")
	bad := join.Defaults()
	bad.Theta = 0
	if _, err := Link(bad, l, l, TokenBlocker()); err == nil {
		t.Error("bad config accepted")
	}
	if _, err := Link(join.Defaults(), l, l, nil); err == nil {
		t.Error("nil key function accepted")
	}
}

func TestTokenBlockingHighRecallOnVariants(t *testing.T) {
	// One-character variants corrupt at most one token of a multi-word
	// key, so token blocking must find essentially every oracle pair.
	left, right, oracle := testData(t, 300)
	res, err := Link(join.Defaults(), left, right, TokenBlocker())
	if err != nil {
		t.Fatal(err)
	}
	if rec := res.Recall(oracle); rec < 0.99 {
		t.Errorf("token-blocking recall %v, want >= 0.99", rec)
	}
	// And it must beat the nested loop on comparisons.
	if res.Comparisons >= left.Len()*right.Len() {
		t.Errorf("blocking did %d comparisons, nested loop needs %d",
			res.Comparisons, left.Len()*right.Len())
	}
	// Verified pairs are a subset of the oracle (same measure, same θ).
	oracleSet := map[[2]int]bool{}
	for _, p := range oracle {
		oracleSet[[2]int{p.LeftRef, p.RightRef}] = true
	}
	for _, p := range res.Pairs {
		if !oracleSet[[2]int{p.LeftRef, p.RightRef}] {
			t.Errorf("blocking invented pair %+v", p)
		}
	}
}

func TestPrefixBlockingLosesPrefixVariants(t *testing.T) {
	// A variant inside the blocking prefix escapes its block: prefix
	// blocking's recall on our corpora must be below token blocking's.
	left, right, oracle := testData(t, 300)
	prefix, err := Link(join.Defaults(), left, right, PrefixBlocker(6))
	if err != nil {
		t.Fatal(err)
	}
	token, err := Link(join.Defaults(), left, right, TokenBlocker())
	if err != nil {
		t.Fatal(err)
	}
	if prefix.Recall(oracle) > token.Recall(oracle) {
		t.Errorf("prefix recall %v above token recall %v",
			prefix.Recall(oracle), token.Recall(oracle))
	}
	// But prefix blocking generates far fewer candidates.
	if prefix.CandidatePairs >= token.CandidatePairs {
		t.Errorf("prefix candidates %d not below token candidates %d",
			prefix.CandidatePairs, token.CandidatePairs)
	}
}

func TestSortedNeighborhood(t *testing.T) {
	left, right, oracle := testData(t, 300)
	res, err := SortedNeighborhood(join.Defaults(), left, right, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Sorted order puts exact duplicates adjacent, so SNM must recover
	// every key-equal pair.
	exact := join.NestedLoopExact(left, right)
	if rec := res.Recall(exact); rec < 1 {
		t.Errorf("SNM missed exact duplicates: recall %v", rec)
	}
	if res.Recall(oracle) <= 0.5 {
		t.Errorf("SNM overall recall %v suspiciously low", res.Recall(oracle))
	}
	if res.Comparisons >= left.Len()*right.Len() {
		t.Error("SNM did not reduce comparisons")
	}
}

func TestSortedNeighborhoodWindowWidens(t *testing.T) {
	left, right, oracle := testData(t, 200)
	narrow, err := SortedNeighborhood(join.Defaults(), left, right, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := SortedNeighborhood(join.Defaults(), left, right, 40, nil)
	if err != nil {
		t.Fatal(err)
	}
	if wide.Recall(oracle) < narrow.Recall(oracle) {
		t.Errorf("wider window lowered recall: %v -> %v",
			narrow.Recall(oracle), wide.Recall(oracle))
	}
	if wide.Comparisons <= narrow.Comparisons {
		t.Error("wider window did not increase comparisons")
	}
}

func TestSortedNeighborhoodValidation(t *testing.T) {
	l := relation.FromKeys("l", "a")
	if _, err := SortedNeighborhood(join.Defaults(), l, l, 1, nil); err == nil {
		t.Error("window=1 accepted")
	}
	bad := join.Defaults()
	bad.Q = 0
	if _, err := SortedNeighborhood(bad, l, l, 5, nil); err == nil {
		t.Error("bad config accepted")
	}
}

func TestRecallEdgeCases(t *testing.T) {
	r := &Result{}
	if r.Recall(nil) != 1 {
		t.Error("empty oracle recall should be 1")
	}
	r.Pairs = []join.Pair{{LeftRef: 0, RightRef: 0}}
	if got := r.Recall([]join.Pair{{LeftRef: 0, RightRef: 0}, {LeftRef: 1, RightRef: 1}}); got != 0.5 {
		t.Errorf("recall %v, want 0.5", got)
	}
}
