// Package blocking implements the classic offline record-linkage
// machinery the paper's introduction contrasts the adaptive approach
// against: "this complexity can be reduced using blocking techniques,
// whereby records are first partitioned into coarse-grain clusters ...
// Again, this requires that the tables be pre-processed prior to
// linkage."
//
// The package provides standard blocking (per-key block assignment via
// pluggable key functions: prefix, Soundex, tokens) and the sorted
// neighbourhood method, both producing candidate pairs that are then
// verified with the same similarity measure as the online operators.
// It exists as a baseline: the EXPERIMENTS.md comparison and the
// ablation benchmarks quantify what the online adaptive join gives up
// (or not) against an offline pipeline that is allowed to see all the
// data in advance.
package blocking

import (
	"fmt"
	"slices"
	"sort"
	"strings"

	"adaptivelink/internal/join"
	"adaptivelink/internal/normalize"
	"adaptivelink/internal/qgram"
	"adaptivelink/internal/relation"
)

// KeyFunc maps a join-key value to one or more block keys. A pair of
// tuples is a candidate iff the two values share at least one block key.
type KeyFunc func(key string) []string

// PrefixBlocker blocks on the first n runes of the value. Cheap and
// classic, but a variant inside the prefix escapes its block.
func PrefixBlocker(n int) KeyFunc {
	if n < 1 {
		panic(fmt.Sprintf("blocking: prefix length %d < 1", n))
	}
	return func(key string) []string {
		runes := []rune(key)
		if len(runes) > n {
			runes = runes[:n]
		}
		if len(runes) == 0 {
			return nil
		}
		return []string{string(runes)}
	}
}

// SoundexBlocker blocks on the Soundex code of every token, grouping
// values that share a similar-sounding word.
func SoundexBlocker() KeyFunc {
	return func(key string) []string {
		var out []string
		seen := map[string]struct{}{}
		for _, tok := range strings.Fields(key) {
			c := normalize.Soundex(tok)
			if c == "" {
				continue
			}
			if _, dup := seen[c]; dup {
				continue
			}
			seen[c] = struct{}{}
			out = append(out, c)
		}
		return out
	}
}

// TokenBlocker blocks on each whitespace-separated token. A
// single-character variant corrupts at most one token, so values
// sharing any other token still meet — high recall on multi-word keys.
func TokenBlocker() KeyFunc {
	return func(key string) []string {
		fields := strings.Fields(key)
		seen := map[string]struct{}{}
		out := fields[:0]
		for _, f := range fields {
			if _, dup := seen[f]; dup {
				continue
			}
			seen[f] = struct{}{}
			out = append(out, f)
		}
		return out
	}
}

// Blocks partitions a relation: block key -> refs of tuples whose value
// produced that key.
func Blocks(rel *relation.Relation, kf KeyFunc) map[string][]int {
	out := make(map[string][]int)
	for i := 0; i < rel.Len(); i++ {
		for _, bk := range kf(rel.At(i).Key) {
			out[bk] = append(out[bk], i)
		}
	}
	return out
}

// Result is an offline linkage outcome with its cost accounting.
type Result struct {
	// Pairs are the verified matches (similarity >= θ or key-equal),
	// sorted by (left, right) ref.
	Pairs []join.Pair
	// CandidatePairs counts distinct pairs sharing a block before
	// verification; Comparisons counts similarity evaluations performed
	// (equal to CandidatePairs — kept separate for SNM, which can
	// generate a candidate more than once but compares once).
	CandidatePairs int
	Comparisons    int
}

// Link performs standard blocking linkage of two relations: build
// blocks on both sides, take the cross product within each block,
// deduplicate, verify with the configured measure. The full nested-loop
// join would perform |L|·|R| comparisons; Comparisons records how many
// blocking actually did.
func Link(cfg join.Config, left, right *relation.Relation, kf KeyFunc) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if kf == nil {
		return nil, fmt.Errorf("blocking: nil key function")
	}
	lb := Blocks(left, kf)
	rb := Blocks(right, kf)

	seen := make(map[[2]int]struct{})
	for bk, lrefs := range lb {
		rrefs, ok := rb[bk]
		if !ok {
			continue
		}
		for _, l := range lrefs {
			for _, r := range rrefs {
				seen[[2]int{l, r}] = struct{}{}
			}
		}
	}
	return verifyPairs(cfg, left, right, seen)
}

// SortedNeighborhood performs the sorted neighbourhood method: both
// relations' values are merged, sorted by a sort key (the normalised
// value by default), and every cross-relation pair within a sliding
// window of the given size becomes a candidate.
func SortedNeighborhood(cfg join.Config, left, right *relation.Relation, window int, sortKey func(string) string) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if window < 2 {
		return nil, fmt.Errorf("blocking: window %d < 2", window)
	}
	if sortKey == nil {
		sortKey = normalize.Standard().Apply
	}
	type entry struct {
		sortVal string
		ref     int
		isLeft  bool
	}
	entries := make([]entry, 0, left.Len()+right.Len())
	for i := 0; i < left.Len(); i++ {
		entries = append(entries, entry{sortKey(left.At(i).Key), i, true})
	}
	for i := 0; i < right.Len(); i++ {
		entries = append(entries, entry{sortKey(right.At(i).Key), i, false})
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].sortVal < entries[j].sortVal })

	seen := make(map[[2]int]struct{})
	for i := range entries {
		hi := i + window
		if hi > len(entries) {
			hi = len(entries)
		}
		for j := i + 1; j < hi; j++ {
			a, b := entries[i], entries[j]
			if a.isLeft == b.isLeft {
				continue
			}
			if !a.isLeft {
				a, b = b, a
			}
			seen[[2]int{a.ref, b.ref}] = struct{}{}
		}
	}
	return verifyPairs(cfg, left, right, seen)
}

// verifyPairs scores candidate pairs and keeps those meeting θ, on
// dictionary-encoded signatures: each distinct key is decomposed and
// interned once, and every pair is verified by a sorted-merge
// intersection over gram ids instead of re-extracting and re-hashing
// both gram sets.
func verifyPairs(cfg join.Config, left, right *relation.Relation, cands map[[2]int]struct{}) (*Result, error) {
	ex := qgram.New(cfg.Q)
	dict := qgram.NewDict()
	var dsc qgram.Scratch
	sigCache := make(map[string][]uint32)
	sig := func(s string) []uint32 {
		if g, ok := sigCache[s]; ok {
			return g
		}
		dsc.Reset()
		ids := dict.Intern(nil, ex.Decompose(&dsc, s))
		slices.Sort(ids)
		sigCache[s] = ids
		return ids
	}
	res := &Result{CandidatePairs: len(cands)}
	for pair := range cands {
		lk, rk := left.At(pair[0]).Key, right.At(pair[1]).Key
		res.Comparisons++
		if lk == rk {
			res.Pairs = append(res.Pairs, join.Pair{LeftRef: pair[0], RightRef: pair[1], Similarity: 1, Exact: true})
			continue
		}
		sim := cfg.Measure.SimilarityIDs(sig(lk), sig(rk))
		if sim >= cfg.Theta {
			res.Pairs = append(res.Pairs, join.Pair{LeftRef: pair[0], RightRef: pair[1], Similarity: sim})
		}
	}
	sort.Slice(res.Pairs, func(i, j int) bool {
		if res.Pairs[i].LeftRef != res.Pairs[j].LeftRef {
			return res.Pairs[i].LeftRef < res.Pairs[j].LeftRef
		}
		return res.Pairs[i].RightRef < res.Pairs[j].RightRef
	})
	return res, nil
}

// Recall returns the fraction of oracle pairs the result found (1 when
// the oracle is empty).
func (r *Result) Recall(oracle []join.Pair) float64 {
	if len(oracle) == 0 {
		return 1
	}
	got := make(map[[2]int]struct{}, len(r.Pairs))
	for _, p := range r.Pairs {
		got[[2]int{p.LeftRef, p.RightRef}] = struct{}{}
	}
	hit := 0
	for _, p := range oracle {
		if _, ok := got[[2]int{p.LeftRef, p.RightRef}]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(oracle))
}
