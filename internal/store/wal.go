package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"time"

	"adaptivelink/internal/fault"
	"adaptivelink/internal/join"
	"adaptivelink/internal/relation"
	"adaptivelink/internal/simfn"
)

// WALVersion is the current write-ahead-log format version. Version 2
// appended the normalization-profile string to the header; version-1
// logs still load, with the profile read as "" (they predate profiles,
// when every key was logged verbatim).
const WALVersion = 2

var walMagic = [8]byte{'A', 'L', 'W', 'A', 'L', 0x01, 0x01, '\n'}

// walFixedHeaderSize is the version-independent prefix: magic, version,
// q, measure, shards, theta. A v2 header continues with
// [profile len u32][profile bytes].
const walFixedHeaderSize = 8 + 4 + 4 + 4 + 4 + 8

// maxProfileLen bounds the profile string in WAL and snapshot headers.
// Registry names are single words; a longer length field is corruption.
const maxProfileLen = 255

// maxWALPayload caps a single frame. A length prefix beyond it is
// corruption by construction (no acknowledged append writes frames this
// large), so hostile prefixes cannot demand absurd allocations.
const maxWALPayload = 1 << 30

const walKindUpsert = 1

// SyncPolicy says when the WAL reaches stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged Upsert
	// survives an immediate crash. This is the default.
	SyncAlways SyncPolicy = iota
	// SyncNone leaves flushing to the OS: faster ingest, and a crash may
	// lose the most recent appends (but never corrupts what it kept —
	// replay stops cleanly at the torn tail).
	SyncNone
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// Meta is the compatibility tuple a durable artifact is bound to. A
// snapshot or WAL written under one meta refuses to load into an index
// configured differently: Q and Measure change every signature, Theta
// changes every probe verdict, and the shard count changes routing, so
// a silent mismatch would mean silently wrong answers.
type Meta struct {
	Q       int
	Theta   float64
	Measure simfn.TokenMeasure
	Shards  int
	// Profile is the normalization profile the index's keys were
	// normalised with before indexing (see normalize.ProfileNamed).
	// Keys on disk are already normalised, so reopening under another
	// profile would probe normalised postings with differently-folded
	// keys — a silent-mismatch class all its own, hence part of the
	// compatibility tuple. "" for verbatim keys (and for every v1
	// artifact, which predates profiles).
	Profile string
}

// MetaOf extracts the compatibility tuple from a snapshot view.
func MetaOf(v *join.SnapshotView) Meta {
	return Meta{Q: v.Cfg.Q, Theta: v.Cfg.Theta, Measure: v.Cfg.Measure, Shards: v.NShard, Profile: v.Cfg.Profile}
}

// Check compares two metas field by field, naming every mismatch.
func (m Meta) Check(other Meta) error {
	var bad []string
	if m.Q != other.Q {
		bad = append(bad, fmt.Sprintf("q %d vs %d", m.Q, other.Q))
	}
	if math.Float64bits(m.Theta) != math.Float64bits(other.Theta) {
		bad = append(bad, fmt.Sprintf("theta %v vs %v", m.Theta, other.Theta))
	}
	if m.Measure != other.Measure {
		bad = append(bad, fmt.Sprintf("measure %v vs %v", m.Measure, other.Measure))
	}
	if m.Shards != other.Shards {
		bad = append(bad, fmt.Sprintf("shards %d vs %d", m.Shards, other.Shards))
	}
	if m.Profile != other.Profile {
		bad = append(bad, fmt.Sprintf("normalization profile %q vs %q", m.Profile, other.Profile))
	}
	if bad != nil {
		return fmt.Errorf("store: configuration mismatch: %v (stored state only reloads under the configuration that built it)", bad)
	}
	return nil
}

// WAL is an append-only upsert log. Every acknowledged append is one
// CRC-framed record ([len u32][crc u32][payload]); under SyncAlways the
// frame is on stable storage before Append returns. On open, intact
// frames replay in order, a torn tail (a crash mid-write) is dropped
// and truncated away — it was never acknowledged — and any complete
// frame whose CRC or structure fails is a hard error: bit rot is not
// silently skipped.
type WAL struct {
	f       fault.File
	path    string
	sync    SyncPolicy
	records int64
	enc     []byte
	// hdrSize is this file's header length (version- and
	// profile-dependent); Reset truncates back to it.
	hdrSize int64
	// poisoned is set when an append left the log's on-disk state
	// unknowable (a failed write may have landed a partial frame, a
	// failed fsync may have lost an acknowledged-looking one — the
	// fsyncgate lesson: after a failed fsync the kernel may have dropped
	// the dirty pages, so retrying as if nothing happened silently loses
	// data). Every subsequent Append refuses with a descriptive error;
	// only a successful Reset (which discards the unknowable region
	// wholesale) or a reopen clears it.
	poisoned error

	// Latency telemetry; see WALStats. Only Append updates them, and
	// Append is caller-serialised, so plain fields suffice. appends
	// counts Append calls since open — unlike records it is neither
	// seeded by replay nor reset by checkpoints.
	appends     int64
	appendNanos int64
	fsyncNanos  int64
}

// WALStats is the log's cumulative latency telemetry.
type WALStats struct {
	// Appends is the number of acknowledged Append calls since open.
	Appends int64
	// AppendNanos is the total wall time spent inside Append (encode +
	// write + fsync); FsyncNanos the fsync share of it (0 under
	// SyncNone). Divide by Appends for the mean acknowledged-append
	// latency — the durability tax an upsert pays.
	AppendNanos int64
	FsyncNanos  int64
}

// Stats returns the log's latency counters. Call from the goroutine
// that appends (or a quiescent point): the WAL itself is not
// concurrency-safe, and neither are its counters.
func (w *WAL) Stats() WALStats {
	return WALStats{Appends: w.appends, AppendNanos: w.appendNanos, FsyncNanos: w.fsyncNanos}
}

// Replay is what OpenWAL recovered from an existing log.
type Replay struct {
	// Batches are the logged upsert batches, in append order. Applying
	// them to the index the accompanying snapshot loaded reproduces the
	// pre-crash state exactly.
	Batches [][]relation.Tuple
	// Records is len(Batches), the recovered frame count.
	Records int64
	// TornTail reports that a trailing partial frame was discarded and
	// truncated (an unacknowledged write interrupted by a crash).
	TornTail bool
}

// OpenWAL opens or creates the log at path. A fresh file gets a header
// binding it to meta; an existing file must carry the same meta and
// replays its intact frames into the returned Replay. The WAL is then
// positioned for appending.
func OpenWAL(path string, meta Meta, sync SyncPolicy) (*WAL, *Replay, error) {
	return OpenWALFS(fault.OS, path, meta, sync)
}

// OpenWALFS is OpenWAL through an injectable filesystem — the fault
// shim's entry point for crash and fsync-failure schedules.
func OpenWALFS(fsys fault.FS, path string, meta Meta, sync SyncPolicy) (*WAL, *Replay, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	w := &WAL{f: f, path: path, sync: sync}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if len(data) == 0 {
		if err := w.writeHeader(meta); err != nil {
			f.Close()
			return nil, nil, err
		}
		return w, &Replay{}, nil
	}
	// A crash during the very first header write can leave a strict
	// prefix of the header we were about to produce. Such a file cannot
	// contain an acknowledged record (records only ever follow a complete
	// header), so it is recreated rather than reported corrupt — the
	// torn-header analogue of dropping a torn frame tail.
	if hdr, herr := headerBytes(meta); herr == nil && len(data) < len(hdr) && string(data) == string(hdr[:len(data)]) {
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, nil, err
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := w.writeHeader(meta); err != nil {
			f.Close()
			return nil, nil, err
		}
		return w, &Replay{TornTail: true}, nil
	}
	dec, err := decodeWALBytes(data)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := meta.Check(dec.meta); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	if dec.good < len(data) {
		// Drop the torn tail so the next append starts on a frame
		// boundary.
		if err := f.Truncate(int64(dec.good)); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(int64(dec.good), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	w.records = int64(len(dec.batches))
	w.hdrSize = int64(dec.hdrSize)
	return w, &Replay{Batches: dec.batches, Records: int64(len(dec.batches)), TornTail: dec.torn}, nil
}

// headerBytes renders the v2 header a fresh WAL bound to meta starts
// with.
func headerBytes(meta Meta) ([]byte, error) {
	if len(meta.Profile) > maxProfileLen {
		return nil, fmt.Errorf("store: normalization profile name %d bytes long, cap is %d", len(meta.Profile), maxProfileLen)
	}
	buf := make([]byte, walFixedHeaderSize+4, walFixedHeaderSize+4+len(meta.Profile))
	copy(buf[:8], walMagic[:])
	binary.LittleEndian.PutUint32(buf[8:], WALVersion)
	binary.LittleEndian.PutUint32(buf[12:], uint32(meta.Q))
	binary.LittleEndian.PutUint32(buf[16:], uint32(meta.Measure))
	binary.LittleEndian.PutUint32(buf[20:], uint32(meta.Shards))
	binary.LittleEndian.PutUint64(buf[24:], math.Float64bits(meta.Theta))
	binary.LittleEndian.PutUint32(buf[walFixedHeaderSize:], uint32(len(meta.Profile)))
	return append(buf, meta.Profile...), nil
}

func (w *WAL) writeHeader(meta Meta) error {
	buf, err := headerBytes(meta)
	if err != nil {
		return err
	}
	if _, err := w.f.Write(buf); err != nil {
		return err
	}
	w.hdrSize = int64(len(buf))
	return w.f.Sync()
}

// Append logs one upsert batch. Under SyncAlways the record is fsynced
// before Append returns; the caller may then acknowledge the upsert,
// knowing replay will reproduce it after any crash.
func (w *WAL) Append(tuples []relation.Tuple) error {
	if w.poisoned != nil {
		return fmt.Errorf("store: WAL poisoned by an earlier I/O failure (%v): the log's on-disk tail is unknowable, appends are refused until a successful checkpoint resets it or the index is reopened", w.poisoned)
	}
	t0 := time.Now()
	p := w.enc[:0]
	p = append(p, walKindUpsert)
	p = binary.LittleEndian.AppendUint32(p, uint32(len(tuples)))
	for _, t := range tuples {
		p = binary.LittleEndian.AppendUint64(p, uint64(int64(t.ID)))
		p = binary.LittleEndian.AppendUint32(p, uint32(len(t.Key)))
		p = append(p, t.Key...)
		p = binary.LittleEndian.AppendUint32(p, uint32(len(t.Attrs)))
		for _, a := range t.Attrs {
			p = binary.LittleEndian.AppendUint32(p, uint32(len(a)))
			p = append(p, a...)
		}
	}
	w.enc = p
	if len(p) > maxWALPayload {
		return fmt.Errorf("store: upsert batch encodes to %d bytes, over the WAL frame cap", len(p))
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(p)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(p, castagnoli))
	// One writev-shaped append: header then payload. A crash between the
	// two writes leaves a torn tail that replay drops. A *failed* write
	// is worse than a crash: the process lives on with partial frame
	// bytes possibly on disk, where a retried append would extend them
	// into a frame whose length prefix lies — so any failure here
	// poisons the log (see WAL.poisoned).
	if _, err := w.f.Write(hdr[:]); err != nil {
		w.poisoned = err
		return fmt.Errorf("store: WAL append failed mid-frame, log poisoned: %w", err)
	}
	if _, err := w.f.Write(p); err != nil {
		w.poisoned = err
		return fmt.Errorf("store: WAL append failed mid-frame, log poisoned: %w", err)
	}
	if w.sync == SyncAlways {
		ts := time.Now()
		if err := w.f.Sync(); err != nil {
			w.poisoned = err
			return fmt.Errorf("store: WAL fsync failed, log poisoned: %w", err)
		}
		w.fsyncNanos += time.Since(ts).Nanoseconds()
	}
	w.records++
	w.appends++
	w.appendNanos += time.Since(t0).Nanoseconds()
	return nil
}

// Records is the number of intact frames currently in the log.
func (w *WAL) Records() int64 { return w.records }

// Reset truncates the log back to its header — called after a snapshot
// has captured everything the log held, making those frames redundant.
// A successful Reset also clears poisoning: the unknowable tail a
// poisoned log carried is discarded wholesale, so the file is clean
// again (this is the recovery path — a checkpoint after a poisoned
// append writes the acknowledged state to the snapshot and Reset makes
// the log trustworthy again).
func (w *WAL) Reset() error {
	if err := w.f.Truncate(w.hdrSize); err != nil {
		w.poisoned = err
		return err
	}
	if _, err := w.f.Seek(w.hdrSize, io.SeekStart); err != nil {
		w.poisoned = err
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.poisoned = err
		return err
	}
	w.records = 0
	w.poisoned = nil
	return nil
}

// Poisoned returns the I/O failure that poisoned the log, nil when the
// log is healthy.
func (w *WAL) Poisoned() error { return w.poisoned }

// Close flushes and closes the log file.
func (w *WAL) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

type walDecoded struct {
	meta    Meta
	batches [][]relation.Tuple
	good    int
	torn    bool
	hdrSize int
}

// decodeWALBytes parses a WAL image: header, then frames until the
// bytes run out. An incomplete trailing frame is reported as torn (good
// marks the last intact boundary); a complete frame that fails its CRC
// or its structural bounds is an error. Shared by OpenWAL and
// FuzzWALReplay, so it must never panic on hostile input.
func decodeWALBytes(data []byte) (*walDecoded, error) {
	if len(data) < walFixedHeaderSize {
		return nil, fmt.Errorf("%w: WAL of %d bytes is shorter than its %d-byte header", ErrCorrupt, len(data), walFixedHeaderSize)
	}
	if string(data[:8]) != string(walMagic[:]) {
		return nil, fmt.Errorf("%w: WAL magic mismatch (not an adaptivelink WAL?)", ErrCorrupt)
	}
	version := binary.LittleEndian.Uint32(data[8:])
	if version != 1 && version != WALVersion {
		return nil, fmt.Errorf("store: WAL format version %d, this build reads versions 1..%d", version, WALVersion)
	}
	dec := &walDecoded{
		meta: Meta{
			Q:       int(binary.LittleEndian.Uint32(data[12:])),
			Measure: simfn.TokenMeasure(binary.LittleEndian.Uint32(data[16:])),
			Shards:  int(binary.LittleEndian.Uint32(data[20:])),
			Theta:   math.Float64frombits(binary.LittleEndian.Uint64(data[24:])),
		},
		hdrSize: walFixedHeaderSize,
	}
	if version >= 2 {
		// v2 header continues with the normalization profile string.
		if len(data) < walFixedHeaderSize+4 {
			return nil, fmt.Errorf("%w: v2 WAL header truncated before its profile length", ErrCorrupt)
		}
		plen := int(binary.LittleEndian.Uint32(data[walFixedHeaderSize:]))
		if plen > maxProfileLen {
			return nil, fmt.Errorf("%w: WAL header claims a %d-byte profile name, cap is %d", ErrCorrupt, plen, maxProfileLen)
		}
		if len(data) < walFixedHeaderSize+4+plen {
			return nil, fmt.Errorf("%w: v2 WAL header truncated inside its profile name", ErrCorrupt)
		}
		dec.meta.Profile = string(data[walFixedHeaderSize+4 : walFixedHeaderSize+4+plen])
		dec.hdrSize = walFixedHeaderSize + 4 + plen
	}
	dec.good = dec.hdrSize
	off := dec.hdrSize
	for off < len(data) {
		if len(data)-off < 8 {
			dec.torn = true
			break
		}
		plen := int(binary.LittleEndian.Uint32(data[off:]))
		if plen > maxWALPayload {
			return nil, fmt.Errorf("%w: WAL frame at offset %d claims %d bytes, over the frame cap", ErrCorrupt, off, plen)
		}
		if len(data)-off-8 < plen {
			dec.torn = true
			break
		}
		wantCRC := binary.LittleEndian.Uint32(data[off+4:])
		payload := data[off+8 : off+8+plen]
		if got := crc32.Checksum(payload, castagnoli); got != wantCRC {
			return nil, fmt.Errorf("%w: WAL frame at offset %d checksum %08x, frame claims %08x (bit-flipped?)", ErrCorrupt, off, got, wantCRC)
		}
		batch, err := decodeUpsertPayload(payload)
		if err != nil {
			return nil, fmt.Errorf("WAL frame at offset %d: %w", off, err)
		}
		dec.batches = append(dec.batches, batch)
		off += 8 + plen
		dec.good = off
	}
	return dec, nil
}

func decodeUpsertPayload(payload []byte) ([]relation.Tuple, error) {
	r := &reader{data: payload}
	if kind := r.take(1); r.err == nil && kind[0] != walKindUpsert {
		return nil, fmt.Errorf("%w: unknown WAL record kind %d", ErrCorrupt, kind[0])
	}
	n := r.count("tuple")
	if r.err != nil {
		return nil, r.err
	}
	batch := make([]relation.Tuple, 0, n)
	for i := 0; i < n; i++ {
		var t relation.Tuple
		t.ID = int(r.i64())
		t.Key = string(r.take(int(r.u32())))
		attrs := r.count("attr")
		if r.err != nil {
			return nil, r.err
		}
		if attrs > 0 {
			t.Attrs = make([]string, attrs)
			for j := range t.Attrs {
				t.Attrs[j] = string(r.take(int(r.u32())))
			}
		}
		if r.err != nil {
			return nil, r.err
		}
		batch = append(batch, t)
	}
	if r.off != len(payload) {
		return nil, fmt.Errorf("%w: %d trailing bytes in WAL record", ErrCorrupt, len(payload)-r.off)
	}
	return batch, nil
}
