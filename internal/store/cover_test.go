package store

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adaptivelink/internal/join"
	"adaptivelink/internal/relation"
)

// fixCRC recomputes the trailing CRC-32C of a mutated snapshot image.
// DecodeSnapshot verifies the checksum before parsing a single section,
// so structural-validation tests must re-seal their corruption or they
// only ever exercise the checksum gate.
func fixCRC(b []byte) []byte {
	binary.LittleEndian.PutUint32(b[len(b)-4:], crc32.Checksum(b[:len(b)-4], castagnoli))
	return b
}

// TestCreateDirLifecycle drives the bulk-load persistence primitive end
// to end: Create writes the snapshot directly and opens a fresh log,
// Append logs batches, Open replays them onto the identical index, and
// Checkpoint subsumes the log.
func TestCreateDirLifecycle(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ix")
	ix := buildIndex(t, 2, 40)
	d, err := Create(dir, ix, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if d.Path() != dir {
		t.Fatalf("Path = %q, want %q", d.Path(), dir)
	}
	if d.WALRecords() != 0 || d.LastSnapshot().IsZero() {
		t.Fatalf("fresh dir: %d records, last snapshot %v", d.WALRecords(), d.LastSnapshot())
	}
	batch := []relation.Tuple{{ID: 5000, Key: "appended after bulk", Attrs: []string{"new"}}}
	if err := d.Append(batch); err != nil {
		t.Fatal(err)
	}
	ix.Upsert(batch)
	if d.WALRecords() != 1 {
		t.Fatalf("WALRecords = %d, want 1", d.WALRecords())
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Create refuses a directory that already holds an index.
	if _, err := Create(dir, ix, SyncAlways); err == nil || !strings.Contains(err.Error(), "already holds") {
		t.Fatalf("Create over occupied dir = %v, want refusal", err)
	}

	m, err := PeekMeta(dir)
	if err != nil || m == nil {
		t.Fatalf("PeekMeta = %v, %v", m, err)
	}
	d2, got, rec, err := Open(dir, *m, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if rec.WALRecords != 1 || rec.TornTail {
		t.Fatalf("recovery = %+v, want 1 clean replayed batch", rec)
	}
	assertSameIndex(t, ix, got)

	// Checkpoint subsumes the log...
	if err := d2.Checkpoint(got); err != nil {
		t.Fatal(err)
	}
	if d2.WALRecords() != 0 || d2.LastSnapshot().IsZero() {
		t.Fatalf("post-checkpoint: %d records", d2.WALRecords())
	}
	// ...and refuses an index bound to a different configuration.
	cfg := join.Defaults()
	cfg.Q++
	other, err := join.BuildShardedRefIndex(cfg, 2, testTuples(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.Checkpoint(other); err == nil || !strings.Contains(err.Error(), "configuration mismatch") {
		t.Fatalf("Checkpoint with mismatched index = %v", err)
	}
}

func TestCreateDirErrors(t *testing.T) {
	ix := buildIndex(t, 1, 5)
	root := t.TempDir()

	// Parent path is a plain file: the directory cannot be created.
	file := filepath.Join(root, "plainfile")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(filepath.Join(file, "sub"), ix, SyncAlways); err == nil {
		t.Fatal("Create under a plain file succeeded")
	}

	// An unreadable artifact propagates PeekMeta's error rather than
	// being silently overwritten.
	bad := filepath.Join(root, "bad")
	if err := os.MkdirAll(bad, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(bad, SnapshotFile), []byte("shrt"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(bad, ix, SyncAlways); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Create over corrupt snapshot = %v, want ErrCorrupt", err)
	}
}

func TestOpenErrors(t *testing.T) {
	// Fresh directory with an unusable configuration: the index
	// constructor's validation error surfaces.
	if _, _, _, err := Open(filepath.Join(t.TempDir(), "fresh"), Meta{}, SyncAlways); err == nil {
		t.Fatal("Open with a zero Meta succeeded")
	}

	dir := filepath.Join(t.TempDir(), "ix")
	d, err := Create(dir, buildIndex(t, 2, 10), SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	m, err := PeekMeta(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Stored configuration differs from the requested one.
	bad := *m
	bad.Q++
	if _, _, _, err := Open(dir, bad, SyncAlways); err == nil || !strings.Contains(err.Error(), "configuration mismatch") {
		t.Fatalf("Open with mismatched meta = %v", err)
	}

	// A damaged snapshot fails Open outright; no partial index.
	if err := os.WriteFile(filepath.Join(dir, SnapshotFile), []byte("garbage, not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Open(dir, *m, SyncAlways); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over damaged snapshot = %v, want ErrCorrupt", err)
	}
}

// TestPeekMetaWAL covers the snapshot-less half of PeekMeta: a WAL-only
// directory (a crash before the first checkpoint) still reveals its
// configuration, an empty log file counts as absent, and garbage is an
// error.
func TestPeekMetaWAL(t *testing.T) {
	empty := t.TempDir()
	if m, err := PeekMeta(empty); m != nil || err != nil {
		t.Fatalf("PeekMeta(empty dir) = %v, %v", m, err)
	}

	ix := buildIndex(t, 2, 5)
	v, err := ix.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	meta := MetaOf(v)
	dir := t.TempDir()
	w, replay, err := OpenWAL(filepath.Join(dir, WALFile), meta, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if replay.Records != 0 {
		t.Fatalf("fresh WAL replay = %+v", replay)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	m, err := PeekMeta(dir)
	if err != nil || m == nil || *m != meta {
		t.Fatalf("PeekMeta(WAL-only dir) = %+v, %v, want %+v", m, err, meta)
	}

	zero := t.TempDir()
	if err := os.WriteFile(filepath.Join(zero, WALFile), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if m, err := PeekMeta(zero); m != nil || err != nil {
		t.Fatalf("PeekMeta(empty WAL file) = %v, %v, want absent", m, err)
	}

	junk := t.TempDir()
	if err := os.WriteFile(filepath.Join(junk, WALFile), []byte("definitely not an upsert log header"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := PeekMeta(junk); err == nil {
		t.Fatal("PeekMeta(garbage WAL) succeeded")
	}
}

func TestPeekMetaSnapshot(t *testing.T) {
	short := t.TempDir()
	if err := os.WriteFile(filepath.Join(short, SnapshotFile), []byte("ALSNAP"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := PeekMeta(short); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("PeekMeta(header-short snapshot) = %v, want ErrCorrupt", err)
	}

	wrong := t.TempDir()
	if err := os.WriteFile(filepath.Join(wrong, SnapshotFile), make([]byte, 64), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := PeekMeta(wrong); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("PeekMeta(wrong magic) = %v, want ErrCorrupt", err)
	}

	// A version from the future is named in the error, not guessed at.
	img := encodeSnapshot(t, buildIndex(t, 1, 3))
	binary.LittleEndian.PutUint32(img[8:], SnapshotVersion+1)
	future := t.TempDir()
	if err := os.WriteFile(filepath.Join(future, SnapshotFile), img, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := PeekMeta(future); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("PeekMeta(future version) = %v", err)
	}
}

func TestSyncPolicyString(t *testing.T) {
	for _, c := range []struct {
		p    SyncPolicy
		want string
	}{{SyncAlways, "always"}, {SyncNone, "none"}, {SyncPolicy(9), "SyncPolicy(9)"}} {
		if got := c.p.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int(c.p), got, c.want)
		}
	}
}

// TestDecodeSnapshotStructuralCorruption re-seals mutated images with a
// valid checksum, so each case exercises a structural validator rather
// than the CRC gate (which snapshot_test pins separately).
func TestDecodeSnapshotStructuralCorruption(t *testing.T) {
	base := encodeSnapshot(t, buildIndex(t, 2, 12))
	nTuples := int(binary.LittleEndian.Uint32(base[32:]))
	if nTuples < 2 {
		t.Fatalf("test image has %d tuples, need at least 2", nTuples)
	}
	keysOffsets := 40 + 8*nTuples + 4 // ids end + keys count word
	cases := []struct {
		name   string
		mutate func(b []byte) []byte
		want   string
	}{
		{"future version", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:], SnapshotVersion+7)
			return b
		}, "format version"},
		{"zero shards", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[20:], 0)
			return b
		}, "shard count"},
		{"tuple count beyond input", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[32:], 1<<31)
			return b
		}, "count"},
		{"tuple ids beyond input", func(b []byte) []byte {
			// Small enough to pass the count-vs-remaining screen, too
			// large for n fixed-width ids to fit.
			binary.LittleEndian.PutUint32(b[32:], uint32((len(b)-4-40)/8+1))
			return b
		}, "exceeds remaining"},
		{"keys offset table not ascending", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[keysOffsets+4:], 1<<31)
			return b
		}, "not ascending"},
		{"keys offset table starts nonzero", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[keysOffsets:], 1)
			return b
		}, "want 0"},
		{"truncated mid-sections", func(b []byte) []byte {
			return b[:60]
		}, "exceeds remaining"},
		{"trailing bytes after last shard", func(b []byte) []byte {
			return append(b[:len(b)-4], 0xEE, 0xEE, 0, 0, 0, 0)
		}, "trailing bytes"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			img := fixCRC(c.mutate(append([]byte(nil), base...)))
			_, err := DecodeSnapshot(img)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("DecodeSnapshot = %v, want error containing %q", err, c.want)
			}
		})
	}
}

func TestSnapshotFileErrors(t *testing.T) {
	if _, err := ReadSnapshotFile(filepath.Join(t.TempDir(), "absent.snap")); err == nil {
		t.Fatal("ReadSnapshotFile on a missing path succeeded")
	}
	v, err := buildIndex(t, 1, 3).ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshotFile(filepath.Join(t.TempDir(), "no", "such", "dir", "x.snap"), v); err == nil {
		t.Fatal("WriteSnapshotFile into a missing directory succeeded")
	}
}

// TestOpenWALMetaMismatch: a log written under one configuration
// refuses to open under another, naming the mismatch.
func TestOpenWALMetaMismatch(t *testing.T) {
	v, err := buildIndex(t, 2, 5).ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	meta := MetaOf(v)
	path := filepath.Join(t.TempDir(), WALFile)
	w, _, err := OpenWAL(path, meta, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]relation.Tuple{{ID: 1, Key: "logged row"}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	other := meta
	other.Theta += 0.1
	if _, _, err := OpenWAL(path, other, SyncAlways); err == nil || !strings.Contains(err.Error(), "configuration mismatch") {
		t.Fatalf("OpenWAL with mismatched meta = %v", err)
	}
}
