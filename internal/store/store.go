package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"adaptivelink/internal/fault"
	"adaptivelink/internal/join"
	"adaptivelink/internal/relation"
	"adaptivelink/internal/simfn"
)

// Directory layout: one snapshot plus one WAL per index. The snapshot
// is the last checkpoint; the WAL holds every acknowledged upsert since
// that checkpoint. Recovery is load + replay; a checkpoint rewrites the
// snapshot atomically and resets the WAL.
const (
	// SnapshotFile is the snapshot's name inside an index directory.
	SnapshotFile = "index.snap"
	// WALFile is the upsert log's name inside an index directory.
	WALFile = "upserts.wal"
)

// Dir is an open index directory: the durable half of a resident index.
// The caller owns sequencing — append to the WAL before applying and
// acknowledging an upsert, checkpoint at will — while Dir owns the
// files.
type Dir struct {
	path string
	meta Meta
	fs   fault.FS
	wal  *WAL

	lastSnapshot time.Time

	// Checkpoint telemetry; Checkpoint is caller-serialised like the
	// WAL, so plain fields suffice.
	checkpoints     int64
	checkpointNanos int64
}

// StorageStats is the directory's cumulative durability telemetry:
// the WAL's append/fsync latency plus checkpoint counts and durations.
type StorageStats struct {
	WAL WALStats
	// Checkpoints counts Checkpoint calls since open; CheckpointNanos
	// their total wall time (export + write + WAL reset).
	Checkpoints     int64
	CheckpointNanos int64
}

// Stats returns the directory's telemetry counters. Like the WAL, call
// from the writing goroutine or a quiescent point.
func (d *Dir) Stats() StorageStats {
	return StorageStats{WAL: d.wal.Stats(), Checkpoints: d.checkpoints, CheckpointNanos: d.checkpointNanos}
}

// Recovery reports what Open reconstructed, for logs and stats.
type Recovery struct {
	// SnapshotTuples is the size of the loaded checkpoint (0 if the
	// directory had none).
	SnapshotTuples int
	// WALRecords is the number of upsert batches replayed on top.
	WALRecords int64
	// TornTail reports that the WAL ended in a partial, unacknowledged
	// frame that was discarded.
	TornTail bool
}

// PeekMeta reads the stored compatibility tuple from an index directory
// without loading it: from the snapshot header if one exists, else from
// the WAL header, else nil (an empty or absent directory carries no
// configuration). Callers use it to resolve "open with whatever is
// stored" before committing to a full Open.
func PeekMeta(dir string) (*Meta, error) {
	if m, err := peekSnapshotMeta(filepath.Join(dir, SnapshotFile)); err != nil || m != nil {
		return m, err
	}
	return peekWALMeta(filepath.Join(dir, WALFile))
}

func peekSnapshotMeta(path string) (*Meta, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// Magic through the profile slot: the compatibility fields all sit
	// in the header (full structural validation happens on load).
	var buf [8 + 4 + 4 + 4 + 4 + 8 + 4 + 4]byte
	if _, err := io.ReadFull(f, buf[:]); err != nil {
		return nil, fmt.Errorf("%s: %w: snapshot shorter than its header", path, ErrCorrupt)
	}
	r := &reader{data: buf[:]}
	if string(r.take(8)) != string(snapMagic[:]) {
		return nil, fmt.Errorf("%s: %w: snapshot magic mismatch", path, ErrCorrupt)
	}
	version := r.u32()
	if version != 1 && version != SnapshotVersion {
		return nil, fmt.Errorf("%s: snapshot format version %d, this build reads versions 1..%d", path, version, SnapshotVersion)
	}
	m := &Meta{}
	m.Q = int(r.u32())
	m.Measure = simfn.TokenMeasure(r.u32())
	m.Shards = int(r.u32())
	m.Theta = r.f64()
	r.u32() // tuple count
	plen := r.u32()
	if r.err == nil && version >= 2 && plen > 0 {
		if plen > maxProfileLen {
			return nil, fmt.Errorf("%s: %w: profile name length %d over the %d cap", path, ErrCorrupt, plen, maxProfileLen)
		}
		pb := make([]byte, plen)
		if _, err := io.ReadFull(f, pb); err != nil {
			return nil, fmt.Errorf("%s: %w: snapshot shorter than its header", path, ErrCorrupt)
		}
		m.Profile = string(pb)
	}
	return m, r.err
}

func peekWALMeta(path string) (*Meta, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// The full v2 header: fixed fields, profile length, profile bytes.
	var buf [walFixedHeaderSize + 4 + maxProfileLen]byte
	n, _ := io.ReadFull(f, buf[:])
	if n == 0 {
		return nil, nil // empty file: treated as absent, Open rewrites it
	}
	dec, err := decodeWALBytes(buf[:n])
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := dec.meta
	return &m, nil
}

// Open opens (creating if needed) the index directory and reconstructs
// its resident index: load the snapshot if present, then replay the
// WAL's intact frames through the index's normal upsert path. The
// returned index reflects every acknowledged upsert; the returned Dir
// is positioned to log new ones. Stored artifacts bound to a different
// configuration are rejected with a descriptive error, as is any
// corrupt artifact — Open never yields a partial index.
func Open(dir string, meta Meta, sync SyncPolicy) (*Dir, *join.ShardedRefIndex, *Recovery, error) {
	return OpenFS(fault.OS, dir, meta, sync)
}

// OpenFS is Open through an injectable filesystem — the fault shim's
// entry point for crash-consistency schedules.
func OpenFS(fsys fault.FS, dir string, meta Meta, sync SyncPolicy) (*Dir, *join.ShardedRefIndex, *Recovery, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, nil, err
	}
	// A crash mid-checkpoint can strand the snapshot's temporary file
	// (written beside the target, renamed into place only when complete).
	// Orphans are garbage by construction — the rename never happened, so
	// the previous snapshot is still the live one — and are swept here so
	// a crash-looping process cannot fill the disk with them.
	if orphans, err := filepath.Glob(filepath.Join(dir, SnapshotFile+".tmp*")); err == nil {
		for _, o := range orphans {
			_ = fsys.Remove(o)
		}
	}
	rec := &Recovery{}
	var ix *join.ShardedRefIndex
	snapPath := filepath.Join(dir, SnapshotFile)
	var lastSnap time.Time
	if fi, err := os.Stat(snapPath); err == nil {
		v, err := ReadSnapshotFile(snapPath)
		if err != nil {
			return nil, nil, nil, err
		}
		if err := meta.Check(MetaOf(v)); err != nil {
			return nil, nil, nil, fmt.Errorf("%s: %w", snapPath, err)
		}
		ix, err = join.NewShardedRefIndexFromSnapshot(v)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("%s: %w", snapPath, err)
		}
		rec.SnapshotTuples = ix.Len()
		lastSnap = fi.ModTime()
	} else if !os.IsNotExist(err) {
		return nil, nil, nil, err
	} else {
		ix, err = join.NewShardedRefIndex(metaConfig(meta), meta.Shards)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	wal, replay, err := OpenWALFS(fsys, filepath.Join(dir, WALFile), meta, sync)
	if err != nil {
		return nil, nil, nil, err
	}
	for _, batch := range replay.Batches {
		ix.Upsert(batch)
	}
	rec.WALRecords = replay.Records
	rec.TornTail = replay.TornTail
	return &Dir{path: dir, meta: meta, fs: fsys, wal: wal, lastSnapshot: lastSnap}, ix, rec, nil
}

// Create makes dir durable for an index built in memory (the bulk-load
// path): it writes the index's snapshot directly — no WAL round trip
// for the initial rows — and opens a fresh WAL for what comes after. A
// directory that already holds an index is refused; Open it instead.
func Create(dir string, ix *join.ShardedRefIndex, sync SyncPolicy) (*Dir, error) {
	return CreateFS(fault.OS, dir, ix, sync)
}

// CreateFS is Create through an injectable filesystem.
func CreateFS(fsys fault.FS, dir string, ix *join.ShardedRefIndex, sync SyncPolicy) (*Dir, error) {
	if m, err := PeekMeta(dir); err != nil {
		return nil, err
	} else if m != nil {
		return nil, fmt.Errorf("store: %s already holds an index; open it or remove it first", dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	v, err := ix.ExportSnapshot()
	if err != nil {
		return nil, err
	}
	if err := WriteSnapshotFileFS(fsys, filepath.Join(dir, SnapshotFile), v); err != nil {
		return nil, err
	}
	wal, _, err := OpenWALFS(fsys, filepath.Join(dir, WALFile), MetaOf(v), sync)
	if err != nil {
		return nil, err
	}
	return &Dir{path: dir, meta: MetaOf(v), fs: fsys, wal: wal, lastSnapshot: time.Now()}, nil
}

// metaConfig expands a compatibility tuple to the join configuration of
// a fresh resident index.
func metaConfig(m Meta) join.Config {
	return join.Config{Q: m.Q, Measure: m.Measure, Theta: m.Theta, Initial: join.LexRex, Profile: m.Profile}
}

// Append logs one upsert batch. Call before applying the batch to the
// in-memory index: once Append returns under SyncAlways, the batch is
// durable and the upsert may be acknowledged.
func (d *Dir) Append(tuples []relation.Tuple) error {
	return d.wal.Append(tuples)
}

// Checkpoint captures the index into a new snapshot (written atomically
// beside the old one) and resets the WAL, whose frames the snapshot now
// subsumes. Crash-safe at every step: before the rename the old
// snapshot + full WAL still reconstruct the state; after it the new
// snapshot does, with the WAL reset merely redundant until it happens.
func (d *Dir) Checkpoint(ix *join.ShardedRefIndex) error {
	t0 := time.Now()
	v, err := ix.ExportSnapshot()
	if err != nil {
		return err
	}
	if err := d.meta.Check(MetaOf(v)); err != nil {
		return err
	}
	if err := WriteSnapshotFileFS(d.fs, filepath.Join(d.path, SnapshotFile), v); err != nil {
		return err
	}
	d.lastSnapshot = time.Now()
	if err := d.wal.Reset(); err != nil {
		return err
	}
	d.checkpoints++
	d.checkpointNanos += time.Since(t0).Nanoseconds()
	return nil
}

// WALRecords is the number of upsert batches logged since the last
// checkpoint.
func (d *Dir) WALRecords() int64 { return d.wal.Records() }

// Poisoned reports the I/O failure that poisoned the WAL (appends are
// refused until a successful Checkpoint or a reopen), nil when healthy.
func (d *Dir) Poisoned() error { return d.wal.Poisoned() }

// LastSnapshot is when the current snapshot was written (zero if the
// directory has no snapshot yet).
func (d *Dir) LastSnapshot() time.Time { return d.lastSnapshot }

// Path is the directory this Dir manages.
func (d *Dir) Path() string { return d.path }

// Close flushes and releases the WAL. The directory remains openable.
func (d *Dir) Close() error { return d.wal.Close() }
