package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"adaptivelink/internal/join"
)

// ContentDigest is a cheap fingerprint of an index's logical content:
// CRC-32C over the canonical snapshot encoding of the global tuple
// store, plus one CRC per shard section. It is computed straight from
// the PR 5 in-memory representation (the same export a checkpoint
// writes) — no gram is re-hashed, no disk is touched — so two replicas
// that applied the same upsert stream report the same digest, and
// anti-entropy can compare replicas by exchanging a few dozen bytes
// instead of snapshots.
//
// The digest deliberately excludes the snapshot header (version, config
// words): configuration compatibility is Meta.Check's job; the digest
// answers only "same content?".
type ContentDigest struct {
	// Combined folds the store CRC and every shard CRC into one
	// hex-encoded word — the value replicas compare.
	Combined string `json:"combined"`
	// Store is the tuple-store section's CRC, Shards the per-shard
	// section CRCs (hex), for narrowing a divergence to a shard.
	Store  string   `json:"store"`
	Shards []string `json:"shards"`
	// Tuples is the global store size the digest covers.
	Tuples int `json:"tuples"`
}

// DigestView fingerprints a snapshot view. The encoding work streams
// through the CRC without materializing the snapshot bytes.
func DigestView(v *join.SnapshotView) ContentDigest {
	e := newWriter(io.Discard)
	encodeTupleSection(e, v)
	storeCRC := e.crc.Sum32()

	shardCRCs := make([]uint32, len(v.Shards))
	shards := make([]string, len(v.Shards))
	for i := range v.Shards {
		se := newWriter(io.Discard)
		encodeShardSection(se, &v.Shards[i])
		shardCRCs[i] = se.crc.Sum32()
		shards[i] = fmt.Sprintf("%08x", shardCRCs[i])
	}

	comb := crc32.New(castagnoli)
	var word [4]byte
	binary.LittleEndian.PutUint32(word[:], storeCRC)
	comb.Write(word[:])
	for _, c := range shardCRCs {
		binary.LittleEndian.PutUint32(word[:], c)
		comb.Write(word[:])
	}
	return ContentDigest{
		Combined: fmt.Sprintf("%08x", comb.Sum32()),
		Store:    fmt.Sprintf("%08x", storeCRC),
		Shards:   shards,
		Tuples:   len(v.Tuples),
	}
}
