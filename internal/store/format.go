// Package store implements durability for the resident linkage
// engine: a versioned, checksummed binary snapshot format for
// ShardedRefIndex state, an upsert write-ahead log replayed on boot,
// and the directory layout that ties the two together (see Dir).
//
// # Snapshot format (version 2)
//
// A snapshot serializes a join.SnapshotView — the global tuple store
// plus, per shard, the shard's member refs and its dictionary-encoded
// q-gram index — in the representation the engine probes directly:
// dense gram ids, id-keyed postings, sorted signatures. Loading is one
// read of the file followed by slice reconstruction over fixed-width
// offset tables; no gram is re-hashed and no key is re-decomposed.
//
//	magic   "ALSNAP\x01\n"                     8 bytes
//	header  version u32 = 2
//	        q u32, measure u32, shards u32     the compatibility triple
//	        theta f64 (IEEE bits)
//	        tuples u32                         global store size n
//	        profile len u32 + bytes            normalization profile name
//	store   ids      n × i64
//	        keys     string blob
//	        attrs    ragged string blob        per-tuple attr lists
//	shards  (repeated `shards` times)
//	        globals  u32 count + count × u32   local ref → global ref
//	        grams    string blob               dictionary in id order
//	        postings ragged i32                gram id → ascending refs
//	        sizes    u32 count + count × u32   |q(key)| per ref
//	        sigs     ragged u32                sorted gram ids per ref
//	        sigfloor u32
//	footer  crc u32                            CRC-32C of all prior bytes
//
// A "string blob" is count u32, (count+1) × u32 ascending offsets, and
// the concatenated bytes; decoding materialises one Go string for the
// whole blob and slices substrings out of it, so a million keys cost
// one allocation plus headers. "Ragged" arrays are the same offsets
// trick over fixed-width elements. All integers are little-endian.
//
// Every length and offset is validated against the remaining input
// before anything is allocated or sliced, and the trailing CRC covers
// the whole file, so truncated or bit-flipped snapshots are rejected
// with descriptive errors — the loader never panics on hostile bytes
// (FuzzSnapshotDecode) and never yields a partial index.
//
// Version 1 differs only in the profile slot: it carried a reserved
// u32 (always 0) and no profile bytes. v1 snapshots still load, with
// the profile read as "" — they predate normalization profiles, so
// their keys were indexed verbatim and "" is exactly what built them.
package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"adaptivelink/internal/fault"
	"adaptivelink/internal/hashidx"
	"adaptivelink/internal/join"
	"adaptivelink/internal/relation"
	"adaptivelink/internal/simfn"
)

// SnapshotVersion is the current snapshot format version. Decoders
// accept versions 1..SnapshotVersion and reject anything else with a
// descriptive error; the format owns its compatibility story explicitly
// rather than by accident.
const SnapshotVersion = 2

var snapMagic = [8]byte{'A', 'L', 'S', 'N', 'A', 'P', 0x01, '\n'}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt tags snapshot and WAL decoding failures: the bytes do not
// form a well-formed artifact (truncation, bit flips, hostile input).
// Wrapped errors carry the specific finding.
var ErrCorrupt = fmt.Errorf("store: corrupt")

// writer streams the encoding while folding every byte into the CRC.
// Multi-word sections are staged in tmp and emitted as one Write + one
// CRC fold: the encoding cost is per section, not per word.
type writer struct {
	w   io.Writer
	crc hash.Hash32
	n   int64
	err error
	buf [8]byte
	tmp []byte
}

func newWriter(w io.Writer) *writer {
	return &writer{w: w, crc: crc32.New(castagnoli)}
}

func (e *writer) write(b []byte) {
	if e.err != nil {
		return
	}
	if _, err := e.w.Write(b); err != nil {
		e.err = err
		return
	}
	e.crc.Write(b)
	e.n += int64(len(b))
}

func (e *writer) u32(v uint32) {
	binary.LittleEndian.PutUint32(e.buf[:4], v)
	e.write(e.buf[:4])
}

func (e *writer) u64(v uint64) {
	binary.LittleEndian.PutUint64(e.buf[:8], v)
	e.write(e.buf[:8])
}

func (e *writer) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *writer) i64(v int64)   { e.u64(uint64(v)) }

// u32s writes a run of words as one block through tmp.
func (e *writer) u32s(vs []uint32) {
	need := 4 * len(vs)
	if cap(e.tmp) < need {
		e.tmp = make([]byte, need)
	}
	b := e.tmp[:need]
	for i, v := range vs {
		binary.LittleEndian.PutUint32(b[i*4:], v)
	}
	e.write(b)
}

// header returns the count-plus-offsets prefix shared by every ragged
// section: len(lengths), then len(lengths)+1 ascending offsets.
func raggedHeader(lengths func(yield func(int))) []uint32 {
	words := []uint32{0}
	off := uint32(0)
	lengths(func(n int) {
		words = append(words, off)
		off += uint32(n)
	})
	words[0] = uint32(len(words) - 1)
	return append(words, off)
}

// stringBlob writes count, offsets and concatenated bytes.
func (e *writer) stringBlob(ss []string) {
	e.u32s(raggedHeader(func(yield func(int)) {
		for _, s := range ss {
			yield(len(s))
		}
	}))
	var total int
	for _, s := range ss {
		total += len(s)
	}
	if cap(e.tmp) < total {
		e.tmp = make([]byte, total)
	}
	b := e.tmp[:0]
	for _, s := range ss {
		b = append(b, s...)
	}
	e.write(b)
}

func (e *writer) u32slice(vs []uint32) {
	e.u32(uint32(len(vs)))
	e.u32s(vs)
}

func (e *writer) raggedI32(lists [][]int32) {
	e.u32s(raggedHeader(func(yield func(int)) {
		for _, l := range lists {
			yield(len(l))
		}
	}))
	flat := make([]uint32, 0, 1024)
	for _, l := range lists {
		for _, v := range l {
			flat = append(flat, uint32(v))
		}
	}
	e.u32s(flat)
}

func (e *writer) raggedU32(lists [][]uint32) {
	e.u32s(raggedHeader(func(yield func(int)) {
		for _, l := range lists {
			yield(len(l))
		}
	}))
	flat := make([]uint32, 0, 1024)
	for _, l := range lists {
		flat = append(flat, l...)
	}
	e.u32s(flat)
}

// WriteSnapshot encodes the view onto w in snapshot format v2,
// including the trailing CRC.
func WriteSnapshot(w io.Writer, v *join.SnapshotView) error {
	n := len(v.Tuples)
	if n > math.MaxUint32 {
		return fmt.Errorf("store: snapshot of %d tuples exceeds the format's uint32 ref space", n)
	}
	if len(v.Cfg.Profile) > maxProfileLen {
		return fmt.Errorf("store: normalization profile name %d bytes long, cap is %d", len(v.Cfg.Profile), maxProfileLen)
	}
	e := newWriter(w)
	e.write(snapMagic[:])
	e.u32(SnapshotVersion)
	e.u32(uint32(v.Cfg.Q))
	e.u32(uint32(v.Cfg.Measure))
	e.u32(uint32(v.NShard))
	e.f64(v.Cfg.Theta)
	e.u32(uint32(n))
	e.u32(uint32(len(v.Cfg.Profile)))
	e.write([]byte(v.Cfg.Profile))

	encodeTupleSection(e, v)
	for i := range v.Shards {
		encodeShardSection(e, &v.Shards[i])
	}
	if e.err != nil {
		return fmt.Errorf("store: writing snapshot: %w", e.err)
	}
	sum := e.crc.Sum32()
	e.u32(sum)
	if e.err != nil {
		return fmt.Errorf("store: writing snapshot: %w", e.err)
	}
	return nil
}

// encodeTupleSection writes the global store section (tuple IDs, keys,
// ragged attr lists) — shared by WriteSnapshot and the content digest,
// so a digest fingerprints exactly the bytes a snapshot would hold.
func encodeTupleSection(e *writer, v *join.SnapshotView) {
	n := len(v.Tuples)
	keys := make([]string, n)
	var attrTotal int
	for i, t := range v.Tuples {
		e.i64(int64(t.ID))
		keys[i] = t.Key
		attrTotal += len(t.Attrs)
	}
	e.stringBlob(keys)
	// Per-tuple attr lists as one ragged string blob: (n+1) offsets into
	// a flat attr list, then the flat list as a string blob.
	off := uint32(0)
	for _, t := range v.Tuples {
		e.u32(off)
		off += uint32(len(t.Attrs))
	}
	e.u32(off)
	flatAttrs := make([]string, 0, attrTotal)
	for _, t := range v.Tuples {
		flatAttrs = append(flatAttrs, t.Attrs...)
	}
	e.stringBlob(flatAttrs)
}

// encodeShardSection writes one shard's section (globals + the
// dictionary-encoded q-gram index) — shared with the content digest.
func encodeShardSection(e *writer, sh *join.ShardExport) {
	e.u32slice(sh.Globals)
	e.stringBlob(sh.QGrams.Grams)
	e.raggedI32(sh.QGrams.Postings)
	e.u32slice(sh.QGrams.Sizes)
	e.raggedU32(sh.QGrams.Sigs)
	e.u32(uint32(sh.QGrams.SigFloor))
}

// reader is a bounds-checked cursor over an in-memory artifact with a
// sticky error: every accessor validates against the remaining bytes
// before allocating or slicing, so hostile lengths cannot panic or
// balloon memory beyond the input's own size.
type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.data)-r.off < n {
		r.fail("need %d bytes at offset %d, have %d", n, r.off, len(r.data)-r.off)
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *reader) i64() int64   { return int64(r.u64()) }

// offsets reads a (count+1)-entry ascending offset table bounded by
// limitPerElem × remaining input, the shared spine of blobs and ragged
// arrays.
func (r *reader) offsets(count int) []uint32 {
	if r.err != nil {
		return nil
	}
	raw := r.take((count + 1) * 4)
	if raw == nil {
		return nil
	}
	offs := make([]uint32, count+1)
	prev := uint32(0)
	for i := range offs {
		offs[i] = binary.LittleEndian.Uint32(raw[i*4:])
		if offs[i] < prev {
			r.fail("offset table not ascending at entry %d", i)
			return nil
		}
		prev = offs[i]
	}
	if offs[0] != 0 {
		r.fail("offset table starts at %d, want 0", offs[0])
		return nil
	}
	return offs
}

func (r *reader) count(what string) int {
	c := r.u32()
	if r.err != nil {
		return 0
	}
	// A count can never exceed the remaining bytes (every element costs
	// at least one encoded byte downstream of its offset table).
	if int64(c) > int64(len(r.data)-r.off) {
		r.fail("%s count %d exceeds remaining %d bytes", what, c, len(r.data)-r.off)
		return 0
	}
	return int(c)
}

func (r *reader) stringBlob(what string) []string {
	n := r.count(what)
	offs := r.offsets(n)
	if r.err != nil {
		return nil
	}
	blob := r.take(int(offs[n]))
	if r.err != nil {
		return nil
	}
	// One allocation for the whole blob; substrings share its backing.
	s := string(blob)
	out := make([]string, n)
	for i := range out {
		out[i] = s[offs[i]:offs[i+1]]
	}
	return out
}

func (r *reader) u32slice(what string) []uint32 {
	n := r.count(what)
	raw := r.take(n * 4)
	if r.err != nil {
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(raw[i*4:])
	}
	return out
}

func (r *reader) raggedI32(what string) [][]int32 {
	n := r.count(what)
	offs := r.offsets(n)
	if r.err != nil {
		return nil
	}
	flatLen := int(offs[n])
	raw := r.take(flatLen * 4)
	if r.err != nil {
		return nil
	}
	flat := make([]int32, flatLen)
	for i := range flat {
		flat[i] = int32(binary.LittleEndian.Uint32(raw[i*4:]))
	}
	out := make([][]int32, n)
	for i := range out {
		if offs[i] == offs[i+1] {
			continue // nil for empty lists, as the live index keeps them
		}
		out[i] = flat[offs[i]:offs[i+1]:offs[i+1]]
	}
	return out
}

func (r *reader) raggedU32(what string) [][]uint32 {
	n := r.count(what)
	offs := r.offsets(n)
	if r.err != nil {
		return nil
	}
	flatLen := int(offs[n])
	raw := r.take(flatLen * 4)
	if r.err != nil {
		return nil
	}
	flat := make([]uint32, flatLen)
	for i := range flat {
		flat[i] = binary.LittleEndian.Uint32(raw[i*4:])
	}
	out := make([][]uint32, n)
	for i := range out {
		out[i] = flat[offs[i]:offs[i+1]:offs[i+1]]
	}
	return out
}

// DecodeSnapshot parses a complete snapshot file image, verifying the
// CRC and every structural bound, and returns the decoded view. The
// returned view owns its memory and can be handed to
// join.NewShardedRefIndexFromSnapshot (which re-validates the
// cross-structure invariants the codec cannot see).
func DecodeSnapshot(data []byte) (*join.SnapshotView, error) {
	if len(data) < len(snapMagic)+4 {
		return nil, fmt.Errorf("%w: snapshot of %d bytes is shorter than magic+checksum", ErrCorrupt, len(data))
	}
	if string(data[:len(snapMagic)]) != string(snapMagic[:]) {
		return nil, fmt.Errorf("%w: snapshot magic mismatch (not an adaptivelink snapshot?)", ErrCorrupt)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	want := binary.LittleEndian.Uint32(tail)
	if got := crc32.Checksum(body, castagnoli); got != want {
		return nil, fmt.Errorf("%w: snapshot checksum %08x, file claims %08x (truncated or bit-flipped)", ErrCorrupt, got, want)
	}
	r := &reader{data: body, off: len(snapMagic)}
	version := r.u32()
	if r.err == nil && version != 1 && version != SnapshotVersion {
		return nil, fmt.Errorf("store: snapshot format version %d, this build reads versions 1..%d", version, SnapshotVersion)
	}
	v := &join.SnapshotView{}
	v.Cfg.Q = int(r.u32())
	// The wire measure id is the enum value; unknown ids flow through and
	// are rejected by join.Config.Validate with its own descriptive error.
	v.Cfg.Measure = simfn.TokenMeasure(r.u32())
	v.NShard = int(r.u32())
	v.Cfg.Theta = r.f64()
	n := r.count("tuple")
	plen := r.u32() // v1: reserved (ignored); v2: profile length
	if version >= 2 {
		if r.err == nil && plen > maxProfileLen {
			r.fail("profile name length %d over the %d cap", plen, maxProfileLen)
		}
		v.Cfg.Profile = string(r.take(int(plen)))
	}
	if r.err != nil {
		return nil, r.err
	}
	v.Cfg.Initial = join.LexRex
	if n > 0 && int64(n)*8 > int64(len(r.data)-r.off) {
		r.fail("tuple count %d exceeds remaining bytes", n)
		return nil, r.err
	}
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = r.i64()
	}
	keys := r.stringBlob("key")
	attrOffs := r.offsets(n)
	flatAttrs := r.stringBlob("attr")
	if r.err != nil {
		return nil, r.err
	}
	if len(keys) != n {
		return nil, fmt.Errorf("%w: %d keys for %d tuples", ErrCorrupt, len(keys), n)
	}
	if int(attrOffs[n]) > len(flatAttrs) {
		return nil, fmt.Errorf("%w: attr offsets reach %d of %d attrs", ErrCorrupt, attrOffs[n], len(flatAttrs))
	}
	v.Tuples = make([]relation.Tuple, n)
	for i := range v.Tuples {
		v.Tuples[i] = relation.Tuple{ID: int(ids[i]), Key: keys[i]}
		if attrOffs[i] < attrOffs[i+1] {
			v.Tuples[i].Attrs = flatAttrs[attrOffs[i]:attrOffs[i+1]:attrOffs[i+1]]
		}
	}
	if v.NShard < 1 || int64(v.NShard) > int64(len(r.data)-r.off) {
		return nil, fmt.Errorf("%w: shard count %d implausible for %d remaining bytes", ErrCorrupt, v.NShard, len(r.data)-r.off)
	}
	v.Shards = make([]join.ShardExport, v.NShard)
	for i := range v.Shards {
		v.Shards[i].Globals = r.u32slice("global")
		v.Shards[i].QGrams = hashidx.QGramExport{
			Grams:    r.stringBlob("gram"),
			Postings: r.raggedI32("posting"),
			Sizes:    r.u32slice("size"),
			Sigs:     r.raggedU32("signature"),
			SigFloor: int(r.u32()),
		}
		if r.err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, r.err)
		}
		// Below the signature floor the live index keeps nil (those refs
		// predate signature retention); at or above it, empty means an
		// empty gram set and stays non-nil. Restore that distinction —
		// but only for genuinely empty entries, so a snapshot smuggling
		// data below the floor is still caught by import validation.
		qg := &v.Shards[i].QGrams
		for j := 0; j < qg.SigFloor && j < len(qg.Sigs); j++ {
			if len(qg.Sigs[j]) == 0 {
				qg.Sigs[j] = nil
			}
		}
	}
	if r.off != len(r.data) {
		return nil, fmt.Errorf("%w: %d trailing bytes after the last shard", ErrCorrupt, len(r.data)-r.off)
	}
	return v, nil
}

// ReadSnapshotFile loads and decodes a snapshot file.
func ReadSnapshotFile(path string) (*join.SnapshotView, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	v, err := DecodeSnapshot(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return v, nil
}

// WriteSnapshotFile writes the snapshot atomically: encode to a
// temporary file in the same directory, fsync, rename over the target,
// fsync the directory. A crash mid-write leaves the previous snapshot
// (or none) intact, never a torn file under the live name; the final
// directory fsync makes the rename itself durable — without it, power
// loss after a "successful" checkpoint could resurrect the old
// snapshot, or worse, a directory entry pointing at nothing.
func WriteSnapshotFile(path string, v *join.SnapshotView) error {
	return WriteSnapshotFileFS(fault.OS, path, v)
}

// WriteSnapshotFileFS is WriteSnapshotFile through an injectable
// filesystem.
func WriteSnapshotFileFS(fsys fault.FS, path string, v *join.SnapshotView) (err error) {
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			fsys.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriterSize(tmp, 1<<16)
	if err = WriteSnapshot(bw, v); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = fsys.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}
