package store

import (
	"bytes"
	"os"
	"testing"

	"adaptivelink/internal/join"
	"adaptivelink/internal/relation"
)

// fuzzSeedSnapshot is a small valid snapshot image to seed mutation
// from (the interesting bugs live one bit flip away from valid).
func fuzzSeedSnapshot(f *testing.F) []byte {
	ix, err := join.BuildShardedRefIndex(join.Defaults(), 2, []relation.Tuple{
		{ID: 1, Key: "john smith", Attrs: []string{"a"}},
		{ID: 2, Key: "maria garcia", Attrs: []string{"b", "c"}},
		{ID: 3, Key: ""},
	})
	if err != nil {
		f.Fatal(err)
	}
	v, err := ix.ExportSnapshot()
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, v); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzSnapshotDecode hammers the snapshot loader with hostile bytes:
// whatever the input, it must return a view or an error — never panic,
// never allocate unboundedly — and any view it does return must either
// import cleanly or be rejected by the importer's own validation.
func FuzzSnapshotDecode(f *testing.F) {
	seed := fuzzSeedSnapshot(f)
	f.Add(seed)
	f.Add(seed[:len(seed)-3])
	f.Add(seed[:9])
	f.Add([]byte{})
	f.Add([]byte("ALSNAP\x01\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		// Structurally valid bytes: the importer must still hold every
		// cross-structure invariant without panicking.
		if _, err := join.NewShardedRefIndexFromSnapshot(v); err != nil {
			return
		}
	})
}

// fuzzSeedWAL is a small valid WAL image (header + two frames).
func fuzzSeedWAL(f *testing.F) []byte {
	dir := f.TempDir()
	w, _, err := OpenWAL(dir+"/"+WALFile, Meta{Q: 3, Theta: 0.75, Shards: 2}, SyncNone)
	if err != nil {
		f.Fatal(err)
	}
	w.Append([]relation.Tuple{{ID: 1, Key: "john smith", Attrs: []string{"a"}}})
	w.Append([]relation.Tuple{{ID: 2, Key: ""}})
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(dir + "/" + WALFile)
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzWALReplay hammers the WAL decoder with hostile bytes: it must
// return batches or an error — never panic — and the reported good
// offset must always sit on a frame boundary within the input.
func FuzzWALReplay(f *testing.F) {
	seed := fuzzSeedWAL(f)
	f.Add(seed)
	f.Add(seed[:len(seed)-5])
	f.Add(seed[:walFixedHeaderSize])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := decodeWALBytes(data)
		if err != nil {
			return
		}
		if dec.good < walFixedHeaderSize || dec.good > len(data) {
			t.Fatalf("good offset %d outside header..len range of %d-byte input", dec.good, len(data))
		}
		if !dec.torn && dec.good != len(data) {
			t.Fatalf("not torn, but good offset %d != len %d", dec.good, len(data))
		}
	})
}
