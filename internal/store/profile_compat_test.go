package store

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adaptivelink/internal/join"
	"adaptivelink/internal/relation"
)

// buildProfiledIndex builds a small resident index whose configuration
// carries a normalization-profile label (the store treats the label as
// opaque; applying it is the facade's job).
func buildProfiledIndex(t *testing.T, profile string) *join.ShardedRefIndex {
	t.Helper()
	cfg := join.Defaults()
	cfg.Profile = profile
	ix, err := join.BuildShardedRefIndex(cfg, 2, testTuples(40))
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// The profile travels the snapshot byte format: encode, decode, and the
// label plus the derived Meta both carry it.
func TestSnapshotProfileRoundTrip(t *testing.T) {
	ix := buildProfiledIndex(t, "latin")
	v, err := ix.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, v); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.Cfg.Profile != "latin" {
		t.Fatalf("decoded profile %q, want latin", got.Cfg.Profile)
	}
	if m := MetaOf(got); m.Profile != "latin" {
		t.Fatalf("MetaOf profile %q, want latin", m.Profile)
	}
}

// An over-long profile name is refused at write time rather than
// truncated on disk. join.Config.Validate rejects unknown names long
// before this, so the view is doctored after export to hit the cap.
func TestSnapshotProfileNameCap(t *testing.T) {
	ix := buildProfiledIndex(t, "")
	v, err := ix.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	v.Cfg.Profile = strings.Repeat("x", maxProfileLen+1)
	if err := WriteSnapshot(&bytes.Buffer{}, v); err == nil {
		t.Fatal("WriteSnapshot accepted an over-cap profile name")
	}
}

// A version-1 snapshot — profile slot carrying the reserved zero word
// and no profile bytes — still decodes, with the profile read as "".
// An empty-profile v2 image has the identical layout, so re-stamping
// its version word and checksum produces genuine v1 bytes.
func TestSnapshotV1Compat(t *testing.T) {
	ix := buildProfiledIndex(t, "")
	v, err := ix.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, v); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	binary.LittleEndian.PutUint32(data[8:], 1)
	body := data[:len(data)-4]
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.Checksum(body, castagnoli))

	got, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatalf("v1 snapshot rejected: %v", err)
	}
	if got.Cfg.Profile != "" {
		t.Fatalf("v1 snapshot decoded profile %q, want \"\"", got.Cfg.Profile)
	}
	if len(got.Tuples) != len(v.Tuples) {
		t.Fatalf("v1 snapshot decoded %d tuples, want %d", len(got.Tuples), len(v.Tuples))
	}
}

// A version-1 WAL — fixed header only, no profile word — reopens under
// an empty-profile meta and replays its frames. As with snapshots, the
// v1 image is constructed from the v2 bytes: strip the profile word,
// restamp the version. Frame CRCs are per frame, so they survive the
// splice untouched.
func TestWALV1Compat(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	meta := Meta{Q: 3, Theta: 0.75, Shards: 2}
	w, _, err := OpenWAL(path, meta, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	batch := []relation.Tuple{{ID: 1, Key: "ALPHA ONE"}, {ID: 2, Key: "BETA TWO"}}
	if err := w.Append(batch); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	v1 := append([]byte(nil), data[:walFixedHeaderSize]...)
	v1 = append(v1, data[walFixedHeaderSize+4:]...) // drop the (zero) profile word
	binary.LittleEndian.PutUint32(v1[8:], 1)
	if err := os.WriteFile(path, v1, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, replay, err := OpenWAL(path, meta, SyncNone)
	if err != nil {
		t.Fatalf("v1 WAL rejected: %v", err)
	}
	defer w2.Close()
	if len(replay.Batches) != 1 || len(replay.Batches[0]) != len(batch) {
		t.Fatalf("v1 WAL replayed %+v, want the original batch", replay.Batches)
	}
	if replay.Batches[0][0].Key != "ALPHA ONE" {
		t.Fatalf("v1 WAL first key %q", replay.Batches[0][0].Key)
	}
}

// The profile is part of the compatibility tuple at every gate: Meta
// mismatches name it, a WAL written under one profile refuses another,
// and a directory Open against a differently-profiled snapshot fails.
func TestProfileMismatchRejected(t *testing.T) {
	a := Meta{Q: 3, Theta: 0.75, Shards: 2, Profile: "latin"}
	b := a
	b.Profile = "greek"
	if err := a.Check(b); err == nil || !strings.Contains(err.Error(), "profile") {
		t.Fatalf("Meta.Check = %v, want a profile mismatch", err)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	w, _, err := OpenWAL(path, a, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(path, b, SyncNone); err == nil || !strings.Contains(err.Error(), "profile") {
		t.Fatalf("OpenWAL under the wrong profile = %v, want a profile mismatch", err)
	}

	idxDir := t.TempDir()
	d, err := Create(idxDir, buildProfiledIndex(t, "latin"), SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	wrong := Meta{Q: join.Defaults().Q, Theta: join.Defaults().Theta, Measure: join.Defaults().Measure, Shards: 2, Profile: "greek"}
	if _, _, _, err := Open(idxDir, wrong, SyncNone); err == nil || !strings.Contains(err.Error(), "profile") {
		t.Fatalf("Open under the wrong profile = %v, want a profile mismatch", err)
	}
}

// Create → Open round trip with a profiled index: PeekMeta reports the
// profile, and reopening under the stored meta reproduces it in the
// recovered configuration.
func TestDirProfileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ix := buildProfiledIndex(t, "cyrillic")
	d, err := Create(dir, ix, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Append([]relation.Tuple{{ID: 77, Key: "GAMMA THREE"}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	m, err := PeekMeta(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || m.Profile != "cyrillic" {
		t.Fatalf("PeekMeta = %+v, want profile cyrillic", m)
	}
	_, re, rec, err := Open(dir, *m, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if rec.WALRecords != 1 {
		t.Fatalf("recovered %d WAL records, want 1", rec.WALRecords)
	}
	if got, _ := re.ExportSnapshot(); got.Cfg.Profile != "cyrillic" {
		t.Fatalf("recovered profile %q, want cyrillic", got.Cfg.Profile)
	}
}
