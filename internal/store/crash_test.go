package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adaptivelink/internal/fault"
	"adaptivelink/internal/join"
	"adaptivelink/internal/relation"
	"adaptivelink/internal/simfn"
)

var crashMeta = Meta{Q: 3, Theta: 0.75, Measure: simfn.Jaccard, Shards: 2}

// crashSchedule drives a fixed open/append/checkpoint script against
// fsys until the first failure (the simulated crash kills the process:
// nothing after the failing call runs). It returns the acknowledged
// per-key state, the in-flight batch that was cut down mid-call (nil
// when the crash hit a checkpoint — checkpoints change no logical
// state), and whether the script ran to completion.
func crashSchedule(fsys fault.FS, dir string) (acked map[string]string, inflight map[string]string, done bool) {
	acked = make(map[string]string)
	batch := func(i int) []relation.Tuple {
		ts := []relation.Tuple{{ID: i, Key: fmt.Sprintf("key-%03d", i), Attrs: []string{fmt.Sprintf("batch-%d", i)}}}
		if i > 0 {
			// Overwrite an earlier key too: last-wins must survive replay.
			ts = append(ts, relation.Tuple{ID: 100 + i, Key: "key-000", Attrs: []string{fmt.Sprintf("rewrite-%d", i)}})
		}
		return ts
	}
	d, ix, _, err := OpenFS(fsys, dir, crashMeta, SyncAlways)
	if err != nil {
		return acked, nil, false
	}
	step := 0
	for _, act := range []string{"a", "a", "c", "a", "c", "a"} {
		switch act {
		case "a":
			b := batch(step)
			step++
			if err := d.Append(b); err != nil {
				m := make(map[string]string)
				for _, t := range b {
					m[t.Key] = t.Attrs[0]
				}
				return acked, m, false
			}
			ix.Upsert(b)
			for _, t := range b {
				acked[t.Key] = t.Attrs[0]
			}
		case "c":
			if err := d.Checkpoint(ix); err != nil {
				return acked, nil, false
			}
		}
	}
	if err := d.Close(); err != nil {
		return acked, nil, false
	}
	return acked, nil, true
}

// TestCrashConsistencySweep simulates a crash at EVERY write-class
// filesystem operation of the schedule (every WAL write/fsync, every
// snapshot write, the checkpoint rename, the directory fsync, the WAL
// reset), plus a torn-write variant of each, and asserts each recovery
// lands on a valid old-or-new state: opens cleanly (never ErrCorrupt),
// holds every acknowledged write, and reflects the in-flight batch
// either completely or not at all.
func TestCrashConsistencySweep(t *testing.T) {
	probe := NewSimFS4Count(t)
	total := probe.WriteOps()
	if total < 15 {
		t.Fatalf("schedule has only %d write ops; the sweep would be trivial", total)
	}
	for _, torn := range []int{-1, 3} {
		for k := 0; k < total; k++ {
			name := fmt.Sprintf("crash-at-%03d-torn-%d", k, torn)
			t.Run(name, func(t *testing.T) {
				dir := t.TempDir()
				fs := fault.NewSimFS().CrashAt(k).TornBytes(torn)
				acked, inflight, done := crashSchedule(fs, dir)
				if done {
					t.Fatalf("schedule completed despite crash at op %d", k)
				}
				if !fs.Crashed() {
					t.Fatalf("crash at op %d never fired", k)
				}
				// The process is dead; recovery runs on the real filesystem.
				d, ix, _, err := Open(dir, crashMeta, SyncAlways)
				if err != nil {
					t.Fatalf("recovery after crash at op %d failed: %v", k, err)
				}
				defer d.Close()
				assertOldOrNew(t, ix, acked, inflight)
			})
		}
	}
}

// NewSimFS4Count runs the schedule crash-free to learn the write-op
// count the sweep iterates over.
func NewSimFS4Count(t *testing.T) *fault.SimFS {
	t.Helper()
	fs := fault.NewSimFS()
	if _, _, done := crashSchedule(fs, t.TempDir()); !done {
		t.Fatal("crash-free schedule did not complete")
	}
	return fs
}

func assertOldOrNew(t *testing.T, ix *join.ShardedRefIndex, acked, inflight map[string]string) {
	t.Helper()
	recovered := make(map[string]string)
	for ref := 0; ref < ix.Len(); ref++ {
		tp, err := ix.Tuple(ref)
		if err != nil {
			t.Fatalf("Tuple(%d): %v", ref, err)
		}
		recovered[tp.Key] = tp.Attrs[0]
	}
	// Track whether the in-flight batch surfaced whole or not at all.
	inflightSeen, inflightMissing := 0, 0
	for k, v := range recovered {
		if av, ok := acked[k]; ok && av == v {
			continue
		}
		if iv, ok := inflight[k]; ok && iv == v {
			inflightSeen++
			continue
		}
		t.Fatalf("recovered %q=%q matches neither the acknowledged state (%q) nor the in-flight batch", k, v, acked[k])
	}
	for k, v := range acked {
		if iv, ok := inflight[k]; ok && recovered[k] == iv {
			continue // superseded by the (new-state) in-flight batch
		}
		if recovered[k] != v {
			t.Fatalf("acknowledged write %q=%q lost: recovered %q", k, v, recovered[k])
		}
	}
	for k, v := range inflight {
		if recovered[k] != v {
			inflightMissing++
		}
	}
	if inflightSeen > 0 && inflightMissing > 0 {
		t.Fatalf("in-flight batch applied partially: %d keys new, %d keys old (a torn frame leaked through replay)", inflightSeen, inflightMissing)
	}
}

// TestWALFsyncPoisoning pins fsyncgate semantics: after a failed fsync
// in SyncAlways mode the append fails AND the log refuses further
// appends with a descriptive error — the possibly-lost frame is never
// silently built upon. A successful checkpoint (which rewrites the
// snapshot from acknowledged state and truncates the log wholesale)
// clears the poison.
func TestWALFsyncPoisoning(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("EIO: lost some dirty pages")
	// Sync #1 is the fresh WAL header's; #2 is the first append's.
	fs := fault.NewSimFS().FailOp(fault.OpSync, 2, boom)
	d, ix, _, err := OpenFS(fs, dir, crashMeta, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	b0 := []relation.Tuple{{ID: 0, Key: "alpha", Attrs: []string{"a"}}}
	err = d.Append(b0)
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("append over failed fsync = %v, want the injected error", err)
	}
	if !strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("append error %q does not say the log is poisoned", err)
	}

	// The next append performs NO I/O and still fails, naming the cause.
	err = d.Append([]relation.Tuple{{ID: 1, Key: "beta", Attrs: []string{"b"}}})
	if err == nil || !strings.Contains(err.Error(), "poisoned") || !strings.Contains(err.Error(), boom.Error()) {
		t.Fatalf("append on poisoned log = %v, want a descriptive poisoned error wrapping the fsync failure", err)
	}
	if d.Poisoned() == nil {
		t.Fatal("Dir.Poisoned() nil on a poisoned log")
	}

	// Checkpointing the acknowledged (empty) state truncates the
	// unknowable tail away and heals the log.
	if err := d.Checkpoint(ix); err != nil {
		t.Fatalf("checkpoint on poisoned log: %v", err)
	}
	if d.Poisoned() != nil {
		t.Fatalf("log still poisoned after a successful checkpoint: %v", d.Poisoned())
	}
	if err := d.Append(b0); err != nil {
		t.Fatalf("append after heal: %v", err)
	}
	ix.Upsert(b0)

	// And the healed directory recovers the acknowledged state.
	d.Close()
	_, ix2, rec, err := Open(dir, crashMeta, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if rec.WALRecords != 1 || ix2.Len() != 1 {
		t.Fatalf("recovered %d WAL records / %d tuples, want 1/1", rec.WALRecords, ix2.Len())
	}
}

// Orphaned snapshot temp files (a crash between temp write and rename)
// must not break or pollute a reopen: Open sweeps them.
func TestOpenSweepsOrphanedTempFiles(t *testing.T) {
	dir := t.TempDir()
	d, ix, _, err := Open(dir, crashMeta, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	b := []relation.Tuple{{ID: 0, Key: "alpha", Attrs: []string{"a"}}}
	if err := d.Append(b); err != nil {
		t.Fatal(err)
	}
	ix.Upsert(b)
	if err := d.Checkpoint(ix); err != nil {
		t.Fatal(err)
	}
	d.Close()

	orphan := filepath.Join(dir, SnapshotFile+".tmp12345")
	if err := os.WriteFile(orphan, []byte("half a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	d2, ix2, _, err := Open(dir, crashMeta, SyncAlways)
	if err != nil {
		t.Fatalf("open with orphaned temp file: %v", err)
	}
	defer d2.Close()
	if ix2.Len() != 1 {
		t.Fatalf("recovered %d tuples, want 1", ix2.Len())
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan %s survived reopen (stat err %v)", orphan, err)
	}
}

// The content digest is stable across the round trips anti-entropy
// relies on: export→digest twice agrees, a snapshot-loaded copy agrees
// with its source, and after both copies apply the same further
// upserts they still agree — so "same digest" means "same content"
// for a replica repaired by full resync, too.
func TestDigestStability(t *testing.T) {
	ix1 := buildIndex(t, 2, 60)
	v1, err := ix1.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	d1 := DigestView(v1)
	if d1.Tuples != ix1.Len() || len(d1.Shards) != 2 || d1.Combined == "" {
		t.Fatalf("digest shape: %+v", d1)
	}
	v1b, err := ix1.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if d := DigestView(v1b); d.Combined != d1.Combined {
		t.Fatalf("re-export digest %v != %v", d, d1)
	}

	// Round-trip through the codec (what a resync streams).
	var buf strings.Builder
	if err := WriteSnapshot(&buf, v1); err != nil {
		t.Fatal(err)
	}
	v2, err := DecodeSnapshot([]byte(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := join.NewShardedRefIndexFromSnapshot(v2)
	if err != nil {
		t.Fatal(err)
	}
	ev2, err := ix2.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if d2 := DigestView(ev2); d2.Combined != d1.Combined {
		t.Fatalf("snapshot-loaded digest %s != source %s", d2.Combined, d1.Combined)
	}

	// Same subsequent writes → same digest on both lineages.
	extra := []relation.Tuple{{ID: 7000, Key: "maria chen 777", Attrs: []string{"late"}}}
	ix1.Upsert(extra)
	ix2.Upsert(extra)
	e1, _ := ix1.ExportSnapshot()
	e2, _ := ix2.ExportSnapshot()
	g1, g2 := DigestView(e1), DigestView(e2)
	if g1.Combined != g2.Combined {
		t.Fatalf("digests diverged after identical writes: %s vs %s", g1.Combined, g2.Combined)
	}
	if g1.Combined == d1.Combined {
		t.Fatal("digest did not change after a write")
	}
}
