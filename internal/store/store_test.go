package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"adaptivelink/internal/join"
	"adaptivelink/internal/relation"
	"adaptivelink/internal/simfn"
)

// testTuples builds a deterministic batch with realistic keys, typos
// (approximate neighbours), duplicate keys and an empty key.
func testTuples(n int) []relation.Tuple {
	rng := rand.New(rand.NewSource(42))
	first := []string{"john", "maria", "wei", "fatima", "ivan", "chidi", "sofia", "lars"}
	last := []string{"smith", "garcia", "chen", "mueller", "okafor", "rossi", "tanaka", "novak"}
	out := make([]relation.Tuple, 0, n+n/4+1)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("%s %s %03d", first[rng.Intn(len(first))], last[rng.Intn(len(last))], i)
		out = append(out, relation.Tuple{ID: i, Key: key, Attrs: []string{fmt.Sprintf("row-%d", i)}})
	}
	for i := 0; i < n/4; i++ {
		src := out[rng.Intn(n)].Key
		// One-character typo: an approximate, non-exact neighbour.
		b := []byte(src)
		b[rng.Intn(len(b))] = 'x'
		out = append(out, relation.Tuple{ID: 1000 + i, Key: string(b), Attrs: []string{"typo"}})
	}
	out = append(out, relation.Tuple{ID: 9999, Key: "", Attrs: []string{"empty"}})
	return out
}

func buildIndex(t *testing.T, shards, n int) *join.ShardedRefIndex {
	t.Helper()
	ix, err := join.BuildShardedRefIndex(join.Defaults(), shards, testTuples(n))
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func renderProbe(ms []join.RefMatch) string {
	var b strings.Builder
	for _, m := range ms {
		fmt.Fprintf(&b, "%d:%q:%v:%.9f:%v;", m.Ref, m.Tuple.Key, m.Tuple.Attrs, m.Similarity, m.Exact)
	}
	return b.String()
}

// assertSameIndex holds two resident indexes to observational equality:
// store contents and probe answers in both modes for every stored key.
func assertSameIndex(t *testing.T, want, got *join.ShardedRefIndex) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		a, errA := want.Tuple(i)
		b, errB := got.Tuple(i)
		if errA != nil || errB != nil || !reflect.DeepEqual(a, b) {
			t.Fatalf("Tuple(%d) = %+v (%v), want %+v (%v)", i, b, errB, a, errA)
		}
		for _, mode := range []join.Mode{join.Exact, join.Approx} {
			w := renderProbe(want.Probe(mode, a.Key))
			g := renderProbe(got.Probe(mode, a.Key))
			if w != g {
				t.Fatalf("Probe(%v, %q) = %s, want %s", mode, a.Key, g, w)
			}
		}
	}
}

func encodeSnapshot(t *testing.T, ix *join.ShardedRefIndex) []byte {
	t.Helper()
	v, err := ix.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotCodecRoundTrip pins encode → decode to structural
// identity (the decoded view DeepEquals the exported one) and the
// decoded view to behavioural identity after import.
func TestSnapshotCodecRoundTrip(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			ix := buildIndex(t, shards, 120)
			want, err := ix.ExportSnapshot()
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := WriteSnapshot(&buf, want); err != nil {
				t.Fatal(err)
			}
			got, err := DecodeSnapshot(buf.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatal("decoded view differs structurally from the exported view")
			}
			loaded, err := join.NewShardedRefIndexFromSnapshot(got)
			if err != nil {
				t.Fatal(err)
			}
			assertSameIndex(t, ix, loaded)
			// The loaded index stays writable.
			extra := relation.Tuple{ID: 7777, Key: "maria rossi 999", Attrs: []string{"late"}}
			ix.Upsert([]relation.Tuple{extra})
			loaded.Upsert([]relation.Tuple{extra})
			assertSameIndex(t, ix, loaded)
		})
	}
}

// TestSnapshotFileRoundTrip exercises the atomic file path.
func TestSnapshotFileRoundTrip(t *testing.T) {
	ix := buildIndex(t, 2, 60)
	v, err := ix.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), SnapshotFile)
	if err := WriteSnapshotFile(path, v); err != nil {
		t.Fatal(err)
	}
	// Overwrite in place: the rename must replace, not fail.
	if err := WriteSnapshotFile(path, v); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := join.NewShardedRefIndexFromSnapshot(got)
	if err != nil {
		t.Fatal(err)
	}
	assertSameIndex(t, ix, loaded)
	if m, err := PeekMeta(filepath.Dir(path)); err != nil || m == nil {
		t.Fatalf("PeekMeta = %+v, %v", m, err)
	} else if err := m.Check(MetaOf(v)); err != nil {
		t.Fatalf("peeked meta differs: %v", err)
	}
}

// TestSnapshotDecodeRejectsCorruption pins the corruption guards: any
// truncation or bit flip yields a descriptive error, never a panic and
// never a partial view.
func TestSnapshotDecodeRejectsCorruption(t *testing.T) {
	data := encodeSnapshot(t, buildIndex(t, 2, 40))
	if _, err := DecodeSnapshot(data); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
	t.Run("truncation", func(t *testing.T) {
		for _, keep := range []int{0, 1, 7, 8, 11, 40, len(data) / 2, len(data) - 1} {
			if _, err := DecodeSnapshot(data[:keep]); err == nil {
				t.Fatalf("truncation to %d bytes decoded without error", keep)
			}
		}
	})
	t.Run("bit flips", func(t *testing.T) {
		for _, pos := range []int{0, 9, 13, 30, 44, len(data) / 3, len(data) / 2, len(data) - 2} {
			bad := append([]byte(nil), data...)
			bad[pos] ^= 0x40
			if _, err := DecodeSnapshot(bad); err == nil {
				t.Fatalf("bit flip at %d decoded without error", pos)
			}
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		if _, err := DecodeSnapshot(append(append([]byte(nil), data...), 0xde, 0xad)); err == nil {
			t.Fatal("trailing garbage decoded without error")
		}
	})
	t.Run("future version", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		binary.LittleEndian.PutUint32(bad[8:], SnapshotVersion+1)
		// Re-seal so only the version check can object.
		binary.LittleEndian.PutUint32(bad[len(bad)-4:], crc32.Checksum(bad[:len(bad)-4], castagnoli))
		_, err := DecodeSnapshot(bad)
		if err == nil || !strings.Contains(err.Error(), "version") {
			t.Fatalf("future version: err = %v, want a version error", err)
		}
	})
}

// TestWALAppendReplay pins the basic log contract: appended batches
// replay in order with identical contents, and Reset empties the log.
func TestWALAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), WALFile)
	meta := Meta{Q: 3, Theta: 0.75, Measure: simfn.Jaccard, Shards: 2}
	w, replay, err := OpenWAL(path, meta, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if replay.Records != 0 || replay.TornTail {
		t.Fatalf("fresh WAL replay = %+v", replay)
	}
	batches := [][]relation.Tuple{
		{{ID: 1, Key: "john smith", Attrs: []string{"a", "b"}}},
		{{ID: 2, Key: "maria garcia", Attrs: nil}, {ID: 3, Key: "", Attrs: []string{"empty-key"}}},
		{},
	}
	for _, b := range batches {
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if w.Records() != 3 {
		t.Fatalf("Records = %d, want 3", w.Records())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w, replay, err = OpenWAL(path, meta, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if replay.TornTail || len(replay.Batches) != 3 {
		t.Fatalf("replay = %+v", replay)
	}
	for i, b := range replay.Batches {
		want := batches[i]
		if len(b) != len(want) {
			t.Fatalf("batch %d: %d tuples, want %d", i, len(b), len(want))
		}
		for j := range b {
			if !reflect.DeepEqual(b[j], want[j]) {
				t.Fatalf("batch %d tuple %d = %+v, want %+v", i, j, b[j], want[j])
			}
		}
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(batches[0]); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, replay, err = OpenWAL(path, meta, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if len(replay.Batches) != 1 {
		t.Fatalf("post-reset replay carries %d batches, want 1", len(replay.Batches))
	}
}

// TestWALTornTail simulates a crash mid-append: the torn frame is
// dropped and truncated away, the intact prefix replays, and the log
// accepts new appends cleanly.
func TestWALTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), WALFile)
	meta := Meta{Q: 3, Theta: 0.75, Measure: simfn.Jaccard, Shards: 1}
	w, _, err := OpenWAL(path, meta, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append([]relation.Tuple{{ID: i, Key: fmt.Sprintf("key %d", i)}}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	for _, cut := range []int{1, 5, 9} { // into the last frame's payload, CRC, length prefix
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		torn := filepath.Join(t.TempDir(), WALFile)
		if err := os.WriteFile(torn, data[:len(data)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w2, replay, err := OpenWAL(torn, meta, SyncAlways)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !replay.TornTail || len(replay.Batches) != 2 {
			t.Fatalf("cut %d: replay = %+v, want 2 batches + torn tail", cut, replay)
		}
		// The torn bytes are gone; appends land on a clean boundary.
		if err := w2.Append([]relation.Tuple{{ID: 9, Key: "after crash"}}); err != nil {
			t.Fatal(err)
		}
		w2.Close()
		_, replay, err = OpenWAL(torn, meta, SyncAlways)
		if err != nil {
			t.Fatal(err)
		}
		if replay.TornTail || len(replay.Batches) != 3 {
			t.Fatalf("cut %d: post-repair replay = %+v, want 3 clean batches", cut, replay)
		}
	}
}

// TestWALRejectsCorruption: a complete frame with a flipped bit is a
// hard error (not silently skipped), as are header and meta damage.
func TestWALRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, WALFile)
	meta := Meta{Q: 3, Theta: 0.75, Measure: simfn.Jaccard, Shards: 1}
	w, _, err := OpenWAL(path, meta, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := w.Append([]relation.Tuple{{ID: i, Key: fmt.Sprintf("john smith %d", i), Attrs: []string{"x"}}}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flip := func(pos int) string {
		bad := append([]byte(nil), data...)
		bad[pos] ^= 0x01
		p := filepath.Join(t.TempDir(), WALFile)
		os.WriteFile(p, bad, 0o644)
		return p
	}
	t.Run("payload bit flip", func(t *testing.T) {
		if _, _, err := OpenWAL(flip(walFixedHeaderSize+12), meta, SyncAlways); err == nil {
			t.Fatal("bit-flipped frame replayed without error")
		}
	})
	t.Run("magic damage", func(t *testing.T) {
		if _, _, err := OpenWAL(flip(0), meta, SyncAlways); err == nil {
			t.Fatal("damaged magic accepted")
		}
	})
	t.Run("meta mismatch", func(t *testing.T) {
		other := meta
		other.Theta = 0.9
		_, _, err := OpenWAL(path, other, SyncAlways)
		if err == nil || !strings.Contains(err.Error(), "mismatch") {
			t.Fatalf("err = %v, want a configuration mismatch", err)
		}
	})
}

// TestDirLifecycle drives the full durability loop: open empty, ingest
// through the WAL, checkpoint, ingest more, and at every stage prove a
// fresh Open reconstructs an index observationally identical to one
// that lived through everything in memory.
func TestDirLifecycle(t *testing.T) {
	dir := t.TempDir()
	meta := Meta{Q: 3, Theta: 0.75, Measure: simfn.Jaccard, Shards: 2}
	ref, err := join.NewShardedRefIndex(metaConfig(meta), meta.Shards)
	if err != nil {
		t.Fatal(err)
	}

	d, ix, rec, err := Open(dir, meta, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotTuples != 0 || rec.WALRecords != 0 {
		t.Fatalf("fresh dir recovery = %+v", rec)
	}
	tuples := testTuples(90)
	ingest := func(batch []relation.Tuple) {
		t.Helper()
		if err := d.Append(batch); err != nil {
			t.Fatal(err)
		}
		ix.Upsert(batch)
		ref.Upsert(batch)
	}
	reopen := func(wantSnapTuples int, wantWAL int64) {
		t.Helper()
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		d, ix, rec, err = Open(dir, meta, SyncAlways)
		if err != nil {
			t.Fatal(err)
		}
		if rec.SnapshotTuples != wantSnapTuples || rec.WALRecords != wantWAL {
			t.Fatalf("recovery = %+v, want snapshot %d + %d WAL records", rec, wantSnapTuples, wantWAL)
		}
		assertSameIndex(t, ref, ix)
	}

	ingest(tuples[:40])
	ingest(tuples[40:70])
	reopen(0, 2) // no snapshot yet: everything from the WAL

	if err := d.Checkpoint(ix); err != nil {
		t.Fatal(err)
	}
	if d.WALRecords() != 0 {
		t.Fatalf("WALRecords after checkpoint = %d", d.WALRecords())
	}
	if d.LastSnapshot().IsZero() {
		t.Fatal("LastSnapshot still zero after checkpoint")
	}
	snapLen := ix.Len()
	reopen(snapLen, 0) // everything from the snapshot

	ingest(tuples[70:]) // updates + fresh rows past the checkpoint
	reopen(snapLen, 1)  // snapshot + one replayed batch

	// A different configuration must be rejected, not reinterpreted.
	d.Close()
	other := meta
	other.Q = 4
	if _, _, _, err := Open(dir, other, SyncAlways); err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("Open with different q: err = %v, want configuration mismatch", err)
	}
	// PeekMeta surfaces the stored tuple for config resolution.
	m, err := PeekMeta(dir)
	if err != nil || m == nil {
		t.Fatalf("PeekMeta = %+v, %v", m, err)
	}
	if err := m.Check(meta); err != nil {
		t.Fatal(err)
	}
}

// TestPeekMetaEmpty: absent and empty directories carry no config.
func TestPeekMetaEmpty(t *testing.T) {
	if m, err := PeekMeta(filepath.Join(t.TempDir(), "nope")); m != nil || err != nil {
		t.Fatalf("PeekMeta(absent) = %+v, %v", m, err)
	}
	if m, err := PeekMeta(t.TempDir()); m != nil || err != nil {
		t.Fatalf("PeekMeta(empty) = %+v, %v", m, err)
	}
}
