package adaptive

import (
	"math/rand"
	"testing"

	"adaptivelink/internal/datagen"
	"adaptivelink/internal/iterator"
	"adaptivelink/internal/join"
	"adaptivelink/internal/relation"
	"adaptivelink/internal/stream"
)

// buildScenario creates a parent of n mutually dissimilar keys and a
// child of n tuples referencing random parents (seeded), with children
// in positions [vFrom, vTo) turned into 1-character variants.
func buildScenario(seed int64, n, vFrom, vTo int) (parent, child *relation.Relation) {
	rng := rand.New(rand.NewSource(seed))
	names := datagen.NewNameGen(seed)
	parent = relation.New("parent", relation.NewSchema("key"))
	for i := 0; i < n; i++ {
		parent.Append(names.Next())
	}
	child = relation.New("child", relation.NewSchema("key"))
	for i := 0; i < n; i++ {
		key := parent.At(rng.Intn(n)).Key
		if i >= vFrom && i < vTo {
			key = datagen.Mutate(rng, key)
		}
		child.Append(key)
	}
	return parent, child
}

func testParams() Params {
	return Params{W: 20, DeltaAdapt: 10, ThetaOut: 0.05, ThetaCurPert: 0.05, ThetaPastPert: 100}
}

func runAdaptive(t *testing.T, parent, child *relation.Relation, p Params) (*join.Engine, *Controller, []join.Match) {
	t.Helper()
	e, err := join.New(join.Defaults(), stream.FromRelation(parent), stream.FromRelation(child), nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Attach(e, stream.Left, parent.Len(), p, WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	ms, err := iterator.Drain[join.Match](e, nil)
	if err != nil {
		t.Fatal(err)
	}
	return e, c, ms
}

func TestAttachValidation(t *testing.T) {
	e, _ := join.New(join.Defaults(), stream.FromRelation(relation.FromKeys("L", "a")), stream.FromRelation(relation.FromKeys("R", "a")), nil)
	if _, err := Attach(nil, stream.Left, 10, DefaultParams()); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := Attach(e, stream.Left, 0, DefaultParams()); err == nil {
		t.Error("zero parent size accepted")
	}
	if _, err := Attach(e, stream.Left, 10, Params{}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestControllerNoVariantsStaysExact(t *testing.T) {
	parent, child := buildScenario(7, 300, 0, 0) // no variants
	e, c, _ := runAdaptive(t, parent, child, testParams())
	if e.Stats().Switches != 0 {
		t.Errorf("switched %d times on clean data", e.Stats().Switches)
	}
	if got := e.State(); got != join.LexRex {
		t.Errorf("final state %v, want lex/rex", got)
	}
	for _, act := range c.Activations() {
		if act.Assessment.Sigma {
			t.Errorf("σ fired on clean data at step %d (tail %v)", act.Observation.Step, act.Assessment.Tail)
		}
	}
}

func TestControllerDetectsPerturbationAndRecovers(t *testing.T) {
	// A dense variant region early in the child; the controller must (a)
	// switch to an approximate state, (b) recover more matches than the
	// pure exact join, and (c) return to lex/rex once the region has
	// passed and the deficit stops being significant.
	parent, child := buildScenario(11, 400, 40, 80)
	e, c, ms := runAdaptive(t, parent, child, testParams())

	if e.Stats().Switches == 0 {
		t.Fatal("controller never switched despite a 10% variant burst")
	}
	wentApprox := false
	returnedExact := false
	for _, act := range c.Activations() {
		if act.From == join.LexRex && act.To != join.LexRex {
			wentApprox = true
		}
		if wentApprox && act.To == join.LexRex && act.From != join.LexRex {
			returnedExact = true
		}
	}
	if !wentApprox {
		t.Error("no transition out of lex/rex recorded")
	}
	if !returnedExact {
		t.Error("never returned to lex/rex after the perturbation region")
	}

	exact := join.NestedLoopExact(parent, child)
	if len(ms) <= len(exact) {
		t.Errorf("adaptive found %d matches, exact baseline %d — no gain", len(ms), len(exact))
	}
	approx, err := join.NestedLoopApprox(join.Defaults(), parent, child)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) > len(approx) {
		t.Errorf("adaptive found %d matches, more than the approximate ceiling %d", len(ms), len(approx))
	}
}

func TestControllerGainBetweenBaselines(t *testing.T) {
	parent, child := buildScenario(23, 400, 100, 180)
	_, _, ms := runAdaptive(t, parent, child, testParams())
	exact := join.NestedLoopExact(parent, child)
	approx, _ := join.NestedLoopApprox(join.Defaults(), parent, child)
	r, rabs, R := len(exact), len(ms), len(approx)
	if !(r <= rabs && rabs <= R) {
		t.Errorf("completeness ordering violated: r=%d rabs=%d R=%d", r, rabs, R)
	}
	if R == r {
		t.Skip("degenerate scenario: no recoverable variants")
	}
	grel := float64(rabs-r) / float64(R-r)
	if grel <= 0 {
		t.Errorf("relative gain %v, want positive", grel)
	}
}

func TestControllerWindowsTrackAttribution(t *testing.T) {
	// Variants only in the child (right input): blame must concentrate
	// there, and past-perturbation counters must reflect it.
	parent, child := buildScenario(31, 400, 50, 120)
	_, c, _ := runAdaptive(t, parent, child, testParams())
	if c.PastPerturbed(stream.Right) == 0 {
		t.Error("right side never judged perturbed despite child variants")
	}
	// The left (parent) input has no variants; with flag-based
	// attribution most blame lands right, though AttrBoth events also
	// tick the left window.
	if c.PastPerturbed(stream.Right) < c.PastPerturbed(stream.Left) {
		t.Errorf("blame inverted: left=%d right=%d",
			c.PastPerturbed(stream.Left), c.PastPerturbed(stream.Right))
	}
}

func TestControllerTraceDisabledByDefault(t *testing.T) {
	parent, child := buildScenario(5, 120, 20, 40)
	e, _ := join.New(join.Defaults(), stream.FromRelation(parent), stream.FromRelation(child), nil)
	c, err := Attach(e, stream.Left, parent.Len(), testParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := iterator.Drain[join.Match](e, nil); err != nil {
		t.Fatal(err)
	}
	if c.Activations() != nil {
		t.Error("trace recorded without WithTrace")
	}
}

func TestControllerChainsExistingHooks(t *testing.T) {
	parent, child := buildScenario(5, 60, 0, 0)
	e, _ := join.New(join.Defaults(), stream.FromRelation(parent), stream.FromRelation(child), nil)
	stepCalls, matchCalls := 0, 0
	e.OnStep = func(*join.Engine) { stepCalls++ }
	e.OnMatch = func(join.Match) { matchCalls++ }
	if _, err := Attach(e, stream.Left, parent.Len(), testParams()); err != nil {
		t.Fatal(err)
	}
	ms, err := iterator.Drain[join.Match](e, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stepCalls != 120 {
		t.Errorf("user OnStep fired %d times, want 120", stepCalls)
	}
	if matchCalls != len(ms) {
		t.Errorf("user OnMatch fired %d times, want %d", matchCalls, len(ms))
	}
}

func TestControllerHybridStateOneSidedVariants(t *testing.T) {
	// With variants only in the child and enough flagged evidence, the
	// responder should at some point pick a hybrid state (lex/rap: child
	// probes approximate, parent probes exact) rather than only lap/rap.
	parent, child := buildScenario(47, 600, 100, 220)
	p := testParams()
	p.ThetaPastPert = 1000 // keep hybrid states reachable throughout
	_, c, _ := runAdaptive(t, parent, child, p)
	sawHybrid := false
	for _, act := range c.Activations() {
		if act.To == join.LexRap || act.To == join.LapRex {
			sawHybrid = true
			break
		}
	}
	if !sawHybrid {
		t.Log("no hybrid state entered; acceptable but unexpected for one-sided variants")
	}
}
