package adaptive

import (
	"fmt"

	"adaptivelink/internal/join"
	"adaptivelink/internal/metrics"
	"adaptivelink/internal/stats"
	"adaptivelink/internal/stream"
)

// Activation records one control-loop firing, for experiment reporting
// and diagnosis.
type Activation struct {
	Observation Observation
	Assessment  Assessment
	From        join.State
	To          join.State
	// CaughtUp is the number of tuples the switch-time index catch-up
	// inserted (0 for self-transitions).
	CaughtUp int
	// Forced explains a decision that overrode the ϕ rules: "" (none),
	// "budget" (cost budget exhausted, pinned to lex/rex) or "futility"
	// (approximate matching produced nothing, reverted to lex/rex).
	Forced string
}

// Controller wires the MAR loop onto a join engine. Create it with
// Attach before opening the engine; it drives itself through the
// engine's hooks, so the caller just pulls matches from the engine (or
// wraps it in the public API's operator).
type Controller struct {
	engine     *join.Engine
	params     Params
	parentSide stream.Side
	parentSize int

	win            [2]*stats.SlidingWindow
	pastPerturbed  [2]int
	lastActivation int

	// Futility extension (Params.FutilityK): approxSeen counts every
	// non-exact match so far; fut holds the shared streak/suppression
	// state machine (see futilityGate).
	approxSeen int
	fut        futilityGate

	// Cost-budget extension (WithCostBudget): once the modelled cost
	// reaches budget, the responder pins lex/rex.
	budgetWeights metrics.Weights
	budget        float64
	hasBudget     bool

	// cal is the calibrated-estimator state (see calibrator).
	cal calibrator

	trace     []Activation
	keepTrace bool
}

// Option configures a Controller.
type Option func(*Controller)

// WithTrace makes the controller record every activation; retrieve them
// with Activations. Traces grow with join length, so they default off.
func WithTrace() Option { return func(c *Controller) { c.keepTrace = true } }

// WithCostBudget implements the user-controlled trade-off the paper's
// conclusions call for (§4.4: "the algorithm may be tuned, possibly
// under user control, for a target gain ... while keeping the marginal
// cost over the exact join baseline within a predictable limit"). Once
// the run's modelled cost under the given weights reaches budget, the
// responder pins the engine to lex/rex: completeness stops improving
// but cost grows only at the exact join's unit rate. Budget is in the
// weight model's units (one all-exact step = 1).
func WithCostBudget(w metrics.Weights, budget float64) Option {
	return func(c *Controller) {
		c.budgetWeights = w
		c.budget = budget
		c.hasBudget = true
	}
}

// Attach installs a controller on the engine. parentSide identifies the
// input expected to behave as the parent table R of the parent-child
// relationship (§3.2); parentSize is its expected cardinality |R|.
// Existing OnStep/OnMatch hooks on the engine are preserved and chained
// after the controller's.
func Attach(e *join.Engine, parentSide stream.Side, parentSize int, p Params, opts ...Option) (*Controller, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if e == nil {
		return nil, fmt.Errorf("adaptive: nil engine")
	}
	if parentSize <= 0 && p.Estimator != EstimatorCalibrated {
		return nil, fmt.Errorf("adaptive: parent size %d must be positive (or use EstimatorCalibrated)", parentSize)
	}
	c := &Controller{
		engine:     e,
		params:     p,
		parentSide: parentSide,
		parentSize: parentSize,
	}
	for _, o := range opts {
		o(c)
	}
	if c.hasBudget {
		if err := c.budgetWeights.Validate(); err != nil {
			return nil, fmt.Errorf("adaptive: cost budget: %w", err)
		}
		if c.budget <= 0 {
			return nil, fmt.Errorf("adaptive: cost budget %v must be positive", c.budget)
		}
	}
	c.win[stream.Left] = stats.NewSlidingWindow(p.W)
	c.win[stream.Right] = stats.NewSlidingWindow(p.W)

	prevStep, prevMatch := e.OnStep, e.OnMatch
	e.OnMatch = func(m join.Match) {
		c.onMatch(m)
		if prevMatch != nil {
			prevMatch(m)
		}
	}
	e.OnStep = func(en *join.Engine) {
		c.onStep(en)
		if prevStep != nil {
			prevStep(en)
		}
	}
	return c, nil
}

// Params returns the controller's thresholds.
func (c *Controller) Params() Params { return c.params }

// Activations returns the recorded trace (nil unless WithTrace).
func (c *Controller) Activations() []Activation { return c.trace }

// PastPerturbed returns how many assessments have judged the side
// currently perturbed so far (the π history).
func (c *Controller) PastPerturbed(side stream.Side) int { return c.pastPerturbed[side] }

// WindowCount returns the side's current A_{t,W}.
func (c *Controller) WindowCount(side stream.Side) int { return c.win[side].Count() }

// onMatch feeds the perturbation windows: every non-exact match is an
// "approximate match observed", attributed to one or both sides by the
// flag mechanism of §3.3.
func (c *Controller) onMatch(m join.Match) {
	if m.Exact {
		return
	}
	c.approxSeen++
	if m.Attribution.Blames(stream.Left) {
		c.win[stream.Left].Record(1)
	}
	if m.Attribution.Blames(stream.Right) {
		c.win[stream.Right].Record(1)
	}
}

// onStep advances the windows and, every δadapt steps, runs one MAR
// activation. It executes at a quiescent point, so SetState is safe.
func (c *Controller) onStep(e *join.Engine) {
	step := e.Step()
	c.win[stream.Left].AdvanceTo(step)
	c.win[stream.Right].AdvanceTo(step)
	if step-c.lastActivation < c.params.DeltaAdapt {
		return
	}
	c.lastActivation = step
	c.activate(e)
}

// activate runs monitor → assess → respond once.
func (c *Controller) activate(e *join.Engine) {
	childSide := c.parentSide.Other()
	st := e.Stats()
	obs := Observation{
		Step:               e.Step(),
		Observed:           st.Matches,
		ChildSeen:          st.Read[childSide],
		ParentSeen:         st.Read[c.parentSide],
		ParentSize:         c.parentSize,
		WindowLeft:         c.win[stream.Left].Count(),
		WindowRight:        c.win[stream.Right].Count(),
		PastPerturbedLeft:  c.pastPerturbed[stream.Left],
		PastPerturbedRight: c.pastPerturbed[stream.Right],
	}
	c.cal.observe(c.params, &obs)
	a, err := Assess(c.params, obs)
	if err != nil {
		// Inputs were validated at Attach time; an error here is a
		// programming bug, not a data condition.
		panic(fmt.Sprintf("adaptive: assess: %v", err))
	}
	// Update the π history with this activation's µ verdicts.
	if !a.MuLeft {
		c.pastPerturbed[stream.Left]++
	}
	if !a.MuRight {
		c.pastPerturbed[stream.Right]++
	}

	from := e.State()
	to, forced := c.respond(e, from, a)
	caught := 0
	if to != from {
		caught, err = e.SetState(to)
		if err != nil {
			panic(fmt.Sprintf("adaptive: switch to %v: %v", to, err))
		}
		c.fut.noteSwitch()
	}
	if c.keepTrace {
		c.trace = append(c.trace, Activation{
			Observation: obs, Assessment: a, From: from, To: to,
			CaughtUp: caught, Forced: forced,
		})
	}
}

// respond applies the ϕ rules plus the two opt-in overrides (futility
// revert and cost budget) through the shared gate.
func (c *Controller) respond(e *join.Engine, from join.State, a Assessment) (join.State, string) {
	overBudget := false
	if c.hasBudget {
		overBudget = metrics.Cost(e.Stats(), c.budgetWeights).Total >= c.budget
	}
	return c.fut.respond(c.params, from, a, c.approxSeen, overBudget)
}
