package adaptive

// calibrator holds the state of the calibrated result-size estimator
// (Params.Estimator == EstimatorCalibrated) shared by the sequential
// Controller and the ShardedController: the number of activations
// observed while calibrating, the frozen per-(child·parent) match rate
// κ̂ once calibration ends, and a ring of recent
// (observed, childSeen, parentSeen) triples providing the lagged window
// the change detector tests against.
type calibrator struct {
	seen    int
	kappa   float64
	history [][3]int
}

// observe updates the calibration state from the observation's raw
// counters and fills its calibrated-estimator fields (CalibratedKappa
// and the Prev* lagged counters). It is a no-op for other estimators.
// The activation that freezes κ̂ still assesses as calibrating: the
// kappa exposed to the assessor is the value before this observation.
func (cal *calibrator) observe(p Params, obs *Observation) {
	if p.Estimator != EstimatorCalibrated {
		return
	}
	obs.CalibratedKappa = cal.kappa
	// The change detector compares against the observation from
	// CalibrationActivations activations ago (or the oldest held).
	lag := p.CalibrationActivations
	if n := len(cal.history); n > 0 {
		i := n - lag
		if i < 0 {
			i = 0
		}
		prev := cal.history[i]
		obs.PrevObserved, obs.PrevChildSeen, obs.PrevParentSeen = prev[0], prev[1], prev[2]
	}
	cal.history = append(cal.history, [3]int{obs.Observed, obs.ChildSeen, obs.ParentSeen})
	if len(cal.history) > lag+1 {
		cal.history = cal.history[len(cal.history)-lag-1:]
	}
	if cal.kappa == 0 {
		// Still calibrating. κ = O/(childSeen·parentSeen) estimates
		// 1/|R|; early activations carry few matches and huge relative
		// variance, so calibration runs until both the configured
		// activation count and a minimum match mass have accumulated.
		// The windowed test tolerates the residual estimation error,
		// unlike an absolute test.
		cal.seen++
		const minCalibrationMatches = 30
		if cal.seen >= p.CalibrationActivations &&
			obs.Observed >= minCalibrationMatches &&
			obs.ChildSeen > 0 && obs.ParentSeen > 0 {
			cal.kappa = float64(obs.Observed) / (float64(obs.ChildSeen) * float64(obs.ParentSeen))
		}
	}
}
