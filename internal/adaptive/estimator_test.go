package adaptive

import (
	"testing"

	"adaptivelink/internal/iterator"
	"adaptivelink/internal/join"
	"adaptivelink/internal/stream"
)

func calibratedParams() Params {
	p := testParams()
	p.Estimator = EstimatorCalibrated
	p.CalibrationActivations = 4
	return p
}

func TestEstimatorModeString(t *testing.T) {
	if EstimatorParentChild.String() != "parent-child" ||
		EstimatorCalibrated.String() != "calibrated" ||
		EstimatorMode(9).String() != "EstimatorMode(9)" {
		t.Error("EstimatorMode strings wrong")
	}
}

func TestParamsValidateEstimator(t *testing.T) {
	p := testParams()
	p.Estimator = EstimatorMode(7)
	if p.Validate() == nil {
		t.Error("unknown estimator accepted")
	}
	p = testParams()
	p.Estimator = EstimatorCalibrated
	p.CalibrationActivations = 0
	if p.Validate() == nil {
		t.Error("calibrated estimator with no calibration window accepted")
	}
}

func TestAssessCalibratedNeedsNoParentSize(t *testing.T) {
	p := calibratedParams()
	o := obsBase()
	o.ParentSize = 0 // would fail the parent-child model
	o.CalibratedKappa = 0.001
	o.Observed = 10 // expected 100*100*0.001 = 10
	a, err := Assess(p, o)
	if err != nil {
		t.Fatal(err)
	}
	if a.Sigma {
		t.Errorf("on-expectation observation flagged: %+v", a)
	}
	o.Observed = 0
	a, _ = Assess(p, o)
	if !a.Sigma {
		t.Errorf("zero matches against calibrated expectation not flagged: %+v", a)
	}
}

func TestAssessCalibratedWhileLearning(t *testing.T) {
	p := calibratedParams()
	o := obsBase()
	o.ParentSize = 0
	o.CalibratedKappa = 0 // still calibrating
	o.Observed = 0
	a, err := Assess(p, o)
	if err != nil {
		t.Fatal(err)
	}
	if a.Sigma || a.Tail != 1 {
		t.Errorf("calibrating phase produced evidence: %+v", a)
	}
}

func TestAttachCalibratedWithoutParentSize(t *testing.T) {
	parent, child := buildScenario(3, 100, 0, 0)
	e, _ := join.New(join.Defaults(), stream.FromRelation(parent), stream.FromRelation(child), nil)
	if _, err := Attach(e, stream.Left, 0, calibratedParams()); err != nil {
		t.Fatalf("calibrated mode rejected parentSize=0: %v", err)
	}
	e2, _ := join.New(join.Defaults(), stream.FromRelation(parent), stream.FromRelation(child), nil)
	if _, err := Attach(e2, stream.Left, 0, testParams()); err == nil {
		t.Fatal("parent-child mode accepted parentSize=0")
	}
}

func TestCalibratedCleanDataStaysExact(t *testing.T) {
	parent, child := buildScenario(41, 500, 0, 0)
	e, _ := join.New(join.Defaults(), stream.FromRelation(parent), stream.FromRelation(child), nil)
	c, err := Attach(e, stream.Left, 0, calibratedParams(), WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	iterator.Drain[join.Match](e, nil)
	if e.Stats().Switches != 0 {
		t.Errorf("calibrated controller switched %d times on clean data", e.Stats().Switches)
	}
	// Calibration must have concluded (κ̂ learned) at some point.
	calibrated := false
	for _, a := range c.Activations() {
		if a.Observation.CalibratedKappa > 0 {
			calibrated = true
		}
	}
	if !calibrated {
		t.Error("κ̂ never learned on clean data")
	}
}

func TestCalibratedDetectsVariantBurst(t *testing.T) {
	// Variants well after the calibration prefix: the calibrated model
	// must detect the deficit and recover matches, all without |R|.
	parent, child := buildScenario(43, 500, 200, 300)
	e, _ := join.New(join.Defaults(), stream.FromRelation(parent), stream.FromRelation(child), nil)
	if _, err := Attach(e, stream.Left, 0, calibratedParams()); err != nil {
		t.Fatal(err)
	}
	ms, err := iterator.Drain[join.Match](e, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.Stats().Switches == 0 {
		t.Fatal("calibrated controller never reacted to a 20% burst")
	}
	exact := join.NestedLoopExact(parent, child)
	if len(ms) <= len(exact) {
		t.Errorf("no completeness gain: %d vs exact %d", len(ms), len(exact))
	}
}

func TestCalibratedComparableToParentChild(t *testing.T) {
	// With the same data, the calibrated estimator should recover a
	// broadly similar number of matches as the oracle-|R| model.
	parent, child := buildScenario(47, 600, 250, 380)
	run := func(p Params, size int) int {
		e, _ := join.New(join.Defaults(), stream.FromRelation(parent), stream.FromRelation(child), nil)
		if _, err := Attach(e, stream.Left, size, p); err != nil {
			t.Fatal(err)
		}
		ms, err := iterator.Drain[join.Match](e, nil)
		if err != nil {
			t.Fatal(err)
		}
		return len(ms)
	}
	exact := len(join.NestedLoopExact(parent, child))
	pc := run(testParams(), parent.Len())
	cal := run(calibratedParams(), 0)
	if cal <= exact {
		t.Errorf("calibrated gained nothing: %d vs exact %d (parent-child got %d)", cal, exact, pc)
	}
	// Within 60% of the parent-child model's recovered gain.
	if float64(cal-exact) < 0.4*float64(pc-exact) {
		t.Errorf("calibrated recovery %d far below parent-child %d (exact %d)", cal, pc, exact)
	}
}
