package adaptive

import (
	"testing"

	"adaptivelink/internal/join"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("DefaultParams invalid: %v", err)
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{W: 0, DeltaAdapt: 1, ThetaOut: 0.05},
		{W: 1, DeltaAdapt: 0, ThetaOut: 0.05},
		{W: 1, DeltaAdapt: 1, ThetaOut: 0},
		{W: 1, DeltaAdapt: 1, ThetaOut: 1},
		{W: 1, DeltaAdapt: 1, ThetaOut: 0.05, ThetaCurPert: -1},
		{W: 1, DeltaAdapt: 1, ThetaOut: 0.05, ThetaPastPert: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d validated: %+v", i, p)
		}
	}
}

func obsBase() Observation {
	return Observation{
		Step: 200, ChildSeen: 100, ParentSeen: 100, ParentSize: 1000,
	}
}

func TestAssessSigmaDetectsDeficit(t *testing.T) {
	p := DefaultParams()
	// p(n) = 0.1, n = 100 trials: expected ~10 matches. Zero observed is
	// a blatant outlier; ten observed is not.
	o := obsBase()
	o.Observed = 0
	a, err := Assess(p, o)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Sigma {
		t.Errorf("0/100 at p=0.1 not flagged: tail=%v", a.Tail)
	}
	o.Observed = 10
	a, _ = Assess(p, o)
	if a.Sigma {
		t.Errorf("10/100 at p=0.1 flagged: tail=%v", a.Tail)
	}
}

func TestAssessNoTrialsNoEvidence(t *testing.T) {
	o := obsBase()
	o.ChildSeen = 0
	a, err := Assess(DefaultParams(), o)
	if err != nil {
		t.Fatal(err)
	}
	if a.Sigma || a.Tail != 1 {
		t.Errorf("no trials produced evidence: %+v", a)
	}
}

func TestAssessClampsProbAndObserved(t *testing.T) {
	o := obsBase()
	o.ParentSeen = 2000 // beyond the estimated |R|
	o.Observed = 150    // more matches than trials (duplicates)
	a, err := Assess(DefaultParams(), o)
	if err != nil {
		t.Fatal(err)
	}
	if a.P != 1 {
		t.Errorf("p not clamped: %v", a.P)
	}
	if a.Sigma {
		t.Error("over-full result flagged as deficit")
	}
}

func TestAssessMuThresholds(t *testing.T) {
	p := DefaultParams() // W=100, ThetaCurPert=0.02 → boundary at 2 events
	o := obsBase()
	o.WindowLeft, o.WindowRight = 2, 3
	a, err := Assess(p, o)
	if err != nil {
		t.Fatal(err)
	}
	if !a.MuLeft {
		t.Error("2 events in window of 100 should still be unperturbed (boundary)")
	}
	if a.MuRight {
		t.Error("3 events in window of 100 should be perturbed")
	}
}

func TestAssessPiThresholds(t *testing.T) {
	p := DefaultParams() // ThetaPastPert=3
	o := obsBase()
	o.PastPerturbedLeft, o.PastPerturbedRight = 3, 4
	a, err := Assess(p, o)
	if err != nil {
		t.Fatal(err)
	}
	if !a.PiLeft {
		t.Error("3 past perturbations at threshold 3 should pass")
	}
	if a.PiRight {
		t.Error("4 past perturbations at threshold 3 should fail")
	}
}

func TestAssessRejectsBadInputs(t *testing.T) {
	o := obsBase()
	o.ParentSize = 0
	if _, err := Assess(DefaultParams(), o); err == nil {
		t.Error("ParentSize=0 accepted")
	}
	o = obsBase()
	o.Observed = -1
	if _, err := Assess(DefaultParams(), o); err == nil {
		t.Error("negative Observed accepted")
	}
	if _, err := Assess(Params{}, obsBase()); err == nil {
		t.Error("invalid params accepted")
	}
}

func asmt(sigma, muL, muR, piL, piR bool) Assessment {
	return Assessment{Sigma: sigma, MuLeft: muL, MuRight: muR, PiLeft: piL, PiRight: piR}
}

func TestDecideTransitions(t *testing.T) {
	cases := []struct {
		name string
		cur  join.State
		a    Assessment
		want join.State
	}{
		// ϕ0: no variants, both clean → exact everywhere.
		{"phi0 self-loop", join.LexRex, asmt(false, true, true, true, true), join.LexRex},
		{"phi0 from lap/rap", join.LapRap, asmt(false, true, true, true, true), join.LexRex},
		{"phi0 from lap/rex", join.LapRex, asmt(false, true, true, false, false), join.LexRex},
		// ϕ1: variants, origin unknown → both approximate.
		{"phi1 both perturbed", join.LexRex, asmt(true, false, false, true, true), join.LapRap},
		{"phi1 from hybrid", join.LapRex, asmt(true, false, false, false, false), join.LapRap},
		// ϕ1 from lex/rex with empty windows: σ alone forces the exit.
		{"phi1 lex/rex no evidence", join.LexRex, asmt(true, true, true, true, true), join.LapRap},
		// ϕ2: left currently perturbed, right clean, left past-clean.
		{"phi2", join.LexRex, asmt(true, false, true, true, true), join.LapRex},
		{"phi2 needs piLeft", join.LapRap, asmt(true, false, true, false, true), join.LapRap},
		// ϕ3: symmetric.
		{"phi3", join.LexRex, asmt(true, true, false, true, true), join.LexRap},
		{"phi3 needs piRight", join.LapRap, asmt(true, true, false, true, false), join.LapRap},
		// No rule: keep state.
		{"no rule keeps state", join.LapRap, asmt(true, true, true, true, true), join.LapRap},
		{"no sigma one side dirty keeps state", join.LexRap, asmt(false, false, true, true, true), join.LexRap},
	}
	for _, c := range cases {
		if got := Decide(c.cur, c.a); got != c.want {
			t.Errorf("%s: Decide(%v, %+v) = %v, want %v", c.name, c.cur, c.a, got, c.want)
		}
	}
}

// Exhaustive sanity: Decide always returns a valid state and is a pure
// function of its inputs.
func TestDecideTotal(t *testing.T) {
	bools := []bool{false, true}
	for _, cur := range join.AllStates {
		for _, s := range bools {
			for _, ml := range bools {
				for _, mr := range bools {
					for _, pl := range bools {
						for _, pr := range bools {
							a := asmt(s, ml, mr, pl, pr)
							got := Decide(cur, a)
							valid := false
							for _, st := range join.AllStates {
								if got == st {
									valid = true
								}
							}
							if !valid {
								t.Fatalf("Decide(%v, %+v) = %v invalid", cur, a, got)
							}
							if got != Decide(cur, a) {
								t.Fatal("Decide not deterministic")
							}
						}
					}
				}
			}
		}
	}
}

// The paper's guarantee: when in a non-exact state and recent matches
// show no variants, with no size deficit, the algorithm reverts to
// lex/rex (the "long sequence of consistently high similarities" rule).
func TestDecideRevertsToExact(t *testing.T) {
	for _, cur := range []join.State{join.LapRap, join.LapRex, join.LexRap} {
		if got := Decide(cur, asmt(false, true, true, true, true)); got != join.LexRex {
			t.Errorf("from %v: got %v, want lex/rex", cur, got)
		}
	}
}
