package adaptive

import "adaptivelink/internal/join"

// DecisionEvent is one activation of the monitor–assess–respond loop
// rendered for explainability: what the σ deficit test saw, what it
// concluded, and why the responder kept or changed the state. Events
// are emitted by the session ProbeLoop and the sharded batch controller
// through SetDecisionSink, and surface in the `/v1/link` explain API
// and `adaptivejoin -explain`.
type DecisionEvent struct {
	// Step is the loop's step clock at the activation (probes for a
	// session loop, tuples read for the batch controller).
	Step int
	// Observed is the observed result size O̅ₜ (hits so far).
	Observed int
	// Expected is the §3.2 model's expected result size at this step
	// (p̂ · child tuples seen) — what Observed is tested against.
	Expected float64
	// Tail is the binomial CDF tail probability of seeing Observed or
	// fewer hits; σ fires when it drops to ThetaOut or below.
	Tail float64
	// Sigma reports whether the deficit predicate fired.
	Sigma bool
	// From and To are the processor states around the respond step.
	From, To join.State
	// Forced is "" for a free statistical decision, "budget" when the
	// cost budget pinned the state, "futility" when the futility gate
	// overrode an escalation.
	Forced string
	// Reason is a compact human-readable decision label; see
	// DecisionReason.
	Reason string
	// Spend is the modelled cost after this activation, in
	// all-exact-step units (includes the transition weight when the
	// activation switched).
	Spend float64
}

// DecisionReason labels an activation's respond outcome:
//
//	"budget"       — cost budget pinned the state (forced)
//	"futility"     — futility gate overrode an escalation (forced)
//	"deficit"      — σ fired and the state moved
//	"deficit-held" — σ fired but the transition rules kept the state
//	"window-clear" — windows emptied and the state moved back
//	"steady"       — no deficit, no movement
func DecisionReason(from, to join.State, sigma bool, forced string) string {
	if forced != "" {
		return forced
	}
	if from == to {
		if sigma {
			return "deficit-held"
		}
		return "steady"
	}
	if sigma {
		return "deficit"
	}
	return "window-clear"
}

// DecisionSink receives one event per activation, synchronously on the
// activating goroutine. Sinks must be fast and must not call back into
// the loop/controller that invoked them (the sharded controller emits
// while holding its mutex).
type DecisionSink func(DecisionEvent)

// SetDecisionSink installs (or, with nil, removes) the loop's decision
// sink. Not safe to call concurrently with probing.
func (l *ProbeLoop) SetDecisionSink(sink DecisionSink) { l.sink = sink }

// SetDecisionSink installs (or, with nil, removes) the controller's
// decision sink. The sink runs under the controller's mutex: it must
// not call controller methods. Not safe to call concurrently with a
// running join.
func (c *ShardedController) SetDecisionSink(sink DecisionSink) {
	c.mu.Lock()
	c.sink = sink
	c.mu.Unlock()
}

// emitDecision renders one activation as a DecisionEvent.
func emitDecision(sink DecisionSink, obs Observation, a Assessment, from, to join.State, forced string, spend float64) {
	sink(DecisionEvent{
		Step:     obs.Step,
		Observed: obs.Observed,
		Expected: a.P * float64(obs.ChildSeen),
		Tail:     a.Tail,
		Sigma:    a.Sigma,
		From:     from,
		To:       to,
		Forced:   forced,
		Reason:   DecisionReason(from, to, a.Sigma, forced),
		Spend:    spend,
	})
}
