package adaptive

import "adaptivelink/internal/join"

// futilityGate holds the state of the §3.5 futility extension
// (Params.FutilityK) shared by the sequential Controller and the
// ShardedController, and runs the responder around the ϕ rules so the
// revert/suppression semantics cannot drift between the two loops.
type futilityGate struct {
	approxSeenPrev int
	streak         int
	suppress       bool
}

// respond applies the futility bookkeeping, the caller's budget verdict
// and the ϕ rules, in the responder's canonical order: streak
// accounting first, then the budget pin (which preempts everything),
// then the futility revert and σ suppression, then Decide. approxSeen
// is the running count of non-exact matches; overBudget is false for
// controllers without a cost budget.
func (f *futilityGate) respond(p Params, from join.State, a Assessment, approxSeen int, overBudget bool) (join.State, string) {
	if p.FutilityK > 0 {
		// A streak of activations in a non-exact state during which
		// approximate matching produced nothing.
		if from != join.LexRex && approxSeen == f.approxSeenPrev {
			f.streak++
		} else {
			f.streak = 0
		}
		f.approxSeenPrev = approxSeen
		// σ stays suppressed after a futility revert until the deficit
		// estimate clears on its own.
		if !a.Sigma {
			f.suppress = false
		}
	}
	if overBudget {
		return join.LexRex, "budget"
	}
	if p.FutilityK > 0 {
		if f.streak >= p.FutilityK && from != join.LexRex {
			f.streak = 0
			f.suppress = true
			return join.LexRex, "futility"
		}
		if f.suppress {
			a.Sigma = false
		}
	}
	return Decide(from, a), ""
}

// noteSwitch resets the streak after an enacted state change.
func (f *futilityGate) noteSwitch() { f.streak = 0 }
