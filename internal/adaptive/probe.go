package adaptive

import (
	"fmt"

	"adaptivelink/internal/join"
	"adaptivelink/internal/metrics"
	"adaptivelink/internal/stats"
	"adaptivelink/internal/stream"
)

// ProbeLoop is the Monitor–Assess–Respond control loop of Fig. 1
// re-targeted at the resident index-once/probe-many mode (join.RefIndex):
// one loop per probe *session*, with one engine step per probe, instead
// of one loop per batch run.
//
// The statistical machinery is reused verbatim — the binomial deficit
// predicate σ, the per-side window predicates µ/π and the transition
// rules ϕ₀..ϕ₃ all run through the same Assess/Decide/futilityGate code
// as the batch Controller — under the resident-mode specialisation of
// the §3.2 observation model:
//
//   - The reference side is fully resident, so ParentSeen = ParentSize
//     and the per-trial match probability p(n) is 1: under parent–child
//     integrity every probe is expected to match, and any persistent
//     shortfall of hits against probes is significant evidence of
//     variants in the probe stream.
//   - Only the probe side ever runs an operator, so the reference-side
//     window is structurally empty (µ_left always holds) and the ϕ rules
//     degenerate to the three reachable states lex/rex, lex/rap and
//     lap/rap — whose probe-side mode is all the session consults.
//   - Switches are free: both resident indexes are always up to date, so
//     there is no catch-up to amortise and DeltaAdapt defaults to 1 —
//     the loop may assess after every probe, which is what enables
//     per-probe exact→approximate escalation (NoteProbe returns true
//     when the probe that just missed fired σ and the session switched,
//     so the caller can re-run that same probe approximately).
//
// A ProbeLoop is not safe for concurrent use; give each session its own.
type ProbeLoop struct {
	params Params

	state          join.State
	probes         int // t: one step per probe
	hits           int // observed result size O̅ₜ: probes with ≥1 match
	win            *stats.SlidingWindow
	past           int // past assessments at which the probe side appeared perturbed
	lastActivation int
	switches       int

	approxSeen int
	fut        futilityGate

	weights   metrics.Weights
	budget    float64
	hasBudget bool
	spend     float64

	trace     []Activation
	keepTrace bool
	sink      DecisionSink
}

// DefaultProbeParams returns the session defaults: the paper's W, θout,
// θcurpert and θpastpert, with δadapt lowered to 1 — resident-mode
// switches have no catch-up cost, so the loop can afford to assess at
// every probe and escalate the very probe that exposed a deficit.
func DefaultProbeParams() Params {
	p := DefaultParams()
	p.DeltaAdapt = 1
	return p
}

// NewProbeLoop builds a session loop starting in the optimistic all-exact
// state. The loop models probe work under the paper's weights so
// Spend() is always available; EnableCostBudget makes it enforceable.
func NewProbeLoop(p Params) (*ProbeLoop, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Estimator != EstimatorParentChild {
		return nil, fmt.Errorf("adaptive: probe loop supports only the parent-child estimator (the resident reference makes p(n)=1 exact, no calibration needed)")
	}
	return &ProbeLoop{
		params:  p,
		state:   join.LexRex,
		win:     stats.NewSlidingWindow(p.W),
		weights: metrics.PaperWeights(),
	}, nil
}

// EnableTrace records every activation; retrieve them with Activations.
func (l *ProbeLoop) EnableTrace() { l.keepTrace = true }

// EnableCostBudget pins the session to exact probing once its modelled
// spend (Spend) reaches budget, in all-exact-step units.
func (l *ProbeLoop) EnableCostBudget(w metrics.Weights, budget float64) error {
	if err := w.Validate(); err != nil {
		return err
	}
	if budget <= 0 {
		return fmt.Errorf("adaptive: cost budget %v must be positive", budget)
	}
	l.weights = w
	l.budget = budget
	l.hasBudget = true
	return nil
}

// Params returns the loop's thresholds.
func (l *ProbeLoop) Params() Params { return l.params }

// State returns the session's processor state. Only the probe side's
// mode (State().Mode(stream.Right)) affects matching.
func (l *ProbeLoop) State() join.State { return l.state }

// Mode returns the probe-side matching mode.
func (l *ProbeLoop) Mode() join.Mode { return l.state.Mode(stream.Right) }

// Probes returns the number of probes observed (the step counter t).
func (l *ProbeLoop) Probes() int { return l.probes }

// Hits returns the number of probes that found at least one match (the
// observed result size the deficit test consumes).
func (l *ProbeLoop) Hits() int { return l.hits }

// Switches returns the number of enacted state changes.
func (l *ProbeLoop) Switches() int { return l.switches }

// Spend returns the session's modelled cost in all-exact-step units:
// each probe costs its state's step weight, each switch the target
// state's transition weight, and an escalated re-probe one extra
// approximate step.
func (l *ProbeLoop) Spend() float64 { return l.spend }

// Activations returns the recorded trace (nil unless EnableTrace).
func (l *ProbeLoop) Activations() []Activation { return l.trace }

// NoteProbe observes one completed probe: refSize is the resident
// reference cardinality, hit whether the probe returned any match, and
// approxMatches how many of its matches were non-exact (they feed the
// probe-side perturbation window). It advances the step clock, runs an
// activation when due, and returns true when the caller should escalate
// — the probe missed under exact matching and the activation it
// triggered switched the session to approximate probing, so re-running
// this same probe approximately recovers the match whose absence fired σ.
func (l *ProbeLoop) NoteProbe(refSize int, hit bool, approxMatches int) (escalate bool) {
	wasExact := l.Mode() == join.Exact
	l.probes++
	if hit {
		l.hits++
	}
	if approxMatches > 0 {
		l.win.Record(approxMatches)
		l.approxSeen += approxMatches
	}
	l.spend += l.weights.Step[l.state.Index()]
	l.win.AdvanceTo(l.probes)
	if l.probes-l.lastActivation >= l.params.DeltaAdapt {
		l.activate(refSize)
	}
	return wasExact && l.Mode() == join.Approx && !hit
}

// BatchOutcome is one probe's observation inside a batch: whether it
// hit and how many of its matches were non-exact.
type BatchOutcome struct {
	Hit           bool
	ApproxMatches int
}

// NoteBatch feeds a batch of probe outcomes into the loop in order,
// stopping as soon as the probe mode changes — the point at which the
// caller's remaining already-probed results were computed under a stale
// operator and must be re-probed. It returns how many outcomes were
// consumed and whether the last consumed probe should be escalated
// (re-run approximately, then reported via NoteEscalation, exactly as
// for NoteProbe).
//
// Feeding outcomes through NoteBatch is observation-for-observation
// identical to calling NoteProbe in a loop: batching amortises the
// index work, never the statistics.
func (l *ProbeLoop) NoteBatch(refSize int, outs []BatchOutcome) (consumed int, escalate bool) {
	mode := l.Mode()
	for _, o := range outs {
		esc := l.NoteProbe(refSize, o.Hit, o.ApproxMatches)
		consumed++
		if esc {
			return consumed, true
		}
		if l.Mode() != mode {
			return consumed, false
		}
	}
	return consumed, false
}

// NoteEscalation folds an escalated re-probe's outcome into the session
// statistics: the probe previously counted as a miss becomes a hit when
// the approximate re-probe matched, its non-exact matches feed the
// window, and the re-probe is charged one approximate step.
func (l *ProbeLoop) NoteEscalation(hit bool, approxMatches int) {
	if hit {
		l.hits++
	}
	if approxMatches > 0 {
		l.win.Record(approxMatches)
		l.approxSeen += approxMatches
	}
	l.spend += l.weights.Step[l.state.Index()]
}

// activate runs monitor → assess → respond once, against the resident
// observation model. An empty reference yields no evidence (every probe
// trivially misses), so activation is skipped until the first upsert.
func (l *ProbeLoop) activate(refSize int) {
	l.lastActivation = l.probes
	if refSize <= 0 {
		return
	}
	obs := Observation{
		Step:        l.probes,
		Observed:    l.hits,
		ChildSeen:   l.probes,
		ParentSeen:  refSize,
		ParentSize:  refSize,
		WindowRight: l.win.Count(),
		// The reference side never probes: its window is structurally
		// empty and its history clean, exactly like the engine's lex side
		// in state lex/rap.
		WindowLeft:         0,
		PastPerturbedLeft:  0,
		PastPerturbedRight: l.past,
	}
	a, err := Assess(l.params, obs)
	if err != nil {
		// Inputs were validated at construction; an error here is a
		// programming bug, not a data condition.
		panic(fmt.Sprintf("adaptive: probe assess: %v", err))
	}
	if !a.MuRight {
		l.past++
	}
	from := l.state
	overBudget := l.hasBudget && l.spend >= l.budget
	to, forced := l.fut.respond(l.params, from, a, l.approxSeen, overBudget)
	if to != from {
		l.state = to
		l.switches++
		l.spend += l.weights.Transition[to.Index()]
		l.fut.noteSwitch()
	}
	if l.keepTrace {
		l.trace = append(l.trace, Activation{
			Observation: obs, Assessment: a, From: from, To: to, Forced: forced,
		})
	}
	if l.sink != nil {
		emitDecision(l.sink, obs, a, from, to, forced, l.spend)
	}
}
