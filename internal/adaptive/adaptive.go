// Package adaptive implements the Monitor–Assess–Respond control loop of
// the paper (Fig. 1) on top of the hybrid join engine.
//
// Every δadapt engine steps the controller activates:
//
//   - The monitor reads the observed result size O̅ₜ, the per-side
//     counts of recent approximate matches A_{t,W} (sliding windows fed
//     by match attribution, §3.3), and the scan progress.
//   - The assessor evaluates the predicates of Table 2: σ (binomial-tail
//     outlier test on the result size, §3.2), µᵢ (side i unlikely to be
//     currently perturbed) and πᵢ (side i unlikely to have ever been
//     perturbed).
//   - The responder maps the predicate vector to a target state of the
//     Fig. 4 machine through the transition rules ϕ₀..ϕ₃ (§3.5) and
//     enacts any change via Engine.SetState, which is safe because the
//     activation runs at a quiescent point.
//
// Two deliberate deviations from the paper's formal notation, both
// required for the described behaviour to be realisable (see DESIGN.md):
//
//  1. πᵢ counts past assessments at which side i *appeared perturbed*
//     (Σ I(¬µᵢ) ≤ θpastpert). The paper's Table 2 literally sums I(µᵢ),
//     which would make a historically clean input fail its own
//     "significantly free of past perturbations" reading.
//  2. In state lex/rex no approximate operator runs, so the windows are
//     structurally empty and µ carries no information; the σ signal
//     alone must force the transition out of lex/rex ("the σ component
//     ... is specifically responsible for the transition out of
//     lex/rex"). The responder therefore fires ϕ₁ from lex/rex on σ
//     regardless of µ.
package adaptive

import "fmt"

// Params holds the thresholds of Table 3 (θsim lives in join.Config).
type Params struct {
	// W is the sliding-window size, in engine steps.
	W int
	// DeltaAdapt is the number of steps between control-loop
	// activations (δadapt).
	DeltaAdapt int
	// ThetaOut is the binomial-tail significance level θout for the
	// outlier predicate σ.
	ThetaOut float64
	// ThetaCurPert is the maximum in-window approximate-match rate
	// A_{t,W}/W for a side to be considered unperturbed (µ). The
	// paper's best setting "θcurpert = 2" is a count against W = 100;
	// as a rate that is 0.02.
	ThetaCurPert float64
	// ThetaPastPert is the maximum number of past assessments at which
	// a side may have appeared perturbed while still counting as
	// "significantly free of past perturbations" (π). Paper: 2–5.
	ThetaPastPert int

	// Estimator selects the result-size model behind σ. The default,
	// EstimatorParentChild, is the paper's §3.2 model and requires the
	// parent cardinality |R|. EstimatorCalibrated self-calibrates the
	// per-trial match rate from the first CalibrationActivations
	// control-loop firings (query-feedback estimation in the spirit of
	// Chen & Roussopoulos, the paper's ref. [6]) and needs no |R| —
	// at the price of assuming the calibration prefix is mostly
	// variant-free.
	Estimator EstimatorMode
	// CalibrationActivations is how many activations feed the
	// calibrated estimator before σ starts firing (default 5 via
	// DefaultParams; only used with EstimatorCalibrated).
	CalibrationActivations int

	// FutilityK enables the extension the paper leaves as future work
	// in §3.5: "reverting to exact join could also be motivated by
	// realizing that the approximate join does not help in increasing
	// the observed result size (e.g., because the estimate was simply
	// wrong)". With FutilityK = k > 0, spending k consecutive
	// activations in a non-exact state without a single new approximate
	// match reverts to lex/rex and suppresses the σ signal until it
	// clears on its own. 0 (default) disables the rule, matching the
	// paper's assessor.
	FutilityK int
}

// EstimatorMode selects the statistical model behind the σ predicate.
type EstimatorMode int

const (
	// EstimatorParentChild is the paper's model: expected result size
	// from a known parent cardinality (§3.2).
	EstimatorParentChild EstimatorMode = iota
	// EstimatorCalibrated learns the expected match rate from the run's
	// own early observations instead of requiring |R|.
	EstimatorCalibrated
)

// String names the estimator.
func (m EstimatorMode) String() string {
	switch m {
	case EstimatorParentChild:
		return "parent-child"
	case EstimatorCalibrated:
		return "calibrated"
	default:
		return fmt.Sprintf("EstimatorMode(%d)", int(m))
	}
}

// DefaultParams returns the best settings reported in §4.2: W = 100,
// δadapt = 100, θout = 0.05, θcurpert = 2/W, θpastpert = 3.
func DefaultParams() Params {
	return Params{
		W:                      100,
		DeltaAdapt:             100,
		ThetaOut:               0.05,
		ThetaCurPert:           0.02,
		ThetaPastPert:          3,
		CalibrationActivations: 5,
	}
}

// Validate reports the first invalid field, if any.
func (p Params) Validate() error {
	if p.W < 1 {
		return fmt.Errorf("adaptive: window size W=%d < 1", p.W)
	}
	if p.DeltaAdapt < 1 {
		return fmt.Errorf("adaptive: activation period δadapt=%d < 1", p.DeltaAdapt)
	}
	if p.ThetaOut <= 0 || p.ThetaOut >= 1 {
		return fmt.Errorf("adaptive: θout=%v outside (0,1)", p.ThetaOut)
	}
	if p.ThetaCurPert < 0 {
		return fmt.Errorf("adaptive: θcurpert=%v negative", p.ThetaCurPert)
	}
	if p.ThetaPastPert < 0 {
		return fmt.Errorf("adaptive: θpastpert=%d negative", p.ThetaPastPert)
	}
	if p.FutilityK < 0 {
		return fmt.Errorf("adaptive: futility threshold %d negative", p.FutilityK)
	}
	switch p.Estimator {
	case EstimatorParentChild:
	case EstimatorCalibrated:
		if p.CalibrationActivations < 1 {
			return fmt.Errorf("adaptive: calibrated estimator needs CalibrationActivations >= 1, got %d", p.CalibrationActivations)
		}
	default:
		return fmt.Errorf("adaptive: unknown estimator mode %d", int(p.Estimator))
	}
	return nil
}
