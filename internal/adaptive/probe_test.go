package adaptive

import (
	"testing"

	"adaptivelink/internal/join"
	"adaptivelink/internal/metrics"
)

func newTestProbeLoop(t *testing.T, mut func(*Params)) *ProbeLoop {
	t.Helper()
	p := DefaultProbeParams()
	if mut != nil {
		mut(&p)
	}
	l, err := NewProbeLoop(p)
	if err != nil {
		t.Fatalf("NewProbeLoop: %v", err)
	}
	return l
}

func TestProbeLoopValidation(t *testing.T) {
	p := DefaultProbeParams()
	p.W = 0
	if _, err := NewProbeLoop(p); err == nil {
		t.Fatal("invalid params accepted")
	}
	p = DefaultProbeParams()
	p.Estimator = EstimatorCalibrated
	if _, err := NewProbeLoop(p); err == nil {
		t.Fatal("calibrated estimator accepted; resident mode has an exact p(n)")
	}
	l := newTestProbeLoop(t, nil)
	if err := l.EnableCostBudget(metrics.PaperWeights(), 0); err == nil {
		t.Fatal("zero budget accepted")
	}
	if err := l.EnableCostBudget(metrics.Weights{}, 10); err == nil {
		t.Fatal("invalid weights accepted")
	}
	if l.Params().DeltaAdapt != 1 {
		t.Fatalf("DefaultProbeParams δadapt = %d, want 1", l.Params().DeltaAdapt)
	}
}

// TestProbeLoopEscalatesOnDeficit is the per-probe escalation contract:
// with the reference fully resident, p(n) = 1, so the first miss is a
// significant deficit, the session switches to approximate probing, and
// NoteProbe tells the caller to re-run that same probe.
func TestProbeLoopEscalatesOnDeficit(t *testing.T) {
	l := newTestProbeLoop(t, nil)
	l.EnableTrace()
	const ref = 100
	for i := 0; i < 10; i++ {
		if esc := l.NoteProbe(ref, true, 0); esc {
			t.Fatalf("probe %d: escalation while every probe hits", i)
		}
		if l.Mode() != join.Exact {
			t.Fatalf("probe %d: mode %v, want exact", i, l.Mode())
		}
	}
	if !l.NoteProbe(ref, false, 0) {
		t.Fatal("miss under p=1 did not escalate")
	}
	if l.Mode() != join.Approx {
		t.Fatalf("mode after deficit = %v, want approx", l.Mode())
	}
	if st := l.State(); st.Mode(1) != join.Approx {
		t.Fatalf("State() = %v, probe side not approx", st)
	}
	// The escalated re-probe recovered the match: the deficit clears and
	// the single windowed approximate match is below θcurpert·W, so the
	// next activation reverts to exact probing (ϕ₀).
	l.NoteEscalation(true, 1)
	l.NoteProbe(ref, true, 0)
	if l.Mode() != join.Exact {
		t.Fatalf("mode after recovery = %v, want exact", l.Mode())
	}
	if l.Switches() != 2 {
		t.Fatalf("switches = %d, want 2 (out and back)", l.Switches())
	}
	if l.Hits() != l.Probes() {
		t.Fatalf("hits %d != probes %d after recovered escalation", l.Hits(), l.Probes())
	}
	if len(l.Activations()) == 0 {
		t.Fatal("trace empty with EnableTrace")
	}
}

// TestProbeLoopStaysApproxWhilePerturbed: clustered variants keep the
// windowed approximate-match rate above θcurpert, so the session stays
// in approximate mode until the window drains.
func TestProbeLoopStaysApproxWhilePerturbed(t *testing.T) {
	l := newTestProbeLoop(t, nil)
	const ref = 1000
	l.NoteProbe(ref, false, 0) // deficit -> approx
	l.NoteEscalation(true, 1)
	for i := 0; i < 5; i++ {
		// Approximate probes finding variant matches: two non-exact
		// matches per probe keep the windowed rate above θcurpert.
		l.NoteProbe(ref, true, 2)
		if l.Mode() != join.Approx {
			t.Fatalf("variant burst probe %d: reverted early", i)
		}
	}
	// A clean stretch longer than W drains the window and reverts.
	for i := 0; i < l.Params().W+1; i++ {
		l.NoteProbe(ref, true, 0)
	}
	if l.Mode() != join.Exact {
		t.Fatalf("mode after clean stretch = %v, want exact", l.Mode())
	}
}

// TestProbeLoopFutilityRevert: a probe key with no counterpart at all
// leaves a permanent deficit under p=1; the futility rule is what stops
// it pinning the session to approximate probing forever.
func TestProbeLoopFutilityRevert(t *testing.T) {
	l := newTestProbeLoop(t, func(p *Params) { p.FutilityK = 3 })
	l.EnableTrace()
	const ref = 50
	l.NoteProbe(ref, false, 0) // deficit -> approx
	l.NoteEscalation(false, 0) // approximate re-probe finds nothing either
	for i := 0; i < 10 && l.Mode() == join.Approx; i++ {
		l.NoteProbe(ref, false, 0)
		l.NoteEscalation(false, 0)
	}
	if l.Mode() != join.Exact {
		t.Fatal("futility rule did not revert a fruitless approximate session")
	}
	var forced bool
	for _, a := range l.Activations() {
		if a.Forced == "futility" {
			forced = true
		}
	}
	if !forced {
		t.Fatal("no activation recorded Forced=futility")
	}
	// σ stays suppressed: further misses do not re-escalate.
	for i := 0; i < 5; i++ {
		if l.NoteProbe(ref, false, 0) {
			t.Fatal("suppressed σ re-escalated")
		}
	}
}

// TestProbeLoopCostBudget: once the modelled session spend reaches the
// budget the responder pins exact probing, deficit or not.
func TestProbeLoopCostBudget(t *testing.T) {
	l := newTestProbeLoop(t, nil)
	l.EnableTrace()
	if err := l.EnableCostBudget(metrics.PaperWeights(), 3); err != nil {
		t.Fatalf("EnableCostBudget: %v", err)
	}
	const ref = 50
	// Three exact probes exhaust the budget (w_EE = 1 each)...
	for i := 0; i < 3; i++ {
		l.NoteProbe(ref, true, 0)
	}
	// ...so the miss that would have escalated is pinned instead.
	if l.NoteProbe(ref, false, 0) {
		t.Fatal("over-budget session escalated")
	}
	if l.Mode() != join.Exact {
		t.Fatalf("over-budget mode = %v, want exact", l.Mode())
	}
	var forced bool
	for _, a := range l.Activations() {
		if a.Forced == "budget" {
			forced = true
		}
	}
	if !forced {
		t.Fatal("no activation recorded Forced=budget")
	}
	if l.Spend() < 3 {
		t.Fatalf("Spend = %v, want >= 3", l.Spend())
	}
}

// TestProbeLoopEmptyReference: with nothing resident there is no
// evidence of anything; the loop never escalates.
func TestProbeLoopEmptyReference(t *testing.T) {
	l := newTestProbeLoop(t, nil)
	for i := 0; i < 20; i++ {
		if l.NoteProbe(0, false, 0) {
			t.Fatal("escalated against an empty reference")
		}
	}
	if l.Mode() != join.Exact {
		t.Fatalf("mode = %v, want exact", l.Mode())
	}
}

// TestProbeLoopDeltaAdaptBatches: with δadapt > 1 the loop assesses on
// the activation grid, like the batch controller.
func TestProbeLoopDeltaAdaptBatches(t *testing.T) {
	l := newTestProbeLoop(t, func(p *Params) { p.DeltaAdapt = 10 })
	const ref = 100
	// Nine misses: no activation yet, still exact.
	for i := 0; i < 9; i++ {
		if l.NoteProbe(ref, false, 0) {
			t.Fatalf("probe %d escalated before the activation grid", i)
		}
	}
	// The 10th triggers the activation; the deficit is overwhelming.
	if !l.NoteProbe(ref, false, 0) {
		t.Fatal("grid activation did not escalate")
	}
}

// TestProbeLoopNoteBatchMatchesNoteProbe: feeding a random outcome
// stream through NoteBatch in arbitrary splits is observation-for-
// observation identical to a NoteProbe loop, and NoteBatch stops
// exactly at mode changes so callers re-probe under the new operator.
func TestProbeLoopNoteBatchMatchesNoteProbe(t *testing.T) {
	outcomes := make([]BatchOutcome, 0, 200)
	// A stream with hit droughts (deficit -> escalation) and approx
	// recoveries (perturbation window activity -> revert later).
	for i := 0; i < 200; i++ {
		o := BatchOutcome{Hit: i%7 != 0}
		if !o.Hit && i%3 == 0 {
			o.ApproxMatches = 1 + i%2
		}
		outcomes = append(outcomes, o)
	}
	const ref = 100
	seq := newTestProbeLoop(t, nil)
	type obs struct {
		escalate bool
		mode     join.Mode
	}
	want := make([]obs, len(outcomes))
	for i, o := range outcomes {
		want[i] = obs{seq.NoteProbe(ref, o.Hit, o.ApproxMatches), seq.Mode()}
		if want[i].escalate {
			seq.NoteEscalation(o.ApproxMatches > 0, o.ApproxMatches)
		}
	}
	for _, split := range []int{1, 3, 50, len(outcomes)} {
		bat := newTestProbeLoop(t, nil)
		i := 0
		for i < len(outcomes) {
			hi := i + split
			if hi > len(outcomes) {
				hi = len(outcomes)
			}
			consumed, escalate := bat.NoteBatch(ref, outcomes[i:hi])
			if consumed < 1 || consumed > hi-i {
				t.Fatalf("split %d at %d: consumed %d of %d", split, i, consumed, hi-i)
			}
			last := i + consumed - 1
			if escalate != want[last].escalate {
				t.Fatalf("split %d: escalate %v at %d, want %v", split, escalate, last, want[last].escalate)
			}
			if bat.Mode() != want[last].mode {
				t.Fatalf("split %d: mode %v after %d, want %v", split, bat.Mode(), last, want[last].mode)
			}
			if escalate {
				o := outcomes[last]
				bat.NoteEscalation(o.ApproxMatches > 0, o.ApproxMatches)
			}
			// NoteBatch may stop short only at a mode change or batch end.
			if consumed < hi-i && !escalate {
				prev := join.Exact
				if last > 0 {
					prev = want[last-1].mode
				}
				if want[last].mode == prev {
					t.Fatalf("split %d: stopped at %d without a mode change", split, last)
				}
			}
			i += consumed
		}
		if bat.Probes() != seq.Probes() || bat.Hits() != seq.Hits() ||
			bat.Switches() != seq.Switches() || bat.Spend() != seq.Spend() ||
			bat.State() != seq.State() {
			t.Fatalf("split %d: loop state diverged: probes %d/%d hits %d/%d switches %d/%d spend %v/%v state %v/%v",
				split, bat.Probes(), seq.Probes(), bat.Hits(), seq.Hits(),
				bat.Switches(), seq.Switches(), bat.Spend(), seq.Spend(), bat.State(), seq.State())
		}
	}
}
