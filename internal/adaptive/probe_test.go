package adaptive

import (
	"testing"

	"adaptivelink/internal/join"
	"adaptivelink/internal/metrics"
)

func newTestProbeLoop(t *testing.T, mut func(*Params)) *ProbeLoop {
	t.Helper()
	p := DefaultProbeParams()
	if mut != nil {
		mut(&p)
	}
	l, err := NewProbeLoop(p)
	if err != nil {
		t.Fatalf("NewProbeLoop: %v", err)
	}
	return l
}

func TestProbeLoopValidation(t *testing.T) {
	p := DefaultProbeParams()
	p.W = 0
	if _, err := NewProbeLoop(p); err == nil {
		t.Fatal("invalid params accepted")
	}
	p = DefaultProbeParams()
	p.Estimator = EstimatorCalibrated
	if _, err := NewProbeLoop(p); err == nil {
		t.Fatal("calibrated estimator accepted; resident mode has an exact p(n)")
	}
	l := newTestProbeLoop(t, nil)
	if err := l.EnableCostBudget(metrics.PaperWeights(), 0); err == nil {
		t.Fatal("zero budget accepted")
	}
	if err := l.EnableCostBudget(metrics.Weights{}, 10); err == nil {
		t.Fatal("invalid weights accepted")
	}
	if l.Params().DeltaAdapt != 1 {
		t.Fatalf("DefaultProbeParams δadapt = %d, want 1", l.Params().DeltaAdapt)
	}
}

// TestProbeLoopEscalatesOnDeficit is the per-probe escalation contract:
// with the reference fully resident, p(n) = 1, so the first miss is a
// significant deficit, the session switches to approximate probing, and
// NoteProbe tells the caller to re-run that same probe.
func TestProbeLoopEscalatesOnDeficit(t *testing.T) {
	l := newTestProbeLoop(t, nil)
	l.EnableTrace()
	const ref = 100
	for i := 0; i < 10; i++ {
		if esc := l.NoteProbe(ref, true, 0); esc {
			t.Fatalf("probe %d: escalation while every probe hits", i)
		}
		if l.Mode() != join.Exact {
			t.Fatalf("probe %d: mode %v, want exact", i, l.Mode())
		}
	}
	if !l.NoteProbe(ref, false, 0) {
		t.Fatal("miss under p=1 did not escalate")
	}
	if l.Mode() != join.Approx {
		t.Fatalf("mode after deficit = %v, want approx", l.Mode())
	}
	if st := l.State(); st.Mode(1) != join.Approx {
		t.Fatalf("State() = %v, probe side not approx", st)
	}
	// The escalated re-probe recovered the match: the deficit clears and
	// the single windowed approximate match is below θcurpert·W, so the
	// next activation reverts to exact probing (ϕ₀).
	l.NoteEscalation(true, 1)
	l.NoteProbe(ref, true, 0)
	if l.Mode() != join.Exact {
		t.Fatalf("mode after recovery = %v, want exact", l.Mode())
	}
	if l.Switches() != 2 {
		t.Fatalf("switches = %d, want 2 (out and back)", l.Switches())
	}
	if l.Hits() != l.Probes() {
		t.Fatalf("hits %d != probes %d after recovered escalation", l.Hits(), l.Probes())
	}
	if len(l.Activations()) == 0 {
		t.Fatal("trace empty with EnableTrace")
	}
}

// TestProbeLoopStaysApproxWhilePerturbed: clustered variants keep the
// windowed approximate-match rate above θcurpert, so the session stays
// in approximate mode until the window drains.
func TestProbeLoopStaysApproxWhilePerturbed(t *testing.T) {
	l := newTestProbeLoop(t, nil)
	const ref = 1000
	l.NoteProbe(ref, false, 0) // deficit -> approx
	l.NoteEscalation(true, 1)
	for i := 0; i < 5; i++ {
		// Approximate probes finding variant matches: two non-exact
		// matches per probe keep the windowed rate above θcurpert.
		l.NoteProbe(ref, true, 2)
		if l.Mode() != join.Approx {
			t.Fatalf("variant burst probe %d: reverted early", i)
		}
	}
	// A clean stretch longer than W drains the window and reverts.
	for i := 0; i < l.Params().W+1; i++ {
		l.NoteProbe(ref, true, 0)
	}
	if l.Mode() != join.Exact {
		t.Fatalf("mode after clean stretch = %v, want exact", l.Mode())
	}
}

// TestProbeLoopFutilityRevert: a probe key with no counterpart at all
// leaves a permanent deficit under p=1; the futility rule is what stops
// it pinning the session to approximate probing forever.
func TestProbeLoopFutilityRevert(t *testing.T) {
	l := newTestProbeLoop(t, func(p *Params) { p.FutilityK = 3 })
	l.EnableTrace()
	const ref = 50
	l.NoteProbe(ref, false, 0) // deficit -> approx
	l.NoteEscalation(false, 0) // approximate re-probe finds nothing either
	for i := 0; i < 10 && l.Mode() == join.Approx; i++ {
		l.NoteProbe(ref, false, 0)
		l.NoteEscalation(false, 0)
	}
	if l.Mode() != join.Exact {
		t.Fatal("futility rule did not revert a fruitless approximate session")
	}
	var forced bool
	for _, a := range l.Activations() {
		if a.Forced == "futility" {
			forced = true
		}
	}
	if !forced {
		t.Fatal("no activation recorded Forced=futility")
	}
	// σ stays suppressed: further misses do not re-escalate.
	for i := 0; i < 5; i++ {
		if l.NoteProbe(ref, false, 0) {
			t.Fatal("suppressed σ re-escalated")
		}
	}
}

// TestProbeLoopCostBudget: once the modelled session spend reaches the
// budget the responder pins exact probing, deficit or not.
func TestProbeLoopCostBudget(t *testing.T) {
	l := newTestProbeLoop(t, nil)
	l.EnableTrace()
	if err := l.EnableCostBudget(metrics.PaperWeights(), 3); err != nil {
		t.Fatalf("EnableCostBudget: %v", err)
	}
	const ref = 50
	// Three exact probes exhaust the budget (w_EE = 1 each)...
	for i := 0; i < 3; i++ {
		l.NoteProbe(ref, true, 0)
	}
	// ...so the miss that would have escalated is pinned instead.
	if l.NoteProbe(ref, false, 0) {
		t.Fatal("over-budget session escalated")
	}
	if l.Mode() != join.Exact {
		t.Fatalf("over-budget mode = %v, want exact", l.Mode())
	}
	var forced bool
	for _, a := range l.Activations() {
		if a.Forced == "budget" {
			forced = true
		}
	}
	if !forced {
		t.Fatal("no activation recorded Forced=budget")
	}
	if l.Spend() < 3 {
		t.Fatalf("Spend = %v, want >= 3", l.Spend())
	}
}

// TestProbeLoopEmptyReference: with nothing resident there is no
// evidence of anything; the loop never escalates.
func TestProbeLoopEmptyReference(t *testing.T) {
	l := newTestProbeLoop(t, nil)
	for i := 0; i < 20; i++ {
		if l.NoteProbe(0, false, 0) {
			t.Fatal("escalated against an empty reference")
		}
	}
	if l.Mode() != join.Exact {
		t.Fatalf("mode = %v, want exact", l.Mode())
	}
}

// TestProbeLoopDeltaAdaptBatches: with δadapt > 1 the loop assesses on
// the activation grid, like the batch controller.
func TestProbeLoopDeltaAdaptBatches(t *testing.T) {
	l := newTestProbeLoop(t, func(p *Params) { p.DeltaAdapt = 10 })
	const ref = 100
	// Nine misses: no activation yet, still exact.
	for i := 0; i < 9; i++ {
		if l.NoteProbe(ref, false, 0) {
			t.Fatalf("probe %d escalated before the activation grid", i)
		}
	}
	// The 10th triggers the activation; the deficit is overwhelming.
	if !l.NoteProbe(ref, false, 0) {
		t.Fatal("grid activation did not escalate")
	}
}
