package adaptive

import (
	"fmt"

	"adaptivelink/internal/join"
	"adaptivelink/internal/stats"
)

// Observation is what the monitor hands to the assessor at an
// activation: the raw observable quantities of §3.5.
type Observation struct {
	// Step is the engine step t at which the control loop activated.
	Step int
	// Observed is the result size O̅ₜ (matches computed so far).
	Observed int
	// ChildSeen and ParentSeen are the tuples scanned from each input.
	ChildSeen  int
	ParentSeen int
	// ParentSize is the expected parent cardinality |R| (used by
	// EstimatorParentChild).
	ParentSize int
	// CalibratedKappa is the learned per-(child·parent) match rate 1/|R̂|
	// (used by EstimatorCalibrated; 0 means still calibrating, which
	// yields no σ evidence).
	CalibratedKappa float64
	// PrevObserved/PrevChildSeen/PrevParentSeen are the same counters a
	// lag window earlier. The calibrated estimator tests the *recent*
	// match rate (the deltas) against the baseline — a frozen baseline
	// with a few percent of estimation error cannot support an absolute
	// test once n grows, but stays accurate for bounded windows.
	PrevObserved   int
	PrevChildSeen  int
	PrevParentSeen int
	// WindowLeft and WindowRight are A_{t,W} per side: approximate
	// matches within the last W steps attributed to that side.
	WindowLeft  int
	WindowRight int
	// PastPerturbedLeft/Right count earlier assessments at which the
	// side appeared perturbed (the history feeding π).
	PastPerturbedLeft  int
	PastPerturbedRight int
}

// Assessment is the assessor's predicate vector (Table 2) plus the
// evidence behind σ.
type Assessment struct {
	// Tail is Pₙ,ₚ₍ₙ₎(X ≤ O̅ₜ), the binomial tail probability.
	Tail float64
	// P is the per-trial match probability p(n) = ParentSeen/|R|.
	P float64
	// Sigma is the outlier predicate σ: significant result-size deficit.
	Sigma bool
	// MuLeft/MuRight are µᵢ: side i unlikely to be currently perturbed.
	MuLeft  bool
	MuRight bool
	// PiLeft/PiRight are πᵢ: side i significantly free of past
	// perturbations.
	PiLeft  bool
	PiRight bool
}

// Assess evaluates the Table 2 predicates on an observation.
func Assess(p Params, o Observation) (Assessment, error) {
	if err := p.Validate(); err != nil {
		return Assessment{}, err
	}
	if o.ChildSeen < 0 || o.ParentSeen < 0 || o.Observed < 0 {
		return Assessment{}, fmt.Errorf("adaptive: negative observation %+v", o)
	}
	var prob float64
	trials, observed := o.ChildSeen, o.Observed
	calibrating := false
	switch p.Estimator {
	case EstimatorParentChild:
		if o.ParentSize <= 0 {
			return Assessment{}, fmt.Errorf("adaptive: parent size %d must be positive", o.ParentSize)
		}
		prob = float64(o.ParentSeen) / float64(o.ParentSize)
	case EstimatorCalibrated:
		if o.CalibratedKappa <= 0 {
			calibrating = true
			break
		}
		// Windowed change detection: trials and successes are the
		// deltas since the lagged observation, and the per-trial match
		// probability uses the window's midpoint parent progress.
		trials = o.ChildSeen - o.PrevChildSeen
		observed = o.Observed - o.PrevObserved
		midParent := float64(o.ParentSeen+o.PrevParentSeen) / 2
		prob = o.CalibratedKappa * midParent
		if trials < 0 || observed < 0 {
			return Assessment{}, fmt.Errorf("adaptive: lagged observation ahead of current: %+v", o)
		}
	}
	if prob > 1 {
		// More parents scanned than the (estimated or learned) parent
		// cardinality: every child's parent may already be present.
		prob = 1
	}
	a := Assessment{P: prob}
	if trials == 0 || calibrating {
		// No trials yet, or the estimator is still learning its
		// baseline: no evidence of anything.
		a.Tail = 1
	} else {
		if observed > trials {
			// Duplicates or false positives pushed the observed size
			// past the trial count; clamp — certainly not a low outlier.
			observed = trials
		}
		a.Tail = stats.BinomialCDF(observed, trials, prob)
	}
	a.Sigma = a.Tail <= p.ThetaOut

	rate := func(n int) float64 { return float64(n) / float64(p.W) }
	a.MuLeft = rate(o.WindowLeft) <= p.ThetaCurPert
	a.MuRight = rate(o.WindowRight) <= p.ThetaCurPert
	a.PiLeft = o.PastPerturbedLeft <= p.ThetaPastPert
	a.PiRight = o.PastPerturbedRight <= p.ThetaPastPert
	return a, nil
}

// Decide is the responder: it maps the current state and the assessment
// to the next state per the transition rules ϕ₀..ϕ₃ of §3.5. Rules are
// tried in order of specificity; when none fires the state is kept.
func Decide(cur join.State, a Assessment) join.State {
	switch {
	case a.Sigma && !a.MuLeft && a.MuRight && a.PiLeft:
		// ϕ₂: variants present, left currently perturbed, right clean,
		// left historically mostly clean.
		return join.LapRex
	case a.Sigma && a.MuLeft && !a.MuRight && a.PiRight:
		// ϕ₃: symmetric to ϕ₂.
		return join.LexRap
	case a.Sigma && !a.MuLeft && !a.MuRight:
		// ϕ₁: variants present, origin undeterminable.
		return join.LapRap
	case a.Sigma && cur == join.LexRex:
		// ϕ₁ from lex/rex: the windows are structurally empty (no
		// approximate operator runs), so σ alone forces the exit.
		return join.LapRap
	case !a.Sigma && a.MuLeft && a.MuRight:
		// ϕ₀: no deficit, both sides recently clean — exact everywhere.
		return join.LexRex
	default:
		return cur
	}
}
