package adaptive

import (
	"testing"

	"adaptivelink/internal/join"
	"adaptivelink/internal/metrics"
	"adaptivelink/internal/pjoin"
	"adaptivelink/internal/relation"
	"adaptivelink/internal/stream"
)

func shardedParams() Params {
	return Params{W: 20, DeltaAdapt: 10, ThetaOut: 0.05, ThetaCurPert: 0.05, ThetaPastPert: 100}
}

// runSharded executes a P-shard adaptive join and returns the
// controller, the executor stats and the deduplicated matches.
func runSharded(t *testing.T, parent, child *relation.Relation, p Params, shards int) (*ShardedController, pjoin.Stats, []pjoin.Match) {
	t.Helper()
	ctl, err := NewSharded(shards, stream.Left, parent.Len(), p)
	if err != nil {
		t.Fatal(err)
	}
	ctl.EnableTrace()
	ex, err := pjoin.New(pjoin.Config{Join: join.Defaults(), Shards: shards, Controller: ctl},
		stream.FromRelation(parent), stream.FromRelation(child))
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Open(); err != nil {
		t.Fatal(err)
	}
	var ms []pjoin.Match
	for {
		m, ok, err := ex.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		ms = append(ms, m)
	}
	st := ex.Stats()
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
	return ctl, st, ms
}

func TestShardedValidation(t *testing.T) {
	if _, err := NewSharded(0, stream.Left, 10, DefaultParams()); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := NewSharded(4, stream.Left, 0, DefaultParams()); err == nil {
		t.Error("zero parent size accepted")
	}
	if _, err := NewSharded(4, stream.Left, 10, Params{}); err == nil {
		t.Error("invalid params accepted")
	}
	p := DefaultParams()
	p.Estimator = EstimatorCalibrated
	if _, err := NewSharded(4, stream.Left, 0, p); err != nil {
		t.Errorf("calibrated estimator without parent size rejected: %v", err)
	}
}

func TestShardedNoVariantsStaysExact(t *testing.T) {
	parent, child := buildScenario(7, 300, 0, 0) // no variants
	ctl, st, _ := runSharded(t, parent, child, shardedParams(), 4)
	if st.Switches != 0 {
		t.Errorf("shards switched %d times on clean data", st.Switches)
	}
	if got := ctl.State(); got != join.LexRex {
		t.Errorf("broadcast state %v, want lex/rex", got)
	}
	for _, act := range ctl.Activations() {
		if act.Assessment.Sigma {
			t.Errorf("σ fired on clean data at step %d (tail %v)", act.Observation.Step, act.Assessment.Tail)
		}
	}
}

func TestShardedDetectsPerturbationAndRecovers(t *testing.T) {
	// The sequential controller's canonical scenario, run on 4 shards:
	// a dense variant burst early in the child. The aggregate deficit
	// test must fire, the broadcast must take every shard out of
	// lex/rex, and the deduplicated result must land strictly between
	// the exact and approximate baselines.
	parent, child := buildScenario(11, 400, 40, 80)
	ctl, st, ms := runSharded(t, parent, child, shardedParams(), 4)

	if st.Switches == 0 {
		t.Fatal("no shard ever switched despite a 10% variant burst")
	}
	wentApprox := false
	returnedExact := false
	for _, act := range ctl.Activations() {
		if act.From == join.LexRex && act.To != join.LexRex {
			wentApprox = true
		}
		if wentApprox && act.To == join.LexRex && act.From != join.LexRex {
			returnedExact = true
		}
	}
	if !wentApprox {
		t.Error("no broadcast out of lex/rex recorded")
	}
	if !returnedExact {
		t.Error("never broadcast a return to lex/rex after the perturbation region")
	}

	exact := join.NestedLoopExact(parent, child)
	if len(ms) <= len(exact) {
		t.Errorf("sharded adaptive found %d matches, exact baseline %d — no gain", len(ms), len(exact))
	}
	approx, err := join.NestedLoopApprox(join.Defaults(), parent, child)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) > len(approx) {
		t.Errorf("sharded adaptive found %d matches, more than the approximate ceiling %d", len(ms), len(approx))
	}
}

func TestShardedAggregateObservation(t *testing.T) {
	// The aggregate monitor must observe global counters: after a full
	// run the last activation's scan progress equals the dispatched
	// totals, not the (replicated) shard totals.
	parent, child := buildScenario(13, 300, 50, 80)
	ctl, st, _ := runSharded(t, parent, child, shardedParams(), 4)
	acts := ctl.Activations()
	if len(acts) == 0 {
		t.Fatal("no activations recorded")
	}
	last := acts[len(acts)-1].Observation
	if last.ParentSeen > parent.Len() || last.ChildSeen > child.Len() {
		t.Errorf("aggregate observation saw (%d,%d) tuples, inputs only have (%d,%d)",
			last.ParentSeen, last.ChildSeen, parent.Len(), child.Len())
	}
	if st.Routed[0]+st.Routed[1] <= st.Read[0]+st.Read[1] {
		t.Logf("note: replication factor ~1 (%v routed vs %v read)", st.Routed, st.Read)
	}
	if last.Observed != st.Matches {
		// The final activation can precede the last few matches; it must
		// never exceed the deduplicated total.
		if last.Observed > st.Matches {
			t.Errorf("aggregate observed %d matches, merger only delivered %d", last.Observed, st.Matches)
		}
	}
}

func TestShardedSingleShardDegenerate(t *testing.T) {
	// P=1 must behave like a (pipelined) sequential adaptive join: one
	// shard, aggregate loop, same completeness ordering.
	parent, child := buildScenario(11, 400, 40, 80)
	_, st, ms := runSharded(t, parent, child, shardedParams(), 1)
	if st.Duplicates != 0 {
		t.Errorf("single shard produced %d duplicates", st.Duplicates)
	}
	exact := join.NestedLoopExact(parent, child)
	if len(ms) <= len(exact) {
		t.Errorf("P=1 adaptive found %d matches, exact baseline %d — no gain", len(ms), len(exact))
	}
}

// runShardedBudget is runSharded with a cost budget armed.
func runShardedBudget(t *testing.T, parent, child *relation.Relation, p Params, shards int, budget float64) (*ShardedController, pjoin.Stats, []pjoin.Match) {
	t.Helper()
	ctl, err := NewSharded(shards, stream.Left, parent.Len(), p)
	if err != nil {
		t.Fatal(err)
	}
	ctl.EnableTrace()
	if err := ctl.EnableCostBudget(metrics.PaperWeights(), budget); err != nil {
		t.Fatal(err)
	}
	ex, err := pjoin.New(pjoin.Config{Join: join.Defaults(), Shards: shards, Controller: ctl},
		stream.FromRelation(parent), stream.FromRelation(child))
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Open(); err != nil {
		t.Fatal(err)
	}
	var ms []pjoin.Match
	for {
		m, ok, err := ex.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		ms = append(ms, m)
	}
	st := ex.Stats()
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
	return ctl, st, ms
}

func TestShardedCostBudgetValidation(t *testing.T) {
	ctl, err := NewSharded(2, stream.Left, 10, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.EnableCostBudget(metrics.PaperWeights(), 0); err == nil {
		t.Error("zero budget accepted")
	}
	if err := ctl.EnableCostBudget(metrics.PaperWeights(), -1); err == nil {
		t.Error("negative budget accepted")
	}
	if err := ctl.EnableCostBudget(metrics.Weights{}, 100); err == nil {
		t.Error("invalid weights accepted")
	}
	if err := ctl.EnableCostBudget(metrics.PaperWeights(), 100); err != nil {
		t.Errorf("valid budget rejected: %v", err)
	}
}

// TestShardedBudgetTripsLikeSequential is the decision-parity check for
// the aggregated spend counter: over the same scenario and thresholds,
// the sharded controller's trace — every activation's observation,
// σ/µ verdicts, from/to states and forced overrides, budget pin
// included — must be identical to the sequential controller's, because
// the logical spend accrues on the same step clock.
func TestShardedBudgetTripsLikeSequential(t *testing.T) {
	parent, child := buildScenario(17, 500, 50, 200) // heavy perturbation
	w := metrics.PaperWeights()
	const budget = 3000.0

	_, seqCtl := runWithOpts(t, parent, child, testParams(), WithCostBudget(w, budget))
	for _, shards := range []int{2, 4} {
		ctl, _, _ := runShardedBudget(t, parent, child, testParams(), shards, budget)
		seqActs, parActs := seqCtl.Activations(), ctl.Activations()
		if len(seqActs) != len(parActs) {
			t.Fatalf("P=%d: %d activations, sequential %d", shards, len(parActs), len(seqActs))
		}
		sawBudget := false
		for i := range seqActs {
			s, p := seqActs[i], parActs[i]
			if s.Observation != p.Observation {
				t.Errorf("P=%d activation %d: observation %+v, sequential %+v", shards, i, p.Observation, s.Observation)
			}
			if s.Assessment != p.Assessment {
				t.Errorf("P=%d activation %d: assessment %+v, sequential %+v", shards, i, p.Assessment, s.Assessment)
			}
			if s.From != p.From || s.To != p.To || s.Forced != p.Forced {
				t.Errorf("P=%d activation %d: decision %v->%v (%q), sequential %v->%v (%q)",
					shards, i, p.From, p.To, p.Forced, s.From, s.To, s.Forced)
			}
			if p.Forced == "budget" {
				sawBudget = true
			}
		}
		if !sawBudget {
			t.Fatalf("P=%d: budget never engaged", shards)
		}
		if got := ctl.State(); got != join.LexRex {
			t.Errorf("P=%d: final broadcast state %v, want lex/rex", shards, got)
		}
		if sp := ctl.Spend(); sp < budget {
			t.Errorf("P=%d: final spend %v below the budget it tripped", shards, sp)
		}
	}
}
