package adaptive

import (
	"testing"

	"adaptivelink/internal/iterator"
	"adaptivelink/internal/join"
	"adaptivelink/internal/metrics"
	"adaptivelink/internal/relation"
	"adaptivelink/internal/stream"
)

// runWithOpts drives an adaptive join with extra controller options.
func runWithOpts(t *testing.T, parent, child *relation.Relation, p Params, opts ...Option) (*join.Engine, *Controller) {
	t.Helper()
	e, err := join.New(join.Defaults(), stream.FromRelation(parent), stream.FromRelation(child), nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Attach(e, stream.Left, parent.Len(), p, append(opts, WithTrace())...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := iterator.Drain[join.Match](e, nil); err != nil {
		t.Fatal(err)
	}
	return e, c
}

func TestParamsValidateFutility(t *testing.T) {
	p := DefaultParams()
	p.FutilityK = -1
	if p.Validate() == nil {
		t.Error("negative FutilityK accepted")
	}
	p.FutilityK = 3
	if err := p.Validate(); err != nil {
		t.Errorf("valid FutilityK rejected: %v", err)
	}
}

// A wrong parent-size estimate makes σ fire although no variants exist;
// without the futility rule the engine wallows in lap/rap finding
// nothing. With it, the controller reverts to lex/rex and stays there.
func TestFutilityRevertOnWrongEstimate(t *testing.T) {
	parent, child := buildScenario(3, 400, 0, 0) // clean data
	e, err := join.New(join.Defaults(), stream.FromRelation(parent), stream.FromRelation(child), nil)
	if err != nil {
		t.Fatal(err)
	}
	p := testParams()
	p.FutilityK = 3
	// Lie about the parent size: claim it is half the real table, so the
	// expected match probability doubles and the clean result looks
	// deficient.
	c, err := Attach(e, stream.Left, parent.Len()/2, p, WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := iterator.Drain[join.Match](e, nil); err != nil {
		t.Fatal(err)
	}

	var futilityReverts, postRevertApprox int
	reverted := false
	for _, a := range c.Activations() {
		if a.Forced == "futility" {
			futilityReverts++
			reverted = true
			if a.To != join.LexRex {
				t.Errorf("futility revert targeted %v", a.To)
			}
		} else if reverted && a.To != join.LexRex && a.From == join.LexRex {
			postRevertApprox++
		}
	}
	if futilityReverts == 0 {
		t.Fatal("futility rule never fired despite a fruitless approximate phase")
	}
	// σ suppression must prevent immediate re-entry: the wrong estimate
	// keeps σ on, so without suppression the engine would bounce back on
	// the very next activation.
	if postRevertApprox > futilityReverts {
		t.Errorf("engine re-entered approximate states %d times after %d futility reverts",
			postRevertApprox, futilityReverts)
	}
	if got := e.State(); got != join.LexRex {
		t.Errorf("final state %v, want lex/rex", got)
	}
}

func TestFutilityDisabledByDefault(t *testing.T) {
	parent, child := buildScenario(3, 300, 0, 0)
	e, err := join.New(join.Defaults(), stream.FromRelation(parent), stream.FromRelation(child), nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Attach(e, stream.Left, parent.Len()/2, testParams(), WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	iterator.Drain[join.Match](e, nil)
	for _, a := range c.Activations() {
		if a.Forced != "" {
			t.Fatalf("override %q fired with extensions disabled", a.Forced)
		}
	}
}

func TestCostBudgetPinsToExact(t *testing.T) {
	parent, child := buildScenario(17, 500, 50, 200) // heavy perturbation
	w := metrics.PaperWeights()
	// A budget of 3000 units: enough for some approximate work (about 40
	// lap/rap steps) but far below an unconstrained run.
	const budget = 3000.0
	e, c := runWithOpts(t, parent, child, testParams(), WithCostBudget(w, budget))

	sawBudget := false
	for _, a := range c.Activations() {
		if a.Forced == "budget" {
			sawBudget = true
			if a.To != join.LexRex {
				t.Errorf("budget override targeted %v", a.To)
			}
		}
	}
	if !sawBudget {
		t.Fatal("budget never engaged despite heavy perturbation")
	}
	// Final modelled cost can overshoot by one activation period of
	// approximate steps, the two boundary switches, and — by design —
	// the remaining scan at the exact join's unit rate ("cost grows only
	// at the exact rate" after the budget pins the state).
	cost := metrics.Cost(e.Stats(), w).Total
	steps := e.Stats().Steps
	slack := float64(testParams().DeltaAdapt)*w.Step[join.LapRap.Index()] +
		w.Transition[join.LexRex.Index()] + w.Transition[join.LapRap.Index()] +
		float64(steps)*w.Step[join.LexRex.Index()]
	if cost > budget+slack {
		t.Errorf("modelled cost %v exceeds budget %v + slack %v", cost, budget, slack)
	}
	if got := e.State(); got != join.LexRex {
		t.Errorf("final state %v, want lex/rex after budget exhaustion", got)
	}
}

func TestCostBudgetStillGainsCompleteness(t *testing.T) {
	parent, child := buildScenario(19, 500, 50, 150)
	w := metrics.PaperWeights()
	eBudget, _ := runWithOpts(t, parent, child, testParams(), WithCostBudget(w, 4000))
	eFree, _ := runWithOpts(t, parent, child, testParams())

	exact := len(join.NestedLoopExact(parent, child))
	budgetMatches := eBudget.Stats().Matches
	freeMatches := eFree.Stats().Matches
	if budgetMatches <= exact {
		t.Errorf("budgeted run gained nothing: %d vs exact %d", budgetMatches, exact)
	}
	if budgetMatches > freeMatches {
		t.Errorf("budgeted run (%d) outperformed unconstrained (%d)?", budgetMatches, freeMatches)
	}
	costB := metrics.Cost(eBudget.Stats(), w).Total
	costF := metrics.Cost(eFree.Stats(), w).Total
	if costB >= costF {
		t.Errorf("budgeted cost %v not below unconstrained %v", costB, costF)
	}
}

func TestCostBudgetValidation(t *testing.T) {
	parent := relation.FromKeys("L", "a")
	child := relation.FromKeys("R", "a")
	e, _ := join.New(join.Defaults(), stream.FromRelation(parent), stream.FromRelation(child), nil)
	if _, err := Attach(e, stream.Left, 1, testParams(), WithCostBudget(metrics.PaperWeights(), 0)); err == nil {
		t.Error("zero budget accepted")
	}
	e2, _ := join.New(join.Defaults(), stream.FromRelation(parent), stream.FromRelation(child), nil)
	bad := metrics.PaperWeights()
	bad.Step[0] = 0
	if _, err := Attach(e2, stream.Left, 1, testParams(), WithCostBudget(bad, 100)); err == nil {
		t.Error("invalid weights accepted")
	}
}
