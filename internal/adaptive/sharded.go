package adaptive

import (
	"fmt"
	"sync"
	"sync/atomic"

	"adaptivelink/internal/join"
	"adaptivelink/internal/stats"
	"adaptivelink/internal/stream"
)

// ShardedController runs one MAR control loop over a partition-parallel
// join (internal/pjoin): the per-shard Monitor observations are
// aggregated into a single binomial deficit test — the same statistics
// as the sequential Controller, over summed counts — and the responder's
// mode switches are broadcast to every shard, each of which applies them
// at its next quiescent point.
//
// The aggregate observation is exactly the sequential one because it is
// taken at executor barriers: every δadapt dispatched tuples the
// controller snapshots the dispatch clock and asks the splitter to emit
// a barrier mark; when the merger has collected the mark's echo from
// every shard it calls Activate, at which point the deduplicated match
// count covers exactly the tuples of the snapshot — the same consistent
// cut a sequential engine sees at an activation. The binomial model of
// §3.2 therefore transfers unchanged: after n dispatched child tuples
// the expected result size is still n·p(n) with p(n) = parentSeen/|R|.
// Only the perturbation windows are approximated: matches merged within
// a barrier interval are attributed to the interval's end step rather
// than their exact interior step, a sub-δadapt coarsening of A_{t,W}.
//
// Switching is eventually consistent across shards: a broadcast switch
// reaches shard i when its worker next calls Sync, i.e. at that shard's
// next quiescent point, mirroring how the sequential controller defers
// switches to the engine's quiescent points. Between broadcast and
// application different shards may briefly run in different states —
// which only affects which matches are found during the transition
// window, never their correctness, exactly as the sequential engine
// finds different matches depending on when it switches.
//
// The cost-budget option of the sequential controller is not supported:
// its modelled cost is defined on a single engine's step accounting,
// which replication distorts. Futility reverts and the calibrated
// estimator are supported.
type ShardedController struct {
	params     Params
	parentSide stream.Side
	parentSize int

	// gen is the broadcast generation, incremented on every aggregate
	// switch decision; shard workers compare it against their applied
	// generation lock-free on the hot path.
	gen atomic.Uint64

	mu            sync.Mutex
	state         join.State // current broadcast target
	steps         int        // global step clock: tuples dispatched
	read          [2]int     // tuples dispatched per side
	observed      int        // deduplicated matches up to the last barrier
	win           [2]*stats.SlidingWindow
	pendingWin    [2]int // window events since the last completed barrier
	pastPerturbed [2]int
	lastBarrier   int           // dispatch step of the last emitted barrier
	barriers      []barrierSnap // emitted but not yet completed barriers

	approxSeen int
	fut        futilityGate

	cal calibrator

	trace     []Activation
	keepTrace bool

	// applied[i] is the generation shard i has applied; only shard i's
	// worker touches it (from Sync), so no lock is needed.
	applied []uint64
}

// barrierSnap is the dispatch-clock snapshot taken when a barrier is
// emitted; Activate consumes them in FIFO order.
type barrierSnap struct {
	step int
	read [2]int
}

// NewSharded builds a controller aggregating the given number of shards.
// parentSide and parentSize have the same meaning as in Attach. Wire the
// result into pjoin.Config.Controller before opening the executor. The
// loop starts from the paper's optimistic lex/rex and every shard is
// snapped to the controller's state at its first quiescent point, so a
// divergent Config.Initial on the shard engines cannot outlive the
// first tuple.
func NewSharded(shards int, parentSide stream.Side, parentSize int, p Params) (*ShardedController, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if shards < 1 {
		return nil, fmt.Errorf("adaptive: shard count %d < 1", shards)
	}
	if parentSize <= 0 && p.Estimator != EstimatorCalibrated {
		return nil, fmt.Errorf("adaptive: parent size %d must be positive (or use EstimatorCalibrated)", parentSize)
	}
	c := &ShardedController{
		params:     p,
		parentSide: parentSide,
		parentSize: parentSize,
		state:      join.LexRex,
		applied:    make([]uint64, shards),
	}
	// Sentinel: every shard's first Sync takes the slow path and snaps
	// the engine to the controller's state, so a shard configured with
	// a different initial state cannot silently diverge from the state
	// the aggregate loop assesses from (the paper's optimistic lex/rex).
	for i := range c.applied {
		c.applied[i] = ^uint64(0)
	}
	c.win[stream.Left] = stats.NewSlidingWindow(p.W)
	c.win[stream.Right] = stats.NewSlidingWindow(p.W)
	return c, nil
}

// EnableTrace makes the controller record every activation; retrieve
// them with Activations. Call before the join starts.
func (c *ShardedController) EnableTrace() { c.keepTrace = true }

// Params returns the controller's thresholds.
func (c *ShardedController) Params() Params { return c.params }

// State returns the current broadcast target state. Individual shards
// converge to it at their next quiescent points.
func (c *ShardedController) State() join.State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// Activations returns the recorded trace (nil unless EnableTrace was
// called). Unlike the sequential trace, CaughtUp is always 0 here:
// catch-up happens per shard as the broadcast lands and is accounted in
// the executor's aggregate CatchUpTuples instead.
func (c *ShardedController) Activations() []Activation {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.trace
}

// NoteDispatch implements pjoin.Controller: it advances the global step
// clock and, every DeltaAdapt dispatches, snapshots it and requests a
// barrier.
func (c *ShardedController) NoteDispatch(side stream.Side) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.read[side]++
	c.steps++
	if c.steps-c.lastBarrier < c.params.DeltaAdapt {
		return false
	}
	c.lastBarrier = c.steps
	c.barriers = append(c.barriers, barrierSnap{step: c.steps, read: c.read})
	return true
}

// NoteMatch implements pjoin.Controller: it feeds the aggregate result
// size and, for non-exact matches, the per-side perturbation windows.
// The merger calls it in barrier-consistent order, so by the time
// Activate fires the counters cover exactly the barrier's dispatches.
func (c *ShardedController) NoteMatch(exact bool, attr join.Attribution) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.observed++
	if exact {
		return
	}
	c.approxSeen++
	if attr.Blames(stream.Left) {
		c.pendingWin[stream.Left]++
	}
	if attr.Blames(stream.Right) {
		c.pendingWin[stream.Right]++
	}
}

// Activate implements pjoin.Controller: the merger calls it when every
// shard has echoed the oldest outstanding barrier. It consumes that
// barrier's snapshot and runs one monitor → assess → respond pass over
// the consistent cut.
func (c *ShardedController) Activate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.barriers) == 0 {
		// A barrier the controller did not request (foreign controller
		// mixup); nothing coherent to assess.
		return
	}
	snap := c.barriers[0]
	c.barriers = c.barriers[1:]
	for _, side := range []stream.Side{stream.Left, stream.Right} {
		c.win[side].AdvanceTo(snap.step)
		c.win[side].Record(c.pendingWin[side])
		c.pendingWin[side] = 0
	}
	c.activateLocked(snap)
}

// Sync implements pjoin.Controller: shard workers call it between
// tuples, at a per-shard quiescent point, and it applies any broadcast
// switch the shard has not seen yet. The fast path is a single atomic
// load.
func (c *ShardedController) Sync(shard int, e *join.Engine) {
	g := c.gen.Load()
	if g == c.applied[shard] {
		return
	}
	c.mu.Lock()
	target := c.state
	g = c.gen.Load()
	c.mu.Unlock()
	c.applied[shard] = g
	if target == e.State() {
		return
	}
	if _, err := e.SetState(target); err != nil {
		// Targets come from Decide over validated states; an error here
		// is a programming bug, not a data condition.
		panic(fmt.Sprintf("adaptive: sharded switch to %v: %v", target, err))
	}
}

// activateLocked runs monitor → assess → respond once over the
// aggregate counters at the given barrier snapshot. Callers hold c.mu.
func (c *ShardedController) activateLocked(snap barrierSnap) {
	childSide := c.parentSide.Other()
	obs := Observation{
		Step:               snap.step,
		Observed:           c.observed,
		ChildSeen:          snap.read[childSide],
		ParentSeen:         snap.read[c.parentSide],
		ParentSize:         c.parentSize,
		WindowLeft:         c.win[stream.Left].Count(),
		WindowRight:        c.win[stream.Right].Count(),
		PastPerturbedLeft:  c.pastPerturbed[stream.Left],
		PastPerturbedRight: c.pastPerturbed[stream.Right],
	}
	c.cal.observe(c.params, &obs)
	a, err := Assess(c.params, obs)
	if err != nil {
		// Inputs were validated at construction time; an error here is
		// a programming bug, not a data condition.
		panic(fmt.Sprintf("adaptive: sharded assess: %v", err))
	}
	if !a.MuLeft {
		c.pastPerturbed[stream.Left]++
	}
	if !a.MuRight {
		c.pastPerturbed[stream.Right]++
	}

	from := c.state
	// The shared responder, without a cost budget (unsupported here —
	// see the type comment).
	to, forced := c.fut.respond(c.params, from, a, c.approxSeen, false)
	if to != from {
		c.state = to
		c.gen.Add(1)
		c.fut.noteSwitch()
	}
	if c.keepTrace {
		c.trace = append(c.trace, Activation{
			Observation: obs, Assessment: a, From: from, To: to,
			Forced: forced,
		})
	}
}
