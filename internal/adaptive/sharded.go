package adaptive

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"adaptivelink/internal/join"
	"adaptivelink/internal/metrics"
	"adaptivelink/internal/stats"
	"adaptivelink/internal/stream"
)

// ShardedController runs one MAR control loop over a partition-parallel
// join (internal/pjoin): the per-shard Monitor observations are
// aggregated into a single binomial deficit test — the same statistics
// as the sequential Controller, over summed counts — and the responder's
// mode switches are broadcast to every shard, each of which applies them
// at its next quiescent point.
//
// The aggregate observation is exactly the sequential one because it is
// taken at executor barriers: every δadapt dispatched tuples the
// controller snapshots the dispatch clock and asks the splitter to emit
// a barrier mark; when the merger has collected the mark's echo from
// every shard it calls Activate, at which point the deduplicated match
// count covers exactly the tuples of the snapshot — the same consistent
// cut a sequential engine sees at an activation. The binomial model of
// §3.2 therefore transfers unchanged: after n dispatched child tuples
// the expected result size is still n·p(n) with p(n) = parentSeen/|R|.
// The perturbation windows are exact too: each merged match carries its
// probing tuple's global dispatch step, and Activate replays the
// interval's matches onto the sliding windows in dispatch order at the
// positions a sequential controller would have recorded them, so
// A_{t,W} is identical at every activation for any W and δadapt.
//
// Switching is eventually consistent across shards: a broadcast switch
// reaches shard i when its worker next calls Sync, i.e. at that shard's
// next quiescent point. The executor's barrier rendezvous holds every
// shard at the barrier until the switch is broadcast, so all tuples of
// the next interval are processed under the state decided at the
// barrier — the same switch placement a sequential engine gets from
// activating at step k·δadapt.
//
// The cost budget (EnableCostBudget) is enforced against a modelled
// global spend counter maintained on the same broadcast timeline: at
// each barrier the interval's dispatches accrue at the broadcast
// state's step weight, and each broadcast switch accrues its transition
// weight. Because the barrier rendezvous pins every interval to one
// state, this spend equals the modelled cost of the sequential engine's
// own accounting at the same logical step — the budget trips at the
// same activation it would sequentially. (The executor's physical
// shard-step total exceeds it by the replication factor; the budget is
// a statement about the logical scan, not about replicated work.)
// Futility reverts and the calibrated estimator are supported as in the
// sequential controller.
type ShardedController struct {
	params     Params
	parentSide stream.Side
	parentSize int

	// gen is the broadcast generation, incremented on every aggregate
	// switch decision; shard workers compare it against their applied
	// generation lock-free on the hot path.
	gen atomic.Uint64

	mu            sync.Mutex
	state         join.State // current broadcast target
	steps         int        // global step clock: tuples dispatched
	read          [2]int     // tuples dispatched per side
	observed      int        // deduplicated matches up to the last barrier
	win           [2]*stats.SlidingWindow
	pendingEvents map[int]*[2]int // dispatch step -> per-side window events since the last barrier
	pastPerturbed [2]int
	lastBarrier   int           // dispatch step of the last emitted barrier
	barriers      []barrierSnap // emitted but not yet completed barriers

	approxSeen int
	fut        futilityGate

	// Cost budget (EnableCostBudget): seqModel is the logical
	// (sequential-equivalent) execution — interval steps accrued in the
	// broadcast state plus broadcast transitions — and costedStep the
	// dispatch step up to which it has accrued.
	budgetWeights metrics.Weights
	budget        float64
	hasBudget     bool
	seqModel      join.Stats
	costedStep    int

	cal calibrator

	trace     []Activation
	keepTrace bool
	sink      DecisionSink

	// applied[i] is the generation shard i has applied; only shard i's
	// worker touches it (from Sync), so no lock is needed.
	applied []uint64
}

// barrierSnap is the dispatch-clock snapshot taken when a barrier is
// emitted; Activate consumes them in FIFO order.
type barrierSnap struct {
	step int
	read [2]int
}

// NewSharded builds a controller aggregating the given number of shards.
// parentSide and parentSize have the same meaning as in Attach. Wire the
// result into pjoin.Config.Controller before opening the executor. The
// loop starts from the paper's optimistic lex/rex and every shard is
// snapped to the controller's state at its first quiescent point, so a
// divergent Config.Initial on the shard engines cannot outlive the
// first tuple.
func NewSharded(shards int, parentSide stream.Side, parentSize int, p Params) (*ShardedController, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if shards < 1 {
		return nil, fmt.Errorf("adaptive: shard count %d < 1", shards)
	}
	if parentSize <= 0 && p.Estimator != EstimatorCalibrated {
		return nil, fmt.Errorf("adaptive: parent size %d must be positive (or use EstimatorCalibrated)", parentSize)
	}
	c := &ShardedController{
		params:        p,
		parentSide:    parentSide,
		parentSize:    parentSize,
		state:         join.LexRex,
		pendingEvents: make(map[int]*[2]int),
		applied:       make([]uint64, shards),
	}
	// Sentinel: every shard's first Sync takes the slow path and snaps
	// the engine to the controller's state, so a shard configured with
	// a different initial state cannot silently diverge from the state
	// the aggregate loop assesses from (the paper's optimistic lex/rex).
	for i := range c.applied {
		c.applied[i] = ^uint64(0)
	}
	c.win[stream.Left] = stats.NewSlidingWindow(p.W)
	c.win[stream.Right] = stats.NewSlidingWindow(p.W)
	return c, nil
}

// EnableTrace makes the controller record every activation; retrieve
// them with Activations. Call before the join starts.
func (c *ShardedController) EnableTrace() { c.keepTrace = true }

// EnableCostBudget arms the §4.4 user-controlled trade-off on the
// aggregate loop, mirroring the sequential WithCostBudget option: once
// the modelled spend of the logical scan reaches budget (in the weight
// model's units, one all-exact step = 1), the responder pins every
// shard to lex/rex. Call before the join starts.
func (c *ShardedController) EnableCostBudget(w metrics.Weights, budget float64) error {
	if err := w.Validate(); err != nil {
		return fmt.Errorf("adaptive: cost budget: %w", err)
	}
	if budget <= 0 {
		return fmt.Errorf("adaptive: cost budget %v must be positive", budget)
	}
	c.budgetWeights, c.budget, c.hasBudget = w, budget, true
	return nil
}

// Params returns the controller's thresholds.
func (c *ShardedController) Params() Params { return c.params }

// State returns the current broadcast target state. Individual shards
// converge to it at their next quiescent points.
func (c *ShardedController) State() join.State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// Spend returns the modelled sequential-equivalent cost accrued up to
// the last completed barrier — the global spend counter a cost budget
// is enforced against. Without EnableCostBudget it is priced under the
// paper's weights.
func (c *ShardedController) Spend() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.budgetWeights
	if !c.hasBudget {
		w = metrics.PaperWeights()
	}
	return metrics.Cost(c.seqModel, w).Total
}

// Activations returns the recorded trace (nil unless EnableTrace was
// called). Unlike the sequential trace, CaughtUp is always 0 here:
// catch-up happens per shard as the broadcast lands and is accounted in
// the executor's aggregate CatchUpTuples instead.
func (c *ShardedController) Activations() []Activation {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.trace
}

// NoteDispatch implements pjoin.Controller: it advances the global step
// clock and, every DeltaAdapt dispatches, snapshots it and requests a
// barrier.
func (c *ShardedController) NoteDispatch(side stream.Side) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.read[side]++
	c.steps++
	if c.steps-c.lastBarrier < c.params.DeltaAdapt {
		return false
	}
	c.lastBarrier = c.steps
	c.barriers = append(c.barriers, barrierSnap{step: c.steps, read: c.read})
	return true
}

// NoteMatch implements pjoin.Controller: it feeds the aggregate result
// size and, for non-exact matches, buffers the per-side perturbation
// events keyed by the probe's global dispatch step. The merger calls it
// in barrier-consistent order, so by the time Activate fires the
// counters cover exactly the barrier's dispatches.
func (c *ShardedController) NoteMatch(step int, exact bool, attr join.Attribution) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.observed++
	if exact {
		return
	}
	c.approxSeen++
	ev := c.pendingEvents[step]
	if ev == nil {
		ev = new([2]int)
		c.pendingEvents[step] = ev
	}
	if attr.Blames(stream.Left) {
		ev[stream.Left]++
	}
	if attr.Blames(stream.Right) {
		ev[stream.Right]++
	}
}

// Activate implements pjoin.Controller: the merger calls it when every
// shard has echoed the oldest outstanding barrier. It consumes that
// barrier's snapshot, replays the interval's window events at their
// exact dispatch positions, and runs one monitor → assess → respond
// pass over the consistent cut.
func (c *ShardedController) Activate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.barriers) == 0 {
		// A barrier the controller did not request (foreign controller
		// mixup); nothing coherent to assess.
		return
	}
	snap := c.barriers[0]
	c.barriers = c.barriers[1:]
	// Replay in dispatch order. A sequential controller records a match
	// of dispatch step s while its window still sits at position s-1
	// (the window advances after the step completes), so the replay
	// lands every event at the identical position and A_{t,W} matches
	// the sequential count exactly, for any W and δadapt.
	if len(c.pendingEvents) > 0 {
		steps := make([]int, 0, len(c.pendingEvents))
		for s := range c.pendingEvents {
			steps = append(steps, s)
		}
		sort.Ints(steps)
		for _, s := range steps {
			ev := c.pendingEvents[s]
			for _, side := range []stream.Side{stream.Left, stream.Right} {
				if ev[side] > 0 {
					c.win[side].AdvanceTo(s - 1)
					c.win[side].Record(ev[side])
				}
			}
		}
		clear(c.pendingEvents)
	}
	for _, side := range []stream.Side{stream.Left, stream.Right} {
		c.win[side].AdvanceTo(snap.step)
	}
	c.activateLocked(snap)
}

// Sync implements pjoin.Controller: shard workers call it between
// tuples, at a per-shard quiescent point, and it applies any broadcast
// switch the shard has not seen yet. The fast path is a single atomic
// load.
func (c *ShardedController) Sync(shard int, e *join.Engine) {
	g := c.gen.Load()
	if g == c.applied[shard] {
		return
	}
	c.mu.Lock()
	target := c.state
	g = c.gen.Load()
	c.mu.Unlock()
	c.applied[shard] = g
	if target == e.State() {
		return
	}
	if _, err := e.SetState(target); err != nil {
		// Targets come from Decide over validated states; an error here
		// is a programming bug, not a data condition.
		panic(fmt.Sprintf("adaptive: sharded switch to %v: %v", target, err))
	}
}

// activateLocked runs monitor → assess → respond once over the
// aggregate counters at the given barrier snapshot. Callers hold c.mu.
func (c *ShardedController) activateLocked(snap barrierSnap) {
	childSide := c.parentSide.Other()
	obs := Observation{
		Step:               snap.step,
		Observed:           c.observed,
		ChildSeen:          snap.read[childSide],
		ParentSeen:         snap.read[c.parentSide],
		ParentSize:         c.parentSize,
		WindowLeft:         c.win[stream.Left].Count(),
		WindowRight:        c.win[stream.Right].Count(),
		PastPerturbedLeft:  c.pastPerturbed[stream.Left],
		PastPerturbedRight: c.pastPerturbed[stream.Right],
	}
	c.cal.observe(c.params, &obs)
	a, err := Assess(c.params, obs)
	if err != nil {
		// Inputs were validated at construction time; an error here is
		// a programming bug, not a data condition.
		panic(fmt.Sprintf("adaptive: sharded assess: %v", err))
	}
	if !a.MuLeft {
		c.pastPerturbed[stream.Left]++
	}
	if !a.MuRight {
		c.pastPerturbed[stream.Right]++
	}

	// Accrue the logical spend through this barrier — the interval's
	// dispatches all ran under the current broadcast state thanks to
	// the executor's barrier rendezvous — before the budget verdict,
	// exactly as the sequential responder prices the engine's stats
	// including the activation step itself.
	c.seqModel.StepsInState[c.state.Index()] += snap.step - c.costedStep
	c.seqModel.Steps = snap.step
	c.costedStep = snap.step
	overBudget := false
	if c.hasBudget {
		overBudget = metrics.Cost(c.seqModel, c.budgetWeights).Total >= c.budget
	}

	from := c.state
	to, forced := c.fut.respond(c.params, from, a, c.approxSeen, overBudget)
	if to != from {
		c.state = to
		c.gen.Add(1)
		c.fut.noteSwitch()
		c.seqModel.TransitionsInto[to.Index()]++
		c.seqModel.Switches++
	}
	if c.keepTrace {
		c.trace = append(c.trace, Activation{
			Observation: obs, Assessment: a, From: from, To: to,
			Forced: forced,
		})
	}
	if c.sink != nil {
		// Price the logical spend with the budget weights when a budget
		// is armed, the paper's otherwise — same units either way.
		w := c.budgetWeights
		if !c.hasBudget {
			w = metrics.PaperWeights()
		}
		emitDecision(c.sink, obs, a, from, to, forced, metrics.Cost(c.seqModel, w).Total)
	}
}
