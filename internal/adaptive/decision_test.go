package adaptive

import (
	"math"
	"testing"

	"adaptivelink/internal/join"
	"adaptivelink/internal/metrics"
	"adaptivelink/internal/pjoin"
	"adaptivelink/internal/relation"
	"adaptivelink/internal/stream"
)

// runShardedWith drives a prebuilt controller through a full P-shard
// join (runSharded's body, minus controller construction).
func runShardedWith(t *testing.T, ctl *ShardedController, parent, child *relation.Relation, shards int) {
	t.Helper()
	ex, err := pjoin.New(pjoin.Config{Join: join.Defaults(), Shards: shards, Controller: ctl},
		stream.FromRelation(parent), stream.FromRelation(child))
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Open(); err != nil {
		t.Fatal(err)
	}
	for {
		_, ok, err := ex.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDecisionReason(t *testing.T) {
	cases := []struct {
		from, to join.State
		sigma    bool
		forced   string
		want     string
	}{
		{join.LexRex, join.LexRex, false, "", "steady"},
		{join.LexRex, join.LexRex, true, "", "deficit-held"},
		{join.LexRex, join.LexRap, true, "", "deficit"},
		{join.LexRap, join.LexRex, false, "", "window-clear"},
		{join.LapRap, join.LexRex, false, "futility", "futility"},
		{join.LexRap, join.LexRex, true, "budget", "budget"},
	}
	for _, c := range cases {
		if got := DecisionReason(c.from, c.to, c.sigma, c.forced); got != c.want {
			t.Errorf("DecisionReason(%v,%v,%v,%q) = %q, want %q", c.from, c.to, c.sigma, c.forced, got, c.want)
		}
	}
}

// TestProbeLoopDecisionSink: the sink sees one event per activation,
// mirroring the kept trace exactly — same transitions, same forced
// labels — with Expected = p̂·probes (= probes under the resident p=1
// model) and Spend equal to the loop's own accounting at each point.
func TestProbeLoopDecisionSink(t *testing.T) {
	l := newTestProbeLoop(t, nil)
	l.EnableTrace()
	var events []DecisionEvent
	l.SetDecisionSink(func(e DecisionEvent) { events = append(events, e) })

	const ref = 100
	for i := 0; i < 10; i++ {
		l.NoteProbe(ref, true, 0)
	}
	if l.NoteProbe(ref, false, 0) { // deficit -> approx, escalate
		l.NoteEscalation(true, 1)
	}
	l.NoteProbe(ref, true, 0) // window clear -> back to exact

	trace := l.Activations()
	if len(events) != len(trace) {
		t.Fatalf("sink saw %d events, trace has %d activations", len(events), len(trace))
	}
	for i, e := range events {
		a := trace[i]
		if e.From != a.From || e.To != a.To || e.Forced != a.Forced {
			t.Errorf("event %d: %v->%v (%q), trace %v->%v (%q)", i, e.From, e.To, e.Forced, a.From, a.To, a.Forced)
		}
		if e.Step != a.Observation.Step || e.Observed != a.Observation.Observed {
			t.Errorf("event %d: step/observed %d/%d, trace %d/%d", i, e.Step, e.Observed, a.Observation.Step, a.Observation.Observed)
		}
		if e.Sigma != a.Assessment.Sigma || e.Tail != a.Assessment.Tail {
			t.Errorf("event %d: sigma/tail mismatch with trace", i)
		}
		// Resident model: p(n)=1, so expected hits = probes seen.
		if want := float64(a.Observation.ChildSeen); math.Abs(e.Expected-want) > 1e-9 {
			t.Errorf("event %d: expected %v, want %v", i, e.Expected, want)
		}
		if e.Reason != DecisionReason(e.From, e.To, e.Sigma, e.Forced) {
			t.Errorf("event %d: reason %q inconsistent with DecisionReason", i, e.Reason)
		}
	}
	// The final event's spend is the loop's spend at that activation;
	// after it only the trailing NoteProbe-free work could differ. Here
	// the last activation happens at the last probe, so they agree.
	if last := events[len(events)-1]; math.Abs(last.Spend-l.Spend()) > 1e-9 {
		t.Errorf("final event spend %v != loop spend %v", last.Spend, l.Spend())
	}
	// Both switches are visible with their reasons.
	var out, back bool
	for _, e := range events {
		if e.From == join.LexRex && e.To != join.LexRex && e.Reason == "deficit" {
			out = true
		}
		if e.From != join.LexRex && e.To == join.LexRex && e.Reason == "window-clear" {
			back = true
		}
	}
	if !out || !back {
		t.Errorf("missing transition reasons: deficit=%v window-clear=%v", out, back)
	}

	// Removing the sink stops emission.
	l.SetDecisionSink(nil)
	n := len(events)
	l.NoteProbe(ref, true, 0)
	if len(events) != n {
		t.Error("sink fired after removal")
	}
}

// TestProbeLoopDecisionSinkForced: budget and futility overrides carry
// their forced label through the sink.
func TestProbeLoopDecisionSinkForced(t *testing.T) {
	l := newTestProbeLoop(t, func(p *Params) { p.FutilityK = 2 })
	var events []DecisionEvent
	l.SetDecisionSink(func(e DecisionEvent) { events = append(events, e) })
	const ref = 50
	l.NoteProbe(ref, false, 0)
	l.NoteEscalation(false, 0)
	for i := 0; i < 10 && l.Mode() == join.Approx; i++ {
		l.NoteProbe(ref, false, 0)
		l.NoteEscalation(false, 0)
	}
	var futility bool
	for _, e := range events {
		if e.Forced == "futility" && e.Reason == "futility" {
			futility = true
		}
	}
	if !futility {
		t.Fatal("futility revert not visible through the sink")
	}

	// Budget: a tiny budget pins the state and labels the event.
	lb := newTestProbeLoop(t, nil)
	if err := lb.EnableCostBudget(metrics.PaperWeights(), 0.5); err != nil {
		t.Fatal(err)
	}
	events = events[:0]
	lb.SetDecisionSink(func(e DecisionEvent) { events = append(events, e) })
	lb.NoteProbe(ref, false, 0) // over budget immediately: forced to stay exact
	var budget bool
	for _, e := range events {
		if e.Forced == "budget" {
			budget = true
			if e.To != join.LexRex {
				t.Errorf("budget-forced event moved to %v", e.To)
			}
		}
	}
	if !budget {
		t.Fatal("budget pin not visible through the sink")
	}
}

// TestShardedDecisionSink: the sharded controller's sink mirrors its
// trace activation-for-activation, including both directions of the
// perturbation round trip.
func TestShardedDecisionSink(t *testing.T) {
	parent, child := buildScenario(11, 400, 40, 80)
	ctl, err := NewSharded(4, stream.Left, parent.Len(), shardedParams())
	if err != nil {
		t.Fatal(err)
	}
	ctl.EnableTrace()
	var events []DecisionEvent
	ctl.SetDecisionSink(func(e DecisionEvent) { events = append(events, e) })
	runShardedWith(t, ctl, parent, child, 4)

	trace := ctl.Activations()
	if len(events) == 0 || len(events) != len(trace) {
		t.Fatalf("sink saw %d events, trace has %d", len(events), len(trace))
	}
	for i, e := range events {
		a := trace[i]
		if e.From != a.From || e.To != a.To || e.Step != a.Observation.Step {
			t.Fatalf("event %d diverges from trace: %+v vs %+v", i, e, a)
		}
		if e.Reason != DecisionReason(a.From, a.To, a.Assessment.Sigma, a.Forced) {
			t.Errorf("event %d: reason %q inconsistent", i, e.Reason)
		}
		if want := a.Assessment.P * float64(a.Observation.ChildSeen); math.Abs(e.Expected-want) > 1e-9 {
			t.Errorf("event %d: expected %v, want %v", i, e.Expected, want)
		}
	}
	var moved bool
	for _, e := range events {
		if e.From != e.To {
			moved = true
			if e.Spend <= 0 {
				t.Errorf("switch event has non-positive spend %v", e.Spend)
			}
		}
	}
	if !moved {
		t.Fatal("no transition events despite the variant burst")
	}
}
