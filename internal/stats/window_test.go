package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSlidingWindowBasic(t *testing.T) {
	w := NewSlidingWindow(3)
	if w.Count() != 0 || w.Size() != 3 || w.Step() != 0 {
		t.Fatalf("fresh window: count=%d size=%d step=%d", w.Count(), w.Size(), w.Step())
	}
	w.Record(2)
	if w.Count() != 2 {
		t.Errorf("after Record(2): %d", w.Count())
	}
	w.Advance() // step 1
	w.Record(1)
	w.Advance() // step 2
	w.Record(1)
	if w.Count() != 4 {
		t.Errorf("window over steps {0,1,2} = %d, want 4", w.Count())
	}
	w.Advance() // step 3: step 0's events (2) must expire... window covers steps {1,2,3}
	if w.Count() != 2 {
		t.Errorf("after expiry: %d, want 2", w.Count())
	}
	w.Advance()
	w.Advance() // steps {3,4,5}: all recorded events expired
	if w.Count() != 0 {
		t.Errorf("all expired: %d, want 0", w.Count())
	}
}

func TestSlidingWindowRate(t *testing.T) {
	w := NewSlidingWindow(4)
	w.Record(2)
	if got := w.Rate(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Rate = %v, want 0.5", got)
	}
}

func TestSlidingWindowAdvanceTo(t *testing.T) {
	w := NewSlidingWindow(5)
	w.Record(3)
	w.AdvanceTo(2)
	if w.Step() != 2 || w.Count() != 3 {
		t.Errorf("AdvanceTo(2): step=%d count=%d", w.Step(), w.Count())
	}
	w.AdvanceTo(2) // no-op
	if w.Step() != 2 {
		t.Errorf("AdvanceTo same step moved to %d", w.Step())
	}
	// Jump past the entire window: everything expires via the fast path.
	w.AdvanceTo(100)
	if w.Step() != 100 || w.Count() != 0 {
		t.Errorf("AdvanceTo(100): step=%d count=%d", w.Step(), w.Count())
	}
}

func TestSlidingWindowAdvanceToBackwardsPanics(t *testing.T) {
	w := NewSlidingWindow(3)
	w.AdvanceTo(5)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on backwards AdvanceTo")
		}
	}()
	w.AdvanceTo(4)
}

func TestSlidingWindowRecordNegativePanics(t *testing.T) {
	w := NewSlidingWindow(3)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative Record")
		}
	}()
	w.Record(-1)
}

func TestNewSlidingWindowPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for size 0")
		}
	}()
	NewSlidingWindow(0)
}

func TestSlidingWindowReset(t *testing.T) {
	w := NewSlidingWindow(3)
	w.Record(5)
	w.Advance()
	w.Reset()
	if w.Count() != 0 || w.Step() != 0 {
		t.Errorf("after Reset: count=%d step=%d", w.Count(), w.Step())
	}
}

// Property: the window count always equals a brute-force recount of
// events within the last W steps, under arbitrary advance/record
// interleavings.
func TestSlidingWindowMatchesBruteForceProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		const W = 7
		w := NewSlidingWindow(W)
		events := map[int]int{} // step -> count
		step := 0
		for _, op := range ops {
			if op%3 == 0 {
				w.Advance()
				step++
			} else {
				n := int(op % 4)
				w.Record(n)
				events[step] += n
			}
			want := 0
			for s, c := range events {
				if s > step-W { // window covers (step-W, step]
					want += c
				}
			}
			if w.Count() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdDev() != 0 || w.N() != 0 {
		t.Error("zero-value Welford not zeroed")
	}
	samples := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, s := range samples {
		w.Add(s)
	}
	if w.N() != len(samples) {
		t.Errorf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	// Sample variance of that classic dataset is 32/7.
	if math.Abs(w.Variance()-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v, want %v", w.Variance(), 32.0/7.0)
	}
}

// Property: Welford agrees with the naive two-pass computation.
func TestWelfordMatchesNaiveProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var w Welford
		sum := 0.0
		for _, r := range raw {
			w.Add(float64(r))
			sum += float64(r)
		}
		mean := sum / float64(len(raw))
		if math.Abs(w.Mean()-mean) > 1e-6 {
			return false
		}
		if len(raw) < 2 {
			return w.Variance() == 0
		}
		ss := 0.0
		for _, r := range raw {
			d := float64(r) - mean
			ss += d * d
		}
		return math.Abs(w.Variance()-ss/float64(len(raw)-1)) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
