// Package stats supplies the statistical machinery behind the adaptive
// controller: the binomial tail test that detects result-size outliers
// (§3.2 of the paper), sliding-window event counters used by the µ and π
// perturbation predicates (§3.5), and small online-aggregation helpers
// used by the cost-weight calibration.
package stats

import (
	"fmt"
	"math"
)

// BinomialCDF returns P(X <= k) for X ~ bin(n, p).
//
// The assessor evaluates Pₙ,ₚ₍ₙ₎(O̅ₙ ≤ O) at every activation with n up
// to the child-table cardinality, so the implementation must be both
// accurate and O(1)-ish: for small n it sums the probability mass
// directly in log space; for large n it evaluates the regularised
// incomplete beta function via Lentz's continued fraction, using the
// identity P(X <= k) = I_{1-p}(n-k, k+1).
func BinomialCDF(k, n int, p float64) float64 {
	switch {
	case n < 0:
		panic(fmt.Sprintf("stats: BinomialCDF with negative n=%d", n))
	case p < 0 || p > 1 || math.IsNaN(p):
		panic(fmt.Sprintf("stats: BinomialCDF with invalid p=%v", p))
	case k < 0:
		return 0
	case k >= n:
		return 1
	case p == 0:
		return 1 // k >= 0 covers all mass
	case p == 1:
		return 0 // k < n misses the single atom at n
	}
	if n <= 64 {
		return binomialCDFDirect(k, n, p)
	}
	// P(X <= k) = I_{1-p}(n-k, k+1)
	return RegIncBeta(float64(n-k), float64(k+1), 1-p)
}

// binomialCDFDirect sums pmf terms in log space for numerical stability.
func binomialCDFDirect(k, n int, p float64) float64 {
	lp, lq := math.Log(p), math.Log1p(-p)
	sum := 0.0
	for i := 0; i <= k; i++ {
		logTerm := lchoose(n, i) + float64(i)*lp + float64(n-i)*lq
		sum += math.Exp(logTerm)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// BinomialPMF returns P(X == k) for X ~ bin(n, p).
func BinomialPMF(k, n int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p == 1 {
		if k == n {
			return 1
		}
		return 0
	}
	return math.Exp(lchoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p))
}

// lchoose returns log(n choose k).
func lchoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	lg1, _ := math.Lgamma(float64(n + 1))
	lg2, _ := math.Lgamma(float64(k + 1))
	lg3, _ := math.Lgamma(float64(n - k + 1))
	return lg1 - lg2 - lg3
}

// RegIncBeta computes the regularised incomplete beta function I_x(a, b)
// using the continued-fraction expansion with the symmetry transform for
// fast convergence (Numerical-Recipes-style betai).
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case a <= 0 || b <= 0:
		panic(fmt.Sprintf("stats: RegIncBeta with non-positive shape a=%v b=%v", a, b))
	case x < 0 || x > 1 || math.IsNaN(x):
		panic(fmt.Sprintf("stats: RegIncBeta with x=%v outside [0,1]", x))
	case x == 0:
		return 0
	case x == 1:
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log1p(-x))
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betacf evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := 2 * m
		fm := float64(m)
		aa := fm * (b - fm) * x / ((qam + float64(m2)) * (a + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + float64(m2)) * (qap + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			return h
		}
	}
	// Non-convergence is a numerical pathology we surface loudly rather
	// than silently returning garbage to the assessor.
	panic(fmt.Sprintf("stats: betacf failed to converge for a=%v b=%v x=%v", a, b, x))
}

// BinomialOutlierTest reports whether an observation obs is a significant
// low-side outlier for bin(n, p) at level theta: P(X <= obs) <= theta.
// It returns the tail probability alongside the verdict so callers can
// log the evidence.
func BinomialOutlierTest(obs, n int, p, theta float64) (tail float64, outlier bool) {
	tail = BinomialCDF(obs, n, p)
	return tail, tail <= theta
}
