package stats

import (
	"fmt"
	"math"
)

// SlidingWindow counts boolean events over the most recent W steps of a
// monotonically advancing step counter. The assessor maintains one per
// input side to evaluate A_{t,W}, the number of approximate matches seen
// in the interval [t-W, t] (§3.5).
//
// Steps are reported via Advance; events at the current step via Record.
// Multiple events may land on the same step (a single probe can produce
// several approximate matches).
type SlidingWindow struct {
	size   int
	counts []int // ring buffer of per-step event counts
	head   int   // ring index of the current step
	step   int   // current step number
	total  int   // sum of counts currently inside the window
}

// NewSlidingWindow creates a window covering w steps. It panics if w < 1.
func NewSlidingWindow(w int) *SlidingWindow {
	if w < 1 {
		panic(fmt.Sprintf("stats: sliding window size %d < 1", w))
	}
	return &SlidingWindow{size: w, counts: make([]int, w)}
}

// Size returns the window width W.
func (s *SlidingWindow) Size() int { return s.size }

// Step returns the current step number.
func (s *SlidingWindow) Step() int { return s.step }

// Advance moves the window forward to the next step, expiring the count
// that falls out of the interval.
func (s *SlidingWindow) Advance() {
	s.step++
	s.head = (s.head + 1) % s.size
	s.total -= s.counts[s.head]
	s.counts[s.head] = 0
}

// AdvanceTo advances until the current step equals target. It panics on
// attempts to move backwards, which would indicate a controller bug.
func (s *SlidingWindow) AdvanceTo(target int) {
	if target < s.step {
		panic(fmt.Sprintf("stats: AdvanceTo(%d) behind current step %d", target, s.step))
	}
	if target-s.step >= s.size {
		// Whole window expires: reset in O(W) instead of stepping one by one.
		for i := range s.counts {
			s.counts[i] = 0
		}
		s.total = 0
		s.head = 0
		s.step = target
		return
	}
	for s.step < target {
		s.Advance()
	}
}

// Record registers n events at the current step.
func (s *SlidingWindow) Record(n int) {
	if n < 0 {
		panic(fmt.Sprintf("stats: Record(%d) negative", n))
	}
	s.counts[s.head] += n
	s.total += n
}

// Count returns the number of events within the last W steps (A_{t,W}).
func (s *SlidingWindow) Count() int { return s.total }

// Rate returns Count()/W, the relative frequency the µ predicate tests.
func (s *SlidingWindow) Rate() float64 { return float64(s.total) / float64(s.size) }

// Reset clears all state.
func (s *SlidingWindow) Reset() {
	for i := range s.counts {
		s.counts[i] = 0
	}
	s.head, s.step, s.total = 0, 0, 0
}

// Welford accumulates a running mean and variance without storing
// samples; the weight-calibration tool uses it to average per-step
// elapsed times across experiments.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one sample into the aggregate.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of samples seen.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 with no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 with fewer than two
// samples).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 {
	v := w.Variance()
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}
