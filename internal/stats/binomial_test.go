package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBinomialPMFKnownValues(t *testing.T) {
	cases := []struct {
		k, n int
		p    float64
		want float64
	}{
		{0, 1, 0.5, 0.5},
		{1, 1, 0.5, 0.5},
		{2, 4, 0.5, 0.375},
		{0, 10, 0.1, math.Pow(0.9, 10)},
		{10, 10, 0.1, math.Pow(0.1, 10)},
		{-1, 5, 0.5, 0},
		{6, 5, 0.5, 0},
		{0, 3, 0, 1},
		{1, 3, 0, 0},
		{3, 3, 1, 1},
		{2, 3, 1, 0},
	}
	for _, c := range cases {
		if got := BinomialPMF(c.k, c.n, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("PMF(%d,%d,%v) = %v, want %v", c.k, c.n, c.p, got, c.want)
		}
	}
}

func TestBinomialCDFSmallExact(t *testing.T) {
	// bin(4, 0.5): CDF = 1/16, 5/16, 11/16, 15/16, 1.
	want := []float64{1.0 / 16, 5.0 / 16, 11.0 / 16, 15.0 / 16, 1}
	for k, w := range want {
		if got := BinomialCDF(k, 4, 0.5); math.Abs(got-w) > 1e-12 {
			t.Errorf("CDF(%d,4,0.5) = %v, want %v", k, got, w)
		}
	}
}

func TestBinomialCDFEdgeCases(t *testing.T) {
	if got := BinomialCDF(-1, 10, 0.3); got != 0 {
		t.Errorf("CDF(k<0) = %v, want 0", got)
	}
	if got := BinomialCDF(10, 10, 0.3); got != 1 {
		t.Errorf("CDF(k=n) = %v, want 1", got)
	}
	if got := BinomialCDF(12, 10, 0.3); got != 1 {
		t.Errorf("CDF(k>n) = %v, want 1", got)
	}
	if got := BinomialCDF(0, 10, 0); got != 1 {
		t.Errorf("CDF(p=0) = %v, want 1", got)
	}
	if got := BinomialCDF(5, 10, 1); got != 0 {
		t.Errorf("CDF(k<n, p=1) = %v, want 0", got)
	}
	if got := BinomialCDF(0, 0, 0.5); got != 1 {
		t.Errorf("CDF(n=0,k=0) = %v, want 1", got)
	}
}

func TestBinomialCDFPanicsOnBadArgs(t *testing.T) {
	for _, fn := range []func(){
		func() { BinomialCDF(1, -1, 0.5) },
		func() { BinomialCDF(1, 5, -0.1) },
		func() { BinomialCDF(1, 5, 1.1) },
		func() { BinomialCDF(1, 5, math.NaN()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for invalid arguments")
				}
			}()
			fn()
		}()
	}
}

// Cross-validate the beta-function path against direct summation around
// the n=64 implementation switch and well above it.
func TestBinomialCDFBetaAgreesWithDirect(t *testing.T) {
	for _, n := range []int{65, 100, 500, 2000} {
		for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
			for _, kFrac := range []float64{0, 0.25, 0.5, 0.75, 1} {
				k := int(kFrac * float64(n-1))
				direct := binomialCDFDirect(k, n, p)
				beta := RegIncBeta(float64(n-k), float64(k+1), 1-p)
				if math.Abs(direct-beta) > 1e-9 {
					t.Errorf("n=%d p=%v k=%d: direct %v vs beta %v", n, p, k, direct, beta)
				}
			}
		}
	}
}

func TestBinomialCDFLargeNNormalApprox(t *testing.T) {
	// For n=8082, p=0.5 the CDF at the mean must be ~0.5.
	got := BinomialCDF(8082/2, 8082, 0.5)
	if math.Abs(got-0.5) > 0.01 {
		t.Errorf("CDF at mean = %v, want ~0.5", got)
	}
	// Far below the mean the tail must be tiny: mean - 10 sigma.
	sigma := math.Sqrt(8082 * 0.5 * 0.5)
	k := int(8082*0.5 - 10*sigma)
	if got := BinomialCDF(k, 8082, 0.5); got > 1e-10 {
		t.Errorf("CDF 10 sigma below mean = %v, want ~0", got)
	}
}

// Property: CDF is monotone non-decreasing in k and bounded in [0,1].
func TestBinomialCDFMonotoneProperty(t *testing.T) {
	f := func(nRaw uint16, pRaw uint16) bool {
		n := int(nRaw%300) + 1
		p := float64(pRaw%1000) / 1000
		prev := 0.0
		for k := 0; k <= n; k++ {
			c := BinomialCDF(k, n, p)
			if c < prev-1e-12 || c < 0 || c > 1+1e-12 {
				return false
			}
			prev = c
		}
		return math.Abs(prev-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: CDF(k) equals the cumulative sum of PMF values.
func TestCDFMatchesPMFSumProperty(t *testing.T) {
	f := func(nRaw, pRaw uint16) bool {
		n := int(nRaw%150) + 1
		p := float64(pRaw%1000) / 1000
		sum := 0.0
		for k := 0; k <= n; k++ {
			sum += BinomialPMF(k, n, p)
			if math.Abs(BinomialCDF(k, n, p)-math.Min(sum, 1)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	// I_x(1,1) = x.
	for _, x := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := RegIncBeta(1, 1, x); math.Abs(got-x) > 1e-12 {
			t.Errorf("I_%v(1,1) = %v, want %v", x, got, x)
		}
	}
	// I_x(2,2) = 3x^2 - 2x^3.
	for _, x := range []float64{0.1, 0.5, 0.9} {
		want := 3*x*x - 2*x*x*x
		if got := RegIncBeta(2, 2, x); math.Abs(got-want) > 1e-12 {
			t.Errorf("I_%v(2,2) = %v, want %v", x, got, want)
		}
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	if got := RegIncBeta(3.5, 1.25, 0.3) + RegIncBeta(1.25, 3.5, 0.7); math.Abs(got-1) > 1e-12 {
		t.Errorf("symmetry violated: sum = %v", got)
	}
}

func TestRegIncBetaPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { RegIncBeta(0, 1, 0.5) },
		func() { RegIncBeta(1, -1, 0.5) },
		func() { RegIncBeta(1, 1, -0.1) },
		func() { RegIncBeta(1, 1, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestBinomialOutlierTest(t *testing.T) {
	// Observing 0 successes in 100 trials at p=0.5 is a blatant outlier.
	tail, out := BinomialOutlierTest(0, 100, 0.5, 0.05)
	if !out || tail > 1e-20 {
		t.Errorf("0/100 at p=.5: tail=%v outlier=%v", tail, out)
	}
	// Observing the mean is not.
	tail, out = BinomialOutlierTest(50, 100, 0.5, 0.05)
	if out || tail < 0.4 {
		t.Errorf("50/100 at p=.5: tail=%v outlier=%v", tail, out)
	}
}
