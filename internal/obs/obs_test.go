package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.resolved()
	if cfg.SampleEvery != DefaultSampleEvery {
		t.Errorf("SampleEvery = %d, want %d", cfg.SampleEvery, DefaultSampleEvery)
	}
	if cfg.SlowThreshold != DefaultSlowThreshold {
		t.Errorf("SlowThreshold = %v, want %v", cfg.SlowThreshold, DefaultSlowThreshold)
	}
	if cfg.Capacity != DefaultCapacity || cfg.SlowCapacity != DefaultSlowCapacity {
		t.Errorf("capacities = %d/%d, want %d/%d", cfg.Capacity, cfg.SlowCapacity, DefaultCapacity, DefaultSlowCapacity)
	}
	// Negative values survive (they mean "disabled").
	off := Config{SampleEvery: -1, SlowThreshold: -1}.resolved()
	if off.SampleEvery != -1 || off.SlowThreshold != -1 {
		t.Errorf("disabled knobs rewritten: %+v", off)
	}
}

func TestNewIDUnique(t *testing.T) {
	tr := NewTracer(Config{})
	a, b := tr.NewID(), tr.NewID()
	if a == b {
		t.Fatalf("NewID returned duplicate %q", a)
	}
	if !strings.Contains(a, "-") {
		t.Errorf("id %q missing prefix separator", a)
	}
}

func TestSamplingCadence(t *testing.T) {
	tr := NewTracer(Config{SampleEvery: 4})
	var sampled int
	for i := 0; i < 16; i++ {
		if tr.Begin("/v1/link", tr.NewID(), false) != nil {
			sampled++
		}
	}
	if sampled != 4 {
		t.Errorf("sampled %d of 16 with SampleEvery=4, want 4", sampled)
	}
	// The very first request must be sampled (cadence starts at 1, not N).
	tr2 := NewTracer(Config{SampleEvery: 100})
	if tr2.Begin("/v1/link", "x", false) == nil {
		t.Error("first request not sampled with SampleEvery=100")
	}
}

func TestSamplingEveryRequest(t *testing.T) {
	tr := NewTracer(Config{SampleEvery: 1})
	for i := 0; i < 5; i++ {
		if tr.Begin("/v1/link", "x", false) == nil {
			t.Fatalf("request %d not sampled with SampleEvery=1", i)
		}
	}
}

func TestSamplingDisabled(t *testing.T) {
	tr := NewTracer(Config{SampleEvery: -1})
	for i := 0; i < 8; i++ {
		if tr.Begin("/v1/link", "x", false) != nil {
			t.Fatal("sampled with SampleEvery=-1")
		}
	}
	// Force overrides the disabled sampler.
	if tr.Begin("/v1/link", "x", true) == nil {
		t.Error("force=true did not begin a trace")
	}
}

func TestTraceSpansAndRetention(t *testing.T) {
	tr := NewTracer(Config{SampleEvery: 1, SlowThreshold: -1})
	id := tr.NewID()
	tt := tr.Begin("/v1/link", id, false)
	tt.SetTarget("bench", 42)
	start := time.Now().Add(-3 * time.Millisecond)
	tt.AddSpanDur("queue", start, 2*time.Millisecond)
	tt.AddSpanDur("probe", start.Add(2*time.Millisecond), time.Millisecond)
	if slow := tr.End(tt, id, "/v1/link", 200, 3*time.Millisecond); slow {
		t.Error("slow=true with slow capture disabled")
	}
	got := tr.Find(id)
	if got == nil {
		t.Fatal("Find did not return the recorded trace")
	}
	if got.Index != "bench" || got.Keys != 42 || got.Status != 200 {
		t.Errorf("trace fields = %q/%d/%d", got.Index, got.Keys, got.Status)
	}
	if len(got.Spans) != 2 || got.Spans[0].Name != "queue" || got.Spans[1].Name != "probe" {
		t.Fatalf("spans = %+v", got.Spans)
	}
	if got.Spans[0].DurMillis < 1.9 || got.Spans[0].DurMillis > 2.1 {
		t.Errorf("queue span duration = %v ms, want ~2", got.Spans[0].DurMillis)
	}
	recent := tr.Recent()
	if len(recent) != 1 || recent[0].ID != id {
		t.Errorf("Recent() = %d traces", len(recent))
	}
	if tr.SampledSeen() != 1 {
		t.Errorf("SampledSeen = %d", tr.SampledSeen())
	}
}

func TestNilTraceMethodsSafe(t *testing.T) {
	var tt *Trace
	tt.SetTarget("x", 1)
	tt.AddSpan("a", time.Now())
	tt.AddSpanDur("b", time.Now(), time.Millisecond)
	tr := NewTracer(Config{SlowThreshold: -1})
	if slow := tr.End(nil, "id", "/x", 200, time.Second); slow {
		t.Error("nil trace + disabled slowlog reported slow")
	}
}

func TestSlowCaptureWithoutSampling(t *testing.T) {
	tr := NewTracer(Config{SampleEvery: -1, SlowThreshold: 10 * time.Millisecond})
	if slow := tr.End(nil, "req-1", "/v1/link", 200, 50*time.Millisecond); !slow {
		t.Fatal("50ms request not flagged slow at 10ms threshold")
	}
	if slow := tr.End(nil, "req-2", "/v1/link", 200, 5*time.Millisecond); slow {
		t.Fatal("5ms request flagged slow at 10ms threshold")
	}
	slowTraces := tr.Slow()
	if len(slowTraces) != 1 || slowTraces[0].ID != "req-1" {
		t.Fatalf("Slow() = %+v", slowTraces)
	}
	if slowTraces[0].Sampled {
		t.Error("unsampled slow trace marked Sampled")
	}
	if len(tr.Recent()) != 0 {
		t.Error("unsampled slow trace leaked into recent ring")
	}
	if tr.SlowSeen() != 1 {
		t.Errorf("SlowSeen = %d, want 1", tr.SlowSeen())
	}
	// Find falls through to the slow ring.
	if tr.Find("req-1") == nil {
		t.Error("Find did not reach the slow ring")
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	tr := NewTracer(Config{SampleEvery: 1, Capacity: 4, SlowThreshold: -1})
	for i := 0; i < 10; i++ {
		id := tr.NewID()
		tt := tr.Begin("/v1/link", id, false)
		tr.End(tt, id, "/v1/link", 200, time.Millisecond)
	}
	recent := tr.Recent()
	if len(recent) != 4 {
		t.Fatalf("Recent() kept %d, want capacity 4", len(recent))
	}
	// Newest first: ids end 000010, 000009, 000008, 000007.
	for i := 1; i < len(recent); i++ {
		if recent[i-1].ID <= recent[i].ID {
			t.Errorf("not newest-first: %q before %q", recent[i-1].ID, recent[i].ID)
		}
	}
}

func TestRingConcurrency(t *testing.T) {
	tr := NewTracer(Config{SampleEvery: 1, Capacity: 8, SlowThreshold: 0})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := tr.NewID()
				tt := tr.Begin("/v1/link", id, false)
				tt.AddSpanDur("probe", time.Now(), time.Millisecond)
				tr.End(tt, id, "/v1/link", 200, time.Millisecond)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			for _, tc := range tr.Recent() {
				_ = tc.ID
			}
			tr.Find("nope")
		}
	}()
	wg.Wait()
	<-done
	if got := tr.SampledSeen(); got != 800 {
		t.Errorf("SampledSeen = %d, want 800", got)
	}
}

func TestContextHelpers(t *testing.T) {
	ctx := context.Background()
	if TraceFrom(ctx) != nil || RequestID(ctx) != "" {
		t.Fatal("empty context returned values")
	}
	tt := &Trace{ID: "abc"}
	ctx = WithTrace(WithRequestID(ctx, "abc"), tt)
	if TraceFrom(ctx) != tt {
		t.Error("TraceFrom mismatch")
	}
	if RequestID(ctx) != "abc" {
		t.Error("RequestID mismatch")
	}
}
