// Package obs is the service's observability layer: request traces
// with span timings, a sampling gate, and lock-free ring buffers
// retaining the recent sampled traces plus a slow-request log.
//
// The design contract is allocation discipline on the hot path:
//
//   - Sampling is decided with one atomic increment. An unsampled
//     request allocates NOTHING here — Begin returns nil, and every
//     *Trace method is nil-safe, so callers thread the (possibly nil)
//     trace through unconditionally.
//   - A sampled request allocates one Trace and its span slice —
//     bounded, request-scoped, and amortised by the sampling ratio.
//   - Ring publication is an atomic pointer store; readers load
//     pointers and only ever see fully finished traces (a Trace is
//     immutable once recorded). No locks anywhere.
//
// Slow-request capture is independent of sampling: a request at or
// over the threshold always lands in the slow ring (with spans when it
// happened to be sampled, without when not), so the slowlog never
// misses an outlier just because the sampler skipped it.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
	"time"
)

// Defaults for Config's zero values.
const (
	DefaultSampleEvery   = 16
	DefaultSlowThreshold = 500 * time.Millisecond
	DefaultCapacity      = 256
	DefaultSlowCapacity  = 128
)

// Config sizes a Tracer. Zero values select the defaults above;
// negative SampleEvery disables sampling (slow capture still runs) and
// negative SlowThreshold disables the slow log.
type Config struct {
	// SampleEvery samples one of every N requests for a full span
	// trace (0 = DefaultSampleEvery, <0 = sampling off).
	SampleEvery int
	// SlowThreshold is the duration at or above which a request enters
	// the slow ring regardless of sampling (0 = DefaultSlowThreshold,
	// <0 = slow capture off).
	SlowThreshold time.Duration
	// Capacity is the recent-sampled ring size (0 = DefaultCapacity).
	Capacity int
	// SlowCapacity is the slow ring size (0 = DefaultSlowCapacity).
	SlowCapacity int
}

func (c Config) resolved() Config {
	if c.SampleEvery == 0 {
		c.SampleEvery = DefaultSampleEvery
	}
	if c.SlowThreshold == 0 {
		c.SlowThreshold = DefaultSlowThreshold
	}
	if c.Capacity <= 0 {
		c.Capacity = DefaultCapacity
	}
	if c.SlowCapacity <= 0 {
		c.SlowCapacity = DefaultSlowCapacity
	}
	return c
}

// Span is one timed section of a request, offset-relative to the
// request's start.
type Span struct {
	Name        string  `json:"name"`
	StartMillis float64 `json:"start_ms"`
	DurMillis   float64 `json:"duration_ms"`
}

// Trace is one request's record. It is mutated only by the goroutine
// serving the request and becomes immutable once recorded into a ring
// (the atomic pointer store publishes it to readers).
type Trace struct {
	ID        string    `json:"request_id"`
	Route     string    `json:"route"`
	Index     string    `json:"index,omitempty"`
	Keys      int       `json:"keys,omitempty"`
	Status    int       `json:"status"`
	Start     time.Time `json:"start"`
	DurMillis float64   `json:"duration_ms"`
	// Sampled reports whether span collection was on; a slow but
	// unsampled request appears in the slow ring with Sampled false and
	// no spans.
	Sampled bool   `json:"sampled"`
	Spans   []Span `json:"spans,omitempty"`
}

// SetTarget records what the request operated on. Nil-safe.
func (t *Trace) SetTarget(index string, keys int) {
	if t == nil {
		return
	}
	t.Index, t.Keys = index, keys
}

// AddSpan appends a span covering from..now. Nil-safe, so callers on
// the hot path need no sampling branch of their own.
func (t *Trace) AddSpan(name string, from time.Time) {
	if t == nil {
		return
	}
	t.AddSpanDur(name, from, time.Since(from))
}

// AddSpanDur appends a span of an explicit duration. Nil-safe.
func (t *Trace) AddSpanDur(name string, from time.Time, d time.Duration) {
	if t == nil {
		return
	}
	t.Spans = append(t.Spans, Span{
		Name:        name,
		StartMillis: float64(from.Sub(t.Start).Microseconds()) / 1000,
		DurMillis:   float64(d.Microseconds()) / 1000,
	})
}

// ring is a lock-free overwrite-oldest trace buffer: one atomic cursor
// claims slots, atomic pointer stores publish finished traces.
type ring struct {
	slots []atomic.Pointer[Trace]
	next  atomic.Uint64
}

func newRing(capacity int) *ring {
	return &ring{slots: make([]atomic.Pointer[Trace], capacity)}
}

func (r *ring) add(t *Trace) {
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(t)
}

// snapshot returns the retained traces, newest first. Concurrent adds
// may race individual slots; every returned trace is nonetheless a
// fully published one.
func (r *ring) snapshot() []*Trace {
	n := len(r.slots)
	cursor := r.next.Load()
	out := make([]*Trace, 0, n)
	for k := 0; k < n; k++ {
		idx := (cursor + uint64(n) - 1 - uint64(k)) % uint64(n)
		if t := r.slots[idx].Load(); t != nil {
			out = append(out, t)
		}
	}
	return out
}

func (r *ring) find(id string) *Trace {
	for i := range r.slots {
		if t := r.slots[i].Load(); t != nil && t.ID == id {
			return t
		}
	}
	return nil
}

// Tracer mints request ids, decides sampling and retains finished
// traces. Safe for concurrent use; every operation is lock-free.
type Tracer struct {
	cfg      Config
	idPrefix string
	idSeq    atomic.Uint64
	sampleN  atomic.Uint64
	recent   *ring
	slow     *ring
	slowSeen atomic.Uint64
	sampled  atomic.Uint64
}

// NewTracer builds a tracer with cfg's zero values defaulted.
func NewTracer(cfg Config) *Tracer {
	cfg = cfg.resolved()
	var b [4]byte
	rand.Read(b[:])
	return &Tracer{
		cfg:      cfg,
		idPrefix: hex.EncodeToString(b[:]),
		recent:   newRing(cfg.Capacity),
		slow:     newRing(cfg.SlowCapacity),
	}
}

// Config returns the resolved configuration.
func (tr *Tracer) Config() Config { return tr.cfg }

// SlowThreshold is the resolved slow threshold (negative = disabled).
func (tr *Tracer) SlowThreshold() time.Duration { return tr.cfg.SlowThreshold }

// NewID mints a process-unique request id (boot-random prefix plus a
// sequence number).
func (tr *Tracer) NewID() string {
	return fmt.Sprintf("%s-%06d", tr.idPrefix, tr.idSeq.Add(1))
}

// Begin starts a trace for the request when the sampler (or force)
// selects it, and returns nil otherwise — the nil is threaded through
// the request unchanged and costs nothing.
func (tr *Tracer) Begin(route, id string, force bool) *Trace {
	if !force {
		if tr.cfg.SampleEvery < 0 {
			return nil
		}
		n := tr.sampleN.Add(1)
		if n%uint64(tr.cfg.SampleEvery) != 1%uint64(tr.cfg.SampleEvery) {
			return nil
		}
	}
	tr.sampled.Add(1)
	return &Trace{
		ID:      id,
		Route:   route,
		Start:   time.Now(),
		Sampled: true,
		Spans:   make([]Span, 0, 8),
	}
}

// End finalises and retains the request's record: a sampled trace goes
// to the recent ring, and any request at or over the slow threshold —
// sampled or not — goes to the slow ring. It reports whether the
// request was slow (so the caller can log it).
func (tr *Tracer) End(t *Trace, id, route string, status int, total time.Duration) (slow bool) {
	slow = tr.cfg.SlowThreshold >= 0 && total >= tr.cfg.SlowThreshold
	if t == nil {
		if !slow {
			return false
		}
		// Slow but unsampled: retain a coarse record (no spans were
		// collected, by design — collecting them would put allocations
		// on every request).
		t = &Trace{ID: id, Route: route, Start: time.Now().Add(-total)}
	}
	t.Status = status
	t.DurMillis = float64(total.Microseconds()) / 1000
	if t.Sampled {
		tr.recent.add(t)
	}
	if slow {
		tr.slowSeen.Add(1)
		tr.slow.add(t)
	}
	return slow
}

// Recent returns the retained sampled traces, newest first.
func (tr *Tracer) Recent() []*Trace { return tr.recent.snapshot() }

// Slow returns the retained slow traces, newest first.
func (tr *Tracer) Slow() []*Trace { return tr.slow.snapshot() }

// SlowSeen is the total number of slow requests observed (not just
// those still retained).
func (tr *Tracer) SlowSeen() uint64 { return tr.slowSeen.Load() }

// SampledSeen is the total number of requests that got a span trace.
func (tr *Tracer) SampledSeen() uint64 { return tr.sampled.Load() }

// Find returns a retained trace by request id (recent ring first, then
// slow), or nil — only sampled or slow requests are retained.
func (tr *Tracer) Find(id string) *Trace {
	if t := tr.recent.find(id); t != nil {
		return t
	}
	return tr.slow.find(id)
}

type ctxKey int

const (
	traceKey ctxKey = iota
	requestIDKey
)

// WithTrace attaches a sampled trace to the context.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey, t)
}

// TraceFrom returns the context's trace, or nil (the common, unsampled
// case — safe to call every *Trace method on).
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey).(*Trace)
	return t
}

// WithRequestID attaches the request id to the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID returns the context's request id ("" if none).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}
