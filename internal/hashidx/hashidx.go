// Package hashidx implements the two hash data structures of Fig. 3 in
// the paper: the exact attribute-value hash table used by SHJoin and the
// q-gram inverted index used by SSHJoin.
//
// Both index one side of a symmetric join. Tuples are identified by
// their dense position ("ref") in the side's tuple store, which the join
// engine owns. Each index remembers how many tuples of its side it has
// absorbed (Indexed); the hybrid engine exploits this for the lazy
// catch-up of §2.3 — only the index needed by the currently active
// operator is kept up to date, and a switch pays only for the tuples
// read since the previous switch.
package hashidx

import (
	"fmt"
	"slices"
	"sort"

	"adaptivelink/internal/qgram"
)

// ExactIndex is a hash table from join-key value to the refs of the
// tuples carrying that value (SHJoin's per-operand state).
type ExactIndex struct {
	buckets map[string][]int
	indexed int
	entries int // live entries: indexed minus evicted
}

// NewExactIndex returns an empty exact index.
func NewExactIndex() *ExactIndex {
	return &ExactIndex{buckets: make(map[string][]int)}
}

// Insert registers the tuple at position ref with the given key. Refs
// must be inserted densely in order; this invariant is what makes lazy
// catch-up a pure suffix operation.
func (x *ExactIndex) Insert(ref int, key string) {
	if ref != x.indexed {
		panic(fmt.Sprintf("hashidx: ExactIndex.Insert ref %d, want %d (dense order)", ref, x.indexed))
	}
	x.buckets[key] = append(x.buckets[key], ref)
	x.indexed++
	x.entries++
}

// Lookup returns the refs of all tuples whose key equals key. The
// returned slice is owned by the index; callers must not mutate it.
func (x *ExactIndex) Lookup(key string) []int {
	return x.buckets[key]
}

// Clone returns a deep copy sharing no mutable state with x: the
// copy-on-write step of an RCU snapshot build. Inserts into the clone
// never disturb readers of the original (bucket slices are copied, so a
// clone-side append cannot land in a shared backing array).
func (x *ExactIndex) Clone() *ExactIndex {
	c := &ExactIndex{
		buckets: make(map[string][]int, len(x.buckets)),
		indexed: x.indexed,
		entries: x.entries,
	}
	for key, refs := range x.buckets {
		c.buckets[key] = append([]int(nil), refs...)
	}
	return c
}

// Indexed returns how many tuples of the side have been absorbed (the
// dense insertion clock; eviction does not rewind it).
func (x *ExactIndex) Indexed() int { return x.indexed }

// Entries returns the number of live entries: insertions minus evicted.
func (x *ExactIndex) Entries() int { return x.entries }

// CatchUp absorbs keys[Indexed():], bringing the index up to date with a
// side whose tuples have the given join keys, and returns the number of
// tuples inserted. This is the switch-time update of §2.3.
func (x *ExactIndex) CatchUp(keys []string) int {
	start := x.indexed
	for ref := start; ref < len(keys); ref++ {
		x.Insert(ref, keys[ref])
	}
	return len(keys) - start
}

// evictPrefix removes every ref below minRef from each bucket of a
// ref-list map. Dense insertion keeps the lists sorted ascending, so
// eviction is a prefix cut per list; emptied lists are deleted and
// surviving tails are copied so the evicted prefixes become garbage
// immediately. Returns the number of entries dropped.
func evictPrefix(buckets map[string][]int, minRef int) int {
	dropped := 0
	for key, refs := range buckets {
		cut := sort.SearchInts(refs, minRef)
		if cut == 0 {
			continue
		}
		dropped += cut
		if cut == len(refs) {
			delete(buckets, key)
			continue
		}
		buckets[key] = append([]int(nil), refs[cut:]...)
	}
	return dropped
}

// EvictBelow physically removes every entry whose ref is below minRef,
// returning the number of entries dropped. Indexed() is unchanged:
// eviction frees memory but does not rewind the dense insertion clock,
// so Insert and CatchUp keep working after evictions.
func (x *ExactIndex) EvictBelow(minRef int) int {
	dropped := evictPrefix(x.buckets, minRef)
	x.entries -= dropped
	return dropped
}

// Buckets returns the number of distinct key values indexed.
func (x *ExactIndex) Buckets() int { return len(x.buckets) }

// AvgBucketLen returns the mean bucket length B_ex used by the cost
// analysis of Table 1 (0 for an empty index).
func (x *ExactIndex) AvgBucketLen() float64 {
	if len(x.buckets) == 0 {
		return 0
	}
	return float64(x.entries) / float64(len(x.buckets))
}

// Candidate is a probe result: a stored tuple sharing Overlap distinct
// q-grams with the probe value (the set T(t) with counters c(t′) of
// §2.2).
type Candidate struct {
	Ref     int
	Overlap int
}

// QGramIndex is an inverted index from q-gram to the refs of tuples
// whose join key contains that gram. Posting-list lengths double as the
// gram frequencies that drive the reverse-frequency probe optimisation.
//
// The representation is dictionary-encoded: grams are interned into a
// per-index qgram.Dict of dense uint32 ids, postings form a
// slice-indexed table keyed by gram id, and each indexed tuple stores
// its sorted gram-id signature once at insert time. Probes run entirely
// on ids with epoch-stamped counting arrays — no per-probe maps and,
// given a caller-owned ProbeScratch, no per-probe allocations.
type QGramIndex struct {
	ex       *qgram.Extractor
	dict     *qgram.Dict
	postings [][]int32  // gram id -> ascending refs
	sizes    []uint32   // ref -> |q(key(ref))|; retained over eviction
	sigs     [][]uint32 // ref -> sorted gram-id signature; nil'd by eviction
	buckets  int        // posting lists currently non-empty
	indexed  int
	entries  int // total postings, for the space accounting of §2.3
	sigFloor int // refs below it have had their signatures released

	// insc backs Insert/CatchUp. Writer-side state only: inserts are
	// single-writer by the index contract (dense ref order), so probes
	// — which may run concurrently on immutable clones — never touch it.
	insc  qgram.Scratch
	idbuf []uint32
}

// NewQGramIndex returns an empty inverted index using the extractor's
// gram definition.
func NewQGramIndex(ex *qgram.Extractor) *QGramIndex {
	return &QGramIndex{ex: ex, dict: qgram.NewDict()}
}

// Extractor exposes the gram definition shared with callers.
func (x *QGramIndex) Extractor() *qgram.Extractor { return x.ex }

// Dict exposes the index's gram dictionary (read-only for probes).
func (x *QGramIndex) Dict() *qgram.Dict { return x.dict }

// Insert decomposes key into q-grams and registers ref under each
// (operation 2 of §2.2: one pointer insertion per gram). Refs must be
// inserted densely in order.
func (x *QGramIndex) Insert(ref int, key string) {
	x.insc.Reset()
	x.InsertKey(ref, x.ex.Decompose(&x.insc, key))
}

// InsertKey is Insert for a key already decomposed by an extractor
// configured identically to the index's own: grams are interned into
// the index dictionary and only the posting appends remain. This is
// what lets writers decompose outside their critical section —
// decomposition is the expensive part of an insert, the id appends are
// not.
func (x *QGramIndex) InsertKey(ref int, k qgram.Key) {
	x.idbuf = x.dict.Intern(x.idbuf[:0], k)
	x.insertIDs(ref, x.idbuf)
}

// InsertGrams is InsertKey for a pre-materialised gram slice.
func (x *QGramIndex) InsertGrams(ref int, grams []string) {
	x.idbuf = x.dict.InternStrings(x.idbuf[:0], grams)
	x.insertIDs(ref, x.idbuf)
}

func (x *QGramIndex) insertIDs(ref int, ids []uint32) {
	if ref != x.indexed {
		panic(fmt.Sprintf("hashidx: QGramIndex.Insert ref %d, want %d (dense order)", ref, x.indexed))
	}
	for len(x.postings) < x.dict.Len() {
		x.postings = append(x.postings, nil)
	}
	for _, id := range ids {
		if len(x.postings[id]) == 0 {
			x.buckets++
		}
		x.postings[id] = append(x.postings[id], int32(ref))
	}
	sig := make([]uint32, len(ids))
	copy(sig, ids)
	slices.Sort(sig)
	x.sigs = append(x.sigs, sig)
	x.sizes = append(x.sizes, uint32(len(ids)))
	x.entries += len(ids)
	x.indexed++
}

// Clone returns a deep copy sharing no mutable state with x: the
// copy-on-write step of an RCU snapshot build. The dictionary and the
// posting lists are copied so clone-side interns and appends never land
// in state a reader of the original is scanning; the per-ref signatures
// are immutable after insert and are shared, only the spine is copied.
func (x *QGramIndex) Clone() *QGramIndex {
	c := &QGramIndex{
		ex:       x.ex,
		dict:     x.dict.Clone(),
		postings: make([][]int32, len(x.postings)),
		sizes:    append([]uint32(nil), x.sizes...),
		sigs:     append([][]uint32(nil), x.sigs...),
		buckets:  x.buckets,
		indexed:  x.indexed,
		entries:  x.entries,
		sigFloor: x.sigFloor,
	}
	for id, refs := range x.postings {
		if len(refs) > 0 {
			c.postings[id] = append([]int32(nil), refs...)
		}
	}
	return c
}

// Indexed returns how many tuples of the side have been absorbed.
func (x *QGramIndex) Indexed() int { return x.indexed }

// QGramExport is the stable serialized form of a QGramIndex: the gram
// dictionary in id order, the postings table, and the per-ref signature
// data. Counters derivable from these (buckets, entries, indexed) are
// recomputed on import rather than trusted from the wire. The slices of
// an export taken from a live index alias the index's immutable data —
// treat an export as read-only.
type QGramExport struct {
	// Grams enumerates the dictionary in id order (qgram.Dict.Grams).
	Grams []string
	// Postings is the gram-id-keyed postings table; Postings[id] lists
	// refs ascending. Shorter than Grams when trailing grams have no
	// postings yet.
	Postings [][]int32
	// Sizes is |q(key(ref))| per absorbed ref.
	Sizes []uint32
	// Sigs is the sorted gram-id signature per ref (nil below SigFloor).
	Sigs [][]uint32
	// SigFloor is the eviction floor below which signatures are released.
	SigFloor int
}

// Export returns the index's stable serialized form. The resident
// engines call it on immutable RCU snapshots, so the aliasing of the
// returned slices is safe there by construction.
func (x *QGramIndex) Export() QGramExport {
	return QGramExport{
		Grams:    x.dict.Grams(),
		Postings: x.postings,
		Sizes:    x.sizes,
		Sigs:     x.sigs,
		SigFloor: x.sigFloor,
	}
}

// ExportCompacted is Export with dead dictionary entries dropped: grams
// whose posting lists have emptied under eviction (and trailing interned
// grams that never gained a posting) are removed and the surviving ids
// renumbered densely, in ascending old-id order. Renumbering is monotone,
// so sorted signatures stay sorted after the rewrite; every gram named by
// a live signature still has its own ref in its posting list, so no live
// signature can reference a dropped gram. Ids change across the export —
// only representation-change-safe points (checkpoints, snapshots) may use
// it. When nothing is dead it returns Export() unchanged (aliasing the
// index's immutable data); otherwise the dictionary, postings spine and
// signatures are freshly built, so a shared RCU snapshot is never
// mutated either way.
func (x *QGramIndex) ExportCompacted() QGramExport {
	dead := x.dict.Len() - len(x.postings)
	for _, refs := range x.postings {
		if len(refs) == 0 {
			dead++
		}
	}
	if dead == 0 {
		return x.Export()
	}
	grams := x.dict.Grams()
	remap := make([]uint32, len(grams))
	live := make([]string, 0, len(grams)-dead)
	postings := make([][]int32, 0, len(grams)-dead)
	for id := range grams {
		if id >= len(x.postings) || len(x.postings[id]) == 0 {
			remap[id] = qgram.NoID
			continue
		}
		remap[id] = uint32(len(live))
		live = append(live, grams[id])
		postings = append(postings, x.postings[id])
	}
	sigs := make([][]uint32, len(x.sigs))
	for ref, sig := range x.sigs {
		if sig == nil {
			continue
		}
		ns := make([]uint32, len(sig))
		for i, id := range sig {
			ns[i] = remap[id]
		}
		sigs[ref] = ns
	}
	return QGramExport{
		Grams:    live,
		Postings: postings,
		Sizes:    x.sizes,
		Sigs:     sigs,
		SigFloor: x.sigFloor,
	}
}

// ImportQGramIndex reconstructs an index from an Export under the given
// extractor (which must match the gram definition the export was built
// with — the caller's compatibility contract). Every structural
// invariant a probe relies on is re-validated, so a corrupted or
// hostile export yields a descriptive error, never an index that can
// panic later: posting refs must be strictly ascending within [0, n),
// the dictionary must be duplicate-free, and the per-ref tables must
// agree on n. The export's slices are adopted, not copied; the caller
// must hand over ownership.
func ImportQGramIndex(ex *qgram.Extractor, exp QGramExport) (*QGramIndex, error) {
	dict, err := qgram.DictFromGrams(exp.Grams)
	if err != nil {
		return nil, fmt.Errorf("hashidx: import q-gram index: %w", err)
	}
	n := len(exp.Sizes)
	if len(exp.Sigs) != n {
		return nil, fmt.Errorf("hashidx: import q-gram index: %d signatures for %d refs", len(exp.Sigs), n)
	}
	if len(exp.Postings) > len(exp.Grams) {
		return nil, fmt.Errorf("hashidx: import q-gram index: postings table of %d lists exceeds dictionary of %d grams", len(exp.Postings), len(exp.Grams))
	}
	if exp.SigFloor < 0 || exp.SigFloor > n {
		return nil, fmt.Errorf("hashidx: import q-gram index: signature floor %d outside [0, %d]", exp.SigFloor, n)
	}
	x := &QGramIndex{
		ex:       ex,
		dict:     dict,
		postings: exp.Postings,
		sizes:    exp.Sizes,
		sigs:     exp.Sigs,
		indexed:  n,
		sigFloor: exp.SigFloor,
	}
	for id, refs := range x.postings {
		prev := int32(-1)
		for _, ref := range refs {
			if ref <= prev || int(ref) >= n {
				return nil, fmt.Errorf("hashidx: import q-gram index: posting list %d not strictly ascending within [0, %d)", id, n)
			}
			prev = ref
		}
		if len(refs) > 0 {
			x.buckets++
		}
		x.entries += len(refs)
	}
	for ref, sig := range x.sigs {
		if ref < x.sigFloor {
			if sig != nil {
				return nil, fmt.Errorf("hashidx: import q-gram index: ref %d below signature floor %d carries a signature", ref, x.sigFloor)
			}
			continue
		}
		for _, id := range sig {
			if int(id) >= len(exp.Grams) {
				return nil, fmt.Errorf("hashidx: import q-gram index: ref %d signature names gram id %d outside dictionary of %d", ref, id, len(exp.Grams))
			}
		}
	}
	return x, nil
}

// CatchUp absorbs keys[Indexed():] and returns the number inserted.
func (x *QGramIndex) CatchUp(keys []string) int {
	start := x.indexed
	for ref := start; ref < len(keys); ref++ {
		x.Insert(ref, keys[ref])
	}
	return len(keys) - start
}

// EvictBelow physically removes every posting whose ref is below
// minRef, returning the number of postings dropped. Signatures of
// evicted refs are released too; the per-ref gram sizes are retained
// (4 bytes per absorbed tuple), and Indexed() is unchanged so Insert
// and CatchUp keep working after evictions. Dictionary entries are
// never removed: a gram whose posting list empties keeps its id (and
// reports Frequency 0) so outstanding probes and signatures stay
// valid — the dict grows with distinct grams ever seen, not with
// stream length.
func (x *QGramIndex) EvictBelow(minRef int) int {
	dropped := 0
	for id, refs := range x.postings {
		cut, _ := slices.BinarySearch(refs, int32(minRef))
		if cut == 0 {
			continue
		}
		dropped += cut
		if cut == len(refs) {
			x.postings[id] = nil
			x.buckets--
			continue
		}
		x.postings[id] = append([]int32(nil), refs[cut:]...)
	}
	for i := x.sigFloor; i < minRef && i < len(x.sigs); i++ {
		x.sigs[i] = nil
	}
	if minRef > x.sigFloor {
		x.sigFloor = minRef
		if x.sigFloor > x.indexed {
			x.sigFloor = x.indexed
		}
	}
	x.entries -= dropped
	return dropped
}

// GramSize returns |q(key)| for the stored tuple at ref. Unlike Sig it
// stays valid for evicted refs.
func (x *QGramIndex) GramSize(ref int) int { return int(x.sizes[ref]) }

// Sig returns the sorted gram-id signature of the stored tuple at ref,
// owned by the index (callers must not mutate it). Verification against
// it is a sorted merge over uint32 slices (qgram.IntersectSortedIDs) —
// no re-extraction, no maps. Nil for evicted refs.
func (x *QGramIndex) Sig(ref int) []uint32 { return x.sigs[ref] }

// Frequency returns the number of indexed tuples containing gram g.
func (x *QGramIndex) Frequency(g string) int {
	id, ok := x.dict.IDOf(g)
	if !ok || int(id) >= len(x.postings) {
		return 0
	}
	return len(x.postings[id])
}

// Entries returns the total number of posting entries, i.e. the
// n·(|jA|+q−1) pointer count of the space analysis in §2.3.
func (x *QGramIndex) Entries() int { return x.entries }

// AvgBucketLen returns the mean posting-list length B_ap of Table 1
// over the non-empty lists.
func (x *QGramIndex) AvgBucketLen() float64 {
	if x.buckets == 0 {
		return 0
	}
	return float64(x.entries) / float64(x.buckets)
}

// ProbeScratch holds the reusable per-probe state of the zero-
// allocation probe path: the gram-id buffer, the epoch-stamped
// candidate counting arrays of §2.2 (replacing the per-probe map), and
// the candidate result buffer. One ProbeScratch serves one goroutine at
// a time and may be reused across indexes of any size; candidates
// returned by ProbeKey are views into it, valid until the next probe
// with the same scratch. The zero value is ready to use.
type ProbeScratch struct {
	// Dec backs Decompose for callers probing by string key.
	Dec qgram.Scratch

	ids    []uint32
	counts []int32
	stamps []uint32
	epoch  uint32
	refs   []int32
	cands  []Candidate
}

// Probe computes the candidate set T(t) for a probe key, returning every
// stored tuple that shares at least minOverlap distinct q-grams with it.
// minOverlap is the count threshold k of §2.2, derived by the caller
// from the similarity measure and threshold (simfn.MinOverlap). This
// convenience form allocates its own scratch; hot paths use ProbeKey.
func (x *QGramIndex) Probe(key string, minOverlap int) []Candidate {
	var sc ProbeScratch
	return x.ProbeKey(x.ex.Decompose(&sc.Dec, key), minOverlap, &sc)
}

// ProbeGrams is Probe for a pre-materialised gram slice.
func (x *QGramIndex) ProbeGrams(grams []string, minOverlap int) []Candidate {
	var sc ProbeScratch
	sc.ids = make([]uint32, 0, len(grams))
	for _, g := range grams {
		id, ok := x.dict.IDOf(g)
		if !ok {
			id = qgram.NoID
		}
		sc.ids = append(sc.ids, id)
	}
	return x.probeIDs(sc.ids, len(grams), minOverlap, &sc, true)
}

// ProbeNaive is the unoptimised variant that admits candidates from
// every gram; used by the ablation benchmarks and as a correctness
// oracle for Probe.
func (x *QGramIndex) ProbeNaive(key string, minOverlap int) []Candidate {
	var sc ProbeScratch
	k := x.ex.Decompose(&sc.Dec, key)
	sc.ids = x.dict.AppendIDs(sc.ids[:0], k)
	return x.probeIDs(sc.ids, k.Len(), minOverlap, &sc, false)
}

// ProbeKey is the zero-allocation probe hot path: k must come from an
// extractor configured identically to the index's own, and the returned
// candidates are a view into sc, valid until its next probe.
//
// The implementation follows the paper's optimisation: probe grams are
// considered in reverse frequency order (rarest first); candidates are
// admitted into T(t) only while scanning an initial admission window,
// after which the remaining k−1 grams may only increment existing
// counters. Any tuple sharing ≥ k grams must share at least one gram of
// the admission window, so no qualifying candidate is missed.
func (x *QGramIndex) ProbeKey(k qgram.Key, minOverlap int, sc *ProbeScratch) []Candidate {
	sc.ids = x.dict.AppendIDs(sc.ids[:0], k)
	return x.probeIDs(sc.ids, k.Len(), minOverlap, sc, true)
}

// probeIDs runs the count filter of §2.2 over gram ids. ids may contain
// NoID entries (grams unknown to the dictionary): they short-circuit —
// an unknown gram has no postings, so it is dropped from the scan while
// g, and hence the caller's count threshold, still reflects it.
func (x *QGramIndex) probeIDs(ids []uint32, g, minOverlap int, sc *ProbeScratch, optimised bool) []Candidate {
	if g == 0 || minOverlap < 1 || minOverlap > g {
		// No stored set can share more distinct grams than the probe has.
		return nil
	}
	// Drop grams that cannot contribute: unknown to the dictionary, not
	// yet in the posting table, or with an empty (fully evicted) list.
	// A stored tuple shares grams only through live postings, so the
	// count threshold applies unchanged to the surviving m grams — and
	// if fewer than minOverlap survive, nothing can qualify.
	m := 0
	for _, id := range ids {
		if id != qgram.NoID && int(id) < len(x.postings) && len(x.postings[id]) > 0 {
			ids[m] = id
			m++
		}
	}
	if m < minOverlap {
		return nil
	}
	ids = ids[:m]
	if optimised {
		// Rarest grams first: the admission window then generates the
		// fewest candidates. The tie-break is arbitrary for results
		// (counts of admitted candidates are always complete) but fixed
		// for determinism.
		slices.SortFunc(ids, func(a, b uint32) int {
			fa, fb := len(x.postings[a]), len(x.postings[b])
			if fa != fb {
				return fa - fb
			}
			return int(a) - int(b)
		})
	}
	admitUpTo := m - minOverlap + 1
	if !optimised {
		admitUpTo = m
	}
	// Epoch-stamped counting: counts[ref] is valid iff stamps[ref]
	// carries the current epoch, so the arrays are reused across probes
	// without clearing.
	if len(sc.counts) < x.indexed {
		sc.counts = append(sc.counts, make([]int32, x.indexed-len(sc.counts))...)
		sc.stamps = append(sc.stamps, make([]uint32, x.indexed-len(sc.stamps))...)
	}
	sc.epoch++
	if sc.epoch == 0 { // wrapped: stale stamps could alias, start over
		clear(sc.stamps)
		sc.epoch = 1
	}
	epoch := sc.epoch
	sc.refs = sc.refs[:0]
	for i, id := range ids {
		for _, ref := range x.postings[id] {
			if sc.stamps[ref] == epoch {
				sc.counts[ref]++
			} else if i < admitUpTo {
				sc.stamps[ref] = epoch
				sc.counts[ref] = 1
				sc.refs = append(sc.refs, ref)
			}
		}
	}
	sc.cands = sc.cands[:0]
	for _, ref := range sc.refs {
		if c := sc.counts[ref]; int(c) >= minOverlap {
			sc.cands = append(sc.cands, Candidate{Ref: int(ref), Overlap: int(c)})
		}
	}
	if len(sc.cands) == 0 {
		return nil
	}
	// Deterministic output order: by ref.
	slices.SortFunc(sc.cands, func(a, b Candidate) int { return a.Ref - b.Ref })
	return sc.cands
}
