// Package hashidx implements the two hash data structures of Fig. 3 in
// the paper: the exact attribute-value hash table used by SHJoin and the
// q-gram inverted index used by SSHJoin.
//
// Both index one side of a symmetric join. Tuples are identified by
// their dense position ("ref") in the side's tuple store, which the join
// engine owns. Each index remembers how many tuples of its side it has
// absorbed (Indexed); the hybrid engine exploits this for the lazy
// catch-up of §2.3 — only the index needed by the currently active
// operator is kept up to date, and a switch pays only for the tuples
// read since the previous switch.
package hashidx

import (
	"fmt"
	"sort"

	"adaptivelink/internal/qgram"
)

// ExactIndex is a hash table from join-key value to the refs of the
// tuples carrying that value (SHJoin's per-operand state).
type ExactIndex struct {
	buckets map[string][]int
	indexed int
	entries int // live entries: indexed minus evicted
}

// NewExactIndex returns an empty exact index.
func NewExactIndex() *ExactIndex {
	return &ExactIndex{buckets: make(map[string][]int)}
}

// Insert registers the tuple at position ref with the given key. Refs
// must be inserted densely in order; this invariant is what makes lazy
// catch-up a pure suffix operation.
func (x *ExactIndex) Insert(ref int, key string) {
	if ref != x.indexed {
		panic(fmt.Sprintf("hashidx: ExactIndex.Insert ref %d, want %d (dense order)", ref, x.indexed))
	}
	x.buckets[key] = append(x.buckets[key], ref)
	x.indexed++
	x.entries++
}

// Lookup returns the refs of all tuples whose key equals key. The
// returned slice is owned by the index; callers must not mutate it.
func (x *ExactIndex) Lookup(key string) []int {
	return x.buckets[key]
}

// Clone returns a deep copy sharing no mutable state with x: the
// copy-on-write step of an RCU snapshot build. Inserts into the clone
// never disturb readers of the original (bucket slices are copied, so a
// clone-side append cannot land in a shared backing array).
func (x *ExactIndex) Clone() *ExactIndex {
	c := &ExactIndex{
		buckets: make(map[string][]int, len(x.buckets)),
		indexed: x.indexed,
		entries: x.entries,
	}
	for key, refs := range x.buckets {
		c.buckets[key] = append([]int(nil), refs...)
	}
	return c
}

// Indexed returns how many tuples of the side have been absorbed (the
// dense insertion clock; eviction does not rewind it).
func (x *ExactIndex) Indexed() int { return x.indexed }

// Entries returns the number of live entries: insertions minus evicted.
func (x *ExactIndex) Entries() int { return x.entries }

// CatchUp absorbs keys[Indexed():], bringing the index up to date with a
// side whose tuples have the given join keys, and returns the number of
// tuples inserted. This is the switch-time update of §2.3.
func (x *ExactIndex) CatchUp(keys []string) int {
	start := x.indexed
	for ref := start; ref < len(keys); ref++ {
		x.Insert(ref, keys[ref])
	}
	return len(keys) - start
}

// evictPrefix removes every ref below minRef from each bucket of a
// ref-list map. Dense insertion keeps the lists sorted ascending, so
// eviction is a prefix cut per list; emptied lists are deleted and
// surviving tails are copied so the evicted prefixes become garbage
// immediately. Returns the number of entries dropped.
func evictPrefix(buckets map[string][]int, minRef int) int {
	dropped := 0
	for key, refs := range buckets {
		cut := sort.SearchInts(refs, minRef)
		if cut == 0 {
			continue
		}
		dropped += cut
		if cut == len(refs) {
			delete(buckets, key)
			continue
		}
		buckets[key] = append([]int(nil), refs[cut:]...)
	}
	return dropped
}

// EvictBelow physically removes every entry whose ref is below minRef,
// returning the number of entries dropped. Indexed() is unchanged:
// eviction frees memory but does not rewind the dense insertion clock,
// so Insert and CatchUp keep working after evictions.
func (x *ExactIndex) EvictBelow(minRef int) int {
	dropped := evictPrefix(x.buckets, minRef)
	x.entries -= dropped
	return dropped
}

// Buckets returns the number of distinct key values indexed.
func (x *ExactIndex) Buckets() int { return len(x.buckets) }

// AvgBucketLen returns the mean bucket length B_ex used by the cost
// analysis of Table 1 (0 for an empty index).
func (x *ExactIndex) AvgBucketLen() float64 {
	if len(x.buckets) == 0 {
		return 0
	}
	return float64(x.entries) / float64(len(x.buckets))
}

// Candidate is a probe result: a stored tuple sharing Overlap distinct
// q-grams with the probe value (the set T(t) with counters c(t′) of
// §2.2).
type Candidate struct {
	Ref     int
	Overlap int
}

// QGramIndex is an inverted index from q-gram to the refs of tuples
// whose join key contains that gram. Posting-list lengths double as the
// gram frequencies that drive the reverse-frequency probe optimisation.
type QGramIndex struct {
	ex       *qgram.Extractor
	postings map[string][]int
	sizes    []int // sizes[ref] = |q(key(ref))|, needed to verify similarity
	indexed  int
	entries  int // total postings, for the space accounting of §2.3
}

// NewQGramIndex returns an empty inverted index using the extractor's
// gram definition.
func NewQGramIndex(ex *qgram.Extractor) *QGramIndex {
	return &QGramIndex{ex: ex, postings: make(map[string][]int)}
}

// Extractor exposes the gram definition shared with callers.
func (x *QGramIndex) Extractor() *qgram.Extractor { return x.ex }

// Insert decomposes key into q-grams and registers ref under each
// (operation 2 of §2.2: one pointer insertion per gram). Refs must be
// inserted densely in order.
func (x *QGramIndex) Insert(ref int, key string) {
	x.InsertGrams(ref, x.ex.Grams(key))
}

// InsertGrams is Insert for a pre-decomposed key: the caller has already
// run the extractor, so only the pointer insertions remain. This is what
// lets writers hash outside their critical section — gram extraction is
// the expensive part of an insert, the map appends are not.
func (x *QGramIndex) InsertGrams(ref int, grams []string) {
	if ref != x.indexed {
		panic(fmt.Sprintf("hashidx: QGramIndex.Insert ref %d, want %d (dense order)", ref, x.indexed))
	}
	for _, g := range grams {
		x.postings[g] = append(x.postings[g], ref)
	}
	x.sizes = append(x.sizes, len(grams))
	x.entries += len(grams)
	x.indexed++
}

// Clone returns a deep copy sharing no mutable state with x: the
// copy-on-write step of an RCU snapshot build. Posting lists and the
// gram-size store are copied so clone-side appends never land in a
// backing array a reader of the original is scanning.
func (x *QGramIndex) Clone() *QGramIndex {
	c := &QGramIndex{
		ex:       x.ex,
		postings: make(map[string][]int, len(x.postings)),
		sizes:    append([]int(nil), x.sizes...),
		indexed:  x.indexed,
		entries:  x.entries,
	}
	for g, refs := range x.postings {
		c.postings[g] = append([]int(nil), refs...)
	}
	return c
}

// Indexed returns how many tuples of the side have been absorbed.
func (x *QGramIndex) Indexed() int { return x.indexed }

// CatchUp absorbs keys[Indexed():] and returns the number inserted.
func (x *QGramIndex) CatchUp(keys []string) int {
	start := x.indexed
	for ref := start; ref < len(keys); ref++ {
		x.Insert(ref, keys[ref])
	}
	return len(keys) - start
}

// EvictBelow physically removes every posting whose ref is below
// minRef, returning the number of postings dropped. The per-ref gram
// sizes are retained (an int per absorbed tuple — the same footprint as
// the engine's key store), and Indexed() is unchanged so Insert and
// CatchUp keep working after evictions.
func (x *QGramIndex) EvictBelow(minRef int) int {
	dropped := evictPrefix(x.postings, minRef)
	x.entries -= dropped
	return dropped
}

// GramSize returns |q(key)| for the stored tuple at ref.
func (x *QGramIndex) GramSize(ref int) int { return x.sizes[ref] }

// Frequency returns the number of indexed tuples containing gram g.
func (x *QGramIndex) Frequency(g string) int { return len(x.postings[g]) }

// Entries returns the total number of posting entries, i.e. the
// n·(|jA|+q−1) pointer count of the space analysis in §2.3.
func (x *QGramIndex) Entries() int { return x.entries }

// AvgBucketLen returns the mean posting-list length B_ap of Table 1.
func (x *QGramIndex) AvgBucketLen() float64 {
	if len(x.postings) == 0 {
		return 0
	}
	return float64(x.entries) / float64(len(x.postings))
}

// Probe computes the candidate set T(t) for a probe key, returning every
// stored tuple that shares at least minOverlap distinct q-grams with it.
// minOverlap is the count threshold k of §2.2, derived by the caller
// from the similarity measure and threshold (simfn.MinOverlap).
//
// The implementation follows the paper's optimisation: probe grams are
// considered in reverse frequency order (rarest first); candidates are
// admitted into T(t) only while scanning the first g−k+1 grams, after
// which the remaining k−1 grams may only increment existing counters.
// Any tuple sharing ≥ k grams must share at least one of the first
// g−k+1, so no qualifying candidate is missed.
func (x *QGramIndex) Probe(key string, minOverlap int) []Candidate {
	grams := x.ex.Grams(key)
	return x.probeGrams(grams, minOverlap, true)
}

// ProbeGrams is Probe for a pre-decomposed key. The engine uses it to
// avoid decomposing the probe value twice (it already needs the gram
// count for the overlap bound). Ownership of grams passes to the index,
// which may reorder the slice.
func (x *QGramIndex) ProbeGrams(grams []string, minOverlap int) []Candidate {
	return x.probeGrams(grams, minOverlap, true)
}

// ProbeNaive is the unoptimised variant that admits candidates from
// every gram; used by the ablation benchmarks and as a correctness
// oracle for Probe.
func (x *QGramIndex) ProbeNaive(key string, minOverlap int) []Candidate {
	grams := x.ex.Grams(key)
	return x.probeGrams(grams, minOverlap, false)
}

func (x *QGramIndex) probeGrams(grams []string, minOverlap int, optimised bool) []Candidate {
	g := len(grams)
	if g == 0 || minOverlap < 1 {
		return nil
	}
	k := minOverlap
	if k > g {
		// No stored set can share more distinct grams than the probe has.
		return nil
	}
	if optimised {
		// Rarest grams first: the admission prefix then generates the
		// fewest candidates.
		sort.Slice(grams, func(i, j int) bool {
			fi, fj := len(x.postings[grams[i]]), len(x.postings[grams[j]])
			if fi != fj {
				return fi < fj
			}
			return grams[i] < grams[j] // deterministic tie-break
		})
	}
	admitUpTo := g - k + 1
	if !optimised {
		admitUpTo = g
	}
	counts := make(map[int]int)
	for i, gram := range grams {
		for _, ref := range x.postings[gram] {
			if i < admitUpTo {
				counts[ref]++
			} else if _, seen := counts[ref]; seen {
				counts[ref]++
			}
		}
	}
	cands := make([]Candidate, 0, len(counts))
	for ref, c := range counts {
		if c >= k {
			cands = append(cands, Candidate{Ref: ref, Overlap: c})
		}
	}
	// Deterministic output order: by ref.
	sort.Slice(cands, func(i, j int) bool { return cands[i].Ref < cands[j].Ref })
	return cands
}
