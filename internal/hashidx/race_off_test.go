//go:build !race

package hashidx

// See race_on_test.go.
const raceEnabled = false
