package hashidx

import (
	"fmt"
	"math/rand"
	"reflect"
	"slices"
	"testing"
	"testing/quick"

	"adaptivelink/internal/qgram"
)

func TestExactIndexInsertLookup(t *testing.T) {
	x := NewExactIndex()
	x.Insert(0, "rome")
	x.Insert(1, "milan")
	x.Insert(2, "rome")
	if got := x.Lookup("rome"); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("Lookup(rome) = %v", got)
	}
	if got := x.Lookup("milan"); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("Lookup(milan) = %v", got)
	}
	if got := x.Lookup("missing"); len(got) != 0 {
		t.Errorf("Lookup(missing) = %v", got)
	}
	if x.Indexed() != 3 || x.Buckets() != 2 {
		t.Errorf("Indexed=%d Buckets=%d", x.Indexed(), x.Buckets())
	}
	if got := x.AvgBucketLen(); got != 1.5 {
		t.Errorf("AvgBucketLen = %v", got)
	}
}

func TestExactIndexDenseOrderEnforced(t *testing.T) {
	x := NewExactIndex()
	x.Insert(0, "a")
	defer func() {
		if recover() == nil {
			t.Error("out-of-order Insert did not panic")
		}
	}()
	x.Insert(2, "b")
}

func TestExactIndexCatchUp(t *testing.T) {
	keys := []string{"a", "b", "c", "d"}
	x := NewExactIndex()
	if n := x.CatchUp(keys[:2]); n != 2 {
		t.Errorf("first CatchUp inserted %d", n)
	}
	if n := x.CatchUp(keys); n != 2 {
		t.Errorf("second CatchUp inserted %d, want 2 (suffix only)", n)
	}
	if n := x.CatchUp(keys); n != 0 {
		t.Errorf("idempotent CatchUp inserted %d", n)
	}
	if got := x.Lookup("d"); !reflect.DeepEqual(got, []int{3}) {
		t.Errorf("Lookup(d) = %v", got)
	}
}

func TestExactIndexEmptyAvgBucket(t *testing.T) {
	if got := NewExactIndex().AvgBucketLen(); got != 0 {
		t.Errorf("empty AvgBucketLen = %v", got)
	}
}

func newQIdx() *QGramIndex { return NewQGramIndex(qgram.New(3)) }

func TestQGramIndexInsertAndFrequency(t *testing.T) {
	x := newQIdx()
	x.Insert(0, "rome")
	x.Insert(1, "romeo")
	// "##r", "#ro", "rom", "ome" are shared by both keys.
	for _, g := range []string{"##r", "#ro", "rom", "ome"} {
		if got := x.Frequency(g); got != 2 {
			t.Errorf("Frequency(%q) = %d, want 2", g, got)
		}
	}
	if x.Indexed() != 2 {
		t.Errorf("Indexed = %d", x.Indexed())
	}
	if x.GramSize(0) != 6 { // |rome|+q-1 = 4+2, all distinct
		t.Errorf("GramSize(0) = %d, want 6", x.GramSize(0))
	}
	if x.Entries() != x.GramSize(0)+x.GramSize(1) {
		t.Errorf("Entries = %d", x.Entries())
	}
	if x.AvgBucketLen() <= 0 {
		t.Error("AvgBucketLen should be positive")
	}
}

func TestQGramIndexDenseOrderEnforced(t *testing.T) {
	x := newQIdx()
	defer func() {
		if recover() == nil {
			t.Error("out-of-order Insert did not panic")
		}
	}()
	x.Insert(1, "a")
}

func TestQGramIndexCatchUp(t *testing.T) {
	x := newQIdx()
	keys := []string{"rome", "milan", "turin"}
	x.CatchUp(keys[:1])
	if n := x.CatchUp(keys); n != 2 {
		t.Errorf("CatchUp inserted %d, want 2", n)
	}
	if x.Indexed() != 3 {
		t.Errorf("Indexed = %d", x.Indexed())
	}
}

func TestProbeFindsExactDuplicate(t *testing.T) {
	x := newQIdx()
	x.Insert(0, "SANTA CRISTINA")
	x.Insert(1, "GENOVA")
	g := x.GramSize(0)
	cands := x.Probe("SANTA CRISTINA", g) // require full overlap
	if len(cands) != 1 || cands[0].Ref != 0 || cands[0].Overlap != g {
		t.Errorf("Probe = %v, want ref 0 with overlap %d", cands, g)
	}
}

func TestProbeFindsOneEditVariant(t *testing.T) {
	x := newQIdx()
	orig := "TAA BZ SANTA CRISTINA VALGARDENA"
	x.Insert(0, orig)
	variant := "TAA BZ SANTA CRISTINx VALGARDENA"
	// A 1-char substitution disturbs at most q=3 grams.
	gv := len(qgram.New(3).Grams(variant))
	cands := x.Probe(variant, gv-3)
	if len(cands) != 1 || cands[0].Ref != 0 {
		t.Errorf("Probe(variant) = %v, want original", cands)
	}
}

func TestProbeRespectsMinOverlap(t *testing.T) {
	x := newQIdx()
	x.Insert(0, "abcdef")
	x.Insert(1, "uvwxyz")
	cands := x.Probe("abcdef", 4)
	if len(cands) != 1 || cands[0].Ref != 0 {
		t.Errorf("Probe = %v", cands)
	}
	// Nothing shares 4 grams with a disjoint string.
	if cands := x.Probe("zzzzzz", 2); len(cands) != 0 {
		t.Errorf("Probe(zzzzzz) = %v, want none", cands)
	}
}

func TestProbeDegenerateInputs(t *testing.T) {
	x := newQIdx()
	x.Insert(0, "abc")
	if got := x.Probe("", 1); got != nil {
		t.Errorf("Probe(empty) = %v", got)
	}
	if got := x.Probe("abc", 0); got != nil {
		t.Errorf("Probe(minOverlap=0) = %v", got)
	}
	// minOverlap larger than the probe's gram count can never be met.
	if got := x.Probe("ab", 100); got != nil {
		t.Errorf("Probe(k>g) = %v", got)
	}
}

func TestProbeOnEmptyIndex(t *testing.T) {
	x := newQIdx()
	if got := x.Probe("anything", 1); len(got) != 0 {
		t.Errorf("Probe on empty index = %v", got)
	}
	if x.AvgBucketLen() != 0 {
		t.Error("empty AvgBucketLen != 0")
	}
}

// Property: the optimised probe returns exactly the same candidate set
// (refs and overlap counts) as the naive probe, for random corpora of
// short synthetic keys and all feasible thresholds.
func TestProbeMatchesNaiveProperty(t *testing.T) {
	syllables := []string{"mon", "te", "ro", "sa", "vi", "la", "ber", "go", "ne", "ca"}
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		x := newQIdx()
		n := 5 + rng.Intn(30)
		keys := make([]string, n)
		for i := range keys {
			s := ""
			for w := 0; w < 2+rng.Intn(4); w++ {
				s += syllables[rng.Intn(len(syllables))]
			}
			keys[i] = s
			x.Insert(i, s)
		}
		probe := keys[rng.Intn(n)]
		g := len(qgram.New(3).Grams(probe))
		k := 1 + int(kRaw)%g
		got := x.Probe(probe, k)
		want := x.ProbeNaive(probe, k)
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: every candidate's overlap is the true number of shared
// distinct grams between probe and stored key.
func TestProbeOverlapIsTrueIntersectionProperty(t *testing.T) {
	ex := qgram.New(3)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := NewQGramIndex(ex)
		keys := make([]string, 12)
		for i := range keys {
			keys[i] = fmt.Sprintf("loc%d-%d", rng.Intn(4), rng.Intn(4))
			x.Insert(i, keys[i])
		}
		probe := keys[rng.Intn(len(keys))]
		for _, c := range x.Probe(probe, 2) {
			want := qgram.Intersection(ex.Grams(probe), ex.Grams(keys[c.Ref]))
			if c.Overlap != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestProbeDeterministicOrder(t *testing.T) {
	x := newQIdx()
	for i, k := range []string{"aaa", "aab", "aac", "aad"} {
		x.Insert(i, k)
	}
	a := x.Probe("aaa", 2)
	b := x.Probe("aaa", 2)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("non-deterministic probe: %v vs %v", a, b)
	}
	for i := 1; i < len(a); i++ {
		if a[i].Ref <= a[i-1].Ref {
			t.Errorf("candidates not sorted by ref: %v", a)
		}
	}
}

func TestExactIndexEvictBelow(t *testing.T) {
	x := NewExactIndex()
	for i, k := range []string{"rome", "milan", "rome", "turin", "rome"} {
		x.Insert(i, k)
	}
	if got := x.EvictBelow(3); got != 3 { // rome:0, milan:1, rome:2
		t.Errorf("EvictBelow(3) dropped %d entries, want 3", got)
	}
	if got := x.Lookup("rome"); !reflect.DeepEqual(got, []int{4}) {
		t.Errorf("Lookup(rome) after eviction = %v, want [4]", got)
	}
	if got := x.Lookup("milan"); len(got) != 0 {
		t.Errorf("emptied bucket survived: %v", got)
	}
	if x.Indexed() != 5 {
		t.Errorf("Indexed changed to %d, want 5 (eviction must not rewind the insertion clock)", x.Indexed())
	}
	// Dense insertion continues after eviction.
	x.Insert(5, "milan")
	if got := x.Lookup("milan"); !reflect.DeepEqual(got, []int{5}) {
		t.Errorf("post-eviction Insert broken: %v", got)
	}
	// Idempotent: nothing below the floor remains.
	if got := x.EvictBelow(3); got != 0 {
		t.Errorf("second EvictBelow(3) dropped %d", got)
	}
}

func TestQGramIndexEvictBelow(t *testing.T) {
	x := newQIdx()
	keys := []string{"monte rosa", "monte bianco", "gran paradiso"}
	for i, k := range keys {
		x.Insert(i, k)
	}
	before := x.Entries()
	dropped := x.EvictBelow(2)
	if dropped <= 0 {
		t.Fatalf("EvictBelow(2) dropped %d entries", dropped)
	}
	if got := x.Entries(); got != before-dropped {
		t.Errorf("Entries = %d, want %d", got, before-dropped)
	}
	// Probing the evicted keys must surface only live refs.
	for _, k := range keys[:2] {
		for _, c := range x.Probe(k, 1) {
			if c.Ref < 2 {
				t.Errorf("probe %q returned evicted ref %d", k, c.Ref)
			}
		}
	}
	// The survivor still probes fine and gram sizes are retained.
	if got := x.Probe("gran paradiso", 2); len(got) != 1 || got[0].Ref != 2 {
		t.Errorf("live ref lost after eviction: %v", got)
	}
	if x.GramSize(0) == 0 {
		t.Error("gram-size bookkeeping lost for evicted ref")
	}
	if x.Indexed() != 3 {
		t.Errorf("Indexed changed to %d", x.Indexed())
	}
	// CatchUp keeps working from the insertion clock.
	if n := x.CatchUp([]string{"monte rosa", "monte bianco", "gran paradiso", "cervino"}); n != 1 {
		t.Errorf("CatchUp inserted %d, want 1", n)
	}
}

// --- dictionary-encoded representation tests ---

// Eviction that empties posting lists leaves dangling dict entries by
// design: the gram keeps its id (Frequency 0), the dict never shrinks,
// and both probing and re-insertion keep working.
func TestQGramIndexEvictionDanglingDictEntries(t *testing.T) {
	x := newQIdx()
	keys := []string{"monte rosa", "monte bianco"}
	for i, k := range keys {
		x.Insert(i, k)
	}
	dictLen := x.Dict().Len()
	if dropped := x.EvictBelow(2); dropped != x.GramSize(0)+x.GramSize(1) {
		t.Fatalf("full eviction dropped %d entries", dropped)
	}
	if x.Dict().Len() != dictLen {
		t.Errorf("eviction changed dict size %d -> %d", dictLen, x.Dict().Len())
	}
	if got := x.Frequency("ros"); got != 0 {
		t.Errorf("Frequency(ros) after eviction = %d, want 0 (dangling entry)", got)
	}
	if x.AvgBucketLen() != 0 {
		t.Errorf("AvgBucketLen over only-empty lists = %v, want 0", x.AvgBucketLen())
	}
	if got := x.Probe("monte rosa", 1); got != nil {
		t.Errorf("probe over fully evicted index = %v", got)
	}
	// Signatures of evicted refs are released, sizes retained.
	if x.Sig(0) != nil {
		t.Error("evicted ref kept its signature")
	}
	if x.GramSize(0) == 0 {
		t.Error("evicted ref lost its gram size")
	}
	// Re-insertion reuses the dangling ids without renumbering.
	x.Insert(2, "monte rosa")
	if x.Dict().Len() != dictLen {
		t.Errorf("re-insert of known grams grew dict %d -> %d", dictLen, x.Dict().Len())
	}
	if got := x.Probe("monte rosa", x.GramSize(2)); len(got) != 1 || got[0].Ref != 2 {
		t.Errorf("probe after re-insert = %v", got)
	}
}

// A probe whose grams are entirely unknown to the dictionary must
// short-circuit: no candidates, no interning, no allocation.
func TestProbeUnknownGramsShortCircuit(t *testing.T) {
	x := newQIdx()
	x.Insert(0, "monte rosa")
	dictLen := x.Dict().Len()

	var sc ProbeScratch
	var k = x.Extractor().Decompose(&sc.Dec, "zzz qqq www")
	if got := x.ProbeKey(k, 1, &sc); got != nil {
		t.Fatalf("unknown-gram probe = %v", got)
	}
	if x.Dict().Len() != dictLen {
		t.Fatalf("probe interned grams: %d -> %d", dictLen, x.Dict().Len())
	}
	if !raceEnabled {
		if avg := testing.AllocsPerRun(100, func() {
			_ = x.ProbeKey(k, 1, &sc)
		}); avg != 0 {
			t.Errorf("unknown-gram ProbeKey allocated %.1f times", avg)
		}
	}
}

// ProbeKey with a warm scratch is allocation-free even when it yields
// candidates.
func TestProbeKeyZeroAllocs(t *testing.T) {
	x := newQIdx()
	keys := []string{"monte rosa", "monte bianco", "monte viso", "gran paradiso"}
	for i, k := range keys {
		x.Insert(i, k)
	}
	var sc ProbeScratch
	k := x.Extractor().Decompose(&sc.Dec, "monte rosso")
	if got := x.ProbeKey(k, 3, &sc); len(got) == 0 {
		t.Fatal("warmup probe found nothing; workload broken")
	}
	if raceEnabled {
		t.Skip("allocation counts are perturbed under -race; make alloc enforces this pin")
	}
	if avg := testing.AllocsPerRun(200, func() {
		_ = x.ProbeKey(k, 3, &sc)
	}); avg != 0 {
		t.Errorf("ProbeKey allocated %.2f times per op, want 0", avg)
	}
}

// Dict growth across Clone: new keys interned into a clone get fresh
// dense ids, the original's postings, signatures and dictionary are
// untouched, and shared signatures stay identical — the snapshot-swap
// contract of the RCU path.
func TestQGramIndexCloneDictGrowth(t *testing.T) {
	x := newQIdx()
	x.Insert(0, "monte rosa")
	origDict := x.Dict().Len()
	origSig := append([]uint32(nil), x.Sig(0)...)

	c := x.Clone()
	c.Insert(1, "zona franca nuova") // mostly fresh grams
	if c.Dict().Len() <= origDict {
		t.Fatalf("clone dict did not grow: %d <= %d", c.Dict().Len(), origDict)
	}
	if x.Dict().Len() != origDict {
		t.Fatalf("original dict grew with the clone: %d", x.Dict().Len())
	}
	if x.Indexed() != 1 || c.Indexed() != 2 {
		t.Fatalf("indexed counts: orig %d clone %d", x.Indexed(), c.Indexed())
	}
	if got := x.Frequency("zon"); got != 0 {
		t.Errorf("original learned clone-side gram: %d", got)
	}
	if !reflect.DeepEqual(x.Sig(0), origSig) || !reflect.DeepEqual(c.Sig(0), origSig) {
		t.Errorf("shared signature diverged: %v / %v / %v", x.Sig(0), c.Sig(0), origSig)
	}
	// Both sides probe correctly after the swap.
	if got := c.Probe("zona franca nuova", c.GramSize(1)); len(got) != 1 || got[0].Ref != 1 {
		t.Errorf("clone probe = %v", got)
	}
	if got := x.Probe("monte rosa", x.GramSize(0)); len(got) != 1 || got[0].Ref != 0 {
		t.Errorf("original probe = %v", got)
	}
}

// The stored signatures support sorted-merge verification: for any
// candidate, the intersection of probe and stored signatures equals the
// count filter's overlap.
func TestSigSortedMergeMatchesOverlap(t *testing.T) {
	ex := qgram.New(3)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := NewQGramIndex(ex)
		keys := make([]string, 10)
		for i := range keys {
			keys[i] = fmt.Sprintf("via %d n %d", rng.Intn(5), rng.Intn(5))
			x.Insert(i, keys[i])
		}
		probe := keys[rng.Intn(len(keys))]
		var sc ProbeScratch
		k := ex.Decompose(&sc.Dec, probe)
		probeSig := x.Dict().AppendIDs(nil, k)
		slices.Sort(probeSig)
		for _, c := range x.ProbeKey(k, 2, &sc) {
			sig := x.Sig(c.Ref)
			if !slices.IsSorted(sig) || len(sig) != x.GramSize(c.Ref) {
				return false
			}
			if qgram.IntersectSortedIDs(probeSig, sig) != c.Overlap {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Candidate-generation microbenchmark: the count filter of §2.2 over
// the dictionary-encoded index with a warm scratch (the probe hot
// path). scripts/bench_probe.sh records it in BENCH_probe.json.
func BenchmarkProbeKeyCandidates(b *testing.B) {
	ex := qgram.New(3)
	x := NewQGramIndex(ex)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		x.Insert(i, fmt.Sprintf("VIA %c%c%c %d NORD %d",
			'A'+rng.Intn(26), 'A'+rng.Intn(26), 'A'+rng.Intn(26), rng.Intn(100), rng.Intn(10)))
	}
	var sc ProbeScratch
	k := ex.Decompose(&sc.Dec, "VIA QRS 42 NORD 3")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.ProbeKey(k, 8, &sc)
	}
}

// Non-ASCII BMP keys flow through the inverted index on the rune-packed
// decomposition: inserts and probes agree with the string-gram oracle,
// a one-rune variant is still found, and the zero-alloc probe contract
// holds for Cyrillic keys exactly as for ASCII ones.
func TestQGramIndexNonASCII(t *testing.T) {
	x := newQIdx()
	orig := "САНКТ ПЕТЕРБУРГ НЕВСКИЙ 7"
	x.Insert(0, orig)
	x.Insert(1, "МОСКВА АРБАТ 12")

	ex := x.Extractor()
	for _, g := range ex.Grams(orig) {
		if got := x.Frequency(g); got < 1 {
			t.Errorf("Frequency(%q) = %d, want >= 1", g, got)
		}
	}

	variant := "САНКТ ПЕТЕРБУРГ НЕЖСКИЙ 7" // one-rune substitution
	gv := ex.Count(variant)
	cands := x.Probe(variant, gv-3)
	if len(cands) != 1 || cands[0].Ref != 0 {
		t.Fatalf("Probe(variant) = %v, want the original", cands)
	}

	var sc ProbeScratch
	k := ex.Decompose(&sc.Dec, variant)
	if got := x.ProbeKey(k, gv-3, &sc); len(got) != 1 || got[0].Ref != 0 {
		t.Fatalf("ProbeKey(variant) = %v, want the original", got)
	}
	if raceEnabled {
		return
	}
	if avg := testing.AllocsPerRun(200, func() {
		_ = x.ProbeKey(k, gv-3, &sc)
	}); avg != 0 {
		t.Errorf("non-ASCII ProbeKey allocated %.2f times per op, want 0", avg)
	}
}

// Regression for unbounded dictionary growth under eviction churn: the
// dict accretes every distinct gram ever seen (by design, mid-run), so
// the snapshot boundary must compact it — a checkpoint of a long-lived
// windowed index must be bounded by the LIVE gram population, not by
// stream history. On pre-compaction code (Export instead of
// ExportCompacted) the bound assertion below fails.
func TestExportCompactedBoundsDictUnderChurn(t *testing.T) {
	x := newQIdx()
	const window = 16
	ref := 0
	for round := 0; round < 40; round++ {
		for i := 0; i < window; i++ {
			x.Insert(ref, fmt.Sprintf("churn key %d of round %d", i, round))
			ref++
		}
		x.EvictBelow(ref - window)
	}

	live := 0
	for _, g := range x.Dict().Grams() {
		if x.Frequency(g) > 0 {
			live++
		}
	}
	if x.Dict().Len() <= 2*live {
		t.Fatalf("churn loop built no dict garbage: %d total grams, %d live", x.Dict().Len(), live)
	}

	exp := x.ExportCompacted()
	if len(exp.Grams) > live {
		t.Fatalf("compacted export carries %d grams, want at most the %d live ones", len(exp.Grams), live)
	}
	if len(exp.Postings) != len(exp.Grams) {
		t.Fatalf("compacted export: %d posting lists for %d grams", len(exp.Postings), len(exp.Grams))
	}
	for id, refs := range exp.Postings {
		if len(refs) == 0 {
			t.Fatalf("compacted export kept dead gram id %d", id)
		}
	}

	// The compacted form must still satisfy every import invariant and
	// answer probes identically to the live index.
	y, err := ImportQGramIndex(qgram.New(3), exp)
	if err != nil {
		t.Fatalf("ImportQGramIndex(compacted): %v", err)
	}
	for i := 0; i < window; i++ {
		k := fmt.Sprintf("churn key %d of round %d", i, 39)
		got := y.Probe(k, 1)
		want := x.Probe(k, 1)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("probe %q after compacted round trip = %v, want %v", k, got, want)
		}
	}

	// With nothing evicted, compaction is the identity (and aliases the
	// index's data rather than copying it).
	z := newQIdx()
	z.Insert(0, "monte rosa")
	plain, compact := z.Export(), z.ExportCompacted()
	if !reflect.DeepEqual(plain, compact) {
		t.Errorf("ExportCompacted on an eviction-free index differs from Export")
	}
}
