package hashidx

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"adaptivelink/internal/qgram"
)

func TestExactIndexInsertLookup(t *testing.T) {
	x := NewExactIndex()
	x.Insert(0, "rome")
	x.Insert(1, "milan")
	x.Insert(2, "rome")
	if got := x.Lookup("rome"); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("Lookup(rome) = %v", got)
	}
	if got := x.Lookup("milan"); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("Lookup(milan) = %v", got)
	}
	if got := x.Lookup("missing"); len(got) != 0 {
		t.Errorf("Lookup(missing) = %v", got)
	}
	if x.Indexed() != 3 || x.Buckets() != 2 {
		t.Errorf("Indexed=%d Buckets=%d", x.Indexed(), x.Buckets())
	}
	if got := x.AvgBucketLen(); got != 1.5 {
		t.Errorf("AvgBucketLen = %v", got)
	}
}

func TestExactIndexDenseOrderEnforced(t *testing.T) {
	x := NewExactIndex()
	x.Insert(0, "a")
	defer func() {
		if recover() == nil {
			t.Error("out-of-order Insert did not panic")
		}
	}()
	x.Insert(2, "b")
}

func TestExactIndexCatchUp(t *testing.T) {
	keys := []string{"a", "b", "c", "d"}
	x := NewExactIndex()
	if n := x.CatchUp(keys[:2]); n != 2 {
		t.Errorf("first CatchUp inserted %d", n)
	}
	if n := x.CatchUp(keys); n != 2 {
		t.Errorf("second CatchUp inserted %d, want 2 (suffix only)", n)
	}
	if n := x.CatchUp(keys); n != 0 {
		t.Errorf("idempotent CatchUp inserted %d", n)
	}
	if got := x.Lookup("d"); !reflect.DeepEqual(got, []int{3}) {
		t.Errorf("Lookup(d) = %v", got)
	}
}

func TestExactIndexEmptyAvgBucket(t *testing.T) {
	if got := NewExactIndex().AvgBucketLen(); got != 0 {
		t.Errorf("empty AvgBucketLen = %v", got)
	}
}

func newQIdx() *QGramIndex { return NewQGramIndex(qgram.New(3)) }

func TestQGramIndexInsertAndFrequency(t *testing.T) {
	x := newQIdx()
	x.Insert(0, "rome")
	x.Insert(1, "romeo")
	// "##r", "#ro", "rom", "ome" are shared by both keys.
	for _, g := range []string{"##r", "#ro", "rom", "ome"} {
		if got := x.Frequency(g); got != 2 {
			t.Errorf("Frequency(%q) = %d, want 2", g, got)
		}
	}
	if x.Indexed() != 2 {
		t.Errorf("Indexed = %d", x.Indexed())
	}
	if x.GramSize(0) != 6 { // |rome|+q-1 = 4+2, all distinct
		t.Errorf("GramSize(0) = %d, want 6", x.GramSize(0))
	}
	if x.Entries() != x.GramSize(0)+x.GramSize(1) {
		t.Errorf("Entries = %d", x.Entries())
	}
	if x.AvgBucketLen() <= 0 {
		t.Error("AvgBucketLen should be positive")
	}
}

func TestQGramIndexDenseOrderEnforced(t *testing.T) {
	x := newQIdx()
	defer func() {
		if recover() == nil {
			t.Error("out-of-order Insert did not panic")
		}
	}()
	x.Insert(1, "a")
}

func TestQGramIndexCatchUp(t *testing.T) {
	x := newQIdx()
	keys := []string{"rome", "milan", "turin"}
	x.CatchUp(keys[:1])
	if n := x.CatchUp(keys); n != 2 {
		t.Errorf("CatchUp inserted %d, want 2", n)
	}
	if x.Indexed() != 3 {
		t.Errorf("Indexed = %d", x.Indexed())
	}
}

func TestProbeFindsExactDuplicate(t *testing.T) {
	x := newQIdx()
	x.Insert(0, "SANTA CRISTINA")
	x.Insert(1, "GENOVA")
	g := x.GramSize(0)
	cands := x.Probe("SANTA CRISTINA", g) // require full overlap
	if len(cands) != 1 || cands[0].Ref != 0 || cands[0].Overlap != g {
		t.Errorf("Probe = %v, want ref 0 with overlap %d", cands, g)
	}
}

func TestProbeFindsOneEditVariant(t *testing.T) {
	x := newQIdx()
	orig := "TAA BZ SANTA CRISTINA VALGARDENA"
	x.Insert(0, orig)
	variant := "TAA BZ SANTA CRISTINx VALGARDENA"
	// A 1-char substitution disturbs at most q=3 grams.
	gv := len(qgram.New(3).Grams(variant))
	cands := x.Probe(variant, gv-3)
	if len(cands) != 1 || cands[0].Ref != 0 {
		t.Errorf("Probe(variant) = %v, want original", cands)
	}
}

func TestProbeRespectsMinOverlap(t *testing.T) {
	x := newQIdx()
	x.Insert(0, "abcdef")
	x.Insert(1, "uvwxyz")
	cands := x.Probe("abcdef", 4)
	if len(cands) != 1 || cands[0].Ref != 0 {
		t.Errorf("Probe = %v", cands)
	}
	// Nothing shares 4 grams with a disjoint string.
	if cands := x.Probe("zzzzzz", 2); len(cands) != 0 {
		t.Errorf("Probe(zzzzzz) = %v, want none", cands)
	}
}

func TestProbeDegenerateInputs(t *testing.T) {
	x := newQIdx()
	x.Insert(0, "abc")
	if got := x.Probe("", 1); got != nil {
		t.Errorf("Probe(empty) = %v", got)
	}
	if got := x.Probe("abc", 0); got != nil {
		t.Errorf("Probe(minOverlap=0) = %v", got)
	}
	// minOverlap larger than the probe's gram count can never be met.
	if got := x.Probe("ab", 100); got != nil {
		t.Errorf("Probe(k>g) = %v", got)
	}
}

func TestProbeOnEmptyIndex(t *testing.T) {
	x := newQIdx()
	if got := x.Probe("anything", 1); len(got) != 0 {
		t.Errorf("Probe on empty index = %v", got)
	}
	if x.AvgBucketLen() != 0 {
		t.Error("empty AvgBucketLen != 0")
	}
}

// Property: the optimised probe returns exactly the same candidate set
// (refs and overlap counts) as the naive probe, for random corpora of
// short synthetic keys and all feasible thresholds.
func TestProbeMatchesNaiveProperty(t *testing.T) {
	syllables := []string{"mon", "te", "ro", "sa", "vi", "la", "ber", "go", "ne", "ca"}
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		x := newQIdx()
		n := 5 + rng.Intn(30)
		keys := make([]string, n)
		for i := range keys {
			s := ""
			for w := 0; w < 2+rng.Intn(4); w++ {
				s += syllables[rng.Intn(len(syllables))]
			}
			keys[i] = s
			x.Insert(i, s)
		}
		probe := keys[rng.Intn(n)]
		g := len(qgram.New(3).Grams(probe))
		k := 1 + int(kRaw)%g
		got := x.Probe(probe, k)
		want := x.ProbeNaive(probe, k)
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: every candidate's overlap is the true number of shared
// distinct grams between probe and stored key.
func TestProbeOverlapIsTrueIntersectionProperty(t *testing.T) {
	ex := qgram.New(3)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := NewQGramIndex(ex)
		keys := make([]string, 12)
		for i := range keys {
			keys[i] = fmt.Sprintf("loc%d-%d", rng.Intn(4), rng.Intn(4))
			x.Insert(i, keys[i])
		}
		probe := keys[rng.Intn(len(keys))]
		for _, c := range x.Probe(probe, 2) {
			want := qgram.Intersection(ex.Grams(probe), ex.Grams(keys[c.Ref]))
			if c.Overlap != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestProbeDeterministicOrder(t *testing.T) {
	x := newQIdx()
	for i, k := range []string{"aaa", "aab", "aac", "aad"} {
		x.Insert(i, k)
	}
	a := x.Probe("aaa", 2)
	b := x.Probe("aaa", 2)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("non-deterministic probe: %v vs %v", a, b)
	}
	for i := 1; i < len(a); i++ {
		if a[i].Ref <= a[i-1].Ref {
			t.Errorf("candidates not sorted by ref: %v", a)
		}
	}
}

func TestExactIndexEvictBelow(t *testing.T) {
	x := NewExactIndex()
	for i, k := range []string{"rome", "milan", "rome", "turin", "rome"} {
		x.Insert(i, k)
	}
	if got := x.EvictBelow(3); got != 3 { // rome:0, milan:1, rome:2
		t.Errorf("EvictBelow(3) dropped %d entries, want 3", got)
	}
	if got := x.Lookup("rome"); !reflect.DeepEqual(got, []int{4}) {
		t.Errorf("Lookup(rome) after eviction = %v, want [4]", got)
	}
	if got := x.Lookup("milan"); len(got) != 0 {
		t.Errorf("emptied bucket survived: %v", got)
	}
	if x.Indexed() != 5 {
		t.Errorf("Indexed changed to %d, want 5 (eviction must not rewind the insertion clock)", x.Indexed())
	}
	// Dense insertion continues after eviction.
	x.Insert(5, "milan")
	if got := x.Lookup("milan"); !reflect.DeepEqual(got, []int{5}) {
		t.Errorf("post-eviction Insert broken: %v", got)
	}
	// Idempotent: nothing below the floor remains.
	if got := x.EvictBelow(3); got != 0 {
		t.Errorf("second EvictBelow(3) dropped %d", got)
	}
}

func TestQGramIndexEvictBelow(t *testing.T) {
	x := newQIdx()
	keys := []string{"monte rosa", "monte bianco", "gran paradiso"}
	for i, k := range keys {
		x.Insert(i, k)
	}
	before := x.Entries()
	dropped := x.EvictBelow(2)
	if dropped <= 0 {
		t.Fatalf("EvictBelow(2) dropped %d entries", dropped)
	}
	if got := x.Entries(); got != before-dropped {
		t.Errorf("Entries = %d, want %d", got, before-dropped)
	}
	// Probing the evicted keys must surface only live refs.
	for _, k := range keys[:2] {
		for _, c := range x.Probe(k, 1) {
			if c.Ref < 2 {
				t.Errorf("probe %q returned evicted ref %d", k, c.Ref)
			}
		}
	}
	// The survivor still probes fine and gram sizes are retained.
	if got := x.Probe("gran paradiso", 2); len(got) != 1 || got[0].Ref != 2 {
		t.Errorf("live ref lost after eviction: %v", got)
	}
	if x.GramSize(0) == 0 {
		t.Error("gram-size bookkeeping lost for evicted ref")
	}
	if x.Indexed() != 3 {
		t.Errorf("Indexed changed to %d", x.Indexed())
	}
	// CatchUp keeps working from the insertion clock.
	if n := x.CatchUp([]string{"monte rosa", "monte bianco", "gran paradiso", "cervino"}); n != 1 {
		t.Errorf("CatchUp inserted %d, want 1", n)
	}
}
