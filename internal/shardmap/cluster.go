package shardmap

import "fmt"

// NodeRange is one node's slice of the logical shard space: the
// half-open interval [Lo, Hi) of shard indices the node owns.
type NodeRange struct {
	Lo, Hi int
}

// Contains reports whether the range owns shard.
func (r NodeRange) Contains(shard int) bool { return shard >= r.Lo && shard < r.Hi }

// Len returns the number of shards in the range.
func (r NodeRange) Len() int { return r.Hi - r.Lo }

// NodeRanges partitions the M logical shards over N nodes as contiguous
// ranges: node i owns NodeRanges(M, N)[i]. This is the cluster's
// shard→node assignment contract — every router and every differential
// harness must derive placement from it, never re-hash. The split is as
// even as possible with the remainder spread over the first M%N nodes,
// so the assignment is a pure function of (shards, nodes) and two
// processes with the same pair always agree. It panics when nodes < 1
// or shards < nodes (a node owning zero shards is a configuration
// error, not a load-balancing choice).
func NodeRanges(shards, nodes int) []NodeRange {
	if nodes < 1 || shards < nodes {
		panic(fmt.Sprintf("shardmap: cannot spread %d shards over %d nodes", shards, nodes))
	}
	base, rem := shards/nodes, shards%nodes
	out := make([]NodeRange, nodes)
	lo := 0
	for i := range out {
		hi := lo + base
		if i < rem {
			hi++
		}
		out[i] = NodeRange{Lo: lo, Hi: hi}
		lo = hi
	}
	return out
}

// NodeOf returns the node owning the given logical shard under the
// NodeRanges contract, computed arithmetically (no table).
func NodeOf(shard, shards, nodes int) int {
	if shard < 0 || shard >= shards {
		panic(fmt.Sprintf("shardmap: shard %d outside [0, %d)", shard, shards))
	}
	base, rem := shards/nodes, shards%nodes
	// The first rem nodes own base+1 shards each.
	cut := rem * (base + 1)
	if shard < cut {
		return shard / (base + 1)
	}
	return rem + (shard-cut)/base
}
