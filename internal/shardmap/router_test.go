package shardmap

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"adaptivelink/internal/datagen"
	"adaptivelink/internal/qgram"
	"adaptivelink/internal/simfn"
)

func intersects(a, b []int) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

// TestPrefixRouterCoPartitions is the property behind parallel
// correctness: any two keys whose similarity reaches θ under the join's
// measure must share at least one shard, at every shard count.
func TestPrefixRouterCoPartitions(t *testing.T) {
	// The paper's matching configuration (join.Defaults, restated here
	// because package join imports this one).
	cfg := struct {
		Q       int
		Measure simfn.TokenMeasure
		Theta   float64
	}{Q: 3, Measure: simfn.Jaccard, Theta: 0.75}
	sim := simfn.TokenSim(cfg.Measure, qgram.New(cfg.Q))

	// Perturbed child keys vs their parents give a dense supply of pairs
	// right at the threshold; random unrelated pairs rarely qualify, so
	// mix both.
	spec := datagen.Defaults(datagen.Uniform, true)
	spec.Seed, spec.ParentSize, spec.ChildSize = 7, 300, 300
	ds, err := datagen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for _, shards := range []int{2, 4, 8, 13} {
		r := NewPrefixRouter(shards, cfg.Q, cfg.Measure, cfg.Theta)
		checked := 0
		check := func(a, b string) {
			s := sim(a, b)
			if a != b && s < cfg.Theta {
				return
			}
			checked++
			ra := r.Routes(nil, a)
			rb := r.Routes(nil, b)
			if !intersects(ra, rb) {
				t.Errorf("shards=%d: qualifying pair (%q, %q) sim=%.3f routed apart: %v vs %v",
					shards, a, b, s, ra, rb)
			}
		}
		for i := 0; i < ds.Child.Len(); i++ {
			child := ds.Child.At(i).Key
			parent := ds.Parent.At(ds.ChildParent[i]).Key
			check(child, parent)
		}
		for i := 0; i < 300; i++ {
			a := ds.Parent.At(rng.Intn(ds.Parent.Len())).Key
			b := ds.Parent.At(rng.Intn(ds.Parent.Len())).Key
			check(a, b)
		}
		if checked < 100 {
			t.Fatalf("shards=%d: only %d qualifying pairs checked; dataset too clean for the property to bite", shards, checked)
		}
	}
}

// TestPrefixRouterDeterministic: equal keys route identically and the
// route list is deduplicated and sorted.
func TestPrefixRouterDeterministic(t *testing.T) {
	r := NewPrefixRouter(8, 3, simfn.Jaccard, 0.75)
	for _, key := range []string{"", "a", "main street 12", "Ω≠ascii"} {
		r1 := r.Routes(nil, key)
		r2 := r.Routes(nil, key)
		if len(r1) == 0 {
			t.Fatalf("key %q routed nowhere", key)
		}
		if len(r1) != len(r2) {
			t.Fatalf("key %q nondeterministic: %v vs %v", key, r1, r2)
		}
		for i := range r1 {
			if r1[i] != r2[i] {
				t.Fatalf("key %q nondeterministic: %v vs %v", key, r1, r2)
			}
			if i > 0 && r1[i] <= r1[i-1] {
				t.Fatalf("key %q routes not sorted/deduped: %v", key, r1)
			}
			if r1[i] < 0 || r1[i] >= 8 {
				t.Fatalf("key %q route out of range: %v", key, r1)
			}
		}
	}
}

// TestKeyRouterSingleShard: exactly one shard per key, stable for equal
// keys.
func TestKeyRouterSingleShard(t *testing.T) {
	r := NewKeyRouter(5)
	for _, key := range []string{"", "x", "main street 12"} {
		rs := r.Routes(nil, key)
		if len(rs) != 1 || rs[0] < 0 || rs[0] >= 5 {
			t.Fatalf("key %q routes %v, want exactly one shard in [0,5)", key, rs)
		}
		if again := r.Routes(nil, key); again[0] != rs[0] {
			t.Fatalf("key %q unstable: %v vs %v", key, rs, again)
		}
	}
}

// TestRoutesReuse: the dst slice is reused without cross-call leakage.
func TestRoutesReuse(t *testing.T) {
	r := NewPrefixRouter(4, 3, simfn.Jaccard, 0.75)
	buf := r.Routes(nil, "first avenue")
	want := append([]int(nil), r.Routes(nil, "second boulevard")...)
	got := r.Routes(buf[:0], "second boulevard")
	if len(got) != len(want) {
		t.Fatalf("reused buffer changed routes: %v vs %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("reused buffer changed routes: %v vs %v", got, want)
		}
	}
}

// RoutesKey must return exactly what Routes returns for every key: the
// packed canonical gram order and byte-wise FNV shard hashing must
// agree with the string path, ASCII and non-ASCII alike.
func TestRoutesKeyMatchesRoutes(t *testing.T) {
	keys := []string{
		"", "a", "TAA BZ SANTA CRISTINA VALGARDENA", "via monte bianco 12",
		"münchen hauptbahnhof", "łódź 12", "東京都港区", "aaaaaaaa",
		"short", "x y z", "a#b$c",
	}
	for _, shards := range []int{1, 2, 4, 7} {
		r := NewPrefixRouter(shards, 3, simfn.Jaccard, 0.75)
		ex := qgram.New(3)
		var sc qgram.Scratch
		for _, key := range keys {
			sc.Reset()
			want := r.Routes(nil, key)
			got := r.RoutesKey(nil, key, ex.Decompose(&sc, key))
			if !reflect.DeepEqual(got, want) {
				t.Errorf("shards=%d key=%q: RoutesKey=%v Routes=%v", shards, key, got, want)
			}
		}
	}
}

func TestRoutesKeyMatchesRoutesRandom(t *testing.T) {
	r := NewPrefixRouter(5, 3, simfn.Jaccard, 0.75)
	ex := qgram.New(3)
	alpha := []rune("abAB 19é目#$")
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rs := make([]rune, int(n)%30)
		for i := range rs {
			rs[i] = alpha[rng.Intn(len(alpha))]
		}
		key := string(rs)
		var sc qgram.Scratch
		return reflect.DeepEqual(
			r.RoutesKey(nil, key, ex.Decompose(&sc, key)),
			r.Routes(nil, key))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestShardOfBytesMatchesShardOf(t *testing.T) {
	for _, s := range []string{"", "a", "##r", "rom", "目"} {
		if ShardOfBytes([]byte(s), 7) != ShardOf(s, 7) {
			t.Errorf("ShardOfBytes(%q) != ShardOf", s)
		}
	}
}
