// Package shardmap decides which shards a join key belongs to. It is
// the routing layer shared by the partition-parallel streaming executor
// (internal/pjoin) and the sharded resident index (internal/join): both
// hash-partition keys the same way, so the two engine modes co-partition
// identically and parity statements carry across them.
//
// Correctness of the partitioning rests on the co-partitioning
// guarantee: any two keys that can match — by equality, or by q-gram
// similarity at or above the configured threshold — must be routed to
// at least one common shard. PrefixRouter provides it for approximate
// matching via the prefix-filtering principle; KeyRouter provides the
// cheaper equality-only guarantee for joins pinned to exact matching.
package shardmap

import (
	"sort"

	"adaptivelink/internal/qgram"
	"adaptivelink/internal/simfn"
)

// Router decides which shards a join key must be sent to. Routes must be
// deterministic in the key, return at least one shard, and contain no
// duplicates. Routers are used concurrently by the splitter only, but
// implementations must still be safe for concurrent Routes calls because
// tests and future multi-splitter layouts share them.
type Router interface {
	// Routes appends the key's shard indices to dst and returns the
	// extended slice (dst may be nil; its capacity is reused to avoid
	// per-tuple allocation).
	Routes(dst []int, key string) []int
	// Replicates reports whether a key can route to more than one
	// shard. When false, every pair lives in exactly one shard and the
	// merger skips duplicate tracking entirely.
	Replicates() bool
}

// ShardOf hashes a string onto [0, shards) with inlined FNV-1a. It is
// exported because it is the contract for "the shard owning a key": the
// resident index probes exactly ShardOf(key, N) for exact matches, and
// the splitter — the executor's serial section — inlines it so this
// path must not allocate.
func ShardOf(s string, shards int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return int(h % uint32(shards))
}

// ShardOfBytes is ShardOf for a byte window: the same FNV-1a over the
// same bytes yields the same shard, so routing computed from packed
// gram bytes (the dictionary-encoded probe path) agrees with routing
// computed from gram strings.
func ShardOfBytes(b []byte, shards int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(b); i++ {
		h ^= uint32(b[i])
		h *= prime32
	}
	return int(h % uint32(shards))
}

// KeyRouter routes each key to the single shard owning its hash. Equal
// keys land together, so it co-partitions exact matches with replication
// factor 1 — sufficient for joins that can never probe approximately
// (lex/rex with no controller attached).
type KeyRouter struct {
	shards int
}

// NewKeyRouter returns an equality-only router over the given number of
// shards.
func NewKeyRouter(shards int) *KeyRouter {
	if shards < 1 {
		panic("shardmap: shards < 1")
	}
	return &KeyRouter{shards: shards}
}

// Routes implements Router.
func (r *KeyRouter) Routes(dst []int, key string) []int {
	return append(dst, ShardOf(key, r.shards))
}

// Replicates implements Router: one shard per key, always.
func (r *KeyRouter) Replicates() bool { return false }

// PrefixRouter co-partitions approximate matches: it routes each key to
// the shards owning the q-grams of its prefix-filter signature. For a
// key with g distinct (padded) q-grams and count bound
// k = MinOverlap(g, θ), any partner reaching similarity θ must share at
// least k grams with it, so — ordering grams canonically — the first
// g−k+1 grams of the two keys must intersect (the prefix-filtering
// principle of Chaudhuri et al. / Bayardo et al.). Routing every key to
// the shards of its first g−k+1 canonical grams therefore places every
// qualifying pair, exact pairs included (equal keys have identical
// signatures), in at least one common shard.
//
// The replication factor is min(g−k+1, shards) in the worst case; for
// the paper's θ = 0.75 Jaccard over padded 3-grams of realistic join
// keys it is ~5 grams hashing into ~min(5, P) shards.
type PrefixRouter struct {
	shards int
	ex     *qgram.Extractor
	m      simfn.TokenMeasure
	theta  float64
}

// NewPrefixRouter returns a similarity-preserving router. q, m and theta
// must match the join configuration the shards run, or the guarantee is
// void.
func NewPrefixRouter(shards, q int, m simfn.TokenMeasure, theta float64) *PrefixRouter {
	if shards < 1 {
		panic("shardmap: shards < 1")
	}
	return &PrefixRouter{shards: shards, ex: qgram.New(q), m: m, theta: theta}
}

// Routes implements Router.
func (r *PrefixRouter) Routes(dst []int, key string) []int {
	grams := r.ex.Grams(key)
	g := len(grams)
	if g == 0 {
		// Degenerate key with no grams: route by the raw key so equal
		// degenerate keys still meet (nothing else can reach θ > 0
		// against an empty gram set).
		return append(dst, ShardOf(key, r.shards))
	}
	// Canonical global gram order: lexicographic. Any fixed total order
	// satisfies the prefix theorem; frequency orders only shrink
	// candidate sets, which routing does not need.
	sorted := qgram.Sorted(grams)
	k := r.m.MinOverlap(g, r.theta)
	if k < 1 {
		k = 1
	}
	prefix := sorted[:g-k+1]
	start := len(dst)
	for _, gr := range prefix {
		s := ShardOf(gr, r.shards)
		dup := false
		for _, have := range dst[start:] {
			if have == s {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, s)
		}
	}
	sort.Ints(dst[start:])
	return dst
}

// RoutesKey is the allocation-free form of Routes for a key the caller
// has already decomposed (with set semantics and a configuration
// matching the router's — same q, no multiset). It returns exactly the
// shards Routes(dst, key) would: a set-mode qgram.Key holds its
// distinct grams in the same canonical lexicographic order Routes
// sorts into, so the prefix-filter signature is the Key's leading
// g−k+1 grams, hashed without materialising gram strings.
func (r *PrefixRouter) RoutesKey(dst []int, key string, k qgram.Key) []int {
	g := k.Len()
	if g == 0 {
		// Degenerate key with no grams: route by the raw key so equal
		// degenerate keys still meet.
		return append(dst, ShardOf(key, r.shards))
	}
	ko := r.m.MinOverlap(g, r.theta)
	if ko < 1 {
		ko = 1
	}
	var buf [16]byte
	start := len(dst)
	for i := 0; i < g-ko+1; i++ {
		s := ShardOfBytes(k.AppendGram(buf[:0], i), r.shards)
		dup := false
		for _, have := range dst[start:] {
			if have == s {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, s)
		}
	}
	sort.Ints(dst[start:])
	return dst
}

// Replicates implements Router: prefix signatures span several shards.
func (r *PrefixRouter) Replicates() bool { return r.shards > 1 }
