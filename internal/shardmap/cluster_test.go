package shardmap

import "testing"

// The assignment contract: contiguous, disjoint, covering, and NodeOf
// agrees with NodeRanges for every (shards, nodes, shard) triple.
func TestNodeAssignmentContract(t *testing.T) {
	for shards := 1; shards <= 24; shards++ {
		for nodes := 1; nodes <= shards; nodes++ {
			ranges := NodeRanges(shards, nodes)
			if len(ranges) != nodes {
				t.Fatalf("NodeRanges(%d, %d) has %d ranges", shards, nodes, len(ranges))
			}
			next := 0
			for i, r := range ranges {
				if r.Lo != next || r.Hi <= r.Lo {
					t.Fatalf("NodeRanges(%d, %d)[%d] = %+v, want contiguous from %d", shards, nodes, i, r, next)
				}
				next = r.Hi
			}
			if next != shards {
				t.Fatalf("NodeRanges(%d, %d) covers [0, %d), want [0, %d)", shards, nodes, next, shards)
			}
			// Evenness: range sizes differ by at most one.
			for _, r := range ranges {
				if d := r.Len() - ranges[len(ranges)-1].Len(); d < 0 || d > 1 {
					t.Fatalf("NodeRanges(%d, %d) uneven: %+v", shards, nodes, ranges)
				}
			}
			for shard := 0; shard < shards; shard++ {
				n := NodeOf(shard, shards, nodes)
				if !ranges[n].Contains(shard) {
					t.Fatalf("NodeOf(%d, %d, %d) = %d but range %+v does not own it", shard, shards, nodes, n, ranges[n])
				}
			}
		}
	}
}

func TestNodeRangesRejectsStarvedNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NodeRanges(2, 3) did not panic")
		}
	}()
	NodeRanges(2, 3)
}
