package qgram

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestGramsPaddedCount(t *testing.T) {
	// Padded multiset decomposition of a length-L string yields L+q-1 grams
	// (the paper's |jA|+q-1 accounting).
	e := New(3, AsMultiset())
	cases := []struct {
		s    string
		want int
	}{
		{"", 0},
		{"a", 3},     // ##a, #a$, a$$
		{"ab", 4},    // ##a #ab ab$ b$$
		{"abcde", 7}, // 5+3-1
	}
	for _, c := range cases {
		got := e.Grams(c.s)
		if len(got) != c.want {
			t.Errorf("Grams(%q) = %v (%d grams), want %d", c.s, got, len(got), c.want)
		}
		if n := e.Count(c.s); n != c.want {
			t.Errorf("Count(%q) = %d, want %d", c.s, n, c.want)
		}
	}
}

func TestGramsContent(t *testing.T) {
	e := New(2, AsMultiset())
	got := e.Grams("ab")
	want := []string{"#a", "ab", "b$"}
	if len(got) != len(want) {
		t.Fatalf("Grams = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("gram %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestGramsUnpadded(t *testing.T) {
	e := New(3, WithoutPadding(), AsMultiset())
	got := e.Grams("abcd")
	want := []string{"abc", "bcd"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Grams = %v, want %v", got, want)
	}
}

func TestGramsUnpaddedShortString(t *testing.T) {
	e := New(3, WithoutPadding())
	got := e.Grams("ab")
	if len(got) != 1 || got[0] != "ab" {
		t.Errorf("short unpadded Grams = %v, want [ab]", got)
	}
	if n := e.Count("ab"); n != 1 {
		t.Errorf("Count = %d, want 1", n)
	}
}

func TestGramsDedup(t *testing.T) {
	e := New(1, WithoutPadding())
	got := e.Grams("aaa")
	if len(got) != 1 || got[0] != "a" {
		t.Errorf("set Grams(aaa) = %v, want [a]", got)
	}
	m := New(1, WithoutPadding(), AsMultiset())
	if got := m.Grams("aaa"); len(got) != 3 {
		t.Errorf("multiset Grams(aaa) = %v, want 3 grams", got)
	}
}

func TestCaseFolding(t *testing.T) {
	plain := New(3)
	fold := New(3, WithCaseFolding())
	if Intersection(plain.Grams("rome"), plain.Grams("ROME")) != 0 {
		t.Skip("unexpected case-insensitive plain grams")
	}
	a, b := fold.Grams("rome"), fold.Grams("ROME")
	if Intersection(a, b) != len(a) {
		t.Errorf("folded grams of rome/ROME differ: %v vs %v", a, b)
	}
}

func TestGramsUnicode(t *testing.T) {
	e := New(2, WithoutPadding(), AsMultiset())
	got := e.Grams("héllo")
	// 5 runes -> 4 bigrams; multi-byte é must not be split.
	if len(got) != 4 || got[0] != "hé" || got[1] != "él" {
		t.Errorf("Grams(héllo) = %v", got)
	}
}

func TestGramSet(t *testing.T) {
	e := New(3)
	set := e.GramSet("abc")
	for _, g := range e.Grams("abc") {
		if _, ok := set[g]; !ok {
			t.Errorf("GramSet missing %q", g)
		}
	}
}

func TestNewPanicsOnBadQ(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}

func TestIntersection(t *testing.T) {
	cases := []struct {
		a, b []string
		want int
	}{
		{nil, nil, 0},
		{[]string{"x"}, nil, 0},
		{[]string{"a", "b"}, []string{"b", "c"}, 1},
		{[]string{"a", "b", "c"}, []string{"a", "b", "c"}, 3},
		{[]string{"a", "a"}, []string{"a", "a", "a"}, 1}, // distinct grams counted once
	}
	for _, c := range cases {
		if got := Intersection(c.a, c.b); got != c.want {
			t.Errorf("Intersection(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := Intersection(c.b, c.a); got != c.want {
			t.Errorf("Intersection(%v,%v) = %d, want %d (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestSorted(t *testing.T) {
	in := []string{"c", "a", "b"}
	got := Sorted(in)
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("Sorted = %v", got)
	}
	if in[0] != "c" {
		t.Error("Sorted mutated its input")
	}
}

// Property: identical strings share all grams; gram count matches the
// |jA|+q-1 formula for padded multisets over ASCII inputs.
func TestGramsProperties(t *testing.T) {
	e := New(3, AsMultiset())
	f := func(s string) bool {
		g1, g2 := e.Grams(s), e.Grams(s)
		if len(g1) != len(g2) {
			return false
		}
		runes := len([]rune(s))
		if runes == 0 {
			return len(g1) == 0
		}
		return len(g1) == runes+3-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: every gram of a padded decomposition has rune-length q.
func TestGramWidthProperty(t *testing.T) {
	e := New(3, AsMultiset())
	f := func(s string) bool {
		for _, g := range e.Grams(s) {
			if len([]rune(g)) != 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a single-character edit changes at most q grams of the
// padded multiset decomposition (the classic q-gram edit bound),
// so Intersection >= len - q for the set variant on substitution edits.
func TestEditBoundProperty(t *testing.T) {
	e := New(3, AsMultiset())
	f := func(s string, pos uint8) bool {
		if len(s) == 0 {
			return true
		}
		rs := []rune(s)
		i := int(pos) % len(rs)
		mutated := append([]rune(nil), rs...)
		mutated[i] = 'ж' // guaranteed different from itself? ensure differs
		if mutated[i] == rs[i] {
			mutated[i] = 'q'
		}
		a, b := e.Grams(string(rs)), e.Grams(string(mutated))
		// Multiset intersection lower bound: at most q grams touched.
		inter := Intersection(a, b)
		return inter >= len(dedupForTest(a))-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func dedupForTest(grams []string) []string {
	seen := map[string]struct{}{}
	var out []string
	for _, g := range grams {
		if _, ok := seen[g]; !ok {
			seen[g] = struct{}{}
			out = append(out, g)
		}
	}
	return out
}

func TestLongString(t *testing.T) {
	e := New(3, AsMultiset())
	s := strings.Repeat("abcdefghij", 100)
	if n := e.Count(s); n != 1000+2 {
		t.Errorf("Count(long) = %d, want 1002", n)
	}
}
