package qgram

import "testing"

// Gram-extraction microbenchmarks: the legacy string-materialising path
// vs the packed, scratch-reusing decomposition the probe hot path uses.
// scripts/bench_probe.sh records both in BENCH_probe.json.

const benchKey = "TAA BZ SANTA CRISTINA VALGARDENA"

// benchKeyCyrillic is the multilingual counterpart: same shape, all
// runes non-ASCII BMP, so decomposition takes the rune-packed path.
const benchKeyCyrillic = "МОС СП САНКТ ПЕТЕРБУРГ ВАСИЛЬЕВСКИЙ"

func BenchmarkGramsStrings(b *testing.B) {
	ex := New(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ex.Grams(benchKey)
	}
}

func BenchmarkGramsStringsCyrillic(b *testing.B) {
	ex := New(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ex.Grams(benchKeyCyrillic)
	}
}

func BenchmarkDecomposePacked(b *testing.B) {
	ex := New(3)
	var sc Scratch
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc.Reset()
		_ = ex.Decompose(&sc, benchKey)
	}
}

func BenchmarkDecomposePackedCyrillic(b *testing.B) {
	ex := New(3)
	var sc Scratch
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc.Reset()
		_ = ex.Decompose(&sc, benchKeyCyrillic)
	}
}

func BenchmarkDictAppendIDs(b *testing.B) {
	ex := New(3)
	d := NewDict()
	var sc Scratch
	k := ex.Decompose(&sc, benchKey)
	d.Intern(nil, k)
	ids := make([]uint32, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ids = d.AppendIDs(ids[:0], k)
	}
	_ = ids
}

func BenchmarkVerifyIntersectSortedIDs(b *testing.B) {
	ex := New(3)
	d := NewDict()
	var sc Scratch
	a := d.Intern(nil, ex.Decompose(&sc, benchKey))
	c := d.Intern(nil, ex.Decompose(&sc, "TAA BZ SANTA CRISTINX VALGARDENA"))
	sortIDs := func(s []uint32) {
		for i := 1; i < len(s); i++ {
			for j := i; j > 0 && s[j] < s[j-1]; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
	}
	sortIDs(a)
	sortIDs(c)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = IntersectSortedIDs(a, c)
	}
}
