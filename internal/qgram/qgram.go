// Package qgram implements q-gram decomposition of strings, the token
// representation used by the approximate join operator SSHJoin and by the
// token-based similarity functions in package simfn.
//
// The set of q-grams of a string s, q(s), is the set of all substrings
// obtained by sliding a window of width q over s (the paper uses q = 3).
// A string of length L yields L - q + 1 grams without padding, or
// L + q - 1 grams with the conventional '#'/'$' padding that gives
// positional weight to prefixes and suffixes. The paper's cost analysis
// counts |jA| + q - 1 grams per value, which corresponds to the padded
// variant; Extract therefore pads by default, and ExtractRaw is available
// for unpadded decomposition.
package qgram

import (
	"fmt"
	"sort"
	"strings"
	"unicode/utf8"
)

// DefaultQ is the gram width used throughout the paper ("typically q=3").
const DefaultQ = 3

// PadLeft and PadRight are the sentinel runes used to pad string ends so
// that prefixes and suffixes contribute q grams each.
const (
	PadLeft  = '#'
	PadRight = '$'
)

// Extractor decomposes strings into q-grams with a fixed configuration.
// The zero value is not usable; construct with New.
type Extractor struct {
	q        int
	padded   bool
	fold     bool // fold to upper case before decomposition
	multiset bool
}

// Option configures an Extractor.
type Option func(*Extractor)

// WithoutPadding disables the '#'/'$' end padding.
func WithoutPadding() Option { return func(e *Extractor) { e.padded = false } }

// WithCaseFolding makes decomposition case-insensitive by upper-casing
// input first.
func WithCaseFolding() Option { return func(e *Extractor) { e.fold = true } }

// AsMultiset keeps duplicate grams instead of deduplicating. The paper's
// Jaccard coefficient is defined on sets, so the default deduplicates.
func AsMultiset() Option { return func(e *Extractor) { e.multiset = true } }

// New returns an extractor for width q. It panics if q < 1, which is a
// programming error rather than a data error.
func New(q int, opts ...Option) *Extractor {
	if q < 1 {
		panic(fmt.Sprintf("qgram: invalid gram width %d", q))
	}
	e := &Extractor{q: q, padded: true}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Q returns the configured gram width.
func (e *Extractor) Q() int { return e.q }

// Padded reports whether end padding is enabled.
func (e *Extractor) Padded() bool { return e.padded }

// Grams returns the q-grams of s under the extractor's configuration.
// With padding, a non-empty string of rune-length L yields L + q - 1
// grams before deduplication; the empty string yields none. Without
// padding, strings shorter than q yield a single gram holding the whole
// string, so that short values still participate in similarity.
func (e *Extractor) Grams(s string) []string {
	if e.fold {
		s = foldUpper(s)
	}
	runes := []rune(s)
	if len(runes) == 0 {
		return nil
	}
	if e.padded {
		padded := make([]rune, 0, len(runes)+2*(e.q-1))
		for i := 0; i < e.q-1; i++ {
			padded = append(padded, PadLeft)
		}
		padded = append(padded, runes...)
		for i := 0; i < e.q-1; i++ {
			padded = append(padded, PadRight)
		}
		runes = padded
	}
	var grams []string
	if len(runes) < e.q {
		grams = []string{string(runes)}
	} else {
		grams = make([]string, 0, len(runes)-e.q+1)
		for i := 0; i+e.q <= len(runes); i++ {
			grams = append(grams, string(runes[i:i+e.q]))
		}
	}
	if e.multiset {
		return grams
	}
	return dedup(grams)
}

// GramSet returns the q-grams of s as a set.
func (e *Extractor) GramSet(s string) map[string]struct{} {
	grams := e.Grams(s)
	set := make(map[string]struct{}, len(grams))
	for _, g := range grams {
		set[g] = struct{}{}
	}
	return set
}

// Count returns the number of grams Grams(s) would produce, without
// allocating them. For multiset extractors this is pure arithmetic; for
// set extractors it is arithmetic whenever the multiset count provably
// equals the distinct count, and falls back to deduplicating otherwise.
//
// The fold used here is the SIMPLE upper-case mapping (strings.ToUpper
// applies unicode.ToUpper rune-wise), which maps each rune to exactly
// one rune — full case folding, which may expand (ß→SS), is
// deliberately excluded from the extractor; normalize.FoldCase applies
// it upstream when a profile opts in. Because the simple fold preserves
// the rune count and cannot create or remove pad runes, the arithmetic
// paths skip it entirely; TestFoldPreservesRuneCount pins this
// contract.
func (e *Extractor) Count(s string) int {
	l := utf8.RuneCountInString(s)
	if l == 0 {
		return 0
	}
	if e.multiset {
		if e.padded {
			return l + e.q - 1
		}
		if l < e.q {
			return 1
		}
		return l - e.q + 1
	}
	// Set semantics. When the whole string is shorter than q and holds
	// no pad runes, no two padded windows can collide: every window
	// containing leading pads has a distinct '#'-run length, and every
	// window without has a distinct '$'-run length. The multiset count
	// l+q-1 is therefore already the distinct count.
	if e.padded && l < e.q && !strings.ContainsRune(s, PadLeft) && !strings.ContainsRune(s, PadRight) {
		return l + e.q - 1
	}
	if !e.padded && l < e.q {
		return 1 // single whole-string gram
	}
	return len(e.Grams(s))
}

// foldUpper upper-cases s for case-insensitive decomposition, returning
// s itself — no allocation — when it is already upper-case ASCII.
func foldUpper(s string) string {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= utf8.RuneSelf || ('a' <= c && c <= 'z') {
			return strings.ToUpper(s)
		}
	}
	return s
}

// dedup removes duplicates preserving first-occurrence order.
func dedup(grams []string) []string {
	seen := make(map[string]struct{}, len(grams))
	out := grams[:0]
	for _, g := range grams {
		if _, dup := seen[g]; dup {
			continue
		}
		seen[g] = struct{}{}
		out = append(out, g)
	}
	return out
}

// Intersection returns |a ∩ b| for two gram sets given as slices. Inputs
// need not be sorted or deduplicated; duplicates are counted once.
func Intersection(a, b []string) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	set := make(map[string]struct{}, len(a))
	for _, g := range a {
		set[g] = struct{}{}
	}
	n := 0
	for _, g := range b {
		if _, ok := set[g]; ok {
			n++
			delete(set, g) // count each distinct gram once
		}
	}
	return n
}

// Sorted returns a lexicographically sorted copy of grams; used by tests
// and by deterministic diagnostics.
func Sorted(grams []string) []string {
	out := append([]string(nil), grams...)
	sort.Strings(out)
	return out
}
