//go:build race

package qgram

// raceEnabled reports whether the race detector is active: its runtime
// perturbs allocation counts, so testing.AllocsPerRun assertions skip
// themselves and are enforced race-free by `make alloc` instead.
const raceEnabled = true
