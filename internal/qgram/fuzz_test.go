package qgram

import "testing"

// FuzzGrams asserts the structural invariants of padded decomposition
// on arbitrary inputs: no panic, every gram exactly q runes, multiset
// count equal to runeLen+q-1, set a subset of the multiset.
func FuzzGrams(f *testing.F) {
	for _, seed := range []string{"", "a", "TAA BZ SANTA CRISTINA", "日本語テキスト", "\x00\xff", "   ", "aaaaaaaa"} {
		f.Add(seed)
	}
	set := New(3)
	multi := New(3, AsMultiset())
	f.Fuzz(func(t *testing.T, s string) {
		ms := multi.Grams(s)
		runes := len([]rune(s))
		if runes == 0 {
			if len(ms) != 0 {
				t.Fatalf("empty input produced grams %v", ms)
			}
			return
		}
		if len(ms) != runes+2 {
			t.Fatalf("multiset count %d, want %d", len(ms), runes+2)
		}
		seen := map[string]struct{}{}
		for _, g := range ms {
			if len([]rune(g)) != 3 {
				t.Fatalf("gram %q not width 3", g)
			}
			seen[g] = struct{}{}
		}
		ss := set.Grams(s)
		if len(ss) != len(seen) {
			t.Fatalf("set size %d, distinct multiset grams %d", len(ss), len(seen))
		}
		for _, g := range ss {
			if _, ok := seen[g]; !ok {
				t.Fatalf("set gram %q absent from multiset", g)
			}
		}
	})
}
