package qgram

import (
	"reflect"
	"testing"
)

// FuzzGrams asserts the structural invariants of padded decomposition
// on arbitrary inputs: no panic, every gram exactly q runes, multiset
// count equal to runeLen+q-1, set a subset of the multiset.
// FuzzDecomposeParity differentially tests the packed decomposition
// paths against the string-materialising Grams oracle: for every input
// — ASCII, Latin-with-diacritics, Cyrillic, Greek, CJK, astral-plane,
// invalid UTF-8 — Decompose must produce exactly the gram multiset (or
// canonical set) Grams does, under every extractor configuration. This
// is the harness that locks the byte-packed, rune-packed and string
// fallback paths to one semantics.
func FuzzDecomposeParity(f *testing.F) {
	seeds := []string{
		"", "TAA BZ SANTA CRISTINA VALGARDENA",
		"MÜNCHEN OST", "Łódź Śródmieście", "José Müller-Straße",
		"МОСКВА ПЕТРОГРАДСКАЯ", "Ярославль",
		"ΑΘΗΝΑ ΚΕΝΤΡΟ", "Θεσσαλονίκη",
		"東京都 港区", "名古屋市中村区",
		"mixed ascii と 漢字", "emoji 🦊 in key", "\xff\xfe broken",
		string(rune(0xFFFF)) + string(rune(0x10000)),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	variants := extractorVariants()
	f.Fuzz(func(t *testing.T, s string) {
		for name, ex := range variants {
			var sc Scratch
			got := decomposedGrams(ex.Decompose(&sc, s))
			want := ex.Grams(s)
			if !ex.multiset {
				want = Sorted(want)
			}
			if len(got) == 0 {
				got = nil
			}
			if len(want) == 0 {
				want = nil
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: Decompose(%q) = %v, want %v", name, s, got, want)
			}
			// Count must agree with the decomposition it summarises.
			if n := ex.Count(s); n != len(want) {
				t.Fatalf("%s: Count(%q) = %d, want %d", name, s, n, len(want))
			}
		}
	})
}

func FuzzGrams(f *testing.F) {
	for _, seed := range []string{"", "a", "TAA BZ SANTA CRISTINA", "日本語テキスト", "\x00\xff", "   ", "aaaaaaaa"} {
		f.Add(seed)
	}
	set := New(3)
	multi := New(3, AsMultiset())
	f.Fuzz(func(t *testing.T, s string) {
		ms := multi.Grams(s)
		runes := len([]rune(s))
		if runes == 0 {
			if len(ms) != 0 {
				t.Fatalf("empty input produced grams %v", ms)
			}
			return
		}
		if len(ms) != runes+2 {
			t.Fatalf("multiset count %d, want %d", len(ms), runes+2)
		}
		seen := map[string]struct{}{}
		for _, g := range ms {
			if len([]rune(g)) != 3 {
				t.Fatalf("gram %q not width 3", g)
			}
			seen[g] = struct{}{}
		}
		ss := set.Grams(s)
		if len(ss) != len(seen) {
			t.Fatalf("set size %d, distinct multiset grams %d", len(ss), len(seen))
		}
		for _, g := range ss {
			if _, ok := seen[g]; !ok {
				t.Fatalf("set gram %q absent from multiset", g)
			}
		}
	})
}
