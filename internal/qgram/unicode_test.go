package qgram

import (
	"math/rand"
	"reflect"
	"slices"
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

// Satellite regression: the extractor's fold is the SIMPLE upper-case
// mapping, which never changes a string's rune count — Count's l+q-1
// shortcut and the rune-packed window walk both depend on it. Full case
// folding (ß→SS, ligature expansion) lives in normalize.FoldCase and is
// deliberately excluded here.
func TestFoldPreservesRuneCount(t *testing.T) {
	fixed := []string{
		"", "straße", "ﬁn", "ŉgoro", "ΐ", "ǰ", "ß", "ẞ", "ﬀ",
		"münchen", "ЛЕНИНГРАД", "Ελλάδα", "東京都", "ijssel", "ǉubljana",
	}
	for _, s := range fixed {
		if got, want := utf8.RuneCountInString(foldUpper(s)), utf8.RuneCountInString(s); got != want {
			t.Errorf("foldUpper(%q) changed rune count %d -> %d", s, want, got)
		}
	}
	f := func(s string) bool {
		return utf8.RuneCountInString(foldUpper(s)) == utf8.RuneCountInString(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Path selection: non-ASCII BMP keys with q ≤ maxPackedRunes rune-pack;
// astral-plane runes and oversized q fall back to materialised strings;
// pure ASCII keeps the byte packing.
func TestDecomposePathSelection(t *testing.T) {
	var sc Scratch
	cases := []struct {
		q          int
		s          string
		runePacked bool
		strs       bool
	}{
		{3, "münchen", true, false},
		{3, "ЛЕНИНГРАД", true, false},
		{3, "東京都 港区", true, false},
		{3, "ascii only", false, false},
		{3, "emoji 🦊 den", false, true}, // astral rune: string fallback
		{4, "münchen", false, true},     // q > maxPackedRunes: string fallback
		{7, "ascii only", false, false}, // byte packing still fits q=7
	}
	for _, c := range cases {
		sc.Reset()
		k := New(c.q).Decompose(&sc, c.s)
		if k.runePacked != c.runePacked || (k.strs != nil) != c.strs {
			t.Errorf("Decompose(q=%d, %q): runePacked=%v strs=%v, want %v/%v",
				c.q, c.s, k.runePacked, k.strs != nil, c.runePacked, c.strs)
		}
	}
}

// The rune packing's ordering invariant: numeric order of packed values
// is lexicographic (UTF-8 bytewise) order of the gram strings, so a
// set-mode Key's grams come out sorted exactly like the string path's.
func TestRunePackedCanonicalOrder(t *testing.T) {
	alpha := []rune("абвГДЕ ёαβ語東ü#")
	ex := New(3)
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rs := make([]rune, 1+int(n)%20)
		for i := range rs {
			rs[i] = alpha[rng.Intn(len(alpha))]
		}
		var sc Scratch
		k := ex.Decompose(&sc, string(rs))
		if !k.runePacked {
			return true // all-ASCII draw; not this test's subject
		}
		if !slices.IsSorted(k.packed) {
			return false
		}
		grams := decomposedGrams(k)
		return slices.IsSorted(grams)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// packRunes/unpackRunes round-trip every BMP rune at every gram length.
func TestRunePackRoundTrip(t *testing.T) {
	samples := []rune{1, ' ', '#', 'z', 0x7F, 0x80, 'ü', 'Ж', 'ξ', '東', 0xFFFD, maxBMP}
	for _, r0 := range samples {
		for _, r1 := range samples {
			for n := 1; n <= maxPackedRunes; n++ {
				rs := []rune{r0, r1, 'х'}[:n]
				p := packRunes(rs)
				if got := string(unpackRunes(nil, p)); got != string(rs) {
					t.Fatalf("round trip %q -> %#x -> %q", string(rs), p, got)
				}
			}
		}
	}
}

// Dict round-trip on the rune-packed path: interned ids resolve through
// both the packed lookup and the string lookup, matching the ASCII
// contract.
func TestDictRunePackedRoundTrip(t *testing.T) {
	ex := New(3)
	d := NewDict()
	var sc Scratch
	k := ex.Decompose(&sc, "ЕКАТЕРИНБУРГ ЖЕЛЕЗНОДОРОЖНЫЙ")
	if !k.runePacked {
		t.Fatal("expected rune-packed key")
	}
	ids := d.Intern(nil, k)
	if len(ids) != k.Len() || d.Len() != k.Len() {
		t.Fatalf("interned %d ids, dict %d, grams %d", len(ids), d.Len(), k.Len())
	}
	if got := d.AppendIDs(nil, k); !reflect.DeepEqual(got, ids) {
		t.Errorf("AppendIDs = %v, want %v", got, ids)
	}
	for i, g := range decomposedGrams(k) {
		if id, ok := d.IDOf(g); !ok || id != ids[i] {
			t.Errorf("IDOf(%q) = %d,%v, want %d", g, id, ok, ids[i])
		}
	}
}

// Kernel allocation pins for the rune path: a warm decomposition and a
// read-only dictionary lookup of a non-ASCII BMP key allocate nothing.
func TestRunePackedDecomposeAndLookupZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unstable under -race")
	}
	ex := New(3)
	d := NewDict()
	var sc Scratch
	key := "МОСКВА ПЕТРОГРАДСКАЯ СТОРОНА"
	d.Intern(nil, ex.Decompose(&sc, key))
	sc.Reset()
	// Warm the scratch to steady-state capacity.
	_ = ex.Decompose(&sc, key)
	sc.Reset()
	if avg := testing.AllocsPerRun(100, func() {
		_ = ex.Decompose(&sc, key)
		sc.Reset()
	}); avg != 0 {
		t.Errorf("warm rune-packed Decompose allocated %.1f times per run", avg)
	}
	k := ex.Decompose(&sc, key)
	buf := make([]uint32, 0, 64)
	if avg := testing.AllocsPerRun(100, func() {
		buf = d.AppendIDs(buf[:0], k)
	}); avg != 0 {
		t.Errorf("rune-packed AppendIDs allocated %.1f times per run", avg)
	}
}

// The scratch arena keeps earlier rune-packed Keys valid while ASCII
// and fallback keys are decomposed after them — the mixed-script shape
// a multilingual batch produces.
func TestScratchArenaMixedScripts(t *testing.T) {
	ex := New(3)
	var sc Scratch
	keys := []string{"münchen ost", "plain ascii", "東京都 港区", "emoji 🦊 tail", "ΑΘΗΝΑ ΚΕΝΤΡΟ"}
	ks := make([]Key, len(keys))
	for i, s := range keys {
		ks[i] = ex.Decompose(&sc, s)
	}
	for i, s := range keys {
		got := decomposedGrams(ks[i])
		want := Sorted(ex.Grams(s))
		if !reflect.DeepEqual(got, want) {
			t.Errorf("arena key %d (%q) corrupted: %v != %v", i, s, got, want)
		}
	}
}

// The three decomposition paths agree with the Grams oracle on strings
// that sit exactly on the scheme boundaries.
func TestDecomposeBoundaryParity(t *testing.T) {
	boundary := []string{
		string(rune(maxBMP)),                         // last packable rune
		string(rune(maxBMP)) + string(rune(0x10000)), // BMP + first astral
		"�", "\xff\xfe", // replacement rune; invalid UTF-8
		"\x00abc", "ab­cd", // NUL; soft hyphen
		strings.Repeat("ё", 1), strings.Repeat("ё", 2), strings.Repeat("ё", 3),
	}
	for name, ex := range extractorVariants() {
		for _, s := range boundary {
			var sc Scratch
			got := decomposedGrams(ex.Decompose(&sc, s))
			want := ex.Grams(s)
			if !ex.multiset {
				want = Sorted(want)
			}
			if len(got) == 0 {
				got = nil
			}
			if len(want) == 0 {
				want = nil
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s: Decompose(%q) = %v, want %v", name, s, got, want)
			}
		}
	}
}
