//go:build !race

package qgram

// See race_on_test.go.
const raceEnabled = false
