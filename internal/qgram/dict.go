package qgram

import (
	"fmt"
	"maps"
	"slices"
	"unicode/utf8"
)

// This file implements the dictionary-encoded gram pipeline: instead of
// materialising one string per gram on every decomposition, keys are
// decomposed into scratch-backed Key values (packed uint64 windows on
// the ASCII fast path, interned strings otherwise) and grams are mapped
// to dense uint32 ids by a per-index Dict. The probe hot path of the
// join engines runs entirely on these ids: posting lists are keyed by
// id, candidate counting uses epoch-stamped arrays, and verification is
// integer arithmetic over precomputed signature sizes — no per-probe
// maps, no per-gram allocations.

// NoID is the sentinel returned for grams a read-only dictionary lookup
// does not know. Probe paths must short-circuit on it (an unknown gram
// has no postings) without interning — interning is a writer-side
// operation.
const NoID = ^uint32(0)

// maxPacked is the widest gram (in bytes) the ASCII fast path can pack
// into a uint64: 7 data bytes plus a length tag byte.
const maxPacked = 7

// pack encodes an ASCII gram of 1..maxPacked bytes into a uint64 with
// the length in the top byte and the data big-endian below it, so that
// numeric order of packed values equals lexicographic order of
// equal-length grams — the canonical gram order the prefix-filter
// router relies on.
func pack(b []byte) uint64 {
	p := uint64(len(b)) << 56
	shift := uint(48)
	for _, c := range b {
		p |= uint64(c) << shift
		shift -= 8
	}
	return p
}

// unpack decodes a packed gram into buf, returning the gram's bytes.
func unpack(buf *[maxPacked + 1]byte, p uint64) []byte {
	l := int(p >> 56)
	shift := uint(48)
	for i := 0; i < l; i++ {
		buf[i] = byte(p >> shift)
		shift -= 8
	}
	return buf[:l]
}

// Key is one decomposed join key: its q-grams in scratch-backed form.
// On the ASCII fast path grams are packed uint64s; otherwise they are
// materialised strings. For set-semantics extractors the grams are
// distinct and in canonical (lexicographic) order; multiset extractors
// keep window order with duplicates. A Key borrows the Scratch it was
// decomposed with and stays valid until that Scratch is Reset; it is
// immutable and safe to share across goroutines that only read it.
type Key struct {
	packed []uint64
	strs   []string
}

// Len returns the gram count |q(s)| (distinct under set semantics).
func (k Key) Len() int {
	if k.strs != nil {
		return len(k.strs)
	}
	return len(k.packed)
}

// AppendGram appends the i-th gram's bytes to buf and returns it, in
// the Key's canonical order, without allocating for packed grams.
func (k Key) AppendGram(buf []byte, i int) []byte {
	if k.strs != nil {
		return append(buf, k.strs[i]...)
	}
	var b [maxPacked + 1]byte
	return append(buf, unpack(&b, k.packed[i])...)
}

// Scratch holds the reusable buffers of the decomposition fast path.
// It is an arena: decompositions append and the resulting Keys borrow
// the arena until Reset. A Scratch serves one goroutine at a time.
// The zero value is ready to use.
type Scratch struct {
	buf    []byte   // padded, folded bytes of the key being decomposed
	runes  []rune   // fallback: padded runes
	win    []uint64 // raw packed windows before dedup
	packed []uint64 // arena of packed grams backing Keys
	strs   []string // arena of fallback gram strings backing Keys
	seen   map[string]struct{}
}

// Reset forgets every decomposition made since the previous Reset,
// keeping the allocated capacity. Keys borrowed from this Scratch are
// invalidated.
func (sc *Scratch) Reset() {
	sc.packed = sc.packed[:0]
	sc.strs = sc.strs[:0]
}

// Decompose is the allocation-free counterpart of Grams: it decomposes
// s into a scratch-backed Key under the extractor's configuration.
// Keys with only ASCII runes (and q small enough to pack) never
// materialise gram strings at all. The returned Key borrows sc and is
// valid until sc.Reset.
func (e *Extractor) Decompose(sc *Scratch, s string) Key {
	if len(s) == 0 {
		return Key{}
	}
	if e.q <= maxPacked && isASCII(s) {
		return e.decomposeASCII(sc, s)
	}
	return e.decomposeSlow(sc, s)
}

func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= utf8.RuneSelf {
			return false
		}
	}
	return true
}

func (e *Extractor) decomposeASCII(sc *Scratch, s string) Key {
	buf := sc.buf[:0]
	if e.padded {
		for i := 0; i < e.q-1; i++ {
			buf = append(buf, PadLeft)
		}
	}
	if e.fold {
		for i := 0; i < len(s); i++ {
			c := s[i]
			if 'a' <= c && c <= 'z' {
				c -= 'a' - 'A'
			}
			buf = append(buf, c)
		}
	} else {
		buf = append(buf, s...)
	}
	if e.padded {
		for i := 0; i < e.q-1; i++ {
			buf = append(buf, PadRight)
		}
	}
	sc.buf = buf

	win := sc.win[:0]
	if len(buf) < e.q {
		// Unpadded short string: one gram holding the whole value.
		win = append(win, pack(buf))
	} else {
		for i := 0; i+e.q <= len(buf); i++ {
			win = append(win, pack(buf[i:i+e.q]))
		}
	}
	sc.win = win

	start := len(sc.packed)
	if e.multiset {
		sc.packed = append(sc.packed, win...)
		return Key{packed: sc.packed[start:]}
	}
	// Set semantics: sort and deduplicate. Numeric order of packed
	// values is the canonical lexicographic gram order.
	slices.Sort(win)
	for i, p := range win {
		if i > 0 && p == win[i-1] {
			continue
		}
		sc.packed = append(sc.packed, p)
	}
	return Key{packed: sc.packed[start:]}
}

// decomposeSlow handles non-ASCII keys and gram widths too large to
// pack. Gram strings are materialised (one allocation each), but dedup
// still reuses the scratch map instead of allocating one per call.
func (e *Extractor) decomposeSlow(sc *Scratch, s string) Key {
	if e.fold {
		s = foldUpper(s)
	}
	runes := sc.runes[:0]
	if e.padded {
		for i := 0; i < e.q-1; i++ {
			runes = append(runes, PadLeft)
		}
	}
	for _, r := range s {
		runes = append(runes, r)
	}
	if e.padded {
		for i := 0; i < e.q-1; i++ {
			runes = append(runes, PadRight)
		}
	}
	sc.runes = runes

	start := len(sc.strs)
	if len(runes) < e.q {
		sc.strs = append(sc.strs, string(runes))
		return Key{strs: sc.strs[start:]}
	}
	if e.multiset {
		for i := 0; i+e.q <= len(runes); i++ {
			sc.strs = append(sc.strs, string(runes[i:i+e.q]))
		}
		return Key{strs: sc.strs[start:]}
	}
	if sc.seen == nil {
		sc.seen = make(map[string]struct{})
	} else {
		clear(sc.seen)
	}
	for i := 0; i+e.q <= len(runes); i++ {
		g := string(runes[i : i+e.q])
		if _, dup := sc.seen[g]; dup {
			continue
		}
		sc.seen[g] = struct{}{}
		sc.strs = append(sc.strs, g)
	}
	out := sc.strs[start:]
	slices.Sort(out) // canonical order, as on the packed path
	return Key{strs: out}
}

// Dict interns grams into dense uint32 ids: the dictionary encoding
// shared by a q-gram index and its probes. Ids are assigned in intern
// order, are stable forever (a Clone never renumbers), and stay below
// Len. A Dict is NOT safe for concurrent mutation; the join engines
// treat it as part of the index it belongs to — writers intern under
// the index's write discipline and publish immutable clones to readers
// (the RCU copy-on-write path), while probes use the read-only lookups.
type Dict struct {
	ids map[string]uint32
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]uint32)}
}

// Len returns the number of interned grams; every assigned id is below
// it.
func (d *Dict) Len() int { return len(d.ids) }

// Clone returns a copy sharing no mutable state with d. Interning into
// the clone never disturbs readers of the original, and existing ids
// are preserved — the copy-on-write step of an RCU snapshot build.
func (d *Dict) Clone() *Dict {
	return &Dict{ids: maps.Clone(d.ids)}
}

// IDOf returns the id of a gram given as a string, for diagnostics and
// frequency lookups outside the hot path.
func (d *Dict) IDOf(gram string) (uint32, bool) {
	id, ok := d.ids[gram]
	return id, ok
}

// Grams returns the interned grams in id order (Grams()[id] is the gram
// assigned id): the stable serialization of the dictionary. The slice
// is freshly allocated and owned by the caller.
func (d *Dict) Grams() []string {
	out := make([]string, len(d.ids))
	for g, id := range d.ids {
		out[id] = g
	}
	return out
}

// DictFromGrams reconstructs a dictionary from a Grams() enumeration,
// assigning each gram its position as id — the deserialization inverse
// of Grams. Duplicate grams would silently renumber ids, so they are
// rejected with a descriptive error (a snapshot decoder's corruption
// guard).
func DictFromGrams(grams []string) (*Dict, error) {
	d := &Dict{ids: make(map[string]uint32, len(grams))}
	for i, g := range grams {
		if _, dup := d.ids[g]; dup {
			return nil, fmt.Errorf("qgram: duplicate gram %q at id %d in dictionary enumeration", g, i)
		}
		d.ids[g] = uint32(i)
	}
	return d, nil
}

// AppendIDs maps k's grams to ids, appending one id per gram to dst in
// the Key's order. Unknown grams append NoID: a read-only lookup never
// grows the dictionary, so it is safe on shared immutable dicts and
// allocates nothing.
func (d *Dict) AppendIDs(dst []uint32, k Key) []uint32 {
	if k.strs != nil {
		for _, g := range k.strs {
			id, ok := d.ids[g]
			if !ok {
				id = NoID
			}
			dst = append(dst, id)
		}
		return dst
	}
	var b [maxPacked + 1]byte
	for _, p := range k.packed {
		id, ok := d.ids[string(unpack(&b, p))]
		if !ok {
			id = NoID
		}
		dst = append(dst, id)
	}
	return dst
}

// Intern maps k's grams to ids like AppendIDs but assigns the next
// dense id to each gram not yet present. Writer-side only.
func (d *Dict) Intern(dst []uint32, k Key) []uint32 {
	if k.strs != nil {
		for _, g := range k.strs {
			dst = append(dst, d.internString(g))
		}
		return dst
	}
	var b [maxPacked + 1]byte
	for _, p := range k.packed {
		bs := unpack(&b, p)
		id, ok := d.ids[string(bs)]
		if !ok {
			id = uint32(len(d.ids))
			d.ids[string(bs)] = id
		}
		dst = append(dst, id)
	}
	return dst
}

// InternStrings is Intern for a pre-materialised gram slice (the
// compatibility path of QGramIndex.InsertGrams).
func (d *Dict) InternStrings(dst []uint32, grams []string) []uint32 {
	for _, g := range grams {
		dst = append(dst, d.internString(g))
	}
	return dst
}

func (d *Dict) internString(g string) uint32 {
	id, ok := d.ids[g]
	if !ok {
		id = uint32(len(d.ids))
		d.ids[g] = id
	}
	return id
}

// IntersectSortedIDs returns |a ∩ b| for two ascending, deduplicated
// id slices by a sorted merge — the id-based counterpart of
// Intersection, with no map and no allocation.
func IntersectSortedIDs(a, b []uint32) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}
