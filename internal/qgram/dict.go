package qgram

import (
	"fmt"
	"maps"
	"slices"
	"unicode"
	"unicode/utf8"
)

// This file implements the dictionary-encoded gram pipeline: instead of
// materialising one string per gram on every decomposition, keys are
// decomposed into scratch-backed Key values (packed uint64 windows on
// the ASCII and BMP-rune fast paths, interned strings only for
// astral-plane or oversized grams) and grams are mapped to dense uint32
// ids by a per-index Dict. The probe hot path of the
// join engines runs entirely on these ids: posting lists are keyed by
// id, candidate counting uses epoch-stamped arrays, and verification is
// integer arithmetic over precomputed signature sizes — no per-probe
// maps, no per-gram allocations.

// NoID is the sentinel returned for grams a read-only dictionary lookup
// does not know. Probe paths must short-circuit on it (an unknown gram
// has no postings) without interning — interning is a writer-side
// operation.
const NoID = ^uint32(0)

// maxPacked is the widest gram (in bytes) the ASCII fast path can pack
// into a uint64: 7 data bytes plus a length tag byte.
const maxPacked = 7

// maxPackedRunes is the widest gram (in runes) the BMP rune path can
// pack into a uint64: 3 runes at 21 bits each (a BMP code point plus
// the +1 absence bias needs 17 bits; 21-bit fields keep headroom and
// divide 63 evenly). Revisiting the budget per plane: astral runes
// (> U+FFFF) would need 21 bits of payload plus the bias, overflowing
// the field, so they take the string fallback instead of a 2-rune
// packing — astral-plane keys are rare enough that a narrower budget
// is not worth a third scheme.
const maxPackedRunes = 3

// runeFieldBits and runeFieldMask describe one 21-bit rune field of the
// rune packing; maxBMP is the last code point the field can carry.
const (
	runeFieldBits = 21
	runeFieldMask = 1<<runeFieldBits - 1
	maxBMP        = 0xFFFF
)

// pack encodes an ASCII gram of 1..maxPacked bytes into a uint64 with
// the length in the top byte and the data big-endian below it, so that
// numeric order of packed values equals lexicographic order of
// equal-length grams — the canonical gram order the prefix-filter
// router relies on.
func pack(b []byte) uint64 {
	p := uint64(len(b)) << 56
	shift := uint(48)
	for _, c := range b {
		p |= uint64(c) << shift
		shift -= 8
	}
	return p
}

// unpack decodes a packed gram into buf, returning the gram's bytes.
func unpack(buf *[maxPacked + 1]byte, p uint64) []byte {
	l := int(p >> 56)
	shift := uint(48)
	for i := 0; i < l; i++ {
		buf[i] = byte(p >> shift)
		shift -= 8
	}
	return buf[:l]
}

// packRunes encodes a gram of 1..maxPackedRunes BMP runes into a uint64:
// rune i is stored as r+1 in the i-th 21-bit field from the top (bits
// 42..62, 21..41, 0..20; bit 63 stays clear). The +1 bias makes a zero
// field mean "absent", so the gram length is implicit and no length tag
// competes with the payload for bits. Field-by-field numeric comparison
// is rune-by-rune code-point comparison, and UTF-8 preserves code-point
// order bytewise, so for equal-length grams numeric order of packed
// values equals lexicographic order of the gram strings — the same
// canonical-order invariant the byte packing gives the prefix-filter
// router. Values from packRunes and pack are never compared with each
// other: a Key is packed under exactly one scheme (Key.runePacked).
func packRunes(rs []rune) uint64 {
	var p uint64
	shift := uint(2 * runeFieldBits)
	for _, r := range rs {
		p |= uint64(r+1) << shift
		shift -= runeFieldBits
	}
	return p
}

// runeGramBufLen is the stack-buffer size that always fits an unpacked
// rune gram: maxPackedRunes BMP runes of at most 3 UTF-8 bytes each
// (utf8.UTFMax covers astral runes, which the rune path excludes, but
// the extra headroom costs nothing on the stack).
const runeGramBufLen = maxPackedRunes * utf8.UTFMax

// unpackRunes appends the UTF-8 bytes of a rune-packed gram to buf and
// returns it; allocation-free when buf has capacity runeGramBufLen.
func unpackRunes(buf []byte, p uint64) []byte {
	for shift := 2 * runeFieldBits; ; shift -= runeFieldBits {
		f := (p >> uint(shift)) & runeFieldMask
		if f == 0 {
			break
		}
		buf = utf8.AppendRune(buf, rune(f-1))
		if shift == 0 {
			break
		}
	}
	return buf
}

// Key is one decomposed join key: its q-grams in scratch-backed form.
// On the packed fast paths grams are uint64s — byte-packed for ASCII
// keys, rune-packed for non-ASCII BMP keys (runePacked selects the
// scheme) — otherwise they are materialised strings. For set-semantics
// extractors the grams are distinct and in canonical (lexicographic)
// order; multiset extractors keep window order with duplicates. A Key
// borrows the Scratch it was decomposed with and stays valid until that
// Scratch is Reset; it is immutable and safe to share across goroutines
// that only read it.
type Key struct {
	packed     []uint64
	strs       []string
	runePacked bool
}

// Len returns the gram count |q(s)| (distinct under set semantics).
func (k Key) Len() int {
	if k.strs != nil {
		return len(k.strs)
	}
	return len(k.packed)
}

// AppendGram appends the i-th gram's bytes to buf and returns it, in
// the Key's canonical order, without allocating for packed grams when
// buf has at least runeGramBufLen spare capacity.
func (k Key) AppendGram(buf []byte, i int) []byte {
	if k.strs != nil {
		return append(buf, k.strs[i]...)
	}
	if k.runePacked {
		return unpackRunes(buf, k.packed[i])
	}
	var b [maxPacked + 1]byte
	return append(buf, unpack(&b, k.packed[i])...)
}

// Scratch holds the reusable buffers of the decomposition fast path.
// It is an arena: decompositions append and the resulting Keys borrow
// the arena until Reset. A Scratch serves one goroutine at a time.
// The zero value is ready to use.
type Scratch struct {
	buf    []byte   // padded, folded bytes of the key being decomposed
	runes  []rune   // fallback: padded runes
	win    []uint64 // raw packed windows before dedup
	packed []uint64 // arena of packed grams backing Keys
	strs   []string // arena of fallback gram strings backing Keys
	seen   map[string]struct{}
}

// Reset forgets every decomposition made since the previous Reset,
// keeping the allocated capacity. Keys borrowed from this Scratch are
// invalidated.
func (sc *Scratch) Reset() {
	sc.packed = sc.packed[:0]
	sc.strs = sc.strs[:0]
}

// Decompose is the allocation-free counterpart of Grams: it decomposes
// s into a scratch-backed Key under the extractor's configuration.
// ASCII keys (with q small enough to byte-pack) and non-ASCII keys
// whose runes all sit in the Basic Multilingual Plane (with q small
// enough to rune-pack) never materialise gram strings at all; only
// astral-plane or oversized-gram keys fall back to the string path.
// The returned Key borrows sc and is valid until sc.Reset.
func (e *Extractor) Decompose(sc *Scratch, s string) Key {
	if len(s) == 0 {
		return Key{}
	}
	if isASCII(s) {
		if e.q <= maxPacked {
			return e.decomposeASCII(sc, s)
		}
	} else if e.q <= maxPackedRunes {
		if k, ok := e.decomposeRunes(sc, s); ok {
			return k
		}
	}
	return e.decomposeSlow(sc, s)
}

func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= utf8.RuneSelf {
			return false
		}
	}
	return true
}

func (e *Extractor) decomposeASCII(sc *Scratch, s string) Key {
	buf := sc.buf[:0]
	if e.padded {
		for i := 0; i < e.q-1; i++ {
			buf = append(buf, PadLeft)
		}
	}
	if e.fold {
		for i := 0; i < len(s); i++ {
			c := s[i]
			if 'a' <= c && c <= 'z' {
				c -= 'a' - 'A'
			}
			buf = append(buf, c)
		}
	} else {
		buf = append(buf, s...)
	}
	if e.padded {
		for i := 0; i < e.q-1; i++ {
			buf = append(buf, PadRight)
		}
	}
	sc.buf = buf

	win := sc.win[:0]
	if len(buf) < e.q {
		// Unpadded short string: one gram holding the whole value.
		win = append(win, pack(buf))
	} else {
		for i := 0; i+e.q <= len(buf); i++ {
			win = append(win, pack(buf[i:i+e.q]))
		}
	}
	sc.win = win

	start := len(sc.packed)
	if e.multiset {
		sc.packed = append(sc.packed, win...)
		return Key{packed: sc.packed[start:]}
	}
	// Set semantics: sort and deduplicate. Numeric order of packed
	// values is the canonical lexicographic gram order.
	slices.Sort(win)
	for i, p := range win {
		if i > 0 && p == win[i-1] {
			continue
		}
		sc.packed = append(sc.packed, p)
	}
	return Key{packed: sc.packed[start:]}
}

// decomposeRunes is the packed fast path for non-ASCII keys: it folds
// and pads rune by rune, packs each q-rune window with packRunes, and
// sorts/dedups numerically exactly like decomposeASCII. It reports
// ok=false — leaving the caller to fall back to the string path —
// when any rune lies outside the BMP, where the 21-bit field would
// overflow. Invalid UTF-8 decodes to U+FFFD here just as it does in
// Grams ([]rune conversion), so the two paths agree on mangled input.
func (e *Extractor) decomposeRunes(sc *Scratch, s string) (Key, bool) {
	runes := sc.runes[:0]
	if e.padded {
		for i := 0; i < e.q-1; i++ {
			runes = append(runes, PadLeft)
		}
	}
	for _, r := range s {
		if r > maxBMP {
			sc.runes = runes
			return Key{}, false
		}
		if e.fold {
			// Rune-wise unicode.ToUpper is exactly what foldUpper's
			// strings.ToUpper applies, without the allocation; simple
			// upper-casing never maps a BMP rune out of the BMP.
			r = unicode.ToUpper(r)
		}
		runes = append(runes, r)
	}
	if e.padded {
		for i := 0; i < e.q-1; i++ {
			runes = append(runes, PadRight)
		}
	}
	sc.runes = runes

	win := sc.win[:0]
	if len(runes) < e.q {
		// Unpadded short string: one gram holding the whole value
		// (len < q <= maxPackedRunes, so it always packs).
		win = append(win, packRunes(runes))
	} else {
		for i := 0; i+e.q <= len(runes); i++ {
			win = append(win, packRunes(runes[i:i+e.q]))
		}
	}
	sc.win = win

	start := len(sc.packed)
	if e.multiset {
		sc.packed = append(sc.packed, win...)
		return Key{packed: sc.packed[start:], runePacked: true}, true
	}
	// Set semantics: sort and deduplicate. Numeric order of rune-packed
	// values is the canonical lexicographic gram order (see packRunes).
	slices.Sort(win)
	for i, p := range win {
		if i > 0 && p == win[i-1] {
			continue
		}
		sc.packed = append(sc.packed, p)
	}
	return Key{packed: sc.packed[start:], runePacked: true}, true
}

// decomposeSlow handles astral-plane keys and gram widths too large to
// pack. Gram strings are materialised (one allocation each), but dedup
// still reuses the scratch map instead of allocating one per call.
func (e *Extractor) decomposeSlow(sc *Scratch, s string) Key {
	if e.fold {
		s = foldUpper(s)
	}
	runes := sc.runes[:0]
	if e.padded {
		for i := 0; i < e.q-1; i++ {
			runes = append(runes, PadLeft)
		}
	}
	for _, r := range s {
		runes = append(runes, r)
	}
	if e.padded {
		for i := 0; i < e.q-1; i++ {
			runes = append(runes, PadRight)
		}
	}
	sc.runes = runes

	start := len(sc.strs)
	if len(runes) < e.q {
		sc.strs = append(sc.strs, string(runes))
		return Key{strs: sc.strs[start:]}
	}
	if e.multiset {
		for i := 0; i+e.q <= len(runes); i++ {
			sc.strs = append(sc.strs, string(runes[i:i+e.q]))
		}
		return Key{strs: sc.strs[start:]}
	}
	if sc.seen == nil {
		sc.seen = make(map[string]struct{})
	} else {
		clear(sc.seen)
	}
	for i := 0; i+e.q <= len(runes); i++ {
		g := string(runes[i : i+e.q])
		if _, dup := sc.seen[g]; dup {
			continue
		}
		sc.seen[g] = struct{}{}
		sc.strs = append(sc.strs, g)
	}
	out := sc.strs[start:]
	slices.Sort(out) // canonical order, as on the packed path
	return Key{strs: out}
}

// Dict interns grams into dense uint32 ids: the dictionary encoding
// shared by a q-gram index and its probes. Ids are assigned in intern
// order, are stable forever (a Clone never renumbers), and stay below
// Len. A Dict is NOT safe for concurrent mutation; the join engines
// treat it as part of the index it belongs to — writers intern under
// the index's write discipline and publish immutable clones to readers
// (the RCU copy-on-write path), while probes use the read-only lookups.
type Dict struct {
	ids map[string]uint32
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]uint32)}
}

// Len returns the number of interned grams; every assigned id is below
// it.
func (d *Dict) Len() int { return len(d.ids) }

// Clone returns a copy sharing no mutable state with d. Interning into
// the clone never disturbs readers of the original, and existing ids
// are preserved — the copy-on-write step of an RCU snapshot build.
func (d *Dict) Clone() *Dict {
	return &Dict{ids: maps.Clone(d.ids)}
}

// IDOf returns the id of a gram given as a string, for diagnostics and
// frequency lookups outside the hot path.
func (d *Dict) IDOf(gram string) (uint32, bool) {
	id, ok := d.ids[gram]
	return id, ok
}

// Grams returns the interned grams in id order (Grams()[id] is the gram
// assigned id): the stable serialization of the dictionary. The slice
// is freshly allocated and owned by the caller.
func (d *Dict) Grams() []string {
	out := make([]string, len(d.ids))
	for g, id := range d.ids {
		out[id] = g
	}
	return out
}

// DictFromGrams reconstructs a dictionary from a Grams() enumeration,
// assigning each gram its position as id — the deserialization inverse
// of Grams. Duplicate grams would silently renumber ids, so they are
// rejected with a descriptive error (a snapshot decoder's corruption
// guard).
func DictFromGrams(grams []string) (*Dict, error) {
	d := &Dict{ids: make(map[string]uint32, len(grams))}
	for i, g := range grams {
		if _, dup := d.ids[g]; dup {
			return nil, fmt.Errorf("qgram: duplicate gram %q at id %d in dictionary enumeration", g, i)
		}
		d.ids[g] = uint32(i)
	}
	return d, nil
}

// AppendIDs maps k's grams to ids, appending one id per gram to dst in
// the Key's order. Unknown grams append NoID: a read-only lookup never
// grows the dictionary, so it is safe on shared immutable dicts and
// allocates nothing.
func (d *Dict) AppendIDs(dst []uint32, k Key) []uint32 {
	if k.strs != nil {
		for _, g := range k.strs {
			id, ok := d.ids[g]
			if !ok {
				id = NoID
			}
			dst = append(dst, id)
		}
		return dst
	}
	if k.runePacked {
		var b [runeGramBufLen]byte
		for _, p := range k.packed {
			id, ok := d.ids[string(unpackRunes(b[:0], p))]
			if !ok {
				id = NoID
			}
			dst = append(dst, id)
		}
		return dst
	}
	var b [maxPacked + 1]byte
	for _, p := range k.packed {
		id, ok := d.ids[string(unpack(&b, p))]
		if !ok {
			id = NoID
		}
		dst = append(dst, id)
	}
	return dst
}

// Intern maps k's grams to ids like AppendIDs but assigns the next
// dense id to each gram not yet present. Writer-side only.
func (d *Dict) Intern(dst []uint32, k Key) []uint32 {
	if k.strs != nil {
		for _, g := range k.strs {
			dst = append(dst, d.internString(g))
		}
		return dst
	}
	if k.runePacked {
		var b [runeGramBufLen]byte
		for _, p := range k.packed {
			bs := unpackRunes(b[:0], p)
			id, ok := d.ids[string(bs)]
			if !ok {
				id = uint32(len(d.ids))
				d.ids[string(bs)] = id
			}
			dst = append(dst, id)
		}
		return dst
	}
	var b [maxPacked + 1]byte
	for _, p := range k.packed {
		bs := unpack(&b, p)
		id, ok := d.ids[string(bs)]
		if !ok {
			id = uint32(len(d.ids))
			d.ids[string(bs)] = id
		}
		dst = append(dst, id)
	}
	return dst
}

// InternStrings is Intern for a pre-materialised gram slice (the
// compatibility path of QGramIndex.InsertGrams).
func (d *Dict) InternStrings(dst []uint32, grams []string) []uint32 {
	for _, g := range grams {
		dst = append(dst, d.internString(g))
	}
	return dst
}

func (d *Dict) internString(g string) uint32 {
	id, ok := d.ids[g]
	if !ok {
		id = uint32(len(d.ids))
		d.ids[g] = id
	}
	return id
}

// IntersectSortedIDs returns |a ∩ b| for two ascending, deduplicated
// id slices by a sorted merge — the id-based counterpart of
// Intersection, with no map and no allocation.
func IntersectSortedIDs(a, b []uint32) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}
