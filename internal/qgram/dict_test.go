package qgram

import (
	"math/rand"
	"reflect"
	"slices"
	"strings"
	"testing"
	"testing/quick"
)

// decomposedGrams materialises a Key's grams as strings, for comparison
// against the legacy Grams path.
func decomposedGrams(k Key) []string {
	out := make([]string, 0, k.Len())
	for i := 0; i < k.Len(); i++ {
		out = append(out, string(k.AppendGram(nil, i)))
	}
	return out
}

// extractorVariants covers both decomposition paths (packed ASCII for
// q ≤ 7, string fallback for q = 8) across the option space.
func extractorVariants() map[string]*Extractor {
	return map[string]*Extractor{
		"q3":            New(3),
		"q1":            New(1),
		"q7":            New(7),
		"q8-slow":       New(8),
		"q3-unpadded":   New(3, WithoutPadding()),
		"q3-fold":       New(3, WithCaseFolding()),
		"q3-multiset":   New(3, AsMultiset()),
		"q2-fold-unpad": New(2, WithCaseFolding(), WithoutPadding()),
	}
}

// Property: Decompose yields exactly the gram multiset of Grams — the
// distinct set in canonical order for set extractors, the window
// sequence for multiset ones — for ASCII and non-ASCII inputs alike.
func TestDecomposeMatchesGrams(t *testing.T) {
	inputs := []string{
		"", "a", "ab", "ROMA", "rome", "TAA BZ SANTA CRISTINA VALGARDENA",
		"abcabcabc", "aaaa", "x", "##$$", "a#b$c",
		"münchen", "łódź 12", "東京都", "café au lait", "ÅNGSTRÖM",
		strings.Repeat("ab", 40), "Mixed Case Street 7",
	}
	for name, ex := range extractorVariants() {
		for _, s := range inputs {
			var sc Scratch
			got := decomposedGrams(ex.Decompose(&sc, s))
			want := ex.Grams(s)
			if !ex.multiset {
				want = Sorted(want)
				if len(want) == 0 {
					want = nil
				}
			}
			if len(got) == 0 {
				got = nil
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s: Decompose(%q) = %v, want %v", name, s, got, want)
			}
		}
	}
}

func TestDecomposeRandomisedProperty(t *testing.T) {
	alpha := []rune("ab YZ#$éñ目9")
	ex := New(3)
	exFold := New(3, WithCaseFolding())
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rs := make([]rune, int(n)%24)
		for i := range rs {
			rs[i] = alpha[rng.Intn(len(alpha))]
		}
		s := string(rs)
		var sc Scratch
		for _, e := range []*Extractor{ex, exFold} {
			got := decomposedGrams(e.Decompose(&sc, s))
			if len(got) == 0 {
				got = nil
			}
			want := Sorted(e.Grams(s))
			if len(want) == 0 {
				want = nil
			}
			if !reflect.DeepEqual(got, want) {
				return false
			}
			sc.Reset()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// The scratch is an arena: earlier Keys stay valid while later ones are
// decomposed, until Reset.
func TestScratchArenaKeysStayValid(t *testing.T) {
	ex := New(3)
	var sc Scratch
	keys := []string{"monte rosa", "monte bianco", "gran paradiso", "cervino"}
	ks := make([]Key, len(keys))
	for i, s := range keys {
		ks[i] = ex.Decompose(&sc, s)
	}
	for i, s := range keys {
		got := decomposedGrams(ks[i])
		want := Sorted(ex.Grams(s))
		if !reflect.DeepEqual(got, want) {
			t.Errorf("arena key %d (%q) corrupted: %v != %v", i, s, got, want)
		}
	}
}

func TestCountMatchesGrams(t *testing.T) {
	inputs := []string{
		"", "a", "ab", "abc", "abcd", "aaaa", "aa", "#", "$", "a#", "ab$",
		"münchen", "ü", "目目目目", "SHORT", "x y", "repeatrepeat",
	}
	for name, ex := range extractorVariants() {
		for _, s := range inputs {
			if got, want := ex.Count(s), len(ex.Grams(s)); got != want {
				t.Errorf("%s: Count(%q) = %d, want %d", name, s, got, want)
			}
		}
	}
}

// Satellite: set-mode Count on short pad-free strings is arithmetic
// (l+q-1 — no padding collisions are possible), and the case-folding
// fast path does not allocate on already-upper ASCII input.
func TestCountShortStringArithmetic(t *testing.T) {
	ex := New(5)
	// len < q, no pad runes: all padded windows are provably distinct.
	for _, s := range []string{"ab", "XY Z", "a", "abcd"} {
		l := len([]rune(s))
		if got := ex.Count(s); got != l+5-1 {
			t.Errorf("Count(%q) = %d, want %d", s, got, l+4)
		}
	}
	// A pad rune in the data disables the shortcut but not correctness.
	if got, want := ex.Count("a#b"), len(ex.Grams("a#b")); got != want {
		t.Errorf("Count(a#b) = %d, want %d", got, want)
	}
}

func TestFoldUpperNoAllocWhenAlreadyUpper(t *testing.T) {
	s := "TAA BZ SANTA CRISTINA 42"
	if got := foldUpper(s); got != s {
		t.Fatalf("foldUpper(%q) = %q", s, got)
	}
	if !raceEnabled {
		if avg := testing.AllocsPerRun(100, func() {
			_ = foldUpper(s)
		}); avg != 0 {
			t.Errorf("foldUpper allocated %.1f times on upper-case ASCII input", avg)
		}
	}
	if got, want := foldUpper("münchen 12"), strings.ToUpper("münchen 12"); got != want {
		t.Errorf("foldUpper(münchen 12) = %q, want %q", got, want)
	}
	if got := foldUpper("lower"); got != "LOWER" {
		t.Errorf("foldUpper(lower) = %q", got)
	}
}

func TestDictInternLookupRoundTrip(t *testing.T) {
	ex := New(3)
	d := NewDict()
	var sc Scratch
	k := ex.Decompose(&sc, "monte rosa")
	ids := d.Intern(nil, k)
	if len(ids) != k.Len() {
		t.Fatalf("Intern returned %d ids for %d grams", len(ids), k.Len())
	}
	if d.Len() != k.Len() {
		t.Fatalf("Dict.Len() = %d, want %d (all grams distinct)", d.Len(), k.Len())
	}
	// Read-only lookup agrees with interning, id for id.
	if got := d.AppendIDs(nil, k); !reflect.DeepEqual(got, ids) {
		t.Errorf("AppendIDs = %v, want %v", got, ids)
	}
	// The string-keyed lookup agrees with the packed path.
	for i, g := range decomposedGrams(k) {
		id, ok := d.IDOf(g)
		if !ok || id != ids[i] {
			t.Errorf("IDOf(%q) = %d,%v, want %d", g, id, ok, ids[i])
		}
	}
	// Ids are dense: every id below Len.
	for _, id := range ids {
		if int(id) >= d.Len() {
			t.Errorf("id %d out of dense range %d", id, d.Len())
		}
	}
}

// Unknown grams short-circuit to NoID on the read-only path and never
// grow the dictionary or allocate.
func TestDictUnknownGramNoIDNoAlloc(t *testing.T) {
	ex := New(3)
	d := NewDict()
	var sc Scratch
	d.Intern(nil, ex.Decompose(&sc, "monte rosa"))
	n := d.Len()

	sc.Reset()
	unknown := ex.Decompose(&sc, "zzzyyyxxx")
	ids := d.AppendIDs(nil, unknown)
	for _, id := range ids {
		if id != NoID {
			t.Errorf("unknown gram mapped to id %d, want NoID", id)
		}
	}
	if d.Len() != n {
		t.Fatalf("read-only lookup grew the dict: %d -> %d", n, d.Len())
	}
	if !raceEnabled {
		buf := make([]uint32, 0, 64)
		if avg := testing.AllocsPerRun(100, func() {
			buf = d.AppendIDs(buf[:0], unknown)
		}); avg != 0 {
			t.Errorf("AppendIDs on unknown grams allocated %.1f times", avg)
		}
	}
}

// Clone is copy-on-write: interning into the clone never renumbers or
// leaks into the original — the RCU snapshot contract.
func TestDictCloneIsolation(t *testing.T) {
	ex := New(3)
	d := NewDict()
	var sc Scratch
	base := ex.Decompose(&sc, "monte rosa")
	baseIDs := d.Intern(nil, base)

	c := d.Clone()
	fresh := ex.Decompose(&sc, "lago di como")
	freshIDs := c.Intern(nil, fresh)

	// Existing ids preserved in the clone.
	if got := c.AppendIDs(nil, base); !reflect.DeepEqual(got, baseIDs) {
		t.Errorf("clone renumbered: %v != %v", got, baseIDs)
	}
	// New ids are dense extensions.
	for _, id := range freshIDs {
		if int(id) >= c.Len() {
			t.Errorf("clone id %d out of range %d", id, c.Len())
		}
	}
	// The original is untouched: fresh grams unknown, length unchanged.
	if d.Len() >= c.Len() {
		t.Fatalf("original grew with the clone: %d vs %d", d.Len(), c.Len())
	}
	for i, id := range d.AppendIDs(nil, fresh) {
		known := slices.Contains(baseIDs, id)
		if id != NoID && !known {
			t.Errorf("original knows clone-interned gram %d (id %d)", i, id)
		}
	}
}

func TestIntersectSortedIDsMatchesIntersection(t *testing.T) {
	ex := New(3)
	f := func(a, b string) bool {
		d := NewDict()
		var sc Scratch
		sa := d.Intern(nil, ex.Decompose(&sc, a))
		sb := d.Intern(nil, ex.Decompose(&sc, b))
		slices.Sort(sa)
		slices.Sort(sb)
		return IntersectSortedIDs(sa, sb) == Intersection(ex.Grams(a), ex.Grams(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// FuzzGramDict round-trips arbitrary inputs through decomposition,
// interning, read-only lookup and cloning, asserting the dictionary
// invariants: dense stable ids, packed/string path agreement, and
// clone isolation.
func FuzzGramDict(f *testing.F) {
	f.Add("monte rosa", "monte bianco")
	f.Add("", "x")
	f.Add("münchen", "MÜNCHEN 12")
	f.Add("a#b$", strings.Repeat("ab", 50))
	f.Add("東京", "京都")
	f.Fuzz(func(t *testing.T, a, b string) {
		ex := New(3)
		d := NewDict()
		var sc Scratch
		ka := ex.Decompose(&sc, a)
		idsA := d.Intern(nil, ka)
		if len(idsA) != ka.Len() || d.Len() != ka.Len() {
			t.Fatalf("intern %q: %d ids, dict %d, grams %d", a, len(idsA), d.Len(), ka.Len())
		}
		// Round-trip: the string form of every gram resolves to the id
		// the packed form was interned under.
		for i, g := range decomposedGrams(ka) {
			if id, ok := d.IDOf(g); !ok || id != idsA[i] {
				t.Fatalf("IDOf(%q) = %v,%v want %d", g, id, ok, idsA[i])
			}
		}
		kb := ex.Decompose(&sc, b)
		lookB := d.AppendIDs(nil, kb)
		c := d.Clone()
		idsB := c.Intern(nil, kb)
		for i := range idsB {
			if lookB[i] == NoID {
				// Unknown to the original: the clone must have assigned a
				// fresh dense id, and the original must still not know it.
				if int(idsB[i]) < d.Len() {
					t.Fatalf("fresh gram %d of %q got non-fresh id %d", i, b, idsB[i])
				}
			} else if idsB[i] != lookB[i] {
				t.Fatalf("clone renumbered gram %d of %q: %d -> %d", i, b, lookB[i], idsB[i])
			}
		}
		if again := d.AppendIDs(nil, ka); !reflect.DeepEqual(again, idsA) {
			t.Fatalf("original ids changed after clone intern: %v != %v", again, idsA)
		}
		if c.Len() < d.Len() {
			t.Fatalf("clone shrank: %d < %d", c.Len(), d.Len())
		}
	})
}
