package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"adaptivelink"
)

func getDigest(t *testing.T, base, name string) adaptivelink.IndexDigest {
	t.Helper()
	code, body := doJSON(t, "GET", base+"/v1/indexes/"+name+"/digest", nil)
	if code != http.StatusOK {
		t.Fatalf("digest: %d %s", code, body)
	}
	var d adaptivelink.IndexDigest
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatalf("digest body: %v", err)
	}
	return d
}

func postResync(t *testing.T, base, name string, blob []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/indexes/"+name+"/resync", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw
}

// TestHTTPDigestExportResync drives the node-side anti-entropy surface
// end to end: a diverged replica pulls the reference export, resyncs,
// and converges to the reference digest; a blank node bootstraps a
// missing index from the same stream.
func TestHTTPDigestExportResync(t *testing.T) {
	_, ref := newTestServer(t)
	createAtlas(t, ref.URL)

	d0 := getDigest(t, ref.URL, "atlas")
	if d0.Tuples != 3 || d0.Combined == "" || len(d0.Shards) == 0 {
		t.Fatalf("digest shape: %+v", d0)
	}
	// Digest is stable across reads, and changes with content.
	if d := getDigest(t, ref.URL, "atlas"); d.Combined != d0.Combined {
		t.Fatalf("digest unstable: %s then %s", d0.Combined, d.Combined)
	}
	code, body := doJSON(t, "POST", ref.URL+"/v1/indexes/atlas/upsert", UpsertRequest{
		Tuples: []TupleDTO{{ID: 9, Key: "passo dello stelvio 48"}},
	})
	if code != http.StatusOK {
		t.Fatalf("upsert: %d %s", code, body)
	}
	d1 := getDigest(t, ref.URL, "atlas")
	if d1.Combined == d0.Combined {
		t.Fatal("digest did not change after an upsert")
	}

	resp, err := http.Get(ref.URL + "/v1/indexes/atlas/export")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("export content type %q", ct)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("export: %d %v", resp.StatusCode, err)
	}

	// A diverged replica (same name, older content) converges via resync.
	_, stale := newTestServer(t)
	createAtlas(t, stale.URL)
	if d := getDigest(t, stale.URL, "atlas"); d.Combined == d1.Combined {
		t.Fatal("stale replica already converged; fixture degenerate")
	}
	code, body = postResync(t, stale.URL, "atlas", blob)
	if code != http.StatusOK {
		t.Fatalf("resync: %d %s", code, body)
	}
	if d := getDigest(t, stale.URL, "atlas"); d.Combined != d1.Combined {
		t.Fatalf("post-resync digest %s, reference %s", d.Combined, d1.Combined)
	}
	// The repaired replica answers probes over the new content.
	code, body = doJSON(t, "POST", stale.URL+"/v1/link", LinkRequestDTO{Index: "atlas", Key: "passo dello stelvio 48"})
	if code != http.StatusOK {
		t.Fatalf("link after resync: %d %s", code, body)
	}
	var lr LinkResponseDTO
	if err := json.Unmarshal(body, &lr); err != nil || len(lr.Results[0].Matches) == 0 {
		t.Fatalf("probe on resynced key found nothing: %s", body)
	}

	// A blank replacement node bootstraps the index from the stream.
	_, blank := newTestServer(t)
	code, body = postResync(t, blank.URL, "atlas", blob)
	if code != http.StatusOK {
		t.Fatalf("bootstrap resync: %d %s", code, body)
	}
	var info IndexInfo
	if err := json.Unmarshal(body, &info); err != nil || info.Size != 4 {
		t.Fatalf("bootstrap info: %s", body)
	}
	if d := getDigest(t, blank.URL, "atlas"); d.Combined != d1.Combined {
		t.Fatalf("bootstrap digest %s, reference %s", d.Combined, d1.Combined)
	}

	// Corrupt bytes are rejected; the replica keeps its state.
	code, body = postResync(t, stale.URL, "atlas", blob[:len(blob)-2])
	if code != http.StatusBadRequest {
		t.Fatalf("corrupt resync = %d %s", code, body)
	}
	if d := getDigest(t, stale.URL, "atlas"); d.Combined != d1.Combined {
		t.Fatal("failed resync changed the replica's content")
	}
	// Unknown index digests are 404.
	if code, _ := doJSON(t, "GET", ref.URL+"/v1/indexes/ghost/digest", nil); code != http.StatusNotFound {
		t.Fatalf("ghost digest = %d", code)
	}
}

// TestHTTPResyncDurable pins that a resynced durable node persists the
// repaired state: reopening the data dir recovers the resynced content.
func TestHTTPResyncDurable(t *testing.T) {
	_, ref := newTestServer(t)
	createAtlas(t, ref.URL)
	want := getDigest(t, ref.URL, "atlas")
	resp, err := http.Get(ref.URL + "/v1/indexes/atlas/export")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	dataDir := t.TempDir()
	s := New(Config{Workers: 2, QueueDepth: 16, DataDir: dataDir})
	ts := httptest.NewServer(NewHandler(s))
	if code, body := postResync(t, ts.URL, "atlas", blob); code != http.StatusOK {
		t.Fatalf("durable bootstrap resync: %d %s", code, body)
	}
	if d := getDigest(t, ts.URL, "atlas"); d.Combined != want.Combined {
		t.Fatalf("durable resync digest %s, want %s", d.Combined, want.Combined)
	}
	ts.Close()
	s.Close()

	s2 := New(Config{Workers: 2, QueueDepth: 16, DataDir: dataDir})
	defer s2.Close()
	names, err := s2.LoadStored()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(names) != "[atlas]" {
		t.Fatalf("reloaded %v, want [atlas]", names)
	}
	ts2 := httptest.NewServer(NewHandler(s2))
	defer ts2.Close()
	if d := getDigest(t, ts2.URL, "atlas"); d.Combined != want.Combined {
		t.Fatalf("reopened digest %s, want %s", d.Combined, want.Combined)
	}
}
