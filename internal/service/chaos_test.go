package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"adaptivelink/internal/cluster"
	"adaptivelink/internal/fault"
)

// The chaos harness: a router over stock nodes with a deterministic
// fault-injecting transport between them. A replica is "killed" by a
// transport rule (every request to it fails), revived by disabling the
// rule — no process management, no timing dependence — and the contract
// under test is the ISSUE's acceptance bar: with a write quorum of 1
// and a replica down, every client request keeps answering 2xx with
// responses byte-identical to a single-process reference; after
// revival the replica converges (hint replay or full resync) until its
// content digest matches its group's.

type chaosFixture struct {
	router *diffStack
	ref    *diffStack // single-process reference fed the same script
	nodes  [][]*httptest.Server
	cl     *cluster.Client
	ft     *fault.Transport
}

func newChaosFixture(t *testing.T, shards int, groupSizes []int, tweak func(*cluster.Config)) *chaosFixture {
	t.Helper()
	f := &chaosFixture{
		nodes: make([][]*httptest.Server, len(groupSizes)),
		ft:    fault.NewTransport(nil),
	}
	groups := make([][]string, len(groupSizes))
	for g, n := range groupSizes {
		for r := 0; r < n; r++ {
			svc := New(Config{})
			t.Cleanup(svc.Close)
			srv := httptest.NewServer(NewHandler(svc))
			t.Cleanup(srv.Close)
			f.nodes[g] = append(f.nodes[g], srv)
			groups[g] = append(groups[g], srv.URL)
		}
	}
	ccfg := cluster.Config{
		Map:          cluster.Map{Shards: shards, Groups: groups},
		WriteQuorum:  1,
		WriteTimeout: 5 * time.Second,
		HTTPClient:   &http.Client{Transport: f.ft},
	}
	if tweak != nil {
		tweak(&ccfg)
	}
	cl, err := cluster.New(ccfg)
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	f.cl = cl
	f.router = startStack(t, "router", Config{Cluster: cl})
	f.ref = startStack(t, "reference", Config{})
	return f
}

// kill makes every request to the node fail at the transport; the
// returned rule's Off revives it.
func (f *chaosFixture) kill(g, r int) *fault.Rule {
	return f.ft.Add(&fault.Rule{
		Node:   strings.TrimPrefix(f.nodes[g][r].URL, "http://"),
		Action: fault.Fail,
	})
}

// both drives the same request through router and reference, requiring
// matching status (and matching bodies when compare is set).
func (f *chaosFixture) both(t *testing.T, method, path, body string, compare bool) (int, string) {
	t.Helper()
	wantCode, wantBody := f.ref.do(t, method, path, body)
	code, got := f.router.do(t, method, path, body)
	if code != wantCode {
		t.Fatalf("%s %s: router %d, reference %d\nrouter body: %s", method, path, code, wantCode, got)
	}
	if compare && got != wantBody {
		t.Fatalf("%s %s diverges from the single-process reference\nrouter:    %s\nreference: %s", method, path, got, wantBody)
	}
	return code, got
}

func (f *chaosFixture) clusterInfo(t *testing.T) ClusterInfo {
	t.Helper()
	code, body := f.router.do(t, "GET", "/v1/cluster", "")
	if code != http.StatusOK {
		t.Fatalf("/v1/cluster: %d %s", code, body)
	}
	var info ClusterInfo
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatal(err)
	}
	return info
}

// nodeDigest reads one node's content digest directly (not through the
// router).
func (f *chaosFixture) nodeDigest(t *testing.T, g, r int, index string) string {
	t.Helper()
	resp, err := http.Get(f.nodes[g][r].URL + "/v1/indexes/" + index + "/digest")
	if err != nil {
		t.Fatalf("digest node %d.%d: %v", g, r, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Sprintf("status:%d", resp.StatusCode)
	}
	var d struct {
		Combined string `json:"combined"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	return d.Combined
}

func chaosKey(i int) string {
	return fmt.Sprintf("borgo santa lucia %s %d", []string{"nord", "sud", "est", "ovest"}[i%4], i)
}

func (f *chaosFixture) upsertBoth(t *testing.T, i int) {
	t.Helper()
	body := fmt.Sprintf(`{"tuples":[{"id":%d,"key":%q,"attrs":["w%d"]}]}`, i, chaosKey(i), i)
	f.both(t, "POST", "/v1/indexes/atlas/upsert", body, true)
}

func (f *chaosFixture) linkBoth(t *testing.T, keys ...string) {
	t.Helper()
	qs := make([]string, len(keys))
	for i, k := range keys {
		qs[i] = fmt.Sprintf("%q", k)
	}
	body := fmt.Sprintf(`{"index":"atlas","keys":[%s],"strategy":"approximate"}`, strings.Join(qs, ","))
	f.both(t, "POST", "/v1/link", body, true)
}

// TestChaosReplicaOutageServesAndHealsViaHints is the headline chaos
// proof: a replica dies under sustained write+probe load, every request
// keeps answering 2xx byte-identical to the single-process reference,
// and after revival the hint drainer replays the missed writes until
// the group's replicas report identical content digests.
func TestChaosReplicaOutageServesAndHealsViaHints(t *testing.T) {
	f := newChaosFixture(t, 4, []int{2, 2}, nil)

	var initial []string
	for i := 0; i < 12; i++ {
		initial = append(initial, fmt.Sprintf(`{"id":%d,"key":%q}`, i, chaosKey(i)))
	}
	f.both(t, "POST", "/v1/indexes",
		fmt.Sprintf(`{"name":"atlas","tuples":[%s]}`, strings.Join(initial, ",")), false)

	// Steady state: both replicas of group 0 agree.
	if a, b := f.nodeDigest(t, 0, 0, "atlas"), f.nodeDigest(t, 0, 1, "atlas"); a != b {
		t.Fatalf("pre-fault divergence: %s vs %s", a, b)
	}

	rule := f.kill(0, 0)

	// Sustained load with the replica dark: writes meet quorum on the
	// survivor, probes fail over — all 2xx, all byte-identical.
	next := 12
	for round := 0; round < 6; round++ {
		f.upsertBoth(t, next)
		next++
		f.linkBoth(t, chaosKey(round), chaosKey(next-1), "borgo santa luciaa nord 1")
	}

	// The router knows the replica is behind.
	info := f.clusterInfo(t)
	lagging := info.Groups[0].Replicas[0]
	if lagging.Healthy {
		t.Fatalf("dead replica reported healthy: %+v", lagging)
	}
	if lagging.HintsPending == 0 {
		t.Fatalf("no hints pending for the dead replica: %+v", lagging)
	}

	// Revive: the drainer replays the queued writes in order.
	rule.Off()
	deadline := time.Now().Add(10 * time.Second)
	for {
		info = f.clusterInfo(t)
		r := info.Groups[0].Replicas[0]
		if r.HintsPending == 0 && len(r.NeedsResync) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("hints never drained: %+v", r)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Digest convergence across the group — the revived replica holds
	// byte-identical content to the survivor.
	waitConverged := func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			a, b := f.nodeDigest(t, 0, 0, "atlas"), f.nodeDigest(t, 0, 1, "atlas")
			if a == b && !strings.HasPrefix(a, "status:") {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("group 0 digests never converged: %s vs %s", a, b)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	waitConverged()

	// And the healed cluster still answers byte-identical to the
	// reference, including for the keys written during the outage.
	f.linkBoth(t, chaosKey(12), chaosKey(15), chaosKey(2))
	// One anti-entropy pass confirms convergence (and repairs nothing).
	f.cl.Repair(context.Background())
	info = f.clusterInfo(t)
	d0 := info.Groups[0].Replicas[0].Digests["atlas"]
	d1 := info.Groups[0].Replicas[1].Digests["atlas"]
	if d0 == "" || d0 != d1 {
		t.Fatalf("post-repair digest report: %q vs %q", d0, d1)
	}
}

// TestChaosHintOverflowFullResync drives a replica past the hint
// horizon: the overflow is surfaced in /v1/cluster as needs_resync (not
// silently dropped), and an anti-entropy pass repairs the replica with
// a full snapshot stream until digests converge.
func TestChaosHintOverflowFullResync(t *testing.T) {
	f := newChaosFixture(t, 4, []int{2, 2}, func(c *cluster.Config) {
		c.HintCapacity = 3
	})

	var initial []string
	for i := 0; i < 8; i++ {
		initial = append(initial, fmt.Sprintf(`{"id":%d,"key":%q}`, i, chaosKey(i)))
	}
	f.both(t, "POST", "/v1/indexes",
		fmt.Sprintf(`{"name":"atlas","tuples":[%s]}`, strings.Join(initial, ",")), false)

	rule := f.kill(0, 0)

	// Enough writes to overflow a 3-hint queue for the dead replica.
	next := 8
	for i := 0; i < 8; i++ {
		f.upsertBoth(t, next)
		next++
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		info := f.clusterInfo(t)
		r := info.Groups[0].Replicas[0]
		if len(r.NeedsResync) == 1 && r.NeedsResync[0] == "atlas" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("overflow never surfaced as needs_resync: %+v", r)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Revive and run anti-entropy: a full resync repairs the replica.
	rule.Off()
	f.cl.Repair(context.Background())
	info := f.clusterInfo(t)
	r := info.Groups[0].Replicas[0]
	if len(r.NeedsResync) != 0 {
		t.Fatalf("needs_resync survived repair: %+v", r)
	}
	if a, b := f.nodeDigest(t, 0, 0, "atlas"), f.nodeDigest(t, 0, 1, "atlas"); a != b {
		t.Fatalf("post-resync divergence: %s vs %s", a, b)
	}

	// The repaired cluster answers byte-identical to the reference.
	f.linkBoth(t, chaosKey(9), chaosKey(13), chaosKey(3))
}

// TestChaosBlackHolePartition covers the uglier failure mode: a replica
// that swallows packets instead of refusing them. Writes still meet
// quorum within the write timeout and probes fail over within the
// request budget.
func TestChaosBlackHolePartition(t *testing.T) {
	f := newChaosFixture(t, 2, []int{2}, func(c *cluster.Config) {
		c.WriteTimeout = 500 * time.Millisecond
	})
	var initial []string
	for i := 0; i < 6; i++ {
		initial = append(initial, fmt.Sprintf(`{"id":%d,"key":%q}`, i, chaosKey(i)))
	}
	f.both(t, "POST", "/v1/indexes",
		fmt.Sprintf(`{"name":"atlas","tuples":[%s]}`, strings.Join(initial, ",")), false)

	rule := f.ft.Add(&fault.Rule{
		Node:   strings.TrimPrefix(f.nodes[0][0].URL, "http://"),
		Action: fault.BlackHole,
	})

	// A write against the partitioned replica blocks until the write
	// timeout, then succeeds on quorum; later writes defer to hints.
	f.upsertBoth(t, 6)
	f.upsertBoth(t, 7)
	code, body := f.router.do(t, "POST", "/v1/link",
		fmt.Sprintf(`{"index":"atlas","keys":[%q],"strategy":"approximate","timeout_ms":2000}`, chaosKey(6)))
	if code != http.StatusOK {
		t.Fatalf("link under partition: %d %s", code, body)
	}

	rule.Off()
	deadline := time.Now().Add(10 * time.Second)
	for {
		info := f.clusterInfo(t)
		r := info.Groups[0].Replicas[0]
		if r.HintsPending == 0 && len(r.NeedsResync) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("partition hints never drained: %+v", r)
		}
		time.Sleep(20 * time.Millisecond)
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		a, b := f.nodeDigest(t, 0, 0, "atlas"), f.nodeDigest(t, 0, 1, "atlas")
		if a == b {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("post-partition digests never converged: %s vs %s", a, b)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
