package service

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"adaptivelink/internal/cluster"
)

// The cluster differential harness: the router's contract is that a
// routed /v1/link answer is BYTE-IDENTICAL to a single process serving
// the same create/upsert stream — matches, session statistics and error
// envelopes alike. Every cluster shape (1, 2 and 3 node groups, with
// and without replicas) is driven with the same deterministic request
// script as a single-process reference, and every link and upsert
// response body is compared byte for byte.

// diffStack is one serving stack (a single process, or a router with
// its node fleet behind it) reachable over HTTP.
type diffStack struct {
	name string
	srv  *httptest.Server
}

func startStack(t *testing.T, name string, cfg Config) *diffStack {
	t.Helper()
	svc := New(cfg)
	t.Cleanup(svc.Close)
	srv := httptest.NewServer(NewHandler(svc))
	t.Cleanup(srv.Close)
	return &diffStack{name: name, srv: srv}
}

// startCluster boots one stock node daemon per replica, wires the map,
// and fronts them with a router stack.
func startCluster(t *testing.T, name string, shards int, groupSizes []int) *diffStack {
	t.Helper()
	groups := make([][]string, len(groupSizes))
	for g, n := range groupSizes {
		for r := 0; r < n; r++ {
			node := startStack(t, fmt.Sprintf("%s-node%d.%d", name, g, r), Config{})
			groups[g] = append(groups[g], node.srv.URL)
		}
	}
	cl, err := cluster.New(cluster.Config{Map: cluster.Map{Shards: shards, Groups: groups}})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	return startStack(t, name, Config{Cluster: cl})
}

func (d *diffStack) do(t *testing.T, method, path, body string) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, d.srv.URL+path, rd)
	if err != nil {
		t.Fatalf("%s: %v", d.name, err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s: %s %s: %v", d.name, method, path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("%s: reading %s %s: %v", d.name, method, path, err)
	}
	return resp.StatusCode, string(raw)
}

// diffStep is one scripted request; compare selects whether the
// response body must be byte-identical across stacks (link and upsert
// responses are; create responses carry timestamps and are not).
type diffStep struct {
	method, path, body string
	compare            bool
}

// diffScript builds the deterministic request stream: a create, then
// interleaved upserts (inserts and updates) and link batches under
// every strategy, with misses, typos and duplicate keys mixed in, and a
// tail of malformed requests whose error envelopes must match too.
func diffScript(seed int64) []diffStep {
	rng := rand.New(rand.NewSource(seed))
	streets := []string{"via monte bianco", "corso lago maggiore", "piazza valle verde",
		"viale porta nuova", "strada colle alto", "largo ponte vecchio"}
	sides := []string{"nord", "sud", "est", "ovest"}
	key := func(i int) string {
		return fmt.Sprintf("%s %s %d", streets[i%len(streets)], sides[(i/2)%len(sides)], 1+i%40)
	}
	typo := func(s string) string {
		b := []byte(s)
		i := 1 + rng.Intn(len(b)-2)
		b[i], b[i-1] = b[i-1], b[i]
		return string(b)
	}
	tup := func(i int, k string) string {
		return fmt.Sprintf(`{"id":%d,"key":%q,"attrs":["city%d"]}`, i, k, i%7)
	}

	var initial []string
	for i := 0; i < 24; i++ {
		initial = append(initial, tup(i, key(i)))
	}
	steps := []diffStep{{
		method: "POST", path: "/v1/indexes",
		body: fmt.Sprintf(`{"name":"atlas","tuples":[%s]}`, strings.Join(initial, ",")),
	}}

	next := 24
	for round := 0; round < 5; round++ {
		// Maintenance: a few brand-new keys plus updates of resident ones
		// (same key, new payload), shuffled into one batch.
		var ups []string
		for j := 0; j < 4; j++ {
			ups = append(ups, tup(1000+next, key(next)))
			next++
		}
		for j := 0; j < 3; j++ {
			i := rng.Intn(next - 4)
			ups = append(ups, fmt.Sprintf(`{"id":%d,"key":%q,"attrs":["round%d"]}`, 2000+i, key(i), round))
		}
		steps = append(steps, diffStep{
			method: "POST", path: "/v1/indexes/atlas/upsert",
			body:    fmt.Sprintf(`{"tuples":[%s]}`, strings.Join(ups, ",")),
			compare: true,
		})

		// Probe batches: exact (hits, misses, duplicates), approximate
		// (typos that must union across signature groups), adaptive (the
		// control loop's trajectory must replay identically).
		var exactKeys, approxKeys, adaptKeys []string
		for j := 0; j < 8; j++ {
			k := key(rng.Intn(next + 6)) // some keys beyond the resident set: misses
			exactKeys = append(exactKeys, fmt.Sprintf("%q", k))
			if j%2 == 0 {
				exactKeys = append(exactKeys, fmt.Sprintf("%q", k)) // duplicate in-batch
			}
			approxKeys = append(approxKeys, fmt.Sprintf("%q", typo(key(rng.Intn(next)))))
			adaptKeys = append(adaptKeys, fmt.Sprintf("%q", typo(key(rng.Intn(next+3)))))
		}
		steps = append(steps,
			diffStep{method: "POST", path: "/v1/link",
				body:    fmt.Sprintf(`{"index":"atlas","keys":[%s],"strategy":"exact"}`, strings.Join(exactKeys, ",")),
				compare: true},
			diffStep{method: "POST", path: "/v1/link",
				body:    fmt.Sprintf(`{"index":"atlas","keys":[%s],"strategy":"approximate"}`, strings.Join(approxKeys, ",")),
				compare: true},
			diffStep{method: "POST", path: "/v1/link",
				body:    fmt.Sprintf(`{"index":"atlas","keys":[%s],"futility_k":2}`, strings.Join(adaptKeys, ",")),
				compare: true},
		)
	}

	// Error envelopes are part of the byte-identity contract.
	steps = append(steps,
		diffStep{method: "POST", path: "/v1/link",
			body: `{"index":"ghost","keys":["via monte bianco nord 1"]}`, compare: true},
		diffStep{method: "POST", path: "/v1/link",
			body: `{"index":"atlas","keys":[]}`, compare: true},
		diffStep{method: "POST", path: "/v1/link",
			body: `{"index":"atlas","keys":["x"],"strategy":"psychic"}`, compare: true},
		diffStep{method: "POST", path: "/v1/link",
			body: `{"index":"atlas","key":"a","keys":["b"]}`, compare: true},
	)
	return steps
}

// TestClusterDifferential drives 1-, 2- and 3-group clusters (the
// 2-group shape with two replicas per group) and a single-process
// reference with the same script and demands byte-identical compared
// responses.
func TestClusterDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster differential is not short")
	}
	const shards = 6
	ref := startStack(t, "reference", Config{})
	clusters := []*diffStack{
		startCluster(t, "cluster-1", shards, []int{1}),
		startCluster(t, "cluster-2r", shards, []int{2, 2}),
		startCluster(t, "cluster-3", shards, []int{1, 1, 1}),
	}

	for si, step := range diffScript(17) {
		wantCode, wantBody := ref.do(t, step.method, step.path, step.body)
		for _, c := range clusters {
			code, body := c.do(t, step.method, step.path, step.body)
			if code != wantCode {
				t.Fatalf("step %d (%s %s) on %s: status %d, reference %d\nbody: %s",
					si, step.method, step.path, c.name, code, wantCode, body)
			}
			if step.compare && body != wantBody {
				t.Fatalf("step %d (%s %s) on %s diverges from the single-process reference\ncluster:   %s\nreference: %s",
					si, step.method, step.path, c.name, body, wantBody)
			}
		}
	}
}

// TestClusterDifferentialNormalization puts the normalization profile
// on the routed index: the router owns the pipeline (nodes index
// verbatim), and the stored — normalised — keys in the answers must
// still match the single process byte for byte.
func TestClusterDifferentialNormalization(t *testing.T) {
	ref := startStack(t, "reference", Config{})
	cl := startCluster(t, "cluster", 4, []int{1, 2})

	steps := []diffStep{
		{method: "POST", path: "/v1/indexes",
			body: `{"name":"norm","profile":"latin","tuples":[{"id":1,"key":"Crème Brûlée Straße 7"},{"id":2,"key":"  VIA   ROMA  12 "},{"id":3,"key":"François-Müller-Allee 3"}]}`},
		{method: "POST", path: "/v1/indexes/norm/upsert",
			body:    `{"tuples":[{"id":4,"key":"creme brulee strasse 7","attrs":["dup-after-normalization"]},{"id":5,"key":"Ångström Väg 1"}]}`,
			compare: true},
		{method: "POST", path: "/v1/link",
			body:    `{"index":"norm","keys":["CRÈME BRÛLÉE STRASSE 7","via roma 12","francois muller allee 3","angstrom vag 1","unrelated key"],"strategy":"approximate"}`,
			compare: true},
		{method: "POST", path: "/v1/link",
			body:    `{"index":"norm","keys":["creme brulee strasse 7","Via Roma 12"],"strategy":"exact"}`,
			compare: true},
	}
	for si, step := range steps {
		wantCode, wantBody := ref.do(t, step.method, step.path, step.body)
		code, body := cl.do(t, step.method, step.path, step.body)
		if code != wantCode {
			t.Fatalf("step %d: status %d, reference %d\nbody: %s", si, code, wantCode, body)
		}
		if step.compare && body != wantBody {
			t.Fatalf("step %d diverges\ncluster:   %s\nreference: %s", si, body, wantBody)
		}
	}
}
