// Package service implements the resident linkage service: a registry
// of named resident indexes (adaptivelink.Index), a bounded worker pool
// providing admission control for probe work, per-request deadlines, a
// Prometheus-style metrics surface and graceful drain. cmd/adaptivelinkd
// exposes it over HTTP/JSON via NewHandler.
package service

import (
	"context"
	"sync"
	"sync/atomic"
)

// job states.
const (
	jobQueued int32 = iota
	jobRunning
	jobCancelled
)

type job struct {
	fn    func()
	state atomic.Int32
	done  chan struct{}
}

// pool is a bounded worker pool: W workers consume a queue of depth D,
// so at most W probe batches execute concurrently and at most D wait.
// Submission blocks while the queue is full — backpressure, not load
// shedding — and gives up when the caller's deadline expires first. A
// job whose deadline expires while it is still queued is skipped; a job
// that has started always runs to completion (no dropped responses).
type pool struct {
	jobs     chan *job
	wg       sync.WaitGroup // workers
	inflight sync.WaitGroup // submitted jobs not yet finished/skipped
	queued   atomic.Int64
	running  atomic.Int64
}

func newPool(workers, depth int) *pool {
	p := &pool{jobs: make(chan *job, depth)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *pool) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		p.queued.Add(-1)
		if j.state.CompareAndSwap(jobQueued, jobRunning) {
			p.running.Add(1)
			j.fn()
			p.running.Add(-1)
		}
		close(j.done)
		p.inflight.Done()
	}
}

// reserve registers one upcoming runReserved call with the drain
// accounting. The service calls it under its admission lock, so a drain
// that has begun can never miss an admitted request.
func (p *pool) reserve() { p.inflight.Add(1) }

// runReserved executes fn on the pool and waits for it to finish; the
// caller must have called reserve first. It returns ctx.Err() when the
// deadline expires before the job starts; once the job has started,
// runReserved always waits for completion and returns nil.
func (p *pool) runReserved(ctx context.Context, fn func()) error {
	j := &job{fn: fn, done: make(chan struct{})}
	select {
	case p.jobs <- j:
		p.queued.Add(1)
	case <-ctx.Done():
		p.inflight.Done()
		return ctx.Err()
	}
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		if j.state.CompareAndSwap(jobQueued, jobCancelled) {
			// Still queued: the worker will skip it.
			return ctx.Err()
		}
		// Already running: the response must not be dropped.
		<-j.done
		return nil
	}
}

// drainWait blocks until every submitted job has finished or been
// skipped, or ctx expires.
func (p *pool) drainWait(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		p.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// close stops the workers. It first waits for every outstanding
// reservation to resolve — a reservation may be blocked sending to the
// queue, and closing a channel with a blocked sender panics — so the
// caller must guarantee both that no further reservations are made
// (the service's draining flag) and that every outstanding one carries
// a deadline (Link always does), which bounds the wait.
func (p *pool) close() {
	p.inflight.Wait()
	close(p.jobs)
	p.wg.Wait()
}
