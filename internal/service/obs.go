package service

import (
	"net/http"
	"time"

	"adaptivelink/internal/obs"
)

// Request-observability middleware: every /v1/* and /metrics request
// gets a request id (minted, or propagated from the client's
// X-Request-ID) echoed back in the response, a sampling decision, and —
// when sampled or slow — a retained trace reachable through
// /v1/debug/requests/{id} and /v1/debug/slowlog.
//
// The X-Debug-Trace header forces sampling for one request, so a
// client can always get a full span trace on demand without changing
// the server's sampling rate.

// statusWriter captures the response status for the trace record.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func withObs(s *Service, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = s.tracer.NewID()
		}
		w.Header().Set("X-Request-ID", id)
		route := r.Method + " " + r.URL.Path
		t := s.tracer.Begin(route, id, r.Header.Get("X-Debug-Trace") != "")
		ctx := obs.WithRequestID(r.Context(), id)
		if t != nil {
			ctx = obs.WithTrace(ctx, t)
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r.WithContext(ctx))
		total := time.Since(start)
		if s.tracer.End(t, id, route, sw.status, total) {
			s.slowRequests.Inc()
			s.log.Warn("slow request", "request_id", id, "route", route,
				"status", sw.status, "duration", total.Round(time.Millisecond))
		}
	})
}
