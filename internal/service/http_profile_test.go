package service

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// The wire profile option reaches the index, normalises keys on both
// the load and link sides, and is reported back in index info; an
// unknown name is a 400 listing the registry.
func TestHTTPCreateIndexProfile(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := doJSON(t, "POST", ts.URL+"/v1/indexes", CreateIndexRequest{
		Name:    "munich",
		Profile: "latin",
		Tuples:  []TupleDTO{{Key: "Münchner Straße 5"}, {Key: "Leopoldstraße 1"}},
	})
	if code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, body)
	}
	var info IndexInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if info.Profile != "latin" {
		t.Fatalf("info.Profile = %q, want latin", info.Profile)
	}

	// A differently-accented, differently-cased spelling links exactly.
	code, body = doJSON(t, "POST", ts.URL+"/v1/link", LinkRequestDTO{
		Index: "munich", Keys: []string{"MUNCHNER STRASSE 5"},
	})
	if code != http.StatusOK {
		t.Fatalf("link: %d %s", code, body)
	}
	var res LinkResponseDTO
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("decode link: %v", err)
	}
	if len(res.Results) != 1 || len(res.Results[0].Matches) != 1 || !res.Results[0].Matches[0].Exact {
		t.Fatalf("link results = %+v, want one exact match", res.Results)
	}

	code, body = doJSON(t, "POST", ts.URL+"/v1/indexes", CreateIndexRequest{
		Name: "bad", Profile: "klingon", Tuples: []TupleDTO{{Key: "x"}},
	})
	if code != http.StatusBadRequest {
		t.Fatalf("unknown profile: %d %s", code, body)
	}
	if !strings.Contains(string(body), "klingon") {
		t.Fatalf("unknown-profile error does not name it: %s", body)
	}
}
