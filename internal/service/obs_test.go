package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"adaptivelink"
	"adaptivelink/internal/obs"
)

// newObsServer builds a server with every-request sampling and a log
// sink the test can grep.
func newObsServer(t *testing.T, cfg Config) (*Service, *httptest.Server, *bytes.Buffer) {
	t.Helper()
	var logBuf bytes.Buffer
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(&logBuf, nil))
	}
	if cfg.Trace.SampleEvery == 0 {
		cfg.Trace.SampleEvery = 1 // sample everything: deterministic tests
	}
	s := New(cfg)
	t.Cleanup(s.Close)
	ts := httptest.NewServer(NewHandler(s))
	t.Cleanup(ts.Close)
	return s, ts, &logBuf
}

func TestRequestIDMintedAndEchoed(t *testing.T) {
	_, ts, _ := newObsServer(t, Config{Workers: 2})
	createAtlas(t, ts.URL)

	// No client id: the server mints one.
	resp, err := http.Get(ts.URL + "/v1/indexes")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	minted := resp.Header.Get("X-Request-ID")
	if minted == "" {
		t.Fatal("no X-Request-ID minted")
	}

	// Client id: echoed verbatim.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/indexes", nil)
	req.Header.Set("X-Request-ID", "client-chose-this")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "client-chose-this" {
		t.Fatalf("echoed id = %q, want client-chose-this", got)
	}
}

func TestDebugTraceRetrievableByID(t *testing.T) {
	_, ts, _ := newObsServer(t, Config{Workers: 2, Trace: obs.Config{SampleEvery: -1}})
	createAtlas(t, ts.URL)

	// Sampling off, but X-Debug-Trace forces a span trace.
	raw, _ := json.Marshal(LinkRequestDTO{Index: "atlas", Key: "via monte bianco nord 12"})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/link", bytes.NewReader(raw))
	req.Header.Set("X-Request-ID", "forced-trace-1")
	req.Header.Set("X-Debug-Trace", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("link status %d", resp.StatusCode)
	}

	code, body := doJSON(t, "GET", ts.URL+"/v1/debug/requests/forced-trace-1", nil)
	if code != http.StatusOK {
		t.Fatalf("trace fetch: %d %s", code, body)
	}
	var tr obs.Trace
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatalf("decode trace: %v", err)
	}
	if tr.ID != "forced-trace-1" || !tr.Sampled || tr.Index != "atlas" || tr.Keys != 1 {
		t.Fatalf("trace = %+v", tr)
	}
	names := make(map[string]bool)
	for _, sp := range tr.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"queue", "session", "probe", "merge"} {
		if !names[want] {
			t.Fatalf("trace missing %q span; spans = %+v", want, tr.Spans)
		}
	}

	// An unretained id is a 404 with the error envelope.
	code, body = doJSON(t, "GET", ts.URL+"/v1/debug/requests/never-sent", nil)
	var envelope ErrorDTO
	if code != http.StatusNotFound || json.Unmarshal(body, &envelope) != nil || envelope.Error.Code != CodeNotFound {
		t.Fatalf("missing trace: %d %s", code, body)
	}
}

func TestSlowlogCapturesAndLogs(t *testing.T) {
	s, ts, logBuf := newObsServer(t, Config{
		Workers: 2,
		Trace:   obs.Config{SampleEvery: 1, SlowThreshold: time.Nanosecond},
	})
	createAtlas(t, ts.URL)
	// Any request exceeds a 1ns threshold.
	code, _ := doJSON(t, "POST", ts.URL+"/v1/link", LinkRequestDTO{Index: "atlas", Key: "lago di como est"})
	if code != http.StatusOK {
		t.Fatalf("link status %d", code)
	}

	codeS, body := doJSON(t, "GET", ts.URL+"/v1/debug/slowlog", nil)
	if codeS != http.StatusOK {
		t.Fatalf("slowlog: %d %s", codeS, body)
	}
	var slow SlowlogDTO
	if err := json.Unmarshal(body, &slow); err != nil {
		t.Fatalf("decode slowlog: %v", err)
	}
	if slow.SlowSeen == 0 || len(slow.Traces) == 0 {
		t.Fatalf("slowlog empty: %+v", slow)
	}
	if slow.ThresholdMillis <= 0 {
		t.Fatalf("threshold_ms = %v, want the configured threshold", slow.ThresholdMillis)
	}
	if !strings.Contains(logBuf.String(), "slow request") {
		t.Fatalf("no slow-request warning logged:\n%s", logBuf.String())
	}
	// The slowlog request itself is slow under a 1ns threshold, so the
	// live counter can only have moved past the DTO's value.
	if s.tracer.SlowSeen() < slow.SlowSeen {
		t.Fatalf("SlowSeen went backwards: tracer %d, DTO %d", s.tracer.SlowSeen(), slow.SlowSeen)
	}
}

func TestSlowlogDisabled(t *testing.T) {
	_, ts, _ := newObsServer(t, Config{Workers: 2, Trace: obs.Config{SlowThreshold: -1}})
	code, body := doJSON(t, "GET", ts.URL+"/v1/debug/slowlog", nil)
	if code != http.StatusOK {
		t.Fatalf("slowlog: %d %s", code, body)
	}
	var slow SlowlogDTO
	if err := json.Unmarshal(body, &slow); err != nil {
		t.Fatal(err)
	}
	if slow.ThresholdMillis != -1 || slow.SlowSeen != 0 {
		t.Fatalf("disabled slowlog = %+v", slow)
	}
}

func TestVersionEndpoint(t *testing.T) {
	_, ts, _ := newObsServer(t, Config{Workers: 2})
	code, body := doJSON(t, "GET", ts.URL+"/v1/version", nil)
	if code != http.StatusOK {
		t.Fatalf("version: %d %s", code, body)
	}
	var v VersionInfo
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.GoVersion == "" || v.Version == "" {
		t.Fatalf("version info = %+v", v)
	}
	if v.UptimeSeconds < 0 {
		t.Fatalf("uptime = %v", v.UptimeSeconds)
	}
}

// TestExplainOverHTTPReconciles drives an explain link over the wire
// and checks the decision traces agree with the session stats the same
// response reports — the end-to-end version of the package-level
// reconciliation test.
func TestExplainOverHTTPReconciles(t *testing.T) {
	_, ts, _ := newObsServer(t, Config{Workers: 2})
	createAtlas(t, ts.URL)

	keys := []string{
		"via monte bianco nord 12", // exact hit
		"via monte bianco nord 1",  // variant: escalation candidate
		"lago di como est",         // exact hit
		"no such place anywhere",   // miss
	}
	code, body := doJSON(t, "POST", ts.URL+"/v1/link", LinkRequestDTO{Index: "atlas", Keys: keys, Explain: true})
	if code != http.StatusOK {
		t.Fatalf("explain link: %d %s", code, body)
	}
	var out LinkResponseDTO
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Decisions) != len(keys) {
		t.Fatalf("decisions = %d, want one per key", len(out.Decisions))
	}
	var hits, matches, escalations int
	for i, d := range out.Decisions {
		if d.Key != keys[i] {
			t.Fatalf("decision %d key = %q, want %q", i, d.Key, keys[i])
		}
		if d.Hit {
			hits++
		}
		matches += d.Matches
		if d.Escalated {
			escalations++
		}
		if d.Matches != len(out.Results[i].Matches) {
			t.Fatalf("key %q: decision reports %d matches, result has %d", d.Key, d.Matches, len(out.Results[i].Matches))
		}
	}
	st := out.Session
	if hits != st.Hits || escalations != st.Escalations {
		t.Fatalf("decisions (hits=%d esc=%d) disagree with session %+v", hits, escalations, st)
	}
	last := out.Decisions[len(out.Decisions)-1]
	if last.SpendAfter != st.ModelledCost {
		t.Fatalf("final spend %v != modelled cost %v", last.SpendAfter, st.ModelledCost)
	}

	// Without the flag the field stays absent.
	code, body = doJSON(t, "POST", ts.URL+"/v1/link", LinkRequestDTO{Index: "atlas", Key: "lago di como est"})
	if code != http.StatusOK {
		t.Fatalf("plain link: %d %s", code, body)
	}
	if bytes.Contains(body, []byte(`"decisions"`)) {
		t.Fatalf("no-explain response leaked decisions: %s", body)
	}
}

func TestMetricsExposeObservability(t *testing.T) {
	dir := t.TempDir()
	_, ts, _ := newObsServer(t, Config{Workers: 2, DataDir: dir})
	createAtlas(t, ts.URL)
	if code, body := doJSON(t, "POST", ts.URL+"/v1/link", LinkRequestDTO{Index: "atlas", Key: "lago di como est"}); code != http.StatusOK {
		t.Fatalf("link: %d %s", code, body)
	}
	if code, body := doJSON(t, "POST", ts.URL+"/v1/indexes/atlas/upsert", UpsertRequest{
		Tuples: []TupleDTO{{ID: 7, Key: "passo dello stelvio"}},
	}); code != http.StatusOK {
		t.Fatalf("upsert: %d %s", code, body)
	}

	code, body := doJSON(t, "GET", ts.URL+"/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	text := string(body)
	for _, want := range []string{
		`adaptivelink_build_info{`,
		"adaptivelink_uptime_seconds",
		"adaptivelink_goroutines",
		"adaptivelink_heap_alloc_bytes",
		`adaptivelink_link_latency_seconds_bucket{le="+Inf"}`,
		"adaptivelink_link_queue_wait_seconds_count",
		"adaptivelink_slow_requests_total",
		`adaptivelink_engine_upserts_total{index="atlas"}`,
		`adaptivelink_engine_snapshot_swaps_total{index="atlas"}`,
		`adaptivelink_wal_appends_total{index="atlas"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// The logged upsert must show in the WAL series.
	if !strings.Contains(text, `adaptivelink_wal_appends_total{index="atlas"} 1`) {
		t.Errorf("wal appends not 1:\n%s", grepLines(text, "wal_appends"))
	}
	// Bulk load counts as one engine upsert, the HTTP upsert as another.
	if !strings.Contains(text, `adaptivelink_engine_upserts_total{index="atlas"} 2`) {
		t.Errorf("engine upserts not 2:\n%s", grepLines(text, "engine_upserts"))
	}
}

func TestLoadStoredLogsRecovery(t *testing.T) {
	dir := t.TempDir()
	{
		_, ts, _ := newObsServer(t, Config{Workers: 2, DataDir: dir})
		createAtlas(t, ts.URL)
		if code, body := doJSON(t, "POST", ts.URL+"/v1/indexes/atlas/upsert", UpsertRequest{
			Tuples: []TupleDTO{{ID: 9, Key: "rifugio torino"}},
		}); code != http.StatusOK {
			t.Fatalf("upsert: %d %s", code, body)
		}
		ts.Close()
	}

	var logBuf bytes.Buffer
	s2 := New(Config{Workers: 2, DataDir: dir, Logger: slog.New(slog.NewTextHandler(&logBuf, nil))})
	defer s2.Close()
	names, err := s2.LoadStored()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "atlas" {
		t.Fatalf("recovered = %v", names)
	}
	logged := logBuf.String()
	if !strings.Contains(logged, `msg="reloaded index"`) || !strings.Contains(logged, "index=atlas") {
		t.Fatalf("reload not logged:\n%s", logged)
	}
	if !strings.Contains(logged, "wal_batches=1") {
		t.Fatalf("replayed batch count not logged:\n%s", logged)
	}
}

func TestServiceSlowLinkWarnsOnDeadline(t *testing.T) {
	var logBuf bytes.Buffer
	s := New(Config{
		Workers:         1,
		DefaultDeadline: 30 * time.Millisecond,
		Logger:          slog.New(slog.NewTextHandler(&logBuf, nil)),
	})
	defer s.Close()
	if _, err := s.CreateIndex("atlas", adaptivelink.IndexOptions{}, []adaptivelink.Tuple{{ID: 1, Key: "a key"}}); err != nil {
		t.Fatal(err)
	}
	s.testProbeDelay = func() { time.Sleep(20 * time.Millisecond) }
	_, err := s.Link(context.Background(), LinkRequest{Index: "atlas", Keys: []string{"x", "y", "z", "w"}})
	if err == nil {
		t.Fatal("expected deadline error")
	}
	if !strings.Contains(logBuf.String(), "link deadline exceeded") {
		t.Fatalf("deadline not logged:\n%s", logBuf.String())
	}
}

func grepLines(text, substr string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return fmt.Sprint(strings.Join(out, "\n"))
}
