package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adaptivelink"
)

func newDurableServer(t *testing.T, dataDir string) (*Service, *httptest.Server) {
	t.Helper()
	s := New(Config{Workers: 2, QueueDepth: 64, DataDir: dataDir})
	if _, err := s.LoadStored(); err != nil {
		t.Fatalf("LoadStored: %v", err)
	}
	ts := httptest.NewServer(NewHandler(s))
	t.Cleanup(ts.Close)
	return s, ts
}

// TestHTTPErrorEnvelope pins the unified v1 error contract: every error
// path answers with {"error":{"code":...,"message":...}}, the code
// drawn from the closed set and matched to the HTTP status.
func TestHTTPErrorEnvelope(t *testing.T) {
	s, ts := newTestServer(t)
	createAtlas(t, ts.URL)
	cases := []struct {
		name   string
		method string
		path   string
		body   any
		status int
		code   string
	}{
		{"malformed body", "POST", "/v1/indexes", "not json", http.StatusBadRequest, CodeInvalid},
		{"bad index name", "POST", "/v1/indexes", CreateIndexRequest{Name: "no/slashes"}, http.StatusBadRequest, CodeInvalid},
		{"duplicate index", "POST", "/v1/indexes", CreateIndexRequest{Name: "atlas"}, http.StatusConflict, CodeExists},
		{"get missing index", "GET", "/v1/indexes/ghost", nil, http.StatusNotFound, CodeNotFound},
		{"upsert missing index", "POST", "/v1/indexes/ghost/upsert", UpsertRequest{}, http.StatusNotFound, CodeNotFound},
		{"delete missing index", "DELETE", "/v1/indexes/ghost", nil, http.StatusNotFound, CodeNotFound},
		{"snapshot missing index", "POST", "/v1/indexes/ghost/snapshot", nil, http.StatusNotFound, CodeNotFound},
		{"snapshot in-memory index", "POST", "/v1/indexes/atlas/snapshot", nil, http.StatusBadRequest, CodeInvalid},
		{"link no keys", "POST", "/v1/link", LinkRequestDTO{Index: "atlas"}, http.StatusBadRequest, CodeInvalid},
		{"link key and keys", "POST", "/v1/link", LinkRequestDTO{Index: "atlas", Key: "a", Keys: []string{"b"}}, http.StatusBadRequest, CodeInvalid},
		{"link bad strategy", "POST", "/v1/link", LinkRequestDTO{Index: "atlas", Key: "a", Strategy: "psychic"}, http.StatusBadRequest, CodeInvalid},
		{"link missing index", "POST", "/v1/link", LinkRequestDTO{Index: "ghost", Key: "a"}, http.StatusNotFound, CodeNotFound},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			status, body := doJSON(t, c.method, ts.URL+c.path, c.body)
			if status != c.status {
				t.Fatalf("status = %d, want %d (%s)", status, c.status, body)
			}
			var dto ErrorDTO
			if err := json.Unmarshal(body, &dto); err != nil {
				t.Fatalf("response is not the error envelope: %v (%s)", err, body)
			}
			if dto.Error.Code != c.code {
				t.Fatalf("code = %q, want %q (%s)", dto.Error.Code, c.code, body)
			}
			if dto.Error.Message == "" {
				t.Fatalf("empty message (%s)", body)
			}
		})
	}
	// Draining: admitted after drain begins → 503 + draining code.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	status, body := doJSON(t, "POST", ts.URL+"/v1/link", LinkRequestDTO{Index: "atlas", Key: "a"})
	var dto ErrorDTO
	if status != http.StatusServiceUnavailable || json.Unmarshal(body, &dto) != nil || dto.Error.Code != CodeDraining {
		t.Fatalf("draining link = %d %s, want 503 + code draining", status, body)
	}
}

// TestHTTPDurableLifecycle drives the wire-level persistence loop:
// create (bulk-loads a snapshot), upsert (logs), snapshot endpoint
// (checkpoint), restart (new Service over the same data dir), identical
// answers plus honest persistence fields throughout.
func TestHTTPDurableLifecycle(t *testing.T) {
	dataDir := t.TempDir()
	s, ts := newDurableServer(t, dataDir)
	createAtlas(t, ts.URL)

	getInfo := func(base string) IndexInfo {
		t.Helper()
		code, body := doJSON(t, "GET", base+"/v1/indexes/atlas", nil)
		if code != http.StatusOK {
			t.Fatalf("get: %d %s", code, body)
		}
		var info IndexInfo
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatal(err)
		}
		return info
	}
	info := getInfo(ts.URL)
	if !info.Durable || info.WALRecords != 0 || info.LastSnapshot == nil {
		t.Fatalf("created durable info = %+v, want durable, empty log, snapshot set (bulk load writes one)", info)
	}

	code, body := doJSON(t, "POST", ts.URL+"/v1/indexes/atlas/upsert", UpsertRequest{
		Tuples: []TupleDTO{{ID: 7, Key: "lago di garda sud", Attrs: []string{"fresh"}}},
	})
	if code != http.StatusOK {
		t.Fatalf("upsert: %d %s", code, body)
	}
	if info = getInfo(ts.URL); info.WALRecords != 1 {
		t.Fatalf("wal_records after upsert = %d, want 1", info.WALRecords)
	}

	// The checkpoint subsumes the log.
	code, body = doJSON(t, "POST", ts.URL+"/v1/indexes/atlas/snapshot", nil)
	if code != http.StatusOK {
		t.Fatalf("snapshot: %d %s", code, body)
	}
	if info = getInfo(ts.URL); info.WALRecords != 0 || info.LastSnapshot == nil {
		t.Fatalf("post-snapshot info = %+v", info)
	}
	// One more logged batch so the restart exercises snapshot + replay.
	doJSON(t, "POST", ts.URL+"/v1/indexes/atlas/upsert", UpsertRequest{
		Tuples: []TupleDTO{{ID: 8, Key: "passo dello stelvio", Attrs: []string{"high"}}},
	})

	link := func(base, key string) string {
		t.Helper()
		code, body := doJSON(t, "POST", base+"/v1/link", LinkRequestDTO{Index: "atlas", Key: key})
		if code != http.StatusOK {
			t.Fatalf("link %q: %d %s", key, code, body)
		}
		return string(body)
	}
	keys := []string{"via monte bianco nord 12", "via monte bianco nord 1", "lago di garda sud", "passo dello stelvio", "nothing here"}
	before := make([]string, len(keys))
	for i, k := range keys {
		before[i] = link(ts.URL, k)
	}

	// "Restart": a brand-new service over the same data dir.
	s.Drain(context.Background())
	s.Close()
	ts.Close()
	s2, ts2 := newDurableServer(t, dataDir)
	defer func() { s2.Drain(context.Background()); s2.Close() }()

	info = getInfo(ts2.URL)
	if !info.Durable || info.WALRecords != 1 || info.Size != 5 {
		t.Fatalf("reloaded info = %+v, want durable, 1 replayed batch, 5 tuples", info)
	}
	for i, k := range keys {
		if after := link(ts2.URL, k); after != before[i] {
			t.Fatalf("link %q diverged after restart\n before %s\n after  %s", k, before[i], after)
		}
	}

	// Stats carry the persistence fields too.
	code, body = doJSON(t, "GET", ts2.URL+"/v1/stats", nil)
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Indexes) != 1 || !snap.Indexes[0].Durable || snap.Indexes[0].WALRecords != 1 {
		t.Fatalf("stats persistence fields = %+v", snap.Indexes)
	}

	// DELETE removes the stored data: a third boot starts empty.
	code, _ = doJSON(t, "DELETE", ts2.URL+"/v1/indexes/atlas", nil)
	if code != http.StatusNoContent {
		t.Fatalf("delete: %d", code)
	}
	s3 := New(Config{Workers: 2, DataDir: dataDir})
	defer s3.Close()
	names, err := s3.LoadStored()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("deleted index resurrected: %v", names)
	}
}

// TestServiceCreateIndexDurableConflicts: an orphaned index directory
// (on disk but not registered) blocks creation under the same name.
func TestServiceCreateIndexDurableConflicts(t *testing.T) {
	dataDir := t.TempDir()
	s := New(Config{Workers: 2, DataDir: dataDir})
	defer s.Close()
	mk := func(name string) error {
		_, err := s.CreateIndex(name, adaptivelink.IndexOptions{}, []adaptivelink.Tuple{{ID: 1, Key: "a key"}})
		return err
	}
	if err := mk("orphan"); err != nil {
		t.Fatal(err)
	}
	// Drop the registration but keep the files.
	s.mu.Lock()
	mi := s.indexes["orphan"]
	delete(s.indexes, "orphan")
	s.mu.Unlock()
	mi.ix.Close()
	err := mk("orphan")
	if !errors.Is(err, ErrExists) {
		t.Fatalf("create over an orphaned directory: %v, want ErrExists", err)
	}
	if !strings.Contains(err.Error(), "disk") {
		t.Fatalf("error should tell the operator the directory survives on disk: %v", err)
	}
}

// TestLoadStoredSelectivity: boot recovery loads exactly the stored
// indexes — plain files, foreign subdirectories and empty directories
// are skipped, and a corrupt index directory fails the boot loudly
// instead of serving a partial catalogue silently.
func TestLoadStoredSelectivity(t *testing.T) {
	dataDir := t.TempDir()
	s := New(Config{Workers: 1, DataDir: dataDir})
	if _, err := s.CreateIndex("keep", adaptivelink.IndexOptions{}, []adaptivelink.Tuple{{ID: 1, Key: "a key"}}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	if err := os.WriteFile(filepath.Join(dataDir, "junk.txt"), []byte("not an index"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dataDir, "empty-but-named-ok"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dataDir, "bad name!"), 0o755); err != nil {
		t.Fatal(err)
	}

	s2 := New(Config{Workers: 1, DataDir: dataDir})
	defer s2.Close()
	names, err := s2.LoadStored()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "keep" {
		t.Fatalf("LoadStored = %v, want [keep]", names)
	}

	// A corrupt artifact stops recovery with a descriptive error.
	broken := filepath.Join(dataDir, "broken")
	if err := os.MkdirAll(broken, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(broken, "index.snap"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	s3 := New(Config{Workers: 1, DataDir: dataDir})
	defer s3.Close()
	if _, err := s3.LoadStored(); err == nil || !strings.Contains(err.Error(), "broken") {
		t.Fatalf("LoadStored over corrupt dir = %v, want error naming it", err)
	}
}
