package service

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"adaptivelink"
)

func refTuples(keys ...string) []adaptivelink.Tuple {
	out := make([]adaptivelink.Tuple, len(keys))
	for i, k := range keys {
		out[i] = adaptivelink.Tuple{ID: i, Key: k, Attrs: []string{fmt.Sprintf("a%d", i)}}
	}
	return out
}

var testKeys = []string{"via monte bianco nord 12", "lago di como est", "valle verde ovest 9"}

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	s := New(cfg)
	t.Cleanup(s.Close)
	if _, err := s.CreateIndex("atlas", adaptivelink.IndexOptions{}, refTuples(testKeys...)); err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	return s
}

func TestCreateIndexValidation(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	if _, err := s.CreateIndex("bad name!", adaptivelink.IndexOptions{}, nil); !errors.Is(err, ErrInvalid) {
		t.Fatalf("bad name: %v", err)
	}
	if _, err := s.CreateIndex("ok", adaptivelink.IndexOptions{Theta: 9}, nil); !errors.Is(err, ErrInvalid) {
		t.Fatalf("bad options: %v", err)
	}
	info, err := s.CreateIndex("ok", adaptivelink.IndexOptions{}, refTuples("k1", "k2"))
	if err != nil || info.Size != 2 || info.CreatedAt.IsZero() {
		t.Fatalf("create: %+v, %v", info, err)
	}
	// The create response reports the stored creation time.
	if got, err := s.GetIndex("ok"); err != nil || !got.CreatedAt.Equal(info.CreatedAt) {
		t.Fatalf("GetIndex after create = %+v (%v), want CreatedAt %v", got, err, info.CreatedAt)
	}
	if _, err := s.CreateIndex("ok", adaptivelink.IndexOptions{}, nil); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	if err := s.DeleteIndex("ok"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if err := s.DeleteIndex("ok"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestLinkSingleAndBatch(t *testing.T) {
	s := newTestService(t, Config{})
	ctx := context.Background()
	resp, err := s.Link(ctx, LinkRequest{Index: "atlas", Keys: []string{testKeys[0]}})
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	if len(resp.Results) != 1 || len(resp.Results[0]) != 1 || !resp.Results[0][0].Exact {
		t.Fatalf("single link = %+v", resp.Results)
	}
	// Batch with a variant: the adaptive session escalates it.
	resp, err = s.Link(ctx, LinkRequest{
		Index: "atlas",
		Keys:  []string{testKeys[1], "via monte bianca nord 12", testKeys[2]},
	})
	if err != nil {
		t.Fatalf("Link batch: %v", err)
	}
	if got := resp.Session.Escalations; got != 1 {
		t.Fatalf("escalations = %d, want 1 (%+v)", got, resp.Session)
	}
	if len(resp.Results[1]) != 1 || resp.Results[1][0].Exact {
		t.Fatalf("variant result = %+v", resp.Results[1])
	}
	snap := s.Snapshot()
	if len(snap.Indexes) != 1 || snap.Indexes[0].Probes != 4 || snap.Indexes[0].Sessions != 2 {
		t.Fatalf("snapshot = %+v", snap.Indexes)
	}
	if snap.Indexes[0].ModelledCost <= 4 {
		t.Fatalf("modelled cost %v not above all-exact baseline", snap.Indexes[0].ModelledCost)
	}
}

func TestLinkValidation(t *testing.T) {
	s := newTestService(t, Config{MaxBatch: 2})
	ctx := context.Background()
	cases := []struct {
		req  LinkRequest
		want error
	}{
		{LinkRequest{Index: "atlas", Keys: nil}, ErrInvalid},
		{LinkRequest{Index: "atlas", Keys: []string{"a", "b", "c"}}, ErrInvalid},
		{LinkRequest{Index: "atlas", Keys: []string{"a"}, Strategy: "psychic"}, ErrInvalid},
		{LinkRequest{Index: "atlas", Keys: []string{"a"}, FutilityK: -1}, ErrInvalid},
		{LinkRequest{Index: "nosuch", Keys: []string{"a"}}, ErrNotFound},
	}
	for _, c := range cases {
		if _, err := s.Link(ctx, c.req); !errors.Is(err, c.want) {
			t.Errorf("Link(%+v) = %v, want %v", c.req, err, c.want)
		}
	}
	// Fixed strategies pass through.
	for _, strat := range []string{"exact", "approximate", "adaptive", ""} {
		if _, err := s.Link(ctx, LinkRequest{Index: "atlas", Keys: []string{"x"}, Strategy: strat}); err != nil {
			t.Errorf("strategy %q: %v", strat, err)
		}
	}
}

func TestUpsertVisibleToProbes(t *testing.T) {
	s := newTestService(t, Config{})
	ins, upd, err := s.Upsert("atlas", refTuples("corso nuovo sud 3", testKeys[0]))
	if err != nil || ins != 1 || upd != 1 {
		t.Fatalf("Upsert = %d/%d, %v", ins, upd, err)
	}
	if _, _, err := s.Upsert("nosuch", nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("upsert unknown index: %v", err)
	}
	resp, err := s.Link(context.Background(), LinkRequest{Index: "atlas", Keys: []string{"corso nuovo sud 3"}})
	if err != nil || len(resp.Results[0]) != 1 {
		t.Fatalf("probe after upsert = %+v, %v", resp, err)
	}
	infos := s.ListIndexes()
	if len(infos) != 1 || infos[0].Size != 4 {
		t.Fatalf("ListIndexes = %+v", infos)
	}
	if info, err := s.GetIndex("atlas"); err != nil || info.Size != 4 {
		t.Fatalf("GetIndex = %+v, %v", info, err)
	}
	if _, err := s.GetIndex("nosuch"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("GetIndex unknown: %v", err)
	}
}

// TestLinkConcurrentSustainsLoad drives 64 concurrent in-flight link
// requests through a small worker pool: admission queues them, none is
// rejected, and every response arrives.
func TestLinkConcurrentSustainsLoad(t *testing.T) {
	s := newTestService(t, Config{Workers: 4, QueueDepth: 128})
	const clients = 64
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			key := testKeys[c%len(testKeys)]
			resp, err := s.Link(context.Background(), LinkRequest{Index: "atlas", Keys: []string{key, key}})
			if err != nil {
				errs <- fmt.Errorf("client %d: %w", c, err)
				return
			}
			if len(resp.Results) != 2 || len(resp.Results[0]) != 1 {
				errs <- fmt.Errorf("client %d: bad results %+v", c, resp.Results)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	snap := s.Snapshot()
	if snap.Indexes[0].Probes != clients*2 {
		t.Fatalf("probes = %d, want %d", snap.Indexes[0].Probes, clients*2)
	}
}

// TestLinkDeadlineWhileQueued: with one worker busy and a queue of one,
// a short-deadline request expires in the queue and is skipped without
// executing.
func TestLinkDeadlineWhileQueued(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	var once sync.Once
	s.testProbeDelay = func() { once.Do(func() { <-release }) }

	done := make(chan error, 1)
	go func() {
		_, err := s.Link(context.Background(), LinkRequest{Index: "atlas", Keys: []string{testKeys[0]}})
		done <- err
	}()
	// Wait for the blocker to occupy the worker.
	waitUntil(t, func() bool { return s.Snapshot().Running == 1 })

	_, err := s.Link(context.Background(), LinkRequest{
		Index: "atlas", Keys: []string{testKeys[1]}, Timeout: 30 * time.Millisecond,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued request error = %v, want deadline", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("blocked request failed: %v", err)
	}
	// The expired request must not have probed.
	if snap := s.Snapshot(); snap.Indexes[0].Probes != 1 {
		t.Fatalf("probes = %d, want 1 (expired request ran)", snap.Indexes[0].Probes)
	}
}

// TestLinkDeadlineMidBatch: a deadline expiring during execution aborts
// the batch with a deadline error.
func TestLinkDeadlineMidBatch(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	s.testProbeDelay = func() { time.Sleep(20 * time.Millisecond) }
	keys := make([]string, 50)
	for i := range keys {
		keys[i] = testKeys[i%len(testKeys)]
	}
	_, err := s.Link(context.Background(), LinkRequest{Index: "atlas", Keys: keys, Timeout: 50 * time.Millisecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("mid-batch deadline = %v", err)
	}
}

// TestDrainGraceful: drain rejects new work, waits for in-flight work,
// and drops no responses.
func TestDrainGraceful(t *testing.T) {
	s := newTestService(t, Config{Workers: 2})
	release := make(chan struct{})
	var once sync.Once
	s.testProbeDelay = func() { once.Do(func() { <-release }) }

	inFlight := make(chan error, 1)
	go func() {
		_, err := s.Link(context.Background(), LinkRequest{Index: "atlas", Keys: []string{testKeys[0]}})
		inFlight <- err
	}()
	waitUntil(t, func() bool { return s.Snapshot().Running == 1 })

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	waitUntil(t, func() bool { return s.Draining() })

	// New work is rejected while the old request is still running.
	if _, err := s.Link(context.Background(), LinkRequest{Index: "atlas", Keys: []string{"x"}}); !errors.Is(err, ErrDraining) {
		t.Fatalf("link during drain = %v, want ErrDraining", err)
	}
	select {
	case <-drained:
		t.Fatal("drain returned while a request was in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-inFlight; err != nil {
		t.Fatalf("in-flight request dropped: %v", err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Drain with an expired context reports the timeout.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Drain(ctx); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("second drain = %v", err)
	}
}

// TestDeleteIndexDropsMetricSeries: a deleted index stops being
// exported, and a recreated one restarts its counters from zero rather
// than inheriting the dead incarnation's values.
func TestDeleteIndexDropsMetricSeries(t *testing.T) {
	s := newTestService(t, Config{})
	if _, err := s.Link(context.Background(), LinkRequest{Index: "atlas", Keys: []string{testKeys[0]}}); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteIndex("atlas"); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	s.WriteMetrics(&b)
	if strings.Contains(b.String(), `index="atlas"`) {
		t.Fatalf("deleted index still exported:\n%s", b.String())
	}
	if _, err := s.CreateIndex("atlas", adaptivelink.IndexOptions{}, refTuples(testKeys...)); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	s.WriteMetrics(&b)
	if !strings.Contains(b.String(), `adaptivelink_probes_total{index="atlas"} 0`) {
		t.Fatalf("recreated index inherited counters:\n%s", b.String())
	}
}

// TestLinkTimeoutClampedToMaxDeadline: a client cannot hold its
// admission reservation past the server-side cap.
func TestLinkTimeoutClampedToMaxDeadline(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, MaxDeadline: 60 * time.Millisecond})
	release := make(chan struct{})
	var once sync.Once
	s.testProbeDelay = func() { once.Do(func() { <-release }) }
	done := make(chan error, 1)
	go func() {
		_, err := s.Link(context.Background(), LinkRequest{Index: "atlas", Keys: []string{testKeys[0]}})
		done <- err
	}()
	waitUntil(t, func() bool { return s.Snapshot().Running == 1 })
	// Requested 10s, capped at 60ms: must fail quickly while queued.
	begin := time.Now()
	_, err := s.Link(context.Background(), LinkRequest{
		Index: "atlas", Keys: []string{testKeys[1]}, Timeout: 10 * time.Second,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("clamped request error = %v", err)
	}
	if elapsed := time.Since(begin); elapsed > 5*time.Second {
		t.Fatalf("clamp ignored: waited %v", elapsed)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestMetricsExposition(t *testing.T) {
	s := newTestService(t, Config{})
	if _, err := s.Link(context.Background(), LinkRequest{Index: "atlas", Keys: []string{testKeys[0]}}); err != nil {
		t.Fatalf("Link: %v", err)
	}
	var b strings.Builder
	if err := s.WriteMetrics(&b); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE adaptivelink_probes_total counter",
		`adaptivelink_probes_total{index="atlas"} 1`,
		`adaptivelink_index_size{index="atlas"} 3`,
		`adaptivelink_link_requests_total{code="ok"} 1`,
		`adaptivelink_matches_total{index="atlas",kind="exact"} 1`,
		"# TYPE adaptivelink_link_queued gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
