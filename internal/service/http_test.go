package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func newTestServer(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	s := New(Config{Workers: 4, QueueDepth: 128})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(NewHandler(s))
	t.Cleanup(ts.Close)
	return s, ts
}

func doJSON(t *testing.T, method, url string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, raw
}

func createAtlas(t *testing.T, base string) {
	t.Helper()
	code, body := doJSON(t, "POST", base+"/v1/indexes", CreateIndexRequest{
		Name: "atlas",
		Tuples: []TupleDTO{
			{ID: 0, Key: "via monte bianco nord 12", Attrs: []string{"alpine"}},
			{ID: 1, Key: "lago di como est"},
			{ID: 2, Key: "valle verde ovest 9"},
		},
	})
	if code != http.StatusCreated {
		t.Fatalf("create index: %d %s", code, body)
	}
}

func TestHTTPIndexLifecycle(t *testing.T) {
	_, ts := newTestServer(t)
	createAtlas(t, ts.URL)

	// Duplicate name conflicts.
	code, _ := doJSON(t, "POST", ts.URL+"/v1/indexes", CreateIndexRequest{Name: "atlas"})
	if code != http.StatusConflict {
		t.Fatalf("duplicate create = %d", code)
	}
	// Malformed body.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/indexes", strings.NewReader("{nope"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body = %d", resp.StatusCode)
	}

	code, body := doJSON(t, "GET", ts.URL+"/v1/indexes", nil)
	var list []IndexInfo
	if code != http.StatusOK || json.Unmarshal(body, &list) != nil || len(list) != 1 || list[0].Size != 3 {
		t.Fatalf("list = %d %s", code, body)
	}
	code, body = doJSON(t, "GET", ts.URL+"/v1/indexes/atlas", nil)
	var info IndexInfo
	if code != http.StatusOK || json.Unmarshal(body, &info) != nil || info.Name != "atlas" {
		t.Fatalf("get = %d %s", code, body)
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/indexes/nosuch", nil); code != http.StatusNotFound {
		t.Fatalf("get unknown = %d", code)
	}

	code, body = doJSON(t, "POST", ts.URL+"/v1/indexes/atlas/upsert", UpsertRequest{
		Tuples: []TupleDTO{{Key: "corso nuovo sud 3"}, {Key: "lago di como est", Attrs: []string{"fresh"}}},
	})
	var up UpsertResponse
	if code != http.StatusOK || json.Unmarshal(body, &up) != nil || up.Inserted != 1 || up.Updated != 1 || up.Size != 4 {
		t.Fatalf("upsert = %d %s", code, body)
	}

	if code, _ := doJSON(t, "DELETE", ts.URL+"/v1/indexes/atlas", nil); code != http.StatusNoContent {
		t.Fatalf("delete = %d", code)
	}
	if code, _ := doJSON(t, "DELETE", ts.URL+"/v1/indexes/atlas", nil); code != http.StatusNotFound {
		t.Fatalf("delete again = %d", code)
	}
}

func TestHTTPCreateIndexMeasures(t *testing.T) {
	s, ts := newTestServer(t)
	for _, m := range []string{"jaccard", "dice", "cosine", "overlap", ""} {
		name := "m-" + m
		if m == "" {
			name = "m-default"
		}
		code, body := doJSON(t, "POST", ts.URL+"/v1/indexes", CreateIndexRequest{
			Name: name, Measure: m, Q: 2, Theta: 0.5,
			Tuples: []TupleDTO{{Key: "some reference key"}},
		})
		if code != http.StatusCreated {
			t.Errorf("measure %q: %d %s", m, code, body)
		}
	}
	if got := s.Config().MaxBatch; got != 4096 {
		t.Fatalf("defaulted MaxBatch = %d", got)
	}
}

func TestHTTPLink(t *testing.T) {
	_, ts := newTestServer(t)
	createAtlas(t, ts.URL)

	// Single-key form.
	code, body := doJSON(t, "POST", ts.URL+"/v1/link", LinkRequestDTO{Index: "atlas", Key: "lago di como est"})
	var lr LinkResponseDTO
	if code != http.StatusOK || json.Unmarshal(body, &lr) != nil {
		t.Fatalf("link = %d %s", code, body)
	}
	if len(lr.Results) != 1 || len(lr.Results[0].Matches) != 1 || !lr.Results[0].Matches[0].Exact {
		t.Fatalf("link results = %+v", lr.Results)
	}
	// Batch with a variant: escalated by the session, visible in stats.
	code, body = doJSON(t, "POST", ts.URL+"/v1/link", LinkRequestDTO{
		Index: "atlas",
		Keys:  []string{"via monte bianca nord 12", "valle verde ovest 9"},
	})
	if code != http.StatusOK {
		t.Fatalf("batch link = %d %s", code, body)
	}
	if json.Unmarshal(body, &lr) != nil || lr.Session.Escalations != 1 {
		t.Fatalf("batch session = %s", body)
	}
	if m := lr.Results[0].Matches; len(m) != 1 || m[0].Exact || m[0].RefKey != "via monte bianco nord 12" {
		t.Fatalf("variant matches = %+v", m)
	}

	// Validation surface.
	for _, c := range []struct {
		req  LinkRequestDTO
		want int
	}{
		{LinkRequestDTO{Index: "atlas"}, http.StatusBadRequest},
		{LinkRequestDTO{Index: "atlas", Key: "a", Keys: []string{"b"}}, http.StatusBadRequest},
		{LinkRequestDTO{Index: "atlas", Key: "a", Strategy: "psychic"}, http.StatusBadRequest},
		{LinkRequestDTO{Index: "nosuch", Key: "a"}, http.StatusNotFound},
	} {
		if code, _ := doJSON(t, "POST", ts.URL+"/v1/link", c.req); code != c.want {
			t.Errorf("link %+v = %d, want %d", c.req, code, c.want)
		}
	}
}

// TestHTTPConcurrentLinkLoad holds 64 concurrent in-flight /v1/link
// requests against the handler: all must come back 2xx.
func TestHTTPConcurrentLinkLoad(t *testing.T) {
	_, ts := newTestServer(t)
	createAtlas(t, ts.URL)
	keys := []string{"via monte bianco nord 12", "lago di como est", "valle verde ovest 9", "via monte bianca nord 12"}
	const clients = 64
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			code, body := doJSON(t, "POST", ts.URL+"/v1/link", LinkRequestDTO{Index: "atlas", Key: keys[c%len(keys)]})
			if code != http.StatusOK {
				errs <- fmt.Errorf("client %d: %d %s", c, code, body)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestHTTPStatsMetricsHealth(t *testing.T) {
	s, ts := newTestServer(t)
	createAtlas(t, ts.URL)
	doJSON(t, "POST", ts.URL+"/v1/link", LinkRequestDTO{Index: "atlas", Key: "lago di como est"})

	code, body := doJSON(t, "GET", ts.URL+"/v1/stats", nil)
	var snap Snapshot
	if code != http.StatusOK || json.Unmarshal(body, &snap) != nil {
		t.Fatalf("stats = %d %s", code, body)
	}
	if len(snap.Indexes) != 1 || snap.Indexes[0].Probes != 1 || snap.Workers != 4 {
		t.Fatalf("snapshot = %+v", snap)
	}

	code, body = doJSON(t, "GET", ts.URL+"/metrics", nil)
	if code != http.StatusOK || !strings.Contains(string(body), `adaptivelink_probes_total{index="atlas"} 1`) {
		t.Fatalf("metrics = %d %s", code, body)
	}

	if code, body = doJSON(t, "GET", ts.URL+"/healthz", nil); code != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz = %d %s", code, body)
	}
	// Drain flips health and rejects links with 503.
	if err := s.Drain(t.Context()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if code, _ = doJSON(t, "GET", ts.URL+"/healthz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain = %d", code)
	}
	if code, _ = doJSON(t, "POST", ts.URL+"/v1/link", LinkRequestDTO{Index: "atlas", Key: "x"}); code != http.StatusServiceUnavailable {
		t.Fatalf("link during drain = %d", code)
	}
}
