package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"adaptivelink/internal/cluster"
)

// Partial-failure contract: a routed batch either completes against
// every node group it needs or fails whole with a machine-branchable
// envelope — node loss is "node_unavailable" (502), a spent budget is
// "deadline" (504), and replicated answers never surface twice.

// clusterFixture is a router with direct access to its node servers.
type clusterFixture struct {
	router *diffStack
	nodes  [][]*httptest.Server
}

// newClusterFixture boots groupSizes-shaped stock nodes (wrapped by mw
// when non-nil) and a router over them.
func newClusterFixture(t *testing.T, shards int, groupSizes []int, mw func(g, r int, h http.Handler) http.Handler) *clusterFixture {
	t.Helper()
	f := &clusterFixture{nodes: make([][]*httptest.Server, len(groupSizes))}
	groups := make([][]string, len(groupSizes))
	for g, n := range groupSizes {
		for r := 0; r < n; r++ {
			svc := New(Config{})
			t.Cleanup(svc.Close)
			var h http.Handler = NewHandler(svc)
			if mw != nil {
				h = mw(g, r, h)
			}
			srv := httptest.NewServer(h)
			t.Cleanup(srv.Close)
			f.nodes[g] = append(f.nodes[g], srv)
			groups[g] = append(groups[g], srv.URL)
		}
	}
	cl, err := cluster.New(cluster.Config{Map: cluster.Map{Shards: shards, Groups: groups}})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	f.router = startStack(t, "router", Config{Cluster: cl})
	return f
}

func (f *clusterFixture) create(t *testing.T, nKeys int) {
	t.Helper()
	var tuples []string
	for i := 0; i < nKeys; i++ {
		tuples = append(tuples, fmt.Sprintf(`{"key":"borgo santa lucia %s %d"}`,
			[]string{"nord", "sud", "est", "ovest"}[i%4], i))
	}
	code, body := f.router.do(t, "POST", "/v1/indexes",
		fmt.Sprintf(`{"name":"atlas","tuples":[%s]}`, strings.Join(tuples, ",")))
	if code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, body)
	}
}

func envelope(t *testing.T, body string) (code, message string) {
	t.Helper()
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatalf("not an envelope: %s", body)
	}
	return env.Error.Code, env.Error.Message
}

// A node group lost mid-run fails routed batches whole with the
// node_unavailable envelope — never a silent partial result — while
// batches that only need surviving groups keep answering.
func TestClusterNodeDownFailsBatchWhole(t *testing.T) {
	f := newClusterFixture(t, 4, []int{1, 1}, nil)
	f.create(t, 24)

	// All approximate batches span signature groups; they work before...
	code, body := f.router.do(t, "POST", "/v1/link",
		`{"index":"atlas","keys":["borgo santa luca nord 0","borgo santa lucia est 14"],"strategy":"approximate"}`)
	if code != http.StatusOK {
		t.Fatalf("pre-failure link: %d %s", code, body)
	}

	f.nodes[1][0].Close() // group 1's only replica dies

	code, body = f.router.do(t, "POST", "/v1/link",
		`{"index":"atlas","keys":["borgo santa luca nord 0","borgo santa lucia est 14"],"strategy":"approximate"}`)
	if code != http.StatusBadGateway {
		t.Fatalf("post-failure link: %d %s (want 502)", code, body)
	}
	// The envelope names the failing group and its shard range, so an
	// operator reads WHICH slice of the keyspace is dark from the error.
	if ec, msg := envelope(t, body); ec != CodeNodeUnavailable ||
		!strings.Contains(msg, "cluster node unavailable") ||
		!strings.Contains(msg, "group 1 (shards 2-4)") {
		t.Fatalf("post-failure envelope: code %q message %q", ec, msg)
	}

	// Routed writes need quorum on every owning group: they fail whole
	// too, naming the below-quorum group and its shard range.
	code, body = f.router.do(t, "POST", "/v1/indexes/atlas/upsert",
		`{"tuples":[{"key":"borgo santa lucia nord 900"}]}`)
	if code != http.StatusBadGateway {
		t.Fatalf("post-failure upsert: %d %s (want 502)", code, body)
	}
	if ec, msg := envelope(t, body); ec != CodeNodeUnavailable ||
		!strings.Contains(msg, "group 1 (shards 2-4)") ||
		!strings.Contains(msg, "quorum") {
		t.Fatalf("post-failure upsert envelope: code %q message %q", ec, msg)
	}
}

// A replica dying is absorbed: reads fail over to the surviving replica
// of the group, requests keep answering 200, and /v1/cluster reports
// the dead replica unhealthy.
func TestClusterReplicaFailover(t *testing.T) {
	f := newClusterFixture(t, 4, []int{2, 2}, nil)
	f.create(t, 24)

	f.nodes[0][0].Close() // group 0 keeps a live replica

	for i := 0; i < 6; i++ { // past any round-robin phase
		code, body := f.router.do(t, "POST", "/v1/link",
			`{"index":"atlas","keys":["borgo santa lucia nord 0","borgo santa luca sud 5"],"strategy":"approximate"}`)
		if code != http.StatusOK {
			t.Fatalf("failover link %d: %d %s", i, code, body)
		}
	}

	code, body := f.router.do(t, "GET", "/v1/cluster", "")
	if code != http.StatusOK {
		t.Fatalf("/v1/cluster: %d %s", code, body)
	}
	var info ClusterInfo
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatal(err)
	}
	if info.Role != "router" || len(info.Groups) != 2 {
		t.Fatalf("cluster info: %s", body)
	}
	if r := info.Groups[0].Replicas[0]; r.Healthy {
		t.Fatalf("dead replica %s reported healthy", r.Addr)
	}
	if r := info.Groups[0].Replicas[1]; !r.Healthy {
		t.Fatalf("live replica %s reported unhealthy", r.Addr)
	}
}

// A budget spent during the fan-out surfaces as the standard deadline
// envelope (504), byte-compatible with a single process timing out.
func TestClusterDeadlineDuringFanOut(t *testing.T) {
	f := newClusterFixture(t, 2, []int{1, 1}, func(g, r int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			if req.URL.Path == "/v1/link" {
				time.Sleep(300 * time.Millisecond)
			}
			h.ServeHTTP(w, req)
		})
	})
	f.create(t, 16)

	code, body := f.router.do(t, "POST", "/v1/link",
		`{"index":"atlas","keys":["borgo santa lucia nord 0"],"timeout_ms":80}`)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("deadline link: %d %s (want 504)", code, body)
	}
	ec, msg := envelope(t, body)
	if ec != CodeDeadline {
		t.Fatalf("envelope code %q, want %q", ec, CodeDeadline)
	}
	if want := `link "atlas": context deadline exceeded`; msg != want {
		t.Fatalf("deadline message %q, want %q (single-process byte-identity)", msg, want)
	}
}

// Replicated answers dedup at the merge even when replicas diverge: a
// key whose signature spans two groups, with one group's copy updated
// behind the router's back (a lagging snapshot), still yields exactly
// one match — keep-first in group order.
func TestClusterReplicaDedupAcrossVersions(t *testing.T) {
	f := newClusterFixture(t, 4, []int{1, 1}, nil)
	f.create(t, 8)

	// Plant a key through the router (it lands on every owning group),
	// then rewrite its payload on ONE group's node directly, bypassing
	// the router — the groups now hold different versions of the key.
	code, body := f.router.do(t, "POST", "/v1/indexes/atlas/upsert",
		`{"tuples":[{"id":77,"key":"canale grande ribera 9","attrs":["v1"]}]}`)
	if code != http.StatusOK {
		t.Fatalf("routed upsert: %d %s", code, body)
	}
	divergent := 0
	for g := range f.nodes {
		node := f.nodes[g][0]
		resp, err := http.Post(node.URL+"/v1/indexes/atlas/upsert", "application/json",
			strings.NewReader(`{"tuples":[{"id":78,"key":"canale grande ribera 9","attrs":["v2-direct"]}]}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		divergent++
		break // only the first group diverges
	}
	if divergent == 0 {
		t.Fatal("no node to diverge")
	}

	for i := 0; i < 4; i++ { // stable across round-robin phases
		code, body = f.router.do(t, "POST", "/v1/link",
			`{"index":"atlas","keys":["canale grande ribera 9"],"strategy":"approximate"}`)
		if code != http.StatusOK {
			t.Fatalf("link: %d %s", code, body)
		}
		var resp struct {
			Results []struct {
				Matches []struct {
					RefKey string   `json:"ref_key"`
					Attrs  []string `json:"ref_attrs"`
				} `json:"matches"`
			} `json:"results"`
		}
		if err := json.Unmarshal([]byte(body), &resp); err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, m := range resp.Results[0].Matches {
			if m.RefKey == "canale grande ribera 9" {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("round %d: key surfaced %d times, want exactly 1 (merge must dedup divergent group copies)\n%s", i, n, body)
		}
	}
}
