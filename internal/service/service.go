package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"sync"
	"time"

	"adaptivelink"
	"adaptivelink/internal/metrics"
)

// Sentinel errors; the HTTP layer maps them to status codes.
var (
	// ErrDraining rejects work admitted after graceful drain began.
	ErrDraining = errors.New("service draining")
	// ErrNotFound marks an unknown index name.
	ErrNotFound = errors.New("index not found")
	// ErrExists marks a create against an existing name.
	ErrExists = errors.New("index already exists")
	// ErrInvalid marks a malformed request.
	ErrInvalid = errors.New("invalid request")
)

var nameRe = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9_.-]{0,63}$`)

// Config sizes the service. The zero value selects usable defaults.
type Config struct {
	// Workers is the bounded worker pool size: at most this many link
	// requests execute concurrently (default max(2, GOMAXPROCS)).
	Workers int
	// QueueDepth bounds the admission queue: at most this many link
	// requests wait for a worker; beyond it submission blocks the
	// client until space frees or its deadline expires (default 256).
	QueueDepth int
	// DefaultDeadline applies to link requests that set none
	// (default 5s).
	DefaultDeadline time.Duration
	// MaxDeadline caps client-requested deadlines (default 60s), so a
	// request can never hold its admission reservation unboundedly —
	// the bound graceful shutdown relies on.
	MaxDeadline time.Duration
	// MaxBatch caps the keys of one link request (default 4096).
	MaxBatch int
	// DataDir, when set, makes every index durable: index NAME lives in
	// DataDir/NAME as a binary snapshot plus an upsert write-ahead log,
	// creates bulk-load straight into a snapshot, upserts are logged
	// before they are acknowledged, and LoadStored reopens everything on
	// boot. Empty keeps the service purely in-memory.
	DataDir string
	// WALSync is the write-ahead-log fsync policy for durable indexes
	// (default adaptivelink.SyncAlways).
	WALSync adaptivelink.SyncPolicy
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers < 2 {
			c.Workers = 2
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 5 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 60 * time.Second
	}
	if c.DefaultDeadline > c.MaxDeadline {
		c.DefaultDeadline = c.MaxDeadline
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4096
	}
	return c
}

// Service is the resident linkage service: named resident indexes
// probed by many concurrent sessions, with admission control, deadlines,
// metrics and graceful drain. All methods are safe for concurrent use.
type Service struct {
	cfg   Config
	pool  *pool
	reg   *metrics.Registry
	start time.Time

	admit    sync.RWMutex // serialises admission against Drain
	draining bool

	// createMu serialises index creation and deletion end to end, so a
	// lost create race can never remove or overwrite the directory of
	// the index that won it. Lookups and probes never take it.
	createMu sync.Mutex

	mu      sync.RWMutex
	indexes map[string]*managedIndex

	queuedGauge  *metrics.Value
	runningGauge *metrics.Value
	indexGauge   *metrics.Value
	// requestCounters holds the per-outcome link counters, resolved
	// once so the hot path neither formats labels nor takes the
	// registry lock.
	requestCounters map[string]*metrics.Value
	// batchSize tracks the keys-per-link-request distribution;
	// batchRequests counts the requests that used the batch form.
	batchSize     *metrics.Histogram
	batchRequests *metrics.Value

	// testProbeDelay, when set (tests only), runs before every probe of
	// a link batch, making slow requests reproducible.
	testProbeDelay func()
}

// managedIndex pairs a resident index with its metric series.
type managedIndex struct {
	name    string
	ix      *adaptivelink.Index
	created time.Time

	size          *metrics.Value
	shards        *metrics.Value
	sessions      *metrics.Value
	probes        *metrics.Value
	hits          *metrics.Value
	exactMatches  *metrics.Value
	approxMatches *metrics.Value
	escalations   *metrics.Value
	switches      *metrics.Value
	inserted      *metrics.Value
	updated       *metrics.Value
	modelledCost  *metrics.Value
}

// New builds a service with started workers.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	reg := metrics.NewRegistry()
	s := &Service{
		cfg:     cfg,
		pool:    newPool(cfg.Workers, cfg.QueueDepth),
		reg:     reg,
		start:   time.Now(),
		indexes: make(map[string]*managedIndex),
	}
	s.queuedGauge = reg.Gauge("adaptivelink_link_queued", "Link requests waiting for a worker.", "")
	s.runningGauge = reg.Gauge("adaptivelink_link_running", "Link requests currently executing.", "")
	s.indexGauge = reg.Gauge("adaptivelink_indexes", "Resident indexes registered.", "")
	s.requestCounters = make(map[string]*metrics.Value)
	for _, code := range []string{"ok", "deadline", "draining", "invalid", "notfound"} {
		s.requestCounters[code] = reg.Counter("adaptivelink_link_requests_total",
			"Link requests by outcome.", fmt.Sprintf("code=%q", code))
	}
	s.batchSize = reg.Histogram("adaptivelink_link_batch_keys",
		"Keys per admitted link request.", "",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096})
	s.batchRequests = reg.Counter("adaptivelink_link_batch_requests_total",
		"Admitted link requests carrying more than one key.", "")
	return s
}

// Config returns the effective (defaulted) configuration.
func (s *Service) Config() Config { return s.cfg }

func (s *Service) countRequest(code string) {
	s.requestCounters[code].Inc()
}

func (s *Service) newManaged(name string, ix *adaptivelink.Index) *managedIndex {
	l := func(extra string) string {
		if extra == "" {
			return fmt.Sprintf("index=%q", name)
		}
		return fmt.Sprintf("index=%q,%s", name, extra)
	}
	return &managedIndex{
		name:    name,
		ix:      ix,
		created: time.Now(),
		size: s.reg.Gauge("adaptivelink_index_size",
			"Resident reference tuples per index.", l("")),
		shards: s.reg.Gauge("adaptivelink_index_shards",
			"Shard count of the resident index.", l("")),
		sessions: s.reg.Counter("adaptivelink_sessions_total",
			"Probe sessions opened per index.", l("")),
		probes: s.reg.Counter("adaptivelink_probes_total",
			"Probes served per index.", l("")),
		hits: s.reg.Counter("adaptivelink_probe_hits_total",
			"Probes that found at least one match.", l("")),
		exactMatches: s.reg.Counter("adaptivelink_matches_total",
			"Result pairs per index and kind.", l(`kind="exact"`)),
		approxMatches: s.reg.Counter("adaptivelink_matches_total",
			"Result pairs per index and kind.", l(`kind="approximate"`)),
		escalations: s.reg.Counter("adaptivelink_escalations_total",
			"Probes re-run approximately after a deficit signal.", l("")),
		switches: s.reg.Counter("adaptivelink_session_switches_total",
			"Operator switches enacted by session control loops.", l("")),
		inserted: s.reg.Counter("adaptivelink_upserted_tuples_total",
			"Reference tuples applied by upserts, by effect.", l(`effect="inserted"`)),
		updated: s.reg.Counter("adaptivelink_upserted_tuples_total",
			"Reference tuples applied by upserts, by effect.", l(`effect="updated"`)),
		modelledCost: s.reg.Counter("adaptivelink_modelled_cost_total",
			"Session cost under the paper's weight model, in all-exact-step units.", l("")),
	}
}

// CreateIndex registers a new resident index built from tuples and
// returns its info as stored (the same CreatedAt later reads report).
// With a data dir configured the index is durable from birth: the
// initial tuples bulk-load straight into a snapshot in DataDir/name
// (never through the log), and every later upsert is logged.
func (s *Service) CreateIndex(name string, opts adaptivelink.IndexOptions, tuples []adaptivelink.Tuple) (IndexInfo, error) {
	if !nameRe.MatchString(name) {
		return IndexInfo{}, fmt.Errorf("%w: index name %q (want %s)", ErrInvalid, name, nameRe)
	}
	s.createMu.Lock()
	defer s.createMu.Unlock()
	if _, err := s.lookup(name); err == nil {
		return IndexInfo{}, fmt.Errorf("%w: %q", ErrExists, name)
	}
	var ix *adaptivelink.Index
	var err error
	if s.cfg.DataDir != "" {
		opts.Storage.Dir = filepath.Join(s.cfg.DataDir, name)
		opts.Storage.WALSync = s.cfg.WALSync
		if _, serr := os.Stat(opts.Storage.Dir); serr == nil {
			return IndexInfo{}, fmt.Errorf("%w: %q (its directory survives on disk; restart to reload it or remove it)", ErrExists, name)
		}
		ix, err = adaptivelink.BulkLoad(adaptivelink.FromTuples(tuples), opts)
	} else {
		ix, err = adaptivelink.NewIndex(adaptivelink.FromTuples(tuples), opts)
	}
	if err != nil {
		return IndexInfo{}, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	mi := s.newManaged(name, ix)
	s.indexes[name] = mi
	mi.size.Set(float64(ix.Len()))
	mi.shards.Set(float64(ix.Options().Shards))
	mi.inserted.Add(float64(ix.Len()))
	s.indexGauge.Set(float64(len(s.indexes)))
	return mi.info(), nil
}

// LoadStored reopens every index directory under the configured data
// dir — snapshot load plus write-ahead-log replay per index — and
// registers the recovered indexes. Call once on boot, before serving.
// Returns the recovered names, sorted.
func (s *Service) LoadStored() ([]string, error) {
	if s.cfg.DataDir == "" {
		return nil, nil
	}
	entries, err := os.ReadDir(s.cfg.DataDir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	s.createMu.Lock()
	defer s.createMu.Unlock()
	var names []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() || !nameRe.MatchString(name) {
			continue
		}
		dir := filepath.Join(s.cfg.DataDir, name)
		stored, err := adaptivelink.IsIndexDir(dir)
		if err != nil {
			return names, fmt.Errorf("loading %s: %w", dir, err)
		}
		if !stored {
			continue // not ours: no snapshot, no log
		}
		ix, err := adaptivelink.Open(dir, adaptivelink.IndexOptions{
			Storage: adaptivelink.StorageOptions{WALSync: s.cfg.WALSync},
		})
		if err != nil {
			return names, fmt.Errorf("loading %s: %w", dir, err)
		}
		s.mu.Lock()
		mi := s.newManaged(name, ix)
		s.indexes[name] = mi
		mi.size.Set(float64(ix.Len()))
		mi.shards.Set(float64(ix.Options().Shards))
		s.indexGauge.Set(float64(len(s.indexes)))
		s.mu.Unlock()
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// SnapshotIndex checkpoints a durable index in place: its current state
// replaces the snapshot atomically and the now-redundant log is reset,
// making the next boot a pure snapshot load. Invalid for in-memory
// indexes.
func (s *Service) SnapshotIndex(name string) (IndexInfo, error) {
	mi, err := s.lookup(name)
	if err != nil {
		return IndexInfo{}, err
	}
	if !mi.ix.Durable() {
		return IndexInfo{}, fmt.Errorf("%w: index %q is in-memory (start the server with a data dir for durable indexes)", ErrInvalid, name)
	}
	if err := mi.ix.Save(""); err != nil {
		return IndexInfo{}, err
	}
	return mi.info(), nil
}

func (mi *managedIndex) info() IndexInfo {
	info := IndexInfo{
		Name: mi.name, Size: mi.ix.Len(), Shards: mi.ix.Options().Shards, CreatedAt: mi.created,
		Profile: mi.ix.Options().Profile,
		Durable: mi.ix.Durable(), WALRecords: mi.ix.WALRecords(),
	}
	if t := mi.ix.LastSnapshot(); !t.IsZero() {
		info.LastSnapshot = &t
	}
	return info
}

// DeleteIndex removes an index and its exported metric series (a
// recreated index starts its counters from zero); in-flight sessions
// on it complete against the released object. A durable index's
// directory is deleted with it — DELETE means the data, not just the
// registration.
func (s *Service) DeleteIndex(name string) error {
	s.createMu.Lock()
	defer s.createMu.Unlock()
	s.mu.Lock()
	mi, ok := s.indexes[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(s.indexes, name)
	s.reg.DeleteSeries(fmt.Sprintf("index=%q", name))
	s.indexGauge.Set(float64(len(s.indexes)))
	s.mu.Unlock()
	if mi.ix.Durable() {
		if err := mi.ix.Close(); err != nil {
			return err
		}
		return os.RemoveAll(filepath.Join(s.cfg.DataDir, name))
	}
	return nil
}

// Upsert applies reference maintenance to the named index at a
// quiescent point (no probe observes a half-applied batch).
func (s *Service) Upsert(name string, tuples []adaptivelink.Tuple) (inserted, updated int, err error) {
	mi, err := s.lookup(name)
	if err != nil {
		return 0, 0, err
	}
	inserted, updated, err = mi.ix.Upsert(tuples...)
	if err != nil {
		return 0, 0, err
	}
	mi.inserted.Add(float64(inserted))
	mi.updated.Add(float64(updated))
	mi.size.Set(float64(mi.ix.Len()))
	return inserted, updated, nil
}

func (s *Service) lookup(name string) (*managedIndex, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	mi, ok := s.indexes[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return mi, nil
}

// IndexInfo describes one registered index. Durable, WALRecords and
// LastSnapshot surface the persistence state: whether the index is
// backed by storage, how many upsert batches the write-ahead log holds
// beyond the snapshot, and when that snapshot was written (absent until
// the first checkpoint).
type IndexInfo struct {
	Name         string     `json:"name"`
	Size         int        `json:"size"`
	Shards       int        `json:"shards"`
	Profile      string     `json:"profile,omitempty"`
	CreatedAt    time.Time  `json:"created_at"`
	Durable      bool       `json:"durable"`
	WALRecords   int64      `json:"wal_records"`
	LastSnapshot *time.Time `json:"last_snapshot,omitempty"`
}

// ListIndexes returns the registered indexes sorted by name.
func (s *Service) ListIndexes() []IndexInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]IndexInfo, 0, len(s.indexes))
	for _, mi := range s.indexes {
		out = append(out, mi.info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// GetIndex returns one index's info.
func (s *Service) GetIndex(name string) (IndexInfo, error) {
	mi, err := s.lookup(name)
	if err != nil {
		return IndexInfo{}, err
	}
	return mi.info(), nil
}

// LinkRequest is one probe batch: a single key or many, executed as one
// session so the adaptive statistics accumulate across the batch.
type LinkRequest struct {
	Index    string
	Keys     []string
	Strategy string // "", "adaptive", "exact", "approximate"
	// FutilityK configures the session's futility revert (0 = off);
	// recommended for open-world probe streams.
	FutilityK int
	// Timeout is the per-request deadline (0 = service default). It
	// covers queue wait and execution.
	Timeout time.Duration
}

// LinkResponse carries per-key matches (parallel to the request keys)
// plus the session's statistics.
type LinkResponse struct {
	Results [][]adaptivelink.ProbeMatch
	Session adaptivelink.SessionStats
}

// ParseStrategy maps the wire strategy names to the public enum.
func ParseStrategy(s string) (adaptivelink.Strategy, error) {
	switch s {
	case "", "adaptive":
		return adaptivelink.Adaptive, nil
	case "exact":
		return adaptivelink.ExactOnly, nil
	case "approximate":
		return adaptivelink.ApproximateOnly, nil
	default:
		return 0, fmt.Errorf("%w: unknown strategy %q (want adaptive, exact or approximate)", ErrInvalid, s)
	}
}

// linkChunk is the number of keys a link batch probes between deadline
// checks: big enough to amortise routing and snapshot loads, small
// enough that an expired request aborts promptly.
const linkChunk = 256

// Link runs one probe batch through admission control and the worker
// pool. Deadline expiry while queued rejects the request without
// running it; expiry mid-batch aborts with context.DeadlineExceeded.
func (s *Service) Link(ctx context.Context, req LinkRequest) (*LinkResponse, error) {
	strategy, err := ParseStrategy(req.Strategy)
	if err != nil {
		s.countRequest("invalid")
		return nil, err
	}
	if len(req.Keys) == 0 {
		s.countRequest("invalid")
		return nil, fmt.Errorf("%w: no keys", ErrInvalid)
	}
	if len(req.Keys) > s.cfg.MaxBatch {
		s.countRequest("invalid")
		return nil, fmt.Errorf("%w: batch of %d keys exceeds limit %d", ErrInvalid, len(req.Keys), s.cfg.MaxBatch)
	}
	if req.FutilityK < 0 {
		s.countRequest("invalid")
		return nil, fmt.Errorf("%w: negative futility threshold %d", ErrInvalid, req.FutilityK)
	}
	mi, err := s.lookup(req.Index)
	if err != nil {
		s.countRequest("notfound")
		return nil, err
	}

	timeout := req.Timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultDeadline
	}
	if timeout > s.cfg.MaxDeadline {
		timeout = s.cfg.MaxDeadline
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	// Admission: reserve the in-flight slot under the read side of the
	// drain lock, so Drain can never observe a moment where an admitted
	// request is invisible to its wait.
	s.admit.RLock()
	if s.draining {
		s.admit.RUnlock()
		s.countRequest("draining")
		return nil, ErrDraining
	}
	s.pool.reserve()
	s.admit.RUnlock()

	var resp *LinkResponse
	var jobErr error
	err = s.pool.runReserved(ctx, func() {
		sess, err := mi.ix.NewSession(adaptivelink.SessionOptions{
			Strategy:  strategy,
			FutilityK: req.FutilityK,
		})
		if err != nil {
			jobErr = fmt.Errorf("%w: %v", ErrInvalid, err)
			return
		}
		mi.sessions.Inc()
		s.batchSize.Observe(float64(len(req.Keys)))
		if len(req.Keys) > 1 {
			s.batchRequests.Inc()
		}
		// The batch runs through Session.ProbeBatch — routing and
		// snapshot loads amortised per shard-group, groups fanned out
		// concurrently inside this one worker slot — in chunks, so a
		// request whose deadline expires mid-batch is aborted between
		// chunks and never reported complete with partial results.
		chunk := linkChunk
		if s.testProbeDelay != nil {
			chunk = 1 // per-probe delay injection for deadline tests
		}
		results := make([][]adaptivelink.ProbeMatch, len(req.Keys))
		for lo := 0; lo < len(req.Keys); lo += chunk {
			if ctx.Err() != nil {
				jobErr = ctx.Err()
				break
			}
			if s.testProbeDelay != nil {
				s.testProbeDelay()
			}
			hi := lo + chunk
			if hi > len(req.Keys) {
				hi = len(req.Keys)
			}
			copy(results[lo:hi], sess.ProbeBatch(req.Keys[lo:hi]))
		}
		st := sess.Stats()
		mi.probes.Add(float64(st.Probes))
		mi.hits.Add(float64(st.Hits))
		mi.exactMatches.Add(float64(st.ExactMatches))
		mi.approxMatches.Add(float64(st.ApproxMatches))
		mi.escalations.Add(float64(st.Escalations))
		mi.switches.Add(float64(st.Switches))
		mi.modelledCost.Add(st.ModelledCost)
		if jobErr == nil {
			resp = &LinkResponse{Results: results, Session: st}
		}
	})
	if err == nil {
		err = jobErr
	}
	switch {
	case err == nil:
		s.countRequest("ok")
		return resp, nil
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.countRequest("deadline")
		return nil, fmt.Errorf("link %q: %w", req.Index, err)
	default:
		s.countRequest("invalid")
		return nil, err
	}
}

// Draining reports whether graceful drain has begun.
func (s *Service) Draining() bool {
	s.admit.RLock()
	defer s.admit.RUnlock()
	return s.draining
}

// Drain begins graceful shutdown: new link requests are rejected with
// ErrDraining, and Drain returns once every admitted request has
// finished — zero dropped responses — or ctx expires.
func (s *Service) Drain(ctx context.Context) error {
	s.admit.Lock()
	s.draining = true
	s.admit.Unlock()
	return s.pool.drainWait(ctx)
}

// Close stops the worker pool and closes every durable index (flushing
// their logs; with SnapshotOnClose semantics left to explicit snapshot
// requests, restart cost is bounded by the log replay). Call after
// Drain.
func (s *Service) Close() {
	s.pool.close()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, mi := range s.indexes {
		mi.ix.Close()
	}
}

// WriteMetrics renders the Prometheus exposition, refreshing the live
// gauges first.
func (s *Service) WriteMetrics(w interface{ Write([]byte) (int, error) }) error {
	s.queuedGauge.Set(float64(s.pool.queued.Load()))
	s.runningGauge.Set(float64(s.pool.running.Load()))
	return s.reg.WritePrometheus(w)
}

// IndexStats is the per-index slice of a Snapshot.
type IndexStats struct {
	Name          string     `json:"name"`
	Size          int        `json:"size"`
	Shards        int        `json:"shards"`
	Profile       string     `json:"profile,omitempty"`
	CreatedAt     time.Time  `json:"created_at"`
	Durable       bool       `json:"durable"`
	WALRecords    int64      `json:"wal_records"`
	LastSnapshot  *time.Time `json:"last_snapshot,omitempty"`
	Sessions      int64      `json:"sessions"`
	Probes        int64      `json:"probes"`
	Hits          int64      `json:"hits"`
	ExactMatches  int64      `json:"exact_matches"`
	ApproxMatches int64      `json:"approx_matches"`
	Escalations   int64      `json:"escalations"`
	Switches      int64      `json:"switches"`
	Inserted      int64      `json:"inserted"`
	Updated       int64      `json:"updated"`
	ModelledCost  float64    `json:"modelled_cost"`
}

// Snapshot is the /v1/stats payload.
type Snapshot struct {
	UptimeSeconds float64      `json:"uptime_seconds"`
	Draining      bool         `json:"draining"`
	Workers       int          `json:"workers"`
	QueueDepth    int          `json:"queue_depth"`
	Queued        int64        `json:"queued"`
	Running       int64        `json:"running"`
	Indexes       []IndexStats `json:"indexes"`
}

// Snapshot returns a consistent-enough view of the service counters for
// diagnostics (counters are read individually, not under one lock).
func (s *Service) Snapshot() Snapshot {
	snap := Snapshot{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Draining:      s.Draining(),
		Workers:       s.cfg.Workers,
		QueueDepth:    s.cfg.QueueDepth,
		Queued:        s.pool.queued.Load(),
		Running:       s.pool.running.Load(),
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, mi := range s.indexes {
		st := IndexStats{
			Name:          mi.name,
			Size:          mi.ix.Len(),
			Shards:        mi.ix.Options().Shards,
			Profile:       mi.ix.Options().Profile,
			CreatedAt:     mi.created,
			Durable:       mi.ix.Durable(),
			WALRecords:    mi.ix.WALRecords(),
			Sessions:      int64(mi.sessions.Get()),
			Probes:        int64(mi.probes.Get()),
			Hits:          int64(mi.hits.Get()),
			ExactMatches:  int64(mi.exactMatches.Get()),
			ApproxMatches: int64(mi.approxMatches.Get()),
			Escalations:   int64(mi.escalations.Get()),
			Switches:      int64(mi.switches.Get()),
			Inserted:      int64(mi.inserted.Get()),
			Updated:       int64(mi.updated.Get()),
			ModelledCost:  mi.modelledCost.Get(),
		}
		if t := mi.ix.LastSnapshot(); !t.IsZero() {
			st.LastSnapshot = &t
		}
		snap.Indexes = append(snap.Indexes, st)
	}
	sort.Slice(snap.Indexes, func(i, j int) bool { return snap.Indexes[i].Name < snap.Indexes[j].Name })
	return snap
}
