package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"adaptivelink"
	"adaptivelink/internal/cluster"
	"adaptivelink/internal/join"
	"adaptivelink/internal/metrics"
	"adaptivelink/internal/obs"
	"adaptivelink/internal/simfn"
)

// Sentinel errors; the HTTP layer maps them to status codes.
var (
	// ErrDraining rejects work admitted after graceful drain began.
	ErrDraining = errors.New("service draining")
	// ErrNotFound marks an unknown index name.
	ErrNotFound = errors.New("index not found")
	// ErrExists marks a create against an existing name.
	ErrExists = errors.New("index already exists")
	// ErrInvalid marks a malformed request.
	ErrInvalid = errors.New("invalid request")
)

var nameRe = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9_.-]{0,63}$`)

// Config sizes the service. The zero value selects usable defaults.
type Config struct {
	// Workers is the bounded worker pool size: at most this many link
	// requests execute concurrently (default max(2, GOMAXPROCS)).
	Workers int
	// QueueDepth bounds the admission queue: at most this many link
	// requests wait for a worker; beyond it submission blocks the
	// client until space frees or its deadline expires (default 256).
	QueueDepth int
	// DefaultDeadline applies to link requests that set none
	// (default 5s).
	DefaultDeadline time.Duration
	// MaxDeadline caps client-requested deadlines (default 60s), so a
	// request can never hold its admission reservation unboundedly —
	// the bound graceful shutdown relies on.
	MaxDeadline time.Duration
	// MaxBatch caps the keys of one link request (default 4096).
	MaxBatch int
	// DataDir, when set, makes every index durable: index NAME lives in
	// DataDir/NAME as a binary snapshot plus an upsert write-ahead log,
	// creates bulk-load straight into a snapshot, upserts are logged
	// before they are acknowledged, and LoadStored reopens everything on
	// boot. Empty keeps the service purely in-memory.
	DataDir string
	// WALSync is the write-ahead-log fsync policy for durable indexes
	// (default adaptivelink.SyncAlways).
	WALSync adaptivelink.SyncPolicy
	// Logger receives the service's structured log (nil discards it).
	Logger *slog.Logger
	// Trace configures request tracing and the slow-request log; the
	// zero value samples one request in 16 and flags requests over
	// 500ms (see internal/obs for the knobs).
	Trace obs.Config
	// Cluster, when set, turns the service into the cluster router: index
	// state lives on the cluster's node groups and every create, upsert,
	// probe and snapshot is routed through the fan-out client. A routed
	// service is incompatible with DataDir (durability lives on the
	// nodes).
	Cluster *cluster.Client
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers < 2 {
			c.Workers = 2
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 5 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 60 * time.Second
	}
	if c.DefaultDeadline > c.MaxDeadline {
		c.DefaultDeadline = c.MaxDeadline
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4096
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	return c
}

// Service is the resident linkage service: named resident indexes
// probed by many concurrent sessions, with admission control, deadlines,
// metrics and graceful drain. All methods are safe for concurrent use.
type Service struct {
	cfg    Config
	pool   *pool
	reg    *metrics.Registry
	start  time.Time
	log    *slog.Logger
	tracer *obs.Tracer

	admit    sync.RWMutex // serialises admission against Drain
	draining bool

	// createMu serialises index creation and deletion end to end, so a
	// lost create race can never remove or overwrite the directory of
	// the index that won it. Lookups and probes never take it.
	createMu sync.Mutex

	mu      sync.RWMutex
	indexes map[string]*managedIndex

	queuedGauge  *metrics.Value
	runningGauge *metrics.Value
	indexGauge   *metrics.Value
	// requestCounters holds the per-outcome link counters, resolved
	// once so the hot path neither formats labels nor takes the
	// registry lock.
	requestCounters map[string]*metrics.Value
	// batchSize tracks the keys-per-link-request distribution;
	// batchRequests counts the requests that used the batch form.
	batchSize     *metrics.Histogram
	batchRequests *metrics.Value
	// linkLatency covers an admitted link request end to end (queue wait
	// plus execution); queueWait isolates the admission-to-worker slice.
	// linkbench cross-checks its client-side p99 against linkLatency.
	linkLatency  *metrics.Histogram
	queueWait    *metrics.Histogram
	slowRequests *metrics.Value

	// Runtime gauges, refreshed on scrape by WriteMetrics.
	uptimeGauge    *metrics.Value
	goroutineGauge *metrics.Value
	heapGauge      *metrics.Value
	gcCycles       *metrics.Value
	gcPauseTotal   *metrics.Value

	// testProbeDelay, when set (tests only), runs before every probe of
	// a link batch, making slow requests reproducible.
	testProbeDelay func()
}

// managedIndex pairs a resident index with its metric series.
type managedIndex struct {
	name    string
	ix      *adaptivelink.Index
	created time.Time

	size          *metrics.Value
	shards        *metrics.Value
	sessions      *metrics.Value
	probes        *metrics.Value
	hits          *metrics.Value
	exactMatches  *metrics.Value
	approxMatches *metrics.Value
	escalations   *metrics.Value
	switches      *metrics.Value
	inserted      *metrics.Value
	updated       *metrics.Value
	modelledCost  *metrics.Value

	// Engine and storage telemetry series, refreshed on scrape from the
	// index's cumulative counters (Set, not Add — the index is the
	// source of truth).
	engUpserts        *metrics.Value
	engSnapSwaps      *metrics.Value
	engCloneSeconds   *metrics.Value
	engScratchGets    *metrics.Value
	engScratchMisses  *metrics.Value
	walAppends        *metrics.Value
	walAppendSeconds  *metrics.Value
	walFsyncSeconds   *metrics.Value
	checkpoints       *metrics.Value
	checkpointSeconds *metrics.Value
}

// New builds a service with started workers.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	reg := metrics.NewRegistry()
	s := &Service{
		cfg:     cfg,
		pool:    newPool(cfg.Workers, cfg.QueueDepth),
		reg:     reg,
		start:   time.Now(),
		log:     cfg.Logger,
		tracer:  obs.NewTracer(cfg.Trace),
		indexes: make(map[string]*managedIndex),
	}
	if cfg.Cluster != nil {
		cfg.Cluster.EnableMetrics(reg)
	}
	s.queuedGauge = reg.Gauge("adaptivelink_link_queued", "Link requests waiting for a worker.", "")
	s.runningGauge = reg.Gauge("adaptivelink_link_running", "Link requests currently executing.", "")
	s.indexGauge = reg.Gauge("adaptivelink_indexes", "Resident indexes registered.", "")
	s.requestCounters = make(map[string]*metrics.Value)
	for _, code := range []string{"ok", "deadline", "draining", "invalid", "notfound", "unavailable"} {
		s.requestCounters[code] = reg.Counter("adaptivelink_link_requests_total",
			"Link requests by outcome.", fmt.Sprintf("code=%q", code))
	}
	s.batchSize = reg.Histogram("adaptivelink_link_batch_keys",
		"Keys per admitted link request.", "",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096})
	s.batchRequests = reg.Counter("adaptivelink_link_batch_requests_total",
		"Admitted link requests carrying more than one key.", "")
	latencyBuckets := []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
	s.linkLatency = reg.Histogram("adaptivelink_link_latency_seconds",
		"Admitted link request duration, queue wait included.", "", latencyBuckets)
	s.queueWait = reg.Histogram("adaptivelink_link_queue_wait_seconds",
		"Time an admitted link request waited for a worker.", "", latencyBuckets)
	s.slowRequests = reg.Counter("adaptivelink_slow_requests_total",
		"HTTP requests at or over the slow-log threshold.", "")
	s.uptimeGauge = reg.Gauge("adaptivelink_uptime_seconds", "Seconds since the service started.", "")
	s.goroutineGauge = reg.Gauge("adaptivelink_goroutines", "Live goroutines.", "")
	s.heapGauge = reg.Gauge("adaptivelink_heap_alloc_bytes", "Bytes of allocated heap objects.", "")
	s.gcCycles = reg.Gauge("adaptivelink_gc_cycles_total", "Completed GC cycles.", "")
	s.gcPauseTotal = reg.Gauge("adaptivelink_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.", "")
	v := buildVersion()
	reg.Gauge("adaptivelink_build_info", "Build metadata; the value is always 1.",
		fmt.Sprintf("go_version=%q,version=%q,revision=%q", v.GoVersion, v.Version, v.Revision)).Set(1)
	return s
}

// Tracer exposes the request tracer (debug endpoints and tests).
func (s *Service) Tracer() *obs.Tracer { return s.tracer }

// Config returns the effective (defaulted) configuration.
func (s *Service) Config() Config { return s.cfg }

func (s *Service) countRequest(code string) {
	s.requestCounters[code].Inc()
}

func (s *Service) newManaged(name string, ix *adaptivelink.Index) *managedIndex {
	l := func(extra string) string {
		if extra == "" {
			return fmt.Sprintf("index=%q", name)
		}
		return fmt.Sprintf("index=%q,%s", name, extra)
	}
	return &managedIndex{
		name:    name,
		ix:      ix,
		created: time.Now(),
		size: s.reg.Gauge("adaptivelink_index_size",
			"Resident reference tuples per index.", l("")),
		shards: s.reg.Gauge("adaptivelink_index_shards",
			"Shard count of the resident index.", l("")),
		sessions: s.reg.Counter("adaptivelink_sessions_total",
			"Probe sessions opened per index.", l("")),
		probes: s.reg.Counter("adaptivelink_probes_total",
			"Probes served per index.", l("")),
		hits: s.reg.Counter("adaptivelink_probe_hits_total",
			"Probes that found at least one match.", l("")),
		exactMatches: s.reg.Counter("adaptivelink_matches_total",
			"Result pairs per index and kind.", l(`kind="exact"`)),
		approxMatches: s.reg.Counter("adaptivelink_matches_total",
			"Result pairs per index and kind.", l(`kind="approximate"`)),
		escalations: s.reg.Counter("adaptivelink_escalations_total",
			"Probes re-run approximately after a deficit signal.", l("")),
		switches: s.reg.Counter("adaptivelink_session_switches_total",
			"Operator switches enacted by session control loops.", l("")),
		inserted: s.reg.Counter("adaptivelink_upserted_tuples_total",
			"Reference tuples applied by upserts, by effect.", l(`effect="inserted"`)),
		updated: s.reg.Counter("adaptivelink_upserted_tuples_total",
			"Reference tuples applied by upserts, by effect.", l(`effect="updated"`)),
		modelledCost: s.reg.Counter("adaptivelink_modelled_cost_total",
			"Session cost under the paper's weight model, in all-exact-step units.", l("")),
		engUpserts: s.reg.Gauge("adaptivelink_engine_upserts_total",
			"Maintenance batches applied to the resident engine.", l("")),
		engSnapSwaps: s.reg.Gauge("adaptivelink_engine_snapshot_swaps_total",
			"Per-shard snapshot publications (RCU swaps).", l("")),
		engCloneSeconds: s.reg.Gauge("adaptivelink_engine_clone_seconds_total",
			"Cumulative shard-snapshot clone time on the copy-on-write upsert path.", l("")),
		engScratchGets: s.reg.Gauge("adaptivelink_engine_scratch_gets_total",
			"Scratch-pool checkouts on the approximate probe and upsert paths.", l("")),
		engScratchMisses: s.reg.Gauge("adaptivelink_engine_scratch_misses_total",
			"Scratch-pool checkouts that allocated fresh (pool miss).", l("")),
		walAppends: s.reg.Gauge("adaptivelink_wal_appends_total",
			"Acknowledged write-ahead-log appends since open.", l("")),
		walAppendSeconds: s.reg.Gauge("adaptivelink_wal_append_seconds_total",
			"Cumulative WAL append wall time, fsync included.", l("")),
		walFsyncSeconds: s.reg.Gauge("adaptivelink_wal_fsync_seconds_total",
			"Cumulative WAL fsync wall time.", l("")),
		checkpoints: s.reg.Gauge("adaptivelink_checkpoints_total",
			"Snapshot checkpoints since open.", l("")),
		checkpointSeconds: s.reg.Gauge("adaptivelink_checkpoint_seconds_total",
			"Cumulative checkpoint wall time (export, write, WAL reset).", l("")),
	}
}

// refreshTelemetry copies the index's cumulative engine and storage
// counters into the exported series. Called on scrape.
func (mi *managedIndex) refreshTelemetry() {
	es := mi.ix.EngineStats()
	mi.engUpserts.Set(float64(es.Upserts))
	mi.engSnapSwaps.Set(float64(es.SnapshotSwaps))
	mi.engCloneSeconds.Set(es.CloneSeconds)
	mi.engScratchGets.Set(float64(es.ScratchGets))
	mi.engScratchMisses.Set(float64(es.ScratchMisses))
	if st, ok := mi.ix.StorageStats(); ok {
		mi.walAppends.Set(float64(st.WALAppends))
		mi.walAppendSeconds.Set(st.WALAppendSeconds)
		mi.walFsyncSeconds.Set(st.WALFsyncSeconds)
		mi.checkpoints.Set(float64(st.Checkpoints))
		mi.checkpointSeconds.Set(st.CheckpointSeconds)
	}
}

// VersionInfo is the /v1/version payload.
type VersionInfo struct {
	// Version is the main module's version ("(devel)" for local builds).
	Version string `json:"version"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Revision is the VCS commit when stamped into the build.
	Revision string `json:"revision,omitempty"`
	// Modified reports uncommitted changes at build time.
	Modified bool `json:"modified,omitempty"`
	// UptimeSeconds is how long this process has served.
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// buildVersion reads the binary's build metadata once.
var buildVersion = sync.OnceValue(func() VersionInfo {
	v := VersionInfo{Version: "unknown", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return v
	}
	if bi.Main.Version != "" {
		v.Version = bi.Main.Version
	}
	v.GoVersion = bi.GoVersion
	for _, kv := range bi.Settings {
		switch kv.Key {
		case "vcs.revision":
			v.Revision = kv.Value
		case "vcs.modified":
			v.Modified = kv.Value == "true"
		}
	}
	return v
})

// Version reports build metadata and uptime.
func (s *Service) Version() VersionInfo {
	v := buildVersion()
	v.UptimeSeconds = time.Since(s.start).Seconds()
	return v
}

// ClusterInfo is the /v1/cluster payload: the process role and, for a
// router, the routing table with live replica health.
type ClusterInfo struct {
	// Role is "router" for a fan-out process, "node" otherwise (a plain
	// daemon is a cluster of one from the router's point of view).
	Role string `json:"role"`
	// Shards is the cluster's logical shard count (routers only).
	Shards int `json:"shards,omitempty"`
	// Groups is the shard→node assignment with per-replica health
	// (routers only).
	Groups []cluster.GroupHealth `json:"groups,omitempty"`
	// Indexes lists the routed indexes (routers only).
	Indexes []string `json:"indexes,omitempty"`
}

// Cluster reports the process's cluster role; a router probes every
// replica's health on the way (bounded by ctx).
func (s *Service) Cluster(ctx context.Context) ClusterInfo {
	if s.cfg.Cluster == nil {
		return ClusterInfo{Role: "node"}
	}
	return ClusterInfo{
		Role:    "router",
		Shards:  s.cfg.Cluster.Map().Shards,
		Groups:  s.cfg.Cluster.Health(ctx),
		Indexes: s.cfg.Cluster.Names(),
	}
}

// CreateIndex registers a new resident index built from tuples and
// returns its info as stored (the same CreatedAt later reads report).
// With a data dir configured the index is durable from birth: the
// initial tuples bulk-load straight into a snapshot in DataDir/name
// (never through the log), and every later upsert is logged.
func (s *Service) CreateIndex(name string, opts adaptivelink.IndexOptions, tuples []adaptivelink.Tuple) (IndexInfo, error) {
	if !nameRe.MatchString(name) {
		return IndexInfo{}, fmt.Errorf("%w: index name %q (want %s)", ErrInvalid, name, nameRe)
	}
	s.createMu.Lock()
	defer s.createMu.Unlock()
	if _, err := s.lookup(name); err == nil {
		return IndexInfo{}, fmt.Errorf("%w: %q", ErrExists, name)
	}
	var ix *adaptivelink.Index
	var err error
	if s.cfg.Cluster != nil {
		ix, err = s.createClusterIndex(name, opts, tuples)
		if err != nil {
			return IndexInfo{}, err
		}
	} else if s.cfg.DataDir != "" {
		opts.Storage.Dir = filepath.Join(s.cfg.DataDir, name)
		opts.Storage.WALSync = s.cfg.WALSync
		if _, serr := os.Stat(opts.Storage.Dir); serr == nil {
			return IndexInfo{}, fmt.Errorf("%w: %q (its directory survives on disk; restart to reload it or remove it)", ErrExists, name)
		}
		ix, err = adaptivelink.BulkLoad(adaptivelink.FromTuples(tuples), opts)
	} else {
		ix, err = adaptivelink.NewIndex(adaptivelink.FromTuples(tuples), opts)
	}
	if err != nil {
		return IndexInfo{}, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	mi := s.newManaged(name, ix)
	s.indexes[name] = mi
	mi.size.Set(float64(ix.Len()))
	mi.shards.Set(float64(ix.Options().Shards))
	mi.inserted.Add(float64(ix.Len()))
	s.indexGauge.Set(float64(len(s.indexes)))
	s.log.Info("created index", "index", name, "tuples", ix.Len(),
		"shards", ix.Options().Shards, "durable", ix.Durable())
	return mi.info(), nil
}

// createClusterIndex registers the index with the fan-out client (which
// creates it empty on every node), wraps the cluster resident in the
// standard facade — the router runs the exact probe/session code path a
// single process would, which is what keeps routed responses
// byte-identical — and loads the initial tuples through the routed
// upsert path so they land on the owning nodes' write-ahead logs.
func (s *Service) createClusterIndex(name string, opts adaptivelink.IndexOptions, tuples []adaptivelink.Tuple) (*adaptivelink.Index, error) {
	// The engine configuration the nodes match under. Defaults mirror
	// IndexOptions resolution; Profile stays empty on the nodes — the
	// router owns normalization and ships already-normalised keys.
	ecfg := join.Config{
		Q:       opts.Q,
		Theta:   opts.Theta,
		Measure: simfn.TokenMeasure(opts.Measure),
		Initial: join.LexRex,
	}
	if ecfg.Q == 0 {
		ecfg.Q = 3
	}
	if ecfg.Theta == 0 {
		ecfg.Theta = join.DefaultTheta
	}
	// Shards reported for a routed index is the cluster's logical shard
	// count — the placement constant — not a node-local structure.
	opts.Shards = s.cfg.Cluster.Map().Shards
	if err := s.cfg.Cluster.CreateIndex(name, ecfg); err != nil {
		return nil, err
	}
	res, err := s.cfg.Cluster.Resident(name)
	if err != nil {
		return nil, err
	}
	ix, err := adaptivelink.NewRemoteIndex(res, opts)
	if err != nil {
		s.cfg.Cluster.DeleteIndex(name)
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	// The single-process create loads tuples through a Source, which
	// assigns sequential IDs in arrival order (FromTuples discards wire
	// IDs; only upserts preserve them). Mirror it exactly — the routed
	// answers must be byte-identical, IDs included.
	seq := make([]adaptivelink.Tuple, len(tuples))
	for i, t := range tuples {
		seq[i] = adaptivelink.Tuple{ID: i, Key: t.Key, Attrs: t.Attrs}
	}
	if _, _, err := ix.Upsert(seq...); err != nil {
		s.cfg.Cluster.DeleteIndex(name)
		return nil, err
	}
	return ix, nil
}

// LoadStored reopens every index directory under the configured data
// dir — snapshot load plus write-ahead-log replay per index — and
// registers the recovered indexes. Call once on boot, before serving.
// Returns the recovered names, sorted.
func (s *Service) LoadStored() ([]string, error) {
	if s.cfg.DataDir == "" {
		return nil, nil
	}
	entries, err := os.ReadDir(s.cfg.DataDir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	s.createMu.Lock()
	defer s.createMu.Unlock()
	var names []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() || !nameRe.MatchString(name) {
			continue
		}
		dir := filepath.Join(s.cfg.DataDir, name)
		stored, err := adaptivelink.IsIndexDir(dir)
		if err != nil {
			return names, fmt.Errorf("loading %s: %w", dir, err)
		}
		if !stored {
			continue // not ours: no snapshot, no log
		}
		t0 := time.Now()
		ix, err := adaptivelink.Open(dir, adaptivelink.IndexOptions{
			Storage: adaptivelink.StorageOptions{WALSync: s.cfg.WALSync},
		})
		if err != nil {
			return names, fmt.Errorf("loading %s: %w", dir, err)
		}
		ri := ix.RecoveryInfo()
		if ri.TornTailTruncated {
			// A crash mid-append left a partial frame; recovery dropped it
			// and truncated the log to its intact prefix. Worth a warning:
			// the final unacknowledged batch (at most one) is gone.
			s.log.Warn("wal torn tail truncated", "index", name, "dir", dir,
				"replayed_batches", ri.WALBatchesReplayed)
		}
		s.log.Info("reloaded index", "index", name, "tuples", ix.Len(),
			"snapshot_tuples", ri.SnapshotTuples, "wal_batches", ri.WALBatchesReplayed,
			"duration", time.Since(t0).Round(time.Millisecond))
		s.mu.Lock()
		mi := s.newManaged(name, ix)
		s.indexes[name] = mi
		mi.size.Set(float64(ix.Len()))
		mi.shards.Set(float64(ix.Options().Shards))
		s.indexGauge.Set(float64(len(s.indexes)))
		s.mu.Unlock()
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// SnapshotIndex checkpoints a durable index in place: its current state
// replaces the snapshot atomically and the now-redundant log is reset,
// making the next boot a pure snapshot load. Invalid for in-memory
// indexes.
func (s *Service) SnapshotIndex(name string) (IndexInfo, error) {
	mi, err := s.lookup(name)
	if err != nil {
		return IndexInfo{}, err
	}
	if s.cfg.Cluster != nil {
		// Routed: checkpoint every replica of every group in place.
		t0 := time.Now()
		if err := s.cfg.Cluster.SnapshotIndex(name); err != nil {
			return IndexInfo{}, err
		}
		s.log.Info("checkpointed cluster index", "index", name, "tuples", mi.ix.Len(),
			"duration", time.Since(t0).Round(time.Millisecond))
		return mi.info(), nil
	}
	if !mi.ix.Durable() {
		return IndexInfo{}, fmt.Errorf("%w: index %q is in-memory (start the server with a data dir for durable indexes)", ErrInvalid, name)
	}
	t0 := time.Now()
	if err := mi.ix.Save(""); err != nil {
		return IndexInfo{}, err
	}
	s.log.Info("checkpointed index", "index", name, "tuples", mi.ix.Len(),
		"duration", time.Since(t0).Round(time.Millisecond))
	return mi.info(), nil
}

// DigestIndex fingerprints the named index's content for replica
// comparison. Nodes only: a router holds no replica state of its own —
// it asks the nodes and compares.
func (s *Service) DigestIndex(name string) (adaptivelink.IndexDigest, error) {
	if s.cfg.Cluster != nil {
		return adaptivelink.IndexDigest{}, fmt.Errorf("%w: a router holds no replica state; digests come from the nodes", ErrInvalid)
	}
	mi, err := s.lookup(name)
	if err != nil {
		return adaptivelink.IndexDigest{}, err
	}
	d, err := mi.ix.Digest()
	if err != nil {
		return adaptivelink.IndexDigest{}, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	return d, nil
}

// ExportIndex streams the named index's state in the snapshot format —
// the sending half of a replica resync. Nodes only.
func (s *Service) ExportIndex(name string, w io.Writer) error {
	if s.cfg.Cluster != nil {
		return fmt.Errorf("%w: a router holds no replica state; export from the nodes", ErrInvalid)
	}
	mi, err := s.lookup(name)
	if err != nil {
		return err
	}
	return mi.ix.ExportSnapshotTo(w)
}

// ResyncIndex replaces the named index's content wholesale with the
// given snapshot bytes (as exported from a healthy replica) — the
// receiving half of anti-entropy repair. An index the node does not
// have yet is bootstrapped from the snapshot (a replacement replica
// arrives blank), adopting the snapshot's stored configuration; with a
// data dir it is persisted before it starts serving. Nodes only.
func (s *Service) ResyncIndex(name string, data []byte) (IndexInfo, error) {
	if s.cfg.Cluster != nil {
		return IndexInfo{}, fmt.Errorf("%w: a router holds no replica state; resync targets the nodes", ErrInvalid)
	}
	if !nameRe.MatchString(name) {
		return IndexInfo{}, fmt.Errorf("%w: index name %q (want %s)", ErrInvalid, name, nameRe)
	}
	s.createMu.Lock()
	defer s.createMu.Unlock()
	if mi, err := s.lookup(name); err == nil {
		t0 := time.Now()
		if err := mi.ix.RestoreSnapshot(data); err != nil {
			return IndexInfo{}, fmt.Errorf("%w: %v", ErrInvalid, err)
		}
		mi.size.Set(float64(mi.ix.Len()))
		s.log.Info("resynced index", "index", name, "tuples", mi.ix.Len(),
			"duration", time.Since(t0).Round(time.Millisecond))
		return mi.info(), nil
	}
	t0 := time.Now()
	ix, err := adaptivelink.ImportSnapshot(data, adaptivelink.IndexOptions{})
	if err != nil {
		return IndexInfo{}, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if s.cfg.DataDir != "" {
		dir := filepath.Join(s.cfg.DataDir, name)
		if _, serr := os.Stat(dir); serr == nil {
			return IndexInfo{}, fmt.Errorf("%w: %q has a surviving directory the boot scan did not load; remove it before resyncing", ErrInvalid, name)
		}
		if err := ix.Save(dir); err != nil {
			return IndexInfo{}, err
		}
		ix, err = adaptivelink.Open(dir, adaptivelink.IndexOptions{
			Storage: adaptivelink.StorageOptions{WALSync: s.cfg.WALSync},
		})
		if err != nil {
			return IndexInfo{}, err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	mi := s.newManaged(name, ix)
	s.indexes[name] = mi
	mi.size.Set(float64(ix.Len()))
	mi.shards.Set(float64(ix.Options().Shards))
	s.indexGauge.Set(float64(len(s.indexes)))
	s.log.Info("bootstrapped index from resync", "index", name, "tuples", ix.Len(),
		"durable", ix.Durable(), "duration", time.Since(t0).Round(time.Millisecond))
	return mi.info(), nil
}

func (mi *managedIndex) info() IndexInfo {
	info := IndexInfo{
		Name: mi.name, Size: mi.ix.Len(), Shards: mi.ix.Options().Shards, CreatedAt: mi.created,
		Profile: mi.ix.Options().Profile,
		Durable: mi.ix.Durable(), WALRecords: mi.ix.WALRecords(),
	}
	if t := mi.ix.LastSnapshot(); !t.IsZero() {
		info.LastSnapshot = &t
	}
	return info
}

// DeleteIndex removes an index and its exported metric series (a
// recreated index starts its counters from zero); in-flight sessions
// on it complete against the released object. A durable index's
// directory is deleted with it — DELETE means the data, not just the
// registration.
func (s *Service) DeleteIndex(name string) error {
	s.createMu.Lock()
	defer s.createMu.Unlock()
	s.mu.Lock()
	mi, ok := s.indexes[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(s.indexes, name)
	s.reg.DeleteSeries(fmt.Sprintf("index=%q", name))
	s.indexGauge.Set(float64(len(s.indexes)))
	s.mu.Unlock()
	s.log.Info("deleted index", "index", name, "durable", mi.ix.Durable())
	if s.cfg.Cluster != nil {
		return s.cfg.Cluster.DeleteIndex(name)
	}
	if mi.ix.Durable() {
		if err := mi.ix.Close(); err != nil {
			return err
		}
		return os.RemoveAll(filepath.Join(s.cfg.DataDir, name))
	}
	return nil
}

// Upsert applies reference maintenance to the named index at a
// quiescent point (no probe observes a half-applied batch).
func (s *Service) Upsert(name string, tuples []adaptivelink.Tuple) (inserted, updated int, err error) {
	mi, err := s.lookup(name)
	if err != nil {
		return 0, 0, err
	}
	inserted, updated, err = mi.ix.Upsert(tuples...)
	if err != nil {
		return 0, 0, err
	}
	mi.inserted.Add(float64(inserted))
	mi.updated.Add(float64(updated))
	mi.size.Set(float64(mi.ix.Len()))
	return inserted, updated, nil
}

func (s *Service) lookup(name string) (*managedIndex, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	mi, ok := s.indexes[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return mi, nil
}

// IndexInfo describes one registered index. Durable, WALRecords and
// LastSnapshot surface the persistence state: whether the index is
// backed by storage, how many upsert batches the write-ahead log holds
// beyond the snapshot, and when that snapshot was written (absent until
// the first checkpoint).
type IndexInfo struct {
	Name         string     `json:"name"`
	Size         int        `json:"size"`
	Shards       int        `json:"shards"`
	Profile      string     `json:"profile,omitempty"`
	CreatedAt    time.Time  `json:"created_at"`
	Durable      bool       `json:"durable"`
	WALRecords   int64      `json:"wal_records"`
	LastSnapshot *time.Time `json:"last_snapshot,omitempty"`
}

// ListIndexes returns the registered indexes sorted by name.
func (s *Service) ListIndexes() []IndexInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]IndexInfo, 0, len(s.indexes))
	for _, mi := range s.indexes {
		out = append(out, mi.info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// GetIndex returns one index's info.
func (s *Service) GetIndex(name string) (IndexInfo, error) {
	mi, err := s.lookup(name)
	if err != nil {
		return IndexInfo{}, err
	}
	return mi.info(), nil
}

// LinkRequest is one probe batch: a single key or many, executed as one
// session so the adaptive statistics accumulate across the batch.
type LinkRequest struct {
	Index    string
	Keys     []string
	Strategy string // "", "adaptive", "exact", "approximate"
	// FutilityK configures the session's futility revert (0 = off);
	// recommended for open-world probe streams.
	FutilityK int
	// Timeout is the per-request deadline (0 = service default). It
	// covers queue wait and execution.
	Timeout time.Duration
	// Explain captures per-key decision traces (mode used, escalation,
	// the controller's activations with observed/expected hits and
	// reasons). It allocates per probe; leave off on hot paths.
	Explain bool
}

// LinkResponse carries per-key matches (parallel to the request keys)
// plus the session's statistics. Decisions is populated only for
// explain requests, parallel to Results.
type LinkResponse struct {
	Results   [][]adaptivelink.ProbeMatch
	Session   adaptivelink.SessionStats
	Decisions []adaptivelink.KeyDecision
}

// ParseStrategy maps the wire strategy names to the public enum.
func ParseStrategy(s string) (adaptivelink.Strategy, error) {
	switch s {
	case "", "adaptive":
		return adaptivelink.Adaptive, nil
	case "exact":
		return adaptivelink.ExactOnly, nil
	case "approximate":
		return adaptivelink.ApproximateOnly, nil
	default:
		return 0, fmt.Errorf("%w: unknown strategy %q (want adaptive, exact or approximate)", ErrInvalid, s)
	}
}

// linkChunk is the number of keys a link batch probes between deadline
// checks: big enough to amortise routing and snapshot loads, small
// enough that an expired request aborts promptly.
const linkChunk = 256

// Link runs one probe batch through admission control and the worker
// pool. Deadline expiry while queued rejects the request without
// running it; expiry mid-batch aborts with context.DeadlineExceeded.
func (s *Service) Link(ctx context.Context, req LinkRequest) (*LinkResponse, error) {
	strategy, err := ParseStrategy(req.Strategy)
	if err != nil {
		s.countRequest("invalid")
		return nil, err
	}
	if len(req.Keys) == 0 {
		s.countRequest("invalid")
		return nil, fmt.Errorf("%w: no keys", ErrInvalid)
	}
	if len(req.Keys) > s.cfg.MaxBatch {
		s.countRequest("invalid")
		return nil, fmt.Errorf("%w: batch of %d keys exceeds limit %d", ErrInvalid, len(req.Keys), s.cfg.MaxBatch)
	}
	if req.FutilityK < 0 {
		s.countRequest("invalid")
		return nil, fmt.Errorf("%w: negative futility threshold %d", ErrInvalid, req.FutilityK)
	}
	mi, err := s.lookup(req.Index)
	if err != nil {
		s.countRequest("notfound")
		return nil, err
	}

	timeout := req.Timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultDeadline
	}
	if timeout > s.cfg.MaxDeadline {
		timeout = s.cfg.MaxDeadline
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	// Routed mode: bind a request-scoped cluster view — it inherits the
	// request budget (per-node deadlines derive from ctx) and carries the
	// fan-out's sticky transport error — and run the standard session
	// machinery over it.
	ix := mi.ix
	var view *cluster.View
	if s.cfg.Cluster != nil {
		view, err = s.cfg.Cluster.Bind(ctx, req.Index)
		if err != nil {
			s.countRequest("notfound")
			return nil, fmt.Errorf("%w: %q", ErrNotFound, req.Index)
		}
		ix = mi.ix.WithResident(view)
	}

	// Tracing: tr is nil for unsampled requests; every use below is
	// nil-safe and allocation-free in that case.
	tr := obs.TraceFrom(ctx)
	tr.SetTarget(req.Index, len(req.Keys))

	// Admission: reserve the in-flight slot under the read side of the
	// drain lock, so Drain can never observe a moment where an admitted
	// request is invisible to its wait.
	s.admit.RLock()
	if s.draining {
		s.admit.RUnlock()
		s.countRequest("draining")
		return nil, ErrDraining
	}
	s.pool.reserve()
	s.admit.RUnlock()

	admitted := time.Now()
	var resp *LinkResponse
	var jobErr error
	err = s.pool.runReserved(ctx, func() {
		wait := time.Since(admitted)
		s.queueWait.Observe(wait.Seconds())
		tr.AddSpanDur("queue", admitted, wait)
		ss := time.Now()
		sess, err := ix.NewSession(adaptivelink.SessionOptions{
			Strategy:  strategy,
			FutilityK: req.FutilityK,
			Explain:   req.Explain,
		})
		tr.AddSpan("session", ss)
		if err != nil {
			jobErr = fmt.Errorf("%w: %v", ErrInvalid, err)
			return
		}
		mi.sessions.Inc()
		s.batchSize.Observe(float64(len(req.Keys)))
		if len(req.Keys) > 1 {
			s.batchRequests.Inc()
		}
		// The batch runs through Session.ProbeBatch — routing and
		// snapshot loads amortised per shard-group, groups fanned out
		// concurrently inside this one worker slot — in chunks, so a
		// request whose deadline expires mid-batch is aborted between
		// chunks and never reported complete with partial results.
		chunk := linkChunk
		if s.testProbeDelay != nil {
			chunk = 1 // per-probe delay injection for deadline tests
		}
		results := make([][]adaptivelink.ProbeMatch, len(req.Keys))
		for lo := 0; lo < len(req.Keys); lo += chunk {
			if ctx.Err() != nil {
				jobErr = ctx.Err()
				break
			}
			if s.testProbeDelay != nil {
				s.testProbeDelay()
			}
			hi := lo + chunk
			if hi > len(req.Keys) {
				hi = len(req.Keys)
			}
			cs := time.Now()
			copy(results[lo:hi], sess.ProbeBatch(req.Keys[lo:hi]))
			tr.AddSpan("probe", cs)
			// A routed chunk that lost a node group mid-fan-out recorded
			// the failure on the view; fail the batch as a whole — never a
			// silent partial result.
			if view != nil {
				if terr := view.TransportErr(); terr != nil {
					jobErr = terr
					break
				}
			}
		}
		st := sess.Stats()
		mi.probes.Add(float64(st.Probes))
		mi.hits.Add(float64(st.Hits))
		mi.exactMatches.Add(float64(st.ExactMatches))
		mi.approxMatches.Add(float64(st.ApproxMatches))
		mi.escalations.Add(float64(st.Escalations))
		mi.switches.Add(float64(st.Switches))
		mi.modelledCost.Add(st.ModelledCost)
		if jobErr == nil {
			resp = &LinkResponse{Results: results, Session: st, Decisions: sess.Decisions()}
		}
	})
	if err == nil {
		err = jobErr
	}
	s.linkLatency.Observe(time.Since(admitted).Seconds())
	switch {
	case err == nil:
		s.countRequest("ok")
		return resp, nil
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.countRequest("deadline")
		s.log.Warn("link deadline exceeded", "request_id", obs.RequestID(ctx),
			"index", req.Index, "keys", len(req.Keys), "timeout", timeout)
		return nil, fmt.Errorf("link %q: %w", req.Index, err)
	case errors.Is(err, cluster.ErrNodeUnavailable):
		s.countRequest("unavailable")
		s.log.Warn("link node unavailable", "request_id", obs.RequestID(ctx),
			"index", req.Index, "keys", len(req.Keys), "error", err)
		return nil, err
	default:
		s.countRequest("invalid")
		return nil, err
	}
}

// Draining reports whether graceful drain has begun.
func (s *Service) Draining() bool {
	s.admit.RLock()
	defer s.admit.RUnlock()
	return s.draining
}

// Drain begins graceful shutdown: new link requests are rejected with
// ErrDraining, and Drain returns once every admitted request has
// finished — zero dropped responses — or ctx expires.
func (s *Service) Drain(ctx context.Context) error {
	s.admit.Lock()
	s.draining = true
	s.admit.Unlock()
	s.log.Info("drain started", "queued", s.pool.queued.Load(), "running", s.pool.running.Load())
	err := s.pool.drainWait(ctx)
	if err != nil {
		s.log.Warn("drain aborted", "error", err)
	} else {
		s.log.Info("drain complete")
	}
	return err
}

// Close stops the worker pool and closes every durable index (flushing
// their logs; with SnapshotOnClose semantics left to explicit snapshot
// requests, restart cost is bounded by the log replay). Call after
// Drain.
func (s *Service) Close() {
	s.pool.close()
	if s.cfg.Cluster != nil {
		// Stop the router's background goroutines (hint drainers, the
		// health prober, anti-entropy) before tearing indexes down.
		s.cfg.Cluster.Close()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, mi := range s.indexes {
		mi.ix.Close()
	}
}

// WriteMetrics renders the Prometheus exposition, refreshing the live
// gauges first.
func (s *Service) WriteMetrics(w interface{ Write([]byte) (int, error) }) error {
	s.queuedGauge.Set(float64(s.pool.queued.Load()))
	s.runningGauge.Set(float64(s.pool.running.Load()))
	s.uptimeGauge.Set(time.Since(s.start).Seconds())
	s.goroutineGauge.Set(float64(runtime.NumGoroutine()))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.heapGauge.Set(float64(ms.HeapAlloc))
	s.gcCycles.Set(float64(ms.NumGC))
	s.gcPauseTotal.Set(float64(ms.PauseTotalNs) / 1e9)
	s.mu.RLock()
	for _, mi := range s.indexes {
		mi.refreshTelemetry()
	}
	s.mu.RUnlock()
	return s.reg.WritePrometheus(w)
}

// IndexStats is the per-index slice of a Snapshot.
type IndexStats struct {
	Name          string     `json:"name"`
	Size          int        `json:"size"`
	Shards        int        `json:"shards"`
	Profile       string     `json:"profile,omitempty"`
	CreatedAt     time.Time  `json:"created_at"`
	Durable       bool       `json:"durable"`
	WALRecords    int64      `json:"wal_records"`
	LastSnapshot  *time.Time `json:"last_snapshot,omitempty"`
	Sessions      int64      `json:"sessions"`
	Probes        int64      `json:"probes"`
	Hits          int64      `json:"hits"`
	ExactMatches  int64      `json:"exact_matches"`
	ApproxMatches int64      `json:"approx_matches"`
	Escalations   int64      `json:"escalations"`
	Switches      int64      `json:"switches"`
	Inserted      int64      `json:"inserted"`
	Updated       int64      `json:"updated"`
	ModelledCost  float64    `json:"modelled_cost"`
}

// Snapshot is the /v1/stats payload.
type Snapshot struct {
	UptimeSeconds float64      `json:"uptime_seconds"`
	Draining      bool         `json:"draining"`
	Workers       int          `json:"workers"`
	QueueDepth    int          `json:"queue_depth"`
	Queued        int64        `json:"queued"`
	Running       int64        `json:"running"`
	Indexes       []IndexStats `json:"indexes"`
}

// Snapshot returns a consistent-enough view of the service counters for
// diagnostics (counters are read individually, not under one lock).
func (s *Service) Snapshot() Snapshot {
	snap := Snapshot{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Draining:      s.Draining(),
		Workers:       s.cfg.Workers,
		QueueDepth:    s.cfg.QueueDepth,
		Queued:        s.pool.queued.Load(),
		Running:       s.pool.running.Load(),
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, mi := range s.indexes {
		st := IndexStats{
			Name:          mi.name,
			Size:          mi.ix.Len(),
			Shards:        mi.ix.Options().Shards,
			Profile:       mi.ix.Options().Profile,
			CreatedAt:     mi.created,
			Durable:       mi.ix.Durable(),
			WALRecords:    mi.ix.WALRecords(),
			Sessions:      int64(mi.sessions.Get()),
			Probes:        int64(mi.probes.Get()),
			Hits:          int64(mi.hits.Get()),
			ExactMatches:  int64(mi.exactMatches.Get()),
			ApproxMatches: int64(mi.approxMatches.Get()),
			Escalations:   int64(mi.escalations.Get()),
			Switches:      int64(mi.switches.Get()),
			Inserted:      int64(mi.inserted.Get()),
			Updated:       int64(mi.updated.Get()),
			ModelledCost:  mi.modelledCost.Get(),
		}
		if t := mi.ix.LastSnapshot(); !t.IsZero() {
			st.LastSnapshot = &t
		}
		snap.Indexes = append(snap.Indexes, st)
	}
	sort.Slice(snap.Indexes, func(i, j int) bool { return snap.Indexes[i].Name < snap.Indexes[j].Name })
	return snap
}
