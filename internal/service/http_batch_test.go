package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestHTTPLinkEmptyBatch: an explicitly empty key batch is a 400, not a
// silently empty 200.
func TestHTTPLinkEmptyBatch(t *testing.T) {
	_, ts := newTestServer(t)
	createAtlas(t, ts.URL)
	code, body := doJSON(t, "POST", ts.URL+"/v1/link", LinkRequestDTO{Index: "atlas", Keys: []string{}})
	if code != http.StatusBadRequest {
		t.Fatalf("empty batch: %d %s", code, body)
	}
	if !strings.Contains(string(body), "no keys") {
		t.Fatalf("empty batch error opaque: %s", body)
	}
}

// TestHTTPLinkBatchLargerThanQueue: one link request may carry far more
// keys than the admission queue has slots — the queue bounds concurrent
// requests, not keys — and every key gets its result in order.
func TestHTTPLinkBatchLargerThanQueue(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, MaxBatch: 8192})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(NewHandler(s))
	t.Cleanup(ts.Close)
	createAtlas(t, ts.URL)

	// 700 keys: several linkChunk multiples plus a remainder.
	keys := make([]string, 700)
	for i := range keys {
		if i%3 == 0 {
			keys[i] = "lago di como est"
		} else {
			keys[i] = fmt.Sprintf("missing key %d", i)
		}
	}
	code, body := doJSON(t, "POST", ts.URL+"/v1/link", LinkRequestDTO{
		Index: "atlas", Keys: keys, Strategy: "exact",
	})
	if code != http.StatusOK {
		t.Fatalf("oversized batch: %d %s", code, body)
	}
	var resp LinkResponseDTO
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(resp.Results) != len(keys) {
		t.Fatalf("results = %d, want %d", len(resp.Results), len(keys))
	}
	if resp.Session.Probes != len(keys) {
		t.Fatalf("session probes = %d, want %d", resp.Session.Probes, len(keys))
	}
	for i, kr := range resp.Results {
		if kr.Key != keys[i] {
			t.Fatalf("result %d key %q, want %q", i, kr.Key, keys[i])
		}
		hit := len(kr.Matches) > 0
		if want := i%3 == 0; hit != want {
			t.Fatalf("result %d (%q): hit=%v, want %v", i, kr.Key, hit, want)
		}
	}
}

// TestHTTPLinkDeadlineMidBatch: a deadline expiring while a batch is
// executing yields a 504, never a 200 carrying the partial results.
func TestHTTPLinkDeadlineMidBatch(t *testing.T) {
	s := New(Config{Workers: 1})
	t.Cleanup(s.Close)
	s.testProbeDelay = func() { time.Sleep(20 * time.Millisecond) }
	ts := httptest.NewServer(NewHandler(s))
	t.Cleanup(ts.Close)
	createAtlas(t, ts.URL)

	keys := make([]string, 50)
	for i := range keys {
		keys[i] = "lago di como est"
	}
	code, body := doJSON(t, "POST", ts.URL+"/v1/link", LinkRequestDTO{
		Index: "atlas", Keys: keys, TimeoutMillis: 50,
	})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("mid-batch deadline: %d %s (partial results returned as complete?)", code, body)
	}
	if strings.Contains(string(body), `"results"`) {
		t.Fatalf("expired batch leaked results: %s", body)
	}
}

// TestHTTPCreateIndexShards: the wire shards option reaches the index,
// is reported back in index info and surfaces as a gauge; batch links
// feed the batch-size histogram.
func TestHTTPCreateIndexShards(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := doJSON(t, "POST", ts.URL+"/v1/indexes", CreateIndexRequest{
		Name:   "sharded",
		Shards: 3,
		Tuples: []TupleDTO{{Key: "via monte bianco nord 12"}, {Key: "lago di como est"}},
	})
	if code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, body)
	}
	var info IndexInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if info.Shards != 3 {
		t.Fatalf("info.Shards = %d, want 3", info.Shards)
	}
	// A negative shard count is rejected as invalid.
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/indexes", CreateIndexRequest{
		Name: "bad", Shards: -1, Tuples: []TupleDTO{{Key: "x"}},
	}); code != http.StatusBadRequest {
		t.Fatalf("negative shards: %d", code)
	}

	doJSON(t, "POST", ts.URL+"/v1/link", LinkRequestDTO{
		Index: "sharded", Keys: []string{"via monte bianco nord 12", "lago di como est", "absent"},
	})
	code, body = doJSON(t, "GET", ts.URL+"/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	text := string(body)
	for _, want := range []string{
		`adaptivelink_index_shards{index="sharded"} 3`,
		"adaptivelink_link_batch_requests_total 1",
		`adaptivelink_link_batch_keys_bucket{le="4"} 1`,
		"adaptivelink_link_batch_keys_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
	// /v1/stats mirrors the shard count.
	code, body = doJSON(t, "GET", ts.URL+"/v1/stats", nil)
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if len(snap.Indexes) != 1 || snap.Indexes[0].Shards != 3 {
		t.Fatalf("stats shards = %+v", snap.Indexes)
	}
}
