package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"adaptivelink"
	"adaptivelink/internal/cluster"
	"adaptivelink/internal/obs"
)

// Wire DTOs — the documented v1 contract. The JSON API is deliberately
// small: tuples are key + optional payload attributes, and a link
// request probes one index with one or many keys as a single session.
//
// Contract rules for /v1/:
//
//   - Every non-2xx response carries the unified error envelope
//     {"error":{"code":"...","message":"..."}} (ErrorDTO). Codes are a
//     closed set: invalid, not_found, exists, draining, deadline,
//     internal, node_unavailable. Clients branch on code; message is
//     for humans.
//   - Fields are only ever added, never renamed or removed, within v1;
//     incompatible changes get a new path prefix.
//   - Index info (GET /v1/indexes, GET /v1/indexes/{name}) and
//     /v1/stats report persistence state per index: "durable",
//     "wal_records" (upsert batches logged past the snapshot) and
//     "last_snapshot" (omitted until the first checkpoint).

// TupleDTO is a reference tuple on the wire.
type TupleDTO struct {
	ID    int      `json:"id,omitempty"`
	Key   string   `json:"key"`
	Attrs []string `json:"attrs,omitempty"`
}

// CreateIndexRequest is the POST /v1/indexes payload.
type CreateIndexRequest struct {
	Name string `json:"name"`
	// Q, Theta and Measure configure matching (0/"" = defaults).
	Q       int     `json:"q,omitempty"`
	Theta   float64 `json:"theta,omitempty"`
	Measure string  `json:"measure,omitempty"`
	// Shards is the index's shard count (0 = one per server hardware
	// thread).
	Shards int `json:"shards,omitempty"`
	// Profile names the normalization pipeline applied to every key on
	// upsert and probe ("" = index keys verbatim); unknown names are a
	// 400 listing the registry.
	Profile string     `json:"profile,omitempty"`
	Tuples  []TupleDTO `json:"tuples"`
}

// UpsertRequest is the POST /v1/indexes/{name}/upsert payload.
type UpsertRequest struct {
	Tuples []TupleDTO `json:"tuples"`
}

// UpsertResponse reports an upsert's effect.
type UpsertResponse struct {
	Inserted int `json:"inserted"`
	Updated  int `json:"updated"`
	Size     int `json:"size"`
}

// LinkRequestDTO is the POST /v1/link payload. Key and Keys may not
// both be set; TimeoutMillis of 0 selects the service default. Explain
// opts into per-key decision traces in the response (more allocation
// per probe — a debugging tool, not a hot-path default).
type LinkRequestDTO struct {
	Index         string   `json:"index"`
	Key           string   `json:"key,omitempty"`
	Keys          []string `json:"keys,omitempty"`
	Strategy      string   `json:"strategy,omitempty"`
	FutilityK     int      `json:"futility_k,omitempty"`
	TimeoutMillis int      `json:"timeout_ms,omitempty"`
	Explain       bool     `json:"explain,omitempty"`
}

// MatchDTO is one probe result on the wire.
type MatchDTO struct {
	RefID      int      `json:"ref_id"`
	RefKey     string   `json:"ref_key"`
	RefAttrs   []string `json:"ref_attrs,omitempty"`
	Similarity float64  `json:"similarity"`
	Exact      bool     `json:"exact"`
}

// KeyResultDTO pairs one probed key with its matches.
type KeyResultDTO struct {
	Key     string     `json:"key"`
	Matches []MatchDTO `json:"matches"`
}

// LinkResponseDTO is the POST /v1/link response. Decisions appears
// only for explain requests, parallel to Results.
type LinkResponseDTO struct {
	Results   []KeyResultDTO             `json:"results"`
	Session   adaptivelink.SessionStats  `json:"session"`
	Decisions []adaptivelink.KeyDecision `json:"decisions,omitempty"`
}

// SlowlogDTO is the GET /v1/debug/slowlog payload.
type SlowlogDTO struct {
	// ThresholdMillis is the configured slow threshold (-1 = disabled).
	ThresholdMillis float64 `json:"threshold_ms"`
	// SlowSeen counts every slow request observed since boot, retained
	// or not.
	SlowSeen uint64 `json:"slow_seen"`
	// Traces are the retained slow requests, newest first. Sampled ones
	// carry spans; unsampled ones are coarse records.
	Traces []*obs.Trace `json:"traces"`
}

// ErrorDTO is the unified v1 error envelope.
type ErrorDTO struct {
	Error ErrorBody `json:"error"`
}

// ErrorBody is the envelope's payload: a machine-branchable code from a
// closed set plus a human-readable message.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error codes of the v1 envelope.
const (
	CodeInvalid  = "invalid"
	CodeNotFound = "not_found"
	CodeExists   = "exists"
	CodeDraining = "draining"
	CodeDeadline = "deadline"
	CodeInternal = "internal"
	// CodeNodeUnavailable (502) marks a routed request that could not
	// complete because a cluster node group had no answering replica;
	// the batch failed as a whole, never with silent partial results.
	CodeNodeUnavailable = "node_unavailable"
)

// maxBodyBytes bounds request bodies (tuple uploads included).
const maxBodyBytes = 64 << 20

// maxSnapshotBytes bounds a resync's binary snapshot body.
const maxSnapshotBytes = 1 << 30

// NewHandler exposes the service over HTTP/JSON (stdlib routing only):
//
//	POST   /v1/indexes                  create an index from tuples
//	GET    /v1/indexes                  list indexes
//	GET    /v1/indexes/{name}           one index's info (incl. persistence state)
//	POST   /v1/indexes/{name}/upsert    incremental reference maintenance
//	POST   /v1/indexes/{name}/snapshot  checkpoint a durable index in place
//	GET    /v1/indexes/{name}/digest    content fingerprint for replica comparison (nodes)
//	GET    /v1/indexes/{name}/export    stream the snapshot encoding (nodes)
//	POST   /v1/indexes/{name}/resync    replace content from a snapshot stream (nodes)
//	DELETE /v1/indexes/{name}           drop an index (and its stored data)
//	POST   /v1/link                     probe one index (single key or batch)
//	GET    /v1/stats                    service counters as JSON
//	GET    /v1/version                  build metadata and uptime
//	GET    /v1/cluster                  cluster role, routing table, replica health
//	GET    /v1/debug/slowlog            retained slow-request traces
//	GET    /v1/debug/requests/{id}      one retained trace by request id
//	GET    /metrics                     Prometheus text exposition
//	GET    /healthz                     liveness (503 while draining)
//
// Every response carries X-Request-ID (echoing the client's when sent);
// the X-Debug-Trace request header forces span collection for that
// request, making its trace retrievable at /v1/debug/requests/{id}.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/indexes", func(w http.ResponseWriter, r *http.Request) {
		var req CreateIndexRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		info, err := s.CreateIndex(req.Name, indexOptions(req), publicTuples(req.Tuples))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, info)
	})
	mux.HandleFunc("GET /v1/indexes", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.ListIndexes())
	})
	mux.HandleFunc("GET /v1/indexes/{name}", func(w http.ResponseWriter, r *http.Request) {
		info, err := s.GetIndex(r.PathValue("name"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("POST /v1/indexes/{name}/upsert", func(w http.ResponseWriter, r *http.Request) {
		var req UpsertRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		name := r.PathValue("name")
		inserted, updated, err := s.Upsert(name, publicTuples(req.Tuples))
		if err != nil {
			writeError(w, err)
			return
		}
		info, _ := s.GetIndex(name)
		writeJSON(w, http.StatusOK, UpsertResponse{Inserted: inserted, Updated: updated, Size: info.Size})
	})
	mux.HandleFunc("DELETE /v1/indexes/{name}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.DeleteIndex(r.PathValue("name")); err != nil {
			writeError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /v1/indexes/{name}/snapshot", func(w http.ResponseWriter, r *http.Request) {
		info, err := s.SnapshotIndex(r.PathValue("name"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("GET /v1/indexes/{name}/digest", func(w http.ResponseWriter, r *http.Request) {
		d, err := s.DigestIndex(r.PathValue("name"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, d)
	})
	mux.HandleFunc("GET /v1/indexes/{name}/export", func(w http.ResponseWriter, r *http.Request) {
		// Stream the snapshot encoding; a failure before the first byte is
		// a normal error response, a failure mid-stream truncates the body
		// and the importer's checksum rejects it.
		name := r.PathValue("name")
		if _, err := s.GetIndex(name); err != nil && s.Config().Cluster == nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		if err := s.ExportIndex(name, w); err != nil {
			writeError(w, err)
		}
	})
	mux.HandleFunc("POST /v1/indexes/{name}/resync", func(w http.ResponseWriter, r *http.Request) {
		// The body is raw snapshot bytes, not JSON; snapshots outgrow the
		// JSON body cap, so resync carries its own.
		r.Body = http.MaxBytesReader(w, r.Body, maxSnapshotBytes)
		data, err := io.ReadAll(r.Body)
		if err != nil {
			writeError(w, fmt.Errorf("%w: reading snapshot body: %v", ErrInvalid, err))
			return
		}
		info, err := s.ResyncIndex(r.PathValue("name"), data)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("POST /v1/link", func(w http.ResponseWriter, r *http.Request) {
		var req LinkRequestDTO
		if !decodeJSON(w, r, &req) {
			return
		}
		keys := req.Keys
		if req.Key != "" {
			if len(keys) > 0 {
				writeError(w, fmt.Errorf("%w: set key or keys, not both", ErrInvalid))
				return
			}
			keys = []string{req.Key}
		}
		resp, err := s.Link(r.Context(), LinkRequest{
			Index:     req.Index,
			Keys:      keys,
			Strategy:  req.Strategy,
			FutilityK: req.FutilityK,
			Timeout:   time.Duration(req.TimeoutMillis) * time.Millisecond,
			Explain:   req.Explain,
		})
		if err != nil {
			writeError(w, err)
			return
		}
		ms := time.Now()
		out := LinkResponseDTO{
			Results: make([]KeyResultDTO, len(keys)), Session: resp.Session,
			Decisions: resp.Decisions,
		}
		for i, key := range keys {
			kr := KeyResultDTO{Key: key, Matches: []MatchDTO{}}
			for _, m := range resp.Results[i] {
				kr.Matches = append(kr.Matches, MatchDTO{
					RefID: m.Ref.ID, RefKey: m.Ref.Key, RefAttrs: m.Ref.Attrs,
					Similarity: m.Similarity, Exact: m.Exact,
				})
			}
			out.Results[i] = kr
		}
		obs.TraceFrom(r.Context()).AddSpan("merge", ms)
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Snapshot())
	})
	mux.HandleFunc("GET /v1/version", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Version())
	})
	mux.HandleFunc("GET /v1/cluster", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Cluster(r.Context()))
	})
	mux.HandleFunc("GET /v1/debug/slowlog", func(w http.ResponseWriter, r *http.Request) {
		thresholdMS := float64(-1)
		if d := s.tracer.SlowThreshold(); d >= 0 {
			thresholdMS = float64(d.Nanoseconds()) / 1e6
		}
		traces := s.tracer.Slow()
		if traces == nil {
			traces = []*obs.Trace{}
		}
		writeJSON(w, http.StatusOK, SlowlogDTO{
			ThresholdMillis: thresholdMS,
			SlowSeen:        s.tracer.SlowSeen(),
			Traces:          traces,
		})
	})
	mux.HandleFunc("GET /v1/debug/requests/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		t := s.tracer.Find(id)
		if t == nil {
			writeError(w, fmt.Errorf("%w: no retained trace for request %q (only sampled or slow requests are kept; resend with the X-Debug-Trace header to force one)", ErrNotFound, id))
			return
		}
		writeJSON(w, http.StatusOK, t)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.WriteMetrics(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	return withObs(s, mux)
}

func indexOptions(req CreateIndexRequest) adaptivelink.IndexOptions {
	opts := adaptivelink.IndexOptions{Q: req.Q, Theta: req.Theta, Shards: req.Shards, Profile: req.Profile}
	switch req.Measure {
	case "dice":
		opts.Measure = adaptivelink.Dice
	case "cosine":
		opts.Measure = adaptivelink.Cosine
	case "overlap":
		opts.Measure = adaptivelink.Overlap
	default:
		// "", "jaccard" and unknown values all fall back to the paper's
		// measure; CreateIndex cannot fail on it.
		opts.Measure = adaptivelink.Jaccard
	}
	return opts
}

func publicTuples(dtos []TupleDTO) []adaptivelink.Tuple {
	out := make([]adaptivelink.Tuple, len(dtos))
	for i, d := range dtos {
		out[i] = adaptivelink.Tuple{ID: d.ID, Key: d.Key, Attrs: d.Attrs}
	}
	return out
}

func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorDTO{Error: ErrorBody{
			Code:    CodeInvalid,
			Message: fmt.Sprintf("invalid request body: %v", err),
		}})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status, code := http.StatusInternalServerError, CodeInternal
	switch {
	case errors.Is(err, ErrInvalid):
		status, code = http.StatusBadRequest, CodeInvalid
	case errors.Is(err, ErrNotFound):
		status, code = http.StatusNotFound, CodeNotFound
	case errors.Is(err, ErrExists):
		status, code = http.StatusConflict, CodeExists
	case errors.Is(err, ErrDraining):
		status, code = http.StatusServiceUnavailable, CodeDraining
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		status, code = http.StatusGatewayTimeout, CodeDeadline
	case errors.Is(err, cluster.ErrNodeUnavailable):
		status, code = http.StatusBadGateway, CodeNodeUnavailable
	}
	writeJSON(w, status, ErrorDTO{Error: ErrorBody{Code: code, Message: err.Error()}})
}
