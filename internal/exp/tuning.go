package exp

import (
	"fmt"
	"sort"
	"strings"

	"adaptivelink/internal/adaptive"
	"adaptivelink/internal/metrics"
)

// Grid is the parameter space explored by the §4.2 tuning sweep. Each
// axis lists candidate values; the sweep takes the cross product.
type Grid struct {
	DeltaAdapt    []int
	W             []int
	ThetaOut      []float64
	ThetaCurPert  []float64
	ThetaPastPert []int
}

// DefaultGrid brackets the paper's best settings (§4.2): δadapt and W
// around 100, θout around 0.05, θcurpert around 2/W, θpastpert in 2–5.
func DefaultGrid() Grid {
	return Grid{
		DeltaAdapt:    []int{50, 100, 200},
		W:             []int{50, 100},
		ThetaOut:      []float64{0.01, 0.05, 0.1},
		ThetaCurPert:  []float64{0.01, 0.02, 0.05},
		ThetaPastPert: []int{2, 3, 5},
	}
}

// Size returns the number of grid points.
func (g Grid) Size() int {
	return len(g.DeltaAdapt) * len(g.W) * len(g.ThetaOut) * len(g.ThetaCurPert) * len(g.ThetaPastPert)
}

// Points expands the grid into parameter sets.
func (g Grid) Points() []adaptive.Params {
	var out []adaptive.Params
	for _, da := range g.DeltaAdapt {
		for _, w := range g.W {
			for _, to := range g.ThetaOut {
				for _, tc := range g.ThetaCurPert {
					for _, tp := range g.ThetaPastPert {
						out = append(out, adaptive.Params{
							W: w, DeltaAdapt: da, ThetaOut: to,
							ThetaCurPert: tc, ThetaPastPert: tp,
						})
					}
				}
			}
		}
	}
	return out
}

// TuningPoint is one sweep sample: a parameter set and its outcome.
type TuningPoint struct {
	Params   adaptive.Params
	GainCost metrics.GainCost
	RAbs     int
}

// TuneSweep runs a test case under every parameter set of the grid and
// returns the points sorted by decreasing efficiency. This reproduces
// the empirical exploration of §4.2 ("the results presented refer to the
// best possible configuration for each test case").
func TuneSweep(tc TestCase, rc RunConfig, grid Grid) ([]TuningPoint, error) {
	points := grid.Points()
	if len(points) == 0 {
		return nil, fmt.Errorf("exp: empty tuning grid")
	}
	out := make([]TuningPoint, 0, len(points))
	for _, p := range points {
		run := rc
		run.Params = p
		run.Trace = false
		res, err := RunCase(tc, run)
		if err != nil {
			return out, fmt.Errorf("exp: sweep point %+v: %w", p, err)
		}
		out = append(out, TuningPoint{Params: p, GainCost: res.GainCost, RAbs: res.RAbs})
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].GainCost.Efficiency > out[j].GainCost.Efficiency
	})
	return out, nil
}

// Best returns the most efficient point (the sweep's first after
// sorting). It panics on an empty slice, which cannot result from a
// successful TuneSweep.
func Best(points []TuningPoint) TuningPoint {
	if len(points) == 0 {
		panic("exp: Best of empty sweep")
	}
	return points[0]
}

// TuningTable renders the top-k sweep points.
func TuningTable(points []TuningPoint, k int) string {
	if k > len(points) {
		k = len(points)
	}
	var b strings.Builder
	b.WriteString("§4.2 tuning sweep — best configurations by efficiency\n")
	fmt.Fprintf(&b, "%6s %6s %8s %10s %8s %8s %8s %8s\n",
		"δadapt", "W", "θout", "θcurpert", "θpast", "g_rel", "c_rel", "e")
	for _, p := range points[:k] {
		fmt.Fprintf(&b, "%6d %6d %8.3f %10.3f %8d %8.3f %8.3f %8.2f\n",
			p.Params.DeltaAdapt, p.Params.W, p.Params.ThetaOut,
			p.Params.ThetaCurPert, p.Params.ThetaPastPert,
			p.GainCost.Grel, p.GainCost.Crel, p.GainCost.Efficiency)
	}
	return b.String()
}
