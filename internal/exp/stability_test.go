package exp

import (
	"testing"

	"adaptivelink/internal/join"
	"adaptivelink/internal/metrics"
)

// TestShapeStableAcrossSeeds re-runs a subset of the Fig. 6 cases with
// different dataset seeds and checks that the reproduction's headline
// claims (§4.4) are not artifacts of one random draw: efficiency stays
// positive, cost stays below the all-approximate ceiling, and the
// completeness ordering holds.
func TestShapeStableAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed stability sweep")
	}
	rc := DefaultRunConfig()
	rc.Params.DeltaAdapt, rc.Params.W = 50, 50
	for _, seed := range []int64{101, 202, 303} {
		cases := PaperTestCases(seed, 600, 600)
		// One child-only and one both-perturbed case per seed.
		for _, tc := range []TestCase{cases[0], cases[5]} {
			res, err := RunCase(tc, rc)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, tc.ID, err)
			}
			if !(res.R <= res.RAbs && res.RAbs <= res.RApx) {
				t.Errorf("seed %d %s: ordering r=%d rabs=%d R=%d",
					seed, tc.ID, res.R, res.RAbs, res.RApx)
			}
			if res.GainCost.Efficiency <= 0 {
				t.Errorf("seed %d %s: efficiency %v", seed, tc.ID, res.GainCost.Efficiency)
			}
			ceiling := metrics.PureCost(res.Steps, join.LapRap, rc.Weights)
			if res.Breakdown.Total > ceiling {
				t.Errorf("seed %d %s: cost %v above ceiling %v",
					seed, tc.ID, res.Breakdown.Total, ceiling)
			}
			if res.AdaptiveStats.Switches == 0 {
				t.Errorf("seed %d %s: never adapted on 10%% variants", seed, tc.ID)
			}
		}
	}
}
