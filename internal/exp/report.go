package exp

import (
	"fmt"
	"strings"

	"adaptivelink/internal/datagen"
	"adaptivelink/internal/join"
	"adaptivelink/internal/metrics"
)

// Fig5Maps renders the perturbation-pattern layouts of Fig. 5 as ASCII
// maps over an input of n positions.
func Fig5Maps(n, width int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 5 — perturbation patterns (input length %d, 10%% variants)\n", n)
	labels := map[datagen.Pattern]string{
		datagen.Uniform:           "(a) uniform",
		datagen.InterleavedLow:    "(b) interleaved low-intensity",
		datagen.FewHighIntensity:  "(c) few high-intensity",
		datagen.ManyHighIntensity: "(d) many high-intensity",
	}
	for _, p := range datagen.AllPatterns {
		regions, err := datagen.Regions(p, n, datagen.DefaultVariantRate)
		if err != nil {
			fmt.Fprintf(&b, "%-32s <error: %v>\n", labels[p], err)
			continue
		}
		fmt.Fprintf(&b, "%-32s |%s|\n", labels[p], datagen.Render(regions, n, width))
	}
	b.WriteString("legend: '.' none  '-' <25%  '+' <60%  '#' high intensity\n")
	return b.String()
}

// Fig6Table renders the headline gain/cost/efficiency comparison of
// Fig. 6, one row per test case.
func Fig6Table(results []*Result) string {
	var b strings.Builder
	b.WriteString("Fig. 6 — relative gain and cost across test cases\n")
	fmt.Fprintf(&b, "%-26s %8s %8s %8s %8s %8s %8s\n",
		"test case", "r(exact)", "R(apx)", "r_abs", "g_rel", "c_rel", "e")
	for _, r := range results {
		fmt.Fprintf(&b, "%-26s %8d %8d %8d %8.3f %8.3f %8.2f\n",
			r.Case.ID, r.R, r.RApx, r.RAbs,
			r.GainCost.Grel, r.GainCost.Crel, r.GainCost.Efficiency)
	}
	return b.String()
}

// Fig7Table renders the breakdown of steps spent per state and the
// number of transitions (Fig. 7). State columns follow the paper's
// abbreviations: EE = lex/rex, AE = lap/rex, EA = lex/rap, AA = lap/rap.
func Fig7Table(results []*Result) string {
	var b strings.Builder
	b.WriteString("Fig. 7 — share of steps per state and transition counts\n")
	fmt.Fprintf(&b, "%-26s %8s %8s %8s %8s %8s\n", "test case", "EE%", "AE%", "EA%", "AA%", "trans")
	for _, r := range results {
		sh := metrics.StepShares(r.AdaptiveStats)
		fmt.Fprintf(&b, "%-26s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %8d\n",
			r.Case.ID,
			100*sh[join.LexRex.Index()], 100*sh[join.LapRex.Index()],
			100*sh[join.LexRap.Index()], 100*sh[join.LapRap.Index()],
			r.AdaptiveStats.Switches)
	}
	return b.String()
}

// Fig8Table renders the breakdown of modelled execution cost per state
// plus the aggregate transition cost (Fig. 8).
func Fig8Table(results []*Result) string {
	var b strings.Builder
	b.WriteString("Fig. 8 — share of weighted execution cost per state\n")
	fmt.Fprintf(&b, "%-26s %8s %8s %8s %8s %8s %10s\n",
		"test case", "EE%", "AE%", "EA%", "AA%", "trans%", "c_abs")
	for _, r := range results {
		states, trans := metrics.CostShares(r.Breakdown)
		fmt.Fprintf(&b, "%-26s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% %10.0f\n",
			r.Case.ID,
			100*states[join.LexRex.Index()], 100*states[join.LapRex.Index()],
			100*states[join.LexRap.Index()], 100*states[join.LapRap.Index()],
			100*trans, r.Breakdown.Total)
	}
	return b.String()
}

// SummaryChecks verifies the qualitative claims of §4.4 on a result set
// and reports each as a pass/fail line: positive efficiency everywhere,
// adaptive cost below the all-approximate cost, a substantial share of
// steps still exact, and child-only cases at least as efficient as their
// both-perturbed siblings on average.
func SummaryChecks(results []*Result, w metrics.Weights) string {
	var b strings.Builder
	b.WriteString("§4.4 qualitative checks\n")
	check := func(name string, ok bool, detail string) {
		status := "PASS"
		if !ok {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "  [%s] %-46s %s\n", status, name, detail)
	}

	allPositive, belowC, exactShare := true, true, 0.0
	var childEff, bothEff []float64
	for _, r := range results {
		if r.GainCost.Efficiency <= 0 {
			allPositive = false
		}
		if r.Breakdown.Total > metrics.PureCost(r.Steps, join.LapRap, w) {
			belowC = false
		}
		exactShare += metrics.StepShares(r.AdaptiveStats)[join.LexRex.Index()]
		if strings.HasSuffix(r.Case.ID, "/child-only") {
			childEff = append(childEff, r.GainCost.Efficiency)
		} else {
			bothEff = append(bothEff, r.GainCost.Efficiency)
		}
	}
	n := float64(len(results))
	check("efficiency e > 0 in every case", allPositive, "")
	check("adaptive cost never exceeds all-approximate C", belowC, "")
	if n > 0 {
		avg := exactShare / n
		check("substantial share of steps remains exact", avg >= 0.15,
			fmt.Sprintf("avg EE share %.1f%%", 100*avg))
	}
	if len(childEff) > 0 && len(bothEff) > 0 {
		check("child-only cases more efficient on average",
			mean(childEff) >= mean(bothEff),
			fmt.Sprintf("child-only %.2f vs both %.2f", mean(childEff), mean(bothEff)))
	}
	return b.String()
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
