package exp

import (
	"fmt"
	"strings"
	"time"

	"adaptivelink/internal/datagen"
	"adaptivelink/internal/join"
	"adaptivelink/internal/metrics"
	"adaptivelink/internal/stats"
	"adaptivelink/internal/stream"
)

// MeasuredWeights is the outcome of the §4.3 calibration on this host:
// normalised weights plus the raw per-step and per-transition times they
// came from.
type MeasuredWeights struct {
	Weights         metrics.Weights
	RawStepNs       [4]float64
	RawTransitionNs [4]float64
	Reps            int
}

// MeasureWeights reproduces the weight calibration of §4.3 on this
// implementation and host: the per-step unit costs w_i are measured by
// running the engine pinned in each state over identical inputs, and the
// transition costs v_i by timing SetState into each state at the scan
// midpoint (when the lagging indexes must catch up on half the input).
// All times are averaged over reps runs and normalised by the lex/rex
// step cost.
func MeasureWeights(parentSize, childSize int, seed int64, reps int) (MeasuredWeights, error) {
	if reps < 1 {
		return MeasuredWeights{}, fmt.Errorf("exp: reps %d < 1", reps)
	}
	spec := datagen.Defaults(datagen.Uniform, false)
	spec.Seed = seed
	spec.ParentSize, spec.ChildSize = parentSize, childSize
	ds, err := datagen.Generate(spec)
	if err != nil {
		return MeasuredWeights{}, err
	}
	out := MeasuredWeights{Reps: reps}

	// Step costs: pinned-state runs.
	var stepNs [4]stats.Welford
	for rep := 0; rep < reps; rep++ {
		for _, st := range join.AllStates {
			cfg := join.Defaults()
			cfg.Initial = st
			e, err := join.New(cfg, stream.FromRelation(ds.Parent), stream.FromRelation(ds.Child), nil)
			if err != nil {
				return MeasuredWeights{}, err
			}
			start := time.Now()
			if _, err := drainCount[join.Match](e); err != nil {
				return MeasuredWeights{}, err
			}
			elapsed := time.Since(start)
			stepNs[st.Index()].Add(float64(elapsed.Nanoseconds()) / float64(e.Stats().Steps))
		}
	}
	for i := range stepNs {
		out.RawStepNs[i] = stepNs[i].Mean()
	}

	// Transition costs: run half the scan in a source state whose
	// target-state indexes lag maximally, then time the switch.
	// Sources: into EE we come from AA (exact indexes lag); into any
	// approximate-bearing state we come from EE (q-gram indexes lag).
	sources := map[join.State]join.State{
		join.LexRex: join.LapRap,
		join.LapRex: join.LexRex,
		join.LexRap: join.LexRex,
		join.LapRap: join.LexRex,
	}
	half := (ds.Parent.Len() + ds.Child.Len()) / 2
	var transNs [4]stats.Welford
	for rep := 0; rep < reps; rep++ {
		for target, source := range sources {
			cfg := join.Defaults()
			cfg.Initial = source
			e, err := join.New(cfg, stream.FromRelation(ds.Parent), stream.FromRelation(ds.Child), nil)
			if err != nil {
				return MeasuredWeights{}, err
			}
			var switchDur time.Duration
			e.OnStep = func(en *join.Engine) {
				if en.Step() == half {
					start := time.Now()
					if _, err := en.SetState(target); err != nil {
						panic(fmt.Sprintf("exp: calibration switch: %v", err))
					}
					switchDur = time.Since(start)
				}
			}
			if _, err := drainCount[join.Match](e); err != nil {
				return MeasuredWeights{}, err
			}
			transNs[target.Index()].Add(float64(switchDur.Nanoseconds()))
		}
	}
	for i := range transNs {
		out.RawTransitionNs[i] = transNs[i].Mean()
	}

	// Normalise by the lex/rex step cost (§4.3).
	unit := out.RawStepNs[join.LexRex.Index()]
	if unit <= 0 {
		return MeasuredWeights{}, fmt.Errorf("exp: degenerate unit step cost %v", unit)
	}
	for i := range out.RawStepNs {
		out.Weights.Step[i] = out.RawStepNs[i] / unit
		out.Weights.Transition[i] = out.RawTransitionNs[i] / unit
	}
	return out, nil
}

// WeightsText renders a calibration result next to the paper's weights.
func WeightsText(m MeasuredWeights) string {
	paper := metrics.PaperWeights()
	var b strings.Builder
	fmt.Fprintf(&b, "Weight calibration (§4.3), %d repetition(s)\n", m.Reps)
	fmt.Fprintf(&b, "%-10s %14s %12s %12s\n", "state", "raw step ns", "w (ours)", "w (paper)")
	for _, st := range join.AllStates {
		i := st.Index()
		fmt.Fprintf(&b, "%-10s %14.0f %12.2f %12.2f\n",
			st, m.RawStepNs[i], m.Weights.Step[i], paper.Step[i])
	}
	fmt.Fprintf(&b, "%-10s %14s %12s %12s\n", "into", "raw switch ns", "v (ours)", "v (paper)")
	for _, st := range join.AllStates {
		i := st.Index()
		fmt.Fprintf(&b, "%-10s %14.0f %12.2f %12.2f\n",
			st, m.RawTransitionNs[i], m.Weights.Transition[i], paper.Transition[i])
	}
	return b.String()
}
