package exp

import (
	"strings"
	"testing"

	"adaptivelink/internal/datagen"
	"adaptivelink/internal/join"
	"adaptivelink/internal/metrics"
)

func smallCases(t *testing.T) []TestCase {
	t.Helper()
	return PaperTestCases(3, 700, 700)
}

func TestPaperTestCasesLayout(t *testing.T) {
	cases := PaperTestCases(1, 100, 200)
	if len(cases) != 8 {
		t.Fatalf("got %d cases, want 8", len(cases))
	}
	seen := map[string]bool{}
	for _, tc := range cases {
		if seen[tc.ID] {
			t.Errorf("duplicate case ID %q", tc.ID)
		}
		seen[tc.ID] = true
		if tc.Spec.ParentSize != 100 || tc.Spec.ChildSize != 200 {
			t.Errorf("case %s sizes %d/%d", tc.ID, tc.Spec.ParentSize, tc.Spec.ChildSize)
		}
		if err := tc.Spec.Validate(); err != nil {
			t.Errorf("case %s invalid: %v", tc.ID, err)
		}
	}
	// Both perturbation sides present for each pattern.
	for _, p := range datagen.AllPatterns {
		if !seen[p.String()+"/child-only"] || !seen[p.String()+"/both"] {
			t.Errorf("pattern %v missing a perturbation side", p)
		}
	}
}

func TestRunCaseInvariants(t *testing.T) {
	rc := DefaultRunConfig()
	rc.Params.DeltaAdapt, rc.Params.W = 50, 50
	rc.Trace = true
	for _, tc := range smallCases(t)[:4] {
		res, err := RunCase(tc, rc)
		if err != nil {
			t.Fatalf("%s: %v", tc.ID, err)
		}
		if !(res.R <= res.RAbs && res.RAbs <= res.RApx) {
			t.Errorf("%s: completeness ordering r=%d rabs=%d R=%d", tc.ID, res.R, res.RAbs, res.RApx)
		}
		if res.Steps != tc.Spec.ParentSize+tc.Spec.ChildSize {
			t.Errorf("%s: steps %d", tc.ID, res.Steps)
		}
		if res.AdaptiveStats.Steps != res.Steps {
			t.Errorf("%s: adaptive steps %d != %d", tc.ID, res.AdaptiveStats.Steps, res.Steps)
		}
		if res.Breakdown.Total > metrics.PureCost(res.Steps, join.LapRap, rc.Weights) {
			t.Errorf("%s: adaptive cost %v exceeds all-approximate", tc.ID, res.Breakdown.Total)
		}
		if res.GainCost.Grel < 0 || res.GainCost.Grel > 1 {
			t.Errorf("%s: g_rel %v out of range", tc.ID, res.GainCost.Grel)
		}
		if len(res.Activations) == 0 {
			t.Errorf("%s: no activations traced", tc.ID)
		}
		if res.WallExact <= 0 || res.WallApprox <= 0 || res.WallAdaptive <= 0 {
			t.Errorf("%s: missing wall times", tc.ID)
		}
	}
}

func TestRunCaseDeterministicCounts(t *testing.T) {
	rc := DefaultRunConfig()
	rc.Params.DeltaAdapt, rc.Params.W = 50, 50
	tc := smallCases(t)[0]
	a, err := RunCase(tc, rc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCase(tc, rc)
	if err != nil {
		t.Fatal(err)
	}
	if a.R != b.R || a.RApx != b.RApx || a.RAbs != b.RAbs {
		t.Errorf("non-deterministic counts: %d/%d/%d vs %d/%d/%d",
			a.R, a.RApx, a.RAbs, b.R, b.RApx, b.RAbs)
	}
	if a.AdaptiveStats != b.AdaptiveStats {
		t.Errorf("non-deterministic stats: %+v vs %+v", a.AdaptiveStats, b.AdaptiveStats)
	}
}

func TestRunCaseRejectsBadConfig(t *testing.T) {
	tc := smallCases(t)[0]
	rc := DefaultRunConfig()
	rc.Join.Q = 0
	if _, err := RunCase(tc, rc); err == nil {
		t.Error("bad join config accepted")
	}
	rc = DefaultRunConfig()
	rc.Params.W = 0
	if _, err := RunCase(tc, rc); err == nil {
		t.Error("bad params accepted")
	}
	rc = DefaultRunConfig()
	rc.Weights.Step[0] = 0
	if _, err := RunCase(tc, rc); err == nil {
		t.Error("bad weights accepted")
	}
}

func TestRunAllAndReports(t *testing.T) {
	rc := DefaultRunConfig()
	rc.Params.DeltaAdapt, rc.Params.W = 50, 50
	results, err := RunAll(smallCases(t), rc)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("got %d results", len(results))
	}

	fig6 := Fig6Table(results)
	for _, want := range []string{"g_rel", "c_rel", "uniform/child-only", "many-high/both"} {
		if !strings.Contains(fig6, want) {
			t.Errorf("Fig6Table missing %q:\n%s", want, fig6)
		}
	}
	fig7 := Fig7Table(results)
	if !strings.Contains(fig7, "EE%") || !strings.Contains(fig7, "trans") {
		t.Errorf("Fig7Table malformed:\n%s", fig7)
	}
	fig8 := Fig8Table(results)
	if !strings.Contains(fig8, "c_abs") {
		t.Errorf("Fig8Table malformed:\n%s", fig8)
	}
	sum := SummaryChecks(results, rc.Weights)
	if !strings.Contains(sum, "efficiency e > 0") {
		t.Errorf("SummaryChecks malformed:\n%s", sum)
	}
	// The central reproduction claims must hold even at reduced scale.
	if strings.Contains(sum, "FAIL] adaptive cost never exceeds") {
		t.Errorf("cost ceiling violated:\n%s", sum)
	}
	if strings.Contains(sum, "FAIL] efficiency e > 0") {
		t.Errorf("efficiency claim violated:\n%s", sum)
	}
}

func TestFig5Maps(t *testing.T) {
	out := Fig5Maps(8082, 64)
	for _, want := range []string{"(a) uniform", "(b)", "(c)", "(d)", "legend"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig5Maps missing %q", want)
		}
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 6 {
		t.Errorf("Fig5Maps too short:\n%s", out)
	}
}

func TestMeasureTable1(t *testing.T) {
	rows, err := MeasureTable1(3000, 1, join.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].SHJoinNs != -1 || rows[2].SHJoinNs != -1 {
		t.Error("SHJoin should have no q-gram or T(t) operations")
	}
	if rows[0].SSHJoinNs <= 0 || rows[2].SSHJoinNs <= 0 {
		t.Error("SSHJoin operations not measured")
	}
	// The structural claim of Table 1: SSHJoin's hash update costs more
	// than SHJoin's single insertion (it inserts one posting per gram).
	if rows[1].SSHJoinNs <= rows[1].SHJoinNs {
		t.Errorf("q-gram insert (%v ns) not costlier than exact insert (%v ns)",
			rows[1].SSHJoinNs, rows[1].SHJoinNs)
	}
	text := Table1Text(rows)
	if !strings.Contains(text, "obtain q-grams") || !strings.Contains(text, "–") {
		t.Errorf("Table1Text malformed:\n%s", text)
	}
}

func TestMeasureTable1Validation(t *testing.T) {
	if _, err := MeasureTable1(1, 1, join.Defaults()); err == nil {
		t.Error("tiny corpus accepted")
	}
	bad := join.Defaults()
	bad.Theta = 0
	if _, err := MeasureTable1(100, 1, bad); err == nil {
		t.Error("bad config accepted")
	}
}

func TestMeasureWeights(t *testing.T) {
	m, err := MeasureWeights(400, 400, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Weights.Validate(); err != nil {
		t.Errorf("measured weights invalid: %v", err)
	}
	if m.Weights.Step[join.LexRex.Index()] != 1 {
		t.Errorf("baseline weight %v, want 1", m.Weights.Step[join.LexRex.Index()])
	}
	// Approximate steps must be costlier than exact ones (the entire
	// premise of the trade-off).
	if m.Weights.Step[join.LapRap.Index()] < 2 {
		t.Errorf("lap/rap weight %v suspiciously low", m.Weights.Step[join.LapRap.Index()])
	}
	for i, v := range m.Weights.Transition {
		if v < 0 {
			t.Errorf("transition weight %d negative: %v", i, v)
		}
	}
	text := WeightsText(m)
	if !strings.Contains(text, "w (paper)") || !strings.Contains(text, "lex/rex") {
		t.Errorf("WeightsText malformed:\n%s", text)
	}
}

func TestMeasureWeightsValidation(t *testing.T) {
	if _, err := MeasureWeights(100, 100, 1, 0); err == nil {
		t.Error("reps=0 accepted")
	}
}

func TestTuningSweep(t *testing.T) {
	tc := smallCases(t)[4] // few-high/child-only: strong signal
	rc := DefaultRunConfig()
	grid := Grid{
		DeltaAdapt:    []int{50},
		W:             []int{50},
		ThetaOut:      []float64{0.05},
		ThetaCurPert:  []float64{0.02, 0.1},
		ThetaPastPert: []int{3},
	}
	if grid.Size() != 2 {
		t.Fatalf("grid size %d", grid.Size())
	}
	points, err := TuneSweep(tc, rc, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	// Sorted by decreasing efficiency.
	if points[0].GainCost.Efficiency < points[1].GainCost.Efficiency {
		t.Error("sweep not sorted")
	}
	best := Best(points)
	if best.GainCost.Efficiency != points[0].GainCost.Efficiency {
		t.Error("Best disagrees with sort")
	}
	table := TuningTable(points, 10)
	if !strings.Contains(table, "δadapt") {
		t.Errorf("TuningTable malformed:\n%s", table)
	}
}

func TestTuneSweepEmptyGrid(t *testing.T) {
	if _, err := TuneSweep(smallCases(t)[0], DefaultRunConfig(), Grid{}); err == nil {
		t.Error("empty grid accepted")
	}
}

func TestBestPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Best(nil) did not panic")
		}
	}()
	Best(nil)
}

func TestDefaultGridBracketsPaperSettings(t *testing.T) {
	g := DefaultGrid()
	if g.Size() == 0 {
		t.Fatal("empty default grid")
	}
	has := func(xs []int, v int) bool {
		for _, x := range xs {
			if x == v {
				return true
			}
		}
		return false
	}
	hasF := func(xs []float64, v float64) bool {
		for _, x := range xs {
			if x == v {
				return true
			}
		}
		return false
	}
	if !has(g.DeltaAdapt, 100) || !has(g.W, 100) || !hasF(g.ThetaOut, 0.05) || !hasF(g.ThetaCurPert, 0.02) {
		t.Error("default grid does not include the paper's best settings")
	}
}

func TestRunCaseParallel(t *testing.T) {
	// The sharded adaptive run must stay between the sequential
	// baselines and carry a usable trace, like the sequential run.
	cases := PaperTestCases(5, 400, 400)
	rc := DefaultRunConfig()
	rc.Parallelism = 4
	rc.Trace = true
	res, err := RunCase(cases[4], rc) // few-high/child-only
	if err != nil {
		t.Fatal(err)
	}
	if res.RAbs < res.R || res.RAbs > res.RApx {
		t.Errorf("parallel adaptive result %d outside [r=%d, R=%d]", res.RAbs, res.R, res.RApx)
	}
	if got := res.AdaptiveStats.Read; got[0] != 400 || got[1] != 400 {
		t.Errorf("aggregate reads %v, want [400 400]", got)
	}
	if res.AdaptiveStats.Steps < 800 {
		t.Errorf("shard steps %d < 800 dispatched tuples", res.AdaptiveStats.Steps)
	}
	inState := 0
	for _, s := range res.AdaptiveStats.StepsInState {
		inState += s
	}
	if inState != res.AdaptiveStats.Steps {
		t.Errorf("steps-in-state %d != steps %d (engine invariant)", inState, res.AdaptiveStats.Steps)
	}
	if len(res.Activations) == 0 {
		t.Error("no activations traced on the parallel run")
	}
	if res.GainCost.Grel < 0 || res.GainCost.Grel > 1 {
		t.Errorf("relative gain %v outside [0,1]", res.GainCost.Grel)
	}
}

func TestRunCaseParallelWindowBudget(t *testing.T) {
	// The safety valves compose with sharding in the harness: a
	// windowed, budgeted, 4-shard adaptive run must return exactly the
	// sequential engine's result size under the same knobs (the parity
	// the executor's sequence stamps and the aggregated spend counter
	// guarantee), and stay within the unwindowed baselines.
	cases := PaperTestCases(5, 400, 400)
	rc := DefaultRunConfig()
	rc.Join.RetainWindow = 150
	rc.CostBudget = 5_000
	rc.Parallelism = 1
	seq, err := RunCase(cases[4], rc)
	if err != nil {
		t.Fatal(err)
	}
	rc.Parallelism = 4
	par, err := RunCase(cases[4], rc)
	if err != nil {
		t.Fatal(err)
	}
	if par.RAbs != seq.RAbs {
		t.Errorf("windowed+budgeted parallel result %d, sequential %d", par.RAbs, seq.RAbs)
	}
	if par.RAbs > par.RApx {
		t.Errorf("windowed result %d above the unwindowed approximate ceiling %d", par.RAbs, par.RApx)
	}
	if par.AdaptiveStats.Evicted[0]+par.AdaptiveStats.Evicted[1] == 0 {
		t.Error("no evictions recorded on the windowed parallel run")
	}
}
