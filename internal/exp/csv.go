package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"adaptivelink/internal/join"
	"adaptivelink/internal/metrics"
)

// WriteResultsCSV emits the full per-case result table (Figs. 6–8 in
// one machine-readable file): one row per test case with baselines,
// gain/cost metrics, per-state step shares and cost shares.
func WriteResultsCSV(w io.Writer, results []*Result) error {
	cw := csv.NewWriter(w)
	header := []string{
		"case", "r_exact", "R_approx", "r_abs", "steps",
		"g_rel", "c_rel", "efficiency",
		"steps_EE", "steps_AE", "steps_EA", "steps_AA", "switches", "catchup_tuples",
		"cost_EE", "cost_AE", "cost_EA", "cost_AA", "cost_transitions", "cost_total",
		"wall_exact_ns", "wall_approx_ns", "wall_adaptive_ns",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }
	d := strconv.Itoa
	for _, r := range results {
		st := r.AdaptiveStats
		row := []string{
			r.Case.ID, d(r.R), d(r.RApx), d(r.RAbs), d(r.Steps),
			f(r.GainCost.Grel), f(r.GainCost.Crel), f(r.GainCost.Efficiency),
			d(st.StepsInState[join.LexRex.Index()]), d(st.StepsInState[join.LapRex.Index()]),
			d(st.StepsInState[join.LexRap.Index()]), d(st.StepsInState[join.LapRap.Index()]),
			d(st.Switches), d(st.CatchUpTuples),
			f(r.Breakdown.StateCosts[join.LexRex.Index()]), f(r.Breakdown.StateCosts[join.LapRex.Index()]),
			f(r.Breakdown.StateCosts[join.LexRap.Index()]), f(r.Breakdown.StateCosts[join.LapRap.Index()]),
			f(r.Breakdown.TransitionTotal()), f(r.Breakdown.Total),
			d(int(r.WallExact.Nanoseconds())), d(int(r.WallApprox.Nanoseconds())),
			d(int(r.WallAdaptive.Nanoseconds())),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTuningCSV emits a tuning sweep as CSV.
func WriteTuningCSV(w io.Writer, points []TuningPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"delta_adapt", "w", "theta_out", "theta_curpert", "theta_pastpert",
		"r_abs", "g_rel", "c_rel", "efficiency",
	}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }
	for _, p := range points {
		if err := cw.Write([]string{
			strconv.Itoa(p.Params.DeltaAdapt), strconv.Itoa(p.Params.W),
			f(p.Params.ThetaOut), f(p.Params.ThetaCurPert), strconv.Itoa(p.Params.ThetaPastPert),
			strconv.Itoa(p.RAbs), f(p.GainCost.Grel), f(p.GainCost.Crel), f(p.GainCost.Efficiency),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteWeightsCSV emits a calibration result as CSV rows of
// (kind, state, raw_ns, weight_ours, weight_paper).
func WriteWeightsCSV(w io.Writer, m MeasuredWeights) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kind", "state", "raw_ns", "weight", "paper_weight"}); err != nil {
		return err
	}
	paper := metrics.PaperWeights()
	for _, st := range join.AllStates {
		i := st.Index()
		if err := cw.Write([]string{
			"step", st.String(),
			fmt.Sprintf("%.0f", m.RawStepNs[i]),
			fmt.Sprintf("%.4f", m.Weights.Step[i]),
			fmt.Sprintf("%.4f", paper.Step[i]),
		}); err != nil {
			return err
		}
	}
	for _, st := range join.AllStates {
		i := st.Index()
		if err := cw.Write([]string{
			"transition", st.String(),
			fmt.Sprintf("%.0f", m.RawTransitionNs[i]),
			fmt.Sprintf("%.4f", m.Weights.Transition[i]),
			fmt.Sprintf("%.4f", paper.Transition[i]),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
