package exp

import (
	"fmt"
	"strings"
	"time"

	"adaptivelink/internal/adaptive"
	"adaptivelink/internal/blocking"
	"adaptivelink/internal/datagen"
	"adaptivelink/internal/join"
	"adaptivelink/internal/stream"
)

// OfflineResult is one method's outcome in the offline-vs-online
// comparison.
type OfflineResult struct {
	Method string
	// Pairs is the number of verified matched pairs.
	Pairs int
	// Comparisons counts similarity verifications (offline methods) or
	// engine steps (online methods) — each method's unit of work.
	Comparisons int
	// Recall is Pairs relative to the all-approximate join's result
	// size, the completeness ceiling shared by every method here.
	Recall float64
	// Wall is the measured wall-clock time.
	Wall time.Duration
}

// CompareOfflineOnline contrasts the offline linkage pipelines of §1
// (which require the tables in advance: standard blocking and the
// sorted neighbourhood method) against the online operators on one test
// case. It quantifies the paper's motivating claim: offline pipelines
// get completeness cheaply but need pre-processing; the adaptive online
// join approaches their completeness while reading the inputs once, as
// streams.
func CompareOfflineOnline(tc TestCase, rc RunConfig) ([]OfflineResult, error) {
	if err := rc.Join.Validate(); err != nil {
		return nil, err
	}
	ds, err := datagen.Generate(tc.Spec)
	if err != nil {
		return nil, err
	}
	var out []OfflineResult

	// Ceiling: the all-approximate online join (same θ and measure as
	// every other method).
	var ceiling int
	{
		e, err := join.NewSSHJoin(rc.Join, stream.FromRelation(ds.Parent), stream.FromRelation(ds.Child), nil)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		n, err := drainCount[join.Match](e)
		if err != nil {
			return nil, err
		}
		ceiling = n
		out = append(out, OfflineResult{
			Method: "online/sshjoin", Pairs: n,
			Comparisons: e.Stats().Steps, Recall: 1, Wall: time.Since(start),
		})
	}

	// Online adaptive.
	{
		e, err := join.New(rc.Join, stream.FromRelation(ds.Parent), stream.FromRelation(ds.Child), nil)
		if err != nil {
			return nil, err
		}
		if _, err := adaptive.Attach(e, stream.Left, ds.Parent.Len(), rc.Params); err != nil {
			return nil, err
		}
		start := time.Now()
		n, err := drainCount[join.Match](e)
		if err != nil {
			return nil, err
		}
		out = append(out, OfflineResult{
			Method: "online/adaptive", Pairs: n,
			Comparisons: e.Stats().Steps, Recall: recall(n, ceiling), Wall: time.Since(start),
		})
	}

	// Offline: token blocking.
	{
		start := time.Now()
		res, err := blocking.Link(rc.Join, ds.Parent, ds.Child, blocking.TokenBlocker())
		if err != nil {
			return nil, err
		}
		out = append(out, OfflineResult{
			Method: "offline/token-blocking", Pairs: len(res.Pairs),
			Comparisons: res.Comparisons, Recall: recall(len(res.Pairs), ceiling), Wall: time.Since(start),
		})
	}

	// Offline: sorted neighbourhood, window 10.
	{
		start := time.Now()
		res, err := blocking.SortedNeighborhood(rc.Join, ds.Parent, ds.Child, 10, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, OfflineResult{
			Method: "offline/snm-w10", Pairs: len(res.Pairs),
			Comparisons: res.Comparisons, Recall: recall(len(res.Pairs), ceiling), Wall: time.Since(start),
		})
	}
	return out, nil
}

func recall(pairs, ceiling int) float64 {
	if ceiling == 0 {
		return 1
	}
	return float64(pairs) / float64(ceiling)
}

// OfflineTable renders the comparison.
func OfflineTable(results []OfflineResult) string {
	var b strings.Builder
	b.WriteString("Offline (pre-processing) vs online (streaming) linkage\n")
	fmt.Fprintf(&b, "%-26s %8s %8s %12s %12s\n", "method", "pairs", "recall", "work units", "wall time")
	for _, r := range results {
		fmt.Fprintf(&b, "%-26s %8d %7.1f%% %12d %12v\n",
			r.Method, r.Pairs, 100*r.Recall, r.Comparisons, r.Wall.Round(time.Millisecond))
	}
	return b.String()
}
