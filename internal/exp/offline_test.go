package exp

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func TestCompareOfflineOnline(t *testing.T) {
	tc := PaperTestCases(5, 500, 500)[0]
	rc := DefaultRunConfig()
	rc.Params.DeltaAdapt, rc.Params.W = 50, 50
	results, err := CompareOfflineOnline(tc, rc)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d methods", len(results))
	}
	byName := map[string]OfflineResult{}
	for _, r := range results {
		byName[r.Method] = r
		if r.Pairs < 0 || r.Recall < 0 || r.Recall > 1.01 || r.Wall <= 0 {
			t.Errorf("degenerate result %+v", r)
		}
	}
	ssh := byName["online/sshjoin"]
	if ssh.Recall != 1 {
		t.Errorf("ceiling method recall %v", ssh.Recall)
	}
	// Token blocking sees all data offline with the same θ: recall near 1.
	if tb := byName["offline/token-blocking"]; tb.Recall < 0.95 {
		t.Errorf("token blocking recall %v", tb.Recall)
	}
	// Adaptive online sits between the exact floor and the ceiling.
	if ad := byName["online/adaptive"]; ad.Pairs > ssh.Pairs {
		t.Errorf("adaptive found more than the ceiling: %d > %d", ad.Pairs, ssh.Pairs)
	}
	table := OfflineTable(results)
	for _, want := range []string{"online/adaptive", "offline/snm-w10", "recall"} {
		if !strings.Contains(table, want) {
			t.Errorf("OfflineTable missing %q:\n%s", want, table)
		}
	}
}

func TestWriteResultsCSV(t *testing.T) {
	rc := DefaultRunConfig()
	rc.Params.DeltaAdapt, rc.Params.W = 50, 50
	res, err := RunCase(PaperTestCases(7, 400, 400)[2], rc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteResultsCSV(&buf, []*Result{res}); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if len(rows[0]) != len(rows[1]) {
		t.Errorf("ragged CSV: header %d fields, row %d", len(rows[0]), len(rows[1]))
	}
	if rows[1][0] != res.Case.ID {
		t.Errorf("case column = %q", rows[1][0])
	}
}

func TestWriteTuningCSV(t *testing.T) {
	var buf bytes.Buffer
	points := []TuningPoint{{RAbs: 5}}
	points[0].Params.DeltaAdapt, points[0].Params.W = 100, 100
	if err := WriteTuningCSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil || len(rows) != 2 {
		t.Fatalf("rows=%d err=%v", len(rows), err)
	}
}

func TestWriteWeightsCSV(t *testing.T) {
	m, err := MeasureWeights(200, 200, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteWeightsCSV(&buf, m); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 { // header + 4 step rows + 4 transition rows
		t.Errorf("got %d rows, want 9", len(rows))
	}
}
