// Package exp is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§4): the eight test cases of Fig. 6
// (four perturbation patterns × {variants in child only, variants in
// both inputs}), the state-time and cost breakdowns of Figs. 7–8, the
// per-operation cost table (Table 1), the parameter-tuning exploration
// of §4.2 and the empirical weight calibration of §4.3.
package exp

import (
	"fmt"
	"time"

	"adaptivelink/internal/adaptive"
	"adaptivelink/internal/datagen"
	"adaptivelink/internal/iterator"
	"adaptivelink/internal/join"
	"adaptivelink/internal/metrics"
	"adaptivelink/internal/pjoin"
	"adaptivelink/internal/stream"
)

// TestCase is one column of Fig. 6.
type TestCase struct {
	// ID is the reporting label, e.g. "uniform/child-only".
	ID   string
	Spec datagen.Spec
}

// PaperTestCases returns the eight test cases of §4.1 at the given
// scale: for each Fig. 5 pattern, one case with variants only in the
// child and one with variants in both inputs.
func PaperTestCases(seed int64, parentSize, childSize int) []TestCase {
	var cases []TestCase
	for _, p := range datagen.AllPatterns {
		for _, both := range []bool{false, true} {
			spec := datagen.Defaults(p, both)
			spec.Seed = seed + int64(len(cases))
			spec.ParentSize = parentSize
			spec.ChildSize = childSize
			cases = append(cases, TestCase{ID: spec.Name(), Spec: spec})
		}
	}
	return cases
}

// RunConfig bundles the knobs of one experiment run.
type RunConfig struct {
	Join    join.Config
	Params  adaptive.Params
	Weights metrics.Weights
	// Trace records controller activations on the adaptive run.
	Trace bool
	// Parallelism shards the adaptive run across this many concurrent
	// engines with an aggregate control loop (internal/pjoin); 0 or 1
	// keeps the paper's sequential engine. The baselines always run
	// sequentially — they anchor r and R. Join.RetainWindow and
	// CostBudget compose with any Parallelism: windowed shards evict
	// against the global scan clock and the budget is enforced on the
	// aggregated spend counter, so the adaptive result is identical to
	// the sequential engine's.
	Parallelism int
	// CostBudget, when positive, pins the adaptive run to exact
	// matching once the modelled spend (under Weights) reaches it — the
	// §4.4 user-controlled trade-off. 0 disables it.
	CostBudget float64
}

// DefaultRunConfig returns the paper's best settings (§4.2) with the
// paper's measured weights.
func DefaultRunConfig() RunConfig {
	return RunConfig{
		Join:    join.Defaults(),
		Params:  adaptive.DefaultParams(),
		Weights: metrics.PaperWeights(),
	}
}

// Result is the outcome of one test case: the three runs (exact
// baseline, approximate baseline, adaptive) and the §4.3 metrics.
type Result struct {
	Case TestCase

	// Result sizes: r (all-exact), R (all-approximate), RAbs (adaptive).
	R     int
	RApx  int
	RAbs  int
	Steps int

	// AdaptiveStats is the adaptive engine's accounting.
	AdaptiveStats join.Stats
	// GainCost holds g_rel, c_rel and e.
	GainCost metrics.GainCost
	// Breakdown itemises the adaptive run's modelled cost.
	Breakdown metrics.CostBreakdown

	// Wall-clock times of the three runs on this host (informational;
	// the modelled cost uses Weights).
	WallExact    time.Duration
	WallApprox   time.Duration
	WallAdaptive time.Duration

	// Activations is the controller trace (with RunConfig.Trace).
	Activations []adaptive.Activation
}

// RunCase generates the dataset for a test case and executes the three
// runs over identical inputs with the canonical alternating scan
// (parent = left input).
func RunCase(tc TestCase, rc RunConfig) (*Result, error) {
	if err := rc.Join.Validate(); err != nil {
		return nil, err
	}
	if err := rc.Params.Validate(); err != nil {
		return nil, err
	}
	if err := rc.Weights.Validate(); err != nil {
		return nil, err
	}
	ds, err := datagen.Generate(tc.Spec)
	if err != nil {
		return nil, fmt.Errorf("exp: generate %s: %w", tc.ID, err)
	}
	res := &Result{Case: tc, Steps: ds.Parent.Len() + ds.Child.Len()}

	// All-exact baseline: result size r, cost baseline c.
	{
		e, err := join.NewSHJoin(stream.FromRelation(ds.Parent), stream.FromRelation(ds.Child), nil)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		n, err := drainCount[join.Match](e)
		if err != nil {
			return nil, fmt.Errorf("exp: exact run %s: %w", tc.ID, err)
		}
		res.WallExact = time.Since(start)
		res.R = n
	}

	// All-approximate baseline: result size R, cost baseline C.
	{
		e, err := join.NewSSHJoin(rc.Join, stream.FromRelation(ds.Parent), stream.FromRelation(ds.Child), nil)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		n, err := drainCount[join.Match](e)
		if err != nil {
			return nil, fmt.Errorf("exp: approximate run %s: %w", tc.ID, err)
		}
		res.WallApprox = time.Since(start)
		res.RApx = n
	}

	// Adaptive run: sequential engine, or the partition-parallel
	// executor with the aggregate control loop when Parallelism > 1.
	if rc.Parallelism > 1 {
		ctl, err := adaptive.NewSharded(rc.Parallelism, stream.Left, ds.Parent.Len(), rc.Params)
		if err != nil {
			return nil, err
		}
		if rc.Trace {
			ctl.EnableTrace()
		}
		if rc.CostBudget > 0 {
			if err := ctl.EnableCostBudget(rc.Weights, rc.CostBudget); err != nil {
				return nil, err
			}
		}
		ex, err := pjoin.New(pjoin.Config{Join: rc.Join, Shards: rc.Parallelism, Controller: ctl},
			stream.FromRelation(ds.Parent), stream.FromRelation(ds.Child))
		if err != nil {
			return nil, err
		}
		start := time.Now()
		n, err := drainCount[pjoin.Match](ex)
		if err != nil {
			return nil, fmt.Errorf("exp: parallel adaptive run %s: %w", tc.ID, err)
		}
		res.WallAdaptive = time.Since(start)
		res.RAbs = n
		ps := ex.Stats()
		// Steps is the shard-step total so the struct keeps the engine
		// invariant Steps == ΣStepsInState; with replication it exceeds
		// the scan length, and the §4.4 cost checks then report the
		// genuine replication overhead of the parallel run.
		res.AdaptiveStats = join.Stats{
			Steps:               ps.ShardSteps,
			Read:                ps.Read,
			Matches:             ps.Matches,
			ExactMatches:        ps.ExactMatches,
			ApproxMatches:       ps.ApproxMatches,
			StepsInState:        ps.StepsInState,
			TransitionsInto:     ps.TransitionsInto,
			Switches:            ps.Switches,
			CatchUpTuples:       ps.CatchUpTuples,
			Evicted:             ps.Evicted,
			IndexEntriesDropped: ps.IndexEntriesDropped,
		}
		res.Activations = ctl.Activations()
	} else {
		e, err := join.New(rc.Join, stream.FromRelation(ds.Parent), stream.FromRelation(ds.Child), nil)
		if err != nil {
			return nil, err
		}
		var opts []adaptive.Option
		if rc.Trace {
			opts = append(opts, adaptive.WithTrace())
		}
		if rc.CostBudget > 0 {
			opts = append(opts, adaptive.WithCostBudget(rc.Weights, rc.CostBudget))
		}
		ctl, err := adaptive.Attach(e, stream.Left, ds.Parent.Len(), rc.Params, opts...)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		n, err := drainCount[join.Match](e)
		if err != nil {
			return nil, fmt.Errorf("exp: adaptive run %s: %w", tc.ID, err)
		}
		res.WallAdaptive = time.Since(start)
		res.RAbs = n
		res.AdaptiveStats = e.Stats()
		res.Activations = ctl.Activations()
	}

	res.GainCost = metrics.Evaluate(res.AdaptiveStats, res.RAbs, res.R, res.RApx, res.Steps, rc.Weights)
	res.Breakdown = metrics.Cost(res.AdaptiveStats, rc.Weights)
	return res, nil
}

// RunAll executes every test case and returns the results in order.
func RunAll(cases []TestCase, rc RunConfig) ([]*Result, error) {
	results := make([]*Result, 0, len(cases))
	for _, tc := range cases {
		r, err := RunCase(tc, rc)
		if err != nil {
			return results, err
		}
		results = append(results, r)
	}
	return results, nil
}

// drainCount pulls an operator (sequential engine or parallel
// executor) to exhaustion, counting matches without retaining them.
func drainCount[T any](op iterator.Operator[T]) (int, error) {
	if err := op.Open(); err != nil {
		return 0, err
	}
	n := 0
	for {
		_, ok, err := op.Next()
		if err != nil {
			op.Close()
			return n, err
		}
		if !ok {
			break
		}
		n++
	}
	return n, op.Close()
}
