package exp

import (
	"fmt"
	"strings"
	"time"

	"adaptivelink/internal/datagen"
	"adaptivelink/internal/hashidx"
	"adaptivelink/internal/join"
	"adaptivelink/internal/qgram"
)

// Table1Row is one operation's measured cost for the two operators.
// Operations follow Table 1 of the paper; a nil (NaN-free) zero means
// the operation does not exist for that operator.
type Table1Row struct {
	Operation string
	// SHJoinNs and SSHJoinNs are average nanoseconds per operation;
	// -1 marks "not applicable" (the paper's "–").
	SHJoinNs  float64
	SSHJoinNs float64
}

// MeasureTable1 times the four per-tuple operations of Table 1 on a
// corpus of n generated location keys: (1) obtain q-grams, (2) update
// the hash table, (3) compute the candidate set T(t) with counters,
// (4) find matches. For SHJoin, (1) and (3) do not apply and (2)/(4)
// are the single-key insert/lookup; for SSHJoin, (3) is the optimised
// reverse-frequency probe and (4) the threshold filter + similarity
// verification over T(t).
func MeasureTable1(n int, seed int64, cfg join.Config) ([]Table1Row, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n < 2 {
		return nil, fmt.Errorf("exp: table1 corpus size %d too small", n)
	}
	names := datagen.NewNameGen(seed)
	keys := make([]string, n)
	for i := range keys {
		keys[i] = names.Next()
	}
	ex := qgram.New(cfg.Q)

	rows := make([]Table1Row, 4)
	rows[0] = Table1Row{Operation: "1. obtain q-grams", SHJoinNs: -1}
	rows[1] = Table1Row{Operation: "2. update hash table"}
	rows[2] = Table1Row{Operation: "3. compute T(t) and counters", SHJoinNs: -1}
	rows[3] = Table1Row{Operation: "4. find matches"}

	// (1) obtain q-grams — SSHJoin only.
	start := time.Now()
	var gramSink int
	for _, k := range keys {
		gramSink += len(ex.Grams(k))
	}
	rows[0].SSHJoinNs = perOp(start, n)

	// (2) update hash table.
	exIdx := hashidx.NewExactIndex()
	start = time.Now()
	for i, k := range keys {
		exIdx.Insert(i, k)
	}
	rows[1].SHJoinNs = perOp(start, n)

	qgIdx := hashidx.NewQGramIndex(ex)
	start = time.Now()
	for i, k := range keys {
		qgIdx.Insert(i, k)
	}
	rows[1].SSHJoinNs = perOp(start, n)

	// (3) compute T(t) and counters — SSHJoin only. Probe every key
	// against the loaded index with the configured overlap bound.
	probes := keys
	if len(probes) > 2000 {
		probes = probes[:2000]
	}
	var candSink int
	start = time.Now()
	for _, k := range probes {
		g := len(ex.Grams(k))
		k2 := cfg.Measure.MinOverlap(g, cfg.Theta)
		candSink += len(qgIdx.Probe(k, k2))
	}
	rows[2].SSHJoinNs = perOp(start, len(probes))

	// (4) find matches: exact lookup vs candidate verification.
	var lookupSink int
	start = time.Now()
	for _, k := range probes {
		lookupSink += len(exIdx.Lookup(k))
	}
	rows[3].SHJoinNs = perOp(start, len(probes))

	// For SSHJoin, verification re-scores every candidate of T(t).
	type probeSet struct {
		g     int
		cands []hashidx.Candidate
	}
	sets := make([]probeSet, len(probes))
	for i, k := range probes {
		g := len(ex.Grams(k))
		sets[i] = probeSet{g: g, cands: qgIdx.Probe(k, cfg.Measure.MinOverlap(g, cfg.Theta))}
	}
	var simSink float64
	start = time.Now()
	for _, ps := range sets {
		for _, c := range ps.cands {
			simSink += cfg.Measure.Coefficient(ps.g, qgIdx.GramSize(c.Ref), c.Overlap)
		}
	}
	rows[3].SSHJoinNs = perOp(start, len(probes))

	// Keep the sinks alive so the compiler cannot elide the loops.
	if gramSink < 0 || candSink < 0 || lookupSink < 0 || simSink < 0 {
		return nil, fmt.Errorf("exp: impossible sink state")
	}
	return rows, nil
}

func perOp(start time.Time, n int) float64 {
	return float64(time.Since(start).Nanoseconds()) / float64(n)
}

// Table1Text renders measured rows in the layout of Table 1, with the
// SSHJoin/SHJoin cost ratio where both sides exist.
func Table1Text(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1 — measured cost of SSHJoin and SHJoin operations (ns/op)\n")
	fmt.Fprintf(&b, "%-32s %12s %12s %8s\n", "operation", "SHJoin", "SSHJoin", "ratio")
	for _, r := range rows {
		sh, ap := "–", "–"
		if r.SHJoinNs >= 0 {
			sh = fmt.Sprintf("%.0f", r.SHJoinNs)
		}
		if r.SSHJoinNs >= 0 {
			ap = fmt.Sprintf("%.0f", r.SSHJoinNs)
		}
		ratio := ""
		if r.SHJoinNs > 0 && r.SSHJoinNs > 0 {
			ratio = fmt.Sprintf("%.1fx", r.SSHJoinNs/r.SHJoinNs)
		}
		fmt.Fprintf(&b, "%-32s %12s %12s %8s\n", r.Operation, sh, ap, ratio)
	}
	return b.String()
}
