package datagen

import "fmt"

// Pattern is one of the four perturbation placements of Fig. 5.
type Pattern int

const (
	// Uniform spreads variants evenly across the whole input (Fig. 5a).
	Uniform Pattern = iota
	// InterleavedLow alternates low-intensity perturbation regions with
	// unperturbed stretches (Fig. 5b).
	InterleavedLow
	// FewHighIntensity places a small number of well-separated
	// high-intensity regions (Fig. 5c).
	FewHighIntensity
	// ManyHighIntensity places many short high-intensity regions
	// (Fig. 5d); with the total variant rate fixed, more regions means
	// shorter ones.
	ManyHighIntensity
)

// AllPatterns lists the patterns in Fig. 5 order.
var AllPatterns = []Pattern{Uniform, InterleavedLow, FewHighIntensity, ManyHighIntensity}

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case Uniform:
		return "uniform"
	case InterleavedLow:
		return "interleaved-low"
	case FewHighIntensity:
		return "few-high"
	case ManyHighIntensity:
		return "many-high"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Region is a contiguous stretch of input positions [Start, End) whose
// tuples are perturbed with probability Intensity.
type Region struct {
	Start     int
	End       int
	Intensity float64
}

// Len returns the region length.
func (r Region) Len() int { return r.End - r.Start }

// Contains reports whether position i falls inside the region.
func (r Region) Contains(i int) bool { return i >= r.Start && i < r.End }

// Regions lays out the perturbation regions of a pattern over an input
// of n tuples such that the expected overall variant proportion equals
// rate. The paper controls (i) region intensity, (ii) region length and
// (iii) inter-region spacing (§4.1); the layouts below fix those knobs
// per pattern:
//
//	Uniform:            one region covering everything, intensity = rate
//	InterleavedLow:     8 regions covering half the input (alternating
//	                    with equal unperturbed gaps), intensity = 2·rate
//	FewHighIntensity:   3 regions at intensity 0.9
//	ManyHighIntensity:  12 regions at intensity 0.9
func Regions(p Pattern, n int, rate float64) ([]Region, error) {
	if n <= 0 {
		return nil, fmt.Errorf("datagen: input size %d must be positive", n)
	}
	if rate < 0 || rate > 1 {
		return nil, fmt.Errorf("datagen: variant rate %v outside [0,1]", rate)
	}
	if rate == 0 {
		return nil, nil
	}
	switch p {
	case Uniform:
		return []Region{{Start: 0, End: n, Intensity: rate}}, nil
	case InterleavedLow:
		return spread(n, 8, 2*rate)
	case FewHighIntensity:
		return packed(n, 3, 0.9, rate)
	case ManyHighIntensity:
		return packed(n, 12, 0.9, rate)
	default:
		return nil, fmt.Errorf("datagen: unknown pattern %d", int(p))
	}
}

// spread lays out k regions of equal length alternating with equal
// gaps, covering half the input, each at the given intensity.
func spread(n, k int, intensity float64) ([]Region, error) {
	if intensity > 1 {
		intensity = 1
	}
	if k > n {
		k = n
	}
	period := n / k
	regLen := period / 2
	if regLen < 1 {
		regLen = 1
	}
	regions := make([]Region, 0, k)
	for i := 0; i < k; i++ {
		start := i * period
		end := start + regLen
		if end > n {
			end = n
		}
		if start >= end {
			break
		}
		regions = append(regions, Region{Start: start, End: end, Intensity: intensity})
	}
	return regions, nil
}

// packed lays out k regions at a fixed high intensity, sized so the
// expected number of variants across the whole input is rate·n, and
// spaced evenly.
func packed(n, k int, intensity, rate float64) ([]Region, error) {
	total := rate * float64(n) / intensity // total perturbed positions
	regLen := int(total / float64(k))
	if regLen < 1 {
		regLen = 1
	}
	period := n / k
	if regLen > period {
		regLen = period
	}
	regions := make([]Region, 0, k)
	for i := 0; i < k; i++ {
		// Centre each region inside its period slot.
		start := i*period + (period-regLen)/2
		end := start + regLen
		if end > n {
			end = n
		}
		if start >= end {
			break
		}
		regions = append(regions, Region{Start: start, End: end, Intensity: intensity})
	}
	return regions, nil
}

// ExpectedVariants returns the expected number of variants the regions
// induce on an input of n tuples.
func ExpectedVariants(regions []Region, n int) float64 {
	total := 0.0
	for _, r := range regions {
		end := r.End
		if end > n {
			end = n
		}
		if end > r.Start {
			total += float64(end-r.Start) * r.Intensity
		}
	}
	return total
}

// Render draws an ASCII map of the regions over an input of n tuples,
// compressed to width columns — the Fig. 5 visualisation used by
// cmd/experiments. Darker characters mean higher intensity.
func Render(regions []Region, n, width int) string {
	if width < 1 || n < 1 {
		return ""
	}
	cells := make([]float64, width)
	for _, r := range regions {
		for i := r.Start; i < r.End && i < n; i++ {
			cells[i*width/n] += r.Intensity
		}
	}
	// Normalise cell sums by the positions mapped into each cell.
	counts := make([]int, width)
	for i := 0; i < n; i++ {
		counts[i*width/n]++
	}
	var b []byte
	for i, c := range cells {
		v := 0.0
		if counts[i] > 0 {
			v = c / float64(counts[i])
		}
		switch {
		case v == 0:
			b = append(b, '.')
		case v < 0.25:
			b = append(b, '-')
		case v < 0.6:
			b = append(b, '+')
		default:
			b = append(b, '#')
		}
	}
	return string(b)
}
