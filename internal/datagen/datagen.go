package datagen

import (
	"fmt"
	"math/rand"

	"adaptivelink/internal/relation"
)

// DefaultParentSize matches the paper's parent table: all 8082 Italian
// municipalities.
const DefaultParentSize = 8082

// DefaultVariantRate is the paper's fixed variant proportion: "we have
// set the proportion of variants within an input at a fixed 10%".
const DefaultVariantRate = 0.10

// Spec describes one generated dataset.
type Spec struct {
	// Seed drives all randomness; equal specs generate equal datasets.
	Seed int64
	// ParentSize is |R| (default 8082 via Defaults).
	ParentSize int
	// ChildSize is |S|; every child references exactly one parent.
	ChildSize int
	// VariantRate is the overall proportion of variants within each
	// perturbed input.
	VariantRate float64
	// Pattern places the variants (Fig. 5).
	Pattern Pattern
	// PerturbParent additionally perturbs the parent input with the
	// same pattern ("variants in both tables"); the child input is
	// always perturbed.
	PerturbParent bool
	// Script selects the writing system keys are composed from
	// (default ASCII, the paper's setting); non-Latin scripts drive the
	// engine's Unicode paths in parity, fuzz and benchmark harnesses.
	Script Script
}

// Defaults returns the paper's evaluation configuration for the given
// pattern and perturbation sides.
func Defaults(pattern Pattern, both bool) Spec {
	return Spec{
		Seed:          1,
		ParentSize:    DefaultParentSize,
		ChildSize:     DefaultParentSize,
		VariantRate:   DefaultVariantRate,
		Pattern:       pattern,
		PerturbParent: both,
	}
}

// Validate reports the first invalid field, if any.
func (s Spec) Validate() error {
	if s.ParentSize < 1 {
		return fmt.Errorf("datagen: parent size %d < 1", s.ParentSize)
	}
	if s.ChildSize < 0 {
		return fmt.Errorf("datagen: child size %d < 0", s.ChildSize)
	}
	if s.VariantRate < 0 || s.VariantRate > 1 {
		return fmt.Errorf("datagen: variant rate %v outside [0,1]", s.VariantRate)
	}
	switch s.Pattern {
	case Uniform, InterleavedLow, FewHighIntensity, ManyHighIntensity:
	default:
		return fmt.Errorf("datagen: unknown pattern %d", int(s.Pattern))
	}
	if _, ok := scriptTables[s.Script]; !ok {
		return fmt.Errorf("datagen: unknown script %d", int(s.Script))
	}
	return nil
}

// Name returns a compact test-case label, e.g. "few-high/child-only".
func (s Spec) Name() string {
	side := "child-only"
	if s.PerturbParent {
		side = "both"
	}
	name := s.Pattern.String() + "/" + side
	if s.Script != ASCII {
		name += "/" + s.Script.String()
	}
	return name
}

// Dataset is a generated parent/child table pair with ground truth.
type Dataset struct {
	Spec   Spec
	Parent *relation.Relation
	Child  *relation.Relation
	// ChildParent[i] is the parent ref that child i represents — the
	// ground-truth linkage, independent of any perturbation.
	ChildParent []int
	// ParentVariant[j] / ChildVariant[i] flag perturbed tuples.
	ParentVariant []bool
	ChildVariant  []bool
	// ParentRegions / ChildRegions are the perturbation layouts applied.
	ParentRegions []Region
	ChildRegions  []Region
}

// Generate builds a dataset from a spec. Generation is deterministic in
// the seed.
func Generate(spec Spec) (*Dataset, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	names := NewNameGenScript(rng.Int63(), spec.Script)

	cleanParent := make([]string, spec.ParentSize)
	for j := range cleanParent {
		cleanParent[j] = names.Next()
	}

	ds := &Dataset{
		Spec:          spec,
		ChildParent:   make([]int, spec.ChildSize),
		ParentVariant: make([]bool, spec.ParentSize),
		ChildVariant:  make([]bool, spec.ChildSize),
	}

	// Lay out perturbation regions.
	childRegions, err := Regions(spec.Pattern, spec.ChildSize, spec.VariantRate)
	if err != nil {
		return nil, err
	}
	ds.ChildRegions = childRegions
	if spec.PerturbParent {
		parentRegions, err := Regions(spec.Pattern, spec.ParentSize, spec.VariantRate)
		if err != nil {
			return nil, err
		}
		ds.ParentRegions = parentRegions
	}

	// Parent table: location key plus a synthetic map coordinate, the
	// "street atlas" payload of the motivating scenario.
	ds.Parent = relation.New("locations", relation.NewSchema("location", "lat", "lon"))
	for j, key := range cleanParent {
		stored := key
		if spec.PerturbParent && perturbed(rng, ds.ParentRegions, j) {
			stored = Mutate(rng, key)
			ds.ParentVariant[j] = true
		}
		ds.Parent.Append(stored,
			fmt.Sprintf("%.5f", 36.0+rng.Float64()*11.0),
			fmt.Sprintf("%.5f", 6.6+rng.Float64()*11.9),
		)
	}

	// Child table: accidents referencing uniformly random locations (the
	// uniform reference is what makes the observed result size binomial,
	// §3.2), with a date payload.
	ds.Child = relation.New("accidents", relation.NewSchema("location", "accident_id", "date"))
	for i := 0; i < spec.ChildSize; i++ {
		p := rng.Intn(spec.ParentSize)
		ds.ChildParent[i] = p
		key := cleanParent[p]
		if perturbed(rng, childRegions, i) {
			key = Mutate(rng, key)
			ds.ChildVariant[i] = true
		}
		ds.Child.Append(key,
			fmt.Sprintf("A%07d", i),
			fmt.Sprintf("2008-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28)),
		)
	}
	return ds, nil
}

// perturbed decides whether position i, covered by some region, is
// turned into a variant.
func perturbed(rng *rand.Rand, regions []Region, i int) bool {
	for _, r := range regions {
		if r.Contains(i) {
			return rng.Float64() < r.Intensity
		}
	}
	return false
}

// VariantCount returns the number of variant tuples in the child and
// parent inputs.
func (d *Dataset) VariantCount() (child, parent int) {
	for _, v := range d.ChildVariant {
		if v {
			child++
		}
	}
	for _, v := range d.ParentVariant {
		if v {
			parent++
		}
	}
	return child, parent
}

// TrueMatches returns the number of ground-truth child–parent links
// whose keys still match exactly after perturbation — the exact join's
// attainable result size.
func (d *Dataset) TrueMatches() int {
	n := 0
	for i, p := range d.ChildParent {
		if d.Child.At(i).Key == d.Parent.At(p).Key {
			n++
		}
	}
	return n
}
