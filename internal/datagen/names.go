// Package datagen synthesises the evaluation datasets of §4.1: a parent
// table of Italian-municipality-style location strings and a child table
// of accident records referencing them, with controlled perturbation
// patterns (Fig. 5) injecting 1-character variants.
//
// The paper used a generator by Markl et al. (footnote 5) that is not
// publicly available; this package substitutes a synthetic equivalent
// with the same externally visible properties (see DESIGN.md):
//
//   - parent keys are long composite strings "REGION PROVINCE NAME",
//     mutually dissimilar under q-gram Jaccard (so the tuned threshold
//     θsim admits no false positives),
//   - every child references exactly one parent (the parent–child
//     expectation of §3.2), chosen uniformly at random,
//   - variants are single-character substitutions (edit distance 1),
//     guaranteed to fail an exact match while staying above θsim,
//   - variants are placed by pattern: uniform, interleaved low-intensity
//     regions, few high-intensity regions, many high-intensity regions.
package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"adaptivelink/internal/qgram"
)

// regionCodes are the three-letter region prefixes (the paper's example
// "TAA BZ SANTA CRISTINA VALGARDENA" uses TAA = Trentino-Alto Adige).
var regionCodes = []string{
	"PIE", "VDA", "LOM", "TAA", "VEN", "FVG", "LIG", "EMR", "TOS", "UMB",
	"MAR", "LAZ", "ABR", "MOL", "CAM", "PUG", "BAS", "CAL", "SIC", "SAR",
}

// provinceCodes are two-letter province prefixes.
var provinceCodes = []string{
	"TO", "AO", "MI", "BZ", "VE", "TS", "GE", "BO", "FI", "PG",
	"AN", "RM", "AQ", "CB", "NA", "BA", "PZ", "CZ", "PA", "CA",
	"BG", "BS", "VR", "PD", "TN", "UD", "SV", "MO", "PI", "SI",
}

// syllables compose pronounceable pseudo-Italian place-name words.
var syllables = []string{
	"MON", "TE", "SAN", "TA", "CRI", "STI", "NA", "VAL", "GAR", "DE",
	"CA", "STEL", "NUO", "VO", "PIE", "TRA", "ROC", "FIU", "ME", "POG",
	"GIO", "BOR", "GO", "VIL", "LA", "FER", "RA", "TOR", "RE", "COL",
	"LI", "GRAN", "SER", "PO", "LON", "MAR", "TI", "BEL", "VE", "DO",
}

// NameGen deterministically produces unique location keys. It is safe to
// create many generators with different seeds; the same seed yields the
// same sequence.
type NameGen struct {
	rng   *rand.Rand
	seen  map[string]struct{}
	ex    *qgram.Extractor
	parts scriptParts
	// minGrams is the minimum number of distinct padded q=3 grams a key
	// must have. A 1-character substitution disturbs at most q = 3
	// distinct grams, so a key with D distinct grams keeps Jaccard ≥
	// (D-3)/(D+3) to its variant; D ≥ 26 guarantees ≥ 23/29 ≈ 0.79,
	// comfortably above the calibrated θsim = 0.75 (join.DefaultTheta).
	minGrams int
}

// NewNameGen returns a generator seeded with seed, producing the
// default pseudo-Italian ASCII keys.
func NewNameGen(seed int64) *NameGen { return NewNameGenScript(seed, ASCII) }

// NewNameGenScript returns a generator composing keys in the given
// script. Unknown scripts fall back to ASCII (Spec.Validate rejects
// them before generation).
func NewNameGenScript(seed int64, script Script) *NameGen {
	parts, ok := scriptTables[script]
	if !ok {
		parts = scriptTables[ASCII]
	}
	return &NameGen{
		rng:      rand.New(rand.NewSource(seed)),
		seen:     make(map[string]struct{}),
		ex:       qgram.New(3),
		parts:    parts,
		minGrams: 26,
	}
}

// word builds one place-name word of 2–4 syllables.
func (g *NameGen) word() string {
	n := 2 + g.rng.Intn(3)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(g.parts.syllables[g.rng.Intn(len(g.parts.syllables))])
	}
	return b.String()
}

// Next returns a fresh unique location key, e.g.
// "TAA BZ SANTACRISTINA VALGARDENA".
func (g *NameGen) Next() string {
	for attempt := 0; ; attempt++ {
		parts := []string{
			g.parts.regions[g.rng.Intn(len(g.parts.regions))],
			g.parts.provinces[g.rng.Intn(len(g.parts.provinces))],
			g.word(),
			g.word(),
		}
		key := strings.Join(parts, " ")
		for len(g.ex.Grams(key)) < g.minGrams {
			key += " " + g.word()
		}
		if _, dup := g.seen[key]; !dup {
			g.seen[key] = struct{}{}
			return key
		}
		if attempt > 10000 {
			// The syllable space holds billions of combinations; running
			// dry indicates a bug, not bad luck.
			panic(fmt.Sprintf("datagen: cannot generate a fresh key after %d attempts", attempt))
		}
	}
}

// Mutate returns a variant of key at edit distance exactly 1: a single
// in-place character substitution that keeps the key's rune length,
// avoids the separator spaces (so the word structure survives) and
// never reproduces the original character. The replacement stays in the
// replaced rune's script (x/z for Latin, Ж/Щ for Cyrillic, Ξ/Ψ for
// Greek, 鑫/龍 for CJK), mirroring the paper's
// "SANTA CRISTINA" → "SANTA CRISTINx" example across writing systems.
func Mutate(rng *rand.Rand, key string) string {
	rs := []rune(key)
	// Collect substitutable positions (non-space).
	positions := make([]int, 0, len(rs))
	for i, r := range rs {
		if r != ' ' {
			positions = append(positions, i)
		}
	}
	if len(positions) == 0 {
		return key + "x"
	}
	i := positions[rng.Intn(len(positions))]
	rs[i] = replacementFor(rs[i])
	return string(rs)
}
