package datagen

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"adaptivelink/internal/join"
	"adaptivelink/internal/qgram"
	"adaptivelink/internal/simfn"
)

func TestNameGenUniqueAndShaped(t *testing.T) {
	g := NewNameGen(42)
	seen := map[string]struct{}{}
	for i := 0; i < 2000; i++ {
		k := g.Next()
		if _, dup := seen[k]; dup {
			t.Fatalf("duplicate key %q", k)
		}
		seen[k] = struct{}{}
		parts := strings.Fields(k)
		if len(parts) < 4 {
			t.Fatalf("key %q has %d fields, want >= 4", k, len(parts))
		}
		if len(parts[0]) != 3 || len(parts[1]) != 2 {
			t.Fatalf("key %q lacks REGION/PROVINCE prefix", k)
		}
	}
}

func TestNameGenDeterministic(t *testing.T) {
	a, b := NewNameGen(7), NewNameGen(7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestMutateEditDistanceOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := NewNameGen(2)
	for i := 0; i < 500; i++ {
		key := g.Next()
		v := Mutate(rng, key)
		if v == key {
			t.Fatalf("Mutate returned the original %q", key)
		}
		if d := simfn.Levenshtein(key, v); d != 1 {
			t.Fatalf("Mutate(%q) = %q at distance %d, want 1", key, v, d)
		}
	}
}

func TestMutatePreservesSpaces(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	key := "AB CD EF"
	for i := 0; i < 100; i++ {
		if strings.Count(Mutate(rng, key), " ") != 2 {
			t.Fatal("Mutate touched a separator space")
		}
	}
}

func TestMutateDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if got := Mutate(rng, "   "); got == "   " {
		// all-space keys get an appended character
	} else if got != "   x" {
		t.Errorf("Mutate(spaces) = %q", got)
	}
	if got := Mutate(rng, "xxxx"); strings.Contains(got, "z") == false {
		t.Errorf("Mutate of all-x key %q must substitute a z", got)
	}
}

// Calibration property 1: every variant stays above the calibrated
// similarity threshold against its original.
func TestVariantSimilarityAboveThreshold(t *testing.T) {
	sim := simfn.JaccardQGram(3)
	rng := rand.New(rand.NewSource(5))
	g := NewNameGen(6)
	min := 1.0
	for i := 0; i < 1000; i++ {
		key := g.Next()
		s := sim(key, Mutate(rng, key))
		if s < min {
			min = s
		}
	}
	if min < join.DefaultTheta {
		t.Errorf("variant similarity %v fell below θsim=%v", min, join.DefaultTheta)
	}
}

// Calibration property 2: distinct keys rarely reach the threshold, so
// the approximate join's false-positive rate is negligible (the paper
// tuned θsim for exactly this on its own generator).
func TestCrossSimilarityBelowThreshold(t *testing.T) {
	sim := simfn.JaccardQGram(3)
	g := NewNameGen(8)
	keys := make([]string, 250)
	for i := range keys {
		keys[i] = g.Next()
	}
	pairs, fp := 0, 0
	for i := range keys {
		for j := i + 1; j < len(keys); j++ {
			pairs++
			if sim(keys[i], keys[j]) >= join.DefaultTheta {
				fp++
			}
		}
	}
	if rate := float64(fp) / float64(pairs); rate > 0.001 {
		t.Errorf("false-positive rate %v (%d/%d pairs) above 0.1%%", rate, fp, pairs)
	}
}

func TestRegionsExpectedVariantBudget(t *testing.T) {
	const n, rate = 8082, 0.10
	for _, p := range AllPatterns {
		regions, err := Regions(p, n, rate)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		got := ExpectedVariants(regions, n) / float64(n)
		if math.Abs(got-rate) > 0.02 {
			t.Errorf("%v: expected variant proportion %v, want ~%v", p, got, rate)
		}
		for _, r := range regions {
			if r.Start < 0 || r.End > n || r.Start >= r.End {
				t.Errorf("%v: malformed region %+v", p, r)
			}
			if r.Intensity <= 0 || r.Intensity > 1 {
				t.Errorf("%v: intensity %v out of range", p, r.Intensity)
			}
		}
	}
}

func TestRegionsShapeDiffersByPattern(t *testing.T) {
	const n, rate = 8000, 0.10
	uni, _ := Regions(Uniform, n, rate)
	low, _ := Regions(InterleavedLow, n, rate)
	few, _ := Regions(FewHighIntensity, n, rate)
	many, _ := Regions(ManyHighIntensity, n, rate)
	if len(uni) != 1 || uni[0].Len() != n {
		t.Errorf("uniform should be one full-width region: %+v", uni)
	}
	if len(few) != 3 || len(many) != 12 {
		t.Errorf("region counts: few=%d many=%d", len(few), len(many))
	}
	if len(low) != 8 {
		t.Errorf("interleaved-low regions = %d", len(low))
	}
	if few[0].Intensity < 0.8 || many[0].Intensity < 0.8 {
		t.Error("high-intensity patterns not high-intensity")
	}
	// With the total budget fixed, more regions means shorter ones.
	if many[0].Len() >= few[0].Len() {
		t.Errorf("many-high region len %d >= few-high %d", many[0].Len(), few[0].Len())
	}
}

func TestRegionsValidation(t *testing.T) {
	if _, err := Regions(Uniform, 0, 0.1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Regions(Uniform, 10, -0.1); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := Regions(Pattern(99), 10, 0.1); err == nil {
		t.Error("unknown pattern accepted")
	}
	if rs, err := Regions(Uniform, 10, 0); err != nil || rs != nil {
		t.Errorf("rate=0: %v %v", rs, err)
	}
}

func TestPatternString(t *testing.T) {
	want := map[Pattern]string{
		Uniform: "uniform", InterleavedLow: "interleaved-low",
		FewHighIntensity: "few-high", ManyHighIntensity: "many-high",
	}
	for p, w := range want {
		if p.String() != w {
			t.Errorf("%d.String() = %q", int(p), p.String())
		}
	}
	if Pattern(9).String() != "Pattern(9)" {
		t.Error("unknown pattern string")
	}
}

func TestRender(t *testing.T) {
	regions := []Region{{Start: 0, End: 50, Intensity: 0.9}, {Start: 80, End: 100, Intensity: 0.1}}
	m := Render(regions, 100, 20)
	if len(m) != 20 {
		t.Fatalf("Render width %d, want 20", len(m))
	}
	if m[0] != '#' {
		t.Errorf("high-intensity cell rendered %q", m[0])
	}
	if m[12] != '.' {
		t.Errorf("empty cell rendered %q", m[12])
	}
	if m[17] != '-' {
		t.Errorf("low-intensity cell rendered %q, map %q", m[17], m)
	}
	if Render(nil, 0, 10) != "" || Render(nil, 10, 0) != "" {
		t.Error("degenerate Render not empty")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Defaults(FewHighIntensity, true)
	spec.ParentSize, spec.ChildSize = 500, 500
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate(spec)
	for i := 0; i < a.Child.Len(); i++ {
		if a.Child.At(i).Key != b.Child.At(i).Key {
			t.Fatal("same spec generated different children")
		}
	}
	for j := 0; j < a.Parent.Len(); j++ {
		if a.Parent.At(j).Key != b.Parent.At(j).Key {
			t.Fatal("same spec generated different parents")
		}
	}
}

func TestGenerateStructure(t *testing.T) {
	spec := Defaults(Uniform, false)
	spec.ParentSize, spec.ChildSize = 800, 1200
	d, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if d.Parent.Len() != 800 || d.Child.Len() != 1200 {
		t.Fatalf("sizes %d/%d", d.Parent.Len(), d.Child.Len())
	}
	if len(d.ChildParent) != 1200 {
		t.Fatal("ChildParent length wrong")
	}
	for i, p := range d.ChildParent {
		if p < 0 || p >= 800 {
			t.Fatalf("child %d references parent %d", i, p)
		}
	}
	if d.ParentRegions != nil {
		t.Error("parent perturbed without PerturbParent")
	}
	// Payload shape: accidents carry id and date, locations lat/lon.
	if got := d.Child.Schema.AttrNames; len(got) != 2 || got[0] != "accident_id" {
		t.Errorf("child schema %v", got)
	}
	if got := d.Parent.Schema.AttrNames; len(got) != 2 || got[0] != "lat" {
		t.Errorf("parent schema %v", got)
	}
}

func TestGenerateVariantRate(t *testing.T) {
	for _, p := range AllPatterns {
		spec := Defaults(p, true)
		spec.ParentSize, spec.ChildSize = 4000, 4000
		spec.Seed = int64(p) + 10
		d, err := Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		cv, pv := d.VariantCount()
		crate := float64(cv) / 4000
		prate := float64(pv) / 4000
		if math.Abs(crate-0.10) > 0.03 {
			t.Errorf("%v: child variant rate %v, want ~0.10", p, crate)
		}
		if math.Abs(prate-0.10) > 0.03 {
			t.Errorf("%v: parent variant rate %v, want ~0.10", p, prate)
		}
	}
}

func TestGenerateVariantsMatchFlags(t *testing.T) {
	spec := Defaults(ManyHighIntensity, true)
	spec.ParentSize, spec.ChildSize = 600, 600
	d, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600; i++ {
		p := d.ChildParent[i]
		exact := d.Child.At(i).Key == d.Parent.At(p).Key
		wantExact := !d.ChildVariant[i] && !d.ParentVariant[p]
		if exact != wantExact {
			t.Fatalf("child %d: exact=%v but flags child=%v parent=%v",
				i, exact, d.ChildVariant[i], d.ParentVariant[p])
		}
	}
	if got, want := d.TrueMatches(), countExact(d); got != want {
		t.Errorf("TrueMatches() = %d, recount %d", got, want)
	}
}

func countExact(d *Dataset) int {
	n := 0
	for i, p := range d.ChildParent {
		if d.Child.At(i).Key == d.Parent.At(p).Key {
			n++
		}
	}
	return n
}

func TestGenerateVariantsInsideRegions(t *testing.T) {
	spec := Defaults(FewHighIntensity, false)
	spec.ParentSize, spec.ChildSize = 2000, 2000
	d, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i, isVar := range d.ChildVariant {
		if !isVar {
			continue
		}
		inside := false
		for _, r := range d.ChildRegions {
			if r.Contains(i) {
				inside = true
				break
			}
		}
		if !inside {
			t.Fatalf("variant at %d outside every region", i)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{ParentSize: 0, ChildSize: 1, VariantRate: 0.1},
		{ParentSize: 1, ChildSize: -1, VariantRate: 0.1},
		{ParentSize: 1, ChildSize: 1, VariantRate: 1.5},
		{ParentSize: 1, ChildSize: 1, VariantRate: 0.1, Pattern: Pattern(44)},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d validated", i)
		}
	}
	if err := Defaults(Uniform, false).Validate(); err != nil {
		t.Errorf("Defaults invalid: %v", err)
	}
}

func TestSpecName(t *testing.T) {
	if got := Defaults(Uniform, false).Name(); got != "uniform/child-only" {
		t.Errorf("Name() = %q", got)
	}
	if got := Defaults(ManyHighIntensity, true).Name(); got != "many-high/both" {
		t.Errorf("Name() = %q", got)
	}
}

// Property: generation never panics and keeps rates sane across random
// small specs.
func TestGenerateProperty(t *testing.T) {
	f := func(seed int64, pRaw, sizeRaw uint8, both bool) bool {
		spec := Spec{
			Seed:          seed,
			ParentSize:    50 + int(sizeRaw)%300,
			ChildSize:     50 + int(sizeRaw)%300,
			VariantRate:   float64(pRaw%30) / 100,
			Pattern:       AllPatterns[int(pRaw)%len(AllPatterns)],
			PerturbParent: both,
		}
		d, err := Generate(spec)
		if err != nil {
			return false
		}
		cv, pv := d.VariantCount()
		if !both && pv != 0 {
			return false
		}
		return cv <= d.Child.Len() && d.TrueMatches() <= d.Child.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestScriptGenerators(t *testing.T) {
	ex := qgram.New(3)
	jaccard := simfn.TokenSim(simfn.Jaccard, ex)
	for _, script := range Scripts {
		script := script
		t.Run(script.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			g := NewNameGenScript(5, script)
			seen := map[string]struct{}{}
			for i := 0; i < 500; i++ {
				k := g.Next()
				if _, dup := seen[k]; dup {
					t.Fatalf("duplicate key %q", k)
				}
				seen[k] = struct{}{}
				if script != ASCII && isASCIIString(k) {
					t.Fatalf("script %v generated pure-ASCII key %q", script, k)
				}
				if n := len(ex.Grams(k)); n < 26 {
					t.Fatalf("key %q has %d distinct grams, want >= 26", k, n)
				}
				v := Mutate(rng, k)
				if v == k {
					t.Fatalf("Mutate returned the original %q", k)
				}
				if d := simfn.Levenshtein(k, v); d != 1 {
					t.Fatalf("Mutate(%q) = %q at rune distance %d, want 1", k, v, d)
				}
				// The variant must stay above the calibrated threshold
				// under padded q=3 Jaccard, like the ASCII generator.
				if sim := jaccard(k, v); sim < join.DefaultTheta {
					t.Fatalf("variant %q of %q has similarity %v < theta %v", v, k, sim, join.DefaultTheta)
				}
			}
		})
	}
}

func TestGenerateScriptedDataset(t *testing.T) {
	for _, script := range []Script{Cyrillic, Greek, CJK, LatinDiacritic} {
		spec := Defaults(FewHighIntensity, false)
		spec.ParentSize, spec.ChildSize = 300, 300
		spec.Script = script
		ds, err := Generate(spec)
		if err != nil {
			t.Fatalf("Generate(%v): %v", script, err)
		}
		child, _ := ds.VariantCount()
		if child == 0 {
			t.Fatalf("script %v dataset has no child variants", script)
		}
		if got := ds.Spec.Name(); !strings.Contains(got, script.String()) {
			t.Fatalf("Spec.Name() = %q, want script suffix %q", got, script.String())
		}
	}
}

func TestValidateRejectsUnknownScript(t *testing.T) {
	spec := Defaults(Uniform, false)
	spec.Script = Script(99)
	if err := spec.Validate(); err == nil {
		t.Fatal("Validate accepted unknown script")
	}
}

func isASCIIString(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}
