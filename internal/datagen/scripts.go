package datagen

import "fmt"

// Script selects the writing system the generator composes location
// keys from. The default (ASCII) is the paper's pseudo-Italian setting;
// the non-Latin scripts exist so parity, fuzz and benchmark harnesses
// exercise the engine's Unicode paths — rune-packed q-grams, profile
// normalization — on realistic key shapes rather than mangled ASCII.
type Script int

const (
	// ASCII is the historical default: pseudo-Italian place names over
	// A–Z (the paper's §4.1 generator shape).
	ASCII Script = iota
	// LatinDiacritic composes Latin keys with diacritics and special
	// letters (ÅØÜÉŠŁ...), the shape the "latin" normalization profile
	// targets.
	LatinDiacritic
	// Cyrillic composes Russian-style place names (Кириллица).
	Cyrillic
	// Greek composes Greek place names (Ελληνικά).
	Greek
	// CJK composes Japanese-style place names from single-character
	// ideograph "syllables".
	CJK
)

// String names the script as used in test-case labels.
func (s Script) String() string {
	switch s {
	case ASCII:
		return "ascii"
	case LatinDiacritic:
		return "latin-diacritic"
	case Cyrillic:
		return "cyrillic"
	case Greek:
		return "greek"
	case CJK:
		return "cjk"
	default:
		return fmt.Sprintf("Script(%d)", int(s))
	}
}

// Scripts lists every script the generator supports.
var Scripts = []Script{ASCII, LatinDiacritic, Cyrillic, Greek, CJK}

// scriptParts bundles a script's composition material: region and
// province prefixes plus the syllable pool words are built from. All
// runes are BMP, so generated keys stay on the engine's rune-packed
// gram fast path.
type scriptParts struct {
	regions   []string
	provinces []string
	syllables []string
}

var scriptTables = map[Script]scriptParts{
	ASCII: {regions: regionCodes, provinces: provinceCodes, syllables: syllables},
	LatinDiacritic: {
		regions:   []string{"ÅLD", "ØST", "ÜBE", "ÉVO", "ŠIB", "ŁÓD", "ÇAN", "ÑAN", "ÆRO", "ÐAL"},
		provinces: []string{"ÅR", "ØS", "ÜL", "ÉT", "ŠK", "ŁA", "ÇE", "ÑO", "ÆB", "ÞI"},
		syllables: []string{
			"MÜN", "CHÊ", "ØST", "ÅKE", "ZÜ", "RÎ", "ÇÀ", "ÑO", "ÃO", "ÛR",
			"ÖL", "ÄCK", "ÉTÉ", "ÈVE", "ÍA", "ÓN", "ÚL", "ŠKO", "ŽUP", "ŁÓD",
			"ĆMA", "ĐUR", "ÞÓR", "ÐEG", "ŒUV", "ÆBL", "ŸVE", "ÏLE", "ÔTE", "ÂNE",
		},
	},
	Cyrillic: {
		regions:   []string{"МОС", "ЛЕН", "НОВ", "СВЕ", "КРА", "ПРИ", "ХАБ", "ИРК", "ТЮМ", "РОС"},
		provinces: []string{"МО", "СП", "НС", "ЕК", "КД", "ВЛ", "ХБ", "ИР", "ТЮ", "РН"},
		syllables: []string{
			"МОС", "КВА", "НОВ", "ГОР", "ОД", "СК", "ПЕТ", "РО", "ВЛА", "ДИ",
			"КАЗ", "АНЬ", "ЕКА", "ТЕР", "ИН", "БУР", "СИБ", "ИР", "ВОЛ", "ГА",
			"ЯРО", "СЛА", "ВЛЬ", "СМО", "ЛЕН", "КУР", "ГАН", "ТВЕ", "РЖ", "ОМ",
		},
	},
	Greek: {
		regions:   []string{"ΑΤΤ", "ΜΑΚ", "ΘΕΣ", "ΠΕΛ", "ΚΡΗ", "ΗΠΕ", "ΙΟΝ", "ΑΙΓ", "ΣΤΕ", "ΘΡΑ"},
		provinces: []string{"ΑΘ", "ΘΕ", "ΠΑ", "ΗΡ", "ΛΑ", "ΙΩ", "ΚΕ", "ΡΟ", "ΧΑ", "ΚΑ"},
		syllables: []string{
			"ΑΘΗ", "ΝΑ", "ΘΕΣ", "ΣΑ", "ΛΟ", "ΝΙ", "ΚΗ", "ΠΑΤ", "ΡΑ", "ΚΡΗ",
			"ΤΗ", "ΡΟΔ", "ΟΣ", "ΚΕΡ", "ΚΥ", "ΜΥΚ", "ΟΝ", "ΣΠΑΡ", "ΔΕΛ", "ΦΟΙ",
			"ΟΛΥΜ", "ΠΙΑ", "ΝΑΥ", "ΠΛΙ", "ΒΟΛ", "ΙΘΑ", "ΚΟ", "ΖΑΚ", "ΥΝ", "ΘΟΣ",
		},
	},
	CJK: {
		regions:   []string{"東京", "大阪", "北海", "愛知", "福岡", "京都", "兵庫", "広島", "宮城", "新潟"},
		provinces: []string{"港", "中", "北", "南", "西", "東", "緑", "旭", "泉", "栄"},
		syllables: []string{
			"東", "京", "都", "大", "阪", "市", "北", "海", "道", "名",
			"古", "屋", "横", "浜", "川", "山", "田", "中", "村", "区",
			"町", "島", "崎", "原", "本", "松", "高", "岡", "長", "野",
		},
	},
}

// replacementFor picks the substitution rune Mutate writes over r:
// in-script (so variants stay realistic), never equal to r, and a
// letter rare enough in the syllable pools that a single substitution
// reliably breaks exact equality without collapsing two keys together.
func replacementFor(r rune) rune {
	switch {
	case r >= 0x0400 && r <= 0x04FF: // Cyrillic
		if r == 'Ж' {
			return 'Щ'
		}
		return 'Ж'
	case r >= 0x0370 && r <= 0x03FF: // Greek
		if r == 'Ξ' {
			return 'Ψ'
		}
		return 'Ξ'
	case r >= 0x2E80 && r <= 0x9FFF: // CJK
		if r == '鑫' {
			return '龍'
		}
		return '鑫'
	default: // ASCII and Latin-with-diacritics
		if r == 'x' || r == 'X' {
			return 'z'
		}
		return 'x'
	}
}
