package join

import (
	"slices"
	"sort"

	"adaptivelink/internal/qgram"
	"adaptivelink/internal/relation"
	"adaptivelink/internal/stream"
)

// NewSHJoin returns the pure exact operator of §2.1: a pipelined
// symmetric hash join fixed in state lex/rex. It is the completeness
// baseline r of §4.3 ("exact join throughout").
func NewSHJoin(left, right stream.Source, il stream.Interleaver) (*Engine, error) {
	cfg := Defaults()
	cfg.Initial = LexRex
	return New(cfg, left, right, il)
}

// NewSSHJoin returns the pure approximate operator of §2.2: a pipelined
// symmetric set hash join fixed in state lap/rap. It is the result-size
// baseline R and the cost baseline C of §4.3 ("approximate join
// throughout"). The caller's cfg supplies q, measure and θsim; the
// initial state is overridden.
func NewSSHJoin(cfg Config, left, right stream.Source, il stream.Interleaver) (*Engine, error) {
	cfg.Initial = LapRap
	return New(cfg, left, right, il)
}

// Pair is a result of the nested-loop oracle: refs are positions in the
// respective relations.
type Pair struct {
	LeftRef    int
	RightRef   int
	Similarity float64
	Exact      bool
}

// NestedLoopExact computes the exact join of two relations by brute
// force: every key-equal pair. It is the correctness oracle for SHJoin.
func NestedLoopExact(left, right *relation.Relation) []Pair {
	var out []Pair
	for i := 0; i < left.Len(); i++ {
		for j := 0; j < right.Len(); j++ {
			if left.At(i).Key == right.At(j).Key {
				out = append(out, Pair{LeftRef: i, RightRef: j, Similarity: 1, Exact: true})
			}
		}
	}
	sortPairs(out)
	return out
}

// NestedLoopApprox computes the approximate join of two relations by
// brute force under the given configuration: every pair whose verified
// similarity reaches θsim (key-equal pairs always qualify with
// similarity 1). It is the O(n²) comparison baseline the paper's
// blocking discussion motivates, and the correctness oracle for SSHJoin.
//
// Verification runs on dictionary-encoded signatures: each key is
// decomposed once, interned into a local dict, and every pair is scored
// by a sorted-merge intersection over uint32 ids — no per-pair maps, no
// re-extraction.
func NestedLoopApprox(cfg Config, left, right *relation.Relation) ([]Pair, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ex := qgram.New(cfg.Q)
	dict := qgram.NewDict()
	var dsc qgram.Scratch
	sig := func(s string) []uint32 {
		dsc.Reset()
		ids := dict.Intern(nil, ex.Decompose(&dsc, s))
		slices.Sort(ids)
		return ids
	}
	rg := make([][]uint32, right.Len())
	for j := 0; j < right.Len(); j++ {
		rg[j] = sig(right.At(j).Key)
	}
	var out []Pair
	for i := 0; i < left.Len(); i++ {
		lk := left.At(i).Key
		lg := sig(lk)
		for j := 0; j < right.Len(); j++ {
			if lk == right.At(j).Key {
				out = append(out, Pair{LeftRef: i, RightRef: j, Similarity: 1, Exact: true})
				continue
			}
			sim := cfg.Measure.SimilarityIDs(lg, rg[j])
			if sim >= cfg.Theta {
				out = append(out, Pair{LeftRef: i, RightRef: j, Similarity: sim})
			}
		}
	}
	sortPairs(out)
	return out, nil
}

// PairsOf projects engine matches to oracle-comparable pairs, sorted.
// An empty match set yields nil so results compare cleanly against the
// nested-loop oracles, which build their outputs by appending.
func PairsOf(matches []Match) []Pair {
	if len(matches) == 0 {
		return nil
	}
	out := make([]Pair, len(matches))
	for i, m := range matches {
		out[i] = Pair{LeftRef: m.LeftRef, RightRef: m.RightRef, Similarity: m.Similarity, Exact: m.Exact}
	}
	sortPairs(out)
	return out
}

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].LeftRef != ps[j].LeftRef {
			return ps[i].LeftRef < ps[j].LeftRef
		}
		return ps[i].RightRef < ps[j].RightRef
	})
}
