package join

import (
	"fmt"
	"testing"

	"adaptivelink/internal/relation"
)

// TestGoldenTrace pins the exact behaviour of the engine on a small
// fixed scenario: the full match sequence with metadata. Any change to
// scan order, probe semantics, attribution or switch mechanics shows up
// here first, with a readable diff.
func TestGoldenTrace(t *testing.T) {
	left := relation.FromKeys("L",
		"VEN VE VENEZIA MESTRE CENTRO",
		"LIG GE GENOVA CORNIGLIANO",
		"PIE TO TORINO MIRAFIORI SUD",
	)
	right := relation.FromKeys("R",
		"VEN VE VENEZIA MESTRE CENTRO", // exact, found in lex/rex
		"LIG GE GENOVA CORNIGLIANx",    // variant, found after the switch
		"PIE TO TORINO MIRAFIORI SUD",  // exact, found by approx probe post-switch
	)
	e := mkEngine(t, Defaults(), left, right)
	e.OnStep = func(en *Engine) {
		if en.Step() == 3 {
			if _, err := en.SetState(LapRap); err != nil {
				t.Fatal(err)
			}
		}
	}
	var got []string
	for _, m := range run(t, e) {
		got = append(got, fmt.Sprintf("L%d~R%d exact=%v sim=%.4f probe=%v mode=%v attr=%v step=%d",
			m.LeftRef, m.RightRef, m.Exact, m.Similarity, m.ProbeSide, m.ProbeMode, m.Attribution, m.Step))
	}
	want := []string{
		"L0~R0 exact=true sim=1.0000 probe=right mode=ex attr=none step=1",
		"L1~R1 exact=false sim=0.7931 probe=right mode=ap attr=both step=3",
		"L2~R2 exact=true sim=1.0000 probe=right mode=ap attr=none step=5",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d matches:\n%v\nwant %d:\n%v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("match %d:\n got %s\nwant %s", i, got[i], want[i])
		}
	}
	st := e.Stats()
	if st.Switches != 1 || st.TransitionsInto[LapRap.Index()] != 1 {
		t.Errorf("switch accounting: %+v", st)
	}
	if st.StepsInState[LexRex.Index()] != 3 || st.StepsInState[LapRap.Index()] != 3 {
		t.Errorf("per-state steps: %+v", st.StepsInState)
	}
}
