// Package join implements the paper's physical join operators: the exact
// pipelined symmetric hash join SHJoin (Wilschut & Apers), the
// approximate pipelined symmetric set hash join SSHJoin (a symmetric,
// pipelined re-implementation of Chaudhuri et al.'s SSJoin on q-grams),
// and the hybrid switchable Engine that the adaptive controller drives.
//
// The Engine is a single symmetric scan over two inputs in which each
// side has an independent matching Mode: tuples read from a side are
// matched exactly (hash lookup on the join key) or approximately (q-gram
// probe plus similarity verification) against the tuples stored so far
// on the opposite side. The four mode combinations are exactly the four
// processor states of Fig. 4 (lex/rex, lap/rex, lex/rap, lap/rap). Modes
// may be switched — only at quiescent points — and the engine performs
// the lazy hash-table catch-up of §2.3, paying only for tuples read
// since the previous switch.
package join

import (
	"fmt"

	"adaptivelink/internal/normalize"
	"adaptivelink/internal/simfn"
	"adaptivelink/internal/stream"
)

// Mode says how tuples read from a given input side are matched against
// the opposite side's stored tuples.
type Mode int

const (
	// Exact matches on join-key equality via a hash lookup.
	Exact Mode = iota
	// Approx matches by q-gram similarity above the configured threshold.
	Approx
)

// String returns "ex" or "ap", the abbreviations used in the paper's
// state names.
func (m Mode) String() string {
	switch m {
	case Exact:
		return "ex"
	case Approx:
		return "ap"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// State is a processor state of Fig. 4: the pair of per-side modes.
type State struct {
	Left  Mode
	Right Mode
}

// Canonical states.
var (
	// LexRex matches both sides exactly (the optimistic initial state).
	LexRex = State{Exact, Exact}
	// LapRex matches left tuples approximately, right tuples exactly.
	LapRex = State{Approx, Exact}
	// LexRap matches left tuples exactly, right tuples approximately.
	LexRap = State{Exact, Approx}
	// LapRap matches both sides approximately.
	LapRap = State{Approx, Approx}
)

// AllStates lists the four states in the paper's reporting order
// (EE, AE, EA, AA).
var AllStates = []State{LexRex, LapRex, LexRap, LapRap}

// String renders the paper's state name, e.g. "lex/rex".
func (s State) String() string {
	return fmt.Sprintf("l%s/r%s", s.Left, s.Right)
}

// Short renders the compact two-letter form used in Figs. 7–8
// (EE, AE, EA, AA; first letter = left side).
func (s State) Short() string {
	letter := func(m Mode) string {
		if m == Exact {
			return "E"
		}
		return "A"
	}
	return letter(s.Left) + letter(s.Right)
}

// Index returns the position of s in AllStates.
func (s State) Index() int {
	for i, st := range AllStates {
		if st == s {
			return i
		}
	}
	panic(fmt.Sprintf("join: unknown state %+v", s))
}

// Mode returns the mode of the given side.
func (s State) Mode(side stream.Side) Mode {
	if side == stream.Left {
		return s.Left
	}
	return s.Right
}

// WithMode returns a copy of s with the given side's mode replaced.
func (s State) WithMode(side stream.Side, m Mode) State {
	if side == stream.Left {
		s.Left = m
	} else {
		s.Right = m
	}
	return s
}

// Attribution says which input a non-exact (variant) match has been
// blamed on, via the matched-flag mechanism of §3.3.
type Attribution int

const (
	// AttrNone marks exact matches, which carry no variant evidence.
	AttrNone Attribution = iota
	// AttrLeft blames the left input's tuple.
	AttrLeft
	// AttrRight blames the right input's tuple.
	AttrRight
	// AttrBoth is the default when no evidence identifies a side.
	AttrBoth
)

// String names the attribution.
func (a Attribution) String() string {
	switch a {
	case AttrNone:
		return "none"
	case AttrLeft:
		return "left"
	case AttrRight:
		return "right"
	case AttrBoth:
		return "both"
	default:
		return fmt.Sprintf("Attribution(%d)", int(a))
	}
}

// Blames reports whether the attribution includes the given side.
func (a Attribution) Blames(side stream.Side) bool {
	switch a {
	case AttrBoth:
		return true
	case AttrLeft:
		return side == stream.Left
	case AttrRight:
		return side == stream.Right
	default:
		return false
	}
}

// Match is one joined pair. LeftRef/RightRef are the tuples' positions
// in their sides' stores (equal to arrival order).
type Match struct {
	LeftRef  int
	RightRef int
	LeftKey  string
	RightKey string
	// Similarity is the verified similarity of the two keys: 1 for
	// key-equal pairs, otherwise the configured measure's value.
	Similarity float64
	// Exact reports key equality (how the pair was found is ProbeMode).
	Exact bool
	// ProbeSide is the side whose tuple arrived second and probed.
	ProbeSide stream.Side
	// ProbeMode is the mode the probe was executed under.
	ProbeMode Mode
	// Attribution blames a side for non-exact matches (AttrNone for
	// exact ones).
	Attribution Attribution
	// Step is the engine step (quiescent-state count) at which the
	// probe ran.
	Step int
}

// Config parameterises the engine. The zero value is not valid; use
// Defaults or fill every field and call Validate.
type Config struct {
	// Q is the q-gram width (paper: 3).
	Q int
	// Measure is the token similarity coefficient (paper: Jaccard).
	Measure simfn.TokenMeasure
	// Theta is the similarity threshold θsim above which an
	// approximate pair is reported.
	Theta float64
	// Initial is the starting state (paper: optimistic lex/rex).
	Initial State
	// RetainWindow, when positive, gives the join sliding-window
	// semantics for unbounded streams (Kang et al., which the paper
	// builds on for asymmetric operator combinations): a new tuple
	// matches only the most recent RetainWindow tuples of the opposite
	// side, evicted tuples' payloads are released, and their index
	// entries are dropped by amortised compaction (Engine.EvictBelow /
	// CompactEvicted), bounding index memory at ~2·RetainWindow entries
	// per side. 0 (default) retains everything — the paper's
	// finite-table setting. A small per-tuple residue (key string and
	// gram-size bookkeeping) still grows with stream length.
	RetainWindow int
	// Profile names the normalize.ProfileNamed pipeline both sides'
	// keys were normalised with before reaching the engine. The engine
	// itself never applies it — normalization happens at the facade and
	// service boundaries — but the label travels with the configuration
	// into snapshot metadata, so stored indexes refuse to load under a
	// different normalization than the one that built their keys. ""
	// (the default) means keys are joined verbatim.
	Profile string
}

// DefaultTheta is the calibrated similarity threshold for this
// implementation's padded q-gram Jaccard: every 1-character edit on the
// generator's location strings stays above it while distinct locations
// stay well below (the paper tuned 0.85 for its own gram definition the
// same way; see EXPERIMENTS.md).
const DefaultTheta = 0.75

// Defaults returns the paper's configuration: q=3, Jaccard, calibrated
// θsim, optimistic initial state.
func Defaults() Config {
	return Config{Q: 3, Measure: simfn.Jaccard, Theta: DefaultTheta, Initial: LexRex}
}

// Validate reports the first configuration error, if any.
func (c Config) Validate() error {
	if c.Q < 1 {
		return fmt.Errorf("join: q-gram width %d < 1", c.Q)
	}
	if c.Theta <= 0 || c.Theta > 1 {
		return fmt.Errorf("join: similarity threshold %v outside (0,1]", c.Theta)
	}
	switch c.Measure {
	case simfn.Jaccard, simfn.Dice, simfn.Cosine, simfn.Overlap:
	default:
		return fmt.Errorf("join: unknown similarity measure %d", int(c.Measure))
	}
	switch c.Initial {
	case LexRex, LapRex, LexRap, LapRap:
	default:
		return fmt.Errorf("join: invalid initial state %+v", c.Initial)
	}
	if c.RetainWindow < 0 {
		return fmt.Errorf("join: retain window %d negative", c.RetainWindow)
	}
	if _, err := normalize.ProfileNamed(c.Profile); err != nil {
		return fmt.Errorf("join: %w", err)
	}
	return nil
}
