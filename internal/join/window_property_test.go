package join

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adaptivelink/internal/iterator"
	"adaptivelink/internal/relation"
	"adaptivelink/internal/stream"
)

// windowedOracle computes the sliding-window join by brute force: pair
// (l, r) qualifies if the earlier-arriving tuple is among the last w
// tuples of its side when the later one arrives under strict
// round-robin interleaving (left first).
func windowedOracle(cfg Config, left, right *relation.Relation, w int) map[[2]int]bool {
	approx, _ := NestedLoopApprox(cfg, left, right)
	arrival := func(side stream.Side, ref int) int {
		// Round-robin from left: left ref i arrives at step 2i+1 while
		// both sides last, then sequentially.
		n := left.Len()
		m := right.Len()
		if side == stream.Left {
			if ref < m {
				return 2*ref + 1
			}
			return 2*m + (ref - m + 1)
		}
		if ref < n {
			return 2 * (ref + 1)
		}
		return 2*n + (ref - n + 1)
	}
	out := map[[2]int]bool{}
	for _, p := range approx {
		la, ra := arrival(stream.Left, p.LeftRef), arrival(stream.Right, p.RightRef)
		// The stored (earlier) tuple must be within the last w stored
		// tuples of its side when the probe runs.
		if la < ra {
			// left stored; refs stored after it before probe: count of
			// left refs with arrival < ra.
			stored := 0
			for i := 0; i < left.Len(); i++ {
				if arrival(stream.Left, i) < ra {
					stored++
				}
			}
			if stored-p.LeftRef <= w {
				out[[2]int{p.LeftRef, p.RightRef}] = true
			}
		} else {
			stored := 0
			for i := 0; i < right.Len(); i++ {
				if arrival(stream.Right, i) < la {
					stored++
				}
			}
			if stored-p.RightRef <= w {
				out[[2]int{p.LeftRef, p.RightRef}] = true
			}
		}
	}
	return out
}

// Property: the windowed engine (pure lap/rap, round-robin) computes
// exactly the windowed oracle's pair set.
func TestWindowedEngineMatchesOracleProperty(t *testing.T) {
	cfg := Defaults()
	cfg.Initial = LapRap
	f := func(seed int64, wRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		left, right := genCorpus(rng)
		w := 1 + int(wRaw)%8
		c := cfg
		c.RetainWindow = w
		e, err := New(c, stream.FromRelation(left), stream.FromRelation(right), stream.NewRoundRobin(stream.Left))
		if err != nil {
			return false
		}
		ms, err := iterator.Drain[Match](e, nil)
		if err != nil {
			return false
		}
		got := map[[2]int]bool{}
		for _, m := range ms {
			got[[2]int{m.LeftRef, m.RightRef}] = true
		}
		want := windowedOracle(cfg, left, right, w)
		if len(got) != len(want) {
			return false
		}
		for k := range want {
			if !got[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
