package join

import (
	"fmt"
	"maps"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"adaptivelink/internal/hashidx"
	"adaptivelink/internal/qgram"
	"adaptivelink/internal/relation"
	"adaptivelink/internal/shardmap"
)

// ShardedRefIndex is the scaled-out resident index: N independent
// shards, each publishing an immutable snapshot of its slice of the
// reference through an atomic pointer, probed entirely lock-free.
//
// Sharding reuses the co-partitioning of the streaming executor
// (internal/shardmap, the router of internal/pjoin): every reference
// tuple is stored in the shards of its prefix-filter signature plus the
// shard owning its key hash, so an exact probe reads exactly one shard
// (ShardOf(key, N)) and an approximate probe reads the shards of its own
// signature — by the prefix-filtering principle any pair at or above
// θsim shares at least one probed shard. Replicas found through several
// shared shards are deduplicated by the tuple's global ref, so the match
// multiset is identical to the single-shard RefIndex's (the differential
// harness pins this for interleaved probe/upsert streams).
//
// Concurrency is RCU-style. Probes load a shard's snapshot with one
// atomic pointer read and run on plain immutable data: the probe hot
// path acquires zero mutexes, so probe throughput is bounded by the
// hardware, not by read-lock traffic. Upsert serialises writers on a
// mutex that probes never touch, builds each touched shard's next
// snapshot off-path (clone + apply, with gram hashing done before even
// the writer lock), and publishes it with one atomic swap — a quiescent
// point in the RCU sense: probes in flight finish on the old snapshot,
// later probes see the new one, and no probe ever observes a
// half-applied batch within a shard.
//
// The consistency model is per-shard snapshot isolation: a probe sees a
// point-in-time state of every shard it reads, upserts are atomic per
// key (a key's replicas are deduplicated to one match, taken wholesale
// from one snapshot — never a torn mix of old and new payload), and a
// cross-shard batch is per-shard-consistent rather than globally
// serialised. The price of the swap is copy-on-write: an upsert costs
// O(size of the touched shards), which is the deliberate inversion of
// the RefIndex trade-off — reads outnumber writes by orders of
// magnitude in the index-once/probe-many mode.
type ShardedRefIndex struct {
	cfg    Config
	ex     *qgram.Extractor
	router *shardmap.PrefixRouter
	nshard int

	shards []atomic.Pointer[shardSnap]
	store  atomic.Pointer[globalStore]

	// mu serialises writers (Upsert) only; it is never taken on the
	// probe path.
	mu sync.Mutex
	// newest maps join key -> global ref; writer-owned, guarded by mu.
	newest map[string]int
}

// shardSnap is one shard's immutable snapshot. No field is mutated
// after publication; Upsert clones and republishes instead.
type shardSnap struct {
	tuples  []relation.Tuple
	keys    []string
	globals []int // local ref -> global ref (monotonically increasing)
	exIdx   *hashidx.ExactIndex
	qgIdx   *hashidx.QGramIndex
	local   map[string]int // key -> local ref
}

func (sn *shardSnap) clone() *shardSnap {
	return &shardSnap{
		tuples:  append([]relation.Tuple(nil), sn.tuples...),
		keys:    append([]string(nil), sn.keys...),
		globals: append([]int(nil), sn.globals...),
		exIdx:   sn.exIdx.Clone(),
		qgIdx:   sn.qgIdx.Clone(),
		local:   maps.Clone(sn.local),
	}
}

// Global store chunk geometry: refs are dense, so the store is a
// persistent chunked vector and an upsert republishes only the chunks
// it touches plus the chunk directory (one pointer per chunk), never
// the whole store.
const (
	storeChunkBits = 10
	storeChunkSize = 1 << storeChunkBits
	storeChunkMask = storeChunkSize - 1
)

// globalStore is the immutable global-ref -> tuple view backing Len and
// Tuple; it is published before the shard snapshots that reference its
// refs, so a probe can never return a ref the store cannot resolve.
// Chunks are immutable once published — a writer clones a chunk before
// touching it.
type globalStore struct {
	chunks [][]relation.Tuple
	n      int
}

func (g *globalStore) tuple(ref int) relation.Tuple {
	return g.chunks[ref>>storeChunkBits][ref&storeChunkMask]
}

// NewShardedRefIndex builds an empty sharded resident index with the
// given shard count under the configuration's gram width, measure and
// threshold (Config.Initial and RetainWindow do not apply to the
// resident mode and are ignored). One shard is a valid degenerate
// layout: it keeps the lock-free snapshot discipline without
// replication, and is the deployment of choice on a single hardware
// thread.
func NewShardedRefIndex(cfg Config, shards int) (*ShardedRefIndex, error) {
	cfg.Initial = LexRex
	cfg.RetainWindow = 0
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if shards < 1 {
		return nil, fmt.Errorf("join: shard count %d, want at least 1", shards)
	}
	ex := qgram.New(cfg.Q)
	s := &ShardedRefIndex{
		cfg:    cfg,
		ex:     ex,
		router: shardmap.NewPrefixRouter(shards, cfg.Q, cfg.Measure, cfg.Theta),
		nshard: shards,
		shards: make([]atomic.Pointer[shardSnap], shards),
		newest: make(map[string]int),
	}
	for i := range s.shards {
		s.shards[i].Store(&shardSnap{
			exIdx: hashidx.NewExactIndex(),
			qgIdx: hashidx.NewQGramIndex(ex),
			local: make(map[string]int),
		})
	}
	s.store.Store(&globalStore{})
	return s, nil
}

// Config returns the index's configuration.
func (s *ShardedRefIndex) Config() Config { return s.cfg }

// Shards returns the shard count.
func (s *ShardedRefIndex) Shards() int { return s.nshard }

// Len returns the number of resident reference tuples (distinct keys).
func (s *ShardedRefIndex) Len() int { return s.store.Load().n }

// Entries reports the aggregate live entry counts across shards (exact
// refs, q-gram postings). Unlike the single-shard RefIndex, replicas
// count: a reference stored in three shards contributes three exact
// entries — this is the replication cost of co-partitioning, the number
// an operator sizing memory needs.
func (s *ShardedRefIndex) Entries() (exact, qgrams int) {
	for i := range s.shards {
		sn := s.shards[i].Load()
		exact += sn.exIdx.Entries()
		qgrams += sn.qgIdx.Entries()
	}
	return exact, qgrams
}

// Tuple returns a snapshot of the reference tuple at the global ref.
func (s *ShardedRefIndex) Tuple(ref int) (relation.Tuple, error) {
	st := s.store.Load()
	if ref < 0 || ref >= st.n {
		return relation.Tuple{}, fmt.Errorf("join: ref %d outside resident store of %d tuples", ref, st.n)
	}
	return st.tuple(ref), nil
}

// storageRoutes returns the shards a reference tuple must be stored in:
// the shards of its prefix-filter signature (so approximate probes can
// reach it) plus the shard owning its key hash (so exact probes read
// exactly one cheap-to-compute shard).
func (s *ShardedRefIndex) storageRoutes(dst []int, key string) []int {
	dst = s.router.Routes(dst, key)
	home := shardmap.ShardOf(key, s.nshard)
	for _, sh := range dst {
		if sh == home {
			return dst
		}
	}
	return append(dst, home)
}

// Upsert applies a batch of keyed reference maintenance: existing keys
// get their payload replaced, new keys are appended and indexed, in
// every shard the key routes to. It returns the inserted and updated
// counts.
//
// Writers are serialised; probes are not disturbed. Gram hashing runs
// before the writer lock, the touched shards' next snapshots are built
// off-path by copy-on-write, and each is published with one atomic swap
// — in-flight probes complete on the old snapshot, later probes see the
// whole batch for that shard.
func (s *ShardedRefIndex) Upsert(tuples []relation.Tuple) (inserted, updated int) {
	if len(tuples) == 0 {
		return 0, 0
	}
	grams := make([][]string, len(tuples))
	routes := make([][]int, len(tuples))
	for i, t := range tuples {
		grams[i] = s.ex.Grams(t.Key)
		routes[i] = s.storageRoutes(nil, t.Key)
	}

	s.mu.Lock()
	defer s.mu.Unlock()

	old := s.store.Load()
	n := old.n
	dir := append([][]relation.Tuple(nil), old.chunks...)
	cloned := make(map[int]bool) // chunk index -> already writable
	setTuple := func(ref int, t relation.Tuple) {
		ci := ref >> storeChunkBits
		if !cloned[ci] {
			dir[ci] = append(make([]relation.Tuple, 0, storeChunkSize), dir[ci]...)
			cloned[ci] = true
		}
		dir[ci][ref&storeChunkMask] = t
	}
	appendTuple := func(t relation.Tuple) int {
		ref := n
		ci := ref >> storeChunkBits
		if ci == len(dir) {
			dir = append(dir, make([]relation.Tuple, 0, storeChunkSize))
			cloned[ci] = true
		} else if !cloned[ci] {
			// The published tail chunk may have spare capacity; clone
			// rather than append in place under a reader's feet.
			dir[ci] = append(make([]relation.Tuple, 0, storeChunkSize), dir[ci]...)
			cloned[ci] = true
		}
		dir[ci] = append(dir[ci], t)
		n++
		return ref
	}

	next := make(map[int]*shardSnap)
	snapFor := func(sh int) *shardSnap {
		ns, ok := next[sh]
		if !ok {
			ns = s.shards[sh].Load().clone()
			next[sh] = ns
		}
		return ns
	}
	for i, t := range tuples {
		if g, ok := s.newest[t.Key]; ok {
			setTuple(g, t)
			for _, sh := range routes[i] {
				ns := snapFor(sh)
				ns.tuples[ns.local[t.Key]] = t
			}
			updated++
			continue
		}
		g := appendTuple(t)
		s.newest[t.Key] = g
		for _, sh := range routes[i] {
			ns := snapFor(sh)
			lref := len(ns.tuples)
			ns.tuples = append(ns.tuples, t)
			ns.keys = append(ns.keys, t.Key)
			ns.globals = append(ns.globals, g)
			ns.local[t.Key] = lref
			ns.exIdx.Insert(lref, t.Key)
			ns.qgIdx.InsertGrams(lref, grams[i])
		}
		inserted++
	}
	// Publish the global store before the shard snapshots: no probe may
	// return a global ref that Tuple cannot yet resolve.
	s.store.Store(&globalStore{chunks: dir, n: n})
	for sh, ns := range next {
		s.shards[sh].Store(ns)
	}
	return inserted, updated
}

// ProbeExact matches the key against the reference exactly: one atomic
// snapshot load of the key's home shard and one hash lookup.
func (s *ShardedRefIndex) ProbeExact(key string) []RefMatch {
	return snapExact(s.shards[shardmap.ShardOf(key, s.nshard)].Load(), key)
}

// snapExact runs the SHJoin probe against one immutable shard snapshot.
func snapExact(sn *shardSnap, key string) []RefMatch {
	refs := sn.exIdx.Lookup(key)
	if len(refs) == 0 {
		return nil
	}
	out := make([]RefMatch, 0, len(refs))
	for _, lref := range refs {
		out = append(out, RefMatch{Ref: sn.globals[lref], Tuple: sn.tuples[lref], Similarity: 1, Exact: true})
	}
	return out
}

// ProbeApprox matches the key against the reference approximately,
// probing every shard of the key's prefix-filter signature and
// deduplicating replicas by global ref. By the co-partitioning
// guarantee the union over probed shards contains every pair at or
// above θsim, so the deduplicated result equals the single-shard
// SSHJoin probe's.
func (s *ShardedRefIndex) ProbeApprox(key string) []RefMatch {
	grams := s.ex.Grams(key)
	return s.probeApproxRouted(key, grams, s.router.Routes(nil, key))
}

func (s *ShardedRefIndex) probeApproxRouted(key string, grams []string, shards []int) []RefMatch {
	if len(shards) == 1 {
		// Sole reader: the freshly extracted gram slice may be handed
		// over without a defensive copy.
		return snapApprox(s.shards[shards[0]].Load(), s.cfg, key, grams, true)
	}
	var out []RefMatch
	seen := make(map[int]bool)
	for _, sh := range shards {
		for _, m := range snapApprox(s.shards[sh].Load(), s.cfg, key, grams, false) {
			if seen[m.Ref] {
				continue
			}
			seen[m.Ref] = true
			out = append(out, m)
		}
	}
	// Deterministic output, identical to the dense reference store's
	// order: ascending global ref.
	sort.Slice(out, func(i, j int) bool { return out[i].Ref < out[j].Ref })
	return out
}

// snapApprox runs the SSHJoin probe against one immutable shard
// snapshot; replica dedup across shards is the caller's job. ProbeGrams
// reorders its argument, so unless the caller owns grams (owned: this
// snapshot is the slice's only reader, ever) a private copy is handed
// over.
func snapApprox(sn *shardSnap, cfg Config, key string, grams []string, owned bool) []RefMatch {
	g := len(grams)
	k := cfg.Measure.MinOverlap(g, cfg.Theta)
	gcopy := grams
	if !owned {
		gcopy = append([]string(nil), grams...)
	}
	var out []RefMatch
	for _, cand := range sn.qgIdx.ProbeGrams(gcopy, k) {
		sim := cfg.Measure.Coefficient(g, sn.qgIdx.GramSize(cand.Ref), cand.Overlap)
		exact := sn.keys[cand.Ref] == key
		if exact {
			sim = 1
		} else if sim < cfg.Theta {
			continue
		}
		out = append(out, RefMatch{Ref: sn.globals[cand.Ref], Tuple: sn.tuples[cand.Ref], Similarity: sim, Exact: exact})
	}
	return out
}

// Probe matches under the given mode.
func (s *ShardedRefIndex) Probe(mode Mode, key string) []RefMatch {
	if mode == Approx {
		return s.ProbeApprox(key)
	}
	return s.ProbeExact(key)
}

// batchFanMin is the batch size from which ProbeBatch fans shard groups
// out to goroutines (given more than one group and more than one
// hardware thread); below it the coordination would cost more than the
// parallelism returns.
const batchFanMin = 16

// ProbeBatch matches every key under the given mode, returning one
// result slice per key in order — semantically a loop of Probe calls,
// physically an amortised group-by-shard execution: keys are routed
// once, each touched shard's snapshot is loaded once per batch, and on
// multi-core hosts the shard groups run concurrently inside the
// caller's worker slot.
func (s *ShardedRefIndex) ProbeBatch(mode Mode, keys []string) [][]RefMatch {
	out := make([][]RefMatch, len(keys))
	if len(keys) == 0 {
		return out
	}
	if mode == Approx {
		s.probeBatchApprox(keys, out)
	} else {
		s.probeBatchExact(keys, out)
	}
	return out
}

func (s *ShardedRefIndex) probeBatchExact(keys []string, out [][]RefMatch) {
	groups := make([][]int, s.nshard)
	for i, k := range keys {
		sh := shardmap.ShardOf(k, s.nshard)
		groups[sh] = append(groups[sh], i)
	}
	s.forGroups(len(keys), groups, func(sh int, idxs []int) {
		sn := s.shards[sh].Load() // one snapshot load per shard-group
		for _, i := range idxs {
			out[i] = snapExact(sn, keys[i])
		}
	})
}

func (s *ShardedRefIndex) probeBatchApprox(keys []string, out [][]RefMatch) {
	grams := make([][]string, len(keys))
	routes := make([][]int, len(keys))
	groups := make([][]int, s.nshard)
	for i, k := range keys {
		grams[i] = s.ex.Grams(k)
		routes[i] = s.router.Routes(nil, k)
		for _, sh := range routes[i] {
			groups[sh] = append(groups[sh], i)
		}
	}
	// Phase 1: per shard-group, probe that shard's snapshot once per
	// member key. Groups write disjoint partial slots, so they are free
	// to run concurrently.
	partial := make([][][]RefMatch, s.nshard)
	s.forGroups(len(keys), groups, func(sh int, idxs []int) {
		sn := s.shards[sh].Load()
		res := make([][]RefMatch, len(idxs))
		for j, i := range idxs {
			// A single-route key's gram slice has this one reader;
			// replicated keys share theirs across concurrent groups.
			res[j] = snapApprox(sn, s.cfg, keys[i], grams[i], len(routes[i]) == 1)
		}
		partial[sh] = res
	})
	// Phase 2: merge per key, deduplicating replicas by global ref.
	// groups[sh] lists key indices in ascending order, so walking keys
	// in order consumes every group sequentially.
	cursor := make([]int, s.nshard)
	for i := range keys {
		if len(routes[i]) == 1 {
			sh := routes[i][0]
			out[i] = partial[sh][cursor[sh]]
			cursor[sh]++
			continue
		}
		var merged []RefMatch
		seen := make(map[int]bool)
		for _, sh := range routes[i] {
			for _, m := range partial[sh][cursor[sh]] {
				if seen[m.Ref] {
					continue
				}
				seen[m.Ref] = true
				merged = append(merged, m)
			}
			cursor[sh]++
		}
		sort.Slice(merged, func(a, b int) bool { return merged[a].Ref < merged[b].Ref })
		out[i] = merged
	}
}

// forGroups runs fn over every non-empty shard group — concurrently
// when the batch is big enough, more than one group is populated and
// the host has more than one hardware thread; sequentially otherwise.
// fn must write only state owned by its group.
func (s *ShardedRefIndex) forGroups(n int, groups [][]int, fn func(sh int, idxs []int)) {
	active := 0
	for _, g := range groups {
		if len(g) > 0 {
			active++
		}
	}
	if active > 1 && n >= batchFanMin && runtime.GOMAXPROCS(0) > 1 {
		var wg sync.WaitGroup
		for sh, g := range groups {
			if len(g) == 0 {
				continue
			}
			wg.Add(1)
			go func(sh int, g []int) {
				defer wg.Done()
				fn(sh, g)
			}(sh, g)
		}
		wg.Wait()
		return
	}
	for sh, g := range groups {
		if len(g) > 0 {
			fn(sh, g)
		}
	}
}
