package join

import (
	"fmt"
	"maps"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"adaptivelink/internal/hashidx"
	"adaptivelink/internal/qgram"
	"adaptivelink/internal/relation"
	"adaptivelink/internal/shardmap"
)

// ShardedRefIndex is the scaled-out resident index: N independent
// shards, each publishing an immutable snapshot of its slice of the
// reference through an atomic pointer, probed entirely lock-free.
//
// Sharding reuses the co-partitioning of the streaming executor
// (internal/shardmap, the router of internal/pjoin): every reference
// tuple is stored in the shards of its prefix-filter signature plus the
// shard owning its key hash, so an exact probe reads exactly one shard
// (ShardOf(key, N)) and an approximate probe reads the shards of its own
// signature — by the prefix-filtering principle any pair at or above
// θsim shares at least one probed shard. Replicas found through several
// shared shards are deduplicated by the tuple's global ref, so the match
// multiset is identical to the single-shard RefIndex's (the differential
// harness pins this for interleaved probe/upsert streams).
//
// Concurrency is RCU-style. Probes load a shard's snapshot with one
// atomic pointer read and run on plain immutable data: the probe hot
// path acquires zero mutexes, so probe throughput is bounded by the
// hardware, not by read-lock traffic. Upsert serialises writers on a
// mutex that probes never touch, builds each touched shard's next
// snapshot off-path (clone + apply, with gram hashing done before even
// the writer lock), and publishes it with one atomic swap — a quiescent
// point in the RCU sense: probes in flight finish on the old snapshot,
// later probes see the new one, and no probe ever observes a
// half-applied batch within a shard.
//
// The consistency model is per-shard snapshot isolation: a probe sees a
// point-in-time state of every shard it reads, upserts are atomic per
// key (a key's replicas are deduplicated to one match, taken wholesale
// from one snapshot — never a torn mix of old and new payload), and a
// cross-shard batch is per-shard-consistent rather than globally
// serialised. The price of the swap is copy-on-write: an upsert costs
// O(size of the touched shards), which is the deliberate inversion of
// the RefIndex trade-off — reads outnumber writes by orders of
// magnitude in the index-once/probe-many mode.
type ShardedRefIndex struct {
	cfg    Config
	ex     *qgram.Extractor
	router *shardmap.PrefixRouter
	nshard int

	shards []atomic.Pointer[shardSnap]
	store  atomic.Pointer[globalStore]

	// mu serialises writers (Upsert) only; it is never taken on the
	// probe path.
	mu sync.Mutex
	// newest maps join key -> global ref; writer-owned, guarded by mu.
	newest map[string]int
	// pool recycles per-probe/per-shard scratches (decomposition arena,
	// routing buffer, epoch-stamped count filter) across the probe
	// fleet and the batch fan-out workers: the probe hot path is both
	// lock-free and allocation-free.
	pool sync.Pool

	// maint holds the maintenance/pool telemetry counters; see
	// maintstats.go. Never touched by the exact probe path.
	maint maintCounters
}

// shardScratch is the pooled scratch of one probe, batch worker or
// upsert: decomposition arena, routing buffers and count-filter state.
type shardScratch struct {
	dsc    qgram.Scratch
	psc    hashidx.ProbeScratch
	routes []int
	// Batch arenas: one decomposed Key per batch member plus the flat
	// route table (routes of key i are routeFlat[routeOff[i]:routeOff[i+1]]).
	keys      []qgram.Key
	routeFlat []int
	routeOff  []int
}

// shardSnap is one shard's immutable snapshot. No field is mutated
// after publication; Upsert clones and republishes instead.
type shardSnap struct {
	tuples  []relation.Tuple
	keys    []string
	globals []int // local ref -> global ref (monotonically increasing)
	exIdx   *hashidx.ExactIndex
	qgIdx   *hashidx.QGramIndex
	local   map[string]int // key -> local ref
}

func (sn *shardSnap) clone() *shardSnap {
	return &shardSnap{
		tuples:  append([]relation.Tuple(nil), sn.tuples...),
		keys:    append([]string(nil), sn.keys...),
		globals: append([]int(nil), sn.globals...),
		exIdx:   sn.exIdx.Clone(),
		qgIdx:   sn.qgIdx.Clone(),
		local:   maps.Clone(sn.local),
	}
}

// Global store chunk geometry: refs are dense, so the store is a
// persistent chunked vector and an upsert republishes only the chunks
// it touches plus the chunk directory (one pointer per chunk), never
// the whole store.
const (
	storeChunkBits = 10
	storeChunkSize = 1 << storeChunkBits
	storeChunkMask = storeChunkSize - 1
)

// globalStore is the immutable global-ref -> tuple view backing Len and
// Tuple; it is published before the shard snapshots that reference its
// refs, so a probe can never return a ref the store cannot resolve.
// Chunks are immutable once published — a writer clones a chunk before
// touching it.
type globalStore struct {
	chunks [][]relation.Tuple
	n      int
}

func (g *globalStore) tuple(ref int) relation.Tuple {
	return g.chunks[ref>>storeChunkBits][ref&storeChunkMask]
}

// NewShardedRefIndex builds an empty sharded resident index with the
// given shard count under the configuration's gram width, measure and
// threshold (Config.Initial and RetainWindow do not apply to the
// resident mode and are ignored). One shard is a valid degenerate
// layout: it keeps the lock-free snapshot discipline without
// replication, and is the deployment of choice on a single hardware
// thread.
func NewShardedRefIndex(cfg Config, shards int) (*ShardedRefIndex, error) {
	cfg.Initial = LexRex
	cfg.RetainWindow = 0
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if shards < 1 {
		return nil, fmt.Errorf("join: shard count %d, want at least 1", shards)
	}
	ex := qgram.New(cfg.Q)
	s := &ShardedRefIndex{
		cfg:    cfg,
		ex:     ex,
		router: shardmap.NewPrefixRouter(shards, cfg.Q, cfg.Measure, cfg.Theta),
		nshard: shards,
		shards: make([]atomic.Pointer[shardSnap], shards),
		newest: make(map[string]int),
	}
	for i := range s.shards {
		s.shards[i].Store(&shardSnap{
			exIdx: hashidx.NewExactIndex(),
			qgIdx: hashidx.NewQGramIndex(ex),
			local: make(map[string]int),
		})
	}
	s.store.Store(&globalStore{})
	s.pool.New = func() any {
		s.maint.scratchNews.Add(1)
		return new(shardScratch)
	}
	return s, nil
}

// Config returns the index's configuration.
func (s *ShardedRefIndex) Config() Config { return s.cfg }

// Shards returns the shard count.
func (s *ShardedRefIndex) Shards() int { return s.nshard }

// Len returns the number of resident reference tuples (distinct keys).
func (s *ShardedRefIndex) Len() int { return s.store.Load().n }

// Entries reports the aggregate live entry counts across shards (exact
// refs, q-gram postings). Unlike the single-shard RefIndex, replicas
// count: a reference stored in three shards contributes three exact
// entries — this is the replication cost of co-partitioning, the number
// an operator sizing memory needs.
func (s *ShardedRefIndex) Entries() (exact, qgrams int) {
	for i := range s.shards {
		sn := s.shards[i].Load()
		exact += sn.exIdx.Entries()
		qgrams += sn.qgIdx.Entries()
	}
	return exact, qgrams
}

// Tuple returns a snapshot of the reference tuple at the global ref.
func (s *ShardedRefIndex) Tuple(ref int) (relation.Tuple, error) {
	st := s.store.Load()
	if ref < 0 || ref >= st.n {
		return relation.Tuple{}, fmt.Errorf("join: ref %d outside resident store of %d tuples", ref, st.n)
	}
	return st.tuple(ref), nil
}

// storageRoutesKey returns the shards a reference tuple must be stored
// in: the shards of its prefix-filter signature (so approximate probes
// can reach it) plus the shard owning its key hash (so exact probes
// read exactly one cheap-to-compute shard). The appended routes of one
// key are dst[start:] for the caller-recorded start offset.
func (s *ShardedRefIndex) storageRoutesKey(dst []int, key string, k qgram.Key) []int {
	start := len(dst)
	dst = s.router.RoutesKey(dst, key, k)
	home := shardmap.ShardOf(key, s.nshard)
	for _, sh := range dst[start:] {
		if sh == home {
			return dst
		}
	}
	return append(dst, home)
}

// Upsert applies a batch of keyed reference maintenance: existing keys
// get their payload replaced, new keys are appended and indexed, in
// every shard the key routes to. It returns the inserted and updated
// counts.
//
// Writers are serialised; probes are not disturbed. Gram decomposition
// and routing run before the writer lock, the touched shards' next
// snapshots are built off-path by copy-on-write — the gram dictionary
// included, so published snapshots stay immutable while the clone
// interns new grams — and each is published with one atomic swap: in-
// flight probes complete on the old snapshot, later probes see the
// whole batch for that shard.
func (s *ShardedRefIndex) Upsert(tuples []relation.Tuple) (inserted, updated int) {
	if len(tuples) == 0 {
		return 0, 0
	}
	s.maint.upserts.Add(1)
	sc := s.getScratch()
	sc.dsc.Reset()
	ks := sc.keys[:0]
	flat := sc.routeFlat[:0]
	off := sc.routeOff[:0]
	for _, t := range tuples {
		k := s.ex.Decompose(&sc.dsc, t.Key)
		ks = append(ks, k)
		off = append(off, len(flat))
		flat = s.storageRoutesKey(flat, t.Key, k)
	}
	off = append(off, len(flat))
	sc.keys, sc.routeFlat, sc.routeOff = ks, flat, off
	defer s.pool.Put(sc)

	s.mu.Lock()
	defer s.mu.Unlock()

	old := s.store.Load()
	n := old.n
	dir := append([][]relation.Tuple(nil), old.chunks...)
	cloned := make(map[int]bool) // chunk index -> already writable
	setTuple := func(ref int, t relation.Tuple) {
		ci := ref >> storeChunkBits
		if !cloned[ci] {
			dir[ci] = append(make([]relation.Tuple, 0, storeChunkSize), dir[ci]...)
			cloned[ci] = true
		}
		dir[ci][ref&storeChunkMask] = t
	}
	appendTuple := func(t relation.Tuple) int {
		ref := n
		ci := ref >> storeChunkBits
		if ci == len(dir) {
			dir = append(dir, make([]relation.Tuple, 0, storeChunkSize))
			cloned[ci] = true
		} else if !cloned[ci] {
			// The published tail chunk may have spare capacity; clone
			// rather than append in place under a reader's feet.
			dir[ci] = append(make([]relation.Tuple, 0, storeChunkSize), dir[ci]...)
			cloned[ci] = true
		}
		dir[ci] = append(dir[ci], t)
		n++
		return ref
	}

	next := make(map[int]*shardSnap)
	snapFor := func(sh int) *shardSnap {
		ns, ok := next[sh]
		if !ok {
			t0 := time.Now()
			ns = s.shards[sh].Load().clone()
			s.maint.cloneNanos.Add(time.Since(t0).Nanoseconds())
			next[sh] = ns
		}
		return ns
	}
	for i, t := range tuples {
		routes := flat[off[i]:off[i+1]]
		if g, ok := s.newest[t.Key]; ok {
			setTuple(g, t)
			for _, sh := range routes {
				ns := snapFor(sh)
				ns.tuples[ns.local[t.Key]] = t
			}
			updated++
			continue
		}
		g := appendTuple(t)
		s.newest[t.Key] = g
		for _, sh := range routes {
			ns := snapFor(sh)
			lref := len(ns.tuples)
			ns.tuples = append(ns.tuples, t)
			ns.keys = append(ns.keys, t.Key)
			ns.globals = append(ns.globals, g)
			ns.local[t.Key] = lref
			ns.exIdx.Insert(lref, t.Key)
			ns.qgIdx.InsertKey(lref, ks[i])
		}
		inserted++
	}
	// Publish the global store before the shard snapshots: no probe may
	// return a global ref that Tuple cannot yet resolve.
	s.store.Store(&globalStore{chunks: dir, n: n})
	for sh, ns := range next {
		s.shards[sh].Store(ns)
	}
	s.maint.snapSwaps.Add(uint64(len(next)))
	return inserted, updated
}

// ProbeExact matches the key against the reference exactly: one atomic
// snapshot load of the key's home shard and one hash lookup.
func (s *ShardedRefIndex) ProbeExact(key string) []RefMatch {
	return s.AppendProbeExact(nil, key)
}

// AppendProbeExact is ProbeExact appending into caller-owned dst: with
// a reusable buffer the exact probe hot path performs zero allocations
// and zero atomic writes — one snapshot load, one hash lookup.
func (s *ShardedRefIndex) AppendProbeExact(dst []RefMatch, key string) []RefMatch {
	sn := s.shards[shardmap.ShardOf(key, s.nshard)].Load()
	for _, lref := range sn.exIdx.Lookup(key) {
		dst = append(dst, RefMatch{Ref: sn.globals[lref], Tuple: sn.tuples[lref], Similarity: 1, Exact: true})
	}
	return dst
}

// snapExact runs the SHJoin probe against one immutable shard snapshot.
func snapExact(sn *shardSnap, key string) []RefMatch {
	refs := sn.exIdx.Lookup(key)
	if len(refs) == 0 {
		return nil
	}
	out := make([]RefMatch, 0, len(refs))
	for _, lref := range refs {
		out = append(out, RefMatch{Ref: sn.globals[lref], Tuple: sn.tuples[lref], Similarity: 1, Exact: true})
	}
	return out
}

// ProbeApprox matches the key against the reference approximately,
// probing every shard of the key's prefix-filter signature and
// deduplicating replicas by global ref. By the co-partitioning
// guarantee the union over probed shards contains every pair at or
// above θsim, so the deduplicated result equals the single-shard
// SSHJoin probe's.
func (s *ShardedRefIndex) ProbeApprox(key string) []RefMatch {
	return s.AppendProbeApprox(nil, key)
}

// AppendProbeApprox is ProbeApprox appending into caller-owned dst.
// The key is decomposed once into a scratch-backed Key; routing, the
// per-shard count filter and verification all run on pooled scratch
// over the dictionary-encoded snapshots, so with a reusable dst the
// approximate probe allocates nothing.
func (s *ShardedRefIndex) AppendProbeApprox(dst []RefMatch, key string) []RefMatch {
	sc := s.getScratch()
	sc.dsc.Reset()
	k := s.ex.Decompose(&sc.dsc, key)
	g := k.Len()
	ko := s.cfg.Measure.MinOverlap(g, s.cfg.Theta)
	sc.routes = s.router.RoutesKey(sc.routes[:0], key, k)
	base := len(dst)
	for _, sh := range sc.routes {
		dst = snapApproxAppend(dst, s.shards[sh].Load(), s.cfg, key, k, g, ko, &sc.psc)
	}
	if len(sc.routes) > 1 {
		dst = dedupByRef(dst, base)
	}
	s.pool.Put(sc)
	return dst
}

// snapApproxAppend runs the SSHJoin probe against one immutable shard
// snapshot, appending verified matches; replica dedup across shards is
// the caller's job. The candidate view returned by ProbeKey lives in
// psc and is fully consumed before this function returns, so one
// scratch may serve several shards in sequence.
func snapApproxAppend(dst []RefMatch, sn *shardSnap, cfg Config, key string, k qgram.Key, g, ko int, psc *hashidx.ProbeScratch) []RefMatch {
	for _, cand := range sn.qgIdx.ProbeKey(k, ko, psc) {
		sim, ok := cfg.Measure.Verify(g, sn.qgIdx.GramSize(cand.Ref), cand.Overlap, cfg.Theta)
		exact := sn.keys[cand.Ref] == key
		if exact {
			sim = 1
		} else if !ok {
			continue
		}
		dst = append(dst, RefMatch{Ref: sn.globals[cand.Ref], Tuple: sn.tuples[cand.Ref], Similarity: sim, Exact: exact})
	}
	return dst
}

// dedupByRef brings dst[base:] into the deterministic output order —
// ascending global ref — dropping replicas found through several
// shards. The sort is stable, so the surviving copy of each ref is the
// first one appended (route order), exactly the keep-first semantics of
// the map-based dedup it replaces, without the map.
func dedupByRef(dst []RefMatch, base int) []RefMatch {
	part := dst[base:]
	slices.SortStableFunc(part, func(a, b RefMatch) int { return a.Ref - b.Ref })
	w := 0
	for i := 0; i < len(part); i++ {
		if w > 0 && part[i].Ref == part[w-1].Ref {
			continue
		}
		part[w] = part[i]
		w++
	}
	return dst[:base+w]
}

// Probe matches under the given mode.
func (s *ShardedRefIndex) Probe(mode Mode, key string) []RefMatch {
	if mode == Approx {
		return s.ProbeApprox(key)
	}
	return s.ProbeExact(key)
}

// AppendProbe is Probe appending into caller-owned dst.
func (s *ShardedRefIndex) AppendProbe(dst []RefMatch, mode Mode, key string) []RefMatch {
	if mode == Approx {
		return s.AppendProbeApprox(dst, key)
	}
	return s.AppendProbeExact(dst, key)
}

// batchFanMin is the batch size from which ProbeBatch fans shard groups
// out to goroutines (given more than one group and more than one
// hardware thread); below it the coordination would cost more than the
// parallelism returns.
const batchFanMin = 16

// ProbeBatch matches every key under the given mode, returning one
// result slice per key in order — semantically a loop of Probe calls,
// physically an amortised group-by-shard execution: keys are routed
// once, each touched shard's snapshot is loaded once per batch, and on
// multi-core hosts the shard groups run concurrently inside the
// caller's worker slot.
func (s *ShardedRefIndex) ProbeBatch(mode Mode, keys []string) [][]RefMatch {
	out := make([][]RefMatch, len(keys))
	if len(keys) == 0 {
		return out
	}
	if mode == Approx {
		s.probeBatchApprox(keys, out)
	} else {
		s.probeBatchExact(keys, out)
	}
	return out
}

func (s *ShardedRefIndex) probeBatchExact(keys []string, out [][]RefMatch) {
	groups := make([][]int, s.nshard)
	for i, k := range keys {
		sh := shardmap.ShardOf(k, s.nshard)
		groups[sh] = append(groups[sh], i)
	}
	s.forGroups(len(keys), groups, func(sh int, idxs []int) {
		sn := s.shards[sh].Load() // one snapshot load per shard-group
		for _, i := range idxs {
			out[i] = snapExact(sn, keys[i])
		}
	})
}

func (s *ShardedRefIndex) probeBatchApprox(keys []string, out [][]RefMatch) {
	// Decompose every key once and route on the scratch-backed Keys;
	// the flat route table and Key arena live in pooled scratch held
	// for the whole batch (Keys are immutable and shared read-only by
	// the fan-out workers below).
	sc := s.getScratch()
	sc.dsc.Reset()
	ks := sc.keys[:0]
	flat := sc.routeFlat[:0]
	off := sc.routeOff[:0]
	groups := make([][]int, s.nshard)
	for i, key := range keys {
		k := s.ex.Decompose(&sc.dsc, key)
		ks = append(ks, k)
		off = append(off, len(flat))
		flat = s.router.RoutesKey(flat, key, k)
		for _, sh := range flat[off[i]:] {
			groups[sh] = append(groups[sh], i)
		}
	}
	off = append(off, len(flat))
	sc.keys, sc.routeFlat, sc.routeOff = ks, flat, off
	// Phase 1: per shard-group, probe that shard's snapshot once per
	// member key. Groups write disjoint partial slots, so they are free
	// to run concurrently — each worker draws its own count-filter
	// scratch from the pool.
	partial := make([][][]RefMatch, s.nshard)
	s.forGroups(len(keys), groups, func(sh int, idxs []int) {
		wsc := s.getScratch()
		sn := s.shards[sh].Load()
		res := make([][]RefMatch, len(idxs))
		for j, i := range idxs {
			g := ks[i].Len()
			ko := s.cfg.Measure.MinOverlap(g, s.cfg.Theta)
			res[j] = snapApproxAppend(nil, sn, s.cfg, keys[i], ks[i], g, ko, &wsc.psc)
		}
		partial[sh] = res
		s.pool.Put(wsc)
	})
	// Phase 2: merge per key, deduplicating replicas by global ref.
	// groups[sh] lists key indices in ascending order, so walking keys
	// in order consumes every group sequentially.
	cursor := make([]int, s.nshard)
	for i := range keys {
		routes := flat[off[i]:off[i+1]]
		if len(routes) == 1 {
			sh := routes[0]
			out[i] = partial[sh][cursor[sh]]
			cursor[sh]++
			continue
		}
		var merged []RefMatch
		for _, sh := range routes {
			merged = append(merged, partial[sh][cursor[sh]]...)
			cursor[sh]++
		}
		out[i] = dedupByRef(merged, 0)
	}
	s.pool.Put(sc)
}

// forGroups runs fn over every non-empty shard group — concurrently
// when the batch is big enough, more than one group is populated and
// the host has more than one hardware thread; sequentially otherwise.
// fn must write only state owned by its group.
func (s *ShardedRefIndex) forGroups(n int, groups [][]int, fn func(sh int, idxs []int)) {
	active := 0
	for _, g := range groups {
		if len(g) > 0 {
			active++
		}
	}
	if active > 1 && n >= batchFanMin && runtime.GOMAXPROCS(0) > 1 {
		var wg sync.WaitGroup
		for sh, g := range groups {
			if len(g) == 0 {
				continue
			}
			wg.Add(1)
			go func(sh int, g []int) {
				defer wg.Done()
				fn(sh, g)
			}(sh, g)
		}
		wg.Wait()
		return
	}
	for sh, g := range groups {
		if len(g) > 0 {
			fn(sh, g)
		}
	}
}
