package join

import (
	"fmt"
	"math"

	"adaptivelink/internal/hashidx"
	"adaptivelink/internal/relation"
)

// SnapshotView is the serializable state of a ShardedRefIndex: the
// global tuple store in ref order plus, per shard, the shard's member
// refs and its dictionary-encoded q-gram index. Everything else a
// running index carries — the exact hash tables, the key→ref maps, the
// newest-by-key writer map — is derivable from these in one linear pass
// with no gram re-hashing and no key re-decomposition, which is what
// keeps a snapshot load cheap: the expensive artifacts of indexing (the
// gram dictionary, the id-encoded postings, the signatures) travel in
// their final in-memory form.
//
// A view exported from a live index aliases that index's immutable RCU
// snapshots; treat it as read-only. A view decoded from disk is owned
// by the decoder's caller and is adopted wholesale by
// NewShardedRefIndexFromSnapshot.
type SnapshotView struct {
	// Cfg is the matching configuration the index was built under.
	Cfg Config
	// NShard is the shard count; probe routing is shard-count-dependent,
	// so a snapshot reloads only at its own count.
	NShard int
	// Tuples is the global store in ref order (Len() == len(Tuples)).
	Tuples []relation.Tuple
	// Shards has one export per shard, in shard order.
	Shards []ShardExport
}

// ShardExport is one shard's slice of a SnapshotView.
type ShardExport struct {
	// Globals maps the shard's local refs (ascending, dense) to global
	// refs, strictly ascending by construction of the upsert path.
	Globals []uint32
	// QGrams is the shard's dictionary-encoded inverted index.
	QGrams hashidx.QGramExport
}

// ExportSnapshot returns a consistent view of the whole index: taken
// under the writer lock, so no upsert can publish between two shard
// loads and every shard's snapshot agrees with the global store.
// Probes are not disturbed. The returned view aliases the index's
// immutable snapshots and is valid forever (RCU snapshots are never
// mutated, only superseded).
func (s *ShardedRefIndex) ExportSnapshot() (*SnapshotView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.store.Load()
	if st.n > math.MaxUint32 {
		return nil, fmt.Errorf("join: snapshot of %d tuples exceeds the format's uint32 ref space", st.n)
	}
	v := &SnapshotView{
		Cfg:    s.cfg,
		NShard: s.nshard,
		Tuples: make([]relation.Tuple, st.n),
		Shards: make([]ShardExport, s.nshard),
	}
	for i := 0; i < st.n; i++ {
		v.Tuples[i] = st.tuple(i)
	}
	for i := range s.shards {
		sn := s.shards[i].Load()
		globals := make([]uint32, len(sn.globals))
		for j, g := range sn.globals {
			globals[j] = uint32(g)
		}
		// ExportCompacted, not Export: a snapshot boundary is the one
		// representation-change-safe point, so dictionary entries left
		// dangling by eviction are dropped here instead of accreting in
		// every checkpoint forever.
		v.Shards[i] = ShardExport{Globals: globals, QGrams: sn.qgIdx.ExportCompacted()}
	}
	return v, nil
}

// NewShardedRefIndexFromSnapshot reconstructs a resident index from a
// snapshot view, adopting the view's slices (the caller hands over
// ownership; a view exported from a live index must not be imported
// into a second one that will be upserted).
//
// The reconstruction is the cheap inverse of indexing: the q-gram
// structures are adopted as-is via hashidx.ImportQGramIndex, shard
// tuple stores are resolved by indexing the global store with each
// shard's Globals, and the exact hash tables and key maps are rebuilt
// with one map insertion per key — no gram is re-hashed, no key is
// re-decomposed. Every cross-structure invariant is validated first
// (refs in range, Globals strictly ascending, one store record per
// key), so a corrupted snapshot yields a descriptive error, never an
// index that can misbehave later.
func NewShardedRefIndexFromSnapshot(v *SnapshotView) (*ShardedRefIndex, error) {
	s, err := NewShardedRefIndex(v.Cfg, v.NShard)
	if err != nil {
		return nil, err
	}
	if len(v.Shards) != v.NShard {
		return nil, fmt.Errorf("join: snapshot carries %d shard exports for %d shards", len(v.Shards), v.NShard)
	}
	n := len(v.Tuples)
	for ref, t := range v.Tuples {
		if prev, dup := s.newest[t.Key]; dup {
			return nil, fmt.Errorf("join: snapshot store has key %q at both ref %d and %d (the store is keyed)", t.Key, prev, ref)
		}
		s.newest[t.Key] = ref
	}
	// Rebuild the chunked global store. Three-index subslicing caps each
	// chunk at its own length: a future upsert's append can never write
	// into the next chunk's backing (and the copy-on-write append path
	// clones any published chunk before touching it anyway).
	st := &globalStore{n: n}
	for lo := 0; lo < n; lo += storeChunkSize {
		hi := lo + storeChunkSize
		if hi > n {
			hi = n
		}
		st.chunks = append(st.chunks, v.Tuples[lo:hi:hi])
	}
	for i, se := range v.Shards {
		qg, err := hashidx.ImportQGramIndex(s.ex, se.QGrams)
		if err != nil {
			return nil, fmt.Errorf("join: snapshot shard %d: %w", i, err)
		}
		if qg.Indexed() != len(se.Globals) {
			return nil, fmt.Errorf("join: snapshot shard %d: q-gram index absorbed %d refs, shard lists %d", i, qg.Indexed(), len(se.Globals))
		}
		sn := &shardSnap{
			tuples:  make([]relation.Tuple, len(se.Globals)),
			keys:    make([]string, len(se.Globals)),
			globals: make([]int, len(se.Globals)),
			exIdx:   hashidx.NewExactIndex(),
			qgIdx:   qg,
			local:   make(map[string]int, len(se.Globals)),
		}
		prev := -1
		for lref, g := range se.Globals {
			if int(g) >= n || int(g) <= prev {
				return nil, fmt.Errorf("join: snapshot shard %d: global ref %d at local %d not strictly ascending within store of %d", i, g, lref, n)
			}
			prev = int(g)
			t := v.Tuples[g]
			sn.tuples[lref] = t
			sn.keys[lref] = t.Key
			sn.globals[lref] = int(g)
			sn.local[t.Key] = lref
		}
		sn.exIdx.CatchUp(sn.keys)
		s.shards[i].Store(sn)
	}
	s.store.Store(st)
	return s, nil
}
