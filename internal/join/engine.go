package join

import (
	"fmt"

	"adaptivelink/internal/hashidx"
	"adaptivelink/internal/iterator"
	"adaptivelink/internal/qgram"
	"adaptivelink/internal/relation"
	"adaptivelink/internal/stream"
)

// Stats aggregates the engine's observable quantities. The adaptive
// monitor reads Matches (the observed result size O̅ₜ of §3.2) and Steps
// (the step counter t); the cost model of §4.3 consumes StepsInState and
// TransitionsInto.
type Stats struct {
	// Steps is the number of completed engine steps: one step reads one
	// tuple and joins it with every stored match (one quiescent-state
	// transition).
	Steps int
	// Read counts tuples consumed per side.
	Read [2]int
	// Matches is the number of result pairs computed so far.
	Matches int
	// ExactMatches counts key-equal pairs, ApproxMatches the rest.
	ExactMatches  int
	ApproxMatches int
	// StepsInState counts steps spent in each state, indexed by
	// State.Index() (the tᵢ of §4.3).
	StepsInState [4]int
	// TransitionsInto counts state-machine transitions into each state,
	// indexed by State.Index() (the trᵢ of §4.3). Self-transitions are
	// not switches and are not counted.
	TransitionsInto [4]int
	// Switches is the total number of state changes.
	Switches int
	// CatchUpTuples is the total number of tuple insertions performed by
	// switch-time index catch-ups (the switch overhead driver of §2.3).
	CatchUpTuples int
	// Evicted counts tuples evicted from the sliding window per side
	// (payload released, excluded from future probes).
	Evicted [2]int
	// IndexEntriesDropped counts index entries (exact refs plus q-gram
	// postings) physically removed by eviction compaction.
	IndexEntriesDropped int
}

// Engine is the hybrid switchable symmetric join operator. It implements
// iterator.Operator[Match] and iterator.Quiescer.
//
// Construction: New. Drive with Open/Next/Close. Change state with
// SetState, either between Next calls or from within an OnStep hook.
type Engine struct {
	lc  iterator.Lifecycle
	cfg Config

	src  [2]stream.Source
	il   stream.Interleaver
	done [2]bool

	// Per-side tuple store: every tuple read is kept (both algorithms
	// retain scanned tuples; only index maintenance is lazy).
	store [2][]relation.Tuple
	keys  [2][]string
	// flags marks tuples that have matched exactly at least once — the
	// provenance bit of §3.3.
	flags [2][]bool

	exIdx [2]*hashidx.ExactIndex
	qgIdx [2]*hashidx.QGramIndex
	ex    *qgram.Extractor
	// dsc/psc are the engine's probe scratches: the engine is
	// single-threaded per instance, so one decomposition arena and one
	// epoch-stamped counting scratch serve every approximate probe with
	// zero per-probe allocations.
	dsc qgram.Scratch
	psc hashidx.ProbeScratch

	// minLive[s] is the oldest live (non-evicted) ref of side s under
	// sliding-window retention; 0 when RetainWindow is unset. Advanced
	// by EvictBelow — either from the engine's own RetainWindow logic or
	// by an external driver that owns the global scan order.
	minLive [2]int
	// compacted[s] is the floor up to which side s's index entries have
	// been physically dropped; compaction lags minLive and is amortised.
	compacted [2]int

	state   State
	pending []Match

	stats Stats

	// OnStep, if set, is invoked at every quiescent point — after a
	// tuple has been joined with all its matches and the step counter
	// advanced. The adaptive controller installs its MAR activation
	// here; calling SetState from the hook is safe by construction.
	OnStep func(e *Engine)
	// OnMatch, if set, is invoked for every match at computation time
	// (before delivery through Next). The controller's monitor uses it
	// to feed the per-side perturbation windows.
	OnMatch func(m Match)
}

// New builds an engine over the two sources. A nil interleaver defaults
// to the canonical alternating scan starting from the left input.
func New(cfg Config, left, right stream.Source, il stream.Interleaver) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if left == nil || right == nil {
		return nil, fmt.Errorf("join: nil source")
	}
	if il == nil {
		il = stream.NewRoundRobin(stream.Left)
	}
	ex := qgram.New(cfg.Q)
	e := &Engine{
		cfg:   cfg,
		src:   [2]stream.Source{left, right},
		il:    il,
		ex:    ex,
		state: cfg.Initial,
	}
	for s := 0; s < 2; s++ {
		e.exIdx[s] = hashidx.NewExactIndex()
		e.qgIdx[s] = hashidx.NewQGramIndex(ex)
	}
	return e, nil
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// State returns the current processor state.
func (e *Engine) State() State { return e.state }

// Step returns the number of completed steps (t in the paper).
func (e *Engine) Step() int { return e.stats.Steps }

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats { return e.stats }

// Phase exposes the iterator lifecycle phase (used by iterator.Drain).
func (e *Engine) Phase() iterator.Phase { return e.lc.Phase() }

// Quiescent reports whether the engine holds no undelivered matches —
// the quiescent state of Fig. 2 at the delivery level. Note that
// SetState is safe even when undelivered matches are pending, because
// the engine materialises each probe's full match set before returning
// from the processing of its tuple; pending matches are never
// invalidated by an operator switch.
func (e *Engine) Quiescent() bool { return len(e.pending) == 0 }

// ReadCount returns how many tuples have been consumed from side.
func (e *Engine) ReadCount(side stream.Side) int { return e.stats.Read[side] }

// SpaceEstimate reports the index space drivers of §2.3's analysis: per
// side, the tuples stored (kept once regardless of operator), the exact
// index's entries (n pointers when up to date) and the q-gram index's
// posting entries (n·(|jA|+q−1) pointers when up to date). Lagging
// indexes report fewer entries, reflecting the lazy-maintenance saving.
type SpaceEstimate struct {
	Tuples       [2]int
	ExactEntries [2]int
	QGramEntries [2]int
}

// Space returns the current space estimate.
func (e *Engine) Space() SpaceEstimate {
	var s SpaceEstimate
	for _, side := range []stream.Side{stream.Left, stream.Right} {
		s.Tuples[side] = len(e.store[side])
		s.ExactEntries[side] = e.exIdx[side].Entries()
		s.QGramEntries[side] = e.qgIdx[side].Entries()
	}
	return s
}

// StoredTuple returns the i-th tuple stored for side.
func (e *Engine) StoredTuple(side stream.Side, i int) relation.Tuple {
	return e.store[side][i]
}

// MatchedFlag reports whether the i-th stored tuple of side has ever
// matched exactly.
func (e *Engine) MatchedFlag(side stream.Side, i int) bool { return e.flags[side][i] }

// LiveFloor returns the oldest live (non-evicted) ref of side: probes
// skip stored tuples below it. 0 when nothing has been evicted.
func (e *Engine) LiveFloor(side stream.Side) int { return e.minLive[side] }

// EvictBelow advances side's live floor to ref: stored tuples below the
// floor leave the match scope — every subsequent probe skips them — and
// their payloads are released. The floor is monotonic (a smaller ref is
// a no-op) and clamped to the store length. It returns the number of
// tuples newly evicted.
//
// This is the engine's evictor hook. On the sequential path the
// engine's own RetainWindow logic drives it, one call per arriving
// tuple; external drivers that own the global scan order — the
// partition-parallel executor, which translates global arrival
// sequence numbers into shard-local floors — drive it directly and
// leave Config.RetainWindow unset on the engine.
func (e *Engine) EvictBelow(side stream.Side, ref int) int {
	if ref > len(e.store[side]) {
		ref = len(e.store[side])
	}
	n := 0
	for e.minLive[side] < ref {
		e.store[side][e.minLive[side]].Attrs = nil
		e.minLive[side]++
		n++
	}
	e.stats.Evicted[side] += n
	return n
}

// CompactEvicted physically drops the index entries of evicted tuples
// on both sides — exact refs and q-gram postings below the live floors
// — returning the number of entries removed. Compaction never changes
// the match set (probes already skip evicted refs); it reclaims the
// memory the floor made dead. The sequential engine calls it
// periodically from its RetainWindow logic; the partition-parallel
// executor calls it on barrier punctuation so every shard drops a
// replicated posting at the same consistent cut.
func (e *Engine) CompactEvicted() int {
	dropped := 0
	for _, side := range []stream.Side{stream.Left, stream.Right} {
		fl := e.minLive[side]
		if fl == e.compacted[side] {
			continue
		}
		dropped += e.exIdx[side].EvictBelow(fl)
		dropped += e.qgIdx[side].EvictBelow(fl)
		e.compacted[side] = fl
	}
	e.stats.IndexEntriesDropped += dropped
	return dropped
}

// Open implements iterator.Operator.
func (e *Engine) Open() error { return e.lc.CheckOpen() }

// Close implements iterator.Operator.
func (e *Engine) Close() error { return e.lc.CheckClose() }

// Next implements iterator.Operator. It returns the next match of the
// symmetric scan, reading and processing as many input tuples as needed
// to produce one, and ok=false once both inputs are exhausted and all
// matches have been delivered.
func (e *Engine) Next() (Match, bool, error) {
	if err := e.lc.CheckNext(); err != nil {
		return Match{}, false, err
	}
	for {
		if len(e.pending) > 0 {
			m := e.pending[0]
			e.pending = e.pending[1:]
			return m, true, nil
		}
		if e.done[stream.Left] && e.done[stream.Right] {
			e.lc.MarkExhausted()
			return Match{}, false, nil
		}
		side := e.il.Pick(e.done[stream.Left], e.done[stream.Right])
		t, ok, err := e.src[side].Next()
		if err != nil {
			return Match{}, false, fmt.Errorf("join: reading %v input: %w", side, err)
		}
		if !ok {
			e.done[side] = true
			continue
		}
		e.processTuple(side, t)
	}
}

// Push processes one tuple from the given side as one full engine step,
// bypassing the engine's own sources. It is the push-mode complement to
// Next for drivers that own the scan order themselves (the partition-
// parallel executor feeds each shard engine from a channel this way).
// Matches computed by the step accumulate until TakePending or Next
// collects them. The engine must be open and not exhausted.
func (e *Engine) Push(side stream.Side, t relation.Tuple) error {
	if err := e.lc.CheckNext(); err != nil {
		return err
	}
	e.processTuple(side, t)
	return nil
}

// TakePending returns the matches computed but not yet delivered and
// clears the pending queue. Push-mode drivers call it after every Push;
// pull-mode callers never need it because Next drains the same queue.
func (e *Engine) TakePending() []Match {
	if len(e.pending) == 0 {
		return nil
	}
	out := e.pending
	e.pending = nil
	return out
}

// processTuple runs one full step: store the tuple, insert it into its
// side's active index, probe the opposite side under the reading side's
// mode, and fire the step hook at the resulting quiescent point.
func (e *Engine) processTuple(side stream.Side, t relation.Tuple) {
	ref := len(e.store[side])
	e.store[side] = append(e.store[side], t)
	e.keys[side] = append(e.keys[side], t.Key)
	e.flags[side] = append(e.flags[side], false)
	e.stats.Read[side]++
	if w := e.cfg.RetainWindow; w > 0 {
		// Evict everything older than the most recent w arrivals of this
		// side: payloads released, probes skip the evicted refs.
		e.EvictBelow(side, len(e.store[side])-w)
		if e.minLive[side]-e.compacted[side] >= w {
			// Amortised index compaction: at most one full window of dead
			// entries per side, so index memory is bounded by ~2w entries
			// instead of growing with stream length.
			e.CompactEvicted()
		}
	}

	// Operation 2 of §2.2: insert into the index the opposite side's
	// probes use; the other index lags until a switch catches it up.
	switch e.state.Mode(side.Other()) {
	case Exact:
		e.exIdx[side].Insert(ref, t.Key)
	case Approx:
		e.qgIdx[side].Insert(ref, t.Key)
	}

	switch e.state.Mode(side) {
	case Exact:
		e.probeExact(side, ref, t.Key)
	case Approx:
		e.probeApprox(side, ref, t.Key)
	}

	e.stats.Steps++
	e.stats.StepsInState[e.state.Index()]++
	if e.OnStep != nil {
		e.OnStep(e)
	}
}

// probeExact matches the new tuple against the opposite exact index.
func (e *Engine) probeExact(side stream.Side, ref int, key string) {
	other := side.Other()
	for _, oref := range e.exIdx[other].Lookup(key) {
		if oref < e.minLive[other] {
			continue // evicted from the stream window
		}
		e.flags[side][ref] = true
		e.flags[other][oref] = true
		e.emit(side, ref, other, oref, 1, true)
	}
}

// probeApprox matches the new tuple against the opposite q-gram index:
// candidate generation with the count bound of §2.2, then similarity
// verification against θsim.
func (e *Engine) probeApprox(side stream.Side, ref int, key string) {
	other := side.Other()
	e.dsc.Reset()
	pk := e.ex.Decompose(&e.dsc, key)
	g := pk.Len()
	k := e.cfg.Measure.MinOverlap(g, e.cfg.Theta)
	for _, cand := range e.qgIdx[other].ProbeKey(pk, k, &e.psc) {
		if cand.Ref < e.minLive[other] {
			continue // evicted from the stream window
		}
		sim, ok := e.cfg.Measure.Verify(g, e.qgIdx[other].GramSize(cand.Ref), cand.Overlap, e.cfg.Theta)
		exact := e.keys[other][cand.Ref] == key
		if exact {
			// The approximate operator found the pair an exact probe
			// would have: full evidence, flag both tuples.
			sim = 1
			e.flags[side][ref] = true
			e.flags[other][cand.Ref] = true
		} else if !ok {
			continue
		}
		e.emit(side, ref, other, cand.Ref, sim, exact)
	}
}

// emit records a match between the probing tuple (side, ref) and the
// stored tuple (other, oref), assigning variant attribution per §3.3.
func (e *Engine) emit(side stream.Side, ref int, other stream.Side, oref int, sim float64, exact bool) {
	attr := AttrNone
	if !exact {
		if e.flags[other][oref] {
			// The stored tuple matched exactly before, so it has a
			// faithful counterpart; the probing tuple is the variant.
			if side == stream.Left {
				attr = AttrLeft
			} else {
				attr = AttrRight
			}
		} else {
			attr = AttrBoth
		}
	}
	m := Match{
		ProbeSide:   side,
		ProbeMode:   e.state.Mode(side),
		Similarity:  sim,
		Exact:       exact,
		Attribution: attr,
		Step:        e.stats.Steps, // step in progress; counter increments after the probe
	}
	if side == stream.Left {
		m.LeftRef, m.RightRef = ref, oref
		m.LeftKey, m.RightKey = e.keys[stream.Left][ref], e.keys[stream.Right][oref]
	} else {
		m.LeftRef, m.RightRef = oref, ref
		m.LeftKey, m.RightKey = e.keys[stream.Left][oref], e.keys[stream.Right][ref]
	}
	e.stats.Matches++
	if exact {
		e.stats.ExactMatches++
	} else {
		e.stats.ApproxMatches++
	}
	if e.OnMatch != nil {
		e.OnMatch(m)
	}
	e.pending = append(e.pending, m)
}

// SetState transitions the processor to the target state, performing the
// lazy index catch-up of §2.3 for every index that becomes active. It
// returns the number of tuples caught up. Transitioning to the current
// state is a no-op self-loop (no switch, no cost).
//
// The call is safe at any quiescent point; the adaptive responder
// invokes it from the OnStep hook.
func (e *Engine) SetState(target State) (caughtUp int, err error) {
	if err := target.validate(); err != nil {
		return 0, err
	}
	if target == e.state {
		return 0, nil
	}
	// mode[s] determines which index kind on other(s) its probes read;
	// catch that index up when the mode changes.
	for _, s := range []stream.Side{stream.Left, stream.Right} {
		oldMode, newMode := e.state.Mode(s), target.Mode(s)
		if oldMode == newMode {
			continue
		}
		other := s.Other()
		switch newMode {
		case Exact:
			caughtUp += e.exIdx[other].CatchUp(e.keys[other])
		case Approx:
			caughtUp += e.qgIdx[other].CatchUp(e.keys[other])
		}
	}
	e.state = target
	e.stats.Switches++
	e.stats.TransitionsInto[target.Index()]++
	e.stats.CatchUpTuples += caughtUp
	return caughtUp, nil
}

func (s State) validate() error {
	switch s {
	case LexRex, LapRex, LexRap, LapRap:
		return nil
	default:
		return fmt.Errorf("join: invalid state %+v", s)
	}
}
