package join

import (
	"testing"

	"adaptivelink/internal/relation"
	"adaptivelink/internal/stream"
)

func TestRetainWindowValidation(t *testing.T) {
	cfg := Defaults()
	cfg.RetainWindow = -1
	if cfg.Validate() == nil {
		t.Error("negative retain window accepted")
	}
	cfg.RetainWindow = 10
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid retain window rejected: %v", err)
	}
}

func TestWindowLimitsMatchingScope(t *testing.T) {
	// Right tuple "target" arrives after more than RetainWindow left
	// tuples have passed, so the matching left tuple (read first) has
	// been evicted: no match. A second occurrence inside the window
	// must still match.
	left := relation.FromKeys("L",
		"target location alpha beta", // ref 0: will be evicted
		"filler location one xx", "filler location two xx", "filler location three",
		"filler location four xx", "filler location five x",
		"target location alpha beta", // ref 6: inside the window
	)
	right := relation.FromKeys("R",
		"nothing matches this aa", "nothing matches this bb", "nothing matches this cc",
		"nothing matches this dd", "nothing matches this ee", "nothing matches this ff",
		"target location alpha beta", // probes after left ref 6 stored
	)
	cfg := Defaults()
	cfg.RetainWindow = 3
	e := mkEngine(t, cfg, left, right)
	ms := run(t, e)
	if len(ms) != 1 {
		t.Fatalf("got %d matches, want 1 (evicted copy must not match): %v", len(ms), ms)
	}
	if ms[0].LeftRef != 6 {
		t.Errorf("matched left ref %d, want the in-window copy 6", ms[0].LeftRef)
	}
}

func TestWindowEvictsPayloads(t *testing.T) {
	left := relation.New("L", relation.NewSchema("key", "payload"))
	for i := 0; i < 10; i++ {
		left.Append(uniqueKey(i, "LEFT"), "payload-data")
	}
	right := relation.FromKeys("R", "no match here at all")
	cfg := Defaults()
	cfg.RetainWindow = 3
	e := mkEngine(t, cfg, left, right)
	run(t, e)
	// The oldest left tuples must have had their payloads released.
	if got := e.StoredTuple(stream.Left, 0); got.Attrs != nil {
		t.Errorf("evicted tuple kept payload: %+v", got)
	}
	// The last three are live and intact.
	if got := e.StoredTuple(stream.Left, 9); len(got.Attrs) != 1 {
		t.Errorf("live tuple lost payload: %+v", got)
	}
}

func TestWindowWithApproximateMatching(t *testing.T) {
	// The same eviction semantics must hold for the q-gram path.
	left := relation.FromKeys("L",
		"monte rosa vetta alpina", // will be evicted
		"filler uno due tre qua", "filler quattro cinque sei", "filler sette otto nove",
	)
	right := relation.FromKeys("R",
		"zzz yyy xxx www unmatched", "zzz yyy xxx www unmatchee", "zzz yyy xxx www unmatchef",
		"monte rosa vetta alpinx", // variant of the evicted tuple
	)
	cfg := Defaults()
	cfg.RetainWindow = 2
	cfg.Initial = LapRap
	e := mkEngine(t, cfg, left, right)
	ms := run(t, e)
	for _, m := range ms {
		if m.LeftRef == 0 {
			t.Errorf("matched evicted tuple: %+v", m)
		}
	}
}

func TestWindowUnsetRetainsEverything(t *testing.T) {
	left := relation.FromKeys("L", "shared key value here")
	right := relation.New("R", relation.NewSchema("key"))
	for i := 0; i < 50; i++ {
		right.Append(uniqueKey(i, "RIGHT"))
	}
	right.Append("shared key value here")
	e := mkEngine(t, Defaults(), left, right)
	ms := run(t, e)
	if len(ms) != 1 {
		t.Errorf("unbounded engine lost an old match: %d", len(ms))
	}
}

func TestWindowSurvivesSwitches(t *testing.T) {
	// Catch-up after a switch indexes evicted keys too (tombstones);
	// probes must still skip them.
	left := relation.FromKeys("L",
		"monte rosa vetta alpina",
		"filler uno due tre qua", "filler quattro cinque sei",
		"filler sette otto nove", "filler dieci undici dodi",
	)
	right := relation.FromKeys("R",
		"aaa bbb ccc ddd eee fff", "ggg hhh iii jjj kkk lll",
		"mmm nnn ooo ppp qqq rrr", "sss ttt uuu vvv www xyz",
		"monte rosa vetta alpina", // exact text of the evicted left ref 0
	)
	cfg := Defaults()
	cfg.RetainWindow = 2
	e := mkEngine(t, cfg, left, right)
	e.OnStep = func(en *Engine) {
		if en.Step() == 6 {
			en.SetState(LapRap)
		}
	}
	ms := run(t, e)
	for _, m := range ms {
		if m.LeftRef == 0 {
			t.Errorf("post-switch probe matched evicted tuple: %+v", m)
		}
	}
}

func TestEvictBelowHook(t *testing.T) {
	// External drivers (the partition-parallel executor) drive eviction
	// directly against an engine with RetainWindow unset.
	left := relation.FromKeys("L",
		"target location alpha beta", "filler location one xx", "filler location two xx")
	right := relation.FromKeys("R", "target location alpha beta")
	e := mkEngine(t, Defaults(), left, right)
	if err := e.Open(); err != nil {
		t.Fatal(err)
	}
	if err := e.Push(stream.Left, left.At(0)); err != nil {
		t.Fatal(err)
	}
	if err := e.Push(stream.Left, left.At(1)); err != nil {
		t.Fatal(err)
	}
	if n := e.EvictBelow(stream.Left, 1); n != 1 {
		t.Fatalf("EvictBelow evicted %d, want 1", n)
	}
	if got := e.LiveFloor(stream.Left); got != 1 {
		t.Fatalf("LiveFloor = %d, want 1", got)
	}
	// Monotonic: a smaller floor is a no-op.
	if n := e.EvictBelow(stream.Left, 0); n != 0 || e.LiveFloor(stream.Left) != 1 {
		t.Errorf("EvictBelow went backwards: n=%d floor=%d", n, e.LiveFloor(stream.Left))
	}
	// Clamped to the store length.
	if n := e.EvictBelow(stream.Left, 99); n != 1 || e.LiveFloor(stream.Left) != 2 {
		t.Errorf("EvictBelow clamp: n=%d floor=%d, want 1, 2", n, e.LiveFloor(stream.Left))
	}
	// The probing right tuple must not match the evicted left ref 0.
	if err := e.Push(stream.Right, right.At(0)); err != nil {
		t.Fatal(err)
	}
	if ms := e.TakePending(); len(ms) != 0 {
		t.Errorf("probe matched evicted tuples: %v", ms)
	}
	st := e.Stats()
	if st.Evicted[stream.Left] != 2 {
		t.Errorf("Stats.Evicted = %v, want 2 left evictions", st.Evicted)
	}
	e.Close()
}

func TestWindowCompactsIndexes(t *testing.T) {
	// The sequential window drops evicted index entries by amortised
	// compaction, bounding index memory instead of growing a tombstone
	// skeleton with stream length.
	left := relation.New("L", relation.NewSchema("key"))
	for i := 0; i < 60; i++ {
		left.Append(uniqueKey(i, "LEFT"))
	}
	right := relation.FromKeys("R", "no match here at all")
	cfg := Defaults()
	cfg.RetainWindow = 5
	e := mkEngine(t, cfg, left, right)
	run(t, e)
	st := e.Stats()
	if st.Evicted[stream.Left] == 0 {
		t.Fatal("no evictions recorded")
	}
	if st.IndexEntriesDropped == 0 {
		t.Fatal("no index entries dropped")
	}
	sp := e.Space()
	// At most ~2w live-plus-dead exact entries may remain on the left.
	if sp.ExactEntries[stream.Left] > 2*cfg.RetainWindow {
		t.Errorf("exact index kept %d entries, window is %d", sp.ExactEntries[stream.Left], cfg.RetainWindow)
	}
}

func TestCompactEvictedPreservesMatches(t *testing.T) {
	// Compaction must never change the match set: run the windowed
	// approximate scenario with compaction forced at every step and
	// compare against the plain windowed engine.
	mk := func(force bool) []Match {
		left := relation.FromKeys("L",
			"monte rosa vetta alpina", "filler uno due tre qua",
			"filler quattro cinque sei", "monte rosa vetta alpinb")
		right := relation.FromKeys("R",
			"zzz yyy xxx www unmatched", "monte rosa vetta alpinx",
			"monte rosa vetta alpiny", "monte rosa vetta alpinz")
		cfg := Defaults()
		cfg.RetainWindow = 2
		cfg.Initial = LapRap
		e := mkEngine(t, cfg, left, right)
		if force {
			e.OnStep = func(en *Engine) { en.CompactEvicted() }
		}
		return run(t, e)
	}
	plain, forced := mk(false), mk(true)
	if len(plain) != len(forced) {
		t.Fatalf("compaction changed the match set: %d vs %d matches", len(plain), len(forced))
	}
	for i := range plain {
		if plain[i] != forced[i] {
			t.Errorf("match %d differs: %+v vs %+v", i, plain[i], forced[i])
		}
	}
}
